file(REMOVE_RECURSE
  "CMakeFiles/dns_over_tcp.dir/dns_over_tcp.cpp.o"
  "CMakeFiles/dns_over_tcp.dir/dns_over_tcp.cpp.o.d"
  "dns_over_tcp"
  "dns_over_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_over_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
