# Empty dependencies file for dns_over_tcp.
# This may be replaced when dependencies are built.
