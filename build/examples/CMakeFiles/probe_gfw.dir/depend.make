# Empty dependencies file for probe_gfw.
# This may be replaced when dependencies are built.
