file(REMOVE_RECURSE
  "CMakeFiles/probe_gfw.dir/probe_gfw.cpp.o"
  "CMakeFiles/probe_gfw.dir/probe_gfw.cpp.o.d"
  "probe_gfw"
  "probe_gfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_gfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
