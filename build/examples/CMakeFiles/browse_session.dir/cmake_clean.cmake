file(REMOVE_RECURSE
  "CMakeFiles/browse_session.dir/browse_session.cpp.o"
  "CMakeFiles/browse_session.dir/browse_session.cpp.o.d"
  "browse_session"
  "browse_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browse_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
