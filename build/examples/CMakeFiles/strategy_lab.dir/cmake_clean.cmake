file(REMOVE_RECURSE
  "CMakeFiles/strategy_lab.dir/strategy_lab.cpp.o"
  "CMakeFiles/strategy_lab.dir/strategy_lab.cpp.o.d"
  "strategy_lab"
  "strategy_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
