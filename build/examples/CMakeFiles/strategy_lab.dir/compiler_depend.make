# Empty compiler generated dependencies file for strategy_lab.
# This may be replaced when dependencies are built.
