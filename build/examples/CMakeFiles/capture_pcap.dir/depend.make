# Empty dependencies file for capture_pcap.
# This may be replaced when dependencies are built.
