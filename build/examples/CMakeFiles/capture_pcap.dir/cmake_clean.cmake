file(REMOVE_RECURSE
  "CMakeFiles/capture_pcap.dir/capture_pcap.cpp.o"
  "CMakeFiles/capture_pcap.dir/capture_pcap.cpp.o.d"
  "capture_pcap"
  "capture_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
