# Empty dependencies file for tor_bridge.
# This may be replaced when dependencies are built.
