file(REMOVE_RECURSE
  "CMakeFiles/tor_bridge.dir/tor_bridge.cpp.o"
  "CMakeFiles/tor_bridge.dir/tor_bridge.cpp.o.d"
  "tor_bridge"
  "tor_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
