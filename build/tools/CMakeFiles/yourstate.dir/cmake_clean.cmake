file(REMOVE_RECURSE
  "CMakeFiles/yourstate.dir/yourstate_cli.cpp.o"
  "CMakeFiles/yourstate.dir/yourstate_cli.cpp.o.d"
  "yourstate"
  "yourstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yourstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
