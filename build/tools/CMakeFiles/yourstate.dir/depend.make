# Empty dependencies file for yourstate.
# This may be replaced when dependencies are built.
