
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4.cpp" "bench/CMakeFiles/bench_table4.dir/bench_table4.cpp.o" "gcc" "bench/CMakeFiles/bench_table4.dir/bench_table4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ys_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/intang/CMakeFiles/ys_intang.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/ys_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/gfw/CMakeFiles/ys_gfw.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ys_app.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpstack/CMakeFiles/ys_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/middlebox/CMakeFiles/ys_middlebox.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ys_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
