file(REMOVE_RECURSE
  "CMakeFiles/bench_tor.dir/bench_tor.cpp.o"
  "CMakeFiles/bench_tor.dir/bench_tor.cpp.o.d"
  "bench_tor"
  "bench_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
