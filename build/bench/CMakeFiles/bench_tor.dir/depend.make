# Empty dependencies file for bench_tor.
# This may be replaced when dependencies are built.
