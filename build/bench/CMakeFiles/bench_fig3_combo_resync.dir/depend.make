# Empty dependencies file for bench_fig3_combo_resync.
# This may be replaced when dependencies are built.
