file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_combo_resync.dir/bench_fig3_combo_resync.cpp.o"
  "CMakeFiles/bench_fig3_combo_resync.dir/bench_fig3_combo_resync.cpp.o.d"
  "bench_fig3_combo_resync"
  "bench_fig3_combo_resync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_combo_resync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
