# Empty dependencies file for bench_fig1_threat_model.
# This may be replaced when dependencies are built.
