# Empty dependencies file for bench_vpn.
# This may be replaced when dependencies are built.
