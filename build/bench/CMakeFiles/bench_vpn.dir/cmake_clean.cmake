file(REMOVE_RECURSE
  "CMakeFiles/bench_vpn.dir/bench_vpn.cpp.o"
  "CMakeFiles/bench_vpn.dir/bench_vpn.cpp.o.d"
  "bench_vpn"
  "bench_vpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
