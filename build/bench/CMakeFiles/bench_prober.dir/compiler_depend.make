# Empty compiler generated dependencies file for bench_prober.
# This may be replaced when dependencies are built.
