file(REMOVE_RECURSE
  "CMakeFiles/bench_prober.dir/bench_prober.cpp.o"
  "CMakeFiles/bench_prober.dir/bench_prober.cpp.o.d"
  "bench_prober"
  "bench_prober.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
