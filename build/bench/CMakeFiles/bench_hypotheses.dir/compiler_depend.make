# Empty compiler generated dependencies file for bench_hypotheses.
# This may be replaced when dependencies are built.
