file(REMOVE_RECURSE
  "CMakeFiles/bench_hypotheses.dir/bench_hypotheses.cpp.o"
  "CMakeFiles/bench_hypotheses.dir/bench_hypotheses.cpp.o.d"
  "bench_hypotheses"
  "bench_hypotheses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hypotheses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
