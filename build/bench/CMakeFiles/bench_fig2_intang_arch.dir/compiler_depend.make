# Empty compiler generated dependencies file for bench_fig2_intang_arch.
# This may be replaced when dependencies are built.
