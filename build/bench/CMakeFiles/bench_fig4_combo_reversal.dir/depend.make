# Empty dependencies file for bench_fig4_combo_reversal.
# This may be replaced when dependencies are built.
