file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_combo_reversal.dir/bench_fig4_combo_reversal.cpp.o"
  "CMakeFiles/bench_fig4_combo_reversal.dir/bench_fig4_combo_reversal.cpp.o.d"
  "bench_fig4_combo_reversal"
  "bench_fig4_combo_reversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_combo_reversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
