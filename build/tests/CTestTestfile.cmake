# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_fragment[1]_include.cmake")
include("/root/repo/build/tests/test_fuzzish[1]_include.cmake")
include("/root/repo/build/tests/test_path[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_endpoint[1]_include.cmake")
include("/root/repo/build/tests/test_gfw[1]_include.cmake")
include("/root/repo/build/tests/test_gfw_extra[1]_include.cmake")
include("/root/repo/build/tests/test_gfw_fragments[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_middlebox[1]_include.cmake")
include("/root/repo/build/tests/test_strategy[1]_include.cmake")
include("/root/repo/build/tests/test_intang[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_classification[1]_include.cmake")
include("/root/repo/build/tests/test_edges[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_prober[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_reset_injector[1]_include.cmake")
include("/root/repo/build/tests/test_integration_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_integration_session[1]_include.cmake")
include("/root/repo/build/tests/test_shape_regression[1]_include.cmake")
