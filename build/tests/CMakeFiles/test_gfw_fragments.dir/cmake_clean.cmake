file(REMOVE_RECURSE
  "CMakeFiles/test_gfw_fragments.dir/test_gfw_fragments.cpp.o"
  "CMakeFiles/test_gfw_fragments.dir/test_gfw_fragments.cpp.o.d"
  "test_gfw_fragments"
  "test_gfw_fragments.pdb"
  "test_gfw_fragments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfw_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
