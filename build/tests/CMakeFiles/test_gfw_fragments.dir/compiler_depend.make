# Empty compiler generated dependencies file for test_gfw_fragments.
# This may be replaced when dependencies are built.
