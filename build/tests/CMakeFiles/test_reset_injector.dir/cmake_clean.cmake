file(REMOVE_RECURSE
  "CMakeFiles/test_reset_injector.dir/test_reset_injector.cpp.o"
  "CMakeFiles/test_reset_injector.dir/test_reset_injector.cpp.o.d"
  "test_reset_injector"
  "test_reset_injector.pdb"
  "test_reset_injector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reset_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
