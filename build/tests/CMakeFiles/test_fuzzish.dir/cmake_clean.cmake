file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzish.dir/test_fuzzish.cpp.o"
  "CMakeFiles/test_fuzzish.dir/test_fuzzish.cpp.o.d"
  "test_fuzzish"
  "test_fuzzish.pdb"
  "test_fuzzish[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
