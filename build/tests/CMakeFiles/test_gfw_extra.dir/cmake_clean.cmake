file(REMOVE_RECURSE
  "CMakeFiles/test_gfw_extra.dir/test_gfw_extra.cpp.o"
  "CMakeFiles/test_gfw_extra.dir/test_gfw_extra.cpp.o.d"
  "test_gfw_extra"
  "test_gfw_extra.pdb"
  "test_gfw_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfw_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
