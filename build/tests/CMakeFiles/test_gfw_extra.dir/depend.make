# Empty dependencies file for test_gfw_extra.
# This may be replaced when dependencies are built.
