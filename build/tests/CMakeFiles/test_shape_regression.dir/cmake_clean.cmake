file(REMOVE_RECURSE
  "CMakeFiles/test_shape_regression.dir/test_shape_regression.cpp.o"
  "CMakeFiles/test_shape_regression.dir/test_shape_regression.cpp.o.d"
  "test_shape_regression"
  "test_shape_regression.pdb"
  "test_shape_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shape_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
