file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_endpoint.dir/test_tcp_endpoint.cpp.o"
  "CMakeFiles/test_tcp_endpoint.dir/test_tcp_endpoint.cpp.o.d"
  "test_tcp_endpoint"
  "test_tcp_endpoint.pdb"
  "test_tcp_endpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
