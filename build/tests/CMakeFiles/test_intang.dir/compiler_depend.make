# Empty compiler generated dependencies file for test_intang.
# This may be replaced when dependencies are built.
