file(REMOVE_RECURSE
  "CMakeFiles/test_intang.dir/test_intang.cpp.o"
  "CMakeFiles/test_intang.dir/test_intang.cpp.o.d"
  "test_intang"
  "test_intang.pdb"
  "test_intang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
