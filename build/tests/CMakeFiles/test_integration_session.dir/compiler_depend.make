# Empty compiler generated dependencies file for test_integration_session.
# This may be replaced when dependencies are built.
