file(REMOVE_RECURSE
  "CMakeFiles/test_integration_session.dir/test_integration_session.cpp.o"
  "CMakeFiles/test_integration_session.dir/test_integration_session.cpp.o.d"
  "test_integration_session"
  "test_integration_session.pdb"
  "test_integration_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
