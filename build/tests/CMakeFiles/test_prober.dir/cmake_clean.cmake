file(REMOVE_RECURSE
  "CMakeFiles/test_prober.dir/test_prober.cpp.o"
  "CMakeFiles/test_prober.dir/test_prober.cpp.o.d"
  "test_prober"
  "test_prober.pdb"
  "test_prober[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
