file(REMOVE_RECURSE
  "CMakeFiles/ys_core.dir/byte_io.cpp.o"
  "CMakeFiles/ys_core.dir/byte_io.cpp.o.d"
  "CMakeFiles/ys_core.dir/checksum.cpp.o"
  "CMakeFiles/ys_core.dir/checksum.cpp.o.d"
  "CMakeFiles/ys_core.dir/hexdump.cpp.o"
  "CMakeFiles/ys_core.dir/hexdump.cpp.o.d"
  "CMakeFiles/ys_core.dir/log.cpp.o"
  "CMakeFiles/ys_core.dir/log.cpp.o.d"
  "CMakeFiles/ys_core.dir/rng.cpp.o"
  "CMakeFiles/ys_core.dir/rng.cpp.o.d"
  "libys_core.a"
  "libys_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
