file(REMOVE_RECURSE
  "libys_core.a"
)
