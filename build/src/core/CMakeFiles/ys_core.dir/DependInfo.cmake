
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/byte_io.cpp" "src/core/CMakeFiles/ys_core.dir/byte_io.cpp.o" "gcc" "src/core/CMakeFiles/ys_core.dir/byte_io.cpp.o.d"
  "/root/repo/src/core/checksum.cpp" "src/core/CMakeFiles/ys_core.dir/checksum.cpp.o" "gcc" "src/core/CMakeFiles/ys_core.dir/checksum.cpp.o.d"
  "/root/repo/src/core/hexdump.cpp" "src/core/CMakeFiles/ys_core.dir/hexdump.cpp.o" "gcc" "src/core/CMakeFiles/ys_core.dir/hexdump.cpp.o.d"
  "/root/repo/src/core/log.cpp" "src/core/CMakeFiles/ys_core.dir/log.cpp.o" "gcc" "src/core/CMakeFiles/ys_core.dir/log.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/ys_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/ys_core.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
