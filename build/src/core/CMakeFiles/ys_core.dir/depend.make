# Empty dependencies file for ys_core.
# This may be replaced when dependencies are built.
