# Empty compiler generated dependencies file for ys_middlebox.
# This may be replaced when dependencies are built.
