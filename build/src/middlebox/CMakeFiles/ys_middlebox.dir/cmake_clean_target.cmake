file(REMOVE_RECURSE
  "libys_middlebox.a"
)
