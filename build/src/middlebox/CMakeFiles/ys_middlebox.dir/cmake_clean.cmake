file(REMOVE_RECURSE
  "CMakeFiles/ys_middlebox.dir/middlebox.cpp.o"
  "CMakeFiles/ys_middlebox.dir/middlebox.cpp.o.d"
  "CMakeFiles/ys_middlebox.dir/profiles.cpp.o"
  "CMakeFiles/ys_middlebox.dir/profiles.cpp.o.d"
  "libys_middlebox.a"
  "libys_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
