file(REMOVE_RECURSE
  "CMakeFiles/ys_netsim.dir/fragment.cpp.o"
  "CMakeFiles/ys_netsim.dir/fragment.cpp.o.d"
  "CMakeFiles/ys_netsim.dir/packet.cpp.o"
  "CMakeFiles/ys_netsim.dir/packet.cpp.o.d"
  "CMakeFiles/ys_netsim.dir/path.cpp.o"
  "CMakeFiles/ys_netsim.dir/path.cpp.o.d"
  "CMakeFiles/ys_netsim.dir/pcap.cpp.o"
  "CMakeFiles/ys_netsim.dir/pcap.cpp.o.d"
  "CMakeFiles/ys_netsim.dir/wire.cpp.o"
  "CMakeFiles/ys_netsim.dir/wire.cpp.o.d"
  "libys_netsim.a"
  "libys_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
