# Empty dependencies file for ys_netsim.
# This may be replaced when dependencies are built.
