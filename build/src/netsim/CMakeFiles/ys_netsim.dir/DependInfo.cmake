
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/fragment.cpp" "src/netsim/CMakeFiles/ys_netsim.dir/fragment.cpp.o" "gcc" "src/netsim/CMakeFiles/ys_netsim.dir/fragment.cpp.o.d"
  "/root/repo/src/netsim/packet.cpp" "src/netsim/CMakeFiles/ys_netsim.dir/packet.cpp.o" "gcc" "src/netsim/CMakeFiles/ys_netsim.dir/packet.cpp.o.d"
  "/root/repo/src/netsim/path.cpp" "src/netsim/CMakeFiles/ys_netsim.dir/path.cpp.o" "gcc" "src/netsim/CMakeFiles/ys_netsim.dir/path.cpp.o.d"
  "/root/repo/src/netsim/pcap.cpp" "src/netsim/CMakeFiles/ys_netsim.dir/pcap.cpp.o" "gcc" "src/netsim/CMakeFiles/ys_netsim.dir/pcap.cpp.o.d"
  "/root/repo/src/netsim/wire.cpp" "src/netsim/CMakeFiles/ys_netsim.dir/wire.cpp.o" "gcc" "src/netsim/CMakeFiles/ys_netsim.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
