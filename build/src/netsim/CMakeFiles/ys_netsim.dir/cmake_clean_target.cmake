file(REMOVE_RECURSE
  "libys_netsim.a"
)
