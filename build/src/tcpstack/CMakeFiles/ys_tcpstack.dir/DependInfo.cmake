
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcpstack/host.cpp" "src/tcpstack/CMakeFiles/ys_tcpstack.dir/host.cpp.o" "gcc" "src/tcpstack/CMakeFiles/ys_tcpstack.dir/host.cpp.o.d"
  "/root/repo/src/tcpstack/tcp_endpoint.cpp" "src/tcpstack/CMakeFiles/ys_tcpstack.dir/tcp_endpoint.cpp.o" "gcc" "src/tcpstack/CMakeFiles/ys_tcpstack.dir/tcp_endpoint.cpp.o.d"
  "/root/repo/src/tcpstack/tcp_types.cpp" "src/tcpstack/CMakeFiles/ys_tcpstack.dir/tcp_types.cpp.o" "gcc" "src/tcpstack/CMakeFiles/ys_tcpstack.dir/tcp_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/ys_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
