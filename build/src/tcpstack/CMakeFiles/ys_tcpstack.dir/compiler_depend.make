# Empty compiler generated dependencies file for ys_tcpstack.
# This may be replaced when dependencies are built.
