# Empty dependencies file for ys_tcpstack.
# This may be replaced when dependencies are built.
