file(REMOVE_RECURSE
  "CMakeFiles/ys_tcpstack.dir/host.cpp.o"
  "CMakeFiles/ys_tcpstack.dir/host.cpp.o.d"
  "CMakeFiles/ys_tcpstack.dir/tcp_endpoint.cpp.o"
  "CMakeFiles/ys_tcpstack.dir/tcp_endpoint.cpp.o.d"
  "CMakeFiles/ys_tcpstack.dir/tcp_types.cpp.o"
  "CMakeFiles/ys_tcpstack.dir/tcp_types.cpp.o.d"
  "libys_tcpstack.a"
  "libys_tcpstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_tcpstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
