file(REMOVE_RECURSE
  "libys_tcpstack.a"
)
