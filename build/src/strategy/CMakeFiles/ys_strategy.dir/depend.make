# Empty dependencies file for ys_strategy.
# This may be replaced when dependencies are built.
