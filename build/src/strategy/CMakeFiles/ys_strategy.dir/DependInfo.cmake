
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/insertion.cpp" "src/strategy/CMakeFiles/ys_strategy.dir/insertion.cpp.o" "gcc" "src/strategy/CMakeFiles/ys_strategy.dir/insertion.cpp.o.d"
  "/root/repo/src/strategy/legacy_strategies.cpp" "src/strategy/CMakeFiles/ys_strategy.dir/legacy_strategies.cpp.o" "gcc" "src/strategy/CMakeFiles/ys_strategy.dir/legacy_strategies.cpp.o.d"
  "/root/repo/src/strategy/new_strategies.cpp" "src/strategy/CMakeFiles/ys_strategy.dir/new_strategies.cpp.o" "gcc" "src/strategy/CMakeFiles/ys_strategy.dir/new_strategies.cpp.o.d"
  "/root/repo/src/strategy/strategy.cpp" "src/strategy/CMakeFiles/ys_strategy.dir/strategy.cpp.o" "gcc" "src/strategy/CMakeFiles/ys_strategy.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcpstack/CMakeFiles/ys_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/gfw/CMakeFiles/ys_gfw.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ys_app.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ys_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
