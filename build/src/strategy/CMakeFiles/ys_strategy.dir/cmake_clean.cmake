file(REMOVE_RECURSE
  "CMakeFiles/ys_strategy.dir/insertion.cpp.o"
  "CMakeFiles/ys_strategy.dir/insertion.cpp.o.d"
  "CMakeFiles/ys_strategy.dir/legacy_strategies.cpp.o"
  "CMakeFiles/ys_strategy.dir/legacy_strategies.cpp.o.d"
  "CMakeFiles/ys_strategy.dir/new_strategies.cpp.o"
  "CMakeFiles/ys_strategy.dir/new_strategies.cpp.o.d"
  "CMakeFiles/ys_strategy.dir/strategy.cpp.o"
  "CMakeFiles/ys_strategy.dir/strategy.cpp.o.d"
  "libys_strategy.a"
  "libys_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
