file(REMOVE_RECURSE
  "libys_strategy.a"
)
