# Empty compiler generated dependencies file for ys_exp.
# This may be replaced when dependencies are built.
