file(REMOVE_RECURSE
  "CMakeFiles/ys_exp.dir/prober.cpp.o"
  "CMakeFiles/ys_exp.dir/prober.cpp.o.d"
  "CMakeFiles/ys_exp.dir/scenario.cpp.o"
  "CMakeFiles/ys_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/ys_exp.dir/stats.cpp.o"
  "CMakeFiles/ys_exp.dir/stats.cpp.o.d"
  "CMakeFiles/ys_exp.dir/table.cpp.o"
  "CMakeFiles/ys_exp.dir/table.cpp.o.d"
  "CMakeFiles/ys_exp.dir/trial.cpp.o"
  "CMakeFiles/ys_exp.dir/trial.cpp.o.d"
  "CMakeFiles/ys_exp.dir/vantage.cpp.o"
  "CMakeFiles/ys_exp.dir/vantage.cpp.o.d"
  "libys_exp.a"
  "libys_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
