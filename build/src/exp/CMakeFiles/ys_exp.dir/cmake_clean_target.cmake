file(REMOVE_RECURSE
  "libys_exp.a"
)
