file(REMOVE_RECURSE
  "CMakeFiles/ys_intang.dir/dns_forwarder.cpp.o"
  "CMakeFiles/ys_intang.dir/dns_forwarder.cpp.o.d"
  "CMakeFiles/ys_intang.dir/intang.cpp.o"
  "CMakeFiles/ys_intang.dir/intang.cpp.o.d"
  "CMakeFiles/ys_intang.dir/kv_store.cpp.o"
  "CMakeFiles/ys_intang.dir/kv_store.cpp.o.d"
  "CMakeFiles/ys_intang.dir/lru_cache.cpp.o"
  "CMakeFiles/ys_intang.dir/lru_cache.cpp.o.d"
  "CMakeFiles/ys_intang.dir/selector.cpp.o"
  "CMakeFiles/ys_intang.dir/selector.cpp.o.d"
  "libys_intang.a"
  "libys_intang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_intang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
