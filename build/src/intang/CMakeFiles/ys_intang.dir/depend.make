# Empty dependencies file for ys_intang.
# This may be replaced when dependencies are built.
