file(REMOVE_RECURSE
  "libys_intang.a"
)
