file(REMOVE_RECURSE
  "CMakeFiles/ys_gfw.dir/aho_corasick.cpp.o"
  "CMakeFiles/ys_gfw.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/ys_gfw.dir/dns_poisoner.cpp.o"
  "CMakeFiles/ys_gfw.dir/dns_poisoner.cpp.o.d"
  "CMakeFiles/ys_gfw.dir/gfw_device.cpp.o"
  "CMakeFiles/ys_gfw.dir/gfw_device.cpp.o.d"
  "CMakeFiles/ys_gfw.dir/gfw_tcb.cpp.o"
  "CMakeFiles/ys_gfw.dir/gfw_tcb.cpp.o.d"
  "CMakeFiles/ys_gfw.dir/reset_injector.cpp.o"
  "CMakeFiles/ys_gfw.dir/reset_injector.cpp.o.d"
  "libys_gfw.a"
  "libys_gfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_gfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
