
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gfw/aho_corasick.cpp" "src/gfw/CMakeFiles/ys_gfw.dir/aho_corasick.cpp.o" "gcc" "src/gfw/CMakeFiles/ys_gfw.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/gfw/dns_poisoner.cpp" "src/gfw/CMakeFiles/ys_gfw.dir/dns_poisoner.cpp.o" "gcc" "src/gfw/CMakeFiles/ys_gfw.dir/dns_poisoner.cpp.o.d"
  "/root/repo/src/gfw/gfw_device.cpp" "src/gfw/CMakeFiles/ys_gfw.dir/gfw_device.cpp.o" "gcc" "src/gfw/CMakeFiles/ys_gfw.dir/gfw_device.cpp.o.d"
  "/root/repo/src/gfw/gfw_tcb.cpp" "src/gfw/CMakeFiles/ys_gfw.dir/gfw_tcb.cpp.o" "gcc" "src/gfw/CMakeFiles/ys_gfw.dir/gfw_tcb.cpp.o.d"
  "/root/repo/src/gfw/reset_injector.cpp" "src/gfw/CMakeFiles/ys_gfw.dir/reset_injector.cpp.o" "gcc" "src/gfw/CMakeFiles/ys_gfw.dir/reset_injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/ys_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ys_app.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpstack/CMakeFiles/ys_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
