file(REMOVE_RECURSE
  "libys_gfw.a"
)
