# Empty compiler generated dependencies file for ys_gfw.
# This may be replaced when dependencies are built.
