file(REMOVE_RECURSE
  "libys_app.a"
)
