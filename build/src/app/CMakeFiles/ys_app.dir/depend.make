# Empty dependencies file for ys_app.
# This may be replaced when dependencies are built.
