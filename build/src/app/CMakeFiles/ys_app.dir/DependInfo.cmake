
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/dns.cpp" "src/app/CMakeFiles/ys_app.dir/dns.cpp.o" "gcc" "src/app/CMakeFiles/ys_app.dir/dns.cpp.o.d"
  "/root/repo/src/app/http.cpp" "src/app/CMakeFiles/ys_app.dir/http.cpp.o" "gcc" "src/app/CMakeFiles/ys_app.dir/http.cpp.o.d"
  "/root/repo/src/app/tor.cpp" "src/app/CMakeFiles/ys_app.dir/tor.cpp.o" "gcc" "src/app/CMakeFiles/ys_app.dir/tor.cpp.o.d"
  "/root/repo/src/app/vpn.cpp" "src/app/CMakeFiles/ys_app.dir/vpn.cpp.o" "gcc" "src/app/CMakeFiles/ys_app.dir/vpn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcpstack/CMakeFiles/ys_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ys_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
