file(REMOVE_RECURSE
  "CMakeFiles/ys_app.dir/dns.cpp.o"
  "CMakeFiles/ys_app.dir/dns.cpp.o.d"
  "CMakeFiles/ys_app.dir/http.cpp.o"
  "CMakeFiles/ys_app.dir/http.cpp.o.d"
  "CMakeFiles/ys_app.dir/tor.cpp.o"
  "CMakeFiles/ys_app.dir/tor.cpp.o.d"
  "CMakeFiles/ys_app.dir/vpn.cpp.o"
  "CMakeFiles/ys_app.dir/vpn.cpp.o.d"
  "libys_app.a"
  "libys_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
