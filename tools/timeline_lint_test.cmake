# End-to-end timeline pipeline check, run under ctest:
#   1. `yourstate fleet --timeline-out` on a soaked smoke config must emit
#      "ys.timeline.v1" JSON (and CSV) that timeline_lint accepts, with a
#      metrics snapshot whose aggregate counters the timeline totals match.
#   2. `yourstate report` must render a self-contained HTML dashboard whose
#      manifest timeline_lint verifies against the timeline file.
#   3. `yourstate search --timeline-out --metrics-out` must emit a lintable
#      timeline (generation-bucketed search.* series) and a metrics file.
#
# Invoked as:
#   cmake -DYOURSTATE=<path> -DTIMELINE_LINT=<path> -DWORK_DIR=<dir>
#         -P timeline_lint_test.cmake

foreach(var YOURSTATE TIMELINE_LINT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "timeline_lint_test: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. fleet smoke run with timeline + metrics exports --------------------
set(fleet_spec "clients=8;flows=80;servers=4;vantages=2;arrival=20;churn=0.05;soak=2s:rst-storm,4s:none")
set(fleet_tl "${WORK_DIR}/fleet.timeline.json")
set(fleet_csv "${WORK_DIR}/fleet.timeline.csv")
set(fleet_metrics "${WORK_DIR}/fleet.metrics.json")
execute_process(
  COMMAND "${YOURSTATE}" fleet "--fleet=${fleet_spec}" --jobs=2
          "--timeline-out=${fleet_tl}" "--timeline-csv=${fleet_csv}"
          "--metrics-out=${fleet_metrics}"
  RESULT_VARIABLE fleet_rc
  OUTPUT_VARIABLE fleet_out
  ERROR_VARIABLE fleet_err)
if(NOT fleet_rc EQUAL 0)
  message(FATAL_ERROR "yourstate fleet failed (${fleet_rc}):\n"
                      "${fleet_out}\n${fleet_err}")
endif()
foreach(artifact "${fleet_tl}" "${fleet_csv}" "${fleet_metrics}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "yourstate fleet did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${TIMELINE_LINT}" "${fleet_tl}"
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "timeline_lint rejected fleet timeline:\n"
                      "${lint_out}\n${lint_err}")
endif()
message(STATUS "${lint_out}")

# --- 2. render the dashboard; cross-check totals; lint the manifest --------
set(report_html "${WORK_DIR}/fleet.report.html")
execute_process(
  COMMAND "${YOURSTATE}" report "${fleet_tl}" "--out=${report_html}"
          "--metrics=${fleet_metrics}" "--fleet=${fleet_spec}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "yourstate report failed (${report_rc}):\n"
                      "${report_out}\n${report_err}")
endif()
if(NOT "${report_out}" MATCHES "timeline totals match")
  message(FATAL_ERROR "report did not confirm the metrics cross-check:\n"
                      "${report_out}")
endif()

execute_process(
  COMMAND "${TIMELINE_LINT}" "--html=${report_html}" "${fleet_tl}"
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "timeline_lint rejected the HTML report:\n"
                      "${lint_out}\n${lint_err}")
endif()
message(STATUS "${lint_out}")

# --- 3. search smoke run with timeline + metrics exports -------------------
set(search_tl "${WORK_DIR}/search.timeline.json")
set(search_metrics "${WORK_DIR}/search.metrics.json")
execute_process(
  COMMAND "${YOURSTATE}" search --population=4 --generations=2 --servers=2
          --trials=1 --faulted-trials=1 --coevo-rounds=0 --seed=7
          "--timeline-out=${search_tl}" "--metrics-out=${search_metrics}"
  RESULT_VARIABLE search_rc
  OUTPUT_VARIABLE search_out
  ERROR_VARIABLE search_err)
if(NOT search_rc EQUAL 0)
  message(FATAL_ERROR "yourstate search failed (${search_rc}):\n"
                      "${search_out}\n${search_err}")
endif()
if(NOT EXISTS "${search_metrics}")
  message(FATAL_ERROR "yourstate search did not write --metrics-out")
endif()

execute_process(
  COMMAND "${TIMELINE_LINT}" "${search_tl}"
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "timeline_lint rejected search timeline:\n"
                      "${lint_out}\n${lint_err}")
endif()
message(STATUS "${lint_out}")
