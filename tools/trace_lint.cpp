// trace_lint — validates Chrome trace-event JSON files emitted by
// obs::write_chrome_trace (and archived by the runner's flight recorder).
//
//   trace_lint FILE [FILE...]
//
// Checks, per file:
//   - the document parses as JSON and has a `traceEvents` array;
//   - every event is an object with a string `ph` and numeric `pid`/`tid`,
//     and every non-metadata event carries a numeric `ts`;
//   - `ts` is non-decreasing per (pid,tid) track over the `ph:"X"` slice
//     events (ring order is virtual-time order, so an exporter bug shows
//     up here immediately);
//   - every `args.caused_by` resolves to some event's `args.id`;
//   - every flow-finish (`ph:"f"`) has a matching flow-start (`ph:"s"`)
//     with the same `id`, and vice versa.
//
// Exit 0 iff every file passes; 1 on lint findings; 2 on usage/IO errors.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/json.h"

namespace ys {
namespace {

struct Lint {
  const char* file;
  int findings = 0;

  void fail(std::size_t index, const std::string& what) {
    std::fprintf(stderr, "%s: event %zu: %s\n", file, index, what.c_str());
    ++findings;
  }
  void fail(const std::string& what) {
    std::fprintf(stderr, "%s: %s\n", file, what.c_str());
    ++findings;
  }
};

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

int lint_file(const char* path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "%s: cannot read\n", path);
    return 2;
  }
  const auto doc = json::parse(text);
  Lint lint{path};
  if (!doc.has_value()) {
    lint.fail("not valid JSON");
    return 1;
  }
  const json::Value* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    lint.fail("missing traceEvents array");
    return 1;
  }

  std::set<double> ids;           // args.id values seen on any event
  std::set<double> flow_starts;   // ph:"s" ids
  std::set<double> flow_ends;     // ph:"f" ids
  std::map<std::pair<double, double>, double> last_ts;  // per (pid,tid), "X"

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& ev = events->array[i];
    if (!ev.is_object()) {
      lint.fail(i, "not an object");
      continue;
    }
    const json::Value* ph = ev.find("ph");
    const json::Value* pid = ev.find("pid");
    const json::Value* tid = ev.find("tid");
    if (ph == nullptr || !ph->is_string()) {
      lint.fail(i, "missing string ph");
      continue;
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      lint.fail(i, "missing numeric pid/tid");
      continue;
    }
    const json::Value* ts = ev.find("ts");
    if (ph->string != "M" && (ts == nullptr || !ts->is_number())) {
      lint.fail(i, "ph \"" + ph->string + "\" event without numeric ts");
      continue;
    }
    if (ph->string == "X") {
      const auto track = std::make_pair(pid->number, tid->number);
      auto it = last_ts.find(track);
      if (it != last_ts.end() && ts->number < it->second) {
        lint.fail(i, "ts went backwards on track (pid=" +
                         std::to_string(static_cast<long long>(pid->number)) +
                         ", tid=" +
                         std::to_string(static_cast<long long>(tid->number)) +
                         ")");
      }
      last_ts[track] = ts->number;
    }
    if (ph->string == "s" || ph->string == "f") {
      const json::Value* fid = ev.find("id");
      if (fid == nullptr || !fid->is_number()) {
        lint.fail(i, "flow event without numeric id");
        continue;
      }
      (ph->string == "s" ? flow_starts : flow_ends).insert(fid->number);
    }
    if (const json::Value* args = ev.find("args");
        args != nullptr && args->is_object()) {
      if (const json::Value* id = args->find("id");
          id != nullptr && id->is_number()) {
        ids.insert(id->number);
      }
    }
  }

  // Second pass: caused_by resolvability (all ids collected above).
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& ev = events->array[i];
    const json::Value* args = ev.is_object() ? ev.find("args") : nullptr;
    if (args == nullptr || !args->is_object()) continue;
    const json::Value* cb = args->find("caused_by");
    if (cb == nullptr) continue;
    if (!cb->is_number()) {
      lint.fail(i, "args.caused_by is not a number");
    } else if (ids.count(cb->number) == 0) {
      lint.fail(i, "args.caused_by=" +
                       std::to_string(static_cast<long long>(cb->number)) +
                       " does not resolve to any args.id");
    }
  }
  for (double id : flow_ends) {
    if (flow_starts.count(id) == 0) {
      lint.fail("flow finish id=" +
                std::to_string(static_cast<long long>(id)) +
                " has no matching start");
    }
  }
  for (double id : flow_starts) {
    if (flow_ends.count(id) == 0) {
      lint.fail("flow start id=" +
                std::to_string(static_cast<long long>(id)) +
                " has no matching finish");
    }
  }

  if (lint.findings == 0) {
    std::printf("%s: ok (%zu events, %zu causal ids, %zu flows)\n", path,
                events->array.size(), ids.size(), flow_starts.size());
    return 0;
  }
  return 1;
}

int run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_lint FILE [FILE...]\n");
    return 2;
  }
  int worst = 0;
  for (int i = 1; i < argc; ++i) {
    worst = std::max(worst, lint_file(argv[i]));
  }
  return worst;
}

}  // namespace
}  // namespace ys

int main(int argc, char** argv) { return ys::run(argc, argv); }
