// timeline_lint — validates "ys.timeline.v1" JSON files emitted by
// obs::write_timeline_json (bench --timeline-out, yourstate fleet/search
// --timeline-out), and optionally an HTML report built from them.
//
//   timeline_lint [--html=REPORT.html] FILE [FILE...]
//
// Checks, per timeline file:
//   - the document parses as JSON with schema "ys.timeline.v1" and a
//     positive numeric bucket_us;
//   - every series has a non-empty name, an object of string labels, a
//     kind of "counter" or "gauge", and a points array;
//   - no two series share a (name, labels) identity;
//   - per series, bucket indices are strictly increasing (the exporter
//     walks a sorted map — anything else is an exporter bug), every point
//     has count >= 1, min <= max, and min*count <= sum <= max*count;
//   - annotations are {bucket, category, text} with non-decreasing
//     buckets (they serialize from a sorted set).
//
// With --html=FILE, additionally checks the report is self-contained SVG
// (contains "<svg") and that every series its embedded
// `timeline-manifest` lists exists in at least one of the given timeline
// files — the report never charts a series that was not recorded.
//
// Exit 0 iff everything passes; 1 on lint findings; 2 on usage/IO errors.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/json.h"

namespace ys {
namespace {

struct Lint {
  const char* file;
  int findings = 0;

  void fail(const std::string& what) {
    std::fprintf(stderr, "%s: %s\n", file, what.c_str());
    ++findings;
  }
};

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool is_int(const json::Value* v) {
  return v != nullptr && v->is_number() &&
         v->number == std::floor(v->number);
}

int lint_file(const char* path, std::set<std::string>& all_series_names) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "%s: cannot read\n", path);
    return 2;
  }
  const auto doc = json::parse(text);
  Lint lint{path};
  if (!doc.has_value() || !doc->is_object()) {
    lint.fail("not a JSON object");
    return 1;
  }
  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ys.timeline.v1") {
    lint.fail("schema is not \"ys.timeline.v1\"");
    return 1;
  }
  const json::Value* bucket_us = doc->find("bucket_us");
  if (!is_int(bucket_us) || bucket_us->number <= 0) {
    lint.fail("bucket_us missing or not a positive integer");
  }

  const json::Value* series = doc->find("series");
  if (series == nullptr || !series->is_array()) {
    lint.fail("series missing or not an array");
    return 1;
  }
  std::set<std::string> identities;  // "name|k=v|k=v" duplicate guard
  std::size_t points_total = 0;
  for (std::size_t i = 0; i < series->array.size(); ++i) {
    const json::Value& s = series->array[i];
    const std::string where = "series " + std::to_string(i);
    if (!s.is_object()) {
      lint.fail(where + ": not an object");
      continue;
    }
    const json::Value* name = s.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      lint.fail(where + ": name missing or empty");
      continue;
    }
    const std::string tag = where + " (" + name->string + ")";
    all_series_names.insert(name->string);

    std::string identity = name->string;
    const json::Value* labels = s.find("labels");
    if (labels == nullptr || !labels->is_object()) {
      lint.fail(tag + ": labels missing or not an object");
    } else {
      for (const auto& [k, v] : labels->object) {
        if (!v.is_string()) {
          lint.fail(tag + ": label \"" + k + "\" is not a string");
        } else {
          identity += "|" + k + "=" + v.string;
        }
      }
    }
    if (!identities.insert(identity).second) {
      lint.fail(tag + ": duplicate (name, labels) identity");
    }

    const json::Value* kind = s.find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->string != "counter" && kind->string != "gauge")) {
      lint.fail(tag + ": kind must be \"counter\" or \"gauge\"");
    }

    const json::Value* points = s.find("points");
    if (points == nullptr || !points->is_array()) {
      lint.fail(tag + ": points missing or not an array");
      continue;
    }
    bool have_prev = false;
    double prev_bucket = 0;
    for (std::size_t j = 0; j < points->array.size(); ++j) {
      const json::Value& p = points->array[j];
      const std::string pw = tag + ", point " + std::to_string(j);
      if (!p.is_object()) {
        lint.fail(pw + ": not an object");
        continue;
      }
      const json::Value* bucket = p.find("bucket");
      const json::Value* sum = p.find("sum");
      const json::Value* count = p.find("count");
      const json::Value* min = p.find("min");
      const json::Value* max = p.find("max");
      if (!is_int(bucket) || !is_int(sum) || !is_int(count) || !is_int(min) ||
          !is_int(max)) {
        lint.fail(pw + ": bucket/sum/count/min/max must be integers");
        continue;
      }
      ++points_total;
      if (have_prev && bucket->number <= prev_bucket) {
        lint.fail(pw + ": bucket " +
                  std::to_string(static_cast<long long>(bucket->number)) +
                  " not strictly increasing");
      }
      have_prev = true;
      prev_bucket = bucket->number;
      if (count->number < 1) {
        lint.fail(pw + ": count < 1 (empty buckets must be absent)");
      }
      if (min->number > max->number) {
        lint.fail(pw + ": min > max");
      }
      if (sum->number < min->number * count->number ||
          sum->number > max->number * count->number) {
        lint.fail(pw + ": sum outside [min*count, max*count]");
      }
    }
  }

  std::size_t ann_count = 0;
  if (const json::Value* annotations = doc->find("annotations");
      annotations != nullptr) {
    if (!annotations->is_array()) {
      lint.fail("annotations is not an array");
    } else {
      bool have_prev = false;
      double prev_bucket = 0;
      for (std::size_t i = 0; i < annotations->array.size(); ++i) {
        const json::Value& a = annotations->array[i];
        const std::string where = "annotation " + std::to_string(i);
        if (!a.is_object()) {
          lint.fail(where + ": not an object");
          continue;
        }
        const json::Value* bucket = a.find("bucket");
        const json::Value* category = a.find("category");
        const json::Value* ann_text = a.find("text");
        if (!is_int(bucket) || category == nullptr ||
            !category->is_string() || ann_text == nullptr ||
            !ann_text->is_string()) {
          lint.fail(where + ": needs integer bucket + string category/text");
          continue;
        }
        ++ann_count;
        if (have_prev && bucket->number < prev_bucket) {
          lint.fail(where + ": bucket order went backwards");
        }
        have_prev = true;
        prev_bucket = bucket->number;
      }
    }
  }

  if (lint.findings == 0) {
    std::printf("%s: ok (%zu series, %zu points, %zu annotations)\n", path,
                series->array.size(), points_total, ann_count);
    return 0;
  }
  return 1;
}

int lint_html(const char* path, const std::set<std::string>& series_names) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "%s: cannot read\n", path);
    return 2;
  }
  Lint lint{path};
  if (text.find("<svg") == std::string::npos) {
    lint.fail("no inline <svg> — not a rendered report");
  }
  // Self-containment: a report must not fetch anything.
  if (text.find("<link") != std::string::npos ||
      text.find("src=\"http") != std::string::npos) {
    lint.fail("external reference found — report must be self-contained");
  }
  const std::string marker = "id=\"timeline-manifest\">";
  const std::size_t start = text.find(marker);
  if (start == std::string::npos) {
    lint.fail("no timeline-manifest script tag");
    return 1;
  }
  const std::size_t body = start + marker.size();
  const std::size_t end = text.find("</script>", body);
  if (end == std::string::npos) {
    lint.fail("unterminated timeline-manifest script tag");
    return 1;
  }
  const auto manifest = json::parse(text.substr(body, end - body));
  if (!manifest.has_value() || !manifest->is_object()) {
    lint.fail("timeline-manifest is not valid JSON");
    return 1;
  }
  const json::Value* listed = manifest->find("series");
  if (listed == nullptr || !listed->is_array()) {
    lint.fail("timeline-manifest has no series array");
    return 1;
  }
  std::size_t checked = 0;
  for (const json::Value& v : listed->array) {
    if (!v.is_string()) {
      lint.fail("timeline-manifest series entry is not a string");
      continue;
    }
    ++checked;
    if (series_names.count(v.string) == 0) {
      lint.fail("report charts series \"" + v.string +
                "\" absent from every given timeline file");
    }
  }
  if (lint.findings == 0) {
    std::printf("%s: ok (manifest: %zu series, all present)\n", path, checked);
    return 0;
  }
  return 1;
}

int run(int argc, char** argv) {
  const char* html = nullptr;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--html=", 7) == 0) {
      html = argv[i] + 7;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: timeline_lint [--html=REPORT.html] FILE [FILE...]\n");
    return 2;
  }
  int worst = 0;
  std::set<std::string> series_names;
  for (const char* f : files) {
    worst = std::max(worst, lint_file(f, series_names));
  }
  if (html != nullptr) {
    worst = std::max(worst, lint_html(html, series_names));
  }
  return worst;
}

}  // namespace
}  // namespace ys

int main(int argc, char** argv) { return ys::run(argc, argv); }
