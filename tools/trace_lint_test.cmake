# End-to-end trace pipeline check, run under ctest:
#   1. `yourstate explain` replays one selector-chained cell with a trace
#      export, and trace_lint must accept the file.
#   2. `bench_table4` at smoke scale with a flight-recorder directory must
#      archive at least one anomalous trial, and every archived trace must
#      pass trace_lint.
#
# Invoked as:
#   cmake -DYOURSTATE=<path> -DBENCH_TABLE4=<path> -DTRACE_LINT=<path>
#         -DWORK_DIR=<dir> -P trace_lint_test.cmake

foreach(var YOURSTATE BENCH_TABLE4 TRACE_LINT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_lint_test: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. explain a selector-chained cell, lint its trace export ------------
set(explain_trace "${WORK_DIR}/explain.trace.json")
execute_process(
  COMMAND "${YOURSTATE}" explain --bench=table4-intang --cell=0 --vantage=0
          --server=0 --trial=1 --servers=3 --trials=2
          --trace-out=${explain_trace}
  RESULT_VARIABLE explain_rc
  OUTPUT_VARIABLE explain_out
  ERROR_VARIABLE explain_err)
message(STATUS "yourstate explain output:\n${explain_out}")
if(NOT explain_rc EQUAL 0)
  message(FATAL_ERROR "yourstate explain failed (${explain_rc}):\n"
                      "${explain_out}\n${explain_err}")
endif()
if(NOT EXISTS "${explain_trace}")
  message(FATAL_ERROR "yourstate explain did not write ${explain_trace}")
endif()

execute_process(
  COMMAND "${TRACE_LINT}" "${explain_trace}"
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "trace_lint rejected explain trace:\n"
                      "${lint_out}\n${lint_err}")
endif()
message(STATUS "${lint_out}")

# --- 2. flight recorder archives an anomalous cell at smoke scale ---------
set(flight_dir "${WORK_DIR}/flight")
execute_process(
  COMMAND "${BENCH_TABLE4}" --trials=1 --servers=3 --seed=2017
          --flight-dir=${flight_dir}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
# bench_table4's exit code reflects its own acceptance bars at paper scale;
# at smoke scale only the flight-recorder artifacts are under test here.
message(STATUS "bench_table4 smoke exit: ${bench_rc}")

file(GLOB archived_traces "${flight_dir}/*.trace.json")
file(GLOB archived_pcaps "${flight_dir}/*.pcap")
list(LENGTH archived_traces n_traces)
list(LENGTH archived_pcaps n_pcaps)
if(n_traces EQUAL 0)
  message(FATAL_ERROR "flight recorder archived no traces at smoke scale:\n"
                      "${bench_out}\n${bench_err}")
endif()
if(n_pcaps EQUAL 0)
  message(FATAL_ERROR "flight recorder archived traces but no pcaps")
endif()
message(STATUS "flight recorder archived ${n_traces} trace(s), "
               "${n_pcaps} pcap(s)")

execute_process(
  COMMAND "${TRACE_LINT}" ${archived_traces}
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "trace_lint rejected archived trace(s):\n"
                      "${lint_out}\n${lint_err}")
endif()
message(STATUS "${lint_out}")
