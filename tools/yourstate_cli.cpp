// yourstate — command-line driver for the reproduction.
//
//   yourstate list                         vantage points & strategies
//   yourstate trial  [options]            one censored HTTP fetch
//   yourstate probe  [options]            infer the path's GFW model
//   yourstate dns    [options]            one censored DNS lookup
//   yourstate tor    [options]            one Tor bridge connection
//   yourstate stats  [options]            simulated session + metrics dump
//   yourstate fleet  [options]            multi-client deployment sweep:
//                                         convergence + cache-sharing report
//                                         --shards=N --supervise partitions
//                                         the sweep into N child processes
//                                         with crash/hang detection and
//                                         checkpointed restarts (see
//                                         EXPERIMENTS.md "Sharded &
//                                         supervised sweeps")
//   yourstate shard-status --resume-dir=D  inspect a supervised sweep's
//                                         manifest: per-shard state,
//                                         attempts, progress, lock liveness
//   yourstate explain [options]           replay one bench grid coordinate
//                                         traced: annotated ladder + verdict
//                                         attribution
//   yourstate search [options]            evolutionary strategy discovery
//                                         (ys::search): evolve insertion-
//                                         packet programs against the GFW
//                                         variants, print the per-variant
//                                         Pareto archives and the censor
//                                         co-evolution rounds
//   yourstate report TIMELINE.json        render a --timeline-out export
//                                         as a self-contained HTML
//                                         dashboard (inline SVG): fleet
//                                         convergence, flap response,
//                                         search-front progress, explain
//                                         hints for anomalous buckets;
//                                         --metrics=FILE cross-checks the
//                                         timeline's whole-run totals
//                                         against a --metrics-out snapshot
//   yourstate perf --diff OLD NEW         compare two BenchReport JSONs
//                                         (bench --report=FILE output):
//                                         regression table; with --check,
//                                         exit 1 when a gated metric moved
//                                         outside --tolerance=X (default
//                                         0.10 = 10%); --tolerance-for=
//                                         METRIC:X tightens one metric's
//                                         band; --json emits the table as
//                                         machine-readable JSON
//
// Common options:
//   --vp=NAME            vantage point (default aliyun-sh)
//   --server=IP          target/resolver address (default 93.184.216.34)
//   --strategy=NAME      evasion strategy (default no-strategy; see `list`)
//   --intang             use INTANG's adaptive selection instead
//   --keyword=0|1        include the sensitive keyword (default 1)
//   --seed=N             trial seed        --path-seed=N   path draw seed
//   --trials=N           session length for `stats` (default 5)
//   --jobs=N             worker threads for `stats` grids (default 1 = the
//                        exact serial reference; 0 = hardware concurrency)
//   --trace              print the packet ladder
//   --trace-out=FILE     write the structured trace as Chrome trace-event
//                        JSON (chrome://tracing / Perfetto)
//   --pcap=FILE          capture the client's wire to a pcap file
//   --metrics[=json|table]  dump the obs registry after any command
//   --metrics-out=FILE   write the metrics snapshot to FILE as JSON on exit
//   --timeline-out=FILE  (fleet, search) record a virtual-time timeline
//                        during the run and write it as "ys.timeline.v1"
//                        JSON — the input of `yourstate report`
//   --timeline-csv=FILE  same, flattened to CSV rows
//   --timeline-bucket-ms=N  timeline bucket width (default 1000)
//   --faults=SPEC        run under a deterministic fault plan: a shipped
//                        plan name, inline clauses ("loss:at=50ms,dur=2s,
//                        p=0.25"), or @plan.json — see EXPERIMENTS.md
//   --fleet=SPEC         fleet run description for `fleet` and
//                        `explain --bench=fleet`: inline spec ("clients=64;
//                        flows=400;...") or @file.json — see EXPERIMENTS.md
//
// `explain` options (grid coordinates; --server is the server INDEX here):
//   --bench=NAME         table1 | table4-inside | table4-intang |
//                        table6-dns | faults | fleet | search
//   --cell=N --vantage=N --server=N --trial=N   the coordinate
//   --trials=N --servers=N --seed=S --faults=SPEC  the bench scale (must
//                        match the run being explained for identical
//                        replay; for `faults`, cell = plan*2 + intang; for
//                        table1, cell = row*2 + (keyword ? 0 : 1); for
//                        table6-dns, cell = resolver; for fleet, pass the
//                        run's --fleet= and the (vantage, trial) flow; for
//                        search, pass --program=SPEC from the archive and
//                        cell = GFW variant index — the trial re-runs with
//                        the exact per-trial seed the search grid used)
//   --program=SPEC       a ys::search program spec; also accepted by
//                        `trial` to run a discovered program directly
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/json.h"
#include "exp/benchdef.h"
#include "fleet/fleet.h"
#include "exp/explain.h"
#include "exp/prober.h"
#include "exp/scenario.h"
#include "exp/stats.h"
#include "exp/trial.h"
#include "faults/fault_plan.h"
#include "netsim/pcap.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/timeline_export.h"
#include "obs/trace_export.h"
#include "runner/runner.h"
#include "search/engine.h"
#include "supervisor/shard_child.h"
#include "supervisor/supervisor.h"

namespace ys {
namespace {

using namespace ys::exp;

struct CliOptions {
  std::string command;
  std::string vp = "aliyun-sh";
  net::IpAddr server = net::make_ip(93, 184, 216, 34);
  strategy::StrategyId strategy = strategy::StrategyId::kNone;
  bool use_intang = false;
  bool keyword = true;
  bool trace = false;
  std::string trace_out;
  u64 seed = 1;
  u64 path_seed = 0;
  int trials = 5;
  int jobs = 1;
  // `explain` coordinates and scale (--server doubles as the server index).
  std::string bench = "table4-intang";
  int cell = 0;
  int vantage = 0;
  int server_index = 0;
  int trial = 0;
  int servers_scale = 0;  // 0 = the bench default
  bool dump_metrics = false;
  bool metrics_as_table = false;
  std::string pcap;
  std::string metrics_out;
  std::string domain = "www.dropbox.com";
  std::string faults;  // fault plan spec; empty = fault-free
  std::string fleet;   // fleet run spec; empty = FleetConfig defaults
  std::string program;  // ys::search program spec (trial, explain)
  int faulted_trials = -1;  // explain --bench=search scale; -1 = default
  std::string timeline_out;   // fleet: write the run's timeline as JSON
  std::string timeline_csv;   // fleet: same, flattened to CSV
  int timeline_bucket_ms = 1000;
  // Supervised fleet sharding (`fleet --shards=N --supervise`) plus the
  // shard-child protocol flags the parent passes to its children.
  std::string resume_dir;  // shard checkpoints + supervisor manifest
  int shards = 1;
  bool supervise = false;
  std::string shard;       // child mode: "i/N" slice of the vantage axis
  int status_fd = -1;      // child: heartbeat pipe write end (from parent)
  int shard_attempt = 0;   // child: which spawn of this shard we are
  double status_interval = 0.05;  // heartbeat cadence, seconds
  int max_restarts = 3;    // retry budget per shard before degrading
  std::string chaos;       // fault plan spec with shard-* chaos clauses
};

/// Parse --faults once into storage that outlives every scenario built
/// from it (ScenarioOptions::faults is a borrowed pointer).
const faults::FaultPlan* cli_fault_plan(const CliOptions& cli) {
  if (cli.faults.empty()) return nullptr;
  static faults::FaultPlan plan;
  static bool parsed = false;
  if (!parsed) {
    std::string error;
    plan = faults::parse_fault_plan(cli.faults, error);
    if (!error.empty()) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      std::exit(2);
    }
    parsed = true;
  }
  return &plan;
}

void print_metrics(const CliOptions& cli) {
  const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
  std::fputs(cli.metrics_as_table ? obs::to_table(snap).c_str()
                                  : obs::to_json(snap).c_str(),
             stdout);
}

void write_metrics_out(const CliOptions& cli) {
  if (cli.metrics_out.empty()) return;
  const std::string json =
      obs::to_json(obs::MetricsRegistry::global().snapshot());
  if (cli.metrics_out == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::FILE* f = std::fopen(cli.metrics_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --metrics-out file %s\n",
                 cli.metrics_out.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Write a recorded timeline to the --timeline-out / --timeline-csv paths
/// (either may be empty). Shared by `fleet` and `search`.
void write_timeline_files(const obs::Timeline& tl, const std::string& json,
                          const std::string& csv) {
  if (!json.empty()) {
    if (obs::write_timeline_json(json, tl)) {
      std::printf("timeline written to %s (%zu series)\n", json.c_str(),
                  tl.series_count());
    } else {
      std::fprintf(stderr, "cannot write --timeline-out file %s\n",
                   json.c_str());
    }
  }
  if (!csv.empty()) {
    if (obs::write_timeline_csv(csv, tl)) {
      std::printf("timeline CSV written to %s\n", csv.c_str());
    } else {
      std::fprintf(stderr, "cannot write --timeline-csv file %s\n",
                   csv.c_str());
    }
  }
}

bool read_text_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

/// Per-strategy success-time profile from the exp.vtime.success.* virtual
/// time histograms collected during the session.
void print_vtime_profile() {
  const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
  bool header = false;
  for (const auto& [name, h] : snap.histograms) {
    constexpr const char* kPrefix = "exp.vtime.success.";
    if (name.rfind(kPrefix, 0) != 0 || h.count == 0) continue;
    if (!header) {
      std::printf("success virtual-time profile (sim ms):\n");
      header = true;
    }
    std::printf("  %-32s n=%-6llu mean=%.1f\n",
                name.c_str() + std::strlen(kPrefix),
                static_cast<unsigned long long>(h.count), h.sum / h.count);
  }
  if (header) std::printf("\n");
}

std::optional<net::IpAddr> parse_ip(const std::string& text) {
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return std::nullopt;
  }
  return net::make_ip(static_cast<u8>(a), static_cast<u8>(b),
                      static_cast<u8>(c), static_cast<u8>(d));
}

std::optional<VantagePoint> find_vp(const std::string& name) {
  for (const auto& vp : china_vantage_points()) {
    if (vp.name == name) return vp;
  }
  for (const auto& vp : foreign_vantage_points()) {
    if (vp.name == name) return vp;
  }
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: yourstate <list|trial|probe|dns|tor|stats|fleet|"
               "search|explain|report|perf> [--vp=NAME] "
               "[--server=IP] [--strategy=NAME] [--program=SPEC] [--intang] "
               "[--keyword=0|1] "
               "[--seed=N] [--path-seed=N] [--trials=N] [--jobs=N] [--trace] "
               "[--trace-out=FILE] [--pcap=FILE] [--domain=NAME] "
               "[--metrics[=json|table]] [--metrics-out=FILE]\n"
               "       yourstate fleet [--fleet=SPEC|@file.json] [--seed=S] "
               "[--jobs=N] [--timeline-out=FILE] [--timeline-csv=FILE] "
               "[--timeline-bucket-ms=N]\n"
               "       yourstate fleet --shards=N --supervise "
               "--resume-dir=DIR [--max-restarts=N] [--status-interval=S] "
               "[--chaos=SPEC] [--fleet=SPEC] [--seed=S] [--jobs=N] "
               "[--timeline-out=FILE]\n"
               "       yourstate shard-status --resume-dir=DIR\n"
               "       yourstate search [--population=N] [--generations=N] "
               "[--budget=N] [--servers=N] [--trials=N] [--faulted-trials=N] "
               "[--faults=SPEC] [--coevo-rounds=N] [--seed=S] [--jobs=N] "
               "[--resume-dir=D] [--report=FILE] [--heartbeat=S] "
               "[--metrics-out=FILE] [--timeline-out=FILE] "
               "[--timeline-csv=FILE]\n"
               "       yourstate report TIMELINE.json [--out=FILE] "
               "[--title=TEXT] [--fleet=SPEC] [--metrics=FILE]\n"
               "       yourstate explain --bench=NAME --cell=N --vantage=N "
               "--server=N --trial=N [--trials=N] [--servers=N] [--seed=S] "
               "[--fleet=SPEC] [--program=SPEC] [--trace-out=FILE] "
               "[--pcap=FILE]\n"
               "       yourstate perf --diff OLD.json NEW.json [--check] "
               "[--tolerance=X] [--tolerance-for=METRIC:X] [--json]\n");
  return 2;
}

/// `yourstate perf` — own flag scan: the generic parser would reject
/// --diff and the positional report paths.
int cmd_perf(int argc, char** argv) {
  bool diff = false;
  bool check = false;
  bool as_json = false;
  double tolerance = 0.10;
  std::map<std::string, double> tolerance_overrides;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg.rfind("--tolerance-for=", 0) == 0) {
      const std::string spec = arg.substr(16);
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "--tolerance-for wants METRIC:X (got %s)\n",
                     spec.c_str());
        return 2;
      }
      const double band = std::atof(spec.c_str() + colon + 1);
      if (band < 0.0) {
        std::fprintf(stderr, "--tolerance-for band must be >= 0\n");
        return 2;
      }
      tolerance_overrides[spec.substr(0, colon)] = band;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(arg.c_str() + 12);
      if (tolerance < 0.0) {
        std::fprintf(stderr, "--tolerance must be >= 0\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (!diff || files.size() != 2) {
    std::fprintf(stderr,
                 "perf wants: yourstate perf --diff OLD.json NEW.json "
                 "[--check] [--tolerance=X] [--tolerance-for=METRIC:X] "
                 "[--json]\n");
    return 2;
  }
  std::string error;
  const auto old_report = obs::perf::BenchReport::load(files[0], &error);
  if (!old_report) {
    std::fprintf(stderr, "%s: %s\n", files[0].c_str(), error.c_str());
    return 2;
  }
  const auto new_report = obs::perf::BenchReport::load(files[1], &error);
  if (!new_report) {
    std::fprintf(stderr, "%s: %s\n", files[1].c_str(), error.c_str());
    return 2;
  }
  const obs::perf::DiffResult result = obs::perf::diff_reports(
      *old_report, *new_report, tolerance, tolerance_overrides);
  if (as_json) {
    std::printf("%s", result.to_json().c_str());
    if (check && !result.ok()) return 1;
    return 0;
  }
  std::printf("perf diff: %s (%s) -> %s (%s), tolerance %.0f%%\n\n",
              files[0].c_str(), old_report->name.c_str(), files[1].c_str(),
              new_report->name.c_str(), tolerance * 100.0);
  for (const auto& [metric, band] : tolerance_overrides) {
    std::printf("  tolerance override: %s at %.2f%%\n", metric.c_str(),
                band * 100.0);
  }
  if (old_report->name != new_report->name) {
    std::printf("note: comparing reports from different benches (%s vs %s)\n\n",
                old_report->name.c_str(), new_report->name.c_str());
  }
  std::printf("%s", result.render().c_str());
  if (check && !result.ok()) return 1;
  return 0;
}

/// `yourstate report` — own flag scan (positional timeline file). Renders
/// a "ys.timeline.v1" export as a self-contained HTML dashboard; with
/// --metrics=FILE it first cross-checks the timeline's whole-run counter
/// totals against the aggregate metrics snapshot of the same run (the
/// acceptance bar: time-resolved and aggregate views must agree).
int cmd_report(int argc, char** argv) {
  std::string out = "report.html";
  std::string metrics_path;
  obs::ReportOptions opt;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--out")) {
      out = *v;
    } else if (auto v = value("--title")) {
      opt.title = *v;
    } else if (auto v = value("--fleet")) {
      opt.fleet_spec = *v;
    } else if (auto v = value("--metrics")) {
      metrics_path = *v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 1) {
    std::fprintf(stderr,
                 "report wants: yourstate report TIMELINE.json [--out=FILE] "
                 "[--title=TEXT] [--fleet=SPEC] [--metrics=FILE]\n");
    return 2;
  }

  std::string error;
  const auto doc = obs::load_timeline_file(files[0], &error);
  if (!doc) {
    std::fprintf(stderr, "%s: %s\n", files[0].c_str(), error.c_str());
    return 2;
  }
  opt.source = files[0];

  if (!metrics_path.empty()) {
    std::string text;
    if (!read_text_file(metrics_path, text)) {
      std::fprintf(stderr, "cannot read --metrics file %s\n",
                   metrics_path.c_str());
      return 2;
    }
    const auto snap = json::parse(text);
    const json::Value* counters =
        snap.has_value() && snap->is_object() ? snap->find("counters")
                                              : nullptr;
    if (counters == nullptr || !counters->is_object()) {
      std::fprintf(stderr, "%s: no \"counters\" object (want a "
                   "--metrics-out snapshot)\n",
                   metrics_path.c_str());
      return 2;
    }
    int mismatches = 0;
    for (const char* name : {"fleet.flows", "fleet.flow_success",
                             "fleet.cache_hit", "fleet.cross_client_supply"}) {
      const json::Value* c = counters->find(name);
      if (c == nullptr || !c->is_number()) continue;  // not a fleet run
      const i64 want = static_cast<i64>(c->number);
      const i64 got = doc->total(name);
      if (got != want) {
        std::fprintf(stderr,
                     "%s: timeline total %lld != metrics counter %lld\n",
                     name, static_cast<long long>(got),
                     static_cast<long long>(want));
        ++mismatches;
      }
    }
    if (mismatches > 0) return 1;
    std::printf("metrics cross-check: timeline totals match %s\n",
                metrics_path.c_str());
  }

  const std::string html = obs::render_timeline_html(*doc, opt);
  std::FILE* f = std::fopen(out.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --out file %s\n", out.c_str());
    return 2;
  }
  std::fwrite(html.data(), 1, html.size(), f);
  std::fclose(f);
  std::printf("report written to %s (%zu series, %zu annotations)\n",
              out.c_str(), doc->series.size(), doc->annotations.size());
  return 0;
}

/// `yourstate shard-status` — own flag scan (no generic options apply).
/// Pretty-prints the supervisor-state.json manifest a supervised fleet run
/// keeps under its resume dir, plus the liveness of each shard's store
/// lock (is the sweep still running, finished, or dead mid-flight?).
int cmd_shard_status(int argc, char** argv) {
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--resume-dir=", 0) == 0) {
      dir = arg.substr(13);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    } else {
      dir = arg;  // positional directory
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "shard-status wants --resume-dir=DIR\n");
    return 2;
  }
  std::string text;
  if (!read_text_file(dir + "/supervisor-state.json", text)) {
    std::fprintf(stderr,
                 "%s: no supervisor-state.json (not a --supervise resume "
                 "dir, or the sweep has not started)\n",
                 dir.c_str());
    return 2;
  }
  const auto doc = json::parse(text);
  const json::Value* shards =
      doc.has_value() && doc->is_object() ? doc->find("shards") : nullptr;
  if (shards == nullptr || !shards->is_array()) {
    std::fprintf(stderr, "%s: malformed supervisor manifest\n", dir.c_str());
    return 2;
  }

  std::printf("shard  vantages  state     attempts  progress      lock\n");
  for (const json::Value& s : shards->array) {
    if (!s.is_object()) continue;
    auto num = [&s](const char* key) -> long long {
      const json::Value* v = s.find(key);
      return v != nullptr && v->is_number() ? static_cast<long long>(v->number)
                                           : 0;
    };
    const json::Value* state = s.find("state");
    const long long shard = num("shard");

    // Lock liveness: the shard's store lock names the owning pid.
    std::string lock = "-";
    std::string lock_text;
    if (read_text_file(
            dir + "/" + supervisor::shard_bench_name(static_cast<int>(shard)) +
                ".results.lock",
            lock_text)) {
      long pid = 0;
      if (std::sscanf(lock_text.c_str(), "pid %ld", &pid) == 1 && pid > 0) {
        const bool live = ::kill(static_cast<pid_t>(pid), 0) == 0 ||
                          errno == EPERM;
        lock = (live ? "pid " : "stale pid ") + std::to_string(pid);
      } else {
        lock = "garbled";
      }
    }
    char range[32];
    std::snprintf(range, sizeof(range), "[%lld,%lld)", num("vantage_begin"),
                  num("vantage_end"));
    char progress[32];
    std::snprintf(progress, sizeof(progress), "%lld/%lld", num("done"),
                  num("total"));
    std::printf("%5lld  %-8s  %-9s %8lld  %-12s  %s\n", shard, range,
                state != nullptr && state->is_string() ? state->string.c_str()
                                                       : "?",
                num("attempts"), progress, lock.c_str());
  }

  const json::Value* events = doc->find("events");
  if (events != nullptr && events->is_array() && !events->array.empty()) {
    std::printf("\nrecent events:\n");
    const std::size_t begin =
        events->array.size() > 12 ? events->array.size() - 12 : 0;
    for (std::size_t i = begin; i < events->array.size(); ++i) {
      const json::Value& e = events->array[i];
      if (!e.is_object()) continue;
      const json::Value* kind = e.find("kind");
      const json::Value* at = e.find("at");
      const json::Value* shard = e.find("shard");
      const json::Value* detail = e.find("detail");
      std::printf("  %8.3fs  shard %lld  %-13s %s\n",
                  at != nullptr && at->is_number() ? at->number : 0.0,
                  shard != nullptr && shard->is_number()
                      ? static_cast<long long>(shard->number)
                      : 0,
                  kind != nullptr && kind->is_string() ? kind->string.c_str()
                                                       : "?",
                  detail != nullptr && detail->is_string()
                      ? detail->string.c_str()
                      : "");
    }
  }
  return 0;
}

/// `yourstate search` — own flag scan (search has its own knob set).
int cmd_search(int argc, char** argv) {
  search::SearchConfig cfg;
  std::string report_path;
  std::string metrics_out;
  std::string timeline_out;
  std::string timeline_csv;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--population")) {
      cfg.population = std::max(1, std::atoi(v->c_str()));
    } else if (auto v = value("--generations")) {
      cfg.generations = std::max(1, std::atoi(v->c_str()));
    } else if (auto v = value("--budget")) {
      cfg.budget = static_cast<u64>(std::atoll(v->c_str()));
    } else if (auto v = value("--servers")) {
      cfg.servers = std::max(1, std::atoi(v->c_str()));
    } else if (auto v = value("--trials")) {
      cfg.clean_trials = std::max(1, std::atoi(v->c_str()));
    } else if (auto v = value("--faulted-trials")) {
      cfg.faulted_trials = std::max(0, std::atoi(v->c_str()));
    } else if (auto v = value("--faults")) {
      cfg.fault_spec = *v;
    } else if (auto v = value("--coevo-rounds")) {
      cfg.coevo_rounds = std::max(0, std::atoi(v->c_str()));
    } else if (auto v = value("--seed")) {
      cfg.seed = static_cast<u64>(std::atoll(v->c_str()));
    } else if (auto v = value("--jobs")) {
      cfg.jobs = std::atoi(v->c_str());
    } else if (auto v = value("--resume-dir")) {
      cfg.resume_dir = *v;
    } else if (auto v = value("--heartbeat")) {
      cfg.heartbeat = std::atof(v->c_str());
    } else if (auto v = value("--report")) {
      report_path = *v;
    } else if (auto v = value("--metrics-out")) {
      metrics_out = *v;
    } else if (auto v = value("--timeline-out")) {
      timeline_out = *v;
    } else if (auto v = value("--timeline-csv")) {
      timeline_csv = *v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    }
  }

  // Opt-in timeline: the engine buckets its search.* series by generation
  // (sample_at), so the bucket width only matters for the exp.* trial
  // series the evaluations record alongside.
  std::optional<obs::Timeline> timeline;
  std::optional<obs::ScopedTimeline> timeline_scope;
  if (!timeline_out.empty() || !timeline_csv.empty()) {
    timeline.emplace(SimTime::from_sec(1));
    timeline_scope.emplace(&*timeline);
  }

  search::SearchEngine engine(cfg);
  std::printf(
      "search: population=%d generations=%d variants=%zu servers=%d "
      "trials=%d+%d faults=%s seed=%llu jobs=%d\n\n",
      cfg.population, cfg.generations, cfg.variants.size(), cfg.servers,
      cfg.clean_trials, cfg.faulted_trials, cfg.fault_spec.c_str(),
      static_cast<unsigned long long>(cfg.seed), cfg.jobs);

  const auto t0 = std::chrono::steady_clock::now();
  const search::SearchResult result = engine.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%s", result.render().c_str());
  std::printf(
      "\n%d generation(s), %llu trial evaluations%s, %.2fs wall\n",
      result.generations_run,
      static_cast<unsigned long long>(result.evaluations),
      result.resumed ? " (resumed from checkpoint)" : "", wall);

  if (!report_path.empty()) {
    obs::perf::BenchReport report = obs::perf::make_report("search");
    report.config["seed"] = static_cast<double>(cfg.seed);
    report.config["population"] = cfg.population;
    report.config["generations"] = cfg.generations;
    report.config["servers"] = cfg.servers;
    report.config["jobs"] = cfg.jobs;
    report.wall_seconds = wall;
    report.metrics["evaluations"] = {static_cast<double>(result.evaluations),
                                     "trials", obs::perf::Direction::kInfo};
    report.metrics["trials_per_sec"] = {
        wall > 0.0 ? static_cast<double>(result.evaluations) / wall : 0.0,
        "trials/s", obs::perf::Direction::kHigherIsBetter};
    for (const search::VariantArchive& archive : result.archives) {
      report.metrics["archive_size." + archive.variant] = {
          static_cast<double>(archive.entries.size()), "programs",
          obs::perf::Direction::kInfo};
      report.metrics["best_success." + archive.variant] = {
          archive.entries.empty() ? 0.0
                                  : archive.entries.front().score.success,
          "rate", obs::perf::Direction::kHigherIsBetter};
    }
    if (!result.coevo.empty()) {
      report.metrics["coevo_survivors"] = {
          static_cast<double>(result.coevo.back().survivors.size()),
          "programs", obs::perf::Direction::kInfo};
    }
    report.snapshot = obs::MetricsRegistry::global().snapshot();
    if (report.write(report_path)) {
      std::printf("report written to %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write --report file %s\n",
                   report_path.c_str());
    }
  }
  if (timeline.has_value()) {
    timeline_scope.reset();
    write_timeline_files(*timeline, timeline_out, timeline_csv);
  }
  if (!metrics_out.empty()) {
    CliOptions cli;
    cli.metrics_out = metrics_out;
    write_metrics_out(cli);
  }
  return 0;
}

int cmd_list() {
  std::printf("vantage points (inside China):\n");
  for (const auto& vp : china_vantage_points()) {
    std::printf("  %-12s %-13s %s%s\n", vp.name.c_str(), vp.city.c_str(),
                vp.tor_unfiltered_path ? "[no Tor filter on path] " : "",
                vp.dns_path_interference ? "[DNS path interference]" : "");
  }
  std::printf("vantage points (outside China):\n");
  for (const auto& vp : foreign_vantage_points()) {
    std::printf("  %-12s %s\n", vp.name.c_str(), vp.city.c_str());
  }
  std::printf("strategies:\n");
  for (auto id : strategy::all_strategies()) {
    std::printf("  %s\n", strategy::to_string(id));
  }
  return 0;
}

Scenario make_scenario(const gfw::DetectionRules* rules,
                       const CliOptions& cli, const VantagePoint& vp) {
  ScenarioOptions opt;
  opt.vp = vp;
  opt.server.host = net::ip_to_string(cli.server);
  opt.server.ip = cli.server;
  opt.cal = Calibration::standard();
  opt.seed = cli.seed;
  opt.path_seed = cli.path_seed;
  opt.tracing = cli.trace || !cli.trace_out.empty();
  opt.faults = cli_fault_plan(cli);
  return Scenario(rules, opt);
}

void write_trace_out(Scenario& sc, const std::string& path) {
  if (path.empty()) return;
  if (obs::write_chrome_trace(path, sc.trace())) {
    std::printf("trace written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write --trace-out file %s\n", path.c_str());
  }
}

void attach_pcap(Scenario& sc, net::PcapWriter& writer,
                 const std::string& path) {
  if (path.empty()) return;
  if (auto st = writer.open(path); !st.ok()) {
    std::fprintf(stderr, "pcap: %s\n", st.error().message.c_str());
    return;
  }
  sc.path().set_client_capture(
      [&writer](const net::Packet& pkt, SimTime at) {
        (void)writer.write(pkt, at);
      });
}

int cmd_trial(const CliOptions& cli, const VantagePoint& vp) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  Scenario sc = make_scenario(&rules, cli, vp);
  net::PcapWriter writer;
  attach_pcap(sc, writer, cli.pcap);

  HttpTrialOptions http;
  http.with_keyword = cli.keyword;
  http.strategy = cli.strategy;
  http.use_intang = cli.use_intang;
  std::optional<search::CandidateProgram> program;
  if (!cli.program.empty()) {
    std::string error;
    program = search::CandidateProgram::parse(cli.program, &error);
    if (!program) {
      std::fprintf(stderr, "--program: %s\n", error.c_str());
      return 2;
    }
    http.strategy_factory = [&program] { return program->make_strategy(); };
  }
  const TrialResult result = run_http_trial(sc, http);

  if (cli.trace) std::printf("%s\n", sc.trace().render().c_str());
  write_trace_out(sc, cli.trace_out);
  std::printf("vantage=%s server=%s strategy=%s keyword=%d\n",
              vp.name.c_str(), net::ip_to_string(cli.server).c_str(),
              program ? ("search:" + program->spec()).c_str()
                      : strategy::to_string(result.strategy_used),
              cli.keyword ? 1 : 0);
  std::printf("outcome=%s response=%d gfw_resets=%d other_resets=%d\n",
              to_string(result.outcome), result.response_received,
              result.gfw_reset_seen, result.other_reset_seen);
  if (writer.is_open()) {
    std::printf("captured %zu packets to %s\n", writer.packets_written(),
                cli.pcap.c_str());
  }
  return result.outcome == Outcome::kSuccess ? 0 : 1;
}

int cmd_probe(const CliOptions& cli, const VantagePoint& vp) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  ScenarioOptions opt;
  opt.vp = vp;
  opt.server.host = net::ip_to_string(cli.server);
  opt.server.ip = cli.server;
  opt.cal = Calibration::standard();
  opt.seed = cli.seed;
  opt.path_seed = cli.path_seed;
  const GfwFindings findings = probe_gfw(&rules, opt);
  std::printf("probing %s -> %s\n%s", vp.name.c_str(),
              net::ip_to_string(cli.server).c_str(),
              findings.to_string().c_str());
  return 0;
}

int cmd_dns(const CliOptions& cli, const VantagePoint& vp) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  Scenario sc = make_scenario(&rules, cli, vp);
  DnsTrialOptions dns;
  dns.domain = cli.domain;
  dns.use_intang = cli.use_intang || cli.strategy != strategy::StrategyId::kNone;
  if (cli.strategy != strategy::StrategyId::kNone) dns.strategy = cli.strategy;
  const DnsTrialResult result = run_dns_trial(sc, dns);
  std::printf("domain=%s via=%s intang=%d\n", cli.domain.c_str(),
              net::ip_to_string(cli.server).c_str(), dns.use_intang ? 1 : 0);
  std::printf("answered=%d poisoned=%d outcome=%s\n", result.answered,
              result.poisoned, to_string(result.outcome));
  return result.outcome == Outcome::kSuccess ? 0 : 1;
}

/// Run a short INTANG browsing session (several HTTP fetches with the
/// sensitive keyword, shared strategy knowledge) and dump the metrics
/// registry: the "what did every layer of the ecosystem do" view. The
/// session runs as a runner grid: one chained cell per foreign server
/// port offset is overkill for a single vantage point, so the grid is a
/// single chain whose trial axis carries the session — the selector's
/// history accumulates in trial order exactly as the serial loop did.
int cmd_stats(const CliOptions& cli, const VantagePoint& vp) {
  obs::MetricsRegistry::global().reset_all();
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();

  runner::TrialGrid grid;
  grid.trials = static_cast<std::size_t>(cli.trials);
  grid.chain_trials = true;  // one selector, history in trial order
  runner::PoolOptions pool;
  pool.jobs = cli.jobs;

  std::vector<intang::StrategySelector> selectors(
      grid.chains(), intang::StrategySelector{intang::StrategySelector::Config{}});
  auto out = runner::collect_grid(
      grid, pool,
      [&](const runner::GridCoord& c, runner::TaskContext&) {
        CliOptions per_trial = cli;
        per_trial.seed = cli.seed + static_cast<u64>(c.trial);
        Scenario sc = make_scenario(&rules, per_trial, vp);
        HttpTrialOptions http;
        http.with_keyword = cli.keyword;
        http.strategy = cli.strategy;
        // The point of `stats` is to light up every component, INTANG
        // included, unless the user pinned a fixed strategy.
        http.use_intang =
            cli.use_intang || cli.strategy == strategy::StrategyId::kNone;
        http.shared_selector = &selectors[grid.chain(c)];
        return run_http_trial(sc, http).outcome;
      });

  RateTally tally;
  for (const Outcome o : out.slots) tally.add(o);
  tally.publish(vp.name);
  out.report.publish(obs::MetricsRegistry::global());

  std::printf("%s\n", out.report.to_string().c_str());
  print_vtime_profile();
  print_metrics(cli);
  return 0;
}

int cmd_tor(const CliOptions& cli, const VantagePoint& vp) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  Scenario sc = make_scenario(&rules, cli, vp);
  TorTrialOptions tor;
  tor.use_intang = cli.use_intang || cli.strategy != strategy::StrategyId::kNone;
  tor.strategy = cli.strategy != strategy::StrategyId::kNone
                     ? cli.strategy
                     : strategy::StrategyId::kImprovedTeardown;
  if (!tor.use_intang) tor.strategy = strategy::StrategyId::kNone;
  const TorTrialResult result = run_tor_trial(sc, tor);
  std::printf("bridge=%s handshake=%d ip_blocked=%d outcome=%s\n",
              net::ip_to_string(cli.server).c_str(),
              result.handshake_completed, result.bridge_ip_blocked,
              to_string(result.outcome));
  return result.outcome == Outcome::kSuccess ? 0 : 1;
}

/// Supervised parent: partition the sweep's vantage axis into shards, run
/// each as a `yourstate fleet --shard=i/N` child under ys::supervisor, then
/// merge the shard checkpoints and rebuild the unsharded run's telemetry
/// from the slots (the children's registries died with their processes, but
/// the slots are a sufficient statistic for every fleet.* series, so the
/// merged metrics/timeline are byte-identical to an unsupervised sweep).
int cmd_fleet_supervised(const CliOptions& cli,
                         const fleet::FleetConfig& cfg) {
  if (cli.resume_dir.empty()) {
    std::fprintf(stderr,
                 "fleet --supervise wants --resume-dir=DIR (shard "
                 "checkpoints + the supervisor manifest live there)\n");
    return 2;
  }
  faults::FaultPlan chaos;
  if (!cli.chaos.empty()) {
    std::string error;
    chaos = faults::parse_fault_plan(cli.chaos, error);
    if (!error.empty()) {
      std::fprintf(stderr, "--chaos: %s\n", error.c_str());
      return 2;
    }
  }

  const fleet::Fleet fl(cfg);
  const runner::TrialGrid grid = fl.grid();
  const std::vector<supervisor::ShardPartition> parts =
      supervisor::partition_vantages(grid.vantages, cli.shards);
  // partition_vantages drops empty slices when vantages < N; the dense
  // count is the N the children and the merge must agree on (it keys the
  // shard store signatures).
  const int nshards = static_cast<int>(parts.size());

  char exe[4096];
  const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  const std::string self =
      len > 0 ? std::string(exe, static_cast<std::size_t>(len))
              : "/proc/self/exe";

  supervisor::SupervisorOptions opt;
  opt.max_restarts = cli.max_restarts;
  opt.heartbeat_seconds = cli.status_interval;
  opt.resume_dir = cli.resume_dir;

  std::printf("fleet: %s\nsupervising %d shard(s) over %zu vantage(s), "
              "resume dir %s\n\n",
              cfg.summary().c_str(), nshards, grid.vantages,
              cli.resume_dir.c_str());

  const supervisor::SupervisorResult result = supervisor::supervise(
      parts, opt,
      [&](const supervisor::ShardPartition& part, int attempt,
          int status_fd) {
        std::vector<std::string> args{self, "fleet"};
        if (!cli.fleet.empty()) args.push_back("--fleet=" + cli.fleet);
        if (cli.seed != 1) args.push_back("--seed=" + std::to_string(cli.seed));
        args.push_back("--jobs=" + std::to_string(cli.jobs));
        args.push_back("--shard=" + std::to_string(part.shard) + "/" +
                       std::to_string(nshards));
        args.push_back("--resume-dir=" + cli.resume_dir);
        args.push_back("--status-fd=" + std::to_string(status_fd));
        args.push_back("--shard-attempt=" + std::to_string(attempt));
        char hb[32];
        std::snprintf(hb, sizeof(hb), "--status-interval=%g",
                      cli.status_interval);
        args.push_back(hb);
        if (!cli.chaos.empty()) args.push_back("--chaos=" + cli.chaos);
        return args;
      });

  const supervisor::ShardMerge merge =
      supervisor::merge_shard_stores(fl, cli.resume_dir, nshards);

  std::optional<obs::Timeline> timeline;
  if (!cli.timeline_out.empty() || !cli.timeline_csv.empty()) {
    timeline.emplace(SimTime::from_ms(std::max(1, cli.timeline_bucket_ms)));
  }
  fl.rebuild_telemetry(merge.slots, timeline ? &*timeline : nullptr);
  if (timeline.has_value()) {
    fl.annotate_timeline(&*timeline);
    supervisor::record_timeline(result, &*timeline);
    supervisor::annotate_coverage(merge, &*timeline);
    write_timeline_files(*timeline, cli.timeline_out, cli.timeline_csv);
  }

  std::printf("%s\n", supervisor::render_summary(result).c_str());
  std::printf("%s", fl.analyze(merge.slots).render().c_str());
  if (result.degraded_count() > 0) {
    std::printf(
        "\nwarning: %d shard(s) degraded after the retry budget; the "
        "report above covers only recorded flows (%zu missing)\n",
        result.degraded_count(), merge.missing);
  }
  // Degraded shards are an honest partial result, not a failure: the
  // sweep completed and said so. Callers gate on shard-status instead.
  return 0;
}

/// Run a full multi-client fleet sweep (src/fleet/) from --fleet= and
/// print the convergence report. Same grid + chain-state shape as
/// bench_fleet's sweep, minus the results store (use bench_fleet
/// --resume-dir= for resumable runs).
int cmd_fleet(const CliOptions& cli) {
  std::string error;
  fleet::FleetConfig cfg = fleet::parse_fleet_config(cli.fleet, error);
  if (!error.empty()) {
    std::fprintf(stderr, "--fleet: %s\n", error.c_str());
    return 2;
  }
  if (cli.seed != 1) cfg.seed = cli.seed;
  if (!cli.faults.empty()) {
    std::fprintf(stderr,
                 "fleet runs take fault plans via the soak schedule "
                 "(--fleet=\"...;soak=0s:%s\"), not --faults\n",
                 cli.faults.c_str());
    return 2;
  }

  // Shard child: sweep one vantage slice into a checkpoint store and exit.
  // Spawned by the supervised parent; also runnable by hand for debugging.
  if (!cli.shard.empty()) {
    int shard = -1;
    int shards = 0;
    if (std::sscanf(cli.shard.c_str(), "%d/%d", &shard, &shards) != 2 ||
        shard < 0 || shards <= 0 || shard >= shards) {
      std::fprintf(stderr, "bad --shard=%s (want i/N with 0 <= i < N)\n",
                   cli.shard.c_str());
      return 2;
    }
    if (cli.resume_dir.empty()) {
      std::fprintf(stderr, "fleet --shard wants --resume-dir=DIR\n");
      return 2;
    }
    supervisor::FleetShardOptions sopt;
    sopt.cfg = cfg;
    sopt.resume_dir = cli.resume_dir;
    sopt.shard = shard;
    sopt.shards = shards;
    sopt.status_fd = cli.status_fd;
    sopt.attempt = cli.shard_attempt;
    sopt.jobs = cli.jobs;
    sopt.heartbeat_seconds = cli.status_interval;
    if (!cli.chaos.empty()) {
      std::string chaos_error;
      sopt.chaos = faults::parse_fault_plan(cli.chaos, chaos_error);
      if (!chaos_error.empty()) {
        std::fprintf(stderr, "--chaos: %s\n", chaos_error.c_str());
        return 2;
      }
    }
    return supervisor::run_shard_child(sopt);
  }
  if (cli.supervise || cli.shards > 1) return cmd_fleet_supervised(cli, cfg);

  const fleet::Fleet fl(cfg);
  const runner::TrialGrid grid = fl.grid();
  std::printf("fleet: %s\n\n", cfg.summary().c_str());

  std::vector<std::unique_ptr<fleet::Fleet::VantageState>> states;
  states.reserve(grid.chains());
  for (std::size_t ch = 0; ch < grid.chains(); ++ch) {
    states.push_back(fl.make_vantage_state(ch));
  }
  runner::PoolOptions pool;
  pool.jobs = cli.jobs;

  // Opt-in timeline: installed on this thread, propagated to workers by
  // the pool (worker-private copies merged back after the join).
  std::optional<obs::Timeline> timeline;
  std::optional<obs::ScopedTimeline> timeline_scope;
  if (!cli.timeline_out.empty() || !cli.timeline_csv.empty()) {
    timeline.emplace(SimTime::from_ms(
        std::max(1, cli.timeline_bucket_ms)));
    timeline_scope.emplace(&*timeline);
  }
  auto out = runner::collect_grid_or(
      grid, pool, static_cast<i64>(-1),
      [&](const runner::GridCoord& c, runner::TaskContext&) {
        return fl.run_flow(c, *states[grid.chain(c)]).encode();
      });
  out.report.publish(obs::MetricsRegistry::global());
  if (timeline.has_value()) {
    fl.annotate_timeline(&*timeline);
    timeline_scope.reset();
    write_timeline_files(*timeline, cli.timeline_out, cli.timeline_csv);
  }

  std::printf("%s", fl.analyze(out.slots).render().c_str());
  std::printf("\n%s\n", out.report.to_string().c_str());
  return 0;
}

/// Replay one bench grid coordinate traced and attribute its verdict.
int cmd_explain(const CliOptions& cli) {
  // "search" is CLI-side: ys::exp cannot depend on ys::search.
  bool known = cli.bench == "search";
  for (const std::string& name : known_benches()) {
    if (name == cli.bench) known = true;
  }
  if (!known) {
    std::fprintf(stderr, "unknown --bench=%s (want:", cli.bench.c_str());
    for (const std::string& name : known_benches()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, " search)\n");
    return 2;
  }

  BenchScale scale;
  scale.trials = cli.trials;
  scale.seed = cli.seed != 1 ? cli.seed : 2017;  // bench default seed
  scale.faults = cli.faults;
  const bool is_faults = cli.bench == "faults";
  scale.servers = cli.servers_scale > 0 ? cli.servers_scale
                                        : (is_faults ? 8 : 77);

  const runner::GridCoord coord{
      static_cast<std::size_t>(cli.cell), static_cast<std::size_t>(cli.vantage),
      static_cast<std::size_t>(cli.server_index),
      static_cast<std::size_t>(cli.trial)};
  Replay replay;
  std::string vantage_name;
  std::string server_host;
  std::string extra;
  if (cli.bench == "search") {
    if (cli.program.empty()) {
      std::fprintf(stderr,
                   "--bench=search wants --program=SPEC (an archive entry's "
                   "program column; cell = GFW variant index)\n");
      return 2;
    }
    std::string error;
    const auto prog = search::CandidateProgram::parse(cli.program, &error);
    if (!prog) {
      std::fprintf(stderr, "--program: %s\n", error.c_str());
      return 2;
    }
    // Rebuild the search's evaluation config; the flags must match the run
    // being explained (same defaults as `yourstate search`).
    search::SearchConfig cfg;
    cfg.seed = scale.seed;
    if (cli.servers_scale > 0) cfg.servers = cli.servers_scale;
    if (cli.trials != 5) cfg.clean_trials = cli.trials;  // 5 = CLI default
    if (cli.faulted_trials >= 0) cfg.faulted_trials = cli.faulted_trials;
    if (!cli.faults.empty()) cfg.fault_spec = cli.faults;
    const search::SearchEngine engine(cfg);
    const std::size_t variants = cfg.variants.size();
    const std::size_t trials = static_cast<std::size_t>(cfg.clean_trials) +
                               static_cast<std::size_t>(cfg.faulted_trials);
    if (coord.cell >= variants ||
        coord.server >= static_cast<std::size_t>(cfg.servers) ||
        coord.trial >= trials) {
      std::fprintf(stderr,
                   "coordinate out of range: grid is variants=%zu servers=%d "
                   "trials=%zu (cell = GFW variant)\n",
                   variants, cfg.servers, trials);
      return 2;
    }
    replay = engine.replay(*prog, coord.cell, coord.server, coord.trial,
                           cli.trace_out, cli.pcap);
    vantage_name = cfg.variants[coord.cell].name;
    server_host = engine.server_population()[coord.server].host;
    extra = " variant=" + cfg.variants[coord.cell].name +
            (coord.trial >= static_cast<std::size_t>(cfg.clean_trials)
                 ? " [faulted trial: " + cfg.fault_spec + "]"
                 : "") +
            " program=" + prog->spec();
  } else if (is_faults) {
    const FaultsBench bench(scale);
    const runner::TrialGrid grid = bench.grid();
    if (coord.cell >= grid.cells || coord.vantage >= grid.vantages ||
        coord.server >= grid.servers || coord.trial >= grid.trials) {
      std::fprintf(stderr,
                   "coordinate out of range: grid is cells=%zu vantages=%zu "
                   "servers=%zu trials=%zu\n",
                   grid.cells, grid.vantages, grid.servers, grid.trials);
      return 2;
    }
    replay = bench.replay(coord, cli.trace_out, cli.pcap);
    vantage_name = bench.vantage_points()[coord.vantage].name;
    server_host = bench.server_population()[coord.server].host;
    extra = " plan=" + bench.plans()[bench.plan_of(coord.cell)].name +
            (bench.intang_cell(coord.cell) ? " [intang]" : " [baseline]");
  } else if (cli.bench == "table1") {
    const Table1Bench bench(scale);
    const runner::TrialGrid grid = bench.grid();
    if (coord.cell >= grid.cells || coord.vantage >= grid.vantages ||
        coord.server >= grid.servers || coord.trial >= grid.trials) {
      std::fprintf(stderr,
                   "coordinate out of range: grid is cells=%zu vantages=%zu "
                   "servers=%zu trials=%zu\n",
                   grid.cells, grid.vantages, grid.servers, grid.trials);
      return 2;
    }
    replay = bench.replay(coord, cli.trace_out, cli.pcap);
    vantage_name = bench.vantage_points()[coord.vantage].name;
    server_host = bench.server_population()[coord.server].host;
    extra = std::string(" row=") +
            Table1Bench::rows()[bench.row_of(coord.cell)].label +
            (bench.keyword_cell(coord.cell) ? " [keyword]" : " [no keyword]");
  } else if (cli.bench == "table6-dns") {
    const Table6Dns bench(scale);
    const runner::TrialGrid grid = bench.grid();
    if (coord.cell >= grid.cells || coord.vantage >= grid.vantages ||
        coord.server >= grid.servers || coord.trial >= grid.trials) {
      std::fprintf(stderr,
                   "coordinate out of range: grid is cells=%zu vantages=%zu "
                   "servers=%zu trials=%zu (cell = resolver)\n",
                   grid.cells, grid.vantages, grid.servers, grid.trials);
      return 2;
    }
    replay = bench.replay(coord, cli.trace_out, cli.pcap);
    vantage_name = bench.vantage_points()[coord.vantage].name;
    const Table6Dns::Resolver& res = Table6Dns::resolvers()[coord.cell];
    server_host = bench.resolver_specs()[coord.cell].host;
    extra = std::string(" resolver=") + res.label +
            (res.censored ? " [censored path]" : " [uncensored path]");
  } else if (cli.bench == "fleet") {
    std::string error;
    fleet::FleetConfig fcfg = fleet::parse_fleet_config(cli.fleet, error);
    if (!error.empty()) {
      std::fprintf(stderr, "--fleet: %s\n", error.c_str());
      return 2;
    }
    if (cli.seed != 1) fcfg.seed = cli.seed;
    scale.seed = fcfg.seed;  // header shows the seed the flow actually used
    const fleet::Fleet bench(fcfg);
    const runner::TrialGrid grid = bench.grid();
    if (coord.cell >= grid.cells || coord.vantage >= grid.vantages ||
        coord.server >= grid.servers || coord.trial >= grid.trials) {
      std::fprintf(stderr,
                   "coordinate out of range: grid is cells=%zu vantages=%zu "
                   "servers=%zu trials=%zu (trial = flow index; pass the "
                   "run's --fleet= spec)\n",
                   grid.cells, grid.vantages, grid.servers, grid.trials);
      return 2;
    }
    replay = bench.replay_flow(coord, cli.trace_out, cli.pcap);
    vantage_name = bench.vantage_points()[coord.vantage].name;
    // The grid's server axis is 1; the schedule carries the real target.
    const auto schedule = fleet::build_flow_schedule(fcfg, vantage_name);
    const fleet::FlowSpec& flow = schedule[coord.trial];
    server_host = bench.server_population()[flow.server].host;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " client=%d arrival=%lldms%s soak_phase=%d", flow.client,
                  static_cast<long long>(flow.at.us / 1000),
                  flow.fresh_session ? " [fresh session]" : "",
                  flow.soak_phase);
    extra = buf;
  } else {
    const Table4Inside bench(scale);
    const bool intang = cli.bench == "table4-intang";
    const runner::TrialGrid grid =
        intang ? bench.intang_grid() : bench.fixed_grid();
    if (coord.cell >= grid.cells || coord.vantage >= grid.vantages ||
        coord.server >= grid.servers || coord.trial >= grid.trials) {
      std::fprintf(stderr,
                   "coordinate out of range: grid is cells=%zu vantages=%zu "
                   "servers=%zu trials=%zu\n",
                   grid.cells, grid.vantages, grid.servers, grid.trials);
      return 2;
    }
    replay = intang ? bench.replay_intang(coord, cli.trace_out, cli.pcap)
                    : bench.replay_fixed(coord, cli.trace_out, cli.pcap);
    vantage_name = bench.vantage_points()[coord.vantage].name;
    server_host = bench.server_population()[coord.server].host;
  }

  std::printf("%s cell=%d vantage=%s server=%s trial=%d seed=%llu%s\n",
              cli.bench.c_str(), cli.cell, vantage_name.c_str(),
              server_host.c_str(), cli.trial,
              static_cast<unsigned long long>(scale.seed), extra.c_str());
  std::printf("%s\n", replay.ladder.c_str());
  std::printf("outcome=%s strategy=%s model=%s\n",
              to_string(replay.result.outcome),
              strategy::to_string(replay.result.strategy_used),
              replay.old_model ? "prior" : "evolved");
  std::printf("verdict: %s\n", replay.attribution.verdict.c_str());
  if (!replay.attribution.fault_note.empty()) {
    std::printf("%s\n", replay.attribution.fault_note.c_str());
  }
  if (replay.attribution.decisive_event != 0) {
    std::printf("decisive event: #%llu",
                static_cast<unsigned long long>(
                    replay.attribution.decisive_event));
    if (replay.attribution.causal_insertion_event != 0) {
      std::printf("  insertion send: #%llu",
                  static_cast<unsigned long long>(
                      replay.attribution.causal_insertion_event));
    }
    if (replay.attribution.strategy_decision_event != 0) {
      std::printf("  decision: #%llu",
                  static_cast<unsigned long long>(
                      replay.attribution.strategy_decision_event));
    }
    std::printf("\n");
  }
  if (!cli.trace_out.empty()) {
    std::printf("trace written to %s\n", cli.trace_out.c_str());
  }
  if (!cli.pcap.empty()) {
    std::printf("pcap written to %s\n", cli.pcap.c_str());
  }
  return replay.result.outcome == Outcome::kSuccess ? 0 : 1;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  CliOptions cli;
  cli.command = argv[1];
  if (cli.command == "perf") return cmd_perf(argc, argv);
  if (cli.command == "search") return cmd_search(argc, argv);
  if (cli.command == "report") return cmd_report(argc, argv);
  if (cli.command == "shard-status") return cmd_shard_status(argc, argv);

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--vp")) {
      cli.vp = *v;
    } else if (auto v = value("--server")) {
      if (cli.command == "explain") {
        cli.server_index = std::atoi(v->c_str());
      } else {
        auto ip = parse_ip(*v);
        if (!ip) {
          std::fprintf(stderr, "bad --server address: %s\n", v->c_str());
          return 2;
        }
        cli.server = *ip;
      }
    } else if (auto v = value("--bench")) {
      cli.bench = *v;
    } else if (auto v = value("--cell")) {
      cli.cell = std::atoi(v->c_str());
    } else if (auto v = value("--vantage")) {
      cli.vantage = std::atoi(v->c_str());
    } else if (auto v = value("--trial")) {
      cli.trial = std::atoi(v->c_str());
    } else if (auto v = value("--servers")) {
      cli.servers_scale = std::atoi(v->c_str());
    } else if (auto v = value("--trace-out")) {
      cli.trace_out = *v;
    } else if (auto v = value("--strategy")) {
      auto id = strategy::strategy_from_name(*v);
      if (!id) {
        std::fprintf(stderr, "unknown strategy: %s (see `yourstate list`)\n",
                     v->c_str());
        return 2;
      }
      cli.strategy = *id;
    } else if (arg == "--intang") {
      cli.use_intang = true;
    } else if (auto v = value("--keyword")) {
      cli.keyword = *v != "0";
    } else if (auto v = value("--seed")) {
      cli.seed = static_cast<u64>(std::atoll(v->c_str()));
    } else if (auto v = value("--path-seed")) {
      cli.path_seed = static_cast<u64>(std::atoll(v->c_str()));
    } else if (auto v = value("--trials")) {
      cli.trials = std::max(1, std::atoi(v->c_str()));
    } else if (auto v = value("--jobs")) {
      cli.jobs = std::atoi(v->c_str());
    } else if (auto v = value("--metrics-out")) {
      cli.metrics_out = *v;
    } else if (auto v = value("--timeline-out")) {
      cli.timeline_out = *v;
    } else if (auto v = value("--timeline-csv")) {
      cli.timeline_csv = *v;
    } else if (auto v = value("--timeline-bucket-ms")) {
      cli.timeline_bucket_ms = std::atoi(v->c_str());
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg == "--metrics") {
      cli.dump_metrics = true;
    } else if (auto v = value("--metrics")) {
      if (*v != "json" && *v != "table") {
        std::fprintf(stderr, "unknown metrics format: %s (want json|table)\n",
                     v->c_str());
        return usage();
      }
      cli.dump_metrics = true;
      cli.metrics_as_table = *v == "table";
    } else if (auto v = value("--pcap")) {
      cli.pcap = *v;
    } else if (auto v = value("--domain")) {
      cli.domain = *v;
    } else if (auto v = value("--faults")) {
      cli.faults = *v;
    } else if (auto v = value("--fleet")) {
      cli.fleet = *v;
    } else if (auto v = value("--program")) {
      cli.program = *v;
    } else if (auto v = value("--faulted-trials")) {
      cli.faulted_trials = std::max(0, std::atoi(v->c_str()));
    } else if (auto v = value("--resume-dir")) {
      cli.resume_dir = *v;
    } else if (auto v = value("--shards")) {
      cli.shards = std::max(1, std::atoi(v->c_str()));
    } else if (arg == "--supervise") {
      cli.supervise = true;
    } else if (auto v = value("--shard")) {
      cli.shard = *v;
    } else if (auto v = value("--status-fd")) {
      cli.status_fd = std::atoi(v->c_str());
    } else if (auto v = value("--shard-attempt")) {
      cli.shard_attempt = std::max(0, std::atoi(v->c_str()));
    } else if (auto v = value("--status-interval")) {
      cli.status_interval = std::atof(v->c_str());
    } else if (auto v = value("--max-restarts")) {
      cli.max_restarts = std::max(0, std::atoi(v->c_str()));
    } else if (auto v = value("--chaos")) {
      cli.chaos = *v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    }
  }

  if (cli.command == "list") return cmd_list();
  if (cli.command == "fleet") {
    const int rc = cmd_fleet(cli);
    if (cli.dump_metrics) print_metrics(cli);
    write_metrics_out(cli);
    return rc;
  }
  if (cli.command == "explain") {
    const int rc = cmd_explain(cli);
    if (cli.dump_metrics) print_metrics(cli);
    write_metrics_out(cli);
    return rc;
  }
  const auto vp = find_vp(cli.vp);
  if (!vp) {
    std::fprintf(stderr, "unknown vantage point: %s (see `yourstate list`)\n",
                 cli.vp.c_str());
    return 2;
  }
  int rc = -1;
  if (cli.command == "trial") rc = cmd_trial(cli, *vp);
  else if (cli.command == "probe") rc = cmd_probe(cli, *vp);
  else if (cli.command == "dns") rc = cmd_dns(cli, *vp);
  else if (cli.command == "tor") rc = cmd_tor(cli, *vp);
  else if (cli.command == "stats") rc = cmd_stats(cli, *vp);
  if (rc < 0) return usage();
  if (cli.dump_metrics && cli.command != "stats") print_metrics(cli);
  write_metrics_out(cli);
  return rc;
}

}  // namespace
}  // namespace ys

int main(int argc, char** argv) { return ys::run(argc, argv); }
