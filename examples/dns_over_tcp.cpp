// Resolving a censored domain name (§7.2 scenario).
//
// Without INTANG, the GFW's on-path poisoner answers the UDP query first
// with a bogus address. With INTANG, the query is transparently converted
// to DNS-over-TCP toward an unpolluted resolver, and the TCP connection is
// shielded by the improved TCB teardown strategy.
#include <cstdio>

#include "exp/scenario.h"
#include "exp/trial.h"

int main() {
  using namespace ys;
  using namespace ys::exp;

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();

  ScenarioOptions options;
  options.vp = china_vantage_points()[0];  // aliyun-bj
  options.server.host = "dyn-resolver";
  options.server.ip = net::make_ip(216, 146, 35, 35);
  options.cal = Calibration::standard();
  options.seed = 7;

  std::printf("resolving www.dropbox.com via %s\n\n",
              net::ip_to_string(options.server.ip).c_str());

  {
    Scenario scenario(&rules, options);
    DnsTrialOptions dns;
    dns.domain = "www.dropbox.com";
    dns.use_intang = false;  // plain UDP query
    const DnsTrialResult result = run_dns_trial(scenario, dns);
    std::printf("plain UDP query : answered=%s poisoned=%s -> %s\n",
                result.answered ? "yes" : "no",
                result.poisoned ? "YES (forged answer won the race)" : "no",
                to_string(result.outcome));
    std::printf("                  GFW poisoner injections: %d\n\n",
                scenario.dns_poisoner().poisoned());
  }

  {
    Scenario scenario(&rules, options);
    DnsTrialOptions dns;
    dns.domain = "www.dropbox.com";
    dns.use_intang = true;  // UDP -> DNS-over-TCP conversion + evasion
    dns.strategy = strategy::StrategyId::kImprovedTeardown;
    const DnsTrialResult result = run_dns_trial(scenario, dns);
    std::printf("with INTANG     : answered=%s poisoned=%s -> %s\n",
                result.answered ? "yes" : "no", result.poisoned ? "yes" : "no",
                to_string(result.outcome));
  }
  return 0;
}
