// Quickstart: build a censored network path, watch a sensitive HTTP request
// get reset by the simulated GFW, then fetch the same page through INTANG.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "exp/scenario.h"
#include "exp/trial.h"

int main() {
  using namespace ys;
  using namespace ys::exp;

  // Shared detection rules: the GFW's keyword list and DNS blacklist.
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();

  // A vantage point in Shanghai behind Aliyun's middleboxes, probing a
  // foreign web server across a path with evolved GFW devices on it.
  ScenarioOptions options;
  options.vp = china_vantage_points()[1];  // aliyun-sh
  options.server.host = "blocked-site.example";
  options.server.ip = net::make_ip(93, 184, 216, 34);
  options.server.version = tcp::LinuxVersion::k4_4;
  options.cal = Calibration::standard();
  options.seed = 42;

  // --- 1. No evasion: the GET /?q=ultrasurf draws a reset volley.
  {
    Scenario scenario(&rules, options);
    HttpTrialOptions http;
    http.with_keyword = true;
    const TrialResult result = run_http_trial(scenario, http);
    std::printf("without evasion : %-9s (GFW resets seen: %s)\n",
                to_string(result.outcome),
                result.gfw_reset_seen ? "yes" : "no");
  }

  // --- 2. One fixed strategy: the Figure 4 combination.
  {
    Scenario scenario(&rules, options);
    HttpTrialOptions http;
    http.with_keyword = true;
    http.strategy = strategy::StrategyId::kTeardownReversal;
    const TrialResult result = run_http_trial(scenario, http);
    std::printf("fixed strategy  : %-9s (%s)\n", to_string(result.outcome),
                strategy::to_string(http.strategy));
  }

  // --- 3. INTANG: measurement-driven strategy selection with caching.
  {
    intang::StrategySelector selector{intang::StrategySelector::Config{}};
    for (int fetch = 1; fetch <= 3; ++fetch) {
      ScenarioOptions per_fetch = options;
      per_fetch.seed = 42 + static_cast<u64>(fetch);
      Scenario scenario(&rules, per_fetch);
      HttpTrialOptions http;
      http.with_keyword = true;
      http.use_intang = true;
      http.shared_selector = &selector;
      const TrialResult result = run_http_trial(scenario, http);
      std::printf("INTANG fetch %d  : %-9s (selector chose %s)\n", fetch,
                  to_string(result.outcome),
                  strategy::to_string(result.strategy_used));
    }
  }
  return 0;
}
