// Probe an unknown censored path and infer the GFW's model — the §4
// methodology packaged as a tool. Ground truth is printed next to the
// inference so you can see the prober working blind.
#include <cstdio>

#include "exp/prober.h"

int main() {
  using namespace ys;
  using namespace ys::exp;

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();

  struct Case {
    const char* label;
    double old_fraction;
    double rst_resync;
  };
  const Case cases[] = {
      {"typical 2017 path (evolved devices)", 0.0, 0.24},
      {"legacy path (prior-model devices)", 1.0, 0.0},
      {"resync-flavored evolved devices", 0.0, 1.0},
  };

  for (const Case& c : cases) {
    ScenarioOptions opt;
    opt.vp = china_vantage_points()[0];
    opt.server.host = "probe-target.example";
    opt.server.ip = net::make_ip(93, 184, 216, 34);
    opt.cal = Calibration::standard();
    opt.cal.old_model_fraction = c.old_fraction;
    opt.cal.rst_resync_established = c.rst_resync;
    opt.cal.rst_resync_handshake = c.rst_resync;
    opt.cal.ttl_estimate_error_prob = 0.0;
    opt.seed = 5;

    std::printf("=== %s\n", c.label);
    const GfwFindings findings = probe_gfw(&rules, opt);
    std::printf("%s\n", findings.to_string().c_str());
  }
  return 0;
}
