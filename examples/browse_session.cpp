// A browsing session through INTANG: repeated fetches of several censored
// sites from one vantage point, showing the selector exploring, converging,
// and caching a per-site strategy — the everyday-use story of §6.
#include <cstdio>

#include "exp/scenario.h"
#include "exp/trial.h"

int main() {
  using namespace ys;
  using namespace ys::exp;

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  const Calibration cal = Calibration::standard();
  const VantagePoint vp = china_vantage_points()[3];  // aliyun-sz
  const auto sites = make_server_population(5, 1234, cal, true);

  // One persistent selector = the tool's Redis store across the session.
  intang::StrategySelector selector{intang::StrategySelector::Config{}};

  std::printf("browsing 5 censored sites x 4 visits from %s via INTANG\n\n",
              vp.name.c_str());
  int total = 0;
  int ok = 0;
  for (int visit = 1; visit <= 4; ++visit) {
    std::printf("visit %d:\n", visit);
    for (const auto& site : sites) {
      ScenarioOptions opt;
      opt.vp = vp;
      opt.server = site;
      opt.cal = cal;
      opt.seed = Rng::mix_seed({99, site.ip, static_cast<u64>(visit)});
      Scenario sc(&rules, opt);

      HttpTrialOptions http;
      http.with_keyword = true;  // every page is censored content
      http.use_intang = true;
      http.shared_selector = &selector;
      const TrialResult result = run_http_trial(sc, http);
      ++total;
      if (result.outcome == Outcome::kSuccess) ++ok;
      std::printf("  %-18s %-9s via %s\n", site.host.c_str(),
                  to_string(result.outcome),
                  strategy::to_string(result.strategy_used));
    }
  }
  std::printf("\nsession success: %d/%d (the first visit may explore; later"
              " visits ride the cache)\n", ok, total);
  return ok * 10 >= total * 9 ? 0 : 1;  // ≥ 90 %
}
