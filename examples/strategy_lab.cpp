// Strategy lab: a tour of the low-level public API. Crafts each insertion
// packet, shows its real wire image, replays it against a live Linux-4.4
// endpoint to demonstrate the ignore path it lands on, and then probes a
// GFW device with the same packet to show the asymmetry that makes
// censorship evasion possible.
#include <cstdio>

#include "core/hexdump.h"
#include "gfw/gfw_device.h"
#include "netsim/wire.h"
#include "strategy/insertion.h"
#include "tcpstack/tcp_endpoint.h"

namespace {

using namespace ys;

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

/// A server endpoint brought to ESTABLISHED by a scripted handshake.
struct LabServer {
  net::EventLoop loop;
  tcp::TcpEndpoint ep{loop, Rng(1),
                      tcp::StackProfile::for_version(tcp::LinuxVersion::k4_4),
                      kTuple.reversed(), {}};
  u32 client_seq = 1000;

  LabServer() {
    ep.open_passive();
    net::Packet syn =
        net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), client_seq, 0);
    syn.tcp->options.timestamps = net::TcpTimestamps{50'000, 0};
    feed(std::move(syn));
    ++client_seq;
    net::Packet ack = net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(),
                                           client_seq, ep.iss() + 1);
    ack.tcp->options.timestamps = net::TcpTimestamps{50'001, 0};
    feed(std::move(ack));
  }
  void feed(net::Packet pkt) {
    net::finalize(pkt);
    ep.on_segment(pkt);
  }
};

void show(const char* title, net::Packet pkt) {
  LabServer server;
  net::finalize(pkt);

  std::printf("--- %s\n", title);
  std::printf("summary : %s\n", pkt.summary().c_str());
  const Bytes image = net::serialize(pkt);
  std::printf("wire    :\n%s", hexdump(ByteView(image.data(),
                                                std::min<std::size_t>(
                                                    image.size(), 48)))
                                   .c_str());

  const std::size_t ignores_before = server.ep.ignore_log().size();
  server.feed(pkt);
  if (server.ep.ignore_log().size() > ignores_before) {
    std::printf("server  : ignored (%s)\n",
                tcp::to_string(server.ep.ignore_log().back().reason));
  } else if (server.ep.was_reset()) {
    std::printf("server  : CONNECTION RESET — not a safe insertion packet!\n");
  } else {
    std::printf("server  : processed\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ys;
  using strategy::Discrepancy;

  std::printf("Insertion-packet laboratory (Table 3 / Table 5)\n");
  std::printf("connection: %s\n\n", kTuple.to_string().c_str());

  // The tuning a strategy would compute from its path knowledge.
  strategy::InsertionTuning tuning;
  tuning.small_ttl = 8;
  tuning.peer_snd_nxt = 0;
  tuning.stale_ts_val = 1;

  {
    LabServer reference;
    tuning.peer_snd_nxt = reference.ep.snd_nxt();
  }

  // Each crafted packet targets seq 1002 — exactly what the server expects
  // next — so only the discrepancy decides its fate.
  auto data = [&](Discrepancy d) {
    Rng rng(3);
    net::Packet pkt = strategy::craft_data(
        kTuple, 1002, 0, strategy::junk_payload(32, rng));
    strategy::apply_discrepancy(pkt, d, tuning);
    return pkt;
  };

  show("data + wrong checksum", data(Discrepancy::kBadChecksum));
  show("data + unsolicited MD5 option", data(Discrepancy::kUnsolicitedMd5));
  show("data + stale timestamp (PAWS)", data(Discrepancy::kOldTimestamp));
  show("data + no TCP flags", data(Discrepancy::kNoFlags));
  show("data + claimed IP length too large", data(Discrepancy::kBadIpLength));

  {
    net::Packet rst = strategy::craft_rst(kTuple, 1002);
    strategy::apply_discrepancy(rst, Discrepancy::kUnsolicitedMd5, tuning);
    show("RST + unsolicited MD5 option (teardown insertion)", std::move(rst));
  }
  {
    // Counter-example: a *valid* RST resets the server. Strategies must
    // never let one of these reach the real endpoint.
    show("RST, fully valid (what a discrepancy prevents)",
         strategy::craft_rst(kTuple, 1002));
  }
  return 0;
}
