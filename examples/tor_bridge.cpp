// Connecting to a hidden Tor bridge from inside the censored network
// (§7.3 scenario): the GFW fingerprints the Tor TLS ClientHello, actively
// probes the bridge, and then blocks its IP on every port. INTANG's
// improved TCB teardown keeps the fingerprint out of the GFW's reassembled
// stream, so the bridge survives.
#include <cstdio>

#include "exp/scenario.h"
#include "exp/trial.h"

int main() {
  using namespace ys;
  using namespace ys::exp;

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();

  ServerSpec bridge;
  bridge.host = "hidden-bridge";
  bridge.ip = net::make_ip(54, 210, 7, 91);

  // A vantage point whose path has Tor-filtering devices (Shanghai; the
  // measured Northern-China paths had none).
  ScenarioOptions options;
  options.vp = china_vantage_points()[1];  // aliyun-sh
  options.server = bridge;
  options.cal = Calibration::standard();
  options.seed = 11;

  {
    // Bare Tor: the first handshake triggers active probing. The same
    // scenario object is reused so the IP blocklist persists, and the
    // second connection is refused on any port.
    Scenario scenario(&rules, options);
    TorTrialOptions tor;
    tor.use_intang = false;
    tor.strategy = strategy::StrategyId::kNone;
    const TorTrialResult first = run_tor_trial(scenario, tor);
    std::printf("bare Tor, first connection : %s\n", to_string(first.outcome));
    std::printf("bridge IP blocked          : %s\n",
                first.bridge_ip_blocked ? "yes — on every port" : "no");
  }

  {
    Scenario scenario(&rules, options);
    TorTrialOptions tor;
    tor.use_intang = true;
    tor.strategy = strategy::StrategyId::kImprovedTeardown;
    const TorTrialResult covered = run_tor_trial(scenario, tor);
    std::printf("with INTANG                : %s (handshake %s)\n",
                to_string(covered.outcome),
                covered.handshake_completed ? "completed" : "failed");
  }
  return 0;
}
