// Capture a censored exchange (and an evaded one) to real .pcap files you
// can open in Wireshark: the GFW's type-1/type-2 reset volley, the forged
// fingerprints, and the insertion packets of the evading run are all there
// on the simulated wire.
#include <cstdio>

#include "exp/scenario.h"
#include "exp/trial.h"
#include "netsim/pcap.h"

namespace {

ys::exp::TrialResult run_captured(const char* pcap_path,
                                  ys::strategy::StrategyId strategy_id) {
  using namespace ys;
  using namespace ys::exp;

  static const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  ScenarioOptions options;
  options.vp = china_vantage_points()[1];
  options.server.host = "blocked-site.example";
  options.server.ip = net::make_ip(93, 184, 216, 34);
  options.cal = Calibration::standard();
  options.cal.detection_miss = 0.0;
  options.cal.per_link_loss = 0.0;
  options.seed = 77;
  Scenario scenario(&rules, options);

  net::PcapWriter writer;
  if (auto st = writer.open(pcap_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.error().message.c_str());
    return {};
  }
  scenario.path().set_client_capture(
      [&writer](const net::Packet& pkt, SimTime at) {
        (void)writer.write(pkt, at);
      });

  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = strategy_id;
  const TrialResult result = run_http_trial(scenario, http);
  std::printf("%-28s -> %-9s (%zu packets captured to %s)\n",
              strategy::to_string(strategy_id), to_string(result.outcome),
              writer.packets_written(), pcap_path);
  return result;
}

}  // namespace

int main() {
  run_captured("censored_exchange.pcap", ys::strategy::StrategyId::kNone);
  run_captured("evaded_exchange.pcap",
               ys::strategy::StrategyId::kImprovedTeardown);
  std::printf("\nopen the captures in Wireshark: the first shows the GFW's\n"
              "RST + 3x RST/ACK volley (seq X, X+1460, X+4380); the second\n"
              "shows the TTL-limited insertion RSTs and the desync packet\n"
              "slipping the request past the censor.\n");
  return 0;
}
