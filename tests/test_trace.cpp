// Structured causal tracing: golden traces per GFW model (causal links
// from state transitions and injected resets back to their trigger
// packets), verdict attribution, Chrome trace-export round-trip, and
// flight-recorder replay determinism.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "core/json.h"
#include "exp/benchdef.h"
#include "exp/explain.h"
#include "exp/scenario.h"
#include "exp/trial.h"
#include "gfw/gfw_device.h"
#include "netsim/event_loop.h"
#include "netsim/path.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "runner/runner.h"

namespace ys {
namespace {

using namespace ys::exp;

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

// --------------------------------------------------------------- golden rig

/// A real Path with one GFW device tapped at hop 5, fully traced. Packets
/// get their trace ids from the path, exactly like a scenario trial.
struct TraceRig {
  net::EventLoop loop;
  obs::TraceRecorder trace;
  gfw::DetectionRules rules = gfw::DetectionRules::standard();
  std::unique_ptr<net::Path> path;
  std::unique_ptr<gfw::GfwDevice> dev;
  u32 cseq = 1000;
  u32 sseq = 5000;

  explicit TraceRig(gfw::GfwConfig cfg = {}) {
    cfg.detection_miss_rate = 0.0;
    net::PathConfig pcfg;
    pcfg.server_hops = 10;
    pcfg.jitter_us = 0;
    pcfg.per_link_loss = 0.0;
    path = std::make_unique<net::Path>(loop, Rng(7), pcfg, &trace);
    dev = std::make_unique<gfw::GfwDevice>("gfw-2", cfg, &rules, Rng(9));
    path->attach(5, dev.get());
    path->set_server_sink([](net::Packet) {});
    path->set_client_sink([](net::Packet) {});
  }

  void c2s(net::Packet pkt) {
    path->send_from_client(std::move(pkt));
    loop.run();
  }
  void s2c(net::Packet pkt) {
    path->send_from_server(std::move(pkt));
    loop.run();
  }
  void handshake() {
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), cseq, 0));
    ++cseq;
    s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                             sseq, cseq));
    ++sseq;
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(), cseq, sseq));
  }
};

const obs::TraceEvent* find_by_id(const std::vector<obs::TraceEvent>& evs,
                                  u64 id) {
  for (const auto& e : evs) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const obs::TraceEvent* find_last_behavior(
    const std::vector<obs::TraceEvent>& evs, obs::GfwBehavior b) {
  const obs::TraceEvent* hit = nullptr;
  for (const auto& e : evs) {
    if (e.gfw.behavior == b) hit = &e;
  }
  return hit;
}

TEST(Golden, EvolvedModelCausality) {
  TraceRig rig;  // default config: evolved type-2

  // TCB on SYN: the state event must link back to the SYN's send event.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), rig.cseq, 0));
  auto evs = rig.trace.events();
  const obs::TraceEvent* created =
      find_last_behavior(evs, obs::GfwBehavior::kB1CreateOnSyn);
  ASSERT_NE(created, nullptr);
  EXPECT_EQ(created->gfw.from, obs::GfwState::kNone);
  EXPECT_EQ(created->gfw.to, obs::GfwState::kEstablished);
  ASSERT_NE(created->caused_by, 0u);
  const obs::TraceEvent* cause = find_by_id(evs, created->caused_by);
  ASSERT_NE(cause, nullptr);
  EXPECT_EQ(cause->kind, obs::TraceKind::kSend);
  EXPECT_NE(cause->packet.flags & 0x02, 0) << "cause must be the SYN";
  const u64 first_syn_send = cause->id;  // evs is reassigned below

  // Finish the handshake, then a second client SYN → Behavior 2a resync,
  // again linked to the specific SYN that forced it.
  ++rig.cseq;
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                               rig.sseq, rig.cseq));
  ++rig.sseq;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(), rig.cseq,
                               rig.sseq));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), rig.cseq, 0));
  evs = rig.trace.events();
  const obs::TraceEvent* resync =
      find_last_behavior(evs, obs::GfwBehavior::kB2aMultipleSyn);
  ASSERT_NE(resync, nullptr);
  EXPECT_EQ(resync->gfw.to, obs::GfwState::kResync);
  const obs::TraceEvent* resync_cause = find_by_id(evs, resync->caused_by);
  ASSERT_NE(resync_cause, nullptr);
  EXPECT_EQ(resync_cause->kind, obs::TraceKind::kSend);
  EXPECT_NE(resync_cause->packet.flags & 0x02, 0);
  EXPECT_GT(resync_cause->id, first_syn_send)
      << "must link to the *second* SYN";

  // Keyword data re-anchors the resync TCB and trips the detector; the
  // injected resets must link back to that data packet's send event.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), rig.cseq,
                               rig.sseq,
                               to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n\r\n")));
  evs = rig.trace.events();
  const obs::TraceEvent* reanchor =
      find_last_behavior(evs, obs::GfwBehavior::kResyncReanchor);
  ASSERT_NE(reanchor, nullptr);
  const obs::TraceEvent* detection =
      find_last_behavior(evs, obs::GfwBehavior::kDetection);
  ASSERT_NE(detection, nullptr);

  u64 data_send = 0;
  for (const auto& e : evs) {
    if (e.kind == obs::TraceKind::kSend && e.packet.payload_len > 0) {
      data_send = e.id;
    }
  }
  ASSERT_NE(data_send, 0u);
  EXPECT_EQ(detection->caused_by, data_send);
  int injected = 0;
  for (const auto& e : evs) {
    if (e.kind != obs::TraceKind::kInject) continue;
    ++injected;
    EXPECT_EQ(e.caused_by, data_send)
        << "injected reset must trace to the trigger packet";
    EXPECT_NE(e.packet.flags & 0x04, 0) << "type-2 injects RSTs";
  }
  EXPECT_GE(injected, 1);

  // Every causal link in the whole trace resolves to a retained event.
  for (const auto& e : evs) {
    if (e.caused_by != 0) {
      EXPECT_NE(find_by_id(evs, e.caused_by), nullptr)
          << "dangling caused_by on event " << e.id;
    }
  }
}

TEST(Golden, PriorModelTeardownCausality) {
  gfw::GfwConfig cfg;
  cfg.evolved = false;
  TraceRig rig(cfg);
  rig.handshake();

  // Prior model: a client RST tears the TCB down, linked to that RST.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), rig.cseq, 0));
  const auto evs = rig.trace.events();
  const obs::TraceEvent* teardown =
      find_last_behavior(evs, obs::GfwBehavior::kRstTeardown);
  ASSERT_NE(teardown, nullptr);
  EXPECT_EQ(teardown->gfw.to, obs::GfwState::kGone);
  const obs::TraceEvent* cause = find_by_id(evs, teardown->caused_by);
  ASSERT_NE(cause, nullptr);
  EXPECT_EQ(cause->kind, obs::TraceKind::kSend);
  EXPECT_NE(cause->packet.flags & 0x04, 0) << "cause must be the RST";

  // Keyword data after the teardown is invisible: no detection, no resets.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), rig.cseq,
                               rig.sseq,
                               to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n\r\n")));
  const auto after = rig.trace.events();
  EXPECT_EQ(find_last_behavior(after, obs::GfwBehavior::kDetection), nullptr);
}

// ----------------------------------------------------- verdict attribution

ScenarioOptions traced_options(u64 seed) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[0];
  opt.server.host = "site-0.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = Calibration::standard();
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.cal.old_model_fraction = 0.0;
  opt.seed = seed;
  opt.tracing = true;
  return opt;
}

TEST(Golden, AttributionNamesDetectionOnFailure2) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  Scenario sc(&rules, traced_options(11));
  HttpTrialOptions http;
  http.with_keyword = true;  // no evasion: the GFW wins
  const TrialResult result = run_http_trial(sc, http);
  ASSERT_EQ(result.outcome, Outcome::kFailure2);

  const Attribution attr =
      attribute_verdict(sc.trace(), result.outcome, sc.path_runs_old_model());
  EXPECT_EQ(attr.outcome, Outcome::kFailure2);
  EXPECT_NE(attr.decisive_event, 0u);
  EXPECT_TRUE(attr.behavior == obs::GfwBehavior::kDetection ||
              attr.behavior == obs::GfwBehavior::kBlockPeriod)
      << "got: " << to_string(attr.behavior);
  EXPECT_FALSE(attr.verdict.empty());
  EXPECT_NE(attr.verdict.find("failure-2"), std::string::npos)
      << attr.verdict;
}

TEST(Golden, AttributionReachesInsertionPacketOnSuccess) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  Scenario sc(&rules, traced_options(11));
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = strategy::StrategyId::kImprovedTeardown;
  const TrialResult result = run_http_trial(sc, http);
  ASSERT_EQ(result.outcome, Outcome::kSuccess);

  const Attribution attr =
      attribute_verdict(sc.trace(), result.outcome, sc.path_runs_old_model());
  EXPECT_NE(attr.decisive_event, 0u);
  EXPECT_NE(attr.causal_insertion_event, 0u)
      << "success must trace to a crafted insertion packet\n" << attr.verdict;
  EXPECT_NE(attr.strategy_decision_event, 0u);
  const auto evs = sc.trace().events();
  const obs::TraceEvent* insertion =
      find_by_id(evs, attr.causal_insertion_event);
  ASSERT_NE(insertion, nullptr);
  EXPECT_EQ(insertion->kind, obs::TraceKind::kSend);
  EXPECT_TRUE(insertion->packet.crafted);
  const obs::TraceEvent* decision =
      find_by_id(evs, attr.strategy_decision_event);
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(decision->kind, obs::TraceKind::kDecision);
}

// --------------------------------------------------------- export round-trip

TEST(Export, RoundTrip) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  Scenario sc(&rules, traced_options(3));
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = strategy::StrategyId::kCreationResyncDesync;
  run_http_trial(sc, http);
  ASSERT_GT(sc.trace().size(), 0u);

  const std::string doc = obs::to_chrome_trace(sc.trace());
  const auto parsed = json::parse(doc);
  ASSERT_TRUE(parsed.has_value()) << "export must be valid JSON";
  const json::Value* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  std::set<double> ids;
  std::set<double> flow_starts;
  std::set<double> flow_ends;
  std::map<double, double> last_ts;  // per tid, over ph:"X"
  for (const auto& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    const json::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      const json::Value* tid = ev.find("tid");
      const json::Value* ts = ev.find("ts");
      ASSERT_NE(tid, nullptr);
      ASSERT_NE(ts, nullptr);
      auto it = last_ts.find(tid->number);
      if (it != last_ts.end()) {
        EXPECT_GE(ts->number, it->second) << "ts not monotone on a track";
      }
      last_ts[tid->number] = ts->number;
      const json::Value* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      const json::Value* id = args->find("id");
      ASSERT_NE(id, nullptr);
      ids.insert(id->number);
    } else if (ph->string == "s" || ph->string == "f") {
      const json::Value* id = ev.find("id");
      ASSERT_NE(id, nullptr);
      (ph->string == "s" ? flow_starts : flow_ends).insert(id->number);
    }
  }
  // Every caused_by resolves to some exported event id.
  for (const auto& ev : events->array) {
    const json::Value* args = ev.find("args");
    if (args == nullptr) continue;
    const json::Value* cb = args->find("caused_by");
    if (cb == nullptr) continue;
    EXPECT_EQ(ids.count(cb->number), 1u)
        << "unresolved caused_by " << cb->number;
  }
  // Flow arrows come in matched start/finish pairs.
  EXPECT_EQ(flow_starts, flow_ends);
  EXPECT_FALSE(flow_starts.empty()) << "causal links must produce flows";
}

// ------------------------------------------------------ replay determinism

TEST(Trace, FlightReplayDeterministic) {
  BenchScale scale;
  scale.trials = 2;
  scale.servers = 2;
  scale.seed = 2017;
  const Table4Inside bench(scale);
  const runner::GridCoord c{0, 1, 0, 1};  // trial 1: exercises chain prefix

  obs::MetricsRegistry reg1;
  Replay r1;
  {
    obs::ScopedMetricsRegistry scope(&reg1);
    r1 = bench.replay_intang(c);
  }
  obs::MetricsRegistry reg2;
  Replay r2;
  {
    obs::ScopedMetricsRegistry scope(&reg2);
    r2 = bench.replay_intang(c);
  }
  EXPECT_EQ(r1.result.outcome, r2.result.outcome);
  EXPECT_EQ(r1.ladder, r2.ladder);
  EXPECT_EQ(r1.attribution.verdict, r2.attribution.verdict);
  EXPECT_EQ(r1.attribution.decisive_event, r2.attribution.decisive_event);
  EXPECT_EQ(reg1.snapshot().counters, reg2.snapshot().counters)
      << "replay must reproduce the metrics, not just the outcome";
  EXPECT_FALSE(r1.ladder.empty());
  EXPECT_FALSE(r1.attribution.verdict.empty());

  // The replayed outcome matches what the parallel grid run produced at
  // the same coordinate (chain state reconstructed exactly).
  const runner::TrialGrid igrid = bench.intang_grid();
  std::vector<intang::StrategySelector> selectors(
      igrid.chains(),
      intang::StrategySelector{intang::StrategySelector::Config{}});
  runner::PoolOptions popt;
  popt.jobs = 2;
  auto out = runner::collect_grid(
      igrid, popt,
      [&bench, &igrid, &selectors](const runner::GridCoord& gc,
                                   runner::TaskContext&) {
        return bench.run_intang(gc, selectors[igrid.chain(gc)]).outcome;
      });
  EXPECT_EQ(out.slots[igrid.index(c)], r1.result.outcome);
}

TEST(Trace, FixedReplayDeterministic) {
  BenchScale scale;
  scale.trials = 1;
  scale.servers = 2;
  scale.seed = 2017;
  const Table4Inside bench(scale);
  const runner::GridCoord c{2, 0, 1, 0};

  const Replay r1 = bench.replay_fixed(c);
  const Replay r2 = bench.replay_fixed(c);
  EXPECT_EQ(r1.result.outcome, r2.result.outcome);
  EXPECT_EQ(r1.ladder, r2.ladder);
  EXPECT_EQ(r1.attribution.verdict, r2.attribution.verdict);

  // And it matches the untraced grid hot path: tracing cannot perturb.
  const TrialResult untraced = bench.run_fixed(c);
  EXPECT_EQ(untraced.outcome, r1.result.outcome);
}

}  // namespace
}  // namespace ys
