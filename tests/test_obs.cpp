// ys::obs — registry semantics, histogram edges, snapshot/reset isolation,
// the TraceRecorder ring buffer, EventLoop run-bound reporting, and the
// golden JSON shape of a quickstart-style run.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/scenario.h"
#include "exp/stats.h"
#include "exp/trial.h"
#include "netsim/event_loop.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace ys {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

TEST(Registry, GetOrCreateReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("gfw.packets_seen");
  Counter& b = reg.counter("gfw.packets_seen");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("gfw.packets_seen"));
  EXPECT_FALSE(reg.contains("gfw.other"));
}

TEST(Registry, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x.name");
  EXPECT_THROW(reg.gauge("x.name"), std::logic_error);
  EXPECT_THROW(reg.histogram("x.name"), std::logic_error);
  reg.gauge("y.name");
  EXPECT_THROW(reg.counter("y.name"), std::logic_error);
  // The failed registrations must not have clobbered the originals.
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_NO_THROW(reg.counter("x.name"));
}

TEST(Registry, HistogramFirstBoundsWin) {
  MetricsRegistry reg;
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {100.0});
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h2.bounds()[0], 1.0);
}

TEST(Histogram, BucketEdges) {
  Histogram h({1.0, 2.0, 4.0});
  // A value exactly on a bound lands in that bound's bucket (v <= bound).
  h.observe(1.0);   // bucket 0
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(2.001); // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(-7.0);  // bucket 0 (below the first bound)
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 2u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 2.001 + 4.0 + 4.001 - 7.0);
}

TEST(Histogram, ExponentialBuckets) {
  const auto bounds = obs::exponential_buckets(1.0, 4.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
}

TEST(Registry, SnapshotIsDeepCopyAndResetIsolatesTrials) {
  MetricsRegistry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(2.5);
  reg.histogram("h", {10.0}).observe(3.0);

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  // Mutations after the snapshot must not show through (trial 2 work).
  reg.counter("c").inc(100);
  EXPECT_EQ(snap.counters.at("c"), 5u);

  // reset_all zeroes values but keeps registrations and references valid.
  Counter& c = reg.counter("c");
  reg.reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  EXPECT_EQ(reg.size(), 3u);
  c.inc();
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

TEST(Metrics, RuntimeKillSwitchStopsUpdates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  obs::set_metrics_enabled(false);
  c.inc(10);
  reg.gauge("g").set(1.0);
  reg.histogram("h", {1.0}).observe(0.5);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Span, SimSpanRecordsVirtualTime) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("loop.span_us", {100.0, 10'000.0});
  net::EventLoop loop;
  loop.schedule_after(SimTime::from_ms(5), [] {});
  {
    obs::SimSpan span(loop.clock(), h);
    loop.run();
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5000.0);  // 5 ms of virtual time
  EXPECT_EQ(h.bucket_counts()[1], 1u);
}

TEST(Trace, RingBufferEvictsOldest) {
  obs::TraceRecorder trace(3);
  for (int i = 0; i < 5; ++i) {
    trace.note(SimTime::from_us(i), "actor", obs::TraceKind::kNote,
               "event-" + std::to_string(i));
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().detail, "event-2");  // oldest retained
  EXPECT_EQ(events.back().detail, "event-4");
  const std::string ladder = trace.render();
  EXPECT_NE(ladder.find("2 earlier events evicted"), std::string::npos);
  EXPECT_NE(ladder.find("event-4"), std::string::npos);
  EXPECT_EQ(ladder.find("event-1"), std::string::npos);
}

TEST(Trace, SetCapacityTrimsToNewest) {
  obs::TraceRecorder trace(10);
  for (int i = 0; i < 6; ++i) {
    trace.note(SimTime::from_us(i), "a", obs::TraceKind::kNote,
               std::to_string(i));
  }
  trace.set_capacity(2);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "4");
  EXPECT_EQ(events[1].detail, "5");
  EXPECT_EQ(trace.dropped(), 4u);
  // And the new bound is enforced going forward.
  trace.note(SimTime::from_us(6), "a", obs::TraceKind::kNote, "6");
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[1].detail, "6");
}

TEST(EventLoop, RunReportsMaxEventsBound) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset_all();
  net::EventLoop loop;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_after(SimTime::from_us(i), [] {});
  }
  const net::RunResult partial = loop.run(/*max_events=*/3);
  EXPECT_EQ(partial.executed, 3u);
  EXPECT_TRUE(partial.hit_max_events);
  EXPECT_EQ(reg.counter("loop.max_events_hits").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("loop.max_events_hit").value(), 1.0);

  const net::RunResult drained = loop.run(/*max_events=*/2);
  EXPECT_EQ(drained.executed, 2u);
  // Executed == bound yet the queue drained: NOT ambiguous anymore.
  EXPECT_FALSE(drained.hit_max_events);
  EXPECT_EQ(reg.counter("loop.max_events_hits").value(), 1u);

  // Legacy callers treat the result as the executed count.
  loop.schedule_after(SimTime::zero(), [] {});
  const std::size_t n = loop.run();
  EXPECT_EQ(n, 1u);
}

TEST(EventLoop, RunUntilReportsBoundOnlyWithinDeadline) {
  net::EventLoop loop;
  loop.schedule_at(SimTime::from_ms(1), [] {});
  loop.schedule_at(SimTime::from_ms(2), [] {});
  loop.schedule_at(SimTime::from_sec(10), [] {});

  net::RunResult r = loop.run_until(SimTime::from_ms(5), /*max_events=*/1);
  EXPECT_EQ(r.executed, 1u);
  EXPECT_TRUE(r.hit_max_events);  // the t=2ms event was due and unserved

  r = loop.run_until(SimTime::from_ms(5));
  EXPECT_EQ(r.executed, 1u);
  // Only the out-of-deadline t=10s event remains: that is not a bound hit.
  EXPECT_FALSE(r.hit_max_events);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(RateTally, PublishesRatesAsGauges) {
  MetricsRegistry reg;
  exp::RateTally tally;
  tally.add(exp::Outcome::kSuccess);
  tally.add(exp::Outcome::kSuccess);
  tally.add(exp::Outcome::kFailure1);
  tally.add(exp::Outcome::kFailure2);
  tally.publish("aliyun-sh", reg);
  EXPECT_DOUBLE_EQ(reg.gauge("exp.rate.aliyun-sh.trials").value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge("exp.rate.aliyun-sh.success_rate").value(), 0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("exp.rate.aliyun-sh.failure1_rate").value(),
                   0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("exp.rate.aliyun-sh.failure2_rate").value(),
                   0.25);
  // Publish is idempotent-by-overwrite, not additive.
  tally.publish("aliyun-sh", reg);
  EXPECT_DOUBLE_EQ(reg.gauge("exp.rate.aliyun-sh.trials").value(), 4.0);
}

TEST(Export, JsonAndTableRenderEveryKind) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(7);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist", {1.0, 2.0}).observe(1.5);
  const obs::Snapshot snap = reg.snapshot();

  const std::string json = obs::to_json(snap);
  EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [0, 1, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);

  const std::string table = obs::to_table(snap);
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
}

TEST(Export, EmptySnapshotIsValidJson) {
  const std::string json = obs::to_json(obs::Snapshot{});
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

/// Golden shape of a quickstart run: one censored HTTP fetch through the
/// full simulated ecosystem must produce non-zero counters in (at least)
/// the gfw, tcpstack, intang and netsim components, all visible in one
/// JSON snapshot — the acceptance bar of the obs layer.
TEST(Golden, QuickstartSnapshotHasCrossComponentCounters) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset_all();

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  exp::ScenarioOptions opt;
  opt.vp = exp::china_vantage_points()[0];
  opt.server.host = "site-0.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = exp::Calibration::standard();
  opt.seed = 7;
  exp::Scenario sc(&rules, opt);

  exp::HttpTrialOptions http;
  http.with_keyword = true;
  http.use_intang = true;
  exp::run_http_trial(sc, http);

  const obs::Snapshot snap = reg.snapshot();
  const char* expected[] = {
      // gfw — the device classified traffic and tracked connections
      "gfw.packets_seen", "gfw.tcb_create",
      // tcpstack — both endpoints moved segments
      "tcpstack.segment_in", "tcpstack.segment_out",
      // intang — the selector picked a strategy and the kv store worked
      "intang.strategy_pick", "intang.kv_get_miss",
      // netsim + loop + exp — the world actually ran
      "netsim.packet_delivered_client", "netsim.packet_delivered_server",
      "loop.events_executed", "exp.trial_total",
  };
  for (const char* name : expected) {
    ASSERT_TRUE(snap.counters.count(name) == 1) << name;
    EXPECT_GT(snap.counters.at(name), 0u) << name;
  }

  const std::string json = obs::to_json(snap);
  for (const char* name : expected) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }

  // Per-trial isolation: a reset returns every counter to zero.
  reg.reset_all();
  EXPECT_EQ(reg.snapshot().counters.at("gfw.packets_seen"), 0u);
}

}  // namespace
}  // namespace ys
