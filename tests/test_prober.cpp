// GFW prober tests: the §4 probe battery must recover the ground-truth
// device configuration from blackbox reset feedback alone.
#include <gtest/gtest.h>

#include "exp/prober.h"

namespace ys::exp {
namespace {

const gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

ScenarioOptions probe_options(u64 path_seed) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[1];
  opt.server.host = "probe-target";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = Calibration::standard();
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.seed = 99;
  opt.path_seed = path_seed;
  return opt;
}

TEST(Prober, RecoversEvolvedModel) {
  ScenarioOptions opt = probe_options(7001);
  opt.cal.old_model_fraction = 0.0;
  opt.cal.rst_resync_established = 0.0;  // teardown-flavored devices
  opt.cal.no_flag_accept = 1.0;
  const GfwFindings findings = probe_gfw(rules(), opt);

  EXPECT_TRUE(findings.responsive);
  EXPECT_TRUE(findings.creates_tcb_on_synack);
  EXPECT_TRUE(findings.resyncs_on_second_syn);
  EXPECT_TRUE(findings.fin_ignored);
  EXPECT_FALSE(findings.rst_resyncs_after_handshake);
  EXPECT_TRUE(findings.accepts_no_flag_data);
  EXPECT_TRUE(findings.evolved_model());
}

TEST(Prober, RecoversPriorModel) {
  ScenarioOptions opt = probe_options(7002);
  opt.cal.old_model_fraction = 1.0;
  const GfwFindings findings = probe_gfw(rules(), opt);

  EXPECT_TRUE(findings.responsive);
  EXPECT_FALSE(findings.creates_tcb_on_synack);
  EXPECT_FALSE(findings.resyncs_on_second_syn);
  EXPECT_FALSE(findings.fin_ignored);
  EXPECT_FALSE(findings.rst_resyncs_after_handshake);
  EXPECT_FALSE(findings.evolved_model());
}

TEST(Prober, DetectsResyncFlavoredRstReaction) {
  ScenarioOptions opt = probe_options(7003);
  opt.cal.old_model_fraction = 0.0;
  opt.cal.rst_resync_established = 1.0;
  opt.cal.rst_resync_handshake = 1.0;
  const GfwFindings findings = probe_gfw(rules(), opt);
  EXPECT_TRUE(findings.rst_resyncs_after_handshake);
}

TEST(Prober, DetectsNoFlagRejection) {
  ScenarioOptions opt = probe_options(7004);
  opt.cal.old_model_fraction = 0.0;
  opt.cal.no_flag_accept = 0.0;
  const GfwFindings findings = probe_gfw(rules(), opt);
  EXPECT_FALSE(findings.accepts_no_flag_data);
}

TEST(Prober, SilentWhenNoCensorship) {
  // Probing a path whose devices censor nothing (empty keyword rules).
  static gfw::DetectionRules empty = [] {
    gfw::DetectionRules r;
    r.http_keywords = gfw::AhoCorasick({"zzz-never-matches-zzz"});
    return r;
  }();
  const GfwFindings findings = probe_gfw(&empty, probe_options(7005));
  EXPECT_FALSE(findings.responsive);
  EXPECT_FALSE(findings.evolved_model());
}

TEST(Prober, FindingsRenderHumanReadably) {
  GfwFindings findings;
  findings.responsive = true;
  findings.resyncs_on_second_syn = true;
  findings.creates_tcb_on_synack = true;  // two markers → evolved verdict
  const std::string text = findings.to_string();
  EXPECT_NE(text.find("Behavior 2a"), std::string::npos);
  EXPECT_NE(text.find("EVOLVED"), std::string::npos);
}

// The prober's verdict must agree with the scenario's ground truth across
// a sweep of random paths and both populations.
class ProberSweep : public ::testing::TestWithParam<u64> {};

TEST_P(ProberSweep, VerdictMatchesGroundTruth) {
  for (double old_fraction : {0.0, 1.0}) {
    ScenarioOptions opt = probe_options(GetParam());
    opt.cal.old_model_fraction = old_fraction;
    Scenario ground_truth(rules(), opt);
    const GfwFindings findings = probe_gfw(rules(), opt);
    EXPECT_TRUE(findings.responsive);
    EXPECT_EQ(findings.evolved_model(), !ground_truth.path_runs_old_model())
        << "path_seed=" << GetParam() << " old=" << old_fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, ProberSweep, ::testing::Range<u64>(8001, 8013));

// §8 countermeasure regressions: each hardened flag must kill exactly the
// strategies that exploit the corresponding laxness.
struct HardenRig {
  gfw::DetectionRules det = gfw::DetectionRules::standard();
  gfw::GfwConfig cfg;

  explicit HardenRig() { cfg.detection_miss_rate = 0.0; }

  /// Feed a prefill exchange (junk insertion then keyword request) through
  /// a device with this config; returns whether the keyword was detected.
  bool detects_after_md5_prefill() {
    gfw::GfwDevice dev("gfw", cfg, &det, Rng(5));
    return run_prefill(dev, /*md5=*/true);
  }
  bool detects_after_bad_checksum_prefill() {
    gfw::GfwDevice dev("gfw", cfg, &det, Rng(5));
    return run_prefill(dev, /*md5=*/false);
  }

 private:
  struct NullFwd final : public net::Forwarder {
    explicit NullFwd(Rng* rng) : rng_(rng) {}
    void forward(net::Packet) override {}
    void inject(net::Packet, net::Dir, SimTime) override {}
    void drop(const net::Packet&, std::string_view) override {}
    SimTime now() const override { return SimTime::zero(); }
    Rng& rng() override { return *rng_; }
    Rng* rng_;
  };

  bool run_prefill(gfw::GfwDevice& dev, bool md5) {
    const net::FourTuple tuple{net::make_ip(10, 0, 0, 1), 40000,
                               net::make_ip(93, 184, 216, 34), 80};
    Rng rng(7);
    NullFwd fwd(&rng);
    auto feed = [&](net::Packet pkt, net::Dir dir) {
      net::finalize(pkt);
      dev.process(std::move(pkt), dir, fwd);
    };
    feed(net::make_tcp_packet(tuple, net::TcpFlags::only_syn(), 1000, 0),
         net::Dir::kC2S);
    feed(net::make_tcp_packet(tuple.reversed(), net::TcpFlags::syn_ack(),
                              5000, 1001),
         net::Dir::kS2C);
    feed(net::make_tcp_packet(tuple, net::TcpFlags::only_ack(), 1001, 5001),
         net::Dir::kC2S);
    // Junk prefill with the chosen discrepancy.
    net::Packet junk = net::make_tcp_packet(tuple, net::TcpFlags::psh_ack(),
                                            1001, 5001, Bytes(30, 'J'));
    if (md5) {
      junk.tcp->options.md5_signature.emplace();
    } else {
      net::finalize(junk);
      junk.tcp->checksum = static_cast<u16>(junk.tcp->checksum + 1);
    }
    feed(std::move(junk), net::Dir::kC2S);
    feed(net::make_tcp_packet(tuple, net::TcpFlags::psh_ack(), 1001, 5001,
                              to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n\r")),
         net::Dir::kC2S);
    return dev.detections() > 0;
  }
};

TEST(Hardening, ChecksumValidationKillsBadChecksumPrefill) {
  HardenRig lax;
  EXPECT_FALSE(lax.detects_after_bad_checksum_prefill());
  HardenRig strict;
  strict.cfg.harden_validate_checksum = true;
  EXPECT_TRUE(strict.detects_after_bad_checksum_prefill());
}

TEST(Hardening, Md5RejectionKillsMd5Prefill) {
  HardenRig lax;
  EXPECT_FALSE(lax.detects_after_md5_prefill());
  HardenRig strict;
  strict.cfg.harden_reject_md5 = true;
  EXPECT_TRUE(strict.detects_after_md5_prefill());
}

}  // namespace
}  // namespace ys::exp
