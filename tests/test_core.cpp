// Unit tests for the core utilities: checksums, byte I/O, RNG, virtual
// time, results, hexdump, and the trace recorder.
#include <gtest/gtest.h>

#include "core/byte_io.h"
#include "core/checksum.h"
#include "core/clock.h"
#include "core/hexdump.h"
#include "core/log.h"
#include "core/result.h"
#include "core/rng.h"
#include "obs/trace.h"

namespace ys {
namespace {

// ------------------------------------------------------------- checksum

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x2ddf0 -> folded 0xddf2 -> complement 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroLengthIsAllOnes) {
  EXPECT_EQ(internet_checksum(Bytes{}), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const Bytes odd = {0x12, 0x34, 0x56};
  const Bytes padded = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(padded));
}

TEST(Checksum, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1001; ++i) data.push_back(static_cast<u8>(i * 7));
  // Split at an even offset: accumulation is word-based.
  const ByteView all(data);
  u32 acc = checksum_accumulate(all.subspan(0, 500), 0);
  acc = checksum_accumulate(all.subspan(500), acc);
  EXPECT_EQ(checksum_finish(acc), internet_checksum(data));
}

TEST(Checksum, ValidatedPacketSumsToZero) {
  // A buffer with its correct checksum embedded verifies to zero when
  // summed (the receiver-side check).
  Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x12, 0x34};
  const u16 sum = internet_checksum(data);
  data[4] = static_cast<u8>(sum >> 8);
  data[5] = static_cast<u8>(sum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, TransportChecksumCoversPseudoHeader) {
  const Bytes segment = {0x01, 0x02, 0x03, 0x04};
  const u16 a = transport_checksum(0x0A000001, 0x0A000002, 6, segment);
  const u16 b = transport_checksum(0x0A000001, 0x0A000003, 6, segment);
  const u16 c = transport_checksum(0x0A000001, 0x0A000002, 17, segment);
  EXPECT_NE(a, b);  // destination address participates
  EXPECT_NE(a, c);  // protocol participates
}

// -------------------------------------------------------------- byte I/O

TEST(ByteIo, RoundTripScalars) {
  Bytes buf;
  BufWriter w(buf);
  w.u8_(0xAB);
  w.u16_(0x1234);
  w.u32_(0xDEADBEEF);
  w.str("hi");
  EXPECT_EQ(buf.size(), 9u);

  BufReader r(buf);
  EXPECT_EQ(r.u8_().value(), 0xAB);
  EXPECT_EQ(r.u16_().value(), 0x1234);
  EXPECT_EQ(r.u32_().value(), 0xDEADBEEFu);
  EXPECT_EQ(to_string(r.bytes(2).value()), "hi");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIo, BigEndianLayout) {
  Bytes buf;
  BufWriter w(buf);
  w.u16_(0x0102);
  w.u32_(0x03040506);
  const Bytes expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  EXPECT_EQ(buf, expected);
}

TEST(ByteIo, UnderrunReturnsError) {
  Bytes buf = {0x01};
  BufReader r(buf);
  EXPECT_TRUE(r.u8_().ok());
  EXPECT_FALSE(r.u8_().ok());
  EXPECT_FALSE(r.u16_().ok());
  EXPECT_FALSE(r.u32_().ok());
  EXPECT_FALSE(r.bytes(1).ok());
  EXPECT_FALSE(r.skip(1).ok());
}

TEST(ByteIo, PatchBackfillsLengthFields) {
  Bytes buf;
  BufWriter w(buf);
  w.u16_(0);  // placeholder
  w.str("abcd");
  w.patch_u16(0, static_cast<u16>(buf.size() - 2));
  BufReader r(buf);
  EXPECT_EQ(r.u16_().value(), 4);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const i64 v = rng.uniform_range(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(21);
  parent_copy.fork();  // advance identically
  EXPECT_EQ(parent.next_u64(), parent_copy.next_u64());
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(Rng, MixSeedOrderSensitive) {
  EXPECT_NE(Rng::mix_seed({1, 2}), Rng::mix_seed({2, 1}));
  EXPECT_NE(Rng::mix_seed({1}), Rng::mix_seed({1, 0}));
}

TEST(Rng, HashLabelStableAndDistinct) {
  EXPECT_EQ(Rng::hash_label("aliyun-bj"), Rng::hash_label("aliyun-bj"));
  EXPECT_NE(Rng::hash_label("aliyun-bj"), Rng::hash_label("aliyun-sh"));
}

// --------------------------------------------------------------- SimTime

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimTime::from_ms(3).us, 3000);
  EXPECT_EQ(SimTime::from_sec(2).us, 2'000'000);
  EXPECT_EQ((SimTime::from_ms(5) + SimTime::from_ms(7)).millis(), 12);
  EXPECT_EQ((SimTime::from_sec(1) - SimTime::from_ms(250)).us, 750'000);
  EXPECT_DOUBLE_EQ(SimTime::from_ms(1500).seconds(), 1.5);
  EXPECT_LT(SimTime::from_us(1), SimTime::from_us(2));
  EXPECT_GE(SimTime::from_ms(1), SimTime::from_us(1000));
}

TEST(VirtualClock, MonotonicAdvance) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), SimTime::zero());
  clock.advance_to(SimTime::from_ms(10));
  EXPECT_EQ(clock.now().millis(), 10);
  clock.advance_to(SimTime::from_ms(5));  // backwards: ignored
  EXPECT_EQ(clock.now().millis(), 10);
}

// ---------------------------------------------------------------- Result

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> err = Error::make("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().message, "boom");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  Status bad = Error::make("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

// --------------------------------------------------------------- hexdump

TEST(Hexdump, FormatsAsciiGutter) {
  const Bytes data = to_bytes("GET /index HTTP/1.1");
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("47 45 54"), std::string::npos);  // "GET"
  EXPECT_NE(dump.find("|GET /index HTTP"), std::string::npos);
}

TEST(Hexdump, NonPrintableAsDots) {
  const Bytes data = {0x00, 0x1F, 'A'};
  EXPECT_NE(hexdump(data).find("|..A|"), std::string::npos);
}

TEST(HexLine, CompactFormat) {
  const Bytes data = {0xde, 0xad};
  EXPECT_EQ(hex_line(data), "de ad");
  EXPECT_EQ(hex_line(Bytes{}), "");
}

// ------------------------------------------------------------- trace/log

TEST(TraceRecorder, RecordsAndRenders) {
  obs::TraceRecorder trace;
  trace.note(SimTime::from_ms(1), "client", obs::TraceKind::kSend, "SYN");
  trace.note(SimTime::from_ms(2), "gfw", obs::TraceKind::kInject, "RST");
  ASSERT_EQ(trace.events().size(), 2u);
  const std::string rendered = trace.render();
  EXPECT_NE(rendered.find("client"), std::string::npos);
  EXPECT_NE(rendered.find("inject"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Log, SinkReceivesMessagesAboveLevel) {
  std::vector<std::string> captured;
  Log::set_sink([&captured](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  Log::set_level(LogLevel::kWarn);
  YS_LOG(LogLevel::kDebug, "hidden");
  YS_LOG(LogLevel::kError, "visible");
  EXPECT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "visible");
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace ys
