// ys::obs::Timeline: bucket semantics, merge algebra, export round-trips,
// the jobs-invariance of fleet timelines, HTML report generation, and the
// heartbeat shutdown regression.
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/fleet.h"
#include "fleet/fleet_config.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/timeline_export.h"
#include "runner/runner.h"
#include "search/engine.h"

namespace ys {
namespace {

using obs::ScopedTimeline;
using obs::Timeline;
using obs::TimelineKind;
using obs::TimelineLabels;

// ---------------------------------------------------------------- core

TEST(Timeline, BucketBoundaries) {
  Timeline tl{SimTime::from_sec(1)};
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(0)), 0);
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(999'999)), 0);
  // An event exactly on a boundary opens the next bucket.
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(1'000'000)), 1);
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(1'000'001)), 1);
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(-1)), -1);
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(-1'000'000)), -1);
  EXPECT_EQ(tl.bucket_of(SimTime::from_us(-1'000'001)), -2);
  EXPECT_EQ(tl.bucket_start(3).us, 3'000'000);
}

TEST(Timeline, RejectsNonPositiveBucketWidth) {
  EXPECT_THROW(Timeline{SimTime::from_us(0)}, std::logic_error);
  EXPECT_THROW(Timeline{SimTime::from_us(-5)}, std::logic_error);
}

TEST(Timeline, CounterAndGaugeAccumulate) {
  Timeline tl{SimTime::from_ms(100)};
  const TimelineLabels lbl{{"vantage", "bj"}};
  tl.count("flows", lbl, SimTime::from_ms(50));        // bucket 0
  tl.count("flows", lbl, SimTime::from_ms(70), 2);     // bucket 0
  tl.count("flows", lbl, SimTime::from_ms(150));       // bucket 1
  tl.sample("depth", lbl, SimTime::from_ms(10), 4);
  tl.sample("depth", lbl, SimTime::from_ms(20), 10);
  tl.sample("depth", lbl, SimTime::from_ms(30), 7);

  ASSERT_EQ(tl.series_count(), 2u);
  const auto& flows = tl.series().at({"flows", lbl});
  EXPECT_EQ(flows.kind, TimelineKind::kCounter);
  EXPECT_EQ(flows.buckets.at(0).sum, 3);
  EXPECT_EQ(flows.buckets.at(0).count, 2u);
  EXPECT_EQ(flows.buckets.at(1).sum, 1);

  const auto& depth = tl.series().at({"depth", lbl});
  EXPECT_EQ(depth.kind, TimelineKind::kGauge);
  EXPECT_EQ(depth.buckets.at(0).sum, 21);
  EXPECT_EQ(depth.buckets.at(0).count, 3u);
  EXPECT_EQ(depth.buckets.at(0).min, 4);
  EXPECT_EQ(depth.buckets.at(0).max, 10);
}

TEST(Timeline, KindConflictThrows) {
  Timeline tl;
  tl.count("x", {}, SimTime::from_ms(1));
  EXPECT_THROW(tl.sample("x", {}, SimTime::from_ms(2), 3), std::logic_error);
}

TEST(Timeline, MergeWidthMismatchThrows) {
  Timeline a{SimTime::from_sec(1)};
  Timeline b{SimTime::from_ms(500)};
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

TEST(Timeline, MergeKindMismatchThrows) {
  Timeline a;
  Timeline b;
  a.count("x", {}, SimTime::from_ms(1));
  b.sample("x", {}, SimTime::from_ms(1), 2);
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

Timeline make_part(int which) {
  Timeline tl{SimTime::from_ms(100)};
  const TimelineLabels lbl{{"w", std::to_string(which % 2)}};
  for (int i = 0; i < 6; ++i) {
    tl.count("flows", lbl, SimTime::from_ms(37 * (which + 1) * i), 1 + which);
    tl.sample("depth", {}, SimTime::from_ms(53 * i), which * 10 + i);
  }
  tl.annotate(SimTime::from_ms(200 * which), "mark",
              "part " + std::to_string(which));
  return tl;
}

TEST(Timeline, MergeAssociativeAndCommutative) {
  const Timeline a = make_part(0);
  const Timeline b = make_part(1);
  const Timeline c = make_part(2);

  // ((a + b) + c)
  Timeline left = a;
  left.merge_from(b);
  left.merge_from(c);
  // (a + (b + c))
  Timeline bc = b;
  bc.merge_from(c);
  Timeline right = a;
  right.merge_from(bc);
  // ((c + b) + a) — commuted order
  Timeline rev = c;
  rev.merge_from(b);
  rev.merge_from(a);

  const std::string want = obs::timeline_to_json(left);
  EXPECT_EQ(obs::timeline_to_json(right), want);
  EXPECT_EQ(obs::timeline_to_json(rev), want);
  EXPECT_EQ(obs::timeline_digest(right), obs::timeline_digest(left));
  EXPECT_EQ(obs::timeline_digest(rev), obs::timeline_digest(left));
}

TEST(Timeline, MergeDeduplicatesAnnotations) {
  Timeline a;
  Timeline b;
  a.annotate_bucket(2, "soak-phase", "p1: rst-storm");
  b.annotate_bucket(2, "soak-phase", "p1: rst-storm");
  b.annotate_bucket(4, "soak-phase", "p2: none");
  a.merge_from(b);
  EXPECT_EQ(a.annotations().size(), 2u);
  a.merge_from(b);  // idempotent re-merge
  EXPECT_EQ(a.annotations().size(), 2u);
}

TEST(Timeline, ScopedInstallNests) {
  EXPECT_EQ(Timeline::current(), nullptr);
  Timeline outer;
  {
    ScopedTimeline a(&outer);
    EXPECT_EQ(Timeline::current(), &outer);
    Timeline inner;
    {
      ScopedTimeline b(&inner);
      EXPECT_EQ(Timeline::current(), &inner);
    }
    EXPECT_EQ(Timeline::current(), &outer);
  }
  EXPECT_EQ(Timeline::current(), nullptr);
}

TEST(Timeline, DigestPrefixExclusion) {
  Timeline a{SimTime::from_sec(1)};
  Timeline b{SimTime::from_sec(1)};
  a.count("fleet.flows", {}, SimTime::from_ms(10));
  b.count("fleet.flows", {}, SimTime::from_ms(10));
  // Wall-clock series differ between the two runs...
  a.count("runner.tasks_done", {{"axis", "wall"}}, SimTime::from_ms(1), 7);
  b.count("runner.tasks_done", {{"axis", "wall"}}, SimTime::from_ms(900), 3);
  EXPECT_NE(obs::timeline_digest(a), obs::timeline_digest(b));
  // ...but the virtual-time digest excludes them.
  EXPECT_EQ(obs::timeline_digest(a, {"runner."}),
            obs::timeline_digest(b, {"runner."}));
}

// ------------------------------------------------------------- exporters

TEST(Timeline, JsonRoundTrip) {
  Timeline tl{SimTime::from_ms(250)};
  tl.count("fleet.flows", {{"vantage", "bj"}}, SimTime::from_ms(100), 3);
  tl.sample("fleet.flow_index", {{"vantage", "bj"}}, SimTime::from_ms(400),
            12);
  tl.annotate(SimTime::from_ms(500), "soak-phase", "p1: rst-storm");

  const std::string json = obs::timeline_to_json(tl);
  std::string error;
  const auto doc = obs::parse_timeline_json(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->bucket_us, 250'000);
  ASSERT_EQ(doc->series.size(), 2u);
  EXPECT_EQ(doc->series[0].name, "fleet.flow_index");
  EXPECT_EQ(doc->series[0].kind, "gauge");
  ASSERT_EQ(doc->series[0].points.size(), 1u);
  EXPECT_EQ(doc->series[0].points[0].bucket, 1);
  EXPECT_EQ(doc->series[0].points[0].sum, 12);
  EXPECT_EQ(doc->series[1].name, "fleet.flows");
  EXPECT_EQ(doc->series[1].labels.at("vantage"), "bj");
  EXPECT_EQ(doc->series[1].points[0].sum, 3);
  ASSERT_EQ(doc->annotations.size(), 1u);
  EXPECT_EQ(doc->annotations[0].bucket, 2);
  EXPECT_EQ(doc->annotations[0].category, "soak-phase");
  EXPECT_EQ(doc->total("fleet.flows"), 3);
}

TEST(Timeline, CsvShape) {
  Timeline tl{SimTime::from_ms(100)};
  tl.count("flows", {{"vantage", "bj"}, {"vantage_index", "0"}},
           SimTime::from_ms(150), 2);
  const std::string csv = obs::timeline_to_csv(tl);
  EXPECT_EQ(csv.rfind("name,labels,kind,bucket,bucket_start_us,sum,count,"
                      "min,max\n", 0), 0u);
  EXPECT_NE(csv.find("flows,vantage=bj;vantage_index=0,counter,1,100000,2,1"),
            std::string::npos);
}

TEST(Timeline, ParserRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(obs::parse_timeline_json("not json", &error).has_value());
  EXPECT_FALSE(obs::parse_timeline_json("{}", &error).has_value());
  EXPECT_FALSE(
      obs::parse_timeline_json("{\"schema\": \"ys.timeline.v2\"}", &error)
          .has_value());
}

// ------------------------------------------------------- fleet producers

struct FleetSweep {
  Timeline tl{SimTime::from_ms(500)};
  u64 flows = 0;
  u64 successes = 0;
  u64 cache_hits = 0;
};

FleetSweep run_fleet_sweep(const fleet::FleetConfig& cfg, int jobs) {
  FleetSweep out;
  const fleet::Fleet fl(cfg);
  obs::MetricsRegistry local;
  obs::ScopedMetricsRegistry metrics_scope(&local);
  {
    ScopedTimeline scope(&out.tl);
    const runner::TrialGrid grid = fl.grid();
    std::vector<std::unique_ptr<fleet::Fleet::VantageState>> states;
    states.reserve(grid.chains());
    for (std::size_t ch = 0; ch < grid.chains(); ++ch) {
      states.push_back(fl.make_vantage_state(ch));
    }
    runner::PoolOptions pool;
    pool.jobs = jobs;
    (void)runner::collect_grid_or(
        grid, pool, static_cast<i64>(-1),
        [&](const runner::GridCoord& c, runner::TaskContext&) {
          return fl.run_flow(c, *states[grid.chain(c)]).encode();
        });
    fl.annotate_timeline(&out.tl);
  }
  const obs::Snapshot snap = local.snapshot();
  const auto counter = [&snap](const char* name) -> u64 {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  out.flows = counter("fleet.flows");
  out.successes = counter("fleet.flow_success");
  out.cache_hits = counter("fleet.cache_hit");
  return out;
}

fleet::FleetConfig small_soak_config() {
  std::string error;
  fleet::FleetConfig cfg = fleet::parse_fleet_config(
      "clients=6;flows=48;servers=3;vantages=2;arrival=20;churn=0.05;"
      "soak=1s:rst-storm,2s:none",
      error);
  EXPECT_TRUE(error.empty()) << error;
  return cfg;
}

TEST(TimelineFleet, JobsInvariantDigest) {
  const fleet::FleetConfig cfg = small_soak_config();
  const FleetSweep serial = run_fleet_sweep(cfg, 1);
  const FleetSweep parallel = run_fleet_sweep(cfg, 8);
  ASSERT_GT(serial.tl.series_count(), 0u);
  // Byte-identical virtual-time series; only the wall-clock runner.*
  // progress curves may differ between jobs counts.
  const std::vector<std::string> exclude = {"runner."};
  EXPECT_EQ(obs::timeline_digest(parallel.tl, exclude),
            obs::timeline_digest(serial.tl, exclude));
}

TEST(TimelineFleet, TimelineTotalsMatchAggregateMetrics) {
  const FleetSweep sweep = run_fleet_sweep(small_soak_config(), 2);
  const std::string json = obs::timeline_to_json(sweep.tl);
  std::string error;
  const auto doc = obs::parse_timeline_json(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->total("fleet.flows"), static_cast<i64>(sweep.flows));
  EXPECT_EQ(doc->total("fleet.flow_success"),
            static_cast<i64>(sweep.successes));
  EXPECT_EQ(doc->total("fleet.cache_hit"),
            static_cast<i64>(sweep.cache_hits));
  // The soak schedule's two boundaries are annotated.
  std::size_t soak_marks = 0;
  for (const auto& a : doc->annotations) {
    if (a.category == "soak-phase") ++soak_marks;
  }
  EXPECT_EQ(soak_marks, 2u);
}

// ------------------------------------------------------------ HTML report

TEST(TimelineReport, RendersSelfContainedHtml) {
  const FleetSweep sweep = run_fleet_sweep(small_soak_config(), 1);
  std::string error;
  const auto doc =
      obs::parse_timeline_json(obs::timeline_to_json(sweep.tl), &error);
  ASSERT_TRUE(doc.has_value()) << error;

  obs::ReportOptions opt;
  opt.title = "reference soak";
  opt.fleet_spec = "clients=6;flows=48;servers=3;vantages=2;arrival=20;"
                   "churn=0.05;soak=1s:rst-storm,2s:none";
  const std::string html = obs::render_timeline_html(*doc, opt);

  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Fleet convergence"), std::string::npos);
  EXPECT_NE(html.find("id=\"timeline-manifest\""), std::string::npos);
  EXPECT_NE(html.find("id=\"timeline-totals\""), std::string::npos);
  EXPECT_NE(html.find("fleet.flows"), std::string::npos);
  // Self-contained: no external fetches.
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  // The totals hook carries the aggregate the metrics twin reports.
  EXPECT_NE(html.find("\"fleet.flows\":" + std::to_string(sweep.flows)),
            std::string::npos);
}

// --------------------------------------------------------- search producer

TEST(TimelineSearch, RecordsGenerationSeriesAndLineage) {
  search::SearchConfig cfg;
  cfg.population = 4;
  cfg.generations = 2;
  cfg.servers = 2;
  cfg.clean_trials = 1;
  cfg.faulted_trials = 0;
  cfg.coevo_rounds = 0;
  cfg.seed = 11;

  Timeline tl;
  {
    ScopedTimeline scope(&tl);
    search::SearchEngine engine(cfg);
    const search::SearchResult result = engine.run();
    EXPECT_EQ(result.generations_run, 2);
  }

  bool best = false;
  bool mean = false;
  bool archive = false;
  for (const auto& [key, series] : tl.series()) {
    if (key.name == "search.best_success") {
      best = true;
      EXPECT_EQ(series.kind, TimelineKind::kGauge);
      EXPECT_EQ(key.labels.count("variant"), 1u);
      // One point per generation, bucketed by generation index.
      EXPECT_EQ(series.buckets.size(), 2u);
      EXPECT_EQ(series.buckets.count(0), 1u);
      EXPECT_EQ(series.buckets.count(1), 1u);
      // Rates ride the fixed-point scale.
      for (const auto& [bucket, value] : series.buckets) {
        EXPECT_GE(value.sum, 0);
        EXPECT_LE(value.sum, Timeline::kRatioScale);
      }
    }
    if (key.name == "search.mean_success") mean = true;
    if (key.name == "search.archive_size") archive = true;
  }
  EXPECT_TRUE(best);
  EXPECT_TRUE(mean);
  EXPECT_TRUE(archive);

  bool lineage = false;
  for (const auto& a : tl.annotations()) {
    if (a.category == "lineage") lineage = true;
  }
  EXPECT_TRUE(lineage);
}

// ------------------------------------------------- heartbeat shutdown

// Regression: the heartbeat monitor thread must be joined before
// run_grid returns, so nothing it prints can interleave with output the
// caller writes after the pool drains.
TEST(Heartbeat, NoLineAfterRunReturns) {
  const std::string path = "heartbeat_capture.tmp";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ::fflush(stderr);
  const int saved = ::dup(2);
  ASSERT_GE(saved, 0);
  ASSERT_GE(::dup2(fd, 2), 0);

  runner::TrialGrid grid;
  grid.trials = 40;
  runner::PoolOptions pool;
  pool.jobs = 2;
  pool.heartbeat_seconds = 0.001;  // fire often enough to race a lazy join
  runner::run_grid(grid, pool, [](const runner::GridCoord&,
                                  runner::TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // If the monitor were still alive here, it could still write to fd 2.
  std::fprintf(stderr, "SENTINEL\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ::fflush(stderr);
  ASSERT_GE(::dup2(saved, 2), 0);
  ::close(saved);
  ::close(fd);

  std::string captured;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) captured.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const std::size_t sentinel = captured.find("SENTINEL");
  ASSERT_NE(sentinel, std::string::npos);
  EXPECT_EQ(captured.find("[perf]", sentinel), std::string::npos)
      << "heartbeat line written after run_grid returned:\n"
      << captured;
}

}  // namespace
}  // namespace ys
