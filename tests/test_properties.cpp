// Cross-cutting property tests: invariants swept across seeds, strategies,
// discrepancies, and stack versions — the "does the whole system hold
// together" layer above the per-module unit tests.
#include <gtest/gtest.h>

#include "app/http.h"
#include "exp/scenario.h"
#include "exp/trial.h"
#include "strategy/insertion.h"
#include "tcpstack/tcp_endpoint.h"

namespace ys {
namespace {

using namespace ys::exp;

const gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

ScenarioOptions clean_options(u64 seed) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[1];  // aliyun-sh
  opt.server.host = "s.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = Calibration::standard();
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.cal.old_model_fraction = 0.0;
  opt.cal.server_side_firewall_fraction = 0.0;
  opt.cal.server_accepts_any_ack = 0.0;
  opt.seed = seed;
  opt.path_seed = seed;  // vary the whole path per instance
  return opt;
}

// Property 1: on clean paths (no loss, no estimate error, evolved devices)
// the four Table 4 strategies *always* evade, across many path draws.
struct StrategySeed {
  strategy::StrategyId id;
  u64 seed;
};

class RobustStrategies : public ::testing::TestWithParam<StrategySeed> {};

TEST_P(RobustStrategies, AlwaysEvadeOnCleanPaths) {
  const auto& param = GetParam();
  Scenario sc(rules(), clean_options(param.seed));
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = param.id;
  const TrialResult result = run_http_trial(sc, http);
  EXPECT_EQ(result.outcome, Outcome::kSuccess)
      << strategy::to_string(param.id) << " seed=" << param.seed
      << " gfw_reset=" << result.gfw_reset_seen
      << " response=" << result.response_received;
}

std::vector<StrategySeed> robust_cases() {
  std::vector<StrategySeed> cases;
  for (auto id : strategy::intang_candidate_strategies()) {
    for (u64 seed = 1; seed <= 12; ++seed) {
      cases.push_back({id, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RobustStrategies,
                         ::testing::ValuesIn(robust_cases()));

// Property 2: the same strategies also evade prior-model paths (the
// "defeat both models" design goal of §7.1).
class RobustOnPriorModel : public ::testing::TestWithParam<StrategySeed> {};

TEST_P(RobustOnPriorModel, CombinedStrategiesDefeatOldDevices) {
  const auto& param = GetParam();
  ScenarioOptions opt = clean_options(param.seed);
  opt.cal.old_model_fraction = 1.0;
  Scenario sc(rules(), opt);
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = param.id;
  const TrialResult result = run_http_trial(sc, http);
  EXPECT_EQ(result.outcome, Outcome::kSuccess)
      << strategy::to_string(param.id) << " seed=" << param.seed;
}

std::vector<StrategySeed> prior_cases() {
  std::vector<StrategySeed> cases;
  for (auto id : {strategy::StrategyId::kImprovedTeardown,
                  strategy::StrategyId::kImprovedInOrder,
                  strategy::StrategyId::kCreationResyncDesync,
                  strategy::StrategyId::kTeardownReversal}) {
    for (u64 seed = 21; seed <= 28; ++seed) {
      cases.push_back({id, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RobustOnPriorModel,
                         ::testing::ValuesIn(prior_cases()));

// Property 3: strategies never break innocent traffic on clean paths —
// evasion must be free when nothing is censored.
class HarmlessWithoutKeyword
    : public ::testing::TestWithParam<strategy::StrategyId> {};

TEST_P(HarmlessWithoutKeyword, InnocentRequestsStillSucceed) {
  for (u64 seed = 31; seed <= 36; ++seed) {
    Scenario sc(rules(), clean_options(seed));
    HttpTrialOptions http;
    http.with_keyword = false;
    http.strategy = GetParam();
    const TrialResult result = run_http_trial(sc, http);
    EXPECT_EQ(result.outcome, Outcome::kSuccess)
        << strategy::to_string(GetParam()) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HarmlessWithoutKeyword,
    ::testing::Values(strategy::StrategyId::kImprovedTeardown,
                      strategy::StrategyId::kImprovedInOrder,
                      strategy::StrategyId::kCreationResyncDesync,
                      strategy::StrategyId::kTeardownReversal,
                      strategy::StrategyId::kResyncDesync,
                      strategy::StrategyId::kTcbReversal,
                      strategy::StrategyId::kInOrderTtl,
                      strategy::StrategyId::kTeardownRstTtl));

// Property 4: every Table 5 "safe" insertion packet leaves the reference
// server's connection fully intact — for every seed (ISN randomization)
// and every Linux version the discrepancy claims to cover.
struct InsertionCase {
  strategy::PacketKind kind;
  strategy::Discrepancy discrepancy;
  u64 seed;
};

class InsertionSafety : public ::testing::TestWithParam<InsertionCase> {};

TEST_P(InsertionSafety, ServerStateUntouched) {
  const auto& param = GetParam();
  const net::FourTuple tuple{net::make_ip(10, 0, 0, 1), 40000,
                             net::make_ip(93, 184, 216, 34), 80};
  net::EventLoop loop;
  tcp::TcpEndpoint server(loop, Rng(param.seed),
                          tcp::StackProfile::for_version(
                              tcp::LinuxVersion::k4_4),
                          tuple.reversed(), {});
  server.open_passive();
  u32 cseq = 1000 + static_cast<u32>(param.seed * 77);
  auto feed = [&](net::Packet pkt) {
    net::finalize(pkt);
    server.on_segment(pkt);
  };
  net::Packet syn =
      net::make_tcp_packet(tuple, net::TcpFlags::only_syn(), cseq, 0);
  syn.tcp->options.timestamps = net::TcpTimestamps{90'000, 0};
  feed(std::move(syn));
  ++cseq;
  net::Packet ack = net::make_tcp_packet(tuple, net::TcpFlags::only_ack(),
                                         cseq, server.iss() + 1);
  ack.tcp->options.timestamps = net::TcpTimestamps{90'001, 0};
  feed(std::move(ack));
  ASSERT_EQ(server.state(), tcp::TcpState::kEstablished);

  strategy::InsertionTuning tuning;
  tuning.peer_snd_nxt = server.snd_nxt();
  tuning.stale_ts_val = 1;
  Rng rng(param.seed);
  net::Packet insertion = [&] {
    switch (param.kind) {
      case strategy::PacketKind::kRst:
        return strategy::craft_rst(tuple, cseq);
      default:
        return strategy::craft_data(tuple, cseq, server.snd_nxt(),
                                    strategy::junk_payload(48, rng));
    }
  }();
  strategy::apply_discrepancy(insertion, param.discrepancy, tuning);

  const u32 rcv_before = server.rcv_nxt();
  feed(std::move(insertion));
  EXPECT_EQ(server.state(), tcp::TcpState::kEstablished);
  EXPECT_EQ(server.rcv_nxt(), rcv_before);
  EXPECT_FALSE(server.was_reset());
}

std::vector<InsertionCase> insertion_cases() {
  std::vector<InsertionCase> cases;
  for (u64 seed = 1; seed <= 5; ++seed) {
    cases.push_back({strategy::PacketKind::kRst,
                     strategy::Discrepancy::kUnsolicitedMd5, seed});
    cases.push_back({strategy::PacketKind::kRst,
                     strategy::Discrepancy::kBadChecksum, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kUnsolicitedMd5, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kBadAckNumber, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kOldTimestamp, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kBadChecksum, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kNoFlags, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kBadIpLength, seed});
    cases.push_back({strategy::PacketKind::kData,
                     strategy::Discrepancy::kShortTcpHeader, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, InsertionSafety,
                         ::testing::ValuesIn(insertion_cases()));

// Property 5: Tor coverage — across path draws, bare Tor on a filtered
// path always gets the bridge IP-blocked, and INTANG always prevents it.
class TorCoverage : public ::testing::TestWithParam<u64> {};

TEST_P(TorCoverage, IntangShieldsBridges) {
  ScenarioOptions opt = clean_options(GetParam());
  opt.server.ip = net::make_ip(54, 210, 7, 91);
  opt.tor_filtering_override = true;
  {
    Scenario sc(rules(), opt);
    TorTrialOptions bare;
    bare.use_intang = false;
    bare.strategy = strategy::StrategyId::kNone;
    const TorTrialResult r = run_tor_trial(sc, bare);
    EXPECT_TRUE(r.bridge_ip_blocked);
    EXPECT_EQ(r.outcome, Outcome::kFailure2);
  }
  {
    Scenario sc(rules(), opt);
    TorTrialOptions covered;
    covered.use_intang = true;
    covered.strategy = strategy::StrategyId::kImprovedTeardown;
    const TorTrialResult r = run_tor_trial(sc, covered);
    EXPECT_FALSE(r.bridge_ip_blocked);
    EXPECT_EQ(r.outcome, Outcome::kSuccess);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TorCoverage, ::testing::Range<u64>(41, 49));

// Property 6: the 90-second block period really blocks — a second,
// innocent request to the same host pair inside the window fails, and one
// after the window succeeds.
TEST(BlockPeriod, SecondConnectionInsideWindowIsObstructed) {
  Scenario sc(rules(), clean_options(51));
  HttpTrialOptions censored;
  censored.with_keyword = true;
  ASSERT_EQ(run_http_trial(sc, censored).outcome, Outcome::kFailure2);

  // Same scenario (same GFW state), new innocent connection right away.
  tcp::TcpEndpoint* conn = nullptr;
  tcp::TcpEndpoint::Callbacks cb;
  cb.on_established = [&conn] {
    if (conn) conn->send_data(app::build_http_get("s.example", "/"));
  };
  conn = &sc.client().connect(sc.options().server.ip, 80, 40050,
                              std::move(cb));
  sc.run();
  EXPECT_NE(conn->state(), tcp::TcpState::kEstablished)
      << "handshake should be obstructed by forged SYN/ACKs or resets";
}

}  // namespace
}  // namespace ys
