// Deeper end-to-end scenarios: failure injection (loss), the 90-second
// block-period lifecycle over virtual time, route changes invalidating TTL
// estimates mid-session, and a multi-protocol INTANG session.
#include <gtest/gtest.h>

#include "app/http.h"
#include "exp/scenario.h"
#include "exp/trial.h"

namespace ys::exp {
namespace {

const gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

ScenarioOptions clean_options(u64 seed) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[1];
  opt.server.host = "s.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = Calibration::standard();
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.cal.old_model_fraction = 0.0;
  opt.cal.server_side_firewall_fraction = 0.0;
  opt.cal.server_accepts_any_ack = 0.0;
  // Teardown-flavored devices: the route-dynamics tests isolate the TTL
  // mechanism, not Behavior 3.
  opt.cal.rst_resync_established = 0.0;
  opt.cal.rst_resync_handshake = 0.0;
  opt.seed = seed;
  return opt;
}

// ------------------------------------------------------- failure injection

TEST(FailureInjection, PlainFlowSurvivesModerateLossViaRetransmission) {
  int successes = 0;
  for (u64 seed = 1; seed <= 20; ++seed) {
    ScenarioOptions opt = clean_options(seed);
    opt.cal.per_link_loss = 0.01;  // ~13 % end-to-end per crossing
    Scenario sc(rules(), opt);
    HttpTrialOptions http;
    http.with_keyword = false;
    if (run_http_trial(sc, http).outcome == Outcome::kSuccess) ++successes;
  }
  // TCP retransmission rides out this loss rate nearly always.
  EXPECT_GE(successes, 18);
}

TEST(FailureInjection, TripleSentInsertionPacketsSurviveLoss) {
  // The §3.4 countermeasure: insertion packets are repeated thrice, so a
  // lossy link rarely voids the strategy.
  int successes = 0;
  for (u64 seed = 31; seed <= 50; ++seed) {
    ScenarioOptions opt = clean_options(seed);
    opt.cal.per_link_loss = 0.008;
    Scenario sc(rules(), opt);
    HttpTrialOptions http;
    http.with_keyword = true;
    http.strategy = strategy::StrategyId::kImprovedTeardown;
    if (run_http_trial(sc, http).outcome == Outcome::kSuccess) ++successes;
  }
  EXPECT_GE(successes, 16);
}

// -------------------------------------------------------- block lifecycle

TEST(BlockPeriod, ExpiresOnVirtualTimeAndServiceResumes) {
  Scenario sc(rules(), clean_options(61));

  // Connection 1: censored, detected, host pair blocked.
  HttpTrialOptions censored;
  censored.with_keyword = true;
  ASSERT_EQ(run_http_trial(sc, censored).outcome, Outcome::kFailure2);
  ASSERT_TRUE(sc.gfw_type2().host_pair_blocked(
      sc.options().vp.address, sc.options().server.ip, sc.loop().now()));

  // Let 91 virtual seconds pass.
  sc.loop().run_until(sc.loop().now() + SimTime::from_sec(91));
  ASSERT_FALSE(sc.gfw_type2().host_pair_blocked(
      sc.options().vp.address, sc.options().server.ip, sc.loop().now()));

  // Connection 2: innocent request now completes normally.
  tcp::TcpEndpoint* conn = nullptr;
  tcp::TcpEndpoint::Callbacks cb;
  cb.on_established = [&conn] {
    if (conn) conn->send_data(app::build_http_get("s.example", "/fine"));
  };
  conn = &sc.client().connect(sc.options().server.ip, 80, 40060,
                              std::move(cb));
  sc.run();
  EXPECT_TRUE(app::http_response_complete(conn->received_stream()));
}

// ---------------------------------------------------------- route dynamics

TEST(RouteDynamics, ShrinkingPathMakesTtlInsertionHitTheServer) {
  ScenarioOptions opt = clean_options(71);
  Scenario sc(rules(), opt);
  // The route shrinks by 2 hops after the client's hop estimate was made:
  // insertion TTL (hops - 2) now reaches the server, whose connection the
  // teardown RSTs kill → Failure 1.
  sc.path().shift_route(-2);
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = strategy::StrategyId::kTeardownRstTtl;
  const TrialResult result = run_http_trial(sc, http);
  EXPECT_EQ(result.outcome, Outcome::kFailure1)
      << "gfw=" << result.gfw_reset_seen
      << " other=" << result.other_reset_seen
      << " resp=" << result.response_received;
  EXPECT_TRUE(result.other_reset_seen);  // the server's own RST came back
}

TEST(RouteDynamics, GrowingPathKeepsStrategyWorking) {
  ScenarioOptions opt = clean_options(72);
  Scenario sc(rules(), opt);
  sc.path().shift_route(+2);  // estimate now 2 short — still clears the GFW
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = strategy::StrategyId::kTeardownRstTtl;
  EXPECT_EQ(run_http_trial(sc, http).outcome, Outcome::kSuccess);
}

// ------------------------------------------------------ INTANG full session

TEST(IntangSession, HttpAndDnsInOneSession) {
  // One client, one INTANG instance, two protocols: a censored DNS lookup
  // through the forwarder and then a censored HTTP fetch, both shielded.
  ScenarioOptions opt = clean_options(81);
  opt.server.ip = net::make_ip(216, 146, 35, 35);  // host doubles as both
  Scenario sc(rules(), opt);

  DnsTrialOptions dns;
  dns.domain = "www.dropbox.com";
  dns.use_intang = true;
  const DnsTrialResult dns_result = run_dns_trial(sc, dns);
  EXPECT_EQ(dns_result.outcome, Outcome::kSuccess);
  EXPECT_FALSE(dns_result.poisoned);

  // Fresh scenario for HTTP against the same IP, with a shared selector
  // carrying knowledge forward.
  intang::StrategySelector selector{intang::StrategySelector::Config{}};
  ScenarioOptions opt2 = clean_options(82);
  opt2.server.ip = opt.server.ip;
  Scenario sc2(rules(), opt2);
  HttpTrialOptions http;
  http.with_keyword = true;
  http.use_intang = true;
  http.shared_selector = &selector;
  EXPECT_EQ(run_http_trial(sc2, http).outcome, Outcome::kSuccess);
}

TEST(IntangSession, MixedCensoredAndInnocentTraffic) {
  // INTANG must not degrade innocent fetches interleaved with censored
  // ones to the same server (the block period never triggers).
  intang::StrategySelector selector{intang::StrategySelector::Config{}};
  for (int round = 0; round < 4; ++round) {
    ScenarioOptions opt = clean_options(90 + static_cast<u64>(round));
    Scenario sc(rules(), opt);
    HttpTrialOptions http;
    http.with_keyword = (round % 2) == 0;
    http.use_intang = true;
    http.shared_selector = &selector;
    EXPECT_EQ(run_http_trial(sc, http).outcome, Outcome::kSuccess)
        << "round " << round;
  }
}

}  // namespace
}  // namespace ys::exp
