// Strategy-layer tests: insertion-packet crafting, the Table 5 preference
// matrix, the engine's per-connection tracking, the retransmission-aware
// trigger, and the exact packet sequences each strategy emits.
#include <gtest/gtest.h>

#include "strategy/strategy.h"

namespace ys::strategy {
namespace {

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

// -------------------------------------------------------------- insertion

TEST(Insertion, SmallTtlSetsTtl) {
  InsertionTuning tuning;
  tuning.small_ttl = 9;
  net::Packet pkt = craft_rst(kTuple, 1000);
  apply_discrepancy(pkt, Discrepancy::kSmallTtl, tuning);
  EXPECT_EQ(pkt.ip.ttl, 9);
}

TEST(Insertion, BadChecksumDiffersFromCorrect) {
  net::Packet pkt = craft_data(kTuple, 1000, 2000, to_bytes("junk"));
  apply_discrepancy(pkt, Discrepancy::kBadChecksum, InsertionTuning{});
  net::finalize(pkt);
  EXPECT_FALSE(net::transport_checksum_ok(pkt));
}

TEST(Insertion, BadAckAcknowledgesUnsentData) {
  InsertionTuning tuning;
  tuning.peer_snd_nxt = 5000;
  net::Packet pkt = craft_data(kTuple, 1000, 5000, to_bytes("junk"));
  apply_discrepancy(pkt, Discrepancy::kBadAckNumber, tuning);
  EXPECT_TRUE(pkt.tcp->flags.ack);
  EXPECT_EQ(pkt.tcp->ack, 5000u + tuning.bad_ack_offset);
}

TEST(Insertion, NoFlagsClearsEverything) {
  net::Packet pkt = craft_data(kTuple, 1000, 2000, to_bytes("junk"));
  apply_discrepancy(pkt, Discrepancy::kNoFlags, InsertionTuning{});
  EXPECT_FALSE(pkt.tcp->flags.any());
}

TEST(Insertion, Md5AddsOption) {
  net::Packet pkt = craft_rst(kTuple, 1000);
  apply_discrepancy(pkt, Discrepancy::kUnsolicitedMd5, InsertionTuning{});
  EXPECT_TRUE(pkt.tcp->options.md5_signature.has_value());
}

TEST(Insertion, OldTimestampUsesStaleValue) {
  InsertionTuning tuning;
  tuning.stale_ts_val = 42;
  net::Packet pkt = craft_data(kTuple, 1000, 2000, to_bytes("junk"));
  apply_discrepancy(pkt, Discrepancy::kOldTimestamp, tuning);
  ASSERT_TRUE(pkt.tcp->options.timestamps.has_value());
  EXPECT_EQ(pkt.tcp->options.timestamps->ts_val, 42u);
}

TEST(Insertion, BadIpLengthOverstates) {
  net::Packet pkt = craft_data(kTuple, 1000, 2000, to_bytes("junk"));
  apply_discrepancy(pkt, Discrepancy::kBadIpLength, InsertionTuning{});
  net::finalize(pkt);
  EXPECT_GT(pkt.ip.total_length, net::wire_size(pkt));
}

TEST(Insertion, ShortHeaderBelowMinimum) {
  net::Packet pkt = craft_data(kTuple, 1000, 2000, to_bytes("junk"));
  apply_discrepancy(pkt, Discrepancy::kShortTcpHeader, InsertionTuning{});
  net::finalize(pkt);
  EXPECT_LT(pkt.tcp->data_offset_words, 5);
}

TEST(Insertion, Table5PreferenceMatrix) {
  const auto syn = preferred_discrepancies(PacketKind::kSyn);
  EXPECT_EQ(syn, std::vector<Discrepancy>{Discrepancy::kSmallTtl});

  const auto rst = preferred_discrepancies(PacketKind::kRst);
  EXPECT_EQ(rst, (std::vector<Discrepancy>{Discrepancy::kSmallTtl,
                                           Discrepancy::kUnsolicitedMd5}));

  const auto data = preferred_discrepancies(PacketKind::kData);
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0], Discrepancy::kSmallTtl);
}

TEST(Insertion, JunkPayloadNeverContainsKeywords) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = junk_payload(200, rng);
    const std::string text = ys::to_string(junk);
    EXPECT_EQ(text.find("ultrasurf"), std::string::npos);
    for (char c : text) {
      EXPECT_GE(c, 'A');
      EXPECT_LE(c, 'Z');
    }
  }
}

TEST(Insertion, PathKnowledgeTtlClamped) {
  PathKnowledge pk;
  pk.hop_estimate = 14;
  pk.ttl_delta = 2;
  EXPECT_EQ(pk.insertion_ttl(), 12);
  pk.hop_estimate = 1;
  EXPECT_EQ(pk.insertion_ttl(), 1);  // never below 1
}

// ------------------------------------------------------------ DataTrigger

TEST(DataTrigger, FiresOnFirstDataAndItsRetransmissions) {
  DataTrigger trigger;
  net::Packet syn = net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(),
                                         1000, 0);
  EXPECT_FALSE(trigger.fires(syn));  // no payload

  net::Packet data = net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(),
                                          1001, 2000, to_bytes("request"));
  EXPECT_TRUE(trigger.fires(data));
  EXPECT_TRUE(trigger.fires(data));  // retransmission: same seq

  net::Packet later = net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(),
                                           1008, 2000, to_bytes("more"));
  EXPECT_FALSE(trigger.fires(later));  // subsequent data flows untouched
}

// --------------------------------------------------------------- engine rig

/// Host shim wired to a loop + path so engine-driven strategies can emit.
struct EngineRig {
  net::EventLoop loop;
  net::Path path;
  tcp::Host client;
  std::vector<net::Packet> wire;  // packets that actually left the client

  explicit EngineRig()
      : path(loop, Rng(3), path_cfg(), nullptr),
        client(host_cfg(), path, loop, Rng(5)) {
    client.attach();
    // Capture everything that reaches hop 1 by replacing the server sink.
    path.set_server_sink([this](net::Packet p) { wire.push_back(std::move(p)); });
  }

  static net::PathConfig path_cfg() {
    net::PathConfig cfg;
    cfg.server_hops = 2;  // short: even TTL-limited packets arrive
    cfg.jitter_us = 0;
    return cfg;
  }
  static tcp::Host::Config host_cfg() {
    tcp::Host::Config cfg;
    cfg.name = "client";
    cfg.address = kTuple.src_ip;
    cfg.side = tcp::HostSide::kClient;
    cfg.profile = tcp::StackProfile::for_version(tcp::LinuxVersion::k4_4);
    return cfg;
  }

  /// Run one strategy over a scripted connection: SYN out, SYN/ACK back,
  /// then one request. Returns every packet that hit the wire.
  std::vector<net::Packet> run(StrategyId id) {
    StrategyEngine engine(
        client, [id](const net::FourTuple&) { return make_strategy(id); },
        PathKnowledge{.hop_estimate = 12, .ttl_delta = 2}, Rng(7));
    engine.install();

    tcp::TcpEndpoint* conn = nullptr;
    tcp::TcpEndpoint::Callbacks cb;
    cb.on_established = [&conn] {
      if (conn) conn->send_data(to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n"));
    };
    conn = &client.connect(kTuple.dst_ip, 80, 40000, std::move(cb));
    loop.run_until(SimTime::from_ms(50));

    // Feed the SYN/ACK back through the ingress path.
    net::Packet synack = net::make_tcp_packet(
        kTuple.reversed(), net::TcpFlags::syn_ack(), 5000, conn->iss() + 1);
    net::finalize(synack);
    path.send_from_server(std::move(synack));
    loop.run_until(SimTime::from_ms(200));
    return wire;
  }
};

int count(const std::vector<net::Packet>& wire,
          const std::function<bool(const net::Packet&)>& pred) {
  int n = 0;
  for (const auto& pkt : wire) {
    if (pred(pkt)) ++n;
  }
  return n;
}

bool is_bare_syn(const net::Packet& p) {
  return p.tcp->flags.syn && !p.tcp->flags.ack;
}
bool has_payload(const net::Packet& p) { return !p.payload.empty(); }

TEST(StrategySequence, NoStrategyEmitsPlainFlow) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kNone);
  EXPECT_EQ(count(wire, is_bare_syn), 1);
  EXPECT_EQ(count(wire, [](const net::Packet& p) {
              return p.tcp->flags.rst;
            }),
            0);
}

TEST(StrategySequence, TcbCreationSendsTwoSyns) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kTcbCreationSynTtl);
  EXPECT_GE(count(wire, is_bare_syn), 2);
  // The insertion SYN precedes the real one and carries the small TTL
  // (arrival ttl = 10 - 2 hops = 8 on this short path).
  ASSERT_FALSE(wire.empty());
  EXPECT_TRUE(is_bare_syn(wire[0]));
  EXPECT_EQ(wire[0].ip.ttl, 10 - 2);
}

TEST(StrategySequence, TeardownSendsTripleRstBeforeRequest) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kTeardownRstTtl);
  EXPECT_EQ(count(wire, [](const net::Packet& p) {
              return p.tcp->flags.rst;
            }),
            3);
  // The request still reaches the wire after the RSTs.
  EXPECT_GE(count(wire, has_payload), 1);
  // RSTs precede the request.
  std::size_t first_rst = wire.size();
  std::size_t first_data = wire.size();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i].tcp->flags.rst && first_rst == wire.size()) first_rst = i;
    if (has_payload(wire[i]) && first_data == wire.size()) first_data = i;
  }
  EXPECT_LT(first_rst, first_data);
}

TEST(StrategySequence, ImprovedTeardownAddsDesyncPacket) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kImprovedTeardown);
  EXPECT_EQ(count(wire, [](const net::Packet& p) {
              return p.tcp->flags.rst;
            }),
            3);
  // Exactly one 1-byte desync payload plus the real request.
  EXPECT_EQ(count(wire, [](const net::Packet& p) {
              return p.payload.size() == 1;
            }),
            1);
  EXPECT_GE(count(wire, [](const net::Packet& p) {
              return p.payload.size() > 1;
            }),
            1);
}

TEST(StrategySequence, InOrderOverlapPrefillsJunk) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kInOrderBadAck);
  // Three junk copies (repeat-for-loss) + the real request, all same size.
  int junk = 0;
  int real = 0;
  for (const auto& pkt : wire) {
    if (pkt.payload.empty()) continue;
    const std::string text = ys::to_string(pkt.payload);
    if (text.find("ultrasurf") != std::string::npos) {
      ++real;
    } else {
      ++junk;
      EXPECT_GT(pkt.tcp->ack, 5001u);  // the bad-ACK discrepancy
    }
  }
  EXPECT_EQ(junk, 3);
  EXPECT_EQ(real, 1);
}

TEST(StrategySequence, TcbReversalSendsForgedSynAckFirst) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kTcbReversal);
  ASSERT_FALSE(wire.empty());
  EXPECT_TRUE(wire[0].tcp->flags.syn);
  EXPECT_TRUE(wire[0].tcp->flags.ack);
  EXPECT_EQ(wire[0].ip.ttl, 10 - 2);  // TTL-limited forgery
  EXPECT_EQ(count(wire, is_bare_syn), 1);
}

TEST(StrategySequence, ResyncDesyncEmitsSynThenDesyncThenRequest) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kResyncDesync);
  std::size_t resync_syn = wire.size();
  std::size_t desync = wire.size();
  std::size_t request = wire.size();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (is_bare_syn(wire[i]) && i > 0 && resync_syn == wire.size()) {
      resync_syn = i;  // the post-handshake SYN
    }
    if (wire[i].payload.size() == 1 && desync == wire.size()) desync = i;
    if (wire[i].payload.size() > 1 && request == wire.size()) request = i;
  }
  ASSERT_LT(resync_syn, wire.size());
  ASSERT_LT(desync, wire.size());
  ASSERT_LT(request, wire.size());
  EXPECT_LT(resync_syn, desync);
  EXPECT_LT(desync, request);
}

// --------------------------------------------------------- engine tracking

TEST(Engine, TracksConnectionStateForStrategies) {
  EngineRig rig;
  StrategyEngine engine(
      rig.client,
      [](const net::FourTuple&) { return make_strategy(StrategyId::kNone); },
      PathKnowledge{}, Rng(7));
  engine.install();

  tcp::TcpEndpoint& conn = rig.client.connect(kTuple.dst_ip, 80, 40000);
  rig.loop.run_until(SimTime::from_ms(20));
  const StrategyContext* ctx = engine.find_context(conn.tuple());
  ASSERT_NE(ctx, nullptr);
  EXPECT_TRUE(ctx->client_isn_known);
  EXPECT_EQ(ctx->client_isn, conn.iss());
  EXPECT_FALSE(ctx->server_isn_known);

  net::Packet synack = net::make_tcp_packet(
      kTuple.reversed(), net::TcpFlags::syn_ack(), 9000, conn.iss() + 1);
  net::finalize(synack);
  rig.path.send_from_server(std::move(synack));
  rig.loop.run_until(SimTime::from_ms(60));
  EXPECT_TRUE(ctx->server_isn_known);
  EXPECT_EQ(ctx->server_isn, 9000u);
  EXPECT_EQ(ctx->rcv_nxt, 9001u);
  EXPECT_TRUE(ctx->handshake_done);
}

TEST(StrategySequence, WestChamberSendsBothDirectionRsts) {
  EngineRig rig;
  auto wire = rig.run(StrategyId::kWestChamber);
  int client_rsts = 0;
  int spoofed_rsts = 0;
  for (const auto& pkt : wire) {
    if (!pkt.tcp->flags.rst) continue;
    if (pkt.ip.src == kTuple.src_ip) {
      ++client_rsts;
    } else if (pkt.ip.src == kTuple.dst_ip) {
      ++spoofed_rsts;  // source-spoofed "server" RST on the client's wire
    }
  }
  EXPECT_GE(client_rsts, 1);
  EXPECT_GE(spoofed_rsts, 1);
  EXPECT_GE(count(wire, has_payload), 1);  // the request still goes out
}

TEST(Registry, EveryIdConstructs) {
  for (auto id : legacy_strategies()) {
    EXPECT_NE(make_strategy(id), nullptr);
  }
  for (auto id : intang_candidate_strategies()) {
    auto s = make_strategy(id);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(s->name().empty());
  }
  EXPECT_NE(make_strategy(StrategyId::kResyncDesync), nullptr);
  EXPECT_NE(make_strategy(StrategyId::kTcbReversal), nullptr);
}

TEST(Registry, NamesAreDistinct) {
  std::set<std::string> names;
  for (auto id : legacy_strategies()) {
    names.insert(make_strategy(id)->name());
  }
  EXPECT_EQ(names.size(), legacy_strategies().size());
}

}  // namespace
}  // namespace ys::strategy
