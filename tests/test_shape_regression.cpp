// Shape regression tests: small-scale versions of the paper's headline
// statistics. These guard the calibration — if a refactor silently changes
// who wins, by what factor, or where the crossovers fall, these fail before
// anyone re-reads the bench tables.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/stats.h"
#include "exp/trial.h"

namespace ys::exp {
namespace {

const gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

/// Mini measurement: all 11 vantage points × 20 servers × `trials`.
RateTally measure(strategy::StrategyId id, bool keyword, int trials = 3,
                  bool use_intang = false,
                  intang::StrategySelector* selector = nullptr) {
  static const Calibration cal = Calibration::standard();
  static const auto servers = make_server_population(20, 2017, cal, true);
  RateTally tally;
  for (const auto& vp : china_vantage_points()) {
    for (const auto& srv : servers) {
      for (int t = 0; t < trials; ++t) {
        ScenarioOptions opt;
        opt.vp = vp;
        opt.server = srv;
        opt.cal = cal;
        opt.seed = Rng::mix_seed({2017, static_cast<u64>(id),
                                  Rng::hash_label(vp.name), srv.ip,
                                  static_cast<u64>(t), keyword ? 1u : 0u});
        Scenario sc(rules(), opt);
        HttpTrialOptions http;
        http.with_keyword = keyword;
        http.strategy = id;
        http.use_intang = use_intang;
        http.shared_selector = selector;
        tally.add(run_http_trial(sc, http).outcome);
      }
    }
  }
  return tally;
}

TEST(Shape, NoStrategyIsAlmostAlwaysCensored) {
  const RateTally t = measure(strategy::StrategyId::kNone, true);
  EXPECT_LT(t.success_rate(), 0.08);
  EXPECT_GT(t.failure2_rate(), 0.90);
  // ...but the overload floor persists (the paper's stubborn 2.8 %).
  EXPECT_GT(t.success_rate(), 0.005);
}

TEST(Shape, InnocentTrafficIsUntouched) {
  const RateTally t = measure(strategy::StrategyId::kNone, false);
  EXPECT_GT(t.success_rate(), 0.97);
}

TEST(Shape, Table1OrderingHolds) {
  // in-order prefill ≫ RST teardown ≫ OOO TCP segments ≫ {FIN teardown,
  // TCB creation} ≈ no strategy.
  const double in_order =
      measure(strategy::StrategyId::kInOrderTtl, true).success_rate();
  const double teardown =
      measure(strategy::StrategyId::kTeardownRstTtl, true).success_rate();
  const double ooo_seg =
      measure(strategy::StrategyId::kOutOfOrderTcpSegments, true)
          .success_rate();
  const double fin =
      measure(strategy::StrategyId::kTeardownFinTtl, true).success_rate();
  const double creation =
      measure(strategy::StrategyId::kTcbCreationSynTtl, true).success_rate();

  EXPECT_GT(in_order, 0.85);
  EXPECT_GT(in_order, teardown + 0.10);
  EXPECT_GT(teardown, ooo_seg + 0.15);
  EXPECT_GT(ooo_seg, fin + 0.10);
  EXPECT_LT(fin, 0.20);
  EXPECT_LT(creation, 0.20);
}

TEST(Shape, FragmentStrategyShowsTheAliyunSplit) {
  const RateTally t =
      measure(strategy::StrategyId::kOutOfOrderIpFragments, true);
  // 6/11 vantage points (Aliyun) blackhole fragments → F1 ≈ 55 %; the
  // reassembling rest expose the request → F2 ≈ 45 %.
  EXPECT_NEAR(t.failure1_rate(), 6.0 / 11.0, 0.08);
  EXPECT_NEAR(t.failure2_rate(), 5.0 / 11.0, 0.10);
  EXPECT_LT(t.success_rate(), 0.06);
}

TEST(Shape, NewStrategiesClearNinetyPercent) {
  for (auto id : strategy::intang_candidate_strategies()) {
    const RateTally t = measure(id, true);
    EXPECT_GT(t.success_rate(), 0.90) << strategy::to_string(id);
    EXPECT_LT(t.failure2_rate(), 0.04) << strategy::to_string(id);
  }
}

TEST(Shape, IntangBeatsEveryFixedStrategy) {
  double best_fixed = 0.0;
  for (auto id : strategy::intang_candidate_strategies()) {
    best_fixed = std::max(best_fixed, measure(id, true, 4).success_rate());
  }
  // Persistent selector per (vp, server): measure() reuses one selector
  // across the repeated trials of each pair via a shared instance.
  intang::StrategySelector selector{intang::StrategySelector::Config{}};
  const RateTally intang_tally =
      measure(strategy::StrategyId::kNone, true, 4, /*use_intang=*/true,
              &selector);
  EXPECT_GE(intang_tally.success_rate(), best_fixed - 0.01);
  EXPECT_GT(intang_tally.success_rate(), 0.93);
}

TEST(Shape, WestChamberIsNoLongerEffective) {
  const RateTally t = measure(strategy::StrategyId::kWestChamber, true);
  // §1: "none of the [West Chamber] strategies were found to be effective"
  // — it performs like plain teardown at best.
  EXPECT_LT(t.success_rate(),
            measure(strategy::StrategyId::kImprovedTeardown, true)
                    .success_rate() -
                0.15);
}

}  // namespace
}  // namespace ys::exp
