// ys::search — the candidate-program grammar (byte-exact spec round-trips
// over the whole primitive grid), the paper-class reference set, Pareto
// archive invariants, and the engine's determinism contracts: --jobs=N
// parity, generation-independent score memoization, budget-as-prefix, and
// slot-level resume from a half-filled checkpoint store.
#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "runner/results_store.h"
#include "search/engine.h"
#include "search/program.h"
#include "search/variant.h"

namespace ys {
namespace {

using search::ArchiveEntry;
using search::CandidateProgram;
using search::Phase;
using search::Score;
using search::SearchConfig;
using search::SearchEngine;
using search::Step;
using search::StepKind;
using search::VariantArchive;

CandidateProgram parse_ok(const std::string& text) {
  std::string error;
  const auto prog = CandidateProgram::parse(text, &error);
  EXPECT_TRUE(prog.has_value()) << text << ": " << error;
  return prog.value_or(CandidateProgram{});
}

// ---------------------------------------------------------------- grammar

TEST(SearchProgram, PrimitiveGridRoundTripsByteExact) {
  // Satellite: property-style sweep over the full primitive grid. Every
  // valid single step must serialize -> parse -> serialize byte-exactly
  // and compare structurally equal.
  const std::vector<Step> grid = search::primitive_steps();
  ASSERT_GT(grid.size(), 40u);  // phases x kinds x discrepancies x tunings
  std::set<std::string> specs;
  for (const Step& s : grid) {
    const CandidateProgram prog{{s}};
    ASSERT_TRUE(prog.valid());
    const std::string spec = prog.spec();
    EXPECT_TRUE(specs.insert(spec).second) << "duplicate: " << spec;
    const CandidateProgram back = parse_ok(spec);
    EXPECT_EQ(back, prog) << spec;
    EXPECT_EQ(back.spec(), spec) << "not canonical: " << spec;
  }
}

TEST(SearchProgram, RandomCompositionsRoundTripByteExact) {
  // The same property over multi-step programs: random compositions of
  // primitives with randomized repeat and payload tuning.
  const std::vector<Step> grid = search::primitive_steps();
  Rng rng(20170807);
  int checked = 0;
  for (int iter = 0; iter < 500; ++iter) {
    CandidateProgram prog;
    const std::size_t steps = 1 + rng.uniform(search::kMaxSteps);
    for (std::size_t i = 0; i < steps; ++i) {
      Step s = grid[rng.uniform(grid.size())];
      s.repeat = 1 + static_cast<int>(rng.uniform(search::kMaxRepeat));
      if (s.kind == StepKind::kData && rng.chance(0.5)) {
        s.payload = static_cast<int>(rng.uniform(search::kMaxPayload + 1));
      }
      prog.steps.push_back(s);
    }
    ASSERT_TRUE(prog.valid()) << prog.spec();
    const std::string spec = prog.spec();
    const CandidateProgram back = parse_ok(spec);
    EXPECT_EQ(back, prog) << spec;
    EXPECT_EQ(back.spec(), spec) << spec;
    ++checked;
  }
  EXPECT_EQ(checked, 500);
}

TEST(SearchProgram, ParseCanonicalizesSugar) {
  // Suffix tokens in any order, explicit /none, and explicit *1 are all
  // accepted; spec() re-emits one canonical form.
  EXPECT_EQ(parse_ok("data:rst/ttl*1").spec(), "data:rst/ttl");
  EXPECT_EQ(parse_ok("pre:syn/none").spec(), "pre:syn");
  EXPECT_EQ(parse_ok("data:data/none=1+ow").spec(), "data:data+ow=1");
  EXPECT_EQ(parse_ok("data:data+ow=full*2").spec(), "data:data*2+ow=full");
}

TEST(SearchProgram, InvalidSpecsRejectedWithReason) {
  const char* bad[] = {
      "",                        // empty program
      "data:",                   // missing kind
      "mid:rst/ttl",             // unknown phase
      "data:push",               // unknown kind
      "data:rst/warp",           // unknown discrepancy
      "pre:rst/ttl",             // pre-handshake allows syn/synack only
      "pre:syn/ttl+ow",          // pre-handshake steps are in-window
      "data:rst/ttl*0",          // repeat below range
      "data:rst/ttl*10",         // repeat above range
      "data:rst/ttl=64",         // payload on a non-data kind
      "data:data=1461",          // payload above kMaxPayload
      "data:rst;data:rst;data:rst;data:rst;data:rst;data:rst;data:rst",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(CandidateProgram::parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(SearchProgram, SeedProgramsAreCanonicalAndClassified) {
  // Every paper class in the seed set parses, is already in canonical
  // form, and classify_known maps it back to its own label.
  for (const auto& seed : search::seed_programs()) {
    const CandidateProgram prog = parse_ok(seed.spec);
    EXPECT_EQ(prog.spec(), seed.spec) << seed.label;
    const auto cls = search::classify_known(prog);
    ASSERT_TRUE(cls.has_value()) << seed.label;
    EXPECT_EQ(*cls, seed.label);
  }
}

TEST(SearchProgram, ClassificationIgnoresRepeatTuning) {
  // Redundancy (§3.4) is a tuning knob, not a class distinction.
  const auto base = search::classify_known(parse_ok("data:rst/ttl*3"));
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(search::classify_known(parse_ok("data:rst/ttl")), base);
  EXPECT_EQ(search::classify_known(parse_ok("data:rst/ttl*9")), base);
  // A composition the paper never wrote down is novel.
  EXPECT_FALSE(
      search::classify_known(parse_ok("pre:synack/bad-checksum;data:fin/md5"))
          .has_value());
}

TEST(SearchProgram, InsertionCostSumsRepeats) {
  EXPECT_EQ(parse_ok("data:rst/ttl").insertion_cost(), 1);
  EXPECT_EQ(parse_ok("data:rst/ttl*3").insertion_cost(), 3);
  EXPECT_EQ(parse_ok("data:rst/ttl*3;data:data+ow=1").insertion_cost(), 4);
}

TEST(SearchProgram, MakeStrategyCarriesSpecAsName) {
  const CandidateProgram prog = parse_ok("data:rst/ttl*3;data:data+ow=1");
  const auto strat = prog.make_strategy();
  ASSERT_NE(strat, nullptr);
  EXPECT_EQ(strat->name(), "search:data:rst/ttl*3;data:data+ow=1");
  // Factory semantics: every call is a fresh per-connection instance.
  EXPECT_NE(prog.make_strategy().get(), strat.get());
}

// ---------------------------------------------------------------- archive

ArchiveEntry entry(const std::string& spec, double success, double robust) {
  ArchiveEntry e;
  e.program = *CandidateProgram::parse(spec, nullptr);
  e.score = Score{success, robust, e.program.insertion_cost()};
  return e;
}

TEST(SearchArchive, KeepsOnlyNonDominated) {
  VariantArchive archive;
  archive.variant = "unit";
  archive.insert(entry("data:rst/ttl*3", 0.8, 0.6));     // cost 3
  archive.insert(entry("data:rst/bad-ack", 0.6, 0.2));   // dominated later
  archive.insert(entry("data:data/md5=full", 1.0, 0.9)); // cost 1, dominates
  ASSERT_EQ(archive.entries.size(), 1u);
  EXPECT_EQ(archive.entries[0].program.spec(), "data:data/md5=full");

  // A dominated insert bounces without disturbing the archive.
  archive.insert(entry("data:fin/ttl", 0.9, 0.9));
  EXPECT_EQ(archive.entries.size(), 1u);

  // No pair in a populated archive may dominate another.
  VariantArchive mixed;
  mixed.insert(entry("data:rst/ttl*3", 1.0, 0.4));  // best success, cost 3
  mixed.insert(entry("data:fin/ttl", 0.7, 0.9));    // best robustness
  mixed.insert(entry("data:rst/md5", 0.9, 0.5));    // cheap middle ground
  ASSERT_EQ(mixed.entries.size(), 3u);
  for (const auto& a : mixed.entries) {
    for (const auto& b : mixed.entries) {
      EXPECT_FALSE(a.program != b.program && a.score.dominates(b.score))
          << a.program.spec() << " dominates " << b.program.spec();
    }
  }
}

TEST(SearchArchive, ExactTiesCoexistAndDuplicatesDrop) {
  VariantArchive archive;
  archive.insert(entry("data:rst/ttl", 1.0, 1.0));
  archive.insert(entry("data:fin/ttl", 1.0, 1.0));  // tie: neither dominates
  EXPECT_EQ(archive.entries.size(), 2u);
  archive.insert(entry("data:rst/ttl", 1.0, 1.0));  // dup spec: ignored
  EXPECT_EQ(archive.entries.size(), 2u);
  // Deterministic order: success desc, robustness desc, cost asc, spec asc.
  EXPECT_EQ(archive.entries[0].program.spec(), "data:fin/ttl");
  EXPECT_EQ(archive.entries[1].program.spec(), "data:rst/ttl");
}

TEST(SearchArchive, ScoreDominanceIsStrict) {
  const Score a{1.0, 1.0, 1};
  const Score b{1.0, 1.0, 1};
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  const Score worse{0.9, 1.0, 1};
  EXPECT_TRUE(a.dominates(worse));
  EXPECT_FALSE(worse.dominates(a));
  const Score cheaper{0.9, 1.0, 0};
  EXPECT_FALSE(a.dominates(cheaper));  // trade-off: both stay
  EXPECT_FALSE(cheaper.dominates(a));
}

// ----------------------------------------------------------------- engine

SearchConfig small_config() {
  SearchConfig cfg;
  cfg.population = 8;
  cfg.generations = 2;
  cfg.seed = 7;
  cfg.servers = 2;
  cfg.clean_trials = 2;
  cfg.faulted_trials = 1;
  cfg.elites = 2;
  cfg.coevo_rounds = 1;
  return cfg;
}

TEST(SearchEngineTest, JobsParityBitIdentical) {
  // Satellite: same seed => identical archives and co-evolution under
  // --jobs=8 vs --jobs=1. render() is wall-clock free by contract.
  SearchConfig serial = small_config();
  serial.jobs = 1;
  SearchConfig parallel = small_config();
  parallel.jobs = 8;
  const search::SearchResult a = SearchEngine(serial).run();
  const search::SearchResult b = SearchEngine(parallel).run();
  EXPECT_EQ(a.render(), b.render());
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.archives.size(), b.archives.size());
  for (std::size_t i = 0; i < a.archives.size(); ++i) {
    EXPECT_EQ(a.archives[i].entries.size(), b.archives[i].entries.size());
  }
}

TEST(SearchEngineTest, BudgetedRunIsPrefixOfUnbudgeted) {
  // The budget check runs between generations, so a budget that affords
  // only generation 0 must reproduce a generations=1 run exactly.
  SearchConfig one_gen = small_config();
  one_gen.generations = 1;
  SearchConfig budgeted = small_config();
  budgeted.generations = 4;
  budgeted.budget = 1;  // gen 0 always runs; nothing else is affordable
  const search::SearchResult ref = SearchEngine(one_gen).run();
  const search::SearchResult cut = SearchEngine(budgeted).run();
  EXPECT_EQ(cut.generations_run, 1);
  EXPECT_EQ(cut.render(), ref.render());
}

TEST(SearchEngineTest, HalfPrefilledStoreResumesSlotLevel) {
  // Satellite: kill-then-resume at slot granularity. Evaluate the
  // generation-0 population once with a checkpoint store, copy HALF the
  // recorded slots into a fresh store (the "killed mid-grid" state), and
  // re-evaluate: scores must be bit-identical and only the missing half
  // may actually run.
  const std::string dir_full = "test_search_resume_full.tmp";
  const std::string dir_half = "test_search_resume_half.tmp";
  std::error_code ec;
  std::filesystem::remove_all(dir_full, ec);
  std::filesystem::remove_all(dir_half, ec);

  const SearchConfig cfg = small_config();
  const SearchEngine engine(cfg);
  const std::vector<CandidateProgram> pop = engine.initial_population();
  ASSERT_EQ(pop.size(), static_cast<std::size_t>(cfg.population));
  std::vector<std::string> specs;
  for (const auto& p : pop) specs.push_back(p.spec());

  const u64 slots = pop.size() * engine.trials_per_program();
  const u64 sig = engine.store_signature(0, specs);
  const std::string name = SearchEngine::store_name(0);

  u64 evals_full = 0;
  std::vector<Score> ref;
  {
    runner::ResultsStore store(dir_full, name, sig, slots);
    ref = engine.evaluate(pop, &store, &evals_full);
    EXPECT_EQ(evals_full, slots);

    runner::ResultsStore half(dir_half, name, sig, slots);
    for (u64 i = 0; i < slots / 2; ++i) {
      const auto v = store.get(i);
      ASSERT_TRUE(v.has_value()) << "slot " << i;
      half.put(i, *v);
    }
  }

  u64 evals_resumed = 0;
  std::vector<Score> resumed;
  {
    runner::ResultsStore half(dir_half, name, sig, slots);
    EXPECT_TRUE(half.resumed());
    resumed = engine.evaluate(pop, &half, &evals_resumed);
  }
  EXPECT_EQ(evals_resumed, slots - slots / 2);
  ASSERT_EQ(resumed.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed[i].success, ref[i].success) << i;
    EXPECT_DOUBLE_EQ(resumed[i].robustness, ref[i].robustness) << i;
    EXPECT_EQ(resumed[i].cost, ref[i].cost) << i;
  }

  std::filesystem::remove_all(dir_full, ec);
  std::filesystem::remove_all(dir_half, ec);
}

TEST(SearchEngineTest, ReplayAttributesThroughStrategyEngine) {
  // An archived spec replays as a first-class strategy: the trace ladder
  // must carry the program's full spec through the kDecision event, which
  // is what `yourstate explain --bench=search` renders.
  const SearchConfig cfg = small_config();
  const SearchEngine engine(cfg);
  const CandidateProgram prog = parse_ok("pre:synack/ttl");
  const exp::Replay replay = engine.replay(prog, 0, 0, 0);
  EXPECT_FALSE(replay.ladder.empty());
  EXPECT_NE(replay.ladder.find("search:pre:synack/ttl"), std::string::npos)
      << replay.ladder;
}

TEST(SearchEngineTest, VariantsShapeTheGrid) {
  const auto variants = search::default_variants();
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(variants[0].name, "evolved");
  const SearchConfig cfg = small_config();
  const SearchEngine engine(cfg);
  EXPECT_EQ(engine.trials_per_program(),
            variants.size() * static_cast<u64>(cfg.servers) *
                static_cast<u64>(cfg.clean_trials + cfg.faulted_trials));
  // Censor responses exist for co-evolution and include the identity move.
  const auto& responses = search::censor_responses();
  ASSERT_GE(responses.size(), 4u);
  EXPECT_EQ(responses.front().name, "none");
}

}  // namespace
}  // namespace ys
