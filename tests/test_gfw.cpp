// GFW model tests: the keyword engine, both device generations' TCB state
// machines (creation, resync, teardown, reversal), reset fingerprints, the
// 90-second block period, type-1 vs type-2 reassembly, DNS censorship, and
// Tor active probing.
#include <gtest/gtest.h>

#include "app/dns.h"
#include "app/tor.h"
#include "gfw/aho_corasick.h"
#include "gfw/dns_poisoner.h"
#include "gfw/gfw_device.h"

namespace ys::gfw {
namespace {

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

// ------------------------------------------------------------ AhoCorasick

TEST(AhoCorasick, FindsPatterns) {
  AhoCorasick ac({"ultrasurf", "falun"});
  EXPECT_TRUE(ac.contains("GET /?q=ultrasurf HTTP/1.1"));
  EXPECT_TRUE(ac.contains("xxfalunxx"));
  EXPECT_FALSE(ac.contains("GET /?q=flowers HTTP/1.1"));
  EXPECT_FALSE(ac.contains(""));
}

TEST(AhoCorasick, CaseInsensitive) {
  AhoCorasick ac({"ultrasurf"});
  EXPECT_TRUE(ac.contains("ULTRASURF"));
  EXPECT_TRUE(ac.contains("UlTrAsUrF"));
}

TEST(AhoCorasick, ReportsMatchedPatternIndex) {
  AhoCorasick ac({"alpha", "beta"});
  AhoCorasick::Cursor cur;
  const Bytes text = to_bytes("xx beta yy");
  EXPECT_EQ(ac.scan(text, cur), 1);
  EXPECT_EQ(ac.pattern(1), "beta");
}

TEST(AhoCorasick, OverlappingPatternsViaFailureLinks) {
  // "he" is a suffix of "she"; matching must follow failure links.
  AhoCorasick ac({"she", "he", "hers"});
  EXPECT_TRUE(ac.contains("xshex"));
  EXPECT_TRUE(ac.contains("xhex"));
  EXPECT_TRUE(ac.contains("xhersx"));
}

class StreamingSplit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamingSplit, FindsKeywordAcrossChunkBoundary) {
  AhoCorasick ac({"ultrasurf"});
  const std::string text = "GET /?q=ultrasurf HTTP/1.1";
  const std::size_t split = GetParam();
  AhoCorasick::Cursor cur;
  const Bytes all = to_bytes(text);
  const ByteView view(all);
  const i32 first = ac.scan(view.subspan(0, split), cur);
  const i32 second = first >= 0 ? first : ac.scan(view.subspan(split), cur);
  EXPECT_GE(second, 0) << "split at " << split;
}

INSTANTIATE_TEST_SUITE_P(EverySplitInsideKeyword, StreamingSplit,
                         ::testing::Range<std::size_t>(8, 19));

// -------------------------------------------------------------- device rig

struct Fwd final : public net::Forwarder {
  explicit Fwd(Rng* rng) : rng_(rng) {}
  void forward(net::Packet pkt) override { forwarded.push_back(std::move(pkt)); }
  void inject(net::Packet pkt, net::Dir dir, SimTime) override {
    injected.push_back({std::move(pkt), dir});
  }
  void drop(const net::Packet&, std::string_view) override {}
  SimTime now() const override { return now_; }
  Rng& rng() override { return *rng_; }

  std::vector<net::Packet> forwarded;
  std::vector<std::pair<net::Packet, net::Dir>> injected;
  SimTime now_ = SimTime::zero();
  Rng* rng_;
};

struct DeviceRig {
  DetectionRules rules = DetectionRules::standard();
  GfwConfig cfg;
  std::unique_ptr<GfwDevice> dev;
  Rng rng{5};
  Fwd fwd{&rng};
  u32 cseq = 1000;
  u32 sseq = 5000;

  explicit DeviceRig(GfwConfig config = GfwConfig{}) : cfg(config) {
    cfg.detection_miss_rate = 0.0;
    dev = std::make_unique<GfwDevice>("gfw", cfg, &rules, Rng(9));
  }

  void c2s(net::Packet pkt) { feed(std::move(pkt), net::Dir::kC2S); }
  void s2c(net::Packet pkt) { feed(std::move(pkt), net::Dir::kS2C); }
  void feed(net::Packet pkt, net::Dir dir) {
    net::finalize(pkt);
    dev->process(std::move(pkt), dir, fwd);
  }

  void handshake() {
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), cseq, 0));
    ++cseq;
    s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                             sseq, cseq));
    ++sseq;
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(), cseq, sseq));
  }

  void request(std::string_view payload) {
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), cseq, sseq,
                             to_bytes(payload)));
    cseq += static_cast<u32>(payload.size());
  }

  const GfwTcb* tcb() const { return dev->find_tcb(kTuple); }
};

// ------------------------------------------------------------ on-path tap

TEST(Device, AlwaysForwardsOriginalPackets) {
  DeviceRig rig;
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  // 4 packets in → 4 packets out, even though resets were injected too.
  EXPECT_EQ(rig.fwd.forwarded.size(), 4u);
  EXPECT_GT(rig.fwd.injected.size(), 0u);
}

TEST(Device, CreatesTcbOnSynAndDetectsKeyword) {
  DeviceRig rig;
  rig.handshake();
  EXPECT_EQ(rig.dev->tcb_count(), 1u);
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 1);
  EXPECT_EQ(rig.dev->reset_volleys(), 1);
}

TEST(Device, InnocentTrafficUntouched) {
  DeviceRig rig;
  rig.handshake();
  rig.request("GET /?q=flowers HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 0);
  EXPECT_TRUE(rig.fwd.injected.empty());
}

TEST(Device, KeywordSplitAcrossSegmentsCaughtByType2) {
  DeviceRig rig;
  rig.handshake();
  rig.request("GET /?q=ultra");
  EXPECT_EQ(rig.dev->detections(), 0);
  rig.request("surf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 1);
}

TEST(Device, KeywordSplitAcrossSegmentsEscapesType1) {
  GfwConfig cfg;
  cfg.device_type = DeviceType::kType1;
  cfg.enforce_block_period = false;
  DeviceRig rig(cfg);
  rig.handshake();
  rig.request("GET /?q=ultra");
  rig.request("surf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 0);  // §2.1: type-1 cannot reassemble
}

TEST(Device, Type1CatchesWholeKeywordInOnePacket) {
  GfwConfig cfg;
  cfg.device_type = DeviceType::kType1;
  cfg.enforce_block_period = false;
  DeviceRig rig(cfg);
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 1);
}

TEST(Device, DetectionMissSuppressesResets) {
  GfwConfig cfg;
  DeviceRig rig(cfg);
  rig.dev = std::make_unique<GfwDevice>("gfw", [&] {
    GfwConfig c;
    c.detection_miss_rate = 1.0;  // permanently overloaded
    return c;
  }(), &rig.rules, Rng(9));
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 1);
  EXPECT_EQ(rig.dev->missed_detections(), 1);
  EXPECT_TRUE(rig.fwd.injected.empty());
}

// ----------------------------------------------------- reset fingerprints

TEST(Device, Type2ResetVolleyFingerprint) {
  DeviceRig rig;
  rig.handshake();
  const u32 server_seq_at_detect = rig.sseq;
  const u32 client_seq_end = rig.cseq + 28;
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");

  // Three RST/ACKs toward each side at X, X+1460, X+4380.
  std::vector<u32> to_client_seqs;
  std::vector<u32> to_server_seqs;
  for (const auto& [pkt, dir] : rig.fwd.injected) {
    ASSERT_TRUE(pkt.tcp->flags.rst);
    ASSERT_TRUE(pkt.tcp->flags.ack);
    if (dir == net::Dir::kS2C) {
      to_client_seqs.push_back(pkt.tcp->seq);
    } else {
      to_server_seqs.push_back(pkt.tcp->seq);
    }
  }
  ASSERT_EQ(to_client_seqs.size(), 3u);
  ASSERT_EQ(to_server_seqs.size(), 3u);
  EXPECT_EQ(to_client_seqs[0], server_seq_at_detect);
  EXPECT_EQ(to_client_seqs[1], server_seq_at_detect + 1460);
  EXPECT_EQ(to_client_seqs[2], server_seq_at_detect + 4380);
  EXPECT_EQ(to_server_seqs[0], client_seq_end);
  EXPECT_EQ(to_server_seqs[1], client_seq_end + 1460);
  EXPECT_EQ(to_server_seqs[2], client_seq_end + 4380);
}

TEST(Device, Type1ResetPairFingerprint) {
  GfwConfig cfg;
  cfg.device_type = DeviceType::kType1;
  cfg.enforce_block_period = false;
  DeviceRig rig(cfg);
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  ASSERT_EQ(rig.fwd.injected.size(), 2u);
  for (const auto& [pkt, dir] : rig.fwd.injected) {
    EXPECT_TRUE(pkt.tcp->flags.rst);
    EXPECT_FALSE(pkt.tcp->flags.ack);  // bare RST
  }
}

// ------------------------------------------------------------ block period

TEST(Device, BlockPeriodForgesSynAckForNewHandshakes) {
  DeviceRig rig;
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  ASSERT_TRUE(rig.dev->host_pair_blocked(kTuple.src_ip, kTuple.dst_ip,
                                         SimTime::from_sec(1)));
  rig.fwd.injected.clear();

  // A new SYN (different source port) during the block period.
  net::FourTuple tuple2 = kTuple;
  tuple2.src_port = 40002;
  rig.c2s(net::make_tcp_packet(tuple2, net::TcpFlags::only_syn(), 9999, 0));
  ASSERT_EQ(rig.fwd.injected.size(), 1u);
  const auto& [forged, dir] = rig.fwd.injected[0];
  EXPECT_TRUE(forged.tcp->flags.syn);
  EXPECT_TRUE(forged.tcp->flags.ack);
  EXPECT_EQ(forged.tcp->ack, 10000u);      // acks the SYN...
  EXPECT_EQ(dir, net::Dir::kS2C);
  EXPECT_EQ(rig.dev->forged_syn_acks(), 1);
}

TEST(Device, BlockPeriodResetsOtherPackets) {
  DeviceRig rig;
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  rig.fwd.injected.clear();

  net::FourTuple tuple2 = kTuple;
  tuple2.src_port = 40003;
  rig.c2s(net::make_tcp_packet(tuple2, net::TcpFlags::psh_ack(), 123, 456,
                               to_bytes("anything at all")));
  ASSERT_EQ(rig.fwd.injected.size(), 2u);  // RST/ACK back + RST forward
  EXPECT_TRUE(rig.fwd.injected[0].first.tcp->flags.rst);
  EXPECT_TRUE(rig.fwd.injected[1].first.tcp->flags.rst);
}

TEST(Device, BlockPeriodExpiresAfter90Seconds) {
  DeviceRig rig;
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_TRUE(rig.dev->host_pair_blocked(kTuple.src_ip, kTuple.dst_ip,
                                         SimTime::from_sec(89)));
  EXPECT_FALSE(rig.dev->host_pair_blocked(kTuple.src_ip, kTuple.dst_ip,
                                          SimTime::from_sec(91)));
}

TEST(Device, Type1DoesNotEnforceBlockPeriod) {
  GfwConfig cfg;
  cfg.device_type = DeviceType::kType1;
  cfg.enforce_block_period = false;
  DeviceRig rig(cfg);
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_FALSE(rig.dev->host_pair_blocked(kTuple.src_ip, kTuple.dst_ip,
                                          SimTime::from_sec(1)));
}

// --------------------------------------------------------- evolved behavior

TEST(Device, Behavior1TcbFromSynAck) {
  DeviceRig rig;
  // No SYN observed; only the server's SYN/ACK.
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                               rig.sseq, rig.cseq + 1));
  EXPECT_EQ(rig.dev->tcb_count(), 1u);
  const GfwTcb* tcb = rig.tcb();
  ASSERT_NE(tcb, nullptr);
  EXPECT_FALSE(tcb->reversed());
  EXPECT_EQ(tcb->monitored_dir(), net::Dir::kC2S);
  EXPECT_EQ(tcb->client_next, rig.cseq + 1);
}

TEST(Device, PriorModelIgnoresSynAckCreation) {
  GfwConfig cfg;
  cfg.evolved = false;
  DeviceRig rig(cfg);
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                               rig.sseq, rig.cseq + 1));
  EXPECT_EQ(rig.dev->tcb_count(), 0u);
}

TEST(Device, Behavior2aMultipleSynsEnterResync) {
  DeviceRig rig;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 7777, 0));
  ASSERT_NE(rig.tcb(), nullptr);
  EXPECT_EQ(rig.tcb()->state, TcbState::kResync);
  EXPECT_EQ(rig.dev->resyncs_entered(), 1);
}

TEST(Device, PriorModelIgnoresLaterSyns) {
  GfwConfig cfg;
  cfg.evolved = false;
  DeviceRig rig(cfg);
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 7777, 0));
  EXPECT_EQ(rig.tcb()->state, TcbState::kEstablished);
  EXPECT_EQ(rig.tcb()->client_next, 1001u);  // the first SYN's ISN rules
}

TEST(Device, ResyncReanchorsOnNextClientData) {
  DeviceRig rig;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 7777, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), 0x50000000,
                               0, to_bytes("JUNKDATA")));
  EXPECT_EQ(rig.tcb()->state, TcbState::kEstablished);
  EXPECT_EQ(rig.tcb()->client_next, 0x50000000u + 8);
  // A later keyword at the *original* sequence range is invisible.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), 1001, 0,
                               to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n")));
  EXPECT_EQ(rig.dev->detections(), 0);
}

TEST(Device, Behavior2bMultipleSynAcks) {
  DeviceRig rig;
  rig.handshake();
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                               rig.sseq - 1, rig.cseq));
  EXPECT_EQ(rig.tcb()->state, TcbState::kResync);
}

TEST(Device, Behavior2cSynAckWithWrongAck) {
  DeviceRig rig;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 4242));  // ack != 1001
  EXPECT_EQ(rig.tcb()->state, TcbState::kResync);
}

TEST(Device, ServerSynAckResynchronizes) {
  DeviceRig rig;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 7777, 0));
  ASSERT_EQ(rig.tcb()->state, TcbState::kResync);
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 1001));
  EXPECT_EQ(rig.tcb()->state, TcbState::kEstablished);
  EXPECT_EQ(rig.tcb()->client_next, 1001u);
}

TEST(Device, PureAcksDoNotResync) {
  DeviceRig rig;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 7777, 0));
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(), 1001, 0));
  EXPECT_EQ(rig.tcb()->state, TcbState::kResync);  // still waiting
}

TEST(Device, Behavior3RstReactionByPhase) {
  GfwConfig cfg;
  cfg.rst_reaction_handshake = RstReaction::kResync;
  cfg.rst_reaction_established = RstReaction::kTeardown;
  {
    // RST mid-handshake (before the client's final ACK) → resync.
    DeviceRig rig(cfg);
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
    rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                                 5000, 1001));
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), 1001, 0));
    ASSERT_NE(rig.tcb(), nullptr);
    EXPECT_EQ(rig.tcb()->state, TcbState::kResync);
  }
  {
    // RST after the handshake ACK → teardown.
    DeviceRig rig(cfg);
    rig.handshake();
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), rig.cseq,
                                 0));
    EXPECT_EQ(rig.dev->tcb_count(), 0u);
    EXPECT_EQ(rig.dev->teardowns(), 1);
  }
}

TEST(Device, EvolvedIgnoresFin) {
  DeviceRig rig;
  rig.handshake();
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::fin_ack(), rig.cseq,
                               rig.sseq));
  EXPECT_EQ(rig.dev->tcb_count(), 1u);
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 1);  // still watching
}

TEST(Device, PriorModelTearsDownOnFin) {
  GfwConfig cfg;
  cfg.evolved = false;
  DeviceRig rig(cfg);
  rig.handshake();
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::fin_ack(), rig.cseq,
                               rig.sseq));
  EXPECT_EQ(rig.dev->tcb_count(), 0u);
}

TEST(Device, NoValidationOfChecksumMd5AckOrTimestamp) {
  // The GFW column of Table 3: all four malformed variants are processed.
  for (int variant = 0; variant < 4; ++variant) {
    DeviceRig rig;
    rig.handshake();
    net::Packet pkt = net::make_tcp_packet(
        kTuple, net::TcpFlags::psh_ack(), rig.cseq, rig.sseq,
        to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n"));
    switch (variant) {
      case 0:
        net::finalize(pkt);
        pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum + 1);
        break;
      case 1: pkt.tcp->options.md5_signature.emplace(); break;
      case 2: pkt.tcp->ack = rig.sseq + 0x01000000; break;
      case 3: pkt.tcp->options.timestamps = net::TcpTimestamps{1, 0}; break;
    }
    rig.c2s(std::move(pkt));
    EXPECT_EQ(rig.dev->detections(), 1) << "variant " << variant;
  }
}

TEST(Device, NoFlagDataPerConfig) {
  for (bool accepts : {true, false}) {
    GfwConfig cfg;
    cfg.accepts_no_flag_data = accepts;
    DeviceRig rig(cfg);
    rig.handshake();
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::none(), rig.cseq, 0,
                                 to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n")));
    EXPECT_EQ(rig.dev->detections(), accepts ? 1 : 0);
  }
}

TEST(Device, InOrderPrefillBlindsReassembly) {
  // The in-order data overlapping strategy's core mechanism.
  DeviceRig rig;
  rig.handshake();
  const u32 base = rig.cseq;
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), base,
                               rig.sseq, Bytes(28, 'J')));  // junk prefill
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), base,
                               rig.sseq,
                               to_bytes("GET /?q=ultrasurf HTTP/1\r\n")));
  EXPECT_EQ(rig.dev->detections(), 0);  // junk occupied the range first
}

TEST(Device, SegmentOverlapPolicyDecidesOooStrategy) {
  // Real tail first, junk tail second: prefer-last (prior model) keeps the
  // junk and misses the keyword; prefer-first (evolved) catches it.
  for (auto policy : {net::OverlapPolicy::kPreferLast,
                      net::OverlapPolicy::kPreferFirst}) {
    GfwConfig cfg;
    cfg.tcp_segment_overlap = policy;
    DeviceRig rig(cfg);
    rig.handshake();
    const u32 base = rig.cseq;
    const std::string req = "GET /?q=ultrasurf HTTP/1.1\r\n";
    const std::string tail = req.substr(8);
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), base + 8,
                                 rig.sseq, to_bytes(tail)));
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), base + 8,
                                 rig.sseq, Bytes(tail.size(), 'J')));
    rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), base,
                                 rig.sseq, to_bytes(req.substr(0, 8))));
    const int expected =
        policy == net::OverlapPolicy::kPreferFirst ? 1 : 0;
    EXPECT_EQ(rig.dev->detections(), expected);
  }
}

// -------------------------------------------------------------- reversal

TEST(Device, TcbReversalMonitorsWrongDirection) {
  DeviceRig rig;
  // Client-forged SYN/ACK travels c2s: the device assumes roles backwards.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::syn_ack(), 111, 222));
  ASSERT_EQ(rig.dev->tcb_count(), 1u);
  const GfwTcb* tcb = rig.dev->find_tcb(kTuple);
  ASSERT_NE(tcb, nullptr);
  EXPECT_TRUE(tcb->reversed());
  EXPECT_EQ(tcb->monitored_dir(), net::Dir::kS2C);

  // The real handshake and request are ignored by the reversed TCB.
  rig.handshake();
  rig.request("GET /?q=ultrasurf HTTP/1.1\r\n");
  EXPECT_EQ(rig.dev->detections(), 0);
  EXPECT_EQ(rig.dev->tcb_count(), 1u);  // no second TCB was created
}

// ------------------------------------------------------------ DNS over TCP

TEST(Device, DnsOverTcpQnameCensored) {
  DeviceRig rig;
  net::FourTuple dns_tuple = kTuple;
  dns_tuple.dst_port = 53;
  rig.c2s(net::make_tcp_packet(dns_tuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.s2c(net::make_tcp_packet(dns_tuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 1001));
  rig.c2s(net::make_tcp_packet(dns_tuple, net::TcpFlags::only_ack(), 1001,
                               5001));
  const Bytes frame = app::dns_tcp_frame(app::make_query(7, "www.dropbox.com"));
  rig.c2s(net::make_tcp_packet(dns_tuple, net::TcpFlags::psh_ack(), 1001,
                               5001, frame));
  EXPECT_EQ(rig.dev->detections(), 1);
}

TEST(Device, DnsOverTcpInnocentQnamePasses) {
  DeviceRig rig;
  net::FourTuple dns_tuple = kTuple;
  dns_tuple.dst_port = 53;
  rig.c2s(net::make_tcp_packet(dns_tuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.s2c(net::make_tcp_packet(dns_tuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 1001));
  const Bytes frame = app::dns_tcp_frame(app::make_query(7, "example.org"));
  rig.c2s(net::make_tcp_packet(dns_tuple, net::TcpFlags::psh_ack(), 1001,
                               5001, frame));
  EXPECT_EQ(rig.dev->detections(), 0);
}

// -------------------------------------------------------------------- Tor

TEST(Device, TorFingerprintTriggersIpBlock) {
  GfwConfig cfg;
  cfg.tor_filtering = true;
  DeviceRig rig(cfg);
  net::FourTuple tor_tuple = kTuple;
  tor_tuple.dst_port = 443;
  rig.c2s(net::make_tcp_packet(tor_tuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.s2c(net::make_tcp_packet(tor_tuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 1001));
  rig.c2s(net::make_tcp_packet(tor_tuple, net::TcpFlags::psh_ack(), 1001,
                               5001, app::build_tor_client_hello()));
  EXPECT_TRUE(rig.dev->ip_blocked(tor_tuple.dst_ip));

  // Every later packet to that IP draws resets, any port.
  rig.fwd.injected.clear();
  net::FourTuple other_port = tor_tuple;
  other_port.dst_port = 8080;
  rig.c2s(net::make_tcp_packet(other_port, net::TcpFlags::only_syn(), 1, 0));
  EXPECT_EQ(rig.fwd.injected.size(), 2u);
}

TEST(Device, TorProbeCanRefuseToBlock) {
  GfwConfig cfg;
  cfg.tor_filtering = true;
  DeviceRig rig(cfg);
  rig.dev->set_tor_probe([](net::IpAddr) { return false; });  // not a bridge
  net::FourTuple tor_tuple = kTuple;
  tor_tuple.dst_port = 443;
  rig.c2s(net::make_tcp_packet(tor_tuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.s2c(net::make_tcp_packet(tor_tuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 1001));
  rig.c2s(net::make_tcp_packet(tor_tuple, net::TcpFlags::psh_ack(), 1001,
                               5001, app::build_tor_client_hello()));
  EXPECT_FALSE(rig.dev->ip_blocked(tor_tuple.dst_ip));
}

TEST(Device, NoTorFilteringOnUnfilteredPaths) {
  GfwConfig cfg;
  cfg.tor_filtering = false;
  DeviceRig rig(cfg);
  net::FourTuple tor_tuple = kTuple;
  tor_tuple.dst_port = 443;
  rig.c2s(net::make_tcp_packet(tor_tuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.s2c(net::make_tcp_packet(tor_tuple.reversed(), net::TcpFlags::syn_ack(),
                               5000, 1001));
  rig.c2s(net::make_tcp_packet(tor_tuple, net::TcpFlags::psh_ack(), 1001,
                               5001, app::build_tor_client_hello()));
  EXPECT_FALSE(rig.dev->ip_blocked(tor_tuple.dst_ip));
  EXPECT_TRUE(rig.fwd.injected.empty());
}

// ------------------------------------------------------------ DNS poisoner

TEST(Poisoner, ForgesResponseForBlacklistedName) {
  DetectionRules rules = DetectionRules::standard();
  Rng rng(3);
  Fwd fwd(&rng);
  DnsPoisoner poisoner("gfw-dns", &rules, Rng(5));

  net::FourTuple udp_tuple{net::make_ip(10, 0, 0, 1), 5353,
                           net::make_ip(8, 8, 8, 8), 53};
  net::Packet query = net::make_udp_packet(
      udp_tuple, app::dns_encode(app::make_query(0x77, "www.dropbox.com")));
  net::finalize(query);
  poisoner.process(std::move(query), net::Dir::kC2S, fwd);

  EXPECT_EQ(poisoner.poisoned(), 1);
  ASSERT_EQ(fwd.forwarded.size(), 1u);  // original still forwarded
  ASSERT_EQ(fwd.injected.size(), 1u);
  const auto& [forged, dir] = fwd.injected[0];
  EXPECT_EQ(dir, net::Dir::kS2C);
  auto parsed = app::dns_parse(forged.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().is_response);
  EXPECT_EQ(parsed.value().id, 0x77);
  ASSERT_EQ(parsed.value().answers.size(), 1u);
  EXPECT_NE(parsed.value().answers[0].address, 0u);
}

TEST(Poisoner, IgnoresInnocentNamesAndResponses) {
  DetectionRules rules = DetectionRules::standard();
  Rng rng(3);
  Fwd fwd(&rng);
  DnsPoisoner poisoner("gfw-dns", &rules, Rng(5));

  net::FourTuple udp_tuple{net::make_ip(10, 0, 0, 1), 5353,
                           net::make_ip(8, 8, 8, 8), 53};
  net::Packet query = net::make_udp_packet(
      udp_tuple, app::dns_encode(app::make_query(0x77, "example.org")));
  net::finalize(query);
  poisoner.process(std::move(query), net::Dir::kC2S, fwd);
  EXPECT_EQ(poisoner.poisoned(), 0);
  EXPECT_TRUE(fwd.injected.empty());
}

}  // namespace
}  // namespace ys::gfw
