// Packet model and wire codec tests: round trips across flag and option
// combinations, checksum semantics, and the deliberately-malformed fields
// insertion packets rely on.
#include <gtest/gtest.h>

#include "netsim/packet.h"
#include "netsim/wire.h"

namespace ys::net {
namespace {

const FourTuple kTuple{make_ip(10, 0, 0, 1), 40000,
                       make_ip(93, 184, 216, 34), 80};

Packet finalized_tcp(TcpFlags flags, Bytes payload = {}) {
  Packet pkt = make_tcp_packet(kTuple, flags, 1000, 2000, std::move(payload));
  finalize(pkt);
  return pkt;
}

// --------------------------------------------------------------- TcpFlags

TEST(TcpFlags, ByteRoundTrip) {
  for (int b = 0; b < 64; ++b) {
    const TcpFlags f = TcpFlags::from_byte(static_cast<u8>(b));
    EXPECT_EQ(f.to_byte(), b);
  }
}

TEST(TcpFlags, Rendering) {
  EXPECT_EQ(TcpFlags::only_syn().to_string(), "[S]");
  EXPECT_EQ(TcpFlags::syn_ack().to_string(), "[S.]");
  EXPECT_EQ(TcpFlags::rst_ack().to_string(), "[R.]");
  EXPECT_EQ(TcpFlags::none().to_string(), "[none]");
  EXPECT_FALSE(TcpFlags::none().any());
}

// --------------------------------------------------------------- finalize

TEST(Finalize, FillsLengthsAndChecksums) {
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::psh_ack(), 1, 2,
                               to_bytes("hello"));
  EXPECT_EQ(pkt.ip.total_length, 0);
  finalize(pkt);
  EXPECT_EQ(pkt.ip.total_length, wire_size(pkt));
  EXPECT_NE(pkt.tcp->checksum, 0);
  EXPECT_TRUE(transport_checksum_ok(pkt));
  EXPECT_TRUE(ip_length_consistent(pkt));
}

TEST(Finalize, PreservesDeliberateCorruption) {
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::psh_ack(), 1, 2,
                               to_bytes("hello"));
  pkt.tcp->checksum = 0xBEEF;        // pre-set: must survive
  pkt.ip.total_length = 9999;        // claimed length lie
  finalize(pkt);
  EXPECT_EQ(pkt.tcp->checksum, 0xBEEF);
  EXPECT_EQ(pkt.ip.total_length, 9999);
  EXPECT_FALSE(transport_checksum_ok(pkt));
  EXPECT_FALSE(ip_length_consistent(pkt));
}

TEST(Finalize, DataOffsetTracksOptions) {
  Packet plain = finalized_tcp(TcpFlags::only_ack());
  EXPECT_EQ(plain.tcp->data_offset_words, 5);

  Packet with_ts = make_tcp_packet(kTuple, TcpFlags::only_ack(), 1, 2);
  with_ts.tcp->options.timestamps = TcpTimestamps{1, 2};
  finalize(with_ts);
  EXPECT_EQ(with_ts.tcp->data_offset_words, 8);  // 20 + 12 option bytes

  Packet corrupted = make_tcp_packet(kTuple, TcpFlags::only_ack(), 1, 2);
  corrupted.tcp->data_offset_words = 4;  // deliberate short header
  finalize(corrupted);
  EXPECT_EQ(corrupted.tcp->data_offset_words, 4);
}

TEST(Finalize, OptionLengthsArePadded) {
  TcpOptions opts;
  opts.mss = 1460;
  EXPECT_EQ(opts.wire_length(), 4u);
  opts.window_scale = 7;
  EXPECT_EQ(opts.wire_length(), 8u);  // 4 + 3, padded
  opts.timestamps = TcpTimestamps{1, 2};
  EXPECT_EQ(opts.wire_length(), 20u);  // 4 + 3 + 10, padded
  opts.md5_signature.emplace();
  EXPECT_EQ(opts.wire_length(), 36u);  // + 18, padded
}

// ------------------------------------------------------------ round trips

struct FlagCase {
  TcpFlags flags;
  std::size_t payload;
};

class WireRoundTrip : public ::testing::TestWithParam<FlagCase> {};

TEST_P(WireRoundTrip, SerializeParsePreservesEverything) {
  const FlagCase& tc = GetParam();
  Bytes payload;
  for (std::size_t i = 0; i < tc.payload; ++i) {
    payload.push_back(static_cast<u8>(i));
  }
  Packet pkt = make_tcp_packet(kTuple, tc.flags, 0xCAFEBABE, 0x1BADB002,
                               payload);
  pkt.tcp->window = 4321;
  pkt.tcp->urgent_pointer = 7;
  pkt.tcp->options.mss = 1400;
  pkt.tcp->options.window_scale = 9;
  pkt.tcp->options.sack_permitted = true;
  pkt.tcp->options.timestamps = TcpTimestamps{111, 222};
  pkt.ip.ttl = 33;
  pkt.ip.identification = 0x4242;
  finalize(pkt);

  auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Packet& out = parsed.value();
  EXPECT_EQ(out.ip.src, pkt.ip.src);
  EXPECT_EQ(out.ip.dst, pkt.ip.dst);
  EXPECT_EQ(out.ip.ttl, 33);
  EXPECT_EQ(out.ip.identification, 0x4242);
  ASSERT_TRUE(out.tcp.has_value());
  EXPECT_EQ(out.tcp->flags, tc.flags);
  EXPECT_EQ(out.tcp->seq, 0xCAFEBABEu);
  EXPECT_EQ(out.tcp->ack, 0x1BADB002u);
  EXPECT_EQ(out.tcp->window, 4321);
  EXPECT_EQ(out.tcp->urgent_pointer, 7);
  EXPECT_EQ(out.tcp->options, pkt.tcp->options);
  EXPECT_EQ(out.payload, payload);
  EXPECT_TRUE(transport_checksum_ok(out));
}

INSTANTIATE_TEST_SUITE_P(
    AllFlagShapes, WireRoundTrip,
    ::testing::Values(FlagCase{TcpFlags::only_syn(), 0},
                      FlagCase{TcpFlags::syn_ack(), 0},
                      FlagCase{TcpFlags::only_ack(), 0},
                      FlagCase{TcpFlags::psh_ack(), 64},
                      FlagCase{TcpFlags::only_rst(), 0},
                      FlagCase{TcpFlags::rst_ack(), 0},
                      FlagCase{TcpFlags::fin_ack(), 0},
                      FlagCase{TcpFlags::none(), 32},
                      FlagCase{TcpFlags::only_fin(), 16},
                      FlagCase{TcpFlags::psh_ack(), 1460}));

TEST(Wire, UdpRoundTrip) {
  Packet pkt = make_udp_packet(kTuple, to_bytes("dns query bytes"));
  finalize(pkt);
  EXPECT_TRUE(transport_checksum_ok(pkt));

  auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().is_udp());
  EXPECT_EQ(parsed.value().udp->src_port, 40000);
  EXPECT_EQ(parsed.value().udp->dst_port, 80);
  EXPECT_EQ(parsed.value().udp->length, 8 + 15);
  EXPECT_EQ(to_string(parsed.value().payload), "dns query bytes");
}

TEST(Wire, Md5OptionRoundTrip) {
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::psh_ack(), 1, 2,
                               to_bytes("x"));
  std::array<u8, 16> digest;
  for (std::size_t i = 0; i < 16; ++i) digest[i] = static_cast<u8>(i * 3);
  pkt.tcp->options.md5_signature = digest;
  finalize(pkt);

  auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().tcp->options.md5_signature.has_value());
  EXPECT_EQ(*parsed.value().tcp->options.md5_signature, digest);
}

TEST(Wire, CorruptedChecksumSurvivesRoundTrip) {
  Packet pkt = finalized_tcp(TcpFlags::psh_ack(), to_bytes("junk"));
  pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum + 1);
  auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(transport_checksum_ok(parsed.value()));
}

TEST(Wire, ShortDataOffsetSurvivesRoundTrip) {
  Packet pkt = finalized_tcp(TcpFlags::psh_ack(), to_bytes("junk"));
  pkt.tcp->data_offset_words = 4;
  auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tcp->data_offset_words, 4);
}

TEST(Wire, ParseRejectsGarbage) {
  EXPECT_FALSE(parse(Bytes{}).ok());
  EXPECT_FALSE(parse(Bytes{0x45, 0x00}).ok());
  Bytes not_ipv4(40, 0);
  not_ipv4[0] = 0x60;  // version 6
  EXPECT_FALSE(parse(not_ipv4).ok());
}

TEST(Wire, ParseTruncatedTcpHeader) {
  Packet pkt = finalized_tcp(TcpFlags::only_syn());
  Bytes image = serialize(pkt);
  image.resize(24);  // IP header + 4 bytes of TCP
  EXPECT_FALSE(parse(image).ok());
}

// -------------------------------------------------------------- summaries

TEST(Summary, MentionsKeyFields) {
  Packet pkt = finalized_tcp(TcpFlags::only_syn());
  const std::string s = pkt.summary();
  EXPECT_NE(s.find("[S]"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1:40000"), std::string::npos);
  EXPECT_NE(s.find("93.184.216.34:80"), std::string::npos);
}

TEST(Summary, FlagsBadChecksum) {
  Packet pkt = finalized_tcp(TcpFlags::psh_ack(), to_bytes("x"));
  EXPECT_EQ(pkt.summary().find("badcsum"), std::string::npos);
  pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum + 1);
  EXPECT_NE(pkt.summary().find("badcsum"), std::string::npos);
}

TEST(SeqEnd, CountsSynAndFin) {
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::only_syn(), 100, 0);
  EXPECT_EQ(pkt.tcp_seq_end(), 101u);
  Packet fin = make_tcp_packet(kTuple, TcpFlags::fin_ack(), 100, 0,
                               to_bytes("abc"));
  EXPECT_EQ(fin.tcp_seq_end(), 104u);
}

// ------------------------------------------------------------ four tuples

TEST(FourTuple, ReversalAndCanonical) {
  EXPECT_EQ(kTuple.reversed().src_ip, kTuple.dst_ip);
  EXPECT_EQ(kTuple.reversed().reversed(), kTuple);
  EXPECT_EQ(kTuple.canonical(), kTuple.reversed().canonical());
}

TEST(FourTuple, HashConsistentWithEquality) {
  FourTupleHash hash;
  EXPECT_EQ(hash(kTuple), hash(FourTuple{kTuple}));
  EXPECT_NE(hash(kTuple), hash(kTuple.reversed()));
}

TEST(HostPair, OrderInsensitive) {
  const HostPair a = HostPair::of(1, 2);
  const HostPair b = HostPair::of(2, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(HostPairHash{}(a), HostPairHash{}(b));
}

TEST(IpToString, DottedQuad) {
  EXPECT_EQ(ip_to_string(make_ip(93, 184, 216, 34)), "93.184.216.34");
  EXPECT_EQ(ip_to_string(0), "0.0.0.0");
  EXPECT_EQ(ip_to_string(0xFFFFFFFF), "255.255.255.255");
}

}  // namespace
}  // namespace ys::net
