// Host tests: connection demux, listeners, UDP binding, the netfilter-like
// hook plane, raw sends, local injection, and host-level IP reassembly.
#include <gtest/gtest.h>

#include "netsim/fragment.h"
#include "tcpstack/host.h"

namespace ys::tcp {
namespace {

struct TwoHosts {
  net::EventLoop loop;
  net::Path path;
  Host client;
  Host server;

  TwoHosts()
      : path(loop, Rng(3), make_path_cfg(), nullptr),
        client(make_cfg("client", net::make_ip(10, 0, 0, 1),
                        HostSide::kClient),
               path, loop, Rng(5)),
        server(make_cfg("server", net::make_ip(93, 184, 216, 34),
                        HostSide::kServer),
               path, loop, Rng(7)) {
    client.attach();
    server.attach();
  }

  static net::PathConfig make_path_cfg() {
    net::PathConfig cfg;
    cfg.server_hops = 6;
    cfg.jitter_us = 0;
    cfg.per_link_loss = 0.0;
    return cfg;
  }

  static Host::Config make_cfg(const char* name, net::IpAddr ip,
                               HostSide side) {
    Host::Config cfg;
    cfg.name = name;
    cfg.address = ip;
    cfg.profile = StackProfile::for_version(LinuxVersion::k4_4);
    cfg.side = side;
    return cfg;
  }
};

TEST(Host, ConnectListenExchange) {
  TwoHosts net;
  Bytes server_got;
  net.server.listen(80, [&server_got](TcpEndpoint& ep, ByteView data) {
    server_got.insert(server_got.end(), data.begin(), data.end());
    if (server_got.size() >= 5) ep.send_data(to_bytes("pong!"));
  });

  Bytes client_got;
  TcpEndpoint::Callbacks cb;
  cb.on_data = [&client_got](ByteView data) {
    client_got.insert(client_got.end(), data.begin(), data.end());
  };
  TcpEndpoint& conn =
      net.client.connect(net.server.config().address, 80, 0, std::move(cb));
  conn.send_data(to_bytes("ping!"));
  net.loop.run();

  EXPECT_EQ(conn.state(), TcpState::kEstablished);
  EXPECT_EQ(ys::to_string(server_got), "ping!");
  EXPECT_EQ(ys::to_string(client_got), "pong!");
}

TEST(Host, MultipleConcurrentConnectionsDemuxed) {
  TwoHosts net;
  int requests = 0;
  net.server.listen(80, [&requests](TcpEndpoint& ep, ByteView) {
    ++requests;
    ep.send_data(to_bytes("ok"));
  });

  TcpEndpoint& a = net.client.connect(net.server.config().address, 80, 0);
  TcpEndpoint& b = net.client.connect(net.server.config().address, 80, 0);
  net.loop.run();
  ASSERT_EQ(a.state(), TcpState::kEstablished);
  ASSERT_EQ(b.state(), TcpState::kEstablished);
  a.send_data(to_bytes("from-a"));
  b.send_data(to_bytes("from-b"));
  net.loop.run();
  EXPECT_EQ(requests, 2);
  EXPECT_NE(a.tuple().src_port, b.tuple().src_port);
}

TEST(Host, UnknownPortDrawsRst) {
  TwoHosts net;
  // No listener on 81.
  TcpEndpoint& conn = net.client.connect(net.server.config().address, 81, 0);
  net.loop.run();
  EXPECT_EQ(conn.state(), TcpState::kClosed);
  EXPECT_TRUE(conn.was_reset());
  ASSERT_FALSE(net.server.demux_ignores().empty());
  EXPECT_EQ(net.server.demux_ignores()[0].reason, IgnoreReason::kNotListening);
}

TEST(Host, EgressHookCanDropPackets) {
  TwoHosts net;
  net.server.listen(80, [](TcpEndpoint&, ByteView) {});
  int dropped = 0;
  net.client.set_egress_hook([&dropped](net::Packet& pkt) {
    if (pkt.is_tcp() && pkt.tcp->flags.syn) {
      ++dropped;
      return Host::Verdict::kDrop;
    }
    return Host::Verdict::kAccept;
  });
  TcpEndpoint& conn = net.client.connect(net.server.config().address, 80, 0);
  net.loop.run_until(SimTime::from_ms(100));
  EXPECT_EQ(conn.state(), TcpState::kSynSent);  // SYN never left
  EXPECT_GE(dropped, 1);
  EXPECT_EQ(net.path.packets_delivered_to_server(), 0u);
}

TEST(Host, EgressHookCanMutatePackets) {
  TwoHosts net;
  net.client.set_egress_hook([](net::Packet& pkt) {
    pkt.ip.ttl = 3;  // too short to cross the 6-hop path
    return Host::Verdict::kAccept;
  });
  net.client.send_raw(net::make_tcp_packet(
      net::FourTuple{net.client.config().address, 1234,
                     net.server.config().address, 80},
      net::TcpFlags::only_syn(), 1, 0));
  net.loop.run();
  EXPECT_EQ(net.path.packets_delivered_to_server(), 0u);
}

TEST(Host, RawUnhookedBypassesHook) {
  TwoHosts net;
  net.client.set_egress_hook(
      [](net::Packet&) { return Host::Verdict::kDrop; });
  net.client.send_raw_unhooked(net::make_tcp_packet(
      net::FourTuple{net.client.config().address, 1234,
                     net.server.config().address, 80},
      net::TcpFlags::only_ack(), 1, 0));
  net.loop.run();
  EXPECT_EQ(net.path.packets_delivered_to_server(), 1u);
}

TEST(Host, IngressHookSeesAndCanSwallow) {
  TwoHosts net;
  net.server.listen(80, [](TcpEndpoint&, ByteView) {});
  int synacks_seen = 0;
  net.client.set_ingress_hook([&synacks_seen](net::Packet& pkt) {
    if (pkt.is_tcp() && pkt.tcp->flags.syn && pkt.tcp->flags.ack) {
      ++synacks_seen;
      return Host::Verdict::kDrop;  // swallow the handshake reply
    }
    return Host::Verdict::kAccept;
  });
  TcpEndpoint& conn = net.client.connect(net.server.config().address, 80, 0);
  net.loop.run_until(SimTime::from_ms(150));
  EXPECT_GE(synacks_seen, 1);
  EXPECT_EQ(conn.state(), TcpState::kSynSent);
}

TEST(Host, UdpBindAndExchange) {
  TwoHosts net;
  std::optional<std::string> server_got;
  net.server.bind_udp(53, [&](const net::FourTuple& from, ByteView payload) {
    server_got = ys::to_string(payload);
    net.server.send_udp(from.reversed(), to_bytes("answer"));
  });
  std::optional<std::string> client_got;
  net.client.bind_udp(5353, [&](const net::FourTuple&, ByteView payload) {
    client_got = ys::to_string(payload);
  });
  net.client.send_udp(net::FourTuple{net.client.config().address, 5353,
                                     net.server.config().address, 53},
                      to_bytes("query"));
  net.loop.run();
  ASSERT_TRUE(server_got.has_value());
  EXPECT_EQ(*server_got, "query");
  ASSERT_TRUE(client_got.has_value());
  EXPECT_EQ(*client_got, "answer");
}

TEST(Host, InjectLocalDeliversAsIfFromWire) {
  TwoHosts net;
  std::optional<std::string> got;
  net.client.bind_udp(5353, [&](const net::FourTuple&, ByteView payload) {
    got = ys::to_string(payload);
  });
  net.client.inject_local(net::make_udp_packet(
      net::FourTuple{net.server.config().address, 53,
                     net.client.config().address, 5353},
      to_bytes("loopback")));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "loopback");
  EXPECT_FALSE(net.client.received_log().empty());
}

TEST(Host, ReassemblesFragmentsBeforeTcp) {
  TwoHosts net;
  Bytes server_got;
  net.server.listen(80, [&server_got](TcpEndpoint&, ByteView data) {
    server_got.insert(server_got.end(), data.begin(), data.end());
  });
  TcpEndpoint& conn = net.client.connect(net.server.config().address, 80, 0);
  net.loop.run();
  ASSERT_EQ(conn.state(), TcpState::kEstablished);

  // Send the request as raw IP fragments.
  net::Packet request = net::make_tcp_packet(
      conn.tuple(), net::TcpFlags::psh_ack(), conn.snd_nxt(), conn.rcv_nxt(),
      to_bytes("GET / HTTP/1.1\r\n\r\n"));
  request.ip.identification = 99;
  net::finalize(request);
  for (auto& frag : net::fragment_packet(request, 16)) {
    net.client.send_raw(std::move(frag));
  }
  net.loop.run();
  EXPECT_EQ(ys::to_string(server_got), "GET / HTTP/1.1\r\n\r\n");
}

TEST(Host, ReceivedLogRecordsArrivals) {
  TwoHosts net;
  net.server.listen(80, [](TcpEndpoint&, ByteView) {});
  net.client.connect(net.server.config().address, 80, 0);
  net.loop.run();
  // The client saw at least the SYN/ACK.
  bool saw_synack = false;
  for (const auto& pkt : net.client.received_log()) {
    if (pkt.is_tcp() && pkt.tcp->flags.syn && pkt.tcp->flags.ack) {
      saw_synack = true;
    }
  }
  EXPECT_TRUE(saw_synack);
}

}  // namespace
}  // namespace ys::tcp
