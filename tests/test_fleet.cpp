// src/fleet/ — multi-client deployment simulation: config parsing, seeded
// arrival schedules, the runner determinism contract (jobs parity, chain
// resume), shared-cache convergence, and RNG isolation from fleet-free
// runs.
#include <filesystem>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/trial.h"
#include "exp/vantage.h"
#include "fleet/arrival.h"
#include "fleet/fleet.h"
#include "fleet/fleet_config.h"
#include "intang/kv_store.h"
#include "obs/metrics.h"
#include "runner/results_store.h"
#include "runner/runner.h"

namespace ys {
namespace {

using namespace ys::exp;

// The small-but-interesting config the determinism tests share: two
// vantages, enough flows for caches to warm up, a soak schedule that
// flaps the rst-storm plan mid-sweep.
fleet::FleetConfig small_config() {
  std::string error;
  fleet::FleetConfig cfg = fleet::parse_fleet_config(
      "clients=6;flows=48;servers=3;vantages=2;arrival=20;churn=0.1;"
      "soak=500ms:rst-storm,1s:none",
      error);
  EXPECT_TRUE(error.empty()) << error;
  return cfg;
}

/// Deterministic slice of a metrics snapshot (counters only — the fleet
/// publishes no wall-clock-free gauges worth pinning here).
std::string counters_digest(const obs::Snapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    if (name.find("wall") != std::string::npos ||
        name.find("per_sec") != std::string::npos) {
      continue;
    }
    out += name + "=" + std::to_string(v) + "\n";
  }
  return out;
}

struct SweepOut {
  std::vector<i64> slots;
  std::string digest;
};

/// One full sweep in a private registry, optionally through a results
/// store (recorded chains are skipped, executed slots persisted) — the
/// same shape bench_fleet and `yourstate fleet` use.
SweepOut sweep(const fleet::Fleet& fl, int jobs,
               runner::ResultsStore* store = nullptr) {
  obs::MetricsRegistry local;
  obs::ScopedMetricsRegistry scope(&local);
  const runner::TrialGrid grid = fl.grid();
  std::vector<std::unique_ptr<fleet::Fleet::VantageState>> states;
  std::vector<char> skip(grid.chains(), 0);
  for (std::size_t ch = 0; ch < grid.chains(); ++ch) {
    skip[ch] = store != nullptr &&
                       store->range_complete(ch * grid.trials,
                                             (ch + 1) * grid.trials)
                   ? 1
                   : 0;
    states.push_back(skip[ch] ? nullptr : fl.make_vantage_state(ch));
  }
  runner::PoolOptions pool;
  pool.jobs = jobs;
  auto out = runner::collect_grid_or(
      grid, pool, static_cast<i64>(-1),
      [&](const runner::GridCoord& c, runner::TaskContext&) {
        const std::size_t slot = grid.index(c);
        if (store != nullptr && skip[grid.chain(c)]) return *store->get(slot);
        const i64 encoded = fl.run_flow(c, *states[grid.chain(c)]).encode();
        if (store != nullptr) store->put(slot, encoded);
        return encoded;
      });
  return SweepOut{std::move(out.slots), counters_digest(local.snapshot())};
}

// ----------------------------------------------------------------- config

TEST(Fleet, ConfigParsesInlineSpec) {
  std::string error;
  const fleet::FleetConfig cfg = fleet::parse_fleet_config(
      "clients=12;flows=100;servers=5;vantages=3;arrival=8.5;churn=0.2;"
      "share=per-client;seed=99;soak=0s:none,500ms:chaos",
      error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(cfg.clients, 12);
  EXPECT_EQ(cfg.flows, 100);
  EXPECT_EQ(cfg.servers, 5);
  EXPECT_EQ(cfg.vantages, 3);
  EXPECT_DOUBLE_EQ(cfg.arrival_rate, 8.5);
  EXPECT_DOUBLE_EQ(cfg.churn, 0.2);
  EXPECT_EQ(cfg.share, fleet::ShareMode::kPerClient);
  EXPECT_EQ(cfg.seed, 99u);
  ASSERT_EQ(cfg.soak.size(), 2u);
  EXPECT_TRUE(cfg.soak[0].plan.empty());
  EXPECT_FALSE(cfg.soak[1].plan.empty());
  EXPECT_EQ(cfg.soak[1].at, SimTime::from_ms(500));
  EXPECT_FALSE(cfg.summary().empty());
  EXPECT_FALSE(cfg.signature().empty());
}

TEST(Fleet, ConfigRejectsGarbage) {
  for (const char* bad :
       {"clients=zero", "share=telepathy", "soak=1s", "soak=xs:none",
        "nonsense=1", "flows="}) {
    std::string error;
    fleet::parse_fleet_config(bad, error);
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Fleet, ConfigSignatureCoversEveryAxis) {
  const fleet::FleetConfig base = small_config();
  std::set<std::string> sigs{base.signature()};
  auto differs = [&sigs](fleet::FleetConfig cfg) {
    EXPECT_TRUE(sigs.insert(cfg.signature()).second) << cfg.signature();
  };
  fleet::FleetConfig c = base;
  c.clients += 1;
  differs(c);
  c = base;
  c.flows += 1;
  differs(c);
  c = base;
  c.servers += 1;
  differs(c);
  c = base;
  c.seed += 1;
  differs(c);
  c = base;
  c.churn += 0.01;
  differs(c);
  c = base;
  c.share = fleet::ShareMode::kCold;
  differs(c);
  c = base;
  c.soak.clear();
  differs(c);
}

// --------------------------------------------------------------- schedule

TEST(Fleet, ScheduleIsDeterministicSortedAndInRange) {
  const fleet::FleetConfig cfg = small_config();
  const auto a = fleet::build_flow_schedule(cfg, "aliyun-bj");
  const auto b = fleet::build_flow_schedule(cfg, "aliyun-bj");
  ASSERT_EQ(a.size(), static_cast<std::size_t>(cfg.flows));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].server, b[i].server);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].fresh_session, b[i].fresh_session);
    EXPECT_EQ(a[i].soak_phase, b[i].soak_phase);
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_GE(a[i].client, 0);
    EXPECT_LT(a[i].client, cfg.clients);
    EXPECT_GE(a[i].server, 0);
    EXPECT_LT(a[i].server, cfg.servers);
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
  }
  // Different vantages draw different schedules (salted by vantage name).
  const auto other = fleet::build_flow_schedule(cfg, "aliyun-sh");
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].client != other[i].client || a[i].server != other[i].server ||
        a[i].at != other[i].at) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Fleet, SchedulePinsSoakPhasesToBoundaries) {
  const fleet::FleetConfig cfg = small_config();
  const auto schedule = fleet::build_flow_schedule(cfg, "aliyun-bj");
  std::set<int> seen;
  for (const auto& flow : schedule) {
    seen.insert(flow.soak_phase);
    int expect = -1;
    for (std::size_t p = 0; p < cfg.soak.size(); ++p) {
      if (flow.at >= cfg.soak[p].at) expect = static_cast<int>(p);
    }
    EXPECT_EQ(flow.soak_phase, expect);
  }
  // The sweep actually crosses both boundaries: clean, storm, recovery.
  EXPECT_EQ(seen.size(), 3u);
}

// ------------------------------------------------------------ determinism

TEST(Fleet, FlowRecordRoundTrips) {
  fleet::Fleet::FlowRecord rec;
  rec.outcome = Outcome::kFailure2;
  rec.strategy = strategy::StrategyId::kImprovedTeardown;
  rec.source = 3;
  rec.supplier = 4093;  // flow indices larger than a byte must survive
  const fleet::Fleet::FlowRecord back =
      fleet::Fleet::FlowRecord::decode(rec.encode());
  EXPECT_EQ(back.outcome, rec.outcome);
  EXPECT_EQ(back.strategy, rec.strategy);
  EXPECT_EQ(back.source, rec.source);
  EXPECT_EQ(back.supplier, rec.supplier);
  // The "no pick / no supplier" sentinel round-trips too.
  fleet::Fleet::FlowRecord none;
  const fleet::Fleet::FlowRecord none_back =
      fleet::Fleet::FlowRecord::decode(none.encode());
  EXPECT_EQ(none_back.source, -1);
  EXPECT_EQ(none_back.supplier, -1);
}

TEST(Fleet, JobsParityIncludingMetrics) {
  const fleet::Fleet fl(small_config());
  const SweepOut serial = sweep(fl, 1);
  const SweepOut threaded = sweep(fl, 2);
  EXPECT_EQ(serial.slots, threaded.slots);
  EXPECT_EQ(serial.digest, threaded.digest);
  EXPECT_NE(serial.digest.find("fleet.flows"), std::string::npos);
}

TEST(Fleet, KilledThenResumedMatchesUninterrupted) {
  const fleet::FleetConfig cfg = small_config();
  const fleet::Fleet fl(cfg);
  const runner::TrialGrid grid = fl.grid();
  const SweepOut ref = sweep(fl, 1);

  const std::string dir = "test_fleet_resume.tmp";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const u64 sig = runner::ResultsStore::signature_of({"fleet",
                                                      cfg.signature()});
  {
    // "Killed" run: only the first chain completed before the crash.
    runner::ResultsStore store(dir, "test_fleet", sig, grid.total());
    for (std::size_t t = 0; t < grid.trials; ++t) {
      store.put(t, ref.slots[t]);
    }
  }
  {
    runner::ResultsStore store(dir, "test_fleet", sig, grid.total());
    ASSERT_TRUE(store.resumed());
    const SweepOut resumed = sweep(fl, 2, &store);
    EXPECT_EQ(resumed.slots, ref.slots);
    EXPECT_TRUE(store.range_complete(0, grid.total()));
  }
  std::filesystem::remove_all(dir, ec);
}

TEST(Fleet, ReplayMatchesSweepSlot) {
  const fleet::Fleet fl(small_config());
  const runner::TrialGrid grid = fl.grid();
  const SweepOut ref = sweep(fl, 1);
  // A late flow on each vantage: the chain prefix must replay exactly.
  for (std::size_t v = 0; v < grid.vantages; ++v) {
    const runner::GridCoord coord{0, v, 0, grid.trials - 1};
    const Replay replay = fl.replay_flow(coord);
    const fleet::Fleet::FlowRecord rec =
        fleet::Fleet::FlowRecord::decode(ref.slots[grid.index(coord)]);
    EXPECT_EQ(replay.result.outcome, rec.outcome) << v;
    EXPECT_EQ(replay.result.strategy_used, rec.strategy) << v;
    EXPECT_FALSE(replay.ladder.empty()) << v;
  }
}

// ------------------------------------------------------------ convergence

TEST(Fleet, SharedCacheConverges) {
  const fleet::Fleet fl(small_config());
  const SweepOut out = sweep(fl, 1);
  const fleet::Fleet::Report report = fl.analyze(out.slots);
  EXPECT_EQ(report.total_flows, out.slots.size());
  EXPECT_EQ(report.phases, 3u);
  EXPECT_GT(report.success_rate, 0.5);
  EXPECT_GT(report.cache_hit_rate, 0.0);
  EXPECT_GT(report.cross_client_supplies, 0);
  int converged = 0;
  for (const auto& v : report.vantages) converged += v.servers_converged;
  EXPECT_GT(converged, 0);
  EXPECT_FALSE(report.render().empty());
}

TEST(Fleet, ColdModeSharesNothing) {
  fleet::FleetConfig cfg = small_config();
  cfg.share = fleet::ShareMode::kCold;
  const fleet::Fleet fl(cfg);
  const SweepOut out = sweep(fl, 1);
  const fleet::Fleet::Report report = fl.analyze(out.slots);
  // No persistence: no flow's pick can come from another flow's write.
  EXPECT_EQ(report.cross_client_supplies, 0);
  EXPECT_DOUBLE_EQ(report.cache_hit_rate, 0.0);
  // Shared mode on the same schedule does strictly better on cache reuse.
  const fleet::Fleet shared(small_config());
  const fleet::Fleet::Report shared_report =
      shared.analyze(sweep(shared, 1).slots);
  EXPECT_GT(shared_report.cache_hit_rate, report.cache_hit_rate);
}

// -------------------------------------------------------------- isolation

TEST(Fleet, FleetRngLeavesFleetFreeRunsUntouched) {
  // A plain trial's outcome must be byte-identical whether or not fleet
  // schedules were built / sweeps run in the same process: the fleet
  // draws only from its own salted streams.
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  auto reference_trial = [&rules]() {
    ScenarioOptions opt;
    opt.vp = china_vantage_points()[0];
    opt.server.host = "ref.example";
    opt.server.ip = net::make_ip(93, 184, 216, 34);
    opt.cal = Calibration::standard();
    opt.seed = 424242;
    Scenario sc(&rules, opt);
    HttpTrialOptions http;
    http.use_intang = true;
    return run_http_trial(sc, http);
  };
  const TrialResult before = reference_trial();
  const fleet::Fleet fl(small_config());
  (void)sweep(fl, 2);
  const TrialResult after = reference_trial();
  EXPECT_EQ(before.outcome, after.outcome);
  EXPECT_EQ(before.strategy_used, after.strategy_used);
  EXPECT_EQ(before.gfw_reset_seen, after.gfw_reset_seen);
}

// ---------------------------------------------------------------- kvstore

TEST(Fleet, SharedKvStoreSnapshotAndTtl) {
  intang::SharedKvStore store;
  const SimTime t0 = SimTime::from_sec(1);
  store.set("a", "1", t0);
  store.set("b", "2", t0, SimTime::from_sec(10));
  store.set("c", "3", t0, SimTime::from_sec(1));
  EXPECT_EQ(store.size(t0), 3u);
  ASSERT_TRUE(store.ttl_remaining("b", t0).has_value());
  EXPECT_EQ(store.ttl_remaining("b", t0)->us, SimTime::from_sec(10).us);
  EXPECT_FALSE(store.ttl_remaining("a", t0).has_value());

  const SimTime later = SimTime::from_sec(5);
  EXPECT_FALSE(store.get("c", later).has_value());  // expired
  EXPECT_EQ(store.get("b", later).value_or(""), "2");
  const auto snap = store.snapshot(later);
  ASSERT_EQ(snap.size(), 2u);  // sorted, expired entries swept
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(store.incr("hits", later, 2), 2);
  EXPECT_EQ(store.incr("hits", later, 3), 5);
}

}  // namespace
}  // namespace ys
