// GFW-level IP fragmentation tests: the device reassembles fragments
// itself, preferring the FIRST copy of an overlapped range ([17], still
// true per §3.2) — the exact asymmetry the out-of-order IP-fragment
// strategy drives a keyword through.
#include <gtest/gtest.h>

#include "gfw/gfw_device.h"
#include "netsim/fragment.h"
#include "netsim/wire.h"

namespace ys::gfw {
namespace {

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

struct Fwd final : public net::Forwarder {
  explicit Fwd(Rng* rng) : rng_(rng) {}
  void forward(net::Packet) override {}
  void inject(net::Packet, net::Dir, SimTime) override { ++injections; }
  void drop(const net::Packet&, std::string_view) override {}
  SimTime now() const override { return SimTime::zero(); }
  Rng& rng() override { return *rng_; }
  int injections = 0;
  Rng* rng_;
};

struct Rig {
  DetectionRules rules = DetectionRules::standard();
  std::unique_ptr<GfwDevice> dev;
  Rng rng{5};
  Fwd fwd{&rng};
  u32 cseq = 1000;
  u32 sseq = 5000;

  explicit Rig(GfwConfig cfg = {}) {
    cfg.detection_miss_rate = 0.0;
    dev = std::make_unique<GfwDevice>("gfw", cfg, &rules, Rng(9));
  }
  void feed(net::Packet pkt, net::Dir dir) {
    net::finalize(pkt);
    dev->process(std::move(pkt), dir, fwd);
  }
  void handshake() {
    feed(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), cseq, 0),
         net::Dir::kC2S);
    ++cseq;
    feed(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                              sseq, cseq),
         net::Dir::kS2C);
    ++sseq;
    feed(net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(), cseq, sseq),
         net::Dir::kC2S);
  }
  net::Packet request_packet() {
    net::Packet pkt = net::make_tcp_packet(
        kTuple, net::TcpFlags::psh_ack(), cseq, sseq,
        to_bytes("GET /search?q=ultrasurf HTTP/1.1\r\n"));
    pkt.ip.identification = 77;
    net::finalize(pkt);
    return pkt;
  }
};

TEST(GfwFragments, PlainFragmentedRequestIsStillCaught) {
  // Simple fragmentation is no evasion: the device reassembles.
  Rig rig;
  rig.handshake();
  for (auto& frag : net::fragment_packet(rig.request_packet(), 16)) {
    rig.feed(std::move(frag), net::Dir::kC2S);
  }
  EXPECT_EQ(rig.dev->detections(), 1);
}

TEST(GfwFragments, IncompleteFragmentsDetectNothing) {
  Rig rig;
  rig.handshake();
  auto frags = net::fragment_packet(rig.request_packet(), 16);
  ASSERT_GE(frags.size(), 3u);
  // Withhold the first fragment forever.
  for (std::size_t i = 1; i < frags.size(); ++i) {
    rig.feed(frags[i], net::Dir::kC2S);
  }
  EXPECT_EQ(rig.dev->detections(), 0);
}

TEST(GfwFragments, OverlapStrategyBlindsPreferFirstDevice) {
  // The §3.2 exploit verbatim: junk range first (device keeps it), real
  // range second (hosts keep that), gap-filling head last.
  Rig rig;  // default ip_fragment_overlap = kPreferFirst
  rig.handshake();

  const net::Packet whole = rig.request_packet();
  Bytes transport = net::serialize_transport(whole);
  constexpr std::size_t kSplit = 24;
  Bytes head(transport.begin(), transport.begin() + kSplit);
  Bytes real_tail(transport.begin() + kSplit, transport.end());
  Bytes junk_tail(real_tail.size(), 'J');

  rig.feed(net::make_raw_fragment(whole, kSplit, junk_tail, false),
           net::Dir::kC2S);
  rig.feed(net::make_raw_fragment(whole, kSplit, real_tail, false),
           net::Dir::kC2S);
  rig.feed(net::make_raw_fragment(whole, 0, head, true), net::Dir::kC2S);

  EXPECT_EQ(rig.dev->detections(), 0);  // the device assembled junk
  // The device did consume the stream (its TCB advanced past the junk).
  const GfwTcb* tcb = rig.dev->find_tcb(kTuple);
  ASSERT_NE(tcb, nullptr);
  EXPECT_EQ(tcb->client_next, rig.cseq + whole.payload.size());
}

TEST(GfwFragments, OverlapStrategyFailsAgainstPreferLastDevice) {
  // A hypothetical device preferring the last copy assembles the real
  // bytes and catches the keyword — the asymmetry is load-bearing.
  GfwConfig cfg;
  cfg.ip_fragment_overlap = net::OverlapPolicy::kPreferLast;
  Rig rig(cfg);
  rig.handshake();

  const net::Packet whole = rig.request_packet();
  Bytes transport = net::serialize_transport(whole);
  constexpr std::size_t kSplit = 24;
  Bytes head(transport.begin(), transport.begin() + kSplit);
  Bytes real_tail(transport.begin() + kSplit, transport.end());
  Bytes junk_tail(real_tail.size(), 'J');

  rig.feed(net::make_raw_fragment(whole, kSplit, junk_tail, false),
           net::Dir::kC2S);
  rig.feed(net::make_raw_fragment(whole, kSplit, real_tail, false),
           net::Dir::kC2S);
  rig.feed(net::make_raw_fragment(whole, 0, head, true), net::Dir::kC2S);

  EXPECT_EQ(rig.dev->detections(), 1);
}

TEST(GfwFragments, FragmentedHandshakePacketsStillBuildTcb) {
  // Even the SYN can arrive fragmented (pathological but legal); the
  // device's reassembler must feed its TCB logic all the same.
  Rig rig;
  net::Packet syn = net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(),
                                         rig.cseq, 0);
  syn.tcp->options.mss = 1460;
  syn.ip.identification = 42;
  net::finalize(syn);
  for (auto& frag : net::fragment_packet(syn, 16)) {
    rig.feed(std::move(frag), net::Dir::kC2S);
  }
  EXPECT_EQ(rig.dev->tcb_count(), 1u);
  const GfwTcb* tcb = rig.dev->find_tcb(kTuple);
  ASSERT_NE(tcb, nullptr);
  EXPECT_EQ(tcb->client_next, rig.cseq + 1);
}

}  // namespace
}  // namespace ys::gfw
