// End-to-end smoke tests: the censored-path simulation must reproduce the
// paper's headline behaviours before any statistics are trusted.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/trial.h"

namespace ys::exp {
namespace {

gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

ScenarioOptions base_options(u64 seed) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[1];  // aliyun-sh
  opt.server.host = "site-0.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.server.version = tcp::LinuxVersion::k4_4;
  opt.cal = Calibration::standard();
  // Deterministic behaviour for the smoke tests: no overload misses, no
  // loss, no estimate error, fully evolved devices.
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.cal.old_model_fraction = 0.0;
  opt.cal.rst_resync_established = 0.0;
  opt.cal.rst_resync_handshake = 0.0;
  opt.cal.no_flag_accept = 1.0;
  opt.cal.segment_overlap_prefer_last = 0.0;
  opt.cal.server_side_firewall_fraction = 0.0;
  opt.seed = seed;
  return opt;
}

TEST(SmokeTest, PlainRequestWithoutKeywordSucceeds) {
  Scenario sc(rules(), base_options(1));
  HttpTrialOptions opt;
  opt.with_keyword = false;
  TrialResult result = run_http_trial(sc, opt);
  EXPECT_TRUE(result.response_received);
  EXPECT_FALSE(result.gfw_reset_seen);
  EXPECT_EQ(result.outcome, Outcome::kSuccess);
}

TEST(SmokeTest, KeywordWithoutStrategyDrawsGfwResets) {
  Scenario sc(rules(), base_options(2));
  HttpTrialOptions opt;
  opt.with_keyword = true;
  TrialResult result = run_http_trial(sc, opt);
  EXPECT_TRUE(result.gfw_reset_seen);
  EXPECT_EQ(result.outcome, Outcome::kFailure2);
  EXPECT_GE(sc.gfw_type2().detections(), 1);
}

TEST(SmokeTest, ImprovedTeardownEvades) {
  Scenario sc(rules(), base_options(3));
  HttpTrialOptions opt;
  opt.with_keyword = true;
  opt.strategy = strategy::StrategyId::kImprovedTeardown;
  TrialResult result = run_http_trial(sc, opt);
  EXPECT_EQ(result.outcome, Outcome::kSuccess)
      << "gfw_reset=" << result.gfw_reset_seen
      << " response=" << result.response_received;
}

TEST(SmokeTest, CombinedStrategiesEvadeEvolvedModel) {
  for (auto id : {strategy::StrategyId::kCreationResyncDesync,
                  strategy::StrategyId::kTeardownReversal,
                  strategy::StrategyId::kImprovedInOrder,
                  strategy::StrategyId::kResyncDesync,
                  strategy::StrategyId::kTcbReversal}) {
    Scenario sc(rules(), base_options(4));
    HttpTrialOptions opt;
    opt.with_keyword = true;
    opt.strategy = id;
    TrialResult result = run_http_trial(sc, opt);
    EXPECT_EQ(result.outcome, Outcome::kSuccess)
        << "strategy=" << strategy::to_string(id)
        << " gfw_reset=" << result.gfw_reset_seen
        << " response=" << result.response_received;
  }
}

TEST(SmokeTest, LegacyTcbCreationFailsAgainstEvolvedModel) {
  Scenario sc(rules(), base_options(5));
  HttpTrialOptions opt;
  opt.with_keyword = true;
  opt.strategy = strategy::StrategyId::kTcbCreationSynTtl;
  TrialResult result = run_http_trial(sc, opt);
  EXPECT_EQ(result.outcome, Outcome::kFailure2);
}

TEST(SmokeTest, InOrderOverlapEvadesBothDeviceTypes) {
  Scenario sc(rules(), base_options(6));
  HttpTrialOptions opt;
  opt.with_keyword = true;
  opt.strategy = strategy::StrategyId::kInOrderTtl;
  TrialResult result = run_http_trial(sc, opt);
  EXPECT_EQ(result.outcome, Outcome::kSuccess)
      << "gfw_reset=" << result.gfw_reset_seen
      << " response=" << result.response_received;
}

}  // namespace
}  // namespace ys::exp
