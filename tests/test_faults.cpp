// ys::faults — fault-plan parsing, deterministic injection, graceful
// degradation plumbing (trial errors, selector safe mode, runner crash
// isolation, resumable results).
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/log.h"
#include "exp/benchdef.h"
#include "exp/prober.h"
#include "exp/scenario.h"
#include "exp/stats.h"
#include "exp/trial.h"
#include "exp/vantage.h"
#include "faults/fault_plan.h"
#include "obs/metrics.h"
#include "runner/results_store.h"
#include "runner/runner.h"

namespace ys {
namespace {

using namespace ys::exp;

// ---------------------------------------------------------------- plans --

TEST(FaultPlan, ShippedPlansAreNamedAndNonEmpty) {
  const auto& plans = faults::shipped_fault_plans();
  ASSERT_FALSE(plans.empty());
  for (const auto& plan : plans) {
    EXPECT_FALSE(plan.name.empty());
    EXPECT_FALSE(plan.empty()) << plan.name;
    EXPECT_FALSE(plan.summary().empty()) << plan.name;
  }
  EXPECT_NE(faults::find_shipped_plan("chaos"), nullptr);
  EXPECT_NE(faults::find_shipped_plan("rst-storm"), nullptr);
  EXPECT_EQ(faults::find_shipped_plan("no-such-plan"), nullptr);
}

TEST(FaultPlan, ParsesInlineClauses) {
  std::string error;
  const faults::FaultPlan plan = faults::parse_fault_plan(
      "loss:at=50ms,dur=2s,p=0.25;dup:p=0.1;corrupt:p=0.05;"
      "reorder:at=0ms,dur=5s,delay=6ms;pathflap:at=60ms,delta=3",
      error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(plan.loss_bursts.size(), 1u);
  EXPECT_EQ(plan.loss_bursts[0].at, SimTime::from_ms(50));
  EXPECT_EQ(plan.loss_bursts[0].duration, SimTime::from_sec(2));
  EXPECT_DOUBLE_EQ(plan.loss_bursts[0].p, 0.25);
  EXPECT_DOUBLE_EQ(plan.duplicate_p, 0.1);
  EXPECT_DOUBLE_EQ(plan.corrupt_p, 0.05);
  ASSERT_EQ(plan.reorder_windows.size(), 1u);
  EXPECT_EQ(plan.reorder_windows[0].max_extra_delay_us, 6000);
  ASSERT_EQ(plan.path_flaps.size(), 1u);
  EXPECT_EQ(plan.path_flaps[0].delta, 3);
}

TEST(FaultPlan, EmptyAndNoneSpecsAreFaultFree) {
  std::string error;
  EXPECT_TRUE(faults::parse_fault_plan("", error).empty());
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(faults::parse_fault_plan("none", error).empty());
  EXPECT_TRUE(error.empty());
}

TEST(FaultPlan, RejectsGarbage) {
  std::string error;
  (void)faults::parse_fault_plan("bogus:xyz=1", error);
  EXPECT_FALSE(error.empty());
  error.clear();
  (void)faults::parse_fault_plan("not-a-shipped-plan-name", error);
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlan, ParsesJsonFile) {
  const std::string path = "test_fault_plan.tmp.json";
  {
    std::ofstream out(path);
    out << R"({"name":"jtest",
               "loss_bursts":[{"at":"10ms","dur":"1s","p":0.2}],
               "duplicate_p":0.05,
               "gfw_flaps":[{"at":0,"dur":"100ms","outage":1}]})";
  }
  std::string error;
  const faults::FaultPlan plan = faults::parse_fault_plan("@" + path, error);
  std::filesystem::remove(path);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(plan.name, "jtest");
  ASSERT_EQ(plan.loss_bursts.size(), 1u);
  EXPECT_EQ(plan.loss_bursts[0].at, SimTime::from_ms(10));
  EXPECT_DOUBLE_EQ(plan.loss_bursts[0].p, 0.2);
  EXPECT_DOUBLE_EQ(plan.duplicate_p, 0.05);
  ASSERT_EQ(plan.gfw_flaps.size(), 1u);
  EXPECT_TRUE(plan.gfw_flaps[0].outage);
  EXPECT_EQ(plan.gfw_flaps[0].duration, SimTime::from_ms(100));
}

// ------------------------------------------------------------- injector --

struct TrialRun {
  Outcome outcome;
  obs::Snapshot snap;
};

/// One HTTP trial under `plan` in a private registry.
TrialRun run_with_plan(const faults::FaultPlan* plan, u64 seed,
                       strategy::StrategyId strategy =
                           strategy::StrategyId::kNone) {
  obs::MetricsRegistry local;
  obs::ScopedMetricsRegistry scope(&local);
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  const Calibration cal = Calibration::standard();
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[0];
  opt.server = make_server_population(1, seed, cal, true)[0];
  opt.cal = cal;
  opt.seed = seed;
  opt.faults = plan;
  Scenario sc(&rules, opt);
  HttpTrialOptions http;
  http.with_keyword = true;
  http.strategy = strategy;
  TrialRun run{run_http_trial(sc, http).outcome, local.snapshot()};
  return run;
}

u64 counter_of(const obs::Snapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(FaultInjector, LossBurstDropsAndGoldenDeterminism) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("loss:at=0ms,dur=30s,p=0.5", error);
  ASSERT_TRUE(error.empty()) << error;

  const TrialRun a = run_with_plan(&plan, 42);
  EXPECT_GT(counter_of(a.snap, "netsim.fault_drop"), 0u);
  EXPECT_GT(counter_of(a.snap, "faults.loss_burst_drop"), 0u);

  // Golden determinism: the identical seed reproduces every counter in the
  // netsim.* / faults.* snapshot exactly.
  const TrialRun b = run_with_plan(&plan, 42);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.snap.counters, b.snap.counters);
}

TEST(FaultInjector, DuplicationAndCorruptionRegister) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("dup:p=0.5;corrupt:p=0.4", error);
  ASSERT_TRUE(error.empty()) << error;
  const TrialRun run = run_with_plan(&plan, 7);
  EXPECT_GT(counter_of(run.snap, "netsim.fault_duplicate"), 0u);
  EXPECT_GT(counter_of(run.snap, "netsim.fault_corrupt"), 0u);
  EXPECT_GT(counter_of(run.snap, "faults.duplicate"), 0u);
  EXPECT_GT(counter_of(run.snap, "faults.corrupt"), 0u);
}

TEST(FaultInjector, GfwOutageSuppressesInjection) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("gfwflap:at=0ms,dur=60s,outage=1", error);
  ASSERT_TRUE(error.empty()) << error;
  // Keyword + no strategy: the GFW detects and tries to inject resets, but
  // the outage flap swallows every injection — the baseline sails through.
  const TrialRun run = run_with_plan(&plan, 11);
  EXPECT_GT(counter_of(run.snap, "netsim.fault_inject_suppressed"), 0u);
  EXPECT_EQ(run.outcome, Outcome::kSuccess);
}

TEST(FaultInjector, RstStormInjectsResets) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("rststorm:at=0ms,dur=30s,pos=1,p=1.0", error);
  ASSERT_TRUE(error.empty()) << error;
  const TrialRun run = run_with_plan(&plan, 13);
  EXPECT_GT(counter_of(run.snap, "faults.rst_injected"), 0u);
}

TEST(FaultInjector, PathFlapShiftsRoute) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("pathflap:at=1ms,delta=3", error);
  ASSERT_TRUE(error.empty()) << error;
  const TrialRun run = run_with_plan(&plan, 17);
  EXPECT_GT(counter_of(run.snap, "faults.path_flap"), 0u);
}

TEST(FaultInjector, FaultFreeRunMatchesNullPlan) {
  // A present-but-empty plan must not change a single RNG draw relative to
  // no plan at all (the hook is only armed for non-empty plans).
  const faults::FaultPlan empty;
  const TrialRun with_null = run_with_plan(nullptr, 23);
  const TrialRun with_empty = run_with_plan(&empty, 23);
  EXPECT_EQ(with_null.outcome, with_empty.outcome);
  EXPECT_EQ(with_null.snap.counters, with_empty.snap.counters);
}

// ---------------------------------------------------------- trial error --

TEST(TrialError, EventCapBecomesTrialError) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  const Calibration cal = Calibration::standard();
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[0];
  opt.server = make_server_population(1, 5, cal, true)[0];
  opt.cal = cal;
  opt.seed = 5;
  opt.max_events = 10;  // far below any honest trial
  Scenario sc(&rules, opt);
  HttpTrialOptions http;
  const TrialResult result = run_http_trial(sc, http);
  EXPECT_EQ(result.outcome, Outcome::kTrialError);
  EXPECT_TRUE(sc.last_run().hit_max_events);
  EXPECT_TRUE(sc.last_run().aborted());
}

TEST(TrialError, DeadlineExpiryBecomesTrialError) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  const Calibration cal = Calibration::standard();
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[0];
  opt.server = make_server_population(1, 5, cal, true)[0];
  opt.cal = cal;
  opt.seed = 5;
  opt.deadline = SimTime::from_us(50);  // expires mid-handshake
  Scenario sc(&rules, opt);
  HttpTrialOptions http;
  const TrialResult result = run_http_trial(sc, http);
  EXPECT_EQ(result.outcome, Outcome::kTrialError);
  EXPECT_TRUE(sc.last_run().deadline_expired);
  EXPECT_FALSE(sc.last_run().hit_max_events);
}

TEST(TrialError, TallyCountsTrialErrors) {
  RateTally tally;
  tally.add(Outcome::kSuccess);
  tally.add(Outcome::kTrialError);
  tally.add(Outcome::kTrialError);
  EXPECT_EQ(tally.total(), 3);
  EXPECT_DOUBLE_EQ(tally.trial_error_rate(), 2.0 / 3.0);
}

// ---------------------------------------------------------------- runner --

/// Silence expected exception warnings for the duration of a test.
struct QuietLog {
  QuietLog() : prev_(Log::level()) { Log::set_level(LogLevel::kError); }
  ~QuietLog() { Log::set_level(prev_); }
  LogLevel prev_;
};

TEST(FaultRunner, IsolatesThrowingTasksSerial) {
  QuietLog quiet;
  obs::MetricsRegistry local;
  obs::ScopedMetricsRegistry scope(&local);
  runner::PoolOptions pool;
  pool.jobs = 1;
  const runner::RunnerReport report = runner::run_sharded(
      pool, 20, [](std::size_t i, runner::TaskContext&) {
        if (i == 7) throw std::runtime_error("boom");
      });
  EXPECT_EQ(report.tasks_executed, 20u);
  EXPECT_EQ(report.task_exceptions, 1u);
  EXPECT_EQ(counter_of(local.snapshot(), "runner.task_exception"), 1u);
}

TEST(FaultRunner, IsolatesThrowingTasksThreaded) {
  QuietLog quiet;
  obs::MetricsRegistry local;
  obs::ScopedMetricsRegistry scope(&local);
  runner::PoolOptions pool;
  pool.jobs = 3;
  const runner::RunnerReport report = runner::run_sharded(
      pool, 40, [](std::size_t i, runner::TaskContext&) {
        if (i % 10 == 3) throw std::runtime_error("boom");
      });
  EXPECT_EQ(report.tasks_executed, 40u);
  EXPECT_EQ(report.task_exceptions, 4u);
  EXPECT_EQ(counter_of(local.snapshot(), "runner.task_exception"), 4u);
}

TEST(FaultRunner, CollectGridOrPreFillsErrorValue) {
  QuietLog quiet;
  runner::TrialGrid grid;
  grid.servers = 2;
  grid.trials = 3;
  grid.chain_trials = true;
  runner::PoolOptions pool;
  pool.jobs = 1;
  auto out = runner::collect_grid_or(
      grid, pool, -1, [](const runner::GridCoord& c, runner::TaskContext&) {
        if (c.server == 1 && c.trial == 1) throw std::runtime_error("boom");
        return static_cast<int>(c.trial);
      });
  // Chain 0 ran to completion; chain 1 threw at trial 1, so trial 1 AND the
  // never-run trial 2 both read as the error value.
  EXPECT_EQ(out.slots[grid.index({0, 0, 0, 0})], 0);
  EXPECT_EQ(out.slots[grid.index({0, 0, 0, 1})], 1);
  EXPECT_EQ(out.slots[grid.index({0, 0, 0, 2})], 2);
  EXPECT_EQ(out.slots[grid.index({0, 0, 1, 0})], 0);
  EXPECT_EQ(out.slots[grid.index({0, 0, 1, 1})], -1);
  EXPECT_EQ(out.slots[grid.index({0, 0, 1, 2})], -1);
  EXPECT_EQ(out.report.task_exceptions, 1u);
}

// --------------------------------------------------------- results store --

TEST(ResultsStore, PersistsAndResumes) {
  const std::string dir = "test_results_store.tmp";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const u64 sig = runner::ResultsStore::signature_of({"a", "b", "7"});
  {
    runner::ResultsStore store(dir, "unit", sig, 6);
    EXPECT_FALSE(store.resumed());
    store.put(0, 10);
    store.put(1, 11);
    store.put(2, 12);
    store.put(5, 15);
    EXPECT_TRUE(store.range_complete(0, 3));
    EXPECT_FALSE(store.range_complete(3, 6));
  }
  {
    runner::ResultsStore store(dir, "unit", sig, 6);
    EXPECT_TRUE(store.resumed());
    EXPECT_EQ(store.recorded(), 4u);
    EXPECT_EQ(store.get(1).value_or(-1), 11);
    EXPECT_EQ(store.get(5).value_or(-1), 15);
    EXPECT_FALSE(store.has(3));
    EXPECT_TRUE(store.range_complete(0, 3));
  }
  {
    // Different signature (grid, plan, or seed changed): the stale file is
    // ignored and overwritten on first put.
    QuietLog quiet;
    runner::ResultsStore store(dir, "unit", sig ^ 1, 6);
    EXPECT_FALSE(store.resumed());
    EXPECT_EQ(store.recorded(), 0u);
    store.put(0, 99);
  }
  {
    runner::ResultsStore store(dir, "unit", sig ^ 1, 6);
    EXPECT_TRUE(store.resumed());
    EXPECT_EQ(store.recorded(), 1u);
    EXPECT_EQ(store.get(0).value_or(-1), 99);
  }
  std::filesystem::remove_all(dir, ec);
}

TEST(ResultsStore, SignatureIsOrderSensitive) {
  EXPECT_NE(runner::ResultsStore::signature_of({"a", "b"}),
            runner::ResultsStore::signature_of({"b", "a"}));
  EXPECT_NE(runner::ResultsStore::signature_of({"ab"}),
            runner::ResultsStore::signature_of({"a", "b"}));
}

// -------------------------------------------------------------- selector --

TEST(FaultSelector, SafeModeAfterRetryBudgetAndRecovery) {
  intang::StrategySelector selector{intang::StrategySelector::Config{}};
  const net::IpAddr server = net::make_ip(10, 0, 0, 1);
  const SimTime now = SimTime::from_sec(1);

  for (int i = 0; i < selector.config().retry_budget; ++i) {
    const auto choice = selector.choose_explained(server, now);
    ASSERT_NE(choice.id, strategy::StrategyId::kNone);
    selector.report(server, choice.id, /*success=*/false, now);
  }
  EXPECT_EQ(selector.consecutive_failures(server, now),
            selector.config().retry_budget);

  const auto safe = selector.choose_explained(server, now);
  EXPECT_EQ(safe.id, strategy::StrategyId::kNone);
  EXPECT_EQ(safe.source,
            intang::StrategySelector::Choice::Source::kSafeMode);

  // A successful safe-mode probe clears probation: strategies come back.
  selector.report(server, strategy::StrategyId::kNone, /*success=*/true, now);
  EXPECT_EQ(selector.consecutive_failures(server, now), 0);
  const auto after = selector.choose_explained(server, now);
  EXPECT_NE(after.source,
            intang::StrategySelector::Choice::Source::kSafeMode);
}

TEST(FaultSelector, FailedStrategyCoolsOffAndLadderFailsOver) {
  intang::StrategySelector selector{intang::StrategySelector::Config{}};
  const net::IpAddr server = net::make_ip(10, 0, 0, 2);
  const SimTime now = SimTime::from_sec(1);

  const auto first = selector.choose_explained(server, now);
  selector.report(server, first.id, /*success=*/false, now);

  const auto second = selector.choose_explained(server, now);
  EXPECT_NE(second.id, first.id);
  EXPECT_EQ(second.source,
            intang::StrategySelector::Choice::Source::kFailover);

  // The cool-off expires: the first strategy competes again.
  const SimTime later = now + selector.config().failure_backoff +
                        SimTime::from_sec(1);
  bool first_available = false;
  for (auto id : selector.config().candidates) {
    if (id == first.id) first_available = true;
  }
  EXPECT_TRUE(first_available);
  (void)later;
}

TEST(FaultSelector, SafeModeProbationDecays) {
  intang::StrategySelector::Config cfg;
  cfg.safe_mode_ttl = SimTime::from_sec(10);
  intang::StrategySelector selector{cfg};
  const net::IpAddr server = net::make_ip(10, 0, 0, 3);
  SimTime now = SimTime::from_sec(1);

  for (int i = 0; i < cfg.retry_budget; ++i) {
    const auto choice = selector.choose_explained(server, now);
    selector.report(server, choice.id, false, now);
  }
  EXPECT_EQ(selector.choose_explained(server, now).source,
            intang::StrategySelector::Choice::Source::kSafeMode);

  // The probation counter's TTL elapses without new failures: safe mode
  // ends on its own.
  now = now + cfg.safe_mode_ttl + SimTime::from_sec(1);
  EXPECT_EQ(selector.consecutive_failures(server, now), 0);
  EXPECT_NE(selector.choose_explained(server, now).source,
            intang::StrategySelector::Choice::Source::kSafeMode);
}

// ----------------------------------------------------- grid determinism --

// ------------------------------------------------- workload degradation --

// Satellite contract for --faults= on the prober workload: under an
// active plan the majority-voted battery still recovers the path's ground
// truth, and the vote is deterministic (same options → same findings).
TEST(Faults, ProberMajorityVoteSurvivesFaultPlan) {
  std::string error;
  static const faults::FaultPlan plan =
      faults::parse_fault_plan("dup-corrupt", error);
  ASSERT_TRUE(error.empty()) << error;

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  const Calibration cal = Calibration::standard();
  const auto servers = make_server_population(3, 2017, cal, true);

  ScenarioOptions opt;
  opt.vp = china_vantage_points()[0];
  opt.server = servers[0];
  opt.cal = cal;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.seed = 2017;
  opt.faults = &plan;

  Scenario ground_truth(&rules, opt);
  const bool truth_evolved = !ground_truth.path_runs_old_model();

  const GfwFindings voted = probe_gfw(&rules, opt, 5);
  EXPECT_TRUE(voted.responsive);
  EXPECT_EQ(voted.evolved_model(), truth_evolved);

  const GfwFindings again = probe_gfw(&rules, opt, 5);
  EXPECT_EQ(voted.responsive, again.responsive);
  EXPECT_EQ(voted.creates_tcb_on_synack, again.creates_tcb_on_synack);
  EXPECT_EQ(voted.resyncs_on_second_syn, again.resyncs_on_second_syn);
  EXPECT_EQ(voted.rst_resyncs_after_handshake,
            again.rst_resyncs_after_handshake);
  EXPECT_EQ(voted.fin_ignored, again.fin_ignored);
  EXPECT_EQ(voted.accepts_no_flag_data, again.accepts_no_flag_data);
}

// Tor under a plan: single-byte corruption must degrade the bridge
// fingerprint check to Failure 1 (lenient matcher) instead of flipping a
// working path to "blocked" — on an unfiltered path, INTANG connections
// keep succeeding at least as often as fault-free failures would allow,
// and the whole thing stays deterministic.
TEST(Faults, TorDegradesGracefullyUnderPlan) {
  std::string error;
  static const faults::FaultPlan plan =
      faults::parse_fault_plan("dup-corrupt", error);
  ASSERT_TRUE(error.empty()) << error;

  const VantagePoint* unfiltered = nullptr;
  for (const auto& vp : china_vantage_points()) {
    if (vp.tor_unfiltered_path) unfiltered = &vp;
  }
  ASSERT_NE(unfiltered, nullptr);

  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  ServerSpec bridge;
  bridge.host = "ec2-hidden-bridge";
  bridge.ip = net::make_ip(54, 210, 7, 91);
  bridge.version = tcp::LinuxVersion::k4_4;

  auto session = [&](bool with_faults) {
    intang::StrategySelector selector{intang::StrategySelector::Config{}};
    int successes = 0;
    for (int t = 0; t < 6; ++t) {
      ScenarioOptions opt;
      opt.vp = *unfiltered;
      opt.server = bridge;
      opt.cal = Calibration::standard();
      opt.seed = Rng::mix_seed({2017u, static_cast<u64>(t)});
      if (with_faults) opt.faults = &plan;
      Scenario sc(&rules, opt);
      TorTrialOptions tor;
      tor.use_intang = true;
      tor.shared_selector = &selector;
      const TorTrialResult r = run_tor_trial(sc, tor);
      // Degradation contract: a fault never invents censorship.
      EXPECT_NE(r.outcome, Outcome::kFailure2);
      EXPECT_FALSE(r.bridge_ip_blocked);
      if (r.outcome == Outcome::kSuccess) ++successes;
    }
    return successes;
  };

  const int clean = session(false);
  EXPECT_EQ(clean, 6);  // the unfiltered path reproduces §7.3 fault-free
  const int faulted = session(true);
  EXPECT_GT(faulted, 0);                     // degraded, not dead
  EXPECT_EQ(faulted, session(true));         // and deterministic
}

TEST(Faults, GridDeterministicAcrossJobs) {
  BenchScale scale;
  scale.trials = 3;
  scale.servers = 2;
  scale.seed = 7;
  scale.faults = "chaos";
  const FaultsBench bench(scale);
  const runner::TrialGrid grid = bench.grid();

  auto sweep = [&](int jobs) {
    obs::MetricsRegistry local;
    obs::ScopedMetricsRegistry reg_scope(&local);
    std::vector<intang::StrategySelector> selectors(
        grid.chains(),
        intang::StrategySelector{intang::StrategySelector::Config{}});
    runner::PoolOptions pool;
    pool.jobs = jobs;
    return runner::collect_grid_or(
               grid, pool, Outcome::kTrialError,
               [&](const runner::GridCoord& c, runner::TaskContext&) {
                 return bench.run_trial(c, selectors[grid.chain(c)]).outcome;
               })
        .slots;
  };
  EXPECT_EQ(sweep(1), sweep(2));
}

}  // namespace
}  // namespace ys
