// Experiment-harness tests: vantage points, the server population mix,
// scenario determinism and path-vs-trial seed split, trial classification,
// statistics, and the table renderer.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/stats.h"
#include "exp/table.h"
#include "exp/trial.h"

namespace ys::exp {
namespace {

const gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

// --------------------------------------------------------- vantage points

TEST(Vantage, MatchesPaperPopulation) {
  const auto vps = china_vantage_points();
  ASSERT_EQ(vps.size(), 11u);
  int aliyun = 0;
  int qcloud = 0;
  int unicom = 0;
  int northern = 0;
  int dns_interference = 0;
  for (const auto& vp : vps) {
    switch (vp.provider) {
      case Provider::kAliyun: ++aliyun; break;
      case Provider::kQCloud: ++qcloud; break;
      case Provider::kUnicomSjz:
      case Provider::kUnicomTj: ++unicom; break;
      default: break;
    }
    if (vp.tor_unfiltered_path) ++northern;
    if (vp.dns_path_interference) ++dns_interference;
    EXPECT_TRUE(vp.inside_china);
  }
  EXPECT_EQ(aliyun, 6);   // §3.3
  EXPECT_EQ(qcloud, 3);
  EXPECT_EQ(unicom, 2);
  EXPECT_EQ(northern, 4);          // §7.3: 4 VPs in 3 Northern cities
  EXPECT_EQ(dns_interference, 1);  // Tianjin
}

TEST(Vantage, ForeignPopulation) {
  const auto vps = foreign_vantage_points();
  ASSERT_EQ(vps.size(), 4u);  // US, UK, DE, JP (§7)
  for (const auto& vp : vps) {
    EXPECT_FALSE(vp.inside_china);
    EXPECT_EQ(vp.provider, Provider::kForeign);
  }
}

// ------------------------------------------------------ server population

TEST(Servers, PopulationFollowsCalibration) {
  const Calibration cal = Calibration::standard();
  const auto servers = make_server_population(1000, 7, cal, true);
  ASSERT_EQ(servers.size(), 1000u);

  int v44 = 0;
  int old_stacks = 0;
  int firewalls = 0;
  int lenient = 0;
  for (const auto& s : servers) {
    if (s.version == tcp::LinuxVersion::k4_4) ++v44;
    if (s.version == tcp::LinuxVersion::k2_6_34 ||
        s.version == tcp::LinuxVersion::k2_4_37) {
      ++old_stacks;
    }
    if (s.behind_stateful_fw) ++firewalls;
    if (s.lenient_ack_validation) ++lenient;
  }
  EXPECT_NEAR(v44 / 1000.0, cal.server_linux_4_4, 0.05);
  EXPECT_NEAR(firewalls / 1000.0, cal.server_side_firewall_fraction, 0.04);
  EXPECT_NEAR(lenient / 1000.0, cal.server_accepts_any_ack, 0.04);
  EXPECT_GT(old_stacks, 0);
}

TEST(Servers, DeterministicForSeed) {
  const Calibration cal = Calibration::standard();
  const auto a = make_server_population(50, 7, cal, true);
  const auto b = make_server_population(50, 7, cal, true);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a[i].ip, b[i].ip);
    EXPECT_EQ(a[i].version, b[i].version);
    EXPECT_EQ(a[i].behind_stateful_fw, b[i].behind_stateful_fw);
  }
  const auto c = make_server_population(50, 8, cal, true);
  bool any_difference = false;
  for (std::size_t i = 0; i < 50; ++i) {
    any_difference |= a[i].version != c[i].version ||
                      a[i].behind_stateful_fw != c[i].behind_stateful_fw;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Servers, AlexaRanksInPaperRange) {
  const auto servers =
      make_server_population(77, 7, Calibration::standard(), true);
  EXPECT_EQ(servers.front().alexa_rank, 41);   // §3.3: ranks 41..2091
  EXPECT_LE(servers.back().alexa_rank, 2091);
}

// ----------------------------------------------------------- scenario rig

ScenarioOptions base_options(u64 seed, u64 path_seed = 0) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[1];
  opt.server.host = "s.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = Calibration::standard();
  opt.seed = seed;
  opt.path_seed = path_seed;
  return opt;
}

TEST(Scenario, PathDrawsAreStableAcrossTrials) {
  // Same (vp, server), different trial seeds: path properties identical.
  Scenario a(rules(), base_options(1));
  Scenario b(rules(), base_options(999));
  EXPECT_EQ(a.server_hops(), b.server_hops());
  EXPECT_EQ(a.gfw_position(), b.gfw_position());
  EXPECT_EQ(a.path_runs_old_model(), b.path_runs_old_model());
  EXPECT_EQ(a.knowledge().hop_estimate, b.knowledge().hop_estimate);
}

TEST(Scenario, ExplicitPathSeedOverrides) {
  Scenario a(rules(), base_options(1, 555));
  Scenario b(rules(), base_options(1, 556));
  // Different path seeds should (almost surely) differ in some draw.
  EXPECT_TRUE(a.server_hops() != b.server_hops() ||
              a.gfw_position() != b.gfw_position() ||
              a.knowledge().hop_estimate != b.knowledge().hop_estimate);
}

TEST(Scenario, GfwSitsStrictlyInsidePath) {
  for (u64 seed = 1; seed <= 30; ++seed) {
    Scenario sc(rules(), base_options(1, seed));
    EXPECT_GT(sc.gfw_position(), 0);
    EXPECT_LT(sc.gfw_position(), sc.server_hops());
  }
}

TEST(Scenario, ForeignPathsPutGfwNearServer) {
  const Calibration cal = Calibration::standard();
  for (u64 seed = 1; seed <= 30; ++seed) {
    ScenarioOptions opt = base_options(1, seed);
    opt.vp = foreign_vantage_points()[0];
    Scenario sc(rules(), opt);
    const int gap = sc.server_hops() - sc.gfw_position();
    EXPECT_GE(gap, 1);
    EXPECT_LE(gap, cal.foreign_gfw_server_gap_max);
  }
}

TEST(Trial, FullyDeterministicForSameSeeds) {
  auto run_once = [&](u64 seed) {
    Scenario sc(rules(), base_options(seed));
    HttpTrialOptions http;
    http.with_keyword = true;
    http.strategy = strategy::StrategyId::kTeardownRstTtl;
    return run_http_trial(sc, http);
  };
  for (u64 seed = 1; seed <= 10; ++seed) {
    const TrialResult a = run_once(seed);
    const TrialResult b = run_once(seed);
    EXPECT_EQ(a.outcome, b.outcome) << "seed " << seed;
    EXPECT_EQ(a.gfw_reset_seen, b.gfw_reset_seen) << "seed " << seed;
  }
}

// ----------------------------------------------------- reset classification

TEST(Classification, GfwResetByTtlDeviation) {
  net::Packet rst = net::make_tcp_packet(
      net::FourTuple{net::make_ip(1, 1, 1, 1), 80, net::make_ip(2, 2, 2, 2),
                     4000},
      net::TcpFlags::only_rst(), 1, 0);
  rst.ip.ttl = 60;
  EXPECT_TRUE(looks_like_gfw_reset(rst, u8{47}));   // 13 hops off
  EXPECT_FALSE(looks_like_gfw_reset(rst, u8{59}));  // within server range
  EXPECT_TRUE(looks_like_gfw_reset(rst, std::nullopt));  // no reference
  net::Packet not_rst = rst;
  not_rst.tcp->flags = net::TcpFlags::only_ack();
  EXPECT_FALSE(looks_like_gfw_reset(not_rst, u8{47}));
}

// ------------------------------------------------------------------ stats

TEST(Stats, TallyRates) {
  RateTally tally;
  tally.add(Outcome::kSuccess);
  tally.add(Outcome::kSuccess);
  tally.add(Outcome::kFailure1);
  tally.add(Outcome::kFailure2);
  EXPECT_EQ(tally.total(), 4);
  EXPECT_DOUBLE_EQ(tally.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(tally.failure1_rate(), 0.25);
  EXPECT_DOUBLE_EQ(tally.failure2_rate(), 0.25);

  RateTally other;
  other.add(Outcome::kSuccess);
  tally.merge(other);
  EXPECT_EQ(tally.total(), 5);
  EXPECT_EQ(tally.success, 3);
}

TEST(Stats, EmptyTallyIsSafe) {
  RateTally tally;
  EXPECT_EQ(tally.total(), 0);
  EXPECT_DOUBLE_EQ(tally.success_rate(), 0.0);
}

TEST(Stats, Aggregate) {
  const MinMaxAvg agg = aggregate({0.2, 0.8, 0.5});
  EXPECT_DOUBLE_EQ(agg.min, 0.2);
  EXPECT_DOUBLE_EQ(agg.max, 0.8);
  EXPECT_DOUBLE_EQ(agg.avg, 0.5);
  const MinMaxAvg empty = aggregate({});
  EXPECT_DOUBLE_EQ(empty.avg, 0.0);
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumnsAndRendersHeader) {
  TextTable table({"Name", "Rate"});
  table.add_row({"short", "1%"});
  table.add_row({"a much longer name", "100.0%"});
  const std::string out = table.render();
  // All lines are equally wide.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    if (width == 0) width = eol - pos;
    EXPECT_EQ(eol - pos, width);
    pos = eol + 1;
  }
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(pct(0.937), "93.7%");
  EXPECT_EQ(pct(1.0), "100.0%");
  EXPECT_EQ(pct(0.0), "0.0%");
  EXPECT_EQ(pct(0.12345, 2), "12.35%");
}

TEST(Outcome, Names) {
  EXPECT_STREQ(to_string(Outcome::kSuccess), "success");
  EXPECT_STREQ(to_string(Outcome::kFailure1), "failure-1");
  EXPECT_STREQ(to_string(Outcome::kFailure2), "failure-2");
}

}  // namespace
}  // namespace ys::exp
