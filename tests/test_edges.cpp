// Remaining edge paths: outside-China direction trials, the DNS forwarder's
// reconnection after a reset, TCP close corner cases (close-before-
// establish, close-with-pending-data, simultaneous close), and ephemeral
// port allocation.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/trial.h"
#include "intang/intang.h"

namespace ys {
namespace {

using namespace ys::exp;

const gfw::DetectionRules* rules() {
  static gfw::DetectionRules r = gfw::DetectionRules::standard();
  return &r;
}

// ------------------------------------------------------- foreign direction

TEST(ForeignDirection, Md5StrategyEvadesNearServerGfw) {
  // Outside-China probes put the GFW within a few hops of the server; the
  // MD5-based prefill is TTL-free and keeps working (§7.1 / Table 4).
  int successes = 0;
  for (u64 seed = 1; seed <= 10; ++seed) {
    ScenarioOptions opt;
    opt.vp = foreign_vantage_points()[0];
    opt.server.host = "cn-site.example";
    opt.server.ip = net::make_ip(101, 6, 0, 1);
    opt.cal = Calibration::standard();
    opt.cal.detection_miss = 0.0;
    opt.cal.per_link_loss = 0.0;
    opt.cal.ttl_estimate_error_prob_foreign = 0.0;
    opt.cal.old_model_fraction = 0.0;
    opt.cal.server_side_firewall_fraction = 0.0;
    opt.seed = seed;
    opt.path_seed = seed + 500;
    Scenario sc(rules(), opt);
    EXPECT_LE(sc.server_hops() - sc.gfw_position(), 5);

    HttpTrialOptions http;
    http.with_keyword = true;
    http.strategy = strategy::StrategyId::kImprovedInOrder;
    if (run_http_trial(sc, http).outcome == Outcome::kSuccess) ++successes;
  }
  EXPECT_EQ(successes, 10);
}

TEST(ForeignDirection, TtlStrategyFailsWhenGfwBehindInsertionHorizon) {
  // Construct the §7.1 pathology explicitly: the GFW sits S-2 from the
  // client but the (stale) hop estimate is short by 2, so TTL-limited
  // insertion packets die before reaching it → Failure 2.
  int failures2 = 0;
  int tried = 0;
  for (u64 seed = 1; seed <= 30 && tried < 8; ++seed) {
    ScenarioOptions opt;
    opt.vp = foreign_vantage_points()[1];
    opt.server.host = "cn-site.example";
    opt.server.ip = net::make_ip(101, 6, 0, 2);
    opt.cal = Calibration::standard();
    opt.cal.detection_miss = 0.0;
    opt.cal.per_link_loss = 0.0;
    opt.cal.ttl_estimate_error_prob_foreign = 1.0;  // estimate always stale
    opt.cal.old_model_fraction = 0.0;
    opt.cal.rst_resync_established = 0.0;
    opt.cal.rst_resync_handshake = 0.0;
    opt.cal.server_side_firewall_fraction = 0.0;
    opt.seed = seed;
    opt.path_seed = seed + 900;
    Scenario sc(rules(), opt);
    // Only count paths where the error is negative (TTL short of the GFW).
    if (sc.knowledge().hop_estimate >= sc.server_hops()) continue;
    if (sc.knowledge().insertion_ttl() >= sc.gfw_position()) continue;
    ++tried;

    HttpTrialOptions http;
    http.with_keyword = true;
    http.strategy = strategy::StrategyId::kImprovedTeardown;
    if (run_http_trial(sc, http).outcome == Outcome::kFailure2) ++failures2;
  }
  EXPECT_GT(tried, 0);
  EXPECT_EQ(failures2, tried);
}

// -------------------------------------------------- DNS forwarder restart

TEST(DnsForwarder, ReconnectsAfterResolverConnectionDies) {
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[0];
  opt.server.host = "resolver";
  opt.server.ip = net::make_ip(216, 146, 35, 35);
  opt.cal = Calibration::standard();
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.seed = 61;
  Scenario sc(rules(), opt);

  // TCP DNS service plus a kill switch: the server aborts connections on
  // demand to simulate a resolver dropping idle clients.
  std::vector<tcp::TcpEndpoint*> server_conns;
  auto offsets =
      std::make_shared<std::unordered_map<const void*, std::size_t>>();
  sc.server().listen(53, [&server_conns, offsets](tcp::TcpEndpoint& ep,
                                                  ByteView) {
    if (std::find(server_conns.begin(), server_conns.end(), &ep) ==
        server_conns.end()) {
      server_conns.push_back(&ep);
    }
    std::size_t& off = (*offsets)[&ep];
    for (const auto& msg : app::dns_tcp_extract(ep.received_stream(), &off)) {
      if (!msg.is_response) {
        ep.send_data(app::dns_tcp_frame(
            app::make_response(msg, net::make_ip(1, 2, 3, 4))));
      }
    }
  });

  intang::Intang::Config cfg;
  cfg.knowledge = sc.knowledge();
  cfg.tcp_dns_resolver = opt.server.ip;
  intang::Intang intang(sc.client(), cfg, sc.fork_rng());

  int answers = 0;
  sc.client().bind_udp(5353, [&answers](const net::FourTuple&, ByteView) {
    ++answers;
  });
  const net::FourTuple q{sc.client().config().address, 5353, opt.server.ip,
                         53};
  sc.client().send_udp(q, app::dns_encode(app::make_query(1, "example.org")));
  sc.run();
  ASSERT_EQ(answers, 1);
  ASSERT_EQ(server_conns.size(), 1u);

  // Kill the resolver-side connection; the client endpoint learns via RST.
  server_conns[0]->abort();
  sc.run();

  // The next query must transparently open a fresh TCP connection.
  sc.client().send_udp(q, app::dns_encode(app::make_query(2, "example.org")));
  sc.run();
  EXPECT_EQ(answers, 2);
  EXPECT_GE(server_conns.size(), 2u);
  ASSERT_NE(intang.dns_forwarder(), nullptr);
  EXPECT_EQ(intang.dns_forwarder()->queries_converted(), 2);
}

// --------------------------------------------------------- TCP close edges

struct Pair {
  net::EventLoop loop;
  net::Path path;
  tcp::Host client;
  tcp::Host server;

  Pair()
      : path(loop, Rng(3), cfg_path(), nullptr),
        client(cfg_host("c", net::make_ip(10, 0, 0, 1),
                        tcp::HostSide::kClient),
               path, loop, Rng(5)),
        server(cfg_host("s", net::make_ip(9, 9, 9, 9),
                        tcp::HostSide::kServer),
               path, loop, Rng(7)) {
    client.attach();
    server.attach();
  }
  static net::PathConfig cfg_path() {
    net::PathConfig c;
    c.server_hops = 4;
    c.jitter_us = 0;
    return c;
  }
  static tcp::Host::Config cfg_host(const char* n, net::IpAddr ip,
                                    tcp::HostSide side) {
    tcp::Host::Config c;
    c.name = n;
    c.address = ip;
    c.side = side;
    return c;
  }
};

TEST(TcpClose, CloseBeforeEstablishDefersUntilHandshake) {
  Pair net;
  net.server.listen(80, [](tcp::TcpEndpoint&, ByteView) {});
  tcp::TcpEndpoint& conn = net.client.connect(net.server.config().address,
                                              80, 0);
  conn.close();  // still SYN_SENT: queued
  EXPECT_EQ(conn.state(), tcp::TcpState::kSynSent);
  net.loop.run();
  // Handshake completed, then the queued FIN fired and was acked.
  EXPECT_TRUE(conn.state() == tcp::TcpState::kFinWait2 ||
              conn.state() == tcp::TcpState::kTimeWait)
      << tcp::to_string(conn.state());
}

TEST(TcpClose, CloseWithPendingDataFlushesFirst) {
  Pair net;
  Bytes got;
  net.server.listen(80, [&got](tcp::TcpEndpoint&, ByteView d) {
    got.insert(got.end(), d.begin(), d.end());
  });
  tcp::TcpEndpoint& conn = net.client.connect(net.server.config().address,
                                              80, 0);
  net.loop.run();
  ASSERT_EQ(conn.state(), tcp::TcpState::kEstablished);
  conn.send_data(to_bytes("last words"));
  conn.close();
  net.loop.run();
  EXPECT_EQ(ys::to_string(got), "last words");
  EXPECT_NE(conn.state(), tcp::TcpState::kEstablished);
}

TEST(TcpClose, FullBidirectionalCloseReachesQuiescence) {
  Pair net;
  tcp::TcpEndpoint* server_side = nullptr;
  net.server.listen(80, [&server_side](tcp::TcpEndpoint& ep, ByteView) {
    server_side = &ep;
  });
  tcp::TcpEndpoint& conn = net.client.connect(net.server.config().address,
                                              80, 0);
  net.loop.run();
  conn.send_data(to_bytes("x"));
  net.loop.run();
  ASSERT_NE(server_side, nullptr);

  conn.close();
  net.loop.run();
  EXPECT_EQ(server_side->state(), tcp::TcpState::kCloseWait);
  server_side->close();
  net.loop.run();
  EXPECT_EQ(server_side->state(), tcp::TcpState::kClosed);
  EXPECT_EQ(conn.state(), tcp::TcpState::kTimeWait);
}

TEST(Host, EphemeralPortsAreDistinct) {
  Pair net;
  net.server.listen(80, [](tcp::TcpEndpoint&, ByteView) {});
  std::set<u16> ports;
  for (int i = 0; i < 16; ++i) {
    ports.insert(net.client.connect(net.server.config().address, 80, 0)
                     .tuple()
                     .src_port);
  }
  EXPECT_EQ(ports.size(), 16u);
}

}  // namespace
}  // namespace ys
