// ys::supervisor — shard supervision, checkpoint hardening, and merge
// coverage.
//
// The process-level suites (SupervisorProcess) drive supervise() with
// /bin/sh children so crash, hang, restart-with-backoff, and degradation
// are exercised against real fork/exec/waitpid mechanics without paying
// for a fleet sweep per attempt. The merge suites (SupervisorMerge) run
// real in-process shard sweeps and assert the core contract: a sharded
// sweep's merged slots are bit-identical to an unsharded one, and a
// missing shard degrades into honestly-labelled partial coverage.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "faults/fault_plan.h"
#include "fleet/fleet.h"
#include "fleet/fleet_config.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/timeline_export.h"
#include "runner/results_store.h"
#include "supervisor/shard_child.h"
#include "supervisor/supervisor.h"

namespace ys {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(std::string name) : path(std::move(name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spew(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

void append_raw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << text;
}

int count_events(const supervisor::SupervisorResult& r,
                 supervisor::ShardEvent::Kind kind) {
  int n = 0;
  for (const auto& e : r.events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// ------------------------------------------------------------ partitioning

TEST(SupervisorPartition, EvenSplitCoversAxisContiguously) {
  const auto parts = supervisor::partition_vantages(8, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts.front().vantage_begin, 0u);
  EXPECT_EQ(parts.back().vantage_end, 8u);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].shard, static_cast<int>(i));
    EXPECT_EQ(parts[i].vantage_end - parts[i].vantage_begin, 2u);
    if (i > 0) {
      EXPECT_EQ(parts[i].vantage_begin, parts[i - 1].vantage_end);
    }
  }
}

TEST(SupervisorPartition, MoreShardsThanVantagesRenumbersDensely) {
  const auto parts = supervisor::partition_vantages(3, 8);
  ASSERT_EQ(parts.size(), 3u);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].shard, static_cast<int>(i));
    EXPECT_EQ(parts[i].vantage_end - parts[i].vantage_begin, 1u);
  }
}

TEST(SupervisorPartition, NonPositiveShardCountMeansOneShard) {
  for (int shards : {0, -3}) {
    const auto parts = supervisor::partition_vantages(5, shards);
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].vantage_begin, 0u);
    EXPECT_EQ(parts[0].vantage_end, 5u);
  }
}

TEST(SupervisorPartition, ZeroVantagesYieldsNoShards) {
  EXPECT_TRUE(supervisor::partition_vantages(0, 4).empty());
}

// The CLI and the merge both treat parts.size() as the canonical shard
// count: re-partitioning with the dense count must reproduce the same
// partition even when empty slices were dropped.
TEST(SupervisorPartition, DenseCountIsCanonical) {
  const std::pair<std::size_t, int> cases[] = {
      {4, 8}, {5, 3}, {1, 4}, {7, 7}, {12, 5}, {2, 16}};
  for (const auto& [vantages, shards] : cases) {
    const auto parts = supervisor::partition_vantages(vantages, shards);
    const auto again = supervisor::partition_vantages(
        vantages, static_cast<int>(parts.size()));
    ASSERT_EQ(again.size(), parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      EXPECT_EQ(again[i].shard, parts[i].shard);
      EXPECT_EQ(again[i].vantage_begin, parts[i].vantage_begin);
      EXPECT_EQ(again[i].vantage_end, parts[i].vantage_end);
    }
  }
}

// ------------------------------------------------------------ chaos clauses

TEST(SupervisorChaos, ParsesInlineShardClauses) {
  std::string error;
  const faults::FaultPlan plan = faults::parse_fault_plan(
      "shard-kill:shard=1,after=30;shard-stall:shard=0,after=40,attempts=2;"
      "shard-slow-heartbeat:shard=2,factor=3",
      error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(plan.shard_chaos.size(), 3u);
  EXPECT_FALSE(plan.empty());

  const auto& kill = plan.shard_chaos[0];
  EXPECT_EQ(kill.kind, faults::ShardChaos::Kind::kKill);
  EXPECT_EQ(kill.shard, 1);
  EXPECT_EQ(kill.after, 30);
  EXPECT_EQ(kill.attempts, 1);  // default: misbehave on the first attempt

  const auto& stall = plan.shard_chaos[1];
  EXPECT_EQ(stall.kind, faults::ShardChaos::Kind::kStall);
  EXPECT_EQ(stall.shard, 0);
  EXPECT_EQ(stall.attempts, 2);

  const auto& slow = plan.shard_chaos[2];
  EXPECT_EQ(slow.kind, faults::ShardChaos::Kind::kSlowHeartbeat);
  EXPECT_DOUBLE_EQ(slow.factor, 3.0);
}

TEST(SupervisorChaos, ClauseDefaultsAreSeeded) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("shard-kill:attempts=2", error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(plan.shard_chaos.size(), 1u);
  EXPECT_EQ(plan.shard_chaos[0].shard, 0);
  // after < 0 = derive the trigger point from the sweep seed.
  EXPECT_LT(plan.shard_chaos[0].after, 0);
  EXPECT_EQ(plan.shard_chaos[0].attempts, 2);
}

TEST(SupervisorChaos, SummaryNamesEveryClause) {
  std::string error;
  const faults::FaultPlan plan = faults::parse_fault_plan(
      "shard-kill:shard=1,after=30;shard-stall:shard=0", error);
  ASSERT_TRUE(error.empty()) << error;
  const std::string s = plan.summary();
  EXPECT_NE(s.find("shard-kill[shard=1 after=30 x1]"), std::string::npos) << s;
  EXPECT_NE(s.find("shard-stall[shard=0 after=seeded x1]"), std::string::npos)
      << s;
}

TEST(SupervisorChaos, RejectsUnknownShardClause) {
  std::string error;
  const faults::FaultPlan plan =
      faults::parse_fault_plan("shard-explode:shard=0", error);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(plan.empty());
}

TEST(SupervisorChaos, JsonShardChaosRoundTrip) {
  TempDir dir("test_supervisor_chaos.tmp");
  const std::string path = dir.path + "/chaos.json";
  spew(path,
       "{\"shard_chaos\":[{\"kind\":\"stall\",\"shard\":1,\"after\":12,"
       "\"attempts\":2},{\"kind\":\"slow-heartbeat\",\"factor\":2.5}]}");
  std::string error;
  const faults::FaultPlan plan = faults::parse_fault_plan("@" + path, error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(plan.shard_chaos.size(), 2u);
  EXPECT_EQ(plan.shard_chaos[0].kind, faults::ShardChaos::Kind::kStall);
  EXPECT_EQ(plan.shard_chaos[0].shard, 1);
  EXPECT_EQ(plan.shard_chaos[0].after, 12);
  EXPECT_EQ(plan.shard_chaos[1].kind,
            faults::ShardChaos::Kind::kSlowHeartbeat);
  EXPECT_DOUBLE_EQ(plan.shard_chaos[1].factor, 2.5);

  spew(path, "{\"shard_chaos\":[{\"kind\":\"explode\"}]}");
  const faults::FaultPlan bad = faults::parse_fault_plan("@" + path, error);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(bad.empty());
}

// ----------------------------------------------- checkpoint-store hardening

TEST(SupervisorStore, TornTailDroppedAndRewritten) {
  TempDir dir("test_supervisor_store_torn.tmp");
  const u64 sig = runner::ResultsStore::signature_of({"torn", "tail"});
  std::string path;
  {
    runner::ResultsStore st(dir.path, "bench", sig, 20);
    for (std::size_t s = 0; s < 10; ++s) {
      st.put(s, static_cast<i64>(100 + s));
    }
    path = st.path();
  }
  // Tear the final record the way a kill mid-write does: "9 109\n" loses
  // its last bytes, leaving a value-truncated line with no newline.
  std::string text = slurp(path);
  ASSERT_GT(text.size(), 3u);
  text.resize(text.size() - 3);
  spew(path, text);
  {
    runner::ResultsStore st(dir.path, "bench", sig, 20);
    EXPECT_TRUE(st.resumed());
    EXPECT_EQ(st.recorded(), 9u);
    EXPECT_FALSE(st.has(9));  // the torn slot re-runs
    EXPECT_EQ(st.get(8).value_or(-1), 108);
  }
  // The reload rewrote a verified-only file: a third open is clean.
  {
    runner::ResultsStore st(dir.path, "bench", sig, 20);
    EXPECT_EQ(st.recorded(), 9u);
    EXPECT_EQ(slurp(path).find("9 1"), std::string::npos);
  }
}

TEST(SupervisorStore, GarbageLineDropsUnverifiableTail) {
  TempDir dir("test_supervisor_store_garbage.tmp");
  const u64 sig = runner::ResultsStore::signature_of({"garbage"});
  std::string path;
  {
    runner::ResultsStore st(dir.path, "bench", sig, 20);
    for (std::size_t s = 0; s < 5; ++s) st.put(s, static_cast<i64>(s));
    path = st.path();
  }
  // A corrupt line invalidates everything after it, even well-formed
  // records — anything past a torn write is unverifiable.
  append_raw(path, "not a record\n15 7\n");
  runner::ResultsStore st(dir.path, "bench", sig, 20);
  EXPECT_EQ(st.recorded(), 5u);
  EXPECT_FALSE(st.has(15));
}

TEST(SupervisorStore, OutOfRangeSlotDropsTail) {
  TempDir dir("test_supervisor_store_range.tmp");
  const u64 sig = runner::ResultsStore::signature_of({"range"});
  std::string path;
  {
    runner::ResultsStore st(dir.path, "bench", sig, 20);
    st.put(0, 1);
    st.put(1, 2);
    path = st.path();
  }
  append_raw(path, "999 5\n2 3\n");
  runner::ResultsStore st(dir.path, "bench", sig, 20);
  EXPECT_EQ(st.recorded(), 2u);
  EXPECT_FALSE(st.has(2));
}

TEST(SupervisorStore, HeaderMismatchStartsFresh) {
  TempDir dir("test_supervisor_store_header.tmp");
  const u64 sig_a = runner::ResultsStore::signature_of({"run", "a"});
  const u64 sig_b = runner::ResultsStore::signature_of({"run", "b"});
  {
    runner::ResultsStore st(dir.path, "bench", sig_a, 20);
    st.put(0, 42);
  }
  runner::ResultsStore st(dir.path, "bench", sig_b, 20);
  EXPECT_FALSE(st.resumed());
  EXPECT_EQ(st.recorded(), 0u);
}

TEST(SupervisorStore, LiveOwnerConflicts) {
  TempDir dir("test_supervisor_store_lock.tmp");
  const u64 sig = runner::ResultsStore::signature_of({"lock"});
  {
    runner::ResultsStore owner(dir.path, "bench", sig, 20);
    ASSERT_FALSE(owner.conflict());
    owner.put(0, 7);
    // Second opener while the owner lives: hard conflict, inert store.
    runner::ResultsStore intruder(dir.path, "bench", sig, 20);
    EXPECT_TRUE(intruder.conflict());
    EXPECT_EQ(intruder.conflict_pid(), static_cast<long>(::getpid()));
    EXPECT_EQ(intruder.recorded(), 0u);  // nothing loaded
    intruder.put(1, 8);                  // memory-only, never hits the file
  }
  // Owner gone (lock unlinked): a sequential reopen resumes cleanly and
  // never saw the intruder's write.
  runner::ResultsStore later(dir.path, "bench", sig, 20);
  EXPECT_FALSE(later.conflict());
  EXPECT_TRUE(later.resumed());
  EXPECT_EQ(later.recorded(), 1u);
  EXPECT_FALSE(later.has(1));
}

TEST(SupervisorStore, StaleLockFromDeadPidIsStolen) {
  TempDir dir("test_supervisor_store_stale.tmp");
  const u64 sig = runner::ResultsStore::signature_of({"stale"});
  // Pid far above any kernel pid_max: guaranteed dead.
  spew(dir.path + "/bench.results.lock", "pid 2000000000 sig=0\n");
  runner::ResultsStore st(dir.path, "bench", sig, 20);
  EXPECT_FALSE(st.conflict());
  st.put(0, 1);
  EXPECT_TRUE(st.has(0));
  // The stolen lock now carries our pid.
  EXPECT_NE(slurp(st.lock_path()).find("pid " + std::to_string(::getpid())),
            std::string::npos);
}

TEST(SupervisorStore, ReadOnlyReaderIgnoresLiveLock) {
  TempDir dir("test_supervisor_store_ro.tmp");
  const u64 sig = runner::ResultsStore::signature_of({"ro"});
  runner::ResultsStore owner(dir.path, "bench", sig, 20);
  owner.put(3, 33);
  runner::ResultsStore reader(dir.path, "bench", sig, 20,
                              runner::ResultsStore::Mode::kReadOnly);
  EXPECT_FALSE(reader.conflict());
  EXPECT_EQ(reader.get(3).value_or(-1), 33);
  // And the owner keeps working — the reader took no lock.
  owner.put(4, 44);
  EXPECT_TRUE(owner.has(4));
}

// --------------------------------------------------- process supervision

TEST(SupervisorProcess, HealthyShardsRunOnceAndFinish) {
  TempDir dir("test_supervisor_proc_ok.tmp");
  supervisor::SupervisorOptions opt;
  opt.max_restarts = 1;
  opt.heartbeat_seconds = 0.05;
  opt.resume_dir = dir.path;
  const auto build = [](const supervisor::ShardPartition&, int,
                        int fd) -> std::vector<std::string> {
    char script[160];
    std::snprintf(script, sizeof(script),
                  "printf 'HB 1 3\\nHB 2 3\\nHB 3 3\\n' >&%d; exit 0", fd);
    return {"/bin/sh", "-c", script};
  };
  const auto res =
      supervisor::supervise(supervisor::partition_vantages(2, 2), opt, build);
  EXPECT_TRUE(res.all_complete());
  EXPECT_EQ(res.degraded_count(), 0);
  EXPECT_EQ(res.restart_count(), 0);
  ASSERT_EQ(res.shards.size(), 2u);
  for (const auto& s : res.shards) {
    EXPECT_EQ(s.state, supervisor::ShardStatus::State::kDone);
    EXPECT_EQ(s.attempts, 1);
    EXPECT_EQ(s.done, 3u);
    EXPECT_EQ(s.total, 3u);
    EXPECT_FALSE(s.progress.empty());
  }
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kSpawn), 2);
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kDone), 2);

  // The manifest landed on disk as valid JSON for `yourstate shard-status`.
  const std::string manifest = slurp(dir.path + "/supervisor-state.json");
  EXPECT_NE(manifest.find("ys.supervisor.v1"), std::string::npos);
  EXPECT_NE(manifest.find("\"state\":\"done\""), std::string::npos);
  EXPECT_TRUE(json::parse(manifest).has_value());
}

TEST(SupervisorProcess, CrashRestartsWithBackoffThenCompletes) {
  supervisor::SupervisorOptions opt;
  opt.max_restarts = 2;
  opt.heartbeat_seconds = 0.05;
  opt.backoff_base_seconds = 0.01;
  const auto build = [](const supervisor::ShardPartition&, int attempt,
                        int fd) -> std::vector<std::string> {
    char script[160];
    if (attempt == 0) {
      std::snprintf(script, sizeof(script), "exit 9");
    } else {
      std::snprintf(script, sizeof(script), "printf 'HB 4 4\\n' >&%d; exit 0",
                    fd);
    }
    return {"/bin/sh", "-c", script};
  };
  const auto res =
      supervisor::supervise(supervisor::partition_vantages(1, 1), opt, build);
  EXPECT_TRUE(res.all_complete());
  ASSERT_EQ(res.shards.size(), 1u);
  EXPECT_EQ(res.shards[0].attempts, 2);
  EXPECT_EQ(res.restart_count(), 1);
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kCrash), 1);
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kRestart), 1);
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kDone), 1);
}

TEST(SupervisorProcess, HangIsKilledAndRestarted) {
  supervisor::SupervisorOptions opt;
  opt.max_restarts = 2;
  opt.heartbeat_seconds = 0.05;
  opt.grace = 3.0;  // hang deadline at 0.15 s of silence
  opt.backoff_base_seconds = 0.01;
  const auto build = [](const supervisor::ShardPartition&, int attempt,
                        int fd) -> std::vector<std::string> {
    char script[160];
    if (attempt == 0) {
      // One heartbeat, then wedge. `exec` so the SIGKILL hits the sleeper
      // itself, not just its shell.
      std::snprintf(script, sizeof(script),
                    "printf 'HB 1 4\\n' >&%d; exec sleep 30", fd);
    } else {
      std::snprintf(script, sizeof(script), "printf 'HB 4 4\\n' >&%d; exit 0",
                    fd);
    }
    return {"/bin/sh", "-c", script};
  };
  const auto res =
      supervisor::supervise(supervisor::partition_vantages(1, 1), opt, build);
  EXPECT_TRUE(res.all_complete());
  EXPECT_EQ(res.restart_count(), 1);
  EXPECT_GE(count_events(res, supervisor::ShardEvent::Kind::kHang), 1);
}

TEST(SupervisorProcess, ZeroBudgetDegradesHonestly) {
  TempDir dir("test_supervisor_proc_degraded.tmp");
  supervisor::SupervisorOptions opt;
  opt.max_restarts = 0;
  opt.heartbeat_seconds = 0.05;
  opt.resume_dir = dir.path;
  const auto build = [](const supervisor::ShardPartition&, int,
                        int) -> std::vector<std::string> {
    return {"/bin/sh", "-c", "exit 7"};
  };
  const auto res =
      supervisor::supervise(supervisor::partition_vantages(1, 1), opt, build);
  EXPECT_FALSE(res.all_complete());
  EXPECT_EQ(res.degraded_count(), 1);
  ASSERT_EQ(res.shards.size(), 1u);
  EXPECT_EQ(res.shards[0].state, supervisor::ShardStatus::State::kDegraded);
  EXPECT_EQ(res.shards[0].attempts, 1);  // one attempt, no retries
  EXPECT_NE(res.shards[0].exit_status, 0);
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kCrash), 1);
  EXPECT_EQ(count_events(res, supervisor::ShardEvent::Kind::kDegraded), 1);
  EXPECT_NE(slurp(dir.path + "/supervisor-state.json")
                .find("\"state\":\"degraded\""),
            std::string::npos);
}

// ------------------------------------------------------- merge + coverage

fleet::FleetConfig small_fleet() {
  std::string error;
  const fleet::FleetConfig cfg = fleet::parse_fleet_config(
      "clients=3;flows=12;servers=3;vantages=2;arrival=40;churn=0.1", error);
  EXPECT_TRUE(error.empty()) << error;
  return cfg;
}

TEST(SupervisorMerge, ShardSignaturesAreCoordinateKeyed) {
  const fleet::FleetConfig cfg = small_fleet();
  EXPECT_NE(supervisor::shard_signature(cfg, 0, 2),
            supervisor::shard_signature(cfg, 1, 2));
  EXPECT_NE(supervisor::shard_signature(cfg, 0, 2),
            supervisor::shard_signature(cfg, 0, 3));
  EXPECT_EQ(supervisor::shard_bench_name(1), "fleet-shard-1");
}

TEST(SupervisorMerge, BadShardSpecRejected) {
  TempDir dir("test_supervisor_merge_badspec.tmp");
  supervisor::FleetShardOptions opt;
  opt.cfg = small_fleet();
  opt.resume_dir = dir.path;
  opt.shard = 5;
  opt.shards = 2;
  EXPECT_EQ(supervisor::run_shard_child(opt), 2);
}

TEST(SupervisorMerge, ConflictingStoreOwnerRejected) {
  TempDir dir("test_supervisor_merge_conflict.tmp");
  const fleet::FleetConfig cfg = small_fleet();
  const fleet::Fleet fl(cfg);
  runner::ResultsStore holder(dir.path, supervisor::shard_bench_name(0),
                              supervisor::shard_signature(cfg, 0, 2),
                              fl.grid().total());
  ASSERT_FALSE(holder.conflict());
  supervisor::FleetShardOptions opt;
  opt.cfg = cfg;
  opt.resume_dir = dir.path;
  opt.shard = 0;
  opt.shards = 2;
  EXPECT_EQ(supervisor::run_shard_child(opt), 3);
}

TEST(SupervisorMerge, ShardedSlotsMatchUnsharded) {
  const fleet::FleetConfig cfg = small_fleet();
  const fleet::Fleet fl(cfg);
  TempDir one("test_supervisor_merge_one.tmp");
  TempDir two("test_supervisor_merge_two.tmp");
  obs::MetricsRegistry scratch;
  {
    obs::ScopedMetricsRegistry scope(&scratch);
    supervisor::FleetShardOptions opt;
    opt.cfg = cfg;
    opt.resume_dir = one.path;
    opt.shard = 0;
    opt.shards = 1;
    ASSERT_EQ(supervisor::run_shard_child(opt), 0);
    for (int s = 0; s < 2; ++s) {
      supervisor::FleetShardOptions so;
      so.cfg = cfg;
      so.resume_dir = two.path;
      so.shard = s;
      so.shards = 2;
      ASSERT_EQ(supervisor::run_shard_child(so), 0);
    }
  }
  const auto ma = supervisor::merge_shard_stores(fl, one.path, 1);
  const auto mb = supervisor::merge_shard_stores(fl, two.path, 2);
  EXPECT_EQ(ma.missing, 0u);
  EXPECT_EQ(mb.missing, 0u);
  ASSERT_EQ(ma.slots.size(), fl.grid().total());
  EXPECT_EQ(ma.slots, mb.slots);  // shard count cannot change any result

  const fleet::Fleet::Report rep = fl.analyze(mb.slots);
  EXPECT_EQ(rep.total_flows, fl.grid().total());
  EXPECT_EQ(rep.missing_flows, 0u);
  EXPECT_DOUBLE_EQ(rep.coverage(), 1.0);
}

TEST(SupervisorMerge, MissingShardLeavesLabeledHoles) {
  const fleet::FleetConfig cfg = small_fleet();
  const fleet::Fleet fl(cfg);
  const runner::TrialGrid grid = fl.grid();
  TempDir dir("test_supervisor_merge_holes.tmp");
  obs::MetricsRegistry scratch;
  {
    obs::ScopedMetricsRegistry scope(&scratch);
    supervisor::FleetShardOptions opt;
    opt.cfg = cfg;
    opt.resume_dir = dir.path;
    opt.shard = 0;
    opt.shards = 2;  // shard 1 never runs: a permanently degraded shard
    ASSERT_EQ(supervisor::run_shard_child(opt), 0);
  }
  const auto parts = supervisor::partition_vantages(grid.vantages, 2);
  ASSERT_EQ(parts.size(), 2u);
  const auto merge = supervisor::merge_shard_stores(fl, dir.path, 2);
  const std::size_t hole_begin = parts[1].vantage_begin * grid.trials;
  EXPECT_EQ(merge.missing, grid.total() - hole_begin);
  ASSERT_EQ(merge.missing_per_shard.size(), 2u);
  EXPECT_EQ(merge.missing_per_shard[0], 0u);
  EXPECT_EQ(merge.missing_per_shard[1], merge.missing);
  for (std::size_t s = 0; s < merge.slots.size(); ++s) {
    if (s < hole_begin) {
      EXPECT_GE(merge.slots[s], 0) << "slot " << s;
    } else {
      EXPECT_LT(merge.slots[s], 0) << "slot " << s;
    }
  }

  const fleet::Fleet::Report rep = fl.analyze(merge.slots);
  EXPECT_EQ(rep.missing_flows, merge.missing);
  EXPECT_LT(rep.coverage(), 1.0);
  EXPECT_GT(rep.coverage(), 0.0);
  ASSERT_EQ(rep.vantages.size(), grid.vantages);
  EXPECT_EQ(rep.vantages[0].missing, 0u);
  EXPECT_GT(rep.vantages[1].missing, 0u);
  EXPECT_NE(rep.render().find("PARTIAL COVERAGE"), std::string::npos);
}

TEST(SupervisorMerge, RebuildTelemetryMatchesLiveCounters) {
  const fleet::FleetConfig cfg = small_fleet();
  const fleet::Fleet fl(cfg);
  TempDir dir("test_supervisor_merge_rebuild.tmp");
  obs::MetricsRegistry live;
  {
    obs::ScopedMetricsRegistry scope(&live);
    supervisor::FleetShardOptions opt;
    opt.cfg = cfg;
    opt.resume_dir = dir.path;
    opt.shard = 0;
    opt.shards = 1;
    ASSERT_EQ(supervisor::run_shard_child(opt), 0);
  }
  const auto merge = supervisor::merge_shard_stores(fl, dir.path, 1);
  ASSERT_EQ(merge.missing, 0u);

  obs::MetricsRegistry rebuilt;
  obs::Timeline tl{SimTime::from_ms(500)};
  {
    obs::ScopedMetricsRegistry scope(&rebuilt);
    fl.rebuild_telemetry(merge.slots, &tl);
  }
  EXPECT_EQ(rebuilt.counter("fleet.flows").value(), fl.grid().total());
  EXPECT_FALSE(tl.empty());
  // Every fleet.* counter the live sweep published must be recounted
  // exactly — including zero-valued ones, so metric snapshots stay
  // byte-identical across the supervised and unsharded paths.
  for (const char* name :
       {"fleet.flows", "fleet.flow_success", "fleet.flow_failure1",
        "fleet.flow_failure2", "fleet.flow_trial_error", "fleet.cache_hit",
        "fleet.cross_client_supply", "fleet.fresh_session"}) {
    EXPECT_EQ(rebuilt.counter(name).value(), live.counter(name).value())
        << name;
  }
}

TEST(SupervisorMerge, CoverageAnnotationOnlyWhenHoles) {
  obs::Timeline tl{SimTime::from_sec(1)};
  supervisor::ShardMerge full;
  full.slots = {1, 2};
  supervisor::annotate_coverage(full, &tl);
  EXPECT_TRUE(tl.empty());  // a full recovery leaves the timeline untouched

  supervisor::ShardMerge holey;
  holey.slots = {1, -1};
  holey.missing = 1;
  supervisor::annotate_coverage(holey, &tl);
  supervisor::annotate_coverage(holey, &tl);  // idempotent (annotation dedup)
  ASSERT_EQ(tl.annotations().size(), 1u);
  const obs::TimelineAnnotation& a = *tl.annotations().begin();
  EXPECT_EQ(a.category, "coverage");
  EXPECT_NE(a.text.find("1/2 flows recorded (1 missing)"), std::string::npos);
  supervisor::annotate_coverage(holey, nullptr);  // null timeline: no-op
}

// ------------------------------------------------------- report surfaces

supervisor::SupervisorResult synthetic_lifecycle() {
  supervisor::SupervisorResult res;
  supervisor::ShardStatus st;
  st.state = supervisor::ShardStatus::State::kDone;
  st.part = {0, 0, 1};
  st.attempts = 2;
  st.restarts = 1;
  st.done = 4;
  st.total = 4;
  st.progress = {{0.1, 1}, {0.3, 2}, {0.6, 4}};
  res.shards.push_back(st);
  res.wall_seconds = 0.7;
  const auto ev = [](supervisor::ShardEvent::Kind kind, int attempt,
                     double at, std::string detail) {
    supervisor::ShardEvent e;
    e.kind = kind;
    e.shard = 0;
    e.attempt = attempt;
    e.at = at;
    e.detail = std::move(detail);
    return e;
  };
  res.events = {ev(supervisor::ShardEvent::Kind::kSpawn, 0, 0.0, "pid 100"),
                ev(supervisor::ShardEvent::Kind::kCrash, 0, 0.2, "signal 9"),
                ev(supervisor::ShardEvent::Kind::kRestart, 0, 0.2,
                   "backoff 0.10s"),
                ev(supervisor::ShardEvent::Kind::kSpawn, 1, 0.3, "pid 101"),
                ev(supervisor::ShardEvent::Kind::kDone, 1, 0.7, "")};
  return res;
}

TEST(SupervisorReport, ManifestIsValidJson) {
  supervisor::SupervisorResult res = synthetic_lifecycle();
  res.events[1].detail = "exit \"we\\ird\"";  // must survive JSON escaping
  const std::string manifest = supervisor::manifest_json(res);
  const auto doc = json::parse(manifest);
  ASSERT_TRUE(doc.has_value()) << manifest;
  const json::Value* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "ys.supervisor.v1");
  const json::Value* shards = doc->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->array.size(), 1u);
  const json::Value* state = shards->array[0].find("state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->string, "done");
  const json::Value* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 5u);
}

TEST(SupervisorReport, SummaryTableNamesStatesAndRestarts) {
  const std::string s = supervisor::render_summary(synthetic_lifecycle());
  EXPECT_NE(s.find("shard  vantages  state"), std::string::npos) << s;
  EXPECT_NE(s.find("done"), std::string::npos) << s;
  EXPECT_NE(s.find("1 restart(s), 0 degraded"), std::string::npos) << s;
}

TEST(SupervisorReport, TimelineCarriesLifecycleSeries) {
  obs::Timeline tl{SimTime::from_ms(500)};
  supervisor::record_timeline(synthetic_lifecycle(), &tl);
  EXPECT_FALSE(tl.empty());
  const obs::TimelineSeriesKey spawn_key{
      "supervisor.spawn", {{"axis", "wall"}, {"shard", "0"}}};
  ASSERT_EQ(tl.series().count(spawn_key), 1u);
  i64 spawns = 0;
  for (const auto& [bucket, v] : tl.series().at(spawn_key).buckets) {
    spawns += v.sum;
  }
  EXPECT_EQ(spawns, 2);
  // Everything rides the wall axis under the "supervisor." prefix, so
  // virtual-time digest parity checks can exclude it wholesale.
  for (const auto& [key, series] : tl.series()) {
    EXPECT_EQ(key.name.rfind("supervisor.", 0), 0u) << key.name;
    EXPECT_EQ(key.labels.count("axis"), 1u);
  }
  supervisor::record_timeline(synthetic_lifecycle(), nullptr);  // no-op
}

TEST(SupervisorReport, HtmlShowsShardLifecycleAndPartialCoverage) {
  obs::Timeline tl{SimTime::from_ms(500)};
  supervisor::record_timeline(synthetic_lifecycle(), &tl);
  supervisor::ShardMerge holey;
  holey.slots.assign(4, -1);
  holey.slots[0] = 1;
  holey.slots[1] = 1;
  holey.missing = 2;
  supervisor::annotate_coverage(holey, &tl);

  std::string error;
  const auto doc = obs::parse_timeline_json(obs::timeline_to_json(tl), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const std::string html =
      obs::render_timeline_html(*doc, obs::ReportOptions{});
  EXPECT_NE(html.find("Shard lifecycle"), std::string::npos);
  EXPECT_NE(html.find("Shard progress"), std::string::npos);
  EXPECT_NE(html.find("Event log"), std::string::npos);
  EXPECT_NE(html.find("partial coverage: 2/4 flows recorded (2 missing)"),
            std::string::npos);
  EXPECT_NE(html.find("shard 0 crash (signal 9)"), std::string::npos);
}

}  // namespace
}  // namespace ys
