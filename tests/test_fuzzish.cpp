// Robustness sweeps with seeded pseudo-random inputs: parsers must never
// crash or mis-handle hostile bytes, endpoints must survive arbitrary
// segment storms without violating their invariants, and the GFW device
// must stay consistent under random packet interleavings.
#include <gtest/gtest.h>

#include "app/dns.h"
#include "gfw/gfw_device.h"
#include "netsim/wire.h"
#include "tcpstack/tcp_endpoint.h"

namespace ys {
namespace {

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

// ------------------------------------------------------------ wire parser

class WireFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(WireFuzz, RandomBytesNeverCrashTheParser) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.uniform(120));
    for (auto& b : garbage) b = static_cast<u8>(rng.next_u32());
    auto parsed = net::parse(garbage);
    if (parsed.ok()) {
      // Whatever parsed must re-serialize without crashing.
      (void)net::serialize(parsed.value());
      (void)parsed.value().summary();
    }
  }
}

TEST_P(WireFuzz, BitFlippedPacketsParseOrFailCleanly) {
  Rng rng(GetParam() + 1000);
  net::Packet pkt = net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(),
                                         1000, 2000, to_bytes("payload"));
  pkt.tcp->options.timestamps = net::TcpTimestamps{1, 2};
  pkt.tcp->options.mss = 1460;
  net::finalize(pkt);
  const Bytes image = net::serialize(pkt);

  for (int i = 0; i < 500; ++i) {
    Bytes mutated = image;
    const std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] ^= static_cast<u8>(1u << rng.uniform(8));
    auto parsed = net::parse(mutated);
    if (parsed.ok()) {
      // A single bit flip in header/payload is representable; checksum
      // validation is the layer that rejects it semantically.
      (void)net::transport_checksum_ok(parsed.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3));

// --------------------------------------------------------------- DNS codec

class DnsFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(DnsFuzz, RandomBytesNeverCrashDnsParsing) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.uniform(80));
    for (auto& b : garbage) b = static_cast<u8>(rng.next_u32());
    auto parsed = app::dns_parse(garbage);
    if (parsed.ok()) {
      (void)app::dns_encode(parsed.value());
    }
    // TCP stream extraction on garbage must terminate too.
    std::size_t offset = 0;
    (void)app::dns_tcp_extract(garbage, &offset);
    EXPECT_LE(offset, garbage.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsFuzz, ::testing::Values(7, 8));

// ----------------------------------------------------------- TCP endpoint

class EndpointStorm : public ::testing::TestWithParam<u64> {};

TEST_P(EndpointStorm, RandomSegmentStormPreservesInvariants) {
  net::EventLoop loop;
  Rng rng(GetParam());
  std::vector<net::Packet> sent;
  Bytes delivered;
  tcp::TcpEndpoint::Callbacks cb;
  cb.send = [&sent](net::Packet p) { sent.push_back(std::move(p)); };
  cb.on_data = [&delivered](ByteView d) {
    delivered.insert(delivered.end(), d.begin(), d.end());
  };
  tcp::TcpEndpoint ep(loop, Rng(3),
                      tcp::StackProfile::for_version(tcp::LinuxVersion::k4_4),
                      kTuple.reversed(), std::move(cb));
  ep.open_passive();

  for (int i = 0; i < 3000; ++i) {
    net::Packet pkt = net::make_tcp_packet(
        kTuple, net::TcpFlags::from_byte(static_cast<u8>(rng.uniform(64))),
        rng.next_u32(), rng.next_u32(),
        Bytes(rng.uniform(32), static_cast<u8>('a' + i % 26)));
    if (rng.chance(0.2)) pkt.tcp->options.md5_signature.emplace();
    if (rng.chance(0.2)) {
      pkt.tcp->options.timestamps =
          net::TcpTimestamps{rng.next_u32(), rng.next_u32()};
    }
    if (rng.chance(0.1)) pkt.tcp->data_offset_words = static_cast<u8>(rng.uniform(16));
    net::finalize(pkt);
    if (rng.chance(0.2)) {
      pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum + 1);
    }
    ep.on_segment(pkt);

    // Invariants that must hold under any input:
    // delivered bytes only grow, and never beyond what was in-window.
    ASSERT_LE(delivered.size(), static_cast<std::size_t>(70000));
  }
  // The endpoint is still in *a* defined state and its logs are coherent.
  (void)tcp::to_string(ep.state());
  for (const auto& event : ep.ignore_log()) {
    (void)tcp::to_string(event.reason);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndpointStorm, ::testing::Values(11, 12, 13));

// -------------------------------------------------------------- GFW device

class GfwStorm : public ::testing::TestWithParam<u64> {};

TEST_P(GfwStorm, RandomInterleavingsNeverBreakTheDevice) {
  gfw::DetectionRules rules = gfw::DetectionRules::standard();
  gfw::GfwConfig cfg;
  cfg.detection_miss_rate = 0.0;
  gfw::GfwDevice dev("gfw", cfg, &rules, Rng(9));
  Rng rng(GetParam());

  struct Fwd final : public net::Forwarder {
    explicit Fwd(Rng* rng) : rng_(rng) {}
    void forward(net::Packet) override {}
    void inject(net::Packet, net::Dir, SimTime) override { ++injections; }
    void drop(const net::Packet&, std::string_view) override {}
    SimTime now() const override { return SimTime::zero(); }
    Rng& rng() override { return *rng_; }
    int injections = 0;
    Rng* rng_;
  } fwd{&rng};

  for (int i = 0; i < 3000; ++i) {
    net::FourTuple tuple = kTuple;
    tuple.src_port = static_cast<u16>(40000 + rng.uniform(4));  // few conns
    const bool reverse = rng.chance(0.3);
    net::Packet pkt = net::make_tcp_packet(
        reverse ? tuple.reversed() : tuple,
        net::TcpFlags::from_byte(static_cast<u8>(rng.uniform(64))),
        rng.next_u32() % 10000, rng.next_u32() % 10000,
        Bytes(rng.uniform(40), 'x'));
    net::finalize(pkt);
    dev.process(std::move(pkt), reverse ? net::Dir::kS2C : net::Dir::kC2S,
                fwd);
  }
  // No keyword ever appeared, so no detections; TCB count stays bounded by
  // the small connection population.
  EXPECT_EQ(dev.detections(), 0);
  EXPECT_LE(dev.tcb_count(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GfwStorm, ::testing::Values(21, 22, 23));

// ------------------------------------------------------------- aho-corasick

TEST(AhoCorasickRandom, MatchesBruteForceOnRandomTexts) {
  Rng rng(31);
  const std::vector<std::string> patterns = {"abc", "bca", "aab", "cab",
                                             "aaaa"};
  gfw::AhoCorasick ac(patterns);
  for (int trial = 0; trial < 400; ++trial) {
    std::string text;
    const std::size_t len = 1 + rng.uniform(60);
    for (std::size_t i = 0; i < len; ++i) {
      text += static_cast<char>('a' + rng.uniform(3));
    }
    bool brute = false;
    for (const auto& p : patterns) {
      if (text.find(p) != std::string::npos) brute = true;
    }
    EXPECT_EQ(ac.contains(text), brute) << text;
  }
}

}  // namespace
}  // namespace ys
