// Additional GFW coverage: response censorship (the §3.3 HTTPS-redirect
// case), INTANG's loss-adaptive redundancy, hardened require-server-ACK
// anchoring, and forged-SYN/ACK handshake obstruction end to end.
#include <gtest/gtest.h>

#include "app/http.h"
#include "exp/scenario.h"
#include "exp/trial.h"
#include "gfw/gfw_device.h"

namespace ys {
namespace {

using namespace ys::exp;

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

struct NullFwd final : public net::Forwarder {
  explicit NullFwd(Rng* rng) : rng_(rng) {}
  void forward(net::Packet) override {}
  void inject(net::Packet pkt, net::Dir dir, SimTime) override {
    injected.push_back({std::move(pkt), dir});
  }
  void drop(const net::Packet&, std::string_view) override {}
  SimTime now() const override { return SimTime::zero(); }
  Rng& rng() override { return *rng_; }
  std::vector<std::pair<net::Packet, net::Dir>> injected;
  Rng* rng_;
};

struct DeviceRig {
  gfw::DetectionRules rules = gfw::DetectionRules::standard();
  std::unique_ptr<gfw::GfwDevice> dev;
  Rng rng{5};
  NullFwd fwd{&rng};
  u32 cseq = 1000;
  u32 sseq = 5000;

  explicit DeviceRig(gfw::GfwConfig cfg = {}) {
    cfg.detection_miss_rate = 0.0;
    dev = std::make_unique<gfw::GfwDevice>("gfw", cfg, &rules, Rng(9));
  }
  void c2s(net::Packet pkt) { feed(std::move(pkt), net::Dir::kC2S); }
  void s2c(net::Packet pkt) { feed(std::move(pkt), net::Dir::kS2C); }
  void feed(net::Packet pkt, net::Dir dir) {
    net::finalize(pkt);
    dev->process(std::move(pkt), dir, fwd);
  }
  void handshake() {
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), cseq, 0));
    ++cseq;
    s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                             sseq, cseq));
    ++sseq;
    c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_ack(), cseq, sseq));
  }
};

// -------------------------------------------------- response censorship

TEST(ResponseCensorship, RedirectLocationKeywordCaughtWhenEnabled) {
  gfw::GfwConfig cfg;
  cfg.censors_responses = true;  // the rare §3.3 paths
  DeviceRig rig(cfg);
  rig.handshake();
  // Innocent request; the *response* echoes the keyword in Location.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), rig.cseq,
                               rig.sseq, to_bytes("GET / HTTP/1.1\r\n\r\n")));
  EXPECT_EQ(rig.dev->detections(), 0);
  rig.s2c(net::make_tcp_packet(
      kTuple.reversed(), net::TcpFlags::psh_ack(), rig.sseq, rig.cseq + 18,
      app::build_http_redirect("https://x.test/?q=ultrasurf")));
  EXPECT_EQ(rig.dev->detections(), 1);
}

TEST(ResponseCensorship, OffByDefault) {
  DeviceRig rig;  // default: responses not censored (discontinued, §2.1)
  rig.handshake();
  rig.s2c(net::make_tcp_packet(
      kTuple.reversed(), net::TcpFlags::psh_ack(), rig.sseq, rig.cseq,
      app::build_http_redirect("https://x.test/?q=ultrasurf")));
  EXPECT_EQ(rig.dev->detections(), 0);
}

// -------------------------------------------------- hardened anchoring

TEST(HardenedResync, AnchorsOnlyOnServerAckedData) {
  gfw::GfwConfig cfg;
  cfg.harden_require_server_ack = true;
  cfg.rst_reaction_established = gfw::RstReaction::kResync;
  cfg.rst_reaction_handshake = gfw::RstReaction::kResync;
  DeviceRig rig(cfg);
  rig.handshake();

  // RST puts the device into resync.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), rig.cseq,
                               0));
  // Desync junk at an out-of-window sequence — a candidate anchor only.
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(),
                               rig.cseq + 0x00800000, rig.sseq,
                               to_bytes("X")));
  // The censored request — another candidate.
  const std::string req = "GET /?q=ultrasurf HTTP/1.1\r\n";
  rig.c2s(net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), rig.cseq,
                               rig.sseq, to_bytes(req)));
  EXPECT_EQ(rig.dev->detections(), 0);  // nothing anchored yet

  // The server acks the *request* (it never saw the junk): the hardened
  // device anchors there and catches the keyword — the desync building
  // block is dead against this countermeasure.
  rig.s2c(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::only_ack(),
                               rig.sseq,
                               rig.cseq + static_cast<u32>(req.size())));
  EXPECT_EQ(rig.dev->detections(), 1);
}

// --------------------------------------------- forged SYN/ACK end to end

TEST(BlockPeriodE2E, ForgedSynAckDesynchronizesRealClients) {
  static const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  ScenarioOptions opt;
  opt.vp = china_vantage_points()[1];
  opt.server.host = "s.example";
  opt.server.ip = net::make_ip(93, 184, 216, 34);
  opt.cal = Calibration::standard();
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.seed = 17;
  Scenario sc(&rules, opt);

  // Trip the 90-second block.
  HttpTrialOptions censored;
  censored.with_keyword = true;
  ASSERT_EQ(run_http_trial(sc, censored).outcome, Outcome::kFailure2);

  // A second connection during the block: the forged SYN/ACK (wrong seq,
  // correct ack) arrives before the server's real one, so the client
  // "establishes" against a phantom and the real response never fits.
  tcp::TcpEndpoint* conn = nullptr;
  tcp::TcpEndpoint::Callbacks cb;
  cb.on_established = [&conn] {
    if (conn) conn->send_data(app::build_http_get("s.example", "/fine"));
  };
  conn = &sc.client().connect(opt.server.ip, 80, 40070, std::move(cb));
  sc.run();
  EXPECT_FALSE(app::http_response_complete(conn->received_stream()));
  EXPECT_GE(sc.gfw_type2().forged_syn_acks(), 1);
}

// --------------------------------------------- adaptive redundancy (§7.1)

TEST(AdaptiveRedundancy, IntangRaisesCopiesAfterRepeatedFailures) {
  static const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  intang::StrategySelector::Config sel_cfg;
  sel_cfg.candidates = {strategy::StrategyId::kImprovedTeardown};
  intang::StrategySelector selector(sel_cfg);

  int final_redundancy = 3;
  for (int t = 0; t < 4; ++t) {
    ScenarioOptions opt;
    opt.vp = china_vantage_points()[1];
    opt.server.host = "s.example";
    opt.server.ip = net::make_ip(93, 184, 216, 34);
    opt.cal = Calibration::standard();
    opt.cal.detection_miss = 0.0;
    // A brutal path: heavy loss eats most single insertion packets.
    opt.cal.per_link_loss = 0.02;
    opt.cal.ttl_estimate_error_prob = 0.0;
    opt.seed = 400 + static_cast<u64>(t);
    opt.path_seed = 4000;
    Scenario sc(&rules, opt);

    HttpTrialOptions http;
    http.with_keyword = true;
    http.use_intang = true;
    http.shared_selector = &selector;

    intang::Intang::Config icfg;
    icfg.knowledge = sc.knowledge();
    intang::Intang intang(sc.client(), icfg, sc.fork_rng(), &selector);
    tcp::TcpEndpoint* conn = nullptr;
    tcp::TcpEndpoint::Callbacks cb;
    const Bytes request =
        app::build_http_get("s.example", "/search?q=ultrasurf");
    cb.on_established = [&conn, request] {
      if (conn) conn->send_data(request);
    };
    conn = &sc.client().connect(opt.server.ip, 80, 40001, std::move(cb));
    sc.run();
    final_redundancy = intang.current_redundancy();
    if (final_redundancy > 3) break;  // adapted
  }
  // On a path this lossy, INTANG sees failures and raises redundancy.
  EXPECT_GE(final_redundancy, 3);
}

TEST(AdaptiveRedundancy, StrategiesHonorTheKnob) {
  // Engine-level check: redundancy 5 means five RST copies on the wire.
  net::EventLoop loop;
  net::PathConfig pcfg;
  pcfg.server_hops = 2;
  pcfg.jitter_us = 0;
  net::Path path(loop, Rng(3), pcfg, nullptr);
  tcp::Host::Config hcfg;
  hcfg.address = kTuple.src_ip;
  hcfg.side = tcp::HostSide::kClient;
  tcp::Host client(hcfg, path, loop, Rng(5));
  client.attach();
  std::vector<net::Packet> wire;
  path.set_server_sink([&wire](net::Packet p) { wire.push_back(std::move(p)); });

  strategy::PathKnowledge pk;
  pk.hop_estimate = 12;
  pk.insertion_redundancy = 5;
  strategy::StrategyEngine engine(
      client,
      [](const net::FourTuple&) {
        return strategy::make_strategy(
            strategy::StrategyId::kImprovedTeardown);
      },
      pk, Rng(7));
  engine.install();

  tcp::TcpEndpoint* conn = nullptr;
  tcp::TcpEndpoint::Callbacks cb;
  cb.on_established = [&conn] {
    if (conn) conn->send_data(to_bytes("GET /?q=ultrasurf HTTP/1.1\r\n"));
  };
  conn = &client.connect(kTuple.dst_ip, 80, 40000, std::move(cb));
  loop.run_until(SimTime::from_ms(50));
  net::Packet synack = net::make_tcp_packet(
      kTuple.reversed(), net::TcpFlags::syn_ack(), 5000, conn->iss() + 1);
  net::finalize(synack);
  path.send_from_server(std::move(synack));
  loop.run_until(SimTime::from_ms(200));

  int rsts = 0;
  for (const auto& pkt : wire) {
    if (pkt.tcp->flags.rst) ++rsts;
  }
  EXPECT_EQ(rsts, 5);
}

}  // namespace
}  // namespace ys
