// ys::obs::perf — bench report round-trips, percentile math, regression
// diffing, the counting-allocator hook, the phase profiler, and the
// determinism contract: report/heartbeat emission must not perturb
// --jobs=N bit-identity.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/json.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/phase_profiler.h"
#include "runner/runner.h"

namespace ys {
namespace {

using obs::perf::BenchReport;
using obs::perf::DiffResult;
using obs::perf::DiffStatus;
using obs::perf::Direction;
using obs::perf::MetricValue;

// ---------------------------------------------------------------- reports

BenchReport sample_report() {
  BenchReport r = obs::perf::make_report("unit");
  r.config["trials"] = 12;
  r.config["jobs"] = 4;
  r.wall_seconds = 1.5;
  r.metrics["flows_per_sec"] =
      MetricValue{11000.25, "flows/s", Direction::kHigherIsBetter};
  r.metrics["allocs_per_trial"] =
      MetricValue{923.5, "allocs", Direction::kLowerIsBetter};
  r.metrics["success_rate"] = MetricValue{0.97, "ratio", Direction::kInfo};
  obs::perf::PhaseTotal phase;
  phase.name = "fleet.flow";
  phase.count = 120;
  phase.wall_us = 15376.4;
  r.phases.push_back(phase);
  r.snapshot.counters["fleet.flows"] = 120;
  r.snapshot.gauges["runner.jobs"] = 4.0;
  obs::HistogramSnapshot h;
  h.bounds = {10.0, 20.0};
  h.counts = {3, 2, 1};
  h.count = 6;
  h.sum = 77.0;
  r.snapshot.histograms["lat"] = h;
  return r;
}

TEST(PerfReport, JsonRoundTrip) {
  const BenchReport r = sample_report();
  const std::string json = r.to_json();

  // The document must be valid JSON in its own right.
  ASSERT_TRUE(ys::json::parse(json).has_value()) << json;

  std::string error;
  const auto back = BenchReport::from_json(json, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->schema, BenchReport::kSchema);
  EXPECT_EQ(back->name, "unit");
  EXPECT_EQ(back->env, r.env);
  EXPECT_DOUBLE_EQ(back->config.at("trials"), 12.0);
  EXPECT_DOUBLE_EQ(back->wall_seconds, 1.5);

  ASSERT_EQ(back->metrics.size(), 3u);
  const MetricValue& fps = back->metrics.at("flows_per_sec");
  EXPECT_DOUBLE_EQ(fps.value, 11000.25);
  EXPECT_EQ(fps.unit, "flows/s");
  EXPECT_EQ(fps.direction, Direction::kHigherIsBetter);
  EXPECT_EQ(back->metrics.at("allocs_per_trial").direction,
            Direction::kLowerIsBetter);
  EXPECT_EQ(back->metrics.at("success_rate").direction, Direction::kInfo);

  ASSERT_EQ(back->phases.size(), 1u);
  EXPECT_EQ(back->phases[0].name, "fleet.flow");
  EXPECT_EQ(back->phases[0].count, 120u);
  EXPECT_DOUBLE_EQ(back->phases[0].wall_us, 15376.4);

  EXPECT_EQ(back->snapshot.counters.at("fleet.flows"), 120u);
  EXPECT_DOUBLE_EQ(back->snapshot.gauges.at("runner.jobs"), 4.0);
  const obs::HistogramSnapshot& h = back->snapshot.histograms.at("lat");
  EXPECT_EQ(h.counts, (std::vector<u64>{3, 2, 1}));
  EXPECT_DOUBLE_EQ(h.sum, 77.0);
}

TEST(PerfReport, WriteLoadFile) {
  const BenchReport r = sample_report();
  const std::string path = "test_perf_report.tmp.json";
  ASSERT_TRUE(r.write(path));
  std::string error;
  const auto back = BenchReport::load(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->name, "unit");
  EXPECT_EQ(back->metrics.size(), 3u);
  std::remove(path.c_str());
}

TEST(PerfReport, RejectsFutureSchema) {
  std::string json = sample_report().to_json();
  const std::string needle = "\"schema\": 1";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, needle.size(), "\"schema\": 999");
  std::string error;
  EXPECT_FALSE(BenchReport::from_json(json, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(PerfReport, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(BenchReport::from_json("{not json", &error).has_value());
  EXPECT_FALSE(BenchReport::from_json("[1, 2, 3]", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(PerfReport, EnvFingerprintIsFilledIn) {
  const BenchReport r = obs::perf::make_report("x");
  EXPECT_EQ(r.name, "x");
  EXPECT_EQ(r.env.count("os"), 1u);
  EXPECT_EQ(r.env.count("arch"), 1u);
  EXPECT_EQ(r.env.count("compiler"), 1u);
  EXPECT_EQ(r.env.count("build"), 1u);
  EXPECT_EQ(r.env.count("sanitizer"), 1u);
}

// ------------------------------------------------------------ percentiles

obs::HistogramSnapshot make_hist(std::vector<double> bounds,
                                 std::vector<u64> counts) {
  obs::HistogramSnapshot h;
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  for (u64 c : h.counts) h.count += c;
  return h;
}

TEST(Percentile, EmptyHistogramIsZero) {
  const obs::HistogramSnapshot h = make_hist({10.0, 20.0}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Percentile, UniformSingleBucket) {
  // 100 samples in [10, 20): linear interpolation inside the bucket.
  const obs::HistogramSnapshot h = make_hist({10.0, 20.0, 30.0}, {0, 100, 0});
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Percentile, AcrossBuckets) {
  // 50 in [0, 10), 50 in [10, 20): p50 at the bucket boundary, p75 halfway
  // through the second bucket.
  const obs::HistogramSnapshot h = make_hist({10.0, 20.0}, {50, 50, 0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 5.0);
}

TEST(Percentile, OverflowBucketClampsToLastBound) {
  // Everything beyond the last bound has no upper edge; the estimate
  // reports the last finite bound rather than inventing one.
  const obs::HistogramSnapshot h = make_hist({10.0, 20.0}, {10, 10, 80});
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 20.0);
}

TEST(Percentile, MonotoneInQ) {
  const obs::HistogramSnapshot h =
      make_hist({1.0, 2.0, 5.0, 10.0}, {7, 13, 29, 3, 2});
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Percentile, RegistryHistogramEndToEnd) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("t", {10.0, 100.0, 1000.0});
  for (int i = 0; i < 90; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  const auto snap = reg.snapshot().histograms.at("t");
  EXPECT_GT(snap.percentile(0.95), 10.0);
  EXPECT_LE(snap.percentile(0.50), 10.0);
}

// ------------------------------------------------------------------ diffs

BenchReport report_with(const std::string& name, double value,
                        Direction direction) {
  BenchReport r = obs::perf::make_report("unit");
  r.metrics[name] = MetricValue{value, "u", direction};
  return r;
}

TEST(PerfDiff, WithinToleranceIsOk) {
  const auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  const auto newr = report_with("rate", 95.0, Direction::kHigherIsBetter);
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  ASSERT_EQ(d.rows.size(), 1u);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kOk);
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.regressions, 0);
}

TEST(PerfDiff, HigherIsBetterRegression) {
  const auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  const auto newr = report_with("rate", 80.0, Direction::kHigherIsBetter);
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  ASSERT_EQ(d.rows.size(), 1u);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kRegressed);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.regressions, 1);
}

TEST(PerfDiff, HigherIsBetterImprovement) {
  const auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  const auto newr = report_with("rate", 130.0, Direction::kHigherIsBetter);
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kImproved);
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.improvements, 1);
}

TEST(PerfDiff, LowerIsBetterDirectionsFlip) {
  // allocs going UP is the regression; going down is the improvement.
  const auto oldr = report_with("allocs", 1000.0, Direction::kLowerIsBetter);
  const auto up = report_with("allocs", 1200.0, Direction::kLowerIsBetter);
  const auto down = report_with("allocs", 800.0, Direction::kLowerIsBetter);
  EXPECT_EQ(obs::perf::diff_reports(oldr, up, 0.10).rows[0].status,
            DiffStatus::kRegressed);
  EXPECT_EQ(obs::perf::diff_reports(oldr, down, 0.10).rows[0].status,
            DiffStatus::kImproved);
}

TEST(PerfDiff, InfoMetricsNeverGate) {
  const auto oldr = report_with("wall", 1.0, Direction::kInfo);
  const auto newr = report_with("wall", 100.0, Direction::kInfo);
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kInfo);
  EXPECT_TRUE(d.ok());
}

TEST(PerfDiff, DroppedGatedMetricIsARegression) {
  const auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  BenchReport newr = obs::perf::make_report("unit");
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  ASSERT_EQ(d.rows.size(), 1u);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kMissingNew);
  EXPECT_FALSE(d.ok());
}

TEST(PerfDiff, NewMetricIsNotARegression) {
  BenchReport oldr = obs::perf::make_report("unit");
  const auto newr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  ASSERT_EQ(d.rows.size(), 1u);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kMissingOld);
  EXPECT_TRUE(d.ok());
}

TEST(PerfDiff, EnvMismatchIsReportedAsCaveat) {
  auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  auto newr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  newr.env["compiler"] = "totally-different-compiler 99";
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  ASSERT_EQ(d.env_mismatches.size(), 1u);
  EXPECT_NE(d.env_mismatches[0].find("compiler"), std::string::npos);
  EXPECT_NE(d.render().find("compiler"), std::string::npos);
  EXPECT_TRUE(d.ok());  // a caveat, not a regression
}

TEST(PerfDiff, RenderMentionsEveryMetric) {
  auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  oldr.metrics["allocs"] = MetricValue{10.0, "n", Direction::kLowerIsBetter};
  const DiffResult d = obs::perf::diff_reports(oldr, oldr, 0.10);
  const std::string table = d.render();
  EXPECT_NE(table.find("rate"), std::string::npos);
  EXPECT_NE(table.find("allocs"), std::string::npos);
  EXPECT_NE(table.find("0 regression(s)"), std::string::npos);
}

TEST(PerfDiff, PerMetricToleranceOverrideTightens) {
  // A 10% alloc increase sails through the wide wall-clock band but must
  // trip a 2% per-metric override — and only for the overridden metric.
  auto oldr = report_with("allocs_per_trial", 1000.0, Direction::kLowerIsBetter);
  oldr.metrics["flows_per_sec"] =
      MetricValue{100.0, "flows/s", Direction::kHigherIsBetter};
  auto newr = report_with("allocs_per_trial", 1100.0, Direction::kLowerIsBetter);
  newr.metrics["flows_per_sec"] =
      MetricValue{90.0, "flows/s", Direction::kHigherIsBetter};

  const DiffResult wide = obs::perf::diff_reports(oldr, newr, 0.50);
  EXPECT_TRUE(wide.ok());

  const DiffResult tight = obs::perf::diff_reports(
      oldr, newr, 0.50, {{"allocs_per_trial", 0.02}});
  ASSERT_EQ(tight.rows.size(), 2u);
  EXPECT_FALSE(tight.ok());
  EXPECT_EQ(tight.regressions, 1);
  for (const auto& row : tight.rows) {
    if (row.metric == "allocs_per_trial") {
      EXPECT_EQ(row.status, DiffStatus::kRegressed);
      EXPECT_DOUBLE_EQ(row.tolerance, 0.02);
    } else {
      EXPECT_EQ(row.status, DiffStatus::kOk);  // still the global band
      EXPECT_DOUBLE_EQ(row.tolerance, 0.50);
    }
  }
}

TEST(PerfDiff, OverrideCanLoosenToo) {
  const auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  const auto newr = report_with("rate", 70.0, Direction::kHigherIsBetter);
  EXPECT_FALSE(obs::perf::diff_reports(oldr, newr, 0.10).ok());
  EXPECT_TRUE(
      obs::perf::diff_reports(oldr, newr, 0.10, {{"rate", 0.40}}).ok());
}

TEST(PerfDiff, ToJsonIsValidAndComplete) {
  auto oldr = report_with("rate", 100.0, Direction::kHigherIsBetter);
  oldr.metrics["allocs"] = MetricValue{10.0, "n", Direction::kLowerIsBetter};
  auto newr = report_with("rate", 50.0, Direction::kHigherIsBetter);
  newr.metrics["allocs"] = MetricValue{10.0, "n", Direction::kLowerIsBetter};
  newr.env["compiler"] = "other-compiler 1";
  const DiffResult d =
      obs::perf::diff_reports(oldr, newr, 0.10, {{"allocs", 0.02}});

  const auto doc = ys::json::parse(d.to_json());
  ASSERT_TRUE(doc.has_value()) << d.to_json();
  EXPECT_DOUBLE_EQ(doc->find("regressions")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->find("improvements")->number, 0.0);
  EXPECT_EQ(doc->find("ok")->boolean, false);

  const auto* mismatches = doc->find("env_mismatches");
  ASSERT_NE(mismatches, nullptr);
  ASSERT_EQ(mismatches->array.size(), 1u);
  EXPECT_NE(mismatches->array[0].string.find("compiler"), std::string::npos);

  const auto* rows = doc->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  bool saw_rate = false;
  bool saw_allocs = false;
  for (const auto& row : rows->array) {
    const std::string metric = row.find("metric")->string;
    if (metric == "rate") {
      saw_rate = true;
      EXPECT_EQ(row.find("status")->string, "REGRESSED");
      EXPECT_DOUBLE_EQ(row.find("old")->number, 100.0);
      EXPECT_DOUBLE_EQ(row.find("new")->number, 50.0);
      EXPECT_DOUBLE_EQ(row.find("delta")->number, -0.5);
      EXPECT_DOUBLE_EQ(row.find("tolerance")->number, 0.10);
      EXPECT_EQ(row.find("direction")->string, "higher");
    } else if (metric == "allocs") {
      saw_allocs = true;
      EXPECT_EQ(row.find("status")->string, "ok");
      EXPECT_DOUBLE_EQ(row.find("tolerance")->number, 0.02);
    }
  }
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_allocs);
}

TEST(PerfDiff, ZeroOldValueDoesNotDivide) {
  const auto oldr = report_with("rate", 0.0, Direction::kHigherIsBetter);
  const auto newr = report_with("rate", 50.0, Direction::kHigherIsBetter);
  const DiffResult d = obs::perf::diff_reports(oldr, newr, 0.10);
  ASSERT_EQ(d.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(d.rows[0].delta, 0.0);
  EXPECT_EQ(d.rows[0].status, DiffStatus::kOk);
}

// -------------------------------------------------------------- alloc hook

TEST(AllocHook, CountsThisThreadsAllocations) {
  if (!obs::perf::alloc_hook_available()) {
    GTEST_SKIP() << "allocator hook compiled out (sanitizer build)";
  }
  const auto before = obs::perf::thread_alloc_counters();
  {
    std::vector<std::string> v;
    for (int i = 0; i < 64; ++i) {
      v.push_back(std::string(128, 'x'));  // forces heap allocations
    }
  }
  const auto after = obs::perf::thread_alloc_counters();
  EXPECT_GT(after.count, before.count);
  EXPECT_GE(after.bytes - before.bytes, 64u * 128u);
}

TEST(AllocHook, CountersAreMonotone) {
  if (!obs::perf::alloc_hook_available()) {
    GTEST_SKIP() << "allocator hook compiled out (sanitizer build)";
  }
  const auto a = obs::perf::thread_alloc_counters();
  // Call the replaceable allocation functions directly: a new-expression
  // with an unused result may legally be elided by the optimizer.
  void* p = ::operator new(256);
  ::operator delete(p);
  const auto b = obs::perf::thread_alloc_counters();
  EXPECT_GE(b.count, a.count + 1);  // frees never decrement
}

// ---------------------------------------------------------- phase profiler

TEST(PhaseProfiler, RecordsAndMerges) {
  obs::perf::PhaseProfiler::reset();
  { obs::perf::ScopedPhase p("test.phase_a"); }
  { obs::perf::ScopedPhase p("test.phase_a"); }
  { obs::perf::ScopedPhase p("test.phase_b"); }
  const auto snap = obs::perf::PhaseProfiler::snapshot();
  ASSERT_EQ(snap.count("test.phase_a"), 1u);
  EXPECT_EQ(snap.at("test.phase_a").count, 2u);
  EXPECT_EQ(snap.at("test.phase_b").count, 1u);
  obs::perf::PhaseProfiler::reset();
  EXPECT_EQ(obs::perf::PhaseProfiler::snapshot().count("test.phase_a"), 0u);
}

TEST(PhaseProfiler, KillSwitchStopsRecording) {
  obs::perf::PhaseProfiler::reset();
  obs::perf::PhaseProfiler::set_enabled(false);
  { obs::perf::ScopedPhase p("test.disabled"); }
  obs::perf::PhaseProfiler::set_enabled(true);
  EXPECT_EQ(obs::perf::PhaseProfiler::snapshot().count("test.disabled"), 0u);
}

TEST(PhaseProfiler, TraceExportIsValidJson) {
  obs::perf::PhaseProfiler::reset();
  { obs::perf::ScopedPhase p("test.trace_me"); }
  const std::string path = "test_perf_phases.tmp.json";
  ASSERT_TRUE(obs::perf::write_phase_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const auto doc = ys::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const auto& ev : events->array) {
    const auto* name = ev.find("name");
    if (name != nullptr && name->string == "test.trace_me") found = true;
  }
  EXPECT_TRUE(found);
  obs::perf::PhaseProfiler::reset();
}

// ------------------------------------------------- determinism under telemetry

struct TelemetryRun {
  std::vector<i64> slots;
  obs::Snapshot snapshot;
};

/// A grid run with every telemetry feature enabled: allocator sampling,
/// a fast heartbeat (so the monitor thread provably runs), and phase
/// timers. Results must still be a pure function of the grid coordinates.
TelemetryRun run_telemetry_grid(int jobs) {
  runner::TrialGrid grid;
  grid.cells = 2;
  grid.vantages = 3;
  grid.servers = 2;
  grid.trials = 5;

  runner::PoolOptions pool;
  pool.jobs = jobs;
  pool.shard_size = 1;  // many shards: steals + heartbeat progress updates
  pool.track_allocs = true;
  pool.heartbeat_seconds = 0.001;  // spin the monitor thread for real
  pool.heartbeat_extra = [] { return std::string("unit-test"); };

  obs::MetricsRegistry local;
  TelemetryRun run;
  {
    obs::ScopedMetricsRegistry scope(&local);
    auto out = runner::collect_grid_or(
        grid, pool, static_cast<i64>(-1),
        [](const runner::GridCoord& c, runner::TaskContext&) {
          obs::perf::ScopedPhase phase("test.telemetry_task");
          // Deterministic per-coordinate work with heap churn.
          Rng rng(Rng::mix_seed({c.cell, c.vantage, c.server, c.trial}));
          std::vector<u64> scratch;
          const std::size_t len = 8 + rng.uniform(24);
          for (std::size_t i = 0; i < len; ++i) {
            scratch.push_back(rng.next_u64());
          }
          u64 acc = 0;
          for (u64 v : scratch) acc ^= v;
          obs::MetricsRegistry::current()
              .counter("test.work_" + std::to_string(c.cell))
              .inc(1 + (acc & 7));
          return static_cast<i64>(acc & 0x7fffffff);
        });
    run.slots = std::move(out.slots);
  }
  run.snapshot = local.snapshot();
  return run;
}

TEST(AllocHook, TelemetryDoesNotPerturbResults) {
  const TelemetryRun serial = run_telemetry_grid(1);
  const TelemetryRun parallel = run_telemetry_grid(8);

  // Slots: bit-identical.
  ASSERT_EQ(serial.slots.size(), parallel.slots.size());
  EXPECT_EQ(serial.slots, parallel.slots);

  // Counters: identical except perf.alloc.* (those include one-time
  // per-worker setup allocations, documented jobs-dependent).
  auto without_alloc = [](const std::map<std::string, u64>& counters) {
    std::map<std::string, u64> out;
    for (const auto& [name, v] : counters) {
      if (name.rfind("perf.alloc", 0) == 0) continue;
      out.emplace(name, v);
    }
    return out;
  };
  EXPECT_EQ(without_alloc(serial.snapshot.counters),
            without_alloc(parallel.snapshot.counters));

  // The sampled totals themselves must exist and be nonzero when the hook
  // is live — the per-task deltas all merged back.
  if (obs::perf::alloc_hook_available()) {
    EXPECT_GT(serial.snapshot.counters.at("perf.alloc.count"), 0u);
    EXPECT_GT(serial.snapshot.counters.at("perf.alloc.bytes"), 0u);
  }
}

TEST(AllocHook, SerialRunsAreExactlyReproducible) {
  // Two serial runs with telemetry on: byte-identical everything,
  // including perf.alloc.* (same thread layout both times). A warm-up
  // run first pays process-wide one-time lazy allocations (locale,
  // hash-table growth) that would otherwise land only in the first
  // sampled run.
  (void)run_telemetry_grid(1);
  const TelemetryRun a = run_telemetry_grid(1);
  const TelemetryRun b = run_telemetry_grid(1);
  EXPECT_EQ(a.slots, b.slots);
  if (obs::perf::alloc_hook_available()) {
    EXPECT_EQ(a.snapshot.counters.at("perf.alloc.count"),
              b.snapshot.counters.at("perf.alloc.count"));
    EXPECT_EQ(a.snapshot.counters.at("perf.alloc.bytes"),
              b.snapshot.counters.at("perf.alloc.bytes"));
  }
}

}  // namespace
}  // namespace ys
