// Event loop and path semantics: deterministic ordering, TTL hop
// accounting, loss, FIFO non-reordering, injection, and route shifts.
#include <gtest/gtest.h>

#include "netsim/event_loop.h"
#include "netsim/path.h"

namespace ys::net {
namespace {

const FourTuple kTuple{make_ip(10, 0, 0, 1), 40000,
                       make_ip(93, 184, 216, 34), 80};

Packet probe(u8 ttl, u32 seq = 1) {
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::only_ack(), seq, 0);
  pkt.ip.ttl = ttl;
  return pkt;
}

// -------------------------------------------------------------- EventLoop

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(SimTime::from_ms(30), [&] { order.push_back(3); });
  loop.schedule_after(SimTime::from_ms(10), [&] { order.push_back(1); });
  loop.schedule_after(SimTime::from_ms(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().millis(), 30);
}

TEST(EventLoop, TiesRunInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, NestedSchedulingWorks) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_after(SimTime::from_ms(1), [&] {
    ++fired;
    loop.schedule_after(SimTime::from_ms(1), [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_after(SimTime::from_ms(5), [&] { ++fired; });
  loop.schedule_after(SimTime::from_ms(15), [&] { ++fired; });
  loop.run_until(SimTime::from_ms(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now().millis(), 10);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, MaxEventsBoundsRunawayLoops) {
  EventLoop loop;
  std::function<void()> rearm = [&] {
    loop.schedule_after(SimTime::from_us(1), rearm);
  };
  loop.schedule_after(SimTime::from_us(1), rearm);
  const std::size_t executed = loop.run(100);
  EXPECT_EQ(executed, 100u);
}

// ------------------------------------------------------------------- Path

struct PathFixture {
  EventLoop loop;
  obs::TraceRecorder trace;
  Path path;
  std::vector<Packet> at_server;
  std::vector<Packet> at_client;

  explicit PathFixture(PathConfig cfg = make_config())
      : path(loop, Rng(5), cfg, &trace) {
    path.set_server_sink([this](Packet p) { at_server.push_back(std::move(p)); });
    path.set_client_sink([this](Packet p) { at_client.push_back(std::move(p)); });
  }

  static PathConfig make_config() {
    PathConfig cfg;
    cfg.server_hops = 10;
    cfg.jitter_us = 0;
    cfg.per_link_loss = 0.0;
    return cfg;
  }
};

TEST(Path, DeliversEndToEndAndDecrementsTtl) {
  PathFixture fx;
  fx.path.send_from_client(probe(64));
  fx.loop.run();
  ASSERT_EQ(fx.at_server.size(), 1u);
  EXPECT_EQ(fx.at_server[0].ip.ttl, 64 - 10);
}

TEST(Path, TtlExactlyHopsReaches) {
  PathFixture fx;
  fx.path.send_from_client(probe(10));
  fx.loop.run();
  EXPECT_EQ(fx.at_server.size(), 1u);
  EXPECT_EQ(fx.at_server[0].ip.ttl, 0);
}

TEST(Path, TtlOneShortExpires) {
  PathFixture fx;
  fx.path.send_from_client(probe(9));
  fx.loop.run();
  EXPECT_TRUE(fx.at_server.empty());
  // The expiry is visible in the trace.
  bool expired = false;
  for (const auto& e : fx.trace.events()) {
    if (e.kind == obs::TraceKind::kExpire) expired = true;
  }
  EXPECT_TRUE(expired);
}

/// Tap element recording what it sees.
class TapElement final : public PathElement {
 public:
  explicit TapElement(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  void process(Packet pkt, Dir dir, Forwarder& fwd) override {
    seen.push_back(pkt);
    (void)dir;
    fwd.forward(std::move(pkt));
  }
  std::vector<Packet> seen;

 private:
  std::string name_;
};

TEST(Path, ElementAtPositionSeesTtlLimitedPacket) {
  PathFixture fx;
  TapElement tap("tap");
  fx.path.attach(4, &tap);

  fx.path.send_from_client(probe(4, /*seq=*/1));  // reaches exactly the tap
  fx.path.send_from_client(probe(3, /*seq=*/2));  // dies one hop short
  fx.loop.run();

  ASSERT_EQ(tap.seen.size(), 1u);
  EXPECT_EQ(tap.seen[0].tcp->seq, 1u);
  EXPECT_TRUE(fx.at_server.empty());  // ttl 4 < 10 hops
}

TEST(Path, ServerToClientTraversesElementsInReverse) {
  PathFixture fx;
  TapElement near_client("near-client");
  TapElement near_server("near-server");
  fx.path.attach(2, &near_client);
  fx.path.attach(8, &near_server);

  fx.path.send_from_server(probe(64));
  fx.loop.run();
  ASSERT_EQ(fx.at_client.size(), 1u);
  EXPECT_EQ(near_server.seen.size(), 1u);
  EXPECT_EQ(near_client.seen.size(), 1u);
  EXPECT_EQ(fx.at_client[0].ip.ttl, 64 - 10);
}

/// Element that drops everything.
class BlackholeElement final : public PathElement {
 public:
  std::string name() const override { return "blackhole"; }
  void process(Packet pkt, Dir, Forwarder& fwd) override {
    fwd.drop(pkt, "policy");
  }
};

TEST(Path, DropsAreTerminalAndTraced) {
  PathFixture fx;
  BlackholeElement hole;
  fx.path.attach(5, &hole);
  fx.path.send_from_client(probe(64));
  fx.loop.run();
  EXPECT_TRUE(fx.at_server.empty());
  bool dropped = false;
  for (const auto& e : fx.trace.events()) {
    if (e.kind == obs::TraceKind::kDrop && e.actor == "blackhole") {
      dropped = true;
    }
  }
  EXPECT_TRUE(dropped);
}

/// Element injecting a reply toward the client for every packet.
class ReflectorElement final : public PathElement {
 public:
  std::string name() const override { return "reflector"; }
  void process(Packet pkt, Dir dir, Forwarder& fwd) override {
    Packet reply = make_tcp_packet(pkt.tuple().reversed(),
                                   TcpFlags::only_rst(), 999, 0);
    fwd.inject(std::move(reply), opposite(dir), SimTime::from_us(100));
    fwd.forward(std::move(pkt));
  }
};

TEST(Path, InjectionTravelsOppositeDirection) {
  PathFixture fx;
  ReflectorElement reflector;
  fx.path.attach(5, &reflector);
  fx.path.send_from_client(probe(64));
  fx.loop.run();
  ASSERT_EQ(fx.at_server.size(), 1u);
  ASSERT_EQ(fx.at_client.size(), 1u);
  EXPECT_TRUE(fx.at_client[0].tcp->flags.rst);
  // The injected packet crossed 5 hops back to the client.
  EXPECT_EQ(fx.at_client[0].ip.ttl, 64 - 5);
}

TEST(Path, FifoNoReorderingUnderJitter) {
  PathConfig cfg;
  cfg.server_hops = 12;
  cfg.jitter_us = 500;  // aggressive jitter
  cfg.per_link_loss = 0.0;
  PathFixture fx(cfg);
  for (u32 i = 0; i < 50; ++i) {
    fx.path.send_from_client(probe(64, i));
  }
  fx.loop.run();
  ASSERT_EQ(fx.at_server.size(), 50u);
  for (u32 i = 0; i < 50; ++i) {
    EXPECT_EQ(fx.at_server[i].tcp->seq, i) << "reordered at " << i;
  }
}

TEST(Path, LossIsApplied) {
  PathConfig cfg;
  cfg.server_hops = 10;
  cfg.jitter_us = 0;
  cfg.per_link_loss = 0.05;  // ~40% end-to-end over 10 hops
  PathFixture fx(cfg);
  for (u32 i = 0; i < 400; ++i) {
    fx.path.send_from_client(probe(64, i));
  }
  fx.loop.run();
  EXPECT_LT(fx.at_server.size(), 320u);
  EXPECT_GT(fx.at_server.size(), 150u);
}

TEST(Path, RouteShiftMovesServer) {
  PathFixture fx;
  EXPECT_EQ(fx.path.current_server_hops(), 10);
  fx.path.shift_route(+2);
  EXPECT_EQ(fx.path.current_server_hops(), 12);
  // A packet that used to just reach the server now expires.
  fx.path.send_from_client(probe(10));
  fx.loop.run();
  EXPECT_TRUE(fx.at_server.empty());
  fx.path.send_from_client(probe(12));
  fx.loop.run();
  EXPECT_EQ(fx.at_server.size(), 1u);
}

TEST(Path, FinalizesOutgoingPackets) {
  PathFixture fx;
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::psh_ack(), 1, 2,
                               to_bytes("payload"));
  EXPECT_EQ(pkt.tcp->checksum, 0);
  fx.path.send_from_client(std::move(pkt));
  fx.loop.run();
  ASSERT_EQ(fx.at_server.size(), 1u);
  EXPECT_TRUE(transport_checksum_ok(fx.at_server[0]));
  EXPECT_NE(fx.at_server[0].ip.total_length, 0);
}

TEST(Path, CountsDeliveries) {
  PathFixture fx;
  fx.path.send_from_client(probe(64));
  fx.path.send_from_server(probe(64));
  fx.loop.run();
  EXPECT_EQ(fx.path.packets_delivered_to_server(), 1u);
  EXPECT_EQ(fx.path.packets_delivered_to_client(), 1u);
}

}  // namespace
}  // namespace ys::net
