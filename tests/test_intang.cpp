// INTANG component tests: the TTL'd key-value store (Redis stand-in), the
// LRU cache front, the measurement-driven strategy selector, the DNS
// forwarder, and the orchestrator's automatic feedback loop.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/trial.h"
#include "intang/intang.h"

namespace ys::intang {
namespace {

// ---------------------------------------------------------------- KvStore

TEST(KvStore, SetGetOverwrite) {
  KvStore store;
  const SimTime now = SimTime::zero();
  EXPECT_FALSE(store.get("k", now).has_value());
  store.set("k", "v1", now);
  EXPECT_EQ(store.get("k", now).value(), "v1");
  store.set("k", "v2", now);
  EXPECT_EQ(store.get("k", now).value(), "v2");
  EXPECT_TRUE(store.erase("k"));
  EXPECT_FALSE(store.erase("k"));
}

TEST(KvStore, TtlExpiry) {
  KvStore store;
  store.set("k", "v", SimTime::zero(), SimTime::from_sec(10));
  EXPECT_TRUE(store.get("k", SimTime::from_sec(9)).has_value());
  EXPECT_FALSE(store.get("k", SimTime::from_sec(10)).has_value());
  // Expired entries are reaped on read.
  EXPECT_EQ(store.size(SimTime::from_sec(11)), 0u);
}

TEST(KvStore, TtlRemaining) {
  KvStore store;
  store.set("k", "v", SimTime::zero(), SimTime::from_sec(60));
  auto remaining = store.ttl_remaining("k", SimTime::from_sec(20));
  ASSERT_TRUE(remaining.has_value());
  EXPECT_EQ(remaining->us, SimTime::from_sec(40).us);
  store.set("nolimit", "v", SimTime::zero());
  EXPECT_FALSE(store.ttl_remaining("nolimit", SimTime::zero()).has_value());
}

TEST(KvStore, IncrCountsAndPreservesTtl) {
  KvStore store;
  const SimTime now = SimTime::zero();
  EXPECT_EQ(store.incr("counter", now), 1);
  EXPECT_EQ(store.incr("counter", now), 2);
  EXPECT_EQ(store.incr("counter", now, 10), 12);
  EXPECT_EQ(store.get("counter", now).value(), "12");

  store.set("timed", "5", now, SimTime::from_sec(30));
  store.incr("timed", SimTime::from_sec(10));
  EXPECT_FALSE(store.get("timed", SimTime::from_sec(31)).has_value());
}

TEST(KvStore, IncrOnExpiredStartsFresh) {
  KvStore store;
  store.set("c", "100", SimTime::zero(), SimTime::from_sec(1));
  EXPECT_EQ(store.incr("c", SimTime::from_sec(2)), 1);
}

// --------------------------------------------------------------- LruCache

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(3, "three");  // evicts 1
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.get(2).value(), "two");
  EXPECT_EQ(cache.get(3).value(), "three");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, GetRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_TRUE(cache.get(1).has_value());  // 1 becomes most recent
  cache.put(3, 30);                       // evicts 2, not 1
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // refresh, not insert
  cache.put(3, 30);  // evicts 2
  EXPECT_EQ(cache.get(1).value(), 11);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LruCache, EraseAndClear) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(2));
}

// ----------------------------------------------------------------- selector

const net::IpAddr kServer = net::make_ip(93, 184, 216, 34);

TEST(Selector, TriesCandidatesInOrderWhenCold) {
  StrategySelector::Config cfg;
  cfg.candidates = {strategy::StrategyId::kImprovedTeardown,
                    strategy::StrategyId::kImprovedInOrder};
  StrategySelector selector(cfg);
  const SimTime now = SimTime::zero();
  EXPECT_EQ(selector.choose(kServer, now),
            strategy::StrategyId::kImprovedTeardown);
  // Feedback: the first candidate failed → try the untried one next.
  selector.report(kServer, strategy::StrategyId::kImprovedTeardown, false,
                  now);
  EXPECT_EQ(selector.choose(kServer, now),
            strategy::StrategyId::kImprovedInOrder);
}

TEST(Selector, CachesKnownGoodStrategy) {
  StrategySelector selector{StrategySelector::Config{}};
  const SimTime now = SimTime::zero();
  selector.report(kServer, strategy::StrategyId::kImprovedInOrder, true, now);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(selector.choose(kServer, now),
              strategy::StrategyId::kImprovedInOrder);
  }
}

TEST(Selector, FailureInvalidatesKnownGood) {
  StrategySelector::Config cfg;
  cfg.candidates = {strategy::StrategyId::kImprovedTeardown,
                    strategy::StrategyId::kImprovedInOrder};
  StrategySelector selector(cfg);
  const SimTime now = SimTime::zero();
  selector.report(kServer, strategy::StrategyId::kImprovedTeardown, true,
                  now);
  ASSERT_EQ(selector.choose(kServer, now),
            strategy::StrategyId::kImprovedTeardown);
  selector.report(kServer, strategy::StrategyId::kImprovedTeardown, false,
                  now);
  // The invalidated record no longer pins the choice; the untried
  // candidate gets its chance.
  EXPECT_EQ(selector.choose(kServer, now),
            strategy::StrategyId::kImprovedInOrder);
}

TEST(Selector, KnownGoodExpiresWithRecordTtl) {
  StrategySelector::Config cfg;
  cfg.record_ttl = SimTime::from_sec(100);
  cfg.lru_capacity = 0;  // force the store path (no front cache)
  StrategySelector selector(cfg);
  selector.report(kServer, strategy::StrategyId::kImprovedInOrder, true,
                  SimTime::zero());
  EXPECT_EQ(selector.choose(kServer, SimTime::from_sec(50)),
            strategy::StrategyId::kImprovedInOrder);
  // After expiry the choice falls back to exploration order.
  EXPECT_EQ(selector.choose(kServer, SimTime::from_sec(101)),
            selector.config().candidates.front());
}

TEST(Selector, PrefersBestSuccessRatio) {
  StrategySelector::Config cfg;
  cfg.candidates = {strategy::StrategyId::kImprovedTeardown,
                    strategy::StrategyId::kImprovedInOrder};
  StrategySelector selector(cfg);
  const SimTime now = SimTime::zero();
  // teardown: 1 ok, 3 bad. in-order: 3 ok, 1 bad. Kill the known-good
  // record afterwards so the ratio logic decides.
  selector.report(kServer, strategy::StrategyId::kImprovedTeardown, true, now);
  for (int i = 0; i < 3; ++i) {
    selector.report(kServer, strategy::StrategyId::kImprovedTeardown, false,
                    now);
  }
  for (int i = 0; i < 3; ++i) {
    selector.report(kServer, strategy::StrategyId::kImprovedInOrder, true,
                    now);
  }
  selector.report(kServer, strategy::StrategyId::kImprovedInOrder, false, now);
  EXPECT_EQ(selector.choose(kServer, now),
            strategy::StrategyId::kImprovedInOrder);
  auto [ok, bad] = selector.tallies(
      kServer, strategy::StrategyId::kImprovedTeardown, now);
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(bad, 3);
}

TEST(Selector, PerServerIsolation) {
  StrategySelector selector{StrategySelector::Config{}};
  const net::IpAddr other = net::make_ip(1, 2, 3, 4);
  const SimTime now = SimTime::zero();
  selector.report(kServer, strategy::StrategyId::kImprovedInOrder, true, now);
  // The other server is still cold: exploration order.
  EXPECT_EQ(selector.choose(other, now),
            selector.config().candidates.front());
}

// ----------------------------------------------------- forwarder + intang

exp::Scenario make_scenario(u64 seed, net::IpAddr resolver) {
  static const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  exp::ScenarioOptions opt;
  opt.vp = exp::china_vantage_points()[0];
  opt.server.host = "resolver";
  opt.server.ip = resolver;
  opt.cal = exp::Calibration::standard();
  opt.cal.detection_miss = 0.0;
  opt.cal.per_link_loss = 0.0;
  opt.cal.ttl_estimate_error_prob = 0.0;
  opt.seed = seed;
  return exp::Scenario(&rules, opt);
}

TEST(DnsForwarder, ConvertsAndMapsResponsesBack) {
  const net::IpAddr resolver = net::make_ip(216, 146, 35, 35);
  exp::Scenario sc = make_scenario(31, resolver);
  exp::DnsTrialOptions dns;
  dns.domain = "www.dropbox.com";
  dns.use_intang = true;
  const exp::DnsTrialResult result = exp::run_dns_trial(sc, dns);
  EXPECT_TRUE(result.answered);
  EXPECT_FALSE(result.poisoned);
  EXPECT_EQ(result.outcome, exp::Outcome::kSuccess);
}

TEST(DnsForwarder, CountsConversions) {
  const net::IpAddr resolver = net::make_ip(216, 146, 35, 35);
  exp::Scenario sc = make_scenario(32, resolver);

  Intang::Config cfg;
  cfg.knowledge = sc.knowledge();
  cfg.tcp_dns_resolver = resolver;
  Intang intang(sc.client(), cfg, sc.fork_rng());

  // Serve TCP DNS on the scenario server.
  auto offsets =
      std::make_shared<std::unordered_map<const void*, std::size_t>>();
  sc.server().listen(53, [offsets](tcp::TcpEndpoint& ep, ByteView) {
    std::size_t& off = (*offsets)[&ep];
    for (const auto& msg :
         app::dns_tcp_extract(ep.received_stream(), &off)) {
      if (!msg.is_response) {
        ep.send_data(app::dns_tcp_frame(
            app::make_response(msg, net::make_ip(1, 2, 3, 4))));
      }
    }
  });

  int answers = 0;
  sc.client().bind_udp(5353, [&answers](const net::FourTuple&, ByteView) {
    ++answers;
  });
  for (u16 i = 0; i < 3; ++i) {
    sc.client().send_udp(
        net::FourTuple{sc.client().config().address, 5353, resolver, 53},
        app::dns_encode(app::make_query(i, "example.org")));
  }
  sc.run();
  ASSERT_NE(intang.dns_forwarder(), nullptr);
  EXPECT_EQ(intang.dns_forwarder()->queries_converted(), 3);
  EXPECT_EQ(intang.dns_forwarder()->responses_returned(), 3);
  EXPECT_EQ(answers, 3);
}

TEST(Intang, AutomaticFeedbackMarksSuccess) {
  exp::Scenario sc = make_scenario(33, net::make_ip(93, 184, 216, 34));
  intang::StrategySelector selector{StrategySelector::Config{}};
  exp::HttpTrialOptions http;
  http.with_keyword = true;
  http.use_intang = true;
  http.shared_selector = &selector;
  const exp::TrialResult result = exp::run_http_trial(sc, http);
  EXPECT_EQ(result.outcome, exp::Outcome::kSuccess);
  auto [ok, bad] =
      selector.tallies(net::make_ip(93, 184, 216, 34), result.strategy_used,
                       sc.loop().now());
  EXPECT_GE(ok, 1);
  EXPECT_EQ(bad, 0);
}

TEST(Intang, ConvergesAwayFromFailingStrategy) {
  // A path whose hop estimate is systematically wrong breaks TTL-based
  // strategies; INTANG must settle on the MD5-based one.
  static const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  StrategySelector selector{StrategySelector::Config{}};
  int successes = 0;
  strategy::StrategyId last = strategy::StrategyId::kNone;
  for (int t = 0; t < 8; ++t) {
    exp::ScenarioOptions opt;
    opt.vp = exp::china_vantage_points()[0];
    opt.server.host = "site";
    opt.server.ip = net::make_ip(93, 184, 100, 50);
    opt.cal = exp::Calibration::standard();
    opt.cal.detection_miss = 0.0;
    opt.cal.per_link_loss = 0.0;
    // Force a stale estimate: TTL-crafted packets hit the server.
    opt.cal.ttl_estimate_error_prob = 1.0;
    opt.cal.ttl_estimate_error_hops = 2;
    opt.path_seed = 4241;  // a path draw where the error is +2
    opt.seed = 100 + static_cast<u64>(t);
    exp::Scenario sc(&rules, opt);
    if (sc.knowledge().hop_estimate <= sc.server_hops()) continue;

    exp::HttpTrialOptions http;
    http.with_keyword = true;
    http.use_intang = true;
    http.shared_selector = &selector;
    const exp::TrialResult result = exp::run_http_trial(sc, http);
    if (result.outcome == exp::Outcome::kSuccess) ++successes;
    last = result.strategy_used;
  }
  EXPECT_GE(successes, 4);
  EXPECT_EQ(last, strategy::StrategyId::kImprovedInOrder);
}

}  // namespace
}  // namespace ys::intang
