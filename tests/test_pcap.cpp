// Pcap writer tests: the emitted files must be structurally valid captures
// (parsed back byte-for-byte through our own wire codec) with correct
// headers and timestamps.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "netsim/pcap.h"
#include "netsim/wire.h"
#include "strategy/insertion.h"

namespace ys::net {
namespace {

const FourTuple kTuple{make_ip(10, 0, 0, 1), 40000,
                       make_ip(93, 184, 216, 34), 80};

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  Bytes out;
  u8 buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

u32 le32(ByteView b, std::size_t off) {
  return static_cast<u32>(b[off]) | (static_cast<u32>(b[off + 1]) << 8) |
         (static_cast<u32>(b[off + 2]) << 16) |
         (static_cast<u32>(b[off + 3]) << 24);
}

TEST(Pcap, GlobalHeaderIsWellFormed) {
  const std::string path = temp_path("ys_pcap_header.pcap");
  PcapWriter writer;
  ASSERT_TRUE(writer.open(path).ok());
  writer.close();

  const Bytes data = read_file(path);
  ASSERT_EQ(data.size(), 24u);
  EXPECT_EQ(le32(data, 0), 0xA1B2C3D4u);  // magic, µs timestamps
  EXPECT_EQ(le32(data, 20), 101u);        // LINKTYPE_RAW
  std::filesystem::remove(path);
}

TEST(Pcap, PacketsRoundTripThroughWireCodec) {
  const std::string path = temp_path("ys_pcap_roundtrip.pcap");
  Rng rng(3);
  Packet first = strategy::craft_data(kTuple, 1000, 2000,
                                      strategy::junk_payload(64, rng));
  finalize(first);
  Packet second = strategy::craft_rst(kTuple.reversed(), 5000);
  finalize(second);

  {
    PcapWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.write(first, SimTime::from_ms(1500)).ok());
    ASSERT_TRUE(writer.write(second, SimTime::from_ms(1501)).ok());
    EXPECT_EQ(writer.packets_written(), 2u);
  }

  const Bytes data = read_file(path);
  std::size_t off = 24;

  // Record 1: timestamp 1.5 s, then the exact wire image of `first`.
  EXPECT_EQ(le32(data, off), 1u);            // seconds
  EXPECT_EQ(le32(data, off + 4), 500'000u);  // microseconds
  const u32 len1 = le32(data, off + 8);
  EXPECT_EQ(len1, le32(data, off + 12));
  const Bytes image1 = serialize(first);
  ASSERT_EQ(len1, image1.size());
  off += 16;
  EXPECT_TRUE(std::equal(image1.begin(), image1.end(), data.begin() + off));

  // And it parses back to the original packet.
  auto parsed = parse(ByteView(data).subspan(off, len1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tcp->seq, 1000u);
  EXPECT_EQ(parsed.value().payload, first.payload);
  off += len1;

  // Record 2 parses as the RST.
  const u32 len2 = le32(data, off + 8);
  off += 16;
  auto parsed2 = parse(ByteView(data).subspan(off, len2));
  ASSERT_TRUE(parsed2.ok());
  EXPECT_TRUE(parsed2.value().tcp->flags.rst);
  std::filesystem::remove(path);
}

TEST(Pcap, WriteWithoutOpenFails) {
  PcapWriter writer;
  Packet pkt = strategy::craft_rst(kTuple, 1);
  finalize(pkt);
  EXPECT_FALSE(writer.write(pkt, SimTime::zero()).ok());
  EXPECT_FALSE(writer.is_open());
}

TEST(Pcap, ConvenienceWriterHandlesBatch) {
  const std::string path = temp_path("ys_pcap_batch.pcap");
  std::vector<TimedPacket> batch;
  for (u32 i = 0; i < 5; ++i) {
    Packet pkt = make_tcp_packet(kTuple, TcpFlags::only_ack(), i, 0);
    finalize(pkt);
    batch.push_back({std::move(pkt), SimTime::from_ms(i)});
  }
  ASSERT_TRUE(write_pcap(path, batch).ok());
  const Bytes data = read_file(path);
  // Header + 5 × (16-byte record header + 40-byte packet).
  EXPECT_EQ(data.size(), 24u + 5u * (16u + 40u));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ys::net
