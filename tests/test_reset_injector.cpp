// Reset injector tests: the exact §2.1 fingerprints — type-1 randomness,
// type-2 cyclic TTL/window progression and sequence offsets, the
// block-period forged SYN/ACK, and whole-IP blocking responses.
#include <gtest/gtest.h>

#include <set>

#include "gfw/reset_injector.h"

namespace ys::gfw {
namespace {

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

GfwTcb make_tcb(u32 client_next = 2000, u32 server_next = 9000) {
  GfwTcb tcb(kTuple, net::Dir::kC2S, /*reversed=*/false);
  tcb.client_next = client_next;
  tcb.server_next = server_next;
  tcb.server_seq_known = true;
  return tcb;
}

TEST(ResetInjector, Type1IsOneBareRstPerDirection) {
  ResetInjector injector{Rng(3)};
  const GfwTcb tcb = make_tcb();
  const auto resets = injector.type1_resets(tcb);
  ASSERT_EQ(resets.size(), 2u);

  const auto& to_client = resets[0];
  EXPECT_EQ(to_client.dir, net::Dir::kS2C);
  EXPECT_TRUE(to_client.packet.tcp->flags.rst);
  EXPECT_FALSE(to_client.packet.tcp->flags.ack);
  EXPECT_EQ(to_client.packet.tcp->seq, 9000u);  // server-side seq
  EXPECT_EQ(to_client.packet.ip.src, kTuple.dst_ip);

  const auto& to_server = resets[1];
  EXPECT_EQ(to_server.dir, net::Dir::kC2S);
  EXPECT_EQ(to_server.packet.tcp->seq, 2000u);  // client-side seq
  EXPECT_EQ(to_server.packet.ip.src, kTuple.src_ip);
}

TEST(ResetInjector, Type1TtlAndWindowLookRandom) {
  ResetInjector injector{Rng(3)};
  const GfwTcb tcb = make_tcb();
  std::set<int> ttls;
  std::set<int> windows;
  for (int i = 0; i < 12; ++i) {
    const auto resets = injector.type1_resets(tcb);
    ttls.insert(resets[0].packet.ip.ttl);
    windows.insert(resets[0].packet.tcp->window);
  }
  // Random draws: many distinct values over 12 volleys.
  EXPECT_GE(ttls.size(), 8u);
  EXPECT_GE(windows.size(), 8u);
}

TEST(ResetInjector, Type2VolleyHasPaperSequenceOffsets) {
  ResetInjector injector{Rng(3)};
  const GfwTcb tcb = make_tcb(2000, 9000);
  const auto volley = injector.type2_resets(tcb);
  ASSERT_EQ(volley.size(), 6u);

  // Toward the client: X, X+1460, X+4380 anchored at the server seq.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(volley[static_cast<std::size_t>(i)].dir, net::Dir::kS2C);
    EXPECT_TRUE(volley[static_cast<std::size_t>(i)].packet.tcp->flags.rst);
    EXPECT_TRUE(volley[static_cast<std::size_t>(i)].packet.tcp->flags.ack);
  }
  EXPECT_EQ(volley[0].packet.tcp->seq, 9000u);
  EXPECT_EQ(volley[1].packet.tcp->seq, 9000u + 1460);
  EXPECT_EQ(volley[2].packet.tcp->seq, 9000u + 4380);
  // Toward the server: anchored at the client seq.
  EXPECT_EQ(volley[3].packet.tcp->seq, 2000u);
  EXPECT_EQ(volley[4].packet.tcp->seq, 2000u + 1460);
  EXPECT_EQ(volley[5].packet.tcp->seq, 2000u + 4380);
}

TEST(ResetInjector, Type2TtlAndWindowCycle) {
  ResetInjector injector{Rng(3)};
  const GfwTcb tcb = make_tcb();
  const auto volley = injector.type2_resets(tcb);
  // Cyclically increasing TTLs within a volley (§2.1's fingerprint).
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(volley[i].packet.ip.ttl, volley[i - 1].packet.ip.ttl + 1);
    EXPECT_GT(volley[i].packet.tcp->window, volley[i - 1].packet.tcp->window);
  }
  EXPECT_EQ(injector.type2_cycle(), 6u);
}

TEST(ResetInjector, ReversedTcbFlipsInjectionDirections) {
  ResetInjector injector{Rng(3)};
  GfwTcb tcb(kTuple, net::Dir::kS2C, /*reversed=*/true);
  tcb.client_next = 100;
  tcb.server_next = 200;
  const auto resets = injector.type1_resets(tcb);
  // "Toward the assumed client" now travels c2s on the real path.
  EXPECT_EQ(resets[0].dir, net::Dir::kC2S);
  EXPECT_EQ(resets[1].dir, net::Dir::kS2C);
}

TEST(ResetInjector, BlockPeriodSynDrawsForgedSynAck) {
  ResetInjector injector{Rng(3)};
  net::Packet syn = net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(),
                                         31337, 0);
  const auto response = injector.block_period_response(syn, net::Dir::kC2S);
  ASSERT_EQ(response.size(), 1u);
  const net::Packet& forged = response[0].packet;
  EXPECT_TRUE(forged.tcp->flags.syn);
  EXPECT_TRUE(forged.tcp->flags.ack);
  EXPECT_EQ(forged.tcp->ack, 31338u);       // acks the SYN correctly...
  EXPECT_NE(forged.tcp->seq, 0u);           // ...with a bogus sequence
  EXPECT_EQ(response[0].dir, net::Dir::kS2C);
  EXPECT_EQ(forged.ip.src, kTuple.dst_ip);  // "from" the server
}

TEST(ResetInjector, BlockPeriodDataDrawsRstBothWays) {
  ResetInjector injector{Rng(3)};
  net::Packet data = net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(),
                                          500, 700, to_bytes("hello"));
  const auto response = injector.block_period_response(data, net::Dir::kC2S);
  ASSERT_EQ(response.size(), 2u);
  EXPECT_EQ(response[0].dir, net::Dir::kS2C);
  EXPECT_TRUE(response[0].packet.tcp->flags.rst);
  EXPECT_EQ(response[0].packet.tcp->ack, 505u);  // acks past the data
  EXPECT_EQ(response[1].dir, net::Dir::kC2S);
  EXPECT_TRUE(response[1].packet.tcp->flags.rst);
  EXPECT_EQ(response[1].packet.tcp->seq, 505u);
}

TEST(ResetInjector, BlockPeriodIgnoresNonTcp) {
  ResetInjector injector{Rng(3)};
  net::Packet udp = net::make_udp_packet(kTuple, to_bytes("dns"));
  EXPECT_TRUE(injector.block_period_response(udp, net::Dir::kC2S).empty());
  EXPECT_TRUE(injector.ip_block_response(udp, net::Dir::kC2S).empty());
}

TEST(ResetInjector, IpBlockResetsBothWaysWithoutForgery) {
  ResetInjector injector{Rng(3)};
  net::Packet syn = net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(),
                                         42, 0);
  const auto response = injector.ip_block_response(syn, net::Dir::kC2S);
  ASSERT_EQ(response.size(), 2u);
  for (const auto& inj : response) {
    EXPECT_TRUE(inj.packet.tcp->flags.rst);
    EXPECT_FALSE(inj.packet.tcp->flags.syn);  // no forged handshakes here
  }
}

}  // namespace
}  // namespace ys::gfw
