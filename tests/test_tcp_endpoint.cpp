// TCP endpoint state-machine tests: the RFC 793 core, modern-Linux
// extensions (RFC 5961 challenge ACKs, PAWS, RFC 2385 rejection), every
// Table 3 ignore path, reassembly overlap policies, retransmission, and
// the per-version behaviour profiles of §5.3 as parameterized sweeps.
#include <gtest/gtest.h>

#include "netsim/event_loop.h"
#include "tcpstack/tcp_endpoint.h"

namespace ys::tcp {
namespace {

const net::FourTuple kClientTuple{net::make_ip(10, 0, 0, 1), 40000,
                                  net::make_ip(93, 184, 216, 34), 80};

/// Test rig around one endpoint in the *server* role, driven by scripted
/// client segments.
struct Rig {
  net::EventLoop loop;
  std::vector<net::Packet> sent;
  Bytes delivered;
  int resets = 0;
  int established = 0;
  int peer_closes = 0;
  std::unique_ptr<TcpEndpoint> ep;
  u32 cseq = 1000;  // scripted client sequence cursor
  bool with_timestamps;
  u32 ts = 100'000;

  explicit Rig(StackProfile profile = StackProfile::for_version(
                   LinuxVersion::k4_4),
               bool timestamps = true)
      : with_timestamps(timestamps) {
    TcpEndpoint::Callbacks cb;
    cb.send = [this](net::Packet p) { sent.push_back(std::move(p)); };
    cb.on_data = [this](ByteView d) {
      delivered.insert(delivered.end(), d.begin(), d.end());
    };
    cb.on_reset = [this] { ++resets; };
    cb.on_established = [this] { ++established; };
    cb.on_peer_close = [this] { ++peer_closes; };
    ep = std::make_unique<TcpEndpoint>(loop, Rng(3), profile,
                                       kClientTuple.reversed(),
                                       std::move(cb));
  }

  void feed(net::Packet pkt) {
    if (with_timestamps && pkt.tcp && !pkt.tcp->options.timestamps) {
      pkt.tcp->options.timestamps = net::TcpTimestamps{++ts, 0};
    }
    net::finalize(pkt);
    ep->on_segment(pkt);
  }

  /// Drive the endpoint to ESTABLISHED via a scripted handshake.
  void handshake() {
    ep->open_passive();
    feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(), cseq,
                              0));
    ++cseq;
    feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(), cseq,
                              ep->iss() + 1));
    ASSERT_EQ(ep->state(), TcpState::kEstablished);
  }

  void send_client_data(std::string_view payload) {
    feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(), cseq,
                              ep->snd_nxt(), to_bytes(payload)));
    cseq += static_cast<u32>(payload.size());
  }

  const net::Packet& last_sent() const { return sent.back(); }
  IgnoreReason last_ignore() const { return ep->ignore_log().back().reason; }
};

// --------------------------------------------------------------- handshake

TEST(Handshake, PassiveOpenThreeWay) {
  Rig rig;
  rig.ep->open_passive();
  EXPECT_EQ(rig.ep->state(), TcpState::kListen);

  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kSynRecv);
  ASSERT_FALSE(rig.sent.empty());
  EXPECT_TRUE(rig.last_sent().tcp->flags.syn);
  EXPECT_TRUE(rig.last_sent().tcp->flags.ack);
  EXPECT_EQ(rig.last_sent().tcp->ack, rig.cseq + 1);

  ++rig.cseq;
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(),
                                rig.cseq, rig.ep->iss() + 1));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.established, 1);
}

TEST(Handshake, ActiveOpenSendsSynAndCompletes) {
  Rig rig;
  // Reuse the rig as a *client*: open actively and feed the SYN/ACK.
  rig.ep->open_active();
  EXPECT_EQ(rig.ep->state(), TcpState::kSynSent);
  ASSERT_EQ(rig.sent.size(), 1u);
  EXPECT_TRUE(rig.last_sent().tcp->flags.syn);
  EXPECT_FALSE(rig.last_sent().tcp->flags.ack);

  net::Packet synack = net::make_tcp_packet(
      kClientTuple, net::TcpFlags::syn_ack(), 5000, rig.ep->iss() + 1);
  rig.feed(std::move(synack));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.ep->rcv_nxt(), 5001u);
  // The final ACK went out.
  EXPECT_TRUE(rig.last_sent().tcp->flags.ack);
  EXPECT_FALSE(rig.last_sent().tcp->flags.syn);
}

TEST(Handshake, SynAckWithWrongAckDrawsRstAndIsIgnored) {
  Rig rig;
  rig.ep->open_active();
  net::Packet synack = net::make_tcp_packet(
      kClientTuple, net::TcpFlags::syn_ack(), 5000, rig.ep->iss() + 999);
  rig.feed(std::move(synack));
  EXPECT_EQ(rig.ep->state(), TcpState::kSynSent);
  EXPECT_TRUE(rig.last_sent().tcp->flags.rst);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kBadAckNumber);
}

TEST(Handshake, ForgedSynAckWithWrongSeqIsAcceptedInSynSent) {
  // The GFW's block-period forgery: correct ack, bogus seq. A real client
  // accepts it and desynchronizes — that is exactly how the GFW obstructs
  // handshakes during the 90-second window.
  Rig rig;
  rig.ep->open_active();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::syn_ack(),
                                0xDEAD0000, rig.ep->iss() + 1));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.ep->rcv_nxt(), 0xDEAD0001u);
}

TEST(Handshake, AckInListenDrawsRst) {
  Rig rig;
  rig.ep->open_passive();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(), 7,
                                1234));
  EXPECT_EQ(rig.ep->state(), TcpState::kListen);
  ASSERT_FALSE(rig.sent.empty());
  EXPECT_TRUE(rig.last_sent().tcp->flags.rst);
  EXPECT_EQ(rig.last_sent().tcp->seq, 1234u);
}

TEST(Handshake, DuplicateSynRetransmitsSynAck) {
  Rig rig;
  rig.ep->open_passive();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  const std::size_t after_first = rig.sent.size();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.sent.size(), after_first + 1);
  EXPECT_TRUE(rig.last_sent().tcp->flags.syn);
  EXPECT_TRUE(rig.last_sent().tcp->flags.ack);
}

// ------------------------------------------------------------ data transfer

TEST(Data, InOrderDeliveryAndAck) {
  Rig rig;
  rig.handshake();
  rig.send_client_data("hello ");
  rig.send_client_data("world");
  EXPECT_EQ(ys::to_string(rig.delivered), "hello world");
  EXPECT_EQ(rig.ep->rcv_nxt(), rig.cseq);
  EXPECT_TRUE(rig.last_sent().tcp->flags.ack);
  EXPECT_EQ(rig.last_sent().tcp->ack, rig.cseq);
}

TEST(Data, OutOfOrderIsBufferedThenDrained) {
  Rig rig;
  rig.handshake();
  const u32 base = rig.cseq;
  // Send the second segment first.
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                base + 5, rig.ep->snd_nxt(),
                                to_bytes("world")));
  EXPECT_TRUE(rig.delivered.empty());
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(), base,
                                rig.ep->snd_nxt(), to_bytes("hello")));
  EXPECT_EQ(ys::to_string(rig.delivered), "helloworld");
}

TEST(Data, OverlapPreferFirstKeepsOriginalBytes) {
  Rig rig;  // Linux: first copy of a byte wins
  rig.handshake();
  const u32 base = rig.cseq;
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                base + 8, rig.ep->snd_nxt(),
                                to_bytes("REAL")));
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                base + 8, rig.ep->snd_nxt(),
                                to_bytes("JUNK")));
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(), base,
                                rig.ep->snd_nxt(), to_bytes("12345678")));
  EXPECT_EQ(ys::to_string(rig.delivered), "12345678REAL");
}

TEST(Data, OverlapPreferLastKeepsNewestBytes) {
  StackProfile profile = StackProfile::for_version(LinuxVersion::k4_4);
  profile.segment_overlap = net::OverlapPolicy::kPreferLast;
  Rig rig(profile);
  rig.handshake();
  const u32 base = rig.cseq;
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                base + 8, rig.ep->snd_nxt(),
                                to_bytes("REAL")));
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                base + 8, rig.ep->snd_nxt(),
                                to_bytes("JUNK")));
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(), base,
                                rig.ep->snd_nxt(), to_bytes("12345678")));
  EXPECT_EQ(ys::to_string(rig.delivered), "12345678JUNK");
}

TEST(Data, DuplicateSegmentIgnoredWithAck) {
  Rig rig;
  rig.handshake();
  const u32 base = rig.cseq;
  rig.send_client_data("hello");
  const std::size_t sent_before = rig.sent.size();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(), base,
                                rig.ep->snd_nxt(), to_bytes("hello")));
  EXPECT_EQ(ys::to_string(rig.delivered), "hello");  // not duplicated
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kDuplicateData);
  EXPECT_EQ(rig.sent.size(), sent_before + 1);  // dup ACK went out
}

TEST(Data, BeyondWindowIgnoredWithDupAck) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                rig.cseq + 1'000'000, rig.ep->snd_nxt(),
                                to_bytes("far away")));
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kOutOfWindowSeq);
  EXPECT_TRUE(rig.last_sent().tcp->flags.ack);
}

TEST(Data, SegmentationAtMss) {
  Rig rig;
  rig.handshake();
  Bytes big(4000, 'x');
  rig.ep->send_data(big);
  // 4000 bytes at MSS 1460 → 3 segments.
  int data_segments = 0;
  std::size_t total = 0;
  for (const auto& pkt : rig.sent) {
    if (!pkt.payload.empty()) {
      ++data_segments;
      EXPECT_LE(pkt.payload.size(), 1460u);
      total += pkt.payload.size();
    }
  }
  EXPECT_EQ(data_segments, 3);
  EXPECT_EQ(total, 4000u);
}

TEST(Data, RetransmitsUntilAcked) {
  Rig rig;
  rig.handshake();
  rig.ep->send_data(to_bytes("needs delivery"));
  const auto count_payloads = [&] {
    int n = 0;
    for (const auto& p : rig.sent) {
      if (!p.payload.empty()) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_payloads(), 1);
  rig.loop.run_until(SimTime::from_ms(250));  // first RTO fires
  EXPECT_EQ(count_payloads(), 2);
  // Ack it: retransmissions stop.
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(),
                                rig.cseq, rig.ep->snd_nxt()));
  rig.loop.run_until(SimTime::from_sec(30));
  EXPECT_EQ(count_payloads(), 2);
}

TEST(Data, RetransmissionGivesUpEventually) {
  Rig rig;
  rig.handshake();
  rig.ep->send_data(to_bytes("void"));
  rig.loop.run_until(SimTime::from_sec(120));
  EXPECT_TRUE(rig.loop.idle());  // timers stopped after max attempts
}

// ---------------------------------------------------------------- closing

TEST(Close, PeerInitiatedFinSequence) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::fin_ack(),
                                rig.cseq, rig.ep->snd_nxt()));
  EXPECT_EQ(rig.ep->state(), TcpState::kCloseWait);
  EXPECT_EQ(rig.peer_closes, 1);
  EXPECT_EQ(rig.ep->rcv_nxt(), rig.cseq + 1);  // FIN consumed a sequence

  rig.ep->close();
  EXPECT_EQ(rig.ep->state(), TcpState::kLastAck);
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(),
                                rig.cseq + 1, rig.ep->snd_nxt()));
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
}

TEST(Close, LocalInitiatedFinSequence) {
  Rig rig;
  rig.handshake();
  rig.ep->close();
  EXPECT_EQ(rig.ep->state(), TcpState::kFinWait1);
  // Peer acks our FIN.
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(),
                                rig.cseq, rig.ep->snd_nxt()));
  EXPECT_EQ(rig.ep->state(), TcpState::kFinWait2);
  // Peer sends its FIN.
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::fin_ack(),
                                rig.cseq, rig.ep->snd_nxt()));
  EXPECT_EQ(rig.ep->state(), TcpState::kTimeWait);
}

TEST(Close, AbortSendsRst) {
  Rig rig;
  rig.handshake();
  rig.ep->abort();
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
  EXPECT_TRUE(rig.last_sent().tcp->flags.rst);
}

TEST(Closed, AnswersNonRstWithRst) {
  Rig rig;
  rig.handshake();
  rig.ep->abort();
  const std::size_t before = rig.sent.size();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                rig.cseq, rig.ep->snd_nxt(),
                                to_bytes("late data")));
  EXPECT_EQ(rig.sent.size(), before + 1);
  EXPECT_TRUE(rig.last_sent().tcp->flags.rst);
  // RSTs to a closed endpoint are discarded silently.
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_rst(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.sent.size(), before + 1);
}

// ------------------------------------------------------- RST handling/5961

TEST(Rst, ExactSeqResets) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_rst(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
  EXPECT_EQ(rig.resets, 1);
  EXPECT_TRUE(rig.ep->was_reset());
}

TEST(Rst, InWindowNonExactDrawsChallengeAck) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_rst(),
                                rig.cseq + 100, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.ep->challenge_acks_sent(), 1);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kChallengeAckRst);
}

TEST(Rst, OutOfWindowIgnored) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_rst(),
                                rig.cseq - 200'000, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kOutOfWindowRst);
}

TEST(Rst, PreRfc5961StackResetsOnInWindowRst) {
  Rig rig(StackProfile::for_version(LinuxVersion::k2_6_34));
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_rst(),
                                rig.cseq + 100, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
}

TEST(Rst, WrongAckStillResetsInEstablished) {
  // §5.3: "even if the RST/ACK has a wrong ACK number ... it will still be
  // able to reset the connection" — no bad-ack protection for RSTs.
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::rst_ack(),
                                rig.cseq, rig.ep->snd_nxt() + 0x01000000));
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
}

TEST(Rst, OldTimestampStillResets) {
  // PAWS exempts RSTs (§5.3): an old-timestamp RST is NOT a safe insertion
  // packet.
  Rig rig;
  rig.handshake();
  net::Packet rst = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::only_rst(), rig.cseq,
                                         0);
  rst.tcp->options.timestamps = net::TcpTimestamps{1, 0};
  net::finalize(rst);
  rig.ep->on_segment(rst);
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
}

// ------------------------------------------------------- SYN in ESTABLISHED

TEST(SynInEstablished, ChallengeAckOn44) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.ep->challenge_acks_sent(), 1);
}

TEST(SynInEstablished, SilentIgnoreOn314) {
  Rig rig(StackProfile::for_version(LinuxVersion::k3_14));
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.ep->challenge_acks_sent(), 0);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kSynSilentlyIgnored);
}

TEST(SynInEstablished, OldStackResetsInWindow) {
  Rig rig(StackProfile::for_version(LinuxVersion::k2_6_34));
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq + 10, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kClosed);
}

TEST(SynInEstablished, OldStackAcksOutOfWindow) {
  Rig rig(StackProfile::for_version(LinuxVersion::k2_6_34));
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq + 0x00800000, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kOutOfWindowSynOld);
}

// ------------------------------------------ Table 3 ignore paths (4.4 base)

TEST(IgnorePath, BadIpLength) {
  Rig rig;
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("data"));
  net::finalize(pkt);
  pkt.ip.total_length = static_cast<u16>(net::wire_size(pkt) + 100);
  rig.ep->on_segment(pkt);
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kBadIpLength);
}

TEST(IgnorePath, ShortTcpHeader) {
  Rig rig;
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("data"));
  pkt.tcp->data_offset_words = 3;
  rig.feed(std::move(pkt));
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kShortTcpHeader);
}

TEST(IgnorePath, BadChecksum) {
  Rig rig;
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("data"));
  net::finalize(pkt);
  pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum + 1);
  rig.ep->on_segment(pkt);
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kBadChecksum);
}

TEST(IgnorePath, RstAckWrongAckInSynRecv) {
  Rig rig;
  rig.ep->open_passive();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  ASSERT_EQ(rig.ep->state(), TcpState::kSynRecv);
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::rst_ack(),
                                rig.cseq + 1, rig.ep->snd_nxt() + 777));
  EXPECT_EQ(rig.ep->state(), TcpState::kSynRecv);  // survived
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kBadAckNumber);
}

TEST(IgnorePath, AckWrongAckInSynRecv) {
  Rig rig;
  rig.ep->open_passive();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_syn(),
                                rig.cseq, 0));
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_ack(),
                                rig.cseq + 1, rig.ep->snd_nxt() + 777));
  EXPECT_EQ(rig.ep->state(), TcpState::kSynRecv);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kBadAckNumber);
}

TEST(IgnorePath, DataWithBadAckInEstablished) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                rig.cseq, rig.ep->snd_nxt() + 0x01000000,
                                to_bytes("junk")));
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kBadAckNumber);
}

TEST(IgnorePath, UnsolicitedMd5) {
  Rig rig;
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("junk"));
  pkt.tcp->options.md5_signature.emplace();
  rig.feed(std::move(pkt));
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kUnsolicitedMd5);
}

TEST(IgnorePath, NoFlagsAtAll) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::none(), rig.cseq,
                                0, to_bytes("junk")));
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kNoAckFlag);
}

TEST(IgnorePath, FinOnlyWithoutAck) {
  Rig rig;
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::only_fin(),
                                rig.cseq, 0));
  EXPECT_EQ(rig.ep->state(), TcpState::kEstablished);
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kNoAckFlag);
}

TEST(IgnorePath, OldTimestampPaws) {
  Rig rig;
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("junk"));
  pkt.tcp->options.timestamps = net::TcpTimestamps{1, 0};  // ancient
  net::finalize(pkt);
  rig.ep->on_segment(pkt);
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.last_ignore(), IgnoreReason::kOldTimestamp);
}

TEST(IgnorePath, NoTimestampsNegotiatedMeansNoPaws) {
  Rig rig(StackProfile::for_version(LinuxVersion::k4_4),
          /*timestamps=*/false);
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("data"));
  pkt.tcp->options.timestamps = net::TcpTimestamps{1, 0};
  net::finalize(pkt);
  rig.ep->on_segment(pkt);
  // Without negotiation there is no ts_recent to compare against.
  EXPECT_EQ(ys::to_string(rig.delivered), "data");
}

// ----------------------------------------- §5.3 version-profile divergences

struct VersionCase {
  LinuxVersion version;
  bool accepts_no_ack_data;
  bool accepts_md5;
};

class VersionSweep : public ::testing::TestWithParam<VersionCase> {};

TEST_P(VersionSweep, NoAckFlagDataPath) {
  const VersionCase& tc = GetParam();
  Rig rig(StackProfile::for_version(tc.version));
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::none(), rig.cseq,
                                0, to_bytes("NOACK")));
  if (tc.accepts_no_ack_data) {
    EXPECT_EQ(ys::to_string(rig.delivered), "NOACK");
  } else {
    EXPECT_TRUE(rig.delivered.empty());
  }
}

TEST_P(VersionSweep, UnsolicitedMd5Path) {
  const VersionCase& tc = GetParam();
  Rig rig(StackProfile::for_version(tc.version));
  rig.handshake();
  net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                         net::TcpFlags::psh_ack(), rig.cseq,
                                         rig.ep->snd_nxt(), to_bytes("MDATA"));
  pkt.tcp->options.md5_signature.emplace();
  rig.feed(std::move(pkt));
  if (tc.accepts_md5) {
    EXPECT_EQ(ys::to_string(rig.delivered), "MDATA");
  } else {
    EXPECT_TRUE(rig.delivered.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, VersionSweep,
    ::testing::Values(VersionCase{LinuxVersion::k4_4, false, false},
                      VersionCase{LinuxVersion::k4_0, false, false},
                      VersionCase{LinuxVersion::k3_14, false, false},
                      VersionCase{LinuxVersion::k2_6_34, true, false},
                      VersionCase{LinuxVersion::k2_4_37, true, true}));

TEST(Profile, LenientAckValidationAcceptsBadAckData) {
  StackProfile profile = StackProfile::for_version(LinuxVersion::k4_4);
  profile.validates_ack_field = false;
  Rig rig(profile);
  rig.handshake();
  rig.feed(net::make_tcp_packet(kClientTuple, net::TcpFlags::psh_ack(),
                                rig.cseq, rig.ep->snd_nxt() + 0x01000000,
                                to_bytes("junk")));
  EXPECT_EQ(ys::to_string(rig.delivered), "junk");
}

TEST(Profile, IgnorePathsLeaveStateUntouched) {
  // Property: every recorded ignore leaves rcv_nxt and state invariant.
  Rig rig;
  rig.handshake();
  const u32 rcv_before = rig.ep->rcv_nxt();
  const auto make_bad = [&](int which) {
    net::Packet pkt = net::make_tcp_packet(kClientTuple,
                                           net::TcpFlags::psh_ack(), rig.cseq,
                                           rig.ep->snd_nxt(),
                                           to_bytes("junk"));
    switch (which) {
      case 0: pkt.tcp->data_offset_words = 2; break;
      case 1: pkt.tcp->options.md5_signature.emplace(); break;
      case 2: pkt.tcp->flags = net::TcpFlags::none(); break;
      case 3:
        net::finalize(pkt);
        pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum ^ 0x5555);
        break;
      case 4: pkt.tcp->ack = rig.ep->snd_nxt() + 0x02000000; break;
      default: break;
    }
    return pkt;
  };
  for (int which = 0; which < 5; ++which) {
    rig.feed(make_bad(which));
    EXPECT_EQ(rig.ep->state(), TcpState::kEstablished) << which;
    EXPECT_EQ(rig.ep->rcv_nxt(), rcv_before) << which;
  }
  EXPECT_EQ(rig.ep->ignore_log().size(), 5u);
}

}  // namespace
}  // namespace ys::tcp
