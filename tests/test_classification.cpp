// Reset-fingerprint classification tests: synthetic client logs exercising
// the §3.4 Success/Failure taxonomy's hardest part — telling the censor's
// injected resets apart from a server's own.
#include <gtest/gtest.h>

#include "exp/trial.h"

namespace ys::exp {
namespace {

const net::FourTuple kS2C{net::make_ip(93, 184, 216, 34), 80,
                          net::make_ip(10, 0, 0, 1), 40000};

net::Packet server_packet(net::TcpFlags flags, u32 seq, u8 ttl,
                          Bytes payload = {}) {
  net::Packet pkt = net::make_tcp_packet(kS2C, flags, seq, 0,
                                         std::move(payload));
  pkt.ip.ttl = ttl;
  net::finalize(pkt);
  return pkt;
}

TEST(Classification, EmptyLogIsClean) {
  const ResetClassification c = classify_client_log({});
  EXPECT_FALSE(c.gfw_reset_seen);
  EXPECT_FALSE(c.other_reset_seen);
}

TEST(Classification, NormalExchangeIsClean) {
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::syn_ack(), 5000, 49));
  log.push_back(server_packet(net::TcpFlags::psh_ack(), 5001, 49,
                              to_bytes("HTTP/1.1 200 OK\r\n\r\n")));
  const ResetClassification c = classify_client_log(log);
  EXPECT_FALSE(c.gfw_reset_seen);
  EXPECT_FALSE(c.other_reset_seen);
}

TEST(Classification, MidPathRstIsGfwByTtlDeviation) {
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::syn_ack(), 5000, 49));
  // An injected RST crossed far fewer hops: it arrives with a high TTL.
  log.push_back(server_packet(net::TcpFlags::only_rst(), 5001, 58));
  const ResetClassification c = classify_client_log(log);
  EXPECT_TRUE(c.gfw_reset_seen);
  EXPECT_FALSE(c.other_reset_seen);
}

TEST(Classification, ServerRstMatchesReferenceTtl) {
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::syn_ack(), 5000, 49));
  log.push_back(server_packet(net::TcpFlags::only_rst(), 5001, 49));
  const ResetClassification c = classify_client_log(log);
  EXPECT_FALSE(c.gfw_reset_seen);
  EXPECT_TRUE(c.other_reset_seen);
}

TEST(Classification, Type2VolleyPatternOverridesTtl) {
  // Even with server-like TTLs, the X/X+1460/X+4380 spacing gives the
  // volley away.
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::syn_ack(), 5000, 49));
  log.push_back(server_packet(net::TcpFlags::rst_ack(), 6000, 49));
  log.push_back(server_packet(net::TcpFlags::rst_ack(), 6000 + 1460, 50));
  log.push_back(server_packet(net::TcpFlags::rst_ack(), 6000 + 4380, 51));
  const ResetClassification c = classify_client_log(log);
  EXPECT_TRUE(c.gfw_reset_seen);
}

TEST(Classification, NoReferenceMeansConservativeGfwVerdict) {
  // A reset with no legitimate packet to compare against is attributed to
  // the censor (the paper's Failure 2 bucket errs the same way).
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::only_rst(), 5001, 49));
  const ResetClassification c = classify_client_log(log);
  EXPECT_TRUE(c.gfw_reset_seen);
}

TEST(Classification, MixedResetsReportBoth) {
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::syn_ack(), 5000, 49));
  log.push_back(server_packet(net::TcpFlags::only_rst(), 5001, 49));  // server
  log.push_back(server_packet(net::TcpFlags::only_rst(), 7777, 60));  // censor
  const ResetClassification c = classify_client_log(log);
  EXPECT_TRUE(c.gfw_reset_seen);
  EXPECT_TRUE(c.other_reset_seen);
}

TEST(Classification, ReferenceComesFromDataPacketsToo) {
  // No SYN/ACK in the log (e.g. block-period probes): the first payload
  // packet anchors the reference TTL.
  std::vector<net::Packet> log;
  log.push_back(server_packet(net::TcpFlags::psh_ack(), 5001, 47,
                              to_bytes("data")));
  log.push_back(server_packet(net::TcpFlags::only_rst(), 5005, 47));
  const ResetClassification c = classify_client_log(log);
  EXPECT_FALSE(c.gfw_reset_seen);
  EXPECT_TRUE(c.other_reset_seen);
}

TEST(Classification, UdpAndNonRstPacketsIgnored) {
  std::vector<net::Packet> log;
  net::Packet udp = net::make_udp_packet(kS2C, to_bytes("dns"));
  net::finalize(udp);
  log.push_back(std::move(udp));
  log.push_back(server_packet(net::TcpFlags::only_ack(), 5001, 49));
  const ResetClassification c = classify_client_log(log);
  EXPECT_FALSE(c.gfw_reset_seen);
  EXPECT_FALSE(c.other_reset_seen);
}

}  // namespace
}  // namespace ys::exp
