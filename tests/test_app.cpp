// Application-layer codec tests: HTTP framing, the DNS wire codec over UDP
// and TCP, and the Tor/OpenVPN fingerprints the GFW's DPI matches on.
#include <gtest/gtest.h>

#include "app/dns.h"
#include "app/http.h"
#include "app/tor.h"
#include "app/vpn.h"

namespace ys::app {
namespace {

// -------------------------------------------------------------------- HTTP

TEST(Http, RequestBuildAndCompleteness) {
  const Bytes req = build_http_get("example.com", "/search?q=ultrasurf");
  const std::string text = ys::to_string(req);
  EXPECT_TRUE(text.starts_with("GET /search?q=ultrasurf HTTP/1.1\r\n"));
  EXPECT_NE(text.find("Host: example.com\r\n"), std::string::npos);
  EXPECT_TRUE(text.ends_with("\r\n\r\n"));
  EXPECT_TRUE(http_request_complete(req));

  Bytes partial(req.begin(), req.begin() + 10);
  EXPECT_FALSE(http_request_complete(partial));
}

TEST(Http, RequestPathExtraction) {
  const Bytes req = build_http_get("example.com", "/a/b?q=1");
  auto path = http_request_path(req);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/a/b?q=1");
  EXPECT_FALSE(http_request_path(to_bytes("GET /incompl")).has_value());
}

TEST(Http, ResponseBuildAndCompleteness) {
  const Bytes resp = build_http_response("<html>body</html>");
  EXPECT_TRUE(http_response_complete(resp));
  EXPECT_EQ(http_response_status(resp).value(), 200);

  // Headers complete but body short -> incomplete.
  Bytes truncated(resp.begin(), resp.end() - 5);
  EXPECT_FALSE(http_response_complete(truncated));
}

TEST(Http, RedirectCarriesLocation) {
  const Bytes resp = build_http_redirect("https://x.test/?q=ultrasurf");
  EXPECT_EQ(http_response_status(resp).value(), 301);
  EXPECT_NE(ys::to_string(resp).find("Location: https://x.test/?q=ultrasurf"),
            std::string::npos);
  EXPECT_TRUE(http_response_complete(resp));
}

TEST(Http, ContentLengthParsedCaseInsensitively) {
  const std::string raw =
      "HTTP/1.1 200 OK\r\ncONTENT-lENGTH: 4\r\n\r\nBODY";
  EXPECT_TRUE(http_response_complete(to_bytes(raw)));
  const std::string missing =
      "HTTP/1.1 200 OK\r\ncONTENT-lENGTH: 5\r\n\r\nBODY";
  EXPECT_FALSE(http_response_complete(to_bytes(missing)));
}

TEST(Http, StatusOfGarbageIsNull) {
  EXPECT_FALSE(http_response_status(to_bytes("not http")).has_value());
}

// --------------------------------------------------------------------- DNS

TEST(Dns, QueryRoundTrip) {
  const DnsMessage query = make_query(0xBEEF, "www.Dropbox.COM");
  auto parsed = dns_parse(dns_encode(query));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 0xBEEF);
  EXPECT_FALSE(parsed.value().is_response);
  ASSERT_EQ(parsed.value().questions.size(), 1u);
  // Names are normalized to lowercase on parse.
  EXPECT_EQ(parsed.value().questions[0].qname, "www.dropbox.com");
}

TEST(Dns, ResponseRoundTrip) {
  const DnsMessage query = make_query(7, "example.org");
  const net::IpAddr addr = net::make_ip(93, 184, 216, 34);
  const DnsMessage response = make_response(query, addr);
  auto parsed = dns_parse(dns_encode(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().is_response);
  EXPECT_EQ(parsed.value().id, 7);
  ASSERT_EQ(parsed.value().answers.size(), 1u);
  EXPECT_EQ(parsed.value().answers[0].address, addr);
  EXPECT_EQ(parsed.value().answers[0].name, "example.org");
}

TEST(Dns, RejectsTruncatedAndCompressed) {
  EXPECT_FALSE(dns_parse(Bytes{0x00, 0x01}).ok());
  Bytes msg = dns_encode(make_query(1, "a.b"));
  msg.resize(msg.size() - 3);
  EXPECT_FALSE(dns_parse(msg).ok());
  // A compression pointer (0xC0) in a name is rejected by this codec.
  Bytes compressed = dns_encode(make_query(1, "ab.cd"));
  compressed[12] = 0xC0;
  EXPECT_FALSE(dns_parse(compressed).ok());
}

TEST(Dns, TcpFramingSingleAndMultiple) {
  const Bytes f1 = dns_tcp_frame(make_query(1, "one.test"));
  const Bytes f2 = dns_tcp_frame(make_query(2, "two.test"));
  Bytes stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  std::size_t offset = 0;
  auto messages = dns_tcp_extract(stream, &offset);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].questions[0].qname, "one.test");
  EXPECT_EQ(messages[1].questions[0].qname, "two.test");
  EXPECT_EQ(offset, stream.size());
}

TEST(Dns, TcpFramingHandlesPartialFrames) {
  const Bytes frame = dns_tcp_frame(make_query(1, "slow.test"));
  std::size_t offset = 0;
  // Feed byte by byte: nothing extracted until the frame completes.
  Bytes stream;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    stream.push_back(frame[i]);
    EXPECT_TRUE(dns_tcp_extract(stream, &offset).empty());
  }
  stream.push_back(frame.back());
  auto messages = dns_tcp_extract(stream, &offset);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].questions[0].qname, "slow.test");
}

TEST(Dns, LabelLengthLimits) {
  const std::string long_label(64, 'a');
  const DnsMessage bad = make_query(1, long_label + ".test");
  // Encoding a 64-byte label violates RFC 1035; the encoder drops it and
  // the message still parses structurally (zero-length name is the
  // documented failure mode we accept) — but it must not crash.
  const Bytes encoded = dns_encode(bad);
  EXPECT_FALSE(encoded.empty());
}

// --------------------------------------------------------------------- Tor

TEST(Tor, ClientHelloMatchesFingerprint) {
  EXPECT_TRUE(is_tor_client_hello(build_tor_client_hello()));
  EXPECT_FALSE(is_tor_client_hello(build_tor_server_hello()));
  EXPECT_FALSE(is_tor_client_hello(to_bytes("GET / HTTP/1.1\r\n\r\n")));
  EXPECT_FALSE(is_tor_client_hello(Bytes{}));
}

TEST(Tor, BridgeResponseMatches) {
  EXPECT_TRUE(is_tor_bridge_response(build_tor_server_hello()));
  EXPECT_FALSE(is_tor_bridge_response(build_tor_client_hello()));
}

TEST(Tor, ProbeLooksLikeClientHello) {
  EXPECT_TRUE(is_tor_client_hello(build_probe_hello()));
}

// ------------------------------------------------------------------- VPN

TEST(Vpn, ClientResetFingerprint) {
  EXPECT_TRUE(is_openvpn_client_reset(build_openvpn_client_reset()));
  EXPECT_FALSE(is_openvpn_client_reset(build_openvpn_server_reset()));
  EXPECT_FALSE(is_openvpn_client_reset(to_bytes("GET / HTTP/1.1")));
  EXPECT_FALSE(is_openvpn_client_reset(Bytes{0x00}));
}

TEST(Vpn, FramedLengthConsistent) {
  const Bytes pkt = build_openvpn_client_reset();
  ASSERT_GE(pkt.size(), 2u);
  const std::size_t framed = (static_cast<std::size_t>(pkt[0]) << 8) | pkt[1];
  EXPECT_EQ(framed, pkt.size() - 2);
}

}  // namespace
}  // namespace ys::app
