// ys::runner — determinism contract, work-stealing bookkeeping, metrics
// merge semantics, cancellation, and chained (selector-backed) grids.
#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/trial.h"
#include "exp/vantage.h"
#include "intang/selector.h"
#include "obs/metrics.h"
#include "runner/runner.h"

namespace ys {
namespace {

using namespace ys::exp;

TEST(TrialGrid, IndexCoordRoundTrip) {
  runner::TrialGrid grid;
  grid.cells = 3;
  grid.vantages = 4;
  grid.servers = 5;
  grid.trials = 6;
  ASSERT_EQ(grid.total(), 3u * 4u * 5u * 6u);
  ASSERT_EQ(grid.chains(), 3u * 4u * 5u);
  for (std::size_t i = 0; i < grid.total(); ++i) {
    const runner::GridCoord c = grid.coord(i);
    EXPECT_EQ(grid.index(c), i);
    EXPECT_LT(c.cell, grid.cells);
    EXPECT_LT(c.vantage, grid.vantages);
    EXPECT_LT(c.server, grid.servers);
    EXPECT_LT(c.trial, grid.trials);
    // The chain id is the slot index with the trial axis removed.
    EXPECT_EQ(grid.chain(c), i / grid.trials);
  }
}

TEST(TrialGrid, TrialAxisVariesFastest) {
  runner::TrialGrid grid;
  grid.cells = 2;
  grid.trials = 4;
  const std::size_t base = grid.index({1, 0, 0, 0});
  for (std::size_t t = 0; t < grid.trials; ++t) {
    EXPECT_EQ(grid.index({1, 0, 0, t}), base + t);
  }
}

/// Run a small real-trial grid and capture (outcomes, counter snapshot).
/// All instrumentation is redirected into a local registry so runs are
/// isolated from each other and from the process registry.
struct GridRun {
  std::vector<Outcome> outcomes;
  obs::Snapshot snapshot;
  runner::RunnerReport report;
};

GridRun run_reference_grid(int jobs, u64 seed) {
  const gfw::DetectionRules rules = gfw::DetectionRules::standard();
  const Calibration cal = Calibration::standard();
  const auto vps = china_vantage_points();
  const strategy::StrategyId strategies[] = {
      strategy::StrategyId::kNone, strategy::StrategyId::kInOrderTtl};

  runner::TrialGrid grid;
  grid.cells = 2;
  grid.vantages = 3;
  grid.servers = 2;
  grid.trials = 4;
  runner::PoolOptions pool;
  pool.jobs = jobs;
  pool.shard_size = 2;  // force many shards so steals actually happen

  obs::MetricsRegistry local;
  GridRun run;
  {
    obs::ScopedMetricsRegistry scope(&local);
    auto out = runner::collect_grid(
        grid, pool,
        [&](const runner::GridCoord& c, runner::TaskContext&) {
          ScenarioOptions opt;
          opt.vp = vps[c.vantage];
          opt.server.host = "server-" + std::to_string(c.server);
          opt.server.ip = net::make_ip(93, 184, 216,
                                       static_cast<u8>(30 + c.server));
          opt.cal = cal;
          opt.seed = Rng::mix_seed({seed, c.cell, c.vantage, c.server,
                                    c.trial});
          Scenario sc(&rules, opt);
          HttpTrialOptions http;
          http.with_keyword = true;
          http.strategy = strategies[c.cell];
          return run_http_trial(sc, http).outcome;
        });
    run.outcomes = std::move(out.slots);
    run.report = out.report;
  }
  run.snapshot = local.snapshot();
  return run;
}

TEST(Runner, ParallelReproducesSerialOutcomes) {
  const GridRun serial = run_reference_grid(1, 2017);
  const GridRun parallel = run_reference_grid(8, 2017);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  EXPECT_EQ(serial.outcomes, parallel.outcomes);
}

TEST(Runner, ParallelReproducesSerialCounters) {
  const GridRun serial = run_reference_grid(1, 2017);
  const GridRun parallel = run_reference_grid(8, 2017);
  // Counters are exact trial-behaviour counts: bit-identical by contract.
  EXPECT_EQ(serial.snapshot.counters, parallel.snapshot.counters);
  // Virtual-time histograms are functions of simulated time only, so they
  // merge to identical state too. (Wall-clock histograms would not.)
  for (const auto& [name, h] : serial.snapshot.histograms) {
    if (name.rfind("exp.vtime.", 0) != 0) continue;
    auto it = parallel.snapshot.histograms.find(name);
    ASSERT_NE(it, parallel.snapshot.histograms.end()) << name;
    EXPECT_EQ(h.count, it->second.count) << name;
    EXPECT_EQ(h.counts, it->second.counts) << name;
    EXPECT_DOUBLE_EQ(h.sum, it->second.sum) << name;
  }
}

TEST(Runner, SeedChangesResults) {
  // Sanity check that the comparison above is not vacuous.
  const GridRun a = run_reference_grid(1, 2017);
  const GridRun b = run_reference_grid(1, 4242);
  EXPECT_NE(a.outcomes, b.outcomes);
}

TEST(Runner, WorkerBookkeepingAddsUp) {
  constexpr std::size_t kCount = 103;  // deliberately not shard-aligned
  runner::PoolOptions pool;
  pool.jobs = 4;
  pool.shard_size = 5;
  std::vector<std::atomic<int>> hits(kCount);
  const runner::RunnerReport report = runner::run_sharded(
      pool, kCount, [&](std::size_t i, runner::TaskContext&) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });

  // Exactly-once execution.
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(report.jobs, 4);
  ASSERT_EQ(report.workers.size(), 4u);
  EXPECT_EQ(report.tasks, kCount);
  EXPECT_EQ(report.tasks_executed, kCount);
  u64 per_worker_sum = 0;
  u64 shard_sum = 0;
  u64 steal_sum = 0;
  for (const runner::WorkerStats& ws : report.workers) {
    per_worker_sum += ws.tasks_executed;
    shard_sum += ws.shards_served + ws.shards_stolen;
    steal_sum += ws.shards_stolen;
  }
  EXPECT_EQ(per_worker_sum, kCount);
  // ceil(103 / 5) shards were dealt; every one was served exactly once.
  EXPECT_EQ(shard_sum, (kCount + pool.shard_size - 1) / pool.shard_size);
  EXPECT_EQ(steal_sum, report.steals);
  EXPECT_FALSE(report.cancelled);
}

TEST(Runner, JobsZeroResolvesToHardwareConcurrency) {
  runner::PoolOptions pool;
  pool.jobs = 0;
  const runner::RunnerReport report =
      runner::run_sharded(pool, 8, [](std::size_t, runner::TaskContext&) {});
  EXPECT_GE(report.jobs, 1);
  EXPECT_EQ(report.tasks_executed, 8u);
}

TEST(Runner, MetricsMergeIsAssociativeAndCommutative) {
  // Three worker-shaped registries with overlapping names.
  auto make = [](u64 c1, u64 c2, double g, double v1, double v2) {
    auto reg = std::make_unique<obs::MetricsRegistry>();
    obs::ScopedMetricsRegistry scope(reg.get());
    reg->counter("m.a").inc(c1);
    reg->counter("m.b").inc(c2);
    reg->gauge("m.hwm").max_of(g);
    auto& h = reg->histogram("m.lat", obs::exponential_buckets(1.0, 2.0, 4));
    h.observe(v1);
    h.observe(v2);
    return reg;
  };
  const auto r1 = make(1, 10, 0.25, 1.0, 3.0);
  const auto r2 = make(2, 20, 0.75, 9.0, 0.5);
  const auto r3 = make(3, 0, 0.50, 100.0, 2.0);

  obs::MetricsRegistry left;   // (r1 + r2) + r3
  left.merge_from(r1->snapshot());
  left.merge_from(r2->snapshot());
  left.merge_from(r3->snapshot());
  obs::MetricsRegistry right;  // r3 + (r2 + r1)
  right.merge_from(r3->snapshot());
  right.merge_from(r2->snapshot());
  right.merge_from(r1->snapshot());

  const obs::Snapshot ls = left.snapshot();
  const obs::Snapshot rs = right.snapshot();
  EXPECT_EQ(ls.counters, rs.counters);
  EXPECT_EQ(ls.counters.at("m.a"), 6u);
  EXPECT_EQ(ls.counters.at("m.b"), 30u);
  EXPECT_EQ(ls.gauges, rs.gauges);
  EXPECT_DOUBLE_EQ(ls.gauges.at("m.hwm"), 0.75);
  ASSERT_EQ(ls.histograms.count("m.lat"), 1u);
  EXPECT_EQ(ls.histograms.at("m.lat").count, 6u);
  EXPECT_EQ(ls.histograms.at("m.lat").counts,
            rs.histograms.at("m.lat").counts);
  EXPECT_DOUBLE_EQ(ls.histograms.at("m.lat").sum,
                   rs.histograms.at("m.lat").sum);
}

TEST(Runner, MergedParallelCountersEqualSerial) {
  // The merge path (jobs > 1) and the inline path (jobs == 1) must land on
  // the same registry totals for a pure counting workload.
  auto count_grid = [](int jobs) {
    runner::PoolOptions pool;
    pool.jobs = jobs;
    pool.shard_size = 3;
    obs::MetricsRegistry local;
    {
      obs::ScopedMetricsRegistry scope(&local);
      runner::run_sharded(pool, 50, [](std::size_t i, runner::TaskContext&) {
        obs::MetricsRegistry::current().counter("t.ticks").inc(i + 1);
      });
    }
    return local.snapshot();
  };
  const obs::Snapshot serial = count_grid(1);
  const obs::Snapshot parallel = count_grid(8);
  EXPECT_EQ(serial.counters.at("t.ticks"), 50u * 51u / 2u);
  EXPECT_EQ(serial.counters, parallel.counters);
}

TEST(Runner, CancellationStopsEarly) {
  runner::PoolOptions pool;
  pool.jobs = 2;
  pool.shard_size = 1;
  std::atomic<u64> executed{0};
  const runner::RunnerReport report = runner::run_sharded(
      pool, 1000, [&](std::size_t, runner::TaskContext& ctx) {
        if (executed.fetch_add(1, std::memory_order_relaxed) >= 3) {
          ctx.cancel->cancel();
        }
      });
  EXPECT_TRUE(report.cancelled);
  EXPECT_LT(report.tasks_executed, 1000u);
  EXPECT_EQ(report.tasks_executed, executed.load());
}

TEST(Runner, ChainedGridRunsTrialsInOrder) {
  runner::TrialGrid grid;
  grid.cells = 6;
  grid.trials = 9;
  grid.chain_trials = true;
  runner::PoolOptions pool;
  pool.jobs = 4;
  pool.shard_size = 1;

  // One order log per chain: a chain is serialized on one worker, so its
  // log needs no lock; distinct chains write distinct vectors.
  std::vector<std::vector<std::size_t>> order(grid.chains());
  for (auto& v : order) v.reserve(grid.trials);
  runner::run_grid(grid, pool,
                   [&](const runner::GridCoord& c, runner::TaskContext&) {
                     order[grid.chain(c)].push_back(c.trial);
                   });

  std::vector<std::size_t> expected(grid.trials);
  std::iota(expected.begin(), expected.end(), 0u);
  for (std::size_t chain = 0; chain < grid.chains(); ++chain) {
    EXPECT_EQ(order[chain], expected) << "chain " << chain;
  }
}

TEST(Runner, SelectorChainMatchesSerial) {
  // A selector-backed (INTANG) grid: trials share per-chain state, so the
  // trial axis is chained. jobs=8 must still reproduce jobs=1 exactly.
  auto run = [](int jobs) {
    const gfw::DetectionRules rules = gfw::DetectionRules::standard();
    const Calibration cal = Calibration::standard();
    const auto vps = china_vantage_points();

    runner::TrialGrid grid;
    grid.vantages = 3;
    grid.trials = 5;
    grid.chain_trials = true;
    runner::PoolOptions pool;
    pool.jobs = jobs;

    std::vector<intang::StrategySelector> selectors(
        grid.chains(), intang::StrategySelector{intang::StrategySelector::Config{}});
    obs::MetricsRegistry local;
    obs::ScopedMetricsRegistry scope(&local);
    auto out = runner::collect_grid(
        grid, pool,
        [&](const runner::GridCoord& c, runner::TaskContext&) {
          ScenarioOptions opt;
          opt.vp = vps[c.vantage];
          opt.server.host = "chain.example";
          opt.server.ip = net::make_ip(93, 184, 216, 34);
          opt.cal = cal;
          opt.seed = Rng::mix_seed({99, c.vantage, c.trial});
          Scenario sc(&rules, opt);
          HttpTrialOptions http;
          http.with_keyword = true;
          http.use_intang = true;
          http.shared_selector = &selectors[grid.chain(c)];
          return run_http_trial(sc, http).outcome;
        });
    return out.slots;
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace ys
