// IP fragmentation and reassembly tests, including the overlap-policy
// differences the out-of-order evasion strategy exploits and
// order-independence property sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "netsim/fragment.h"
#include "netsim/wire.h"

namespace ys::net {
namespace {

const FourTuple kTuple{make_ip(10, 0, 0, 1), 40000,
                       make_ip(93, 184, 216, 34), 80};

Packet sample_packet(std::size_t payload_size, u16 ident = 7) {
  Bytes payload;
  for (std::size_t i = 0; i < payload_size; ++i) {
    payload.push_back(static_cast<u8>('a' + i % 26));
  }
  Packet pkt = make_tcp_packet(kTuple, TcpFlags::psh_ack(), 1000, 2000,
                               std::move(payload));
  pkt.ip.identification = ident;
  finalize(pkt);
  return pkt;
}

TEST(Fragmentation, ProducesAlignedSlices) {
  const Packet whole = sample_packet(100);
  const auto frags = fragment_packet(whole, 32);
  ASSERT_GE(frags.size(), 3u);
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_TRUE(frags[i].ip.is_fragmented());
    EXPECT_EQ(frags[i].ip.identification, whole.ip.identification);
    if (i + 1 < frags.size()) {
      EXPECT_TRUE(frags[i].ip.more_fragments);
      EXPECT_EQ(frags[i].payload.size() % 8, 0u);
    } else {
      EXPECT_FALSE(frags[i].ip.more_fragments);
    }
  }
  // Offsets are contiguous.
  u16 expected_offset = 0;
  for (const auto& frag : frags) {
    EXPECT_EQ(frag.ip.fragment_offset, expected_offset);
    expected_offset = static_cast<u16>(expected_offset +
                                       frag.payload.size() / 8);
  }
}

TEST(Reassembly, InOrderRoundTrip) {
  const Packet whole = sample_packet(100);
  FragmentReassembler reasm(OverlapPolicy::kPreferLast);
  std::optional<Packet> out;
  for (const auto& frag : fragment_packet(whole, 32)) {
    EXPECT_FALSE(out.has_value());
    out = reasm.push(frag);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, whole.payload);
  EXPECT_EQ(out->tcp->seq, whole.tcp->seq);
  EXPECT_EQ(out->tcp->checksum, whole.tcp->checksum);
  EXPECT_TRUE(transport_checksum_ok(*out));
  EXPECT_FALSE(out->ip.is_fragmented());
  EXPECT_EQ(reasm.pending_datagrams(), 0u);
}

TEST(Reassembly, NonFragmentPassesThrough) {
  const Packet whole = sample_packet(20);
  FragmentReassembler reasm(OverlapPolicy::kPreferLast);
  auto out = reasm.push(whole);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, whole.payload);
}

TEST(Reassembly, IncompleteStaysPending) {
  const Packet whole = sample_packet(100);
  auto frags = fragment_packet(whole, 32);
  FragmentReassembler reasm(OverlapPolicy::kPreferLast);
  // Withhold the second fragment.
  for (std::size_t i = 0; i < frags.size(); ++i) {
    if (i == 1) continue;
    EXPECT_FALSE(reasm.push(frags[i]).has_value());
  }
  EXPECT_EQ(reasm.pending_datagrams(), 1u);
  // Delivering the missing piece completes it.
  auto out = reasm.push(frags[1]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, whole.payload);
}

TEST(Reassembly, InterleavedDatagramsByIdentification) {
  const Packet a = sample_packet(64, 100);
  const Packet b = sample_packet(64, 200);
  auto fa = fragment_packet(a, 24);
  auto fb = fragment_packet(b, 24);
  FragmentReassembler reasm(OverlapPolicy::kPreferLast);
  int completed = 0;
  for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size() && reasm.push(fa[i])) ++completed;
    if (i < fb.size() && reasm.push(fb[i])) ++completed;
  }
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(reasm.pending_datagrams(), 0u);
}

// The §3.2 exploit: two fragments covering the same range with different
// contents. kPreferFirst (GFW) keeps the first copy; kPreferLast (hosts)
// keeps the second.
TEST(OverlapPolicy, FirstVsLastOnConflictingRange) {
  const Packet whole = sample_packet(64);
  Bytes transport = serialize_transport(whole);
  const std::size_t split = 24;
  Bytes head(transport.begin(), transport.begin() + split);
  Bytes real_tail(transport.begin() + split, transport.end());
  Bytes junk_tail(real_tail.size(), 'Z');

  auto run = [&](OverlapPolicy policy) {
    FragmentReassembler reasm(policy);
    EXPECT_FALSE(
        reasm.push(make_raw_fragment(whole, split, junk_tail, false)));
    EXPECT_FALSE(
        reasm.push(make_raw_fragment(whole, split, real_tail, false)));
    auto out = reasm.push(make_raw_fragment(whole, 0, head, true));
    EXPECT_TRUE(out.has_value());
    return *out;
  };

  const Packet first_wins = run(OverlapPolicy::kPreferFirst);
  const Packet last_wins = run(OverlapPolicy::kPreferLast);

  // The conflicting range starts 4 bytes into the TCP payload (24 - 20
  // header bytes); kPreferFirst must hold junk there, kPreferLast the
  // original bytes.
  ASSERT_GE(first_wins.payload.size(), 10u);
  EXPECT_EQ(first_wins.payload[5], 'Z');
  EXPECT_EQ(last_wins.payload, whole.payload);
}

// Property: reassembly result is independent of fragment arrival order
// when fragments do not overlap.
class ReassemblyPermutation : public ::testing::TestWithParam<int> {};

TEST_P(ReassemblyPermutation, OrderIndependentWithoutOverlap) {
  const Packet whole = sample_packet(120);
  auto frags = fragment_packet(whole, 32);
  Rng rng(static_cast<u64>(GetParam()));
  // Fisher-Yates shuffle driven by the seeded RNG.
  for (std::size_t i = frags.size(); i > 1; --i) {
    std::swap(frags[i - 1], frags[rng.uniform(i)]);
  }
  FragmentReassembler reasm(OverlapPolicy::kPreferFirst);
  std::optional<Packet> out;
  for (const auto& frag : frags) {
    auto result = reasm.push(frag);
    if (result) {
      EXPECT_FALSE(out.has_value());
      out = result;
    }
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, whole.payload);
  EXPECT_TRUE(transport_checksum_ok(*out));
}

INSTANTIATE_TEST_SUITE_P(Shuffles, ReassemblyPermutation,
                         ::testing::Range(1, 17));

// Property: fragmenting at any MTU and reassembling yields the original.
class MtuSweep : public ::testing::TestWithParam<int> {};

TEST_P(MtuSweep, RoundTripAtEveryMtu) {
  const Packet whole = sample_packet(333);
  FragmentReassembler reasm(OverlapPolicy::kPreferLast);
  std::optional<Packet> out;
  for (const auto& frag :
       fragment_packet(whole, static_cast<std::size_t>(GetParam()))) {
    out = reasm.push(frag);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, whole.payload);
  EXPECT_EQ(out->tcp->options, whole.tcp->options);
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweep,
                         ::testing::Values(8, 16, 24, 40, 64, 128, 256, 512));

TEST(Reassembly, ClearDropsPartialState) {
  const Packet whole = sample_packet(100);
  auto frags = fragment_packet(whole, 32);
  FragmentReassembler reasm(OverlapPolicy::kPreferLast);
  reasm.push(frags[0]);
  EXPECT_EQ(reasm.pending_datagrams(), 1u);
  reasm.clear();
  EXPECT_EQ(reasm.pending_datagrams(), 0u);
}

}  // namespace
}  // namespace ys::net
