// Middlebox tests: the four Table 2 provider profiles, stateful connection
// tracking with its blackhole-after-teardown behaviour, sequence checking,
// fragment policies, and IP-length validation.
#include <gtest/gtest.h>

#include "middlebox/middlebox.h"
#include "middlebox/profiles.h"
#include "netsim/fragment.h"
#include "strategy/insertion.h"

namespace ys::mbox {
namespace {

const net::FourTuple kTuple{net::make_ip(10, 0, 0, 1), 40000,
                            net::make_ip(93, 184, 216, 34), 80};

struct Probe final : public net::Forwarder {
  explicit Probe(Rng* rng) : rng_(rng) {}
  void forward(net::Packet pkt) override { out.push_back(std::move(pkt)); }
  void inject(net::Packet, net::Dir, SimTime) override {}
  void drop(const net::Packet&, std::string_view reason) override {
    last_reason = std::string(reason);
  }
  SimTime now() const override { return SimTime::zero(); }
  Rng& rng() override { return *rng_; }
  std::vector<net::Packet> out;
  std::string last_reason;
  Rng* rng_;
};

struct Rig {
  Rng rng{11};
  Middlebox box;
  Probe probe{&rng};

  explicit Rig(MiddleboxConfig cfg) : box(std::move(cfg), Rng(13)) {}

  void push(net::Packet pkt, net::Dir dir = net::Dir::kC2S) {
    net::finalize(pkt);
    box.process(std::move(pkt), dir, probe);
  }
};

net::Packet data_packet(u32 seq = 1000, Bytes payload = to_bytes("data")) {
  return net::make_tcp_packet(kTuple, net::TcpFlags::psh_ack(), seq, 2000,
                              std::move(payload));
}

// ------------------------------------------------------- provider profiles

TEST(Profiles, AliyunDiscardsFragments) {
  Rig rig(aliyun_profile());
  net::Packet whole = data_packet(1000, Bytes(64, 'x'));
  whole.ip.identification = 7;
  net::finalize(whole);
  for (auto& frag : net::fragment_packet(whole, 24)) {
    rig.push(std::move(frag));
  }
  EXPECT_TRUE(rig.probe.out.empty());
  EXPECT_GT(rig.box.dropped(), 0);
}

TEST(Profiles, QCloudReassemblesFragments) {
  Rig rig(qcloud_profile());
  net::Packet whole = data_packet(1000, Bytes(64, 'x'));
  whole.ip.identification = 7;
  net::finalize(whole);
  for (auto& frag : net::fragment_packet(whole, 24)) {
    rig.push(std::move(frag));
  }
  ASSERT_EQ(rig.probe.out.size(), 1u);
  EXPECT_FALSE(rig.probe.out[0].ip.is_fragmented());
  EXPECT_EQ(rig.probe.out[0].payload, whole.payload);
}

TEST(Profiles, TianjinDropsWrongChecksumAndNoFlags) {
  const strategy::InsertionTuning tuning;
  {
    Rig rig(unicom_tj_profile());
    net::Packet pkt = data_packet();
    net::finalize(pkt);
    strategy::apply_discrepancy(pkt, strategy::Discrepancy::kBadChecksum,
                                tuning);
    rig.push(std::move(pkt));
    EXPECT_TRUE(rig.probe.out.empty());
  }
  {
    Rig rig(unicom_tj_profile());
    net::Packet pkt = data_packet();
    strategy::apply_discrepancy(pkt, strategy::Discrepancy::kNoFlags, tuning);
    rig.push(std::move(pkt));
    EXPECT_TRUE(rig.probe.out.empty());
  }
  {
    // Clean packets pass.
    Rig rig(unicom_tj_profile());
    rig.push(data_packet());
    EXPECT_EQ(rig.probe.out.size(), 1u);
  }
}

TEST(Profiles, OtherProvidersPassBadChecksums) {
  const strategy::InsertionTuning tuning;
  for (auto profile : {aliyun_profile(), qcloud_profile(),
                       unicom_sjz_profile()}) {
    Rig rig(profile);
    net::Packet pkt = data_packet();
    net::finalize(pkt);
    strategy::apply_discrepancy(pkt, strategy::Discrepancy::kBadChecksum,
                                tuning);
    rig.push(std::move(pkt));
    EXPECT_EQ(rig.probe.out.size(), 1u) << profile.name;
  }
}

TEST(Profiles, SjzAndTjDropFins) {
  for (auto profile : {unicom_sjz_profile(), unicom_tj_profile()}) {
    Rig rig(profile);
    rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::fin_ack(), 1, 2));
    EXPECT_TRUE(rig.probe.out.empty()) << profile.name;
  }
}

TEST(Profiles, QCloudSometimesDropsRsts) {
  Rig rig(qcloud_profile());
  int passed = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    rig.probe.out.clear();
    rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(),
                                  static_cast<u32>(i), 0));
    passed += static_cast<int>(rig.probe.out.size());
  }
  // "Sometimes dropped": strictly between never and always.
  EXPECT_GT(passed, n / 3);
  EXPECT_LT(passed, n);
}

// -------------------------------------------------------- stateful tracking

MiddleboxConfig stateful_cfg(bool seq_checking = false) {
  MiddleboxConfig cfg;
  cfg.name = "mbox:stateful";
  cfg.stateful = true;
  cfg.seq_checking = seq_checking;
  return cfg;
}

TEST(Stateful, RstTearsDownAndBlackholesFlow) {
  Rig rig(stateful_cfg());
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.push(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::syn_ack(),
                                5000, 1001),
           net::Dir::kS2C);
  rig.push(data_packet(1001));
  EXPECT_EQ(rig.probe.out.size(), 3u);

  // A RST passes through (it is the teardown trigger)...
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), 1005, 0));
  EXPECT_EQ(rig.probe.out.size(), 4u);
  EXPECT_EQ(rig.box.torn_connections(), 1);

  // ...but everything after it is blackholed, both directions.
  rig.push(data_packet(1005));
  rig.push(net::make_tcp_packet(kTuple.reversed(), net::TcpFlags::psh_ack(),
                                5001, 1005, to_bytes("reply")),
           net::Dir::kS2C);
  EXPECT_EQ(rig.probe.out.size(), 4u);
  EXPECT_GE(rig.box.dropped(), 2);
}

TEST(Stateful, FinAlsoTearsDown) {
  Rig rig(stateful_cfg());
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::fin_ack(), 1001, 0));
  rig.push(data_packet(1002));
  EXPECT_EQ(rig.probe.out.size(), 2u);  // SYN + FIN; data blackholed
}

TEST(Stateful, IndependentConnectionsUnaffected) {
  Rig rig(stateful_cfg());
  net::FourTuple other = kTuple;
  other.src_port = 40001;
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.push(net::make_tcp_packet(other, net::TcpFlags::only_syn(), 2000, 0));
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), 1001, 0));
  rig.push(data_packet(1001));  // blackholed
  rig.push(net::make_tcp_packet(other, net::TcpFlags::psh_ack(), 2001, 0,
                                to_bytes("fine")));  // unaffected
  EXPECT_EQ(rig.probe.out.size(), 4u);
}

TEST(Stateful, SeqCheckingDropsOutOfWindow) {
  Rig rig(stateful_cfg(/*seq_checking=*/true));
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_syn(), 1000, 0));
  rig.push(data_packet(1001));  // in window
  EXPECT_EQ(rig.probe.out.size(), 2u);
  // The out-of-window desync packet is eaten by this kind of box.
  rig.push(data_packet(1001 + 0x10000000));
  EXPECT_EQ(rig.probe.out.size(), 2u);
  EXPECT_GE(rig.box.dropped(), 1);
}

// ------------------------------------------------------------- validation

TEST(Validation, IpLengthCheckDropsLiars) {
  MiddleboxConfig cfg;
  cfg.validates_ip_length = true;
  Rig rig(cfg);
  net::Packet pkt = data_packet();
  net::finalize(pkt);
  pkt.ip.total_length = static_cast<u16>(net::wire_size(pkt) + 128);
  rig.box.process(std::move(pkt), net::Dir::kC2S, rig.probe);
  EXPECT_TRUE(rig.probe.out.empty());
  EXPECT_NE(rig.probe.last_reason.find("length"), std::string::npos);
}

TEST(Validation, DefaultConfigPassesEverything) {
  MiddleboxConfig cfg;  // all defaults
  Rig rig(cfg);
  const strategy::InsertionTuning tuning;
  net::Packet bad_csum = data_packet();
  net::finalize(bad_csum);
  strategy::apply_discrepancy(bad_csum, strategy::Discrepancy::kBadChecksum,
                              tuning);
  rig.push(std::move(bad_csum));
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::only_rst(), 1, 0));
  rig.push(net::make_tcp_packet(kTuple, net::TcpFlags::fin_ack(), 1, 2));
  net::Packet noflag = data_packet();
  noflag.tcp->flags = net::TcpFlags::none();
  rig.push(std::move(noflag));
  EXPECT_EQ(rig.probe.out.size(), 4u);
  EXPECT_EQ(rig.box.dropped(), 0);
}

}  // namespace
}  // namespace ys::mbox
