#include "core/rng.h"

// Header-only today; translation unit pins the library target.
namespace ys {}
