// Lightweight leveled logging. The structured event trace lives in
// obs/trace.h (ys::obs::TraceRecorder).
#pragma once

#include <functional>
#include <string>

namespace ys {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Default sink writes to stderr; tests can
/// silence or capture it.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  static void set_sink(Sink sink);
  static void write(LogLevel level, const std::string& msg);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

#define YS_LOG(lvl, msg)                                   \
  do {                                                     \
    if (::ys::Log::enabled(lvl)) ::ys::Log::write(lvl, (msg)); \
  } while (0)

}  // namespace ys
