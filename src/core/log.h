// Lightweight leveled logging plus a structured event trace.
//
// The figure benches (Fig 1-4) print the packet "ladder" of a strategy run;
// that ladder is produced from TraceRecorder events rather than ad-hoc
// printf, so tests can assert on the exact sequence the paper's figures
// show.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/types.h"

namespace ys {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Default sink writes to stderr; tests can
/// silence or capture it.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  static void set_sink(Sink sink);
  static void write(LogLevel level, const std::string& msg);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

#define YS_LOG(lvl, msg)                                   \
  do {                                                     \
    if (::ys::Log::enabled(lvl)) ::ys::Log::write(lvl, (msg)); \
  } while (0)

/// One structured event: where it happened, what happened, and a rendered
/// description. `actor` is a short component name ("client", "gfw#1",
/// "server", "mbox:nat", ...).
struct TraceEvent {
  SimTime at;
  std::string actor;
  std::string kind;    // e.g. "send", "recv", "inject", "drop", "state"
  std::string detail;  // rendered packet summary or state transition
};

/// Collects TraceEvents during a simulation run. Components hold a pointer
/// to the recorder owned by the simulation; a null recorder disables
/// tracing with zero cost.
class TraceRecorder {
 public:
  void record(SimTime at, std::string actor, std::string kind,
              std::string detail) {
    events_.push_back({at, std::move(actor), std::move(kind), std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Render the whole trace as an aligned text ladder (one line per event).
  std::string render() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace ys
