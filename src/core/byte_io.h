// Big-endian wire readers/writers used by the IPv4/TCP/UDP/DNS codecs.
#pragma once

#include <cstring>
#include <string_view>

#include "core/result.h"
#include "core/types.h"

namespace ys {

/// Appends big-endian fields to an owning buffer.
class BufWriter {
 public:
  explicit BufWriter(Bytes& out) : out_(out) {}

  void u8_(u8 v) { out_.push_back(v); }
  void u16_(u16 v) {
    out_.push_back(static_cast<u8>(v >> 8));
    out_.push_back(static_cast<u8>(v));
  }
  void u32_(u32 v) {
    out_.push_back(static_cast<u8>(v >> 24));
    out_.push_back(static_cast<u8>(v >> 16));
    out_.push_back(static_cast<u8>(v >> 8));
    out_.push_back(static_cast<u8>(v));
  }
  void bytes(ByteView v) { out_.insert(out_.end(), v.begin(), v.end()); }
  void str(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  std::size_t size() const { return out_.size(); }

  /// Overwrite a previously written 16-bit field (e.g. a length or checksum
  /// backpatch).
  void patch_u16(std::size_t offset, u16 v) {
    out_[offset] = static_cast<u8>(v >> 8);
    out_[offset + 1] = static_cast<u8>(v);
  }

 private:
  Bytes& out_;
};

/// Sequential big-endian reader with bounds checking.
class BufReader {
 public:
  explicit BufReader(ByteView data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool can_read(std::size_t n) const { return remaining() >= n; }

  Result<u8> u8_() {
    if (!can_read(1)) return Error::make("buffer underrun reading u8");
    return data_[pos_++];
  }
  Result<u16> u16_() {
    if (!can_read(2)) return Error::make("buffer underrun reading u16");
    u16 v = static_cast<u16>(static_cast<u16>(data_[pos_]) << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<u32> u32_() {
    if (!can_read(4)) return Error::make("buffer underrun reading u32");
    u32 v = (static_cast<u32>(data_[pos_]) << 24) |
            (static_cast<u32>(data_[pos_ + 1]) << 16) |
            (static_cast<u32>(data_[pos_ + 2]) << 8) |
            static_cast<u32>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  Result<Bytes> bytes(std::size_t n) {
    if (!can_read(n)) return Error::make("buffer underrun reading bytes");
    Bytes out(data_.begin() + static_cast<long>(pos_),
              data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  Status skip(std::size_t n) {
    if (!can_read(n)) return Error::make("buffer underrun skipping bytes");
    pos_ += n;
    return Status::ok_status();
  }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace ys
