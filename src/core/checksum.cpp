#include "core/checksum.h"

namespace ys {

u32 checksum_accumulate(ByteView data, u32 acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += (static_cast<u32>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    acc += static_cast<u32>(data[i]) << 8;  // pad odd byte with zero
  }
  return acc;
}

u16 checksum_finish(u32 acc) {
  while (acc >> 16) {
    acc = (acc & 0xFFFF) + (acc >> 16);
  }
  return static_cast<u16>(~acc & 0xFFFF);
}

u16 internet_checksum(ByteView data) {
  return checksum_finish(checksum_accumulate(data, 0));
}

u16 transport_checksum(u32 src_ip, u32 dst_ip, u8 protocol, ByteView segment) {
  u8 pseudo[12];
  pseudo[0] = static_cast<u8>(src_ip >> 24);
  pseudo[1] = static_cast<u8>(src_ip >> 16);
  pseudo[2] = static_cast<u8>(src_ip >> 8);
  pseudo[3] = static_cast<u8>(src_ip);
  pseudo[4] = static_cast<u8>(dst_ip >> 24);
  pseudo[5] = static_cast<u8>(dst_ip >> 16);
  pseudo[6] = static_cast<u8>(dst_ip >> 8);
  pseudo[7] = static_cast<u8>(dst_ip);
  pseudo[8] = 0;
  pseudo[9] = protocol;
  const auto len = static_cast<u16>(segment.size());
  pseudo[10] = static_cast<u8>(len >> 8);
  pseudo[11] = static_cast<u8>(len);

  u32 acc = checksum_accumulate(ByteView(pseudo, sizeof(pseudo)), 0);
  acc = checksum_accumulate(segment, acc);
  return checksum_finish(acc);
}

}  // namespace ys
