// Core scalar and buffer type aliases shared by every module.
//
// The whole code base works on host-order structured headers plus
// big-endian wire buffers; `Bytes` is the one owning buffer type and
// `ByteView` the one non-owning view type, so conversions stay explicit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ys {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Owning byte buffer (wire images, payloads).
using Bytes = std::vector<u8>;

/// Non-owning read-only view over bytes.
using ByteView = std::span<const u8>;

/// Convert a string literal/payload to bytes (HTTP requests, DNS names...).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Convert raw bytes back to a std::string (for payload inspection).
inline std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace ys
