#include "core/json.h"

#include <cctype>
#include <cstdlib>

namespace ys::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.type = Value::Type::kString;
        return parse_string(out.string);
      }
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!eof()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for anything the tracer emits; encode the raw value).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.type = Value::Type::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace ys::json
