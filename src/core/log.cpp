#include "core/log.h"

#include <cstdio>
#include <mutex>

namespace ys {
namespace {

struct LogState {
  LogLevel level = LogLevel::kWarn;
  Log::Sink sink;
  std::mutex mu;
};

LogState& state() {
  static LogState s;
  return s;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { state().level = level; }
LogLevel Log::level() { return state().level; }
void Log::set_sink(Sink sink) { state().sink = std::move(sink); }

void Log::write(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(state().mu);
  if (state().sink) {
    state().sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace ys
