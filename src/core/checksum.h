// RFC 1071 Internet checksum and the TCP/UDP pseudo-header checksums.
//
// The simulator serializes real wire images and validates real checksums:
// "bad checksum" insertion packets (Table 1/Table 3) are crafted by
// corrupting the stored checksum, and every endpoint/middlebox that claims
// to validate checksums recomputes them from the wire image.
#pragma once

#include "core/types.h"

namespace ys {

/// One's-complement sum of 16-bit words over `data`, folded to 16 bits.
/// An odd trailing byte is padded with zero per RFC 1071.
u16 internet_checksum(ByteView data);

/// Incremental helper: returns the unfolded 32-bit partial sum so callers
/// can chain pseudo-header + segment bytes.
u32 checksum_accumulate(ByteView data, u32 acc);

/// Fold a 32-bit accumulated sum to the final 16-bit complement.
u16 checksum_finish(u32 acc);

/// TCP/UDP checksum over the IPv4 pseudo-header (src, dst, proto, length)
/// followed by the transport header+payload bytes in `segment`.
u16 transport_checksum(u32 src_ip, u32 dst_ip, u8 protocol, ByteView segment);

}  // namespace ys
