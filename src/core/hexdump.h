// Hexdump formatting for packet traces and test diagnostics.
#pragma once

#include <string>

#include "core/types.h"

namespace ys {

/// Classic 16-bytes-per-line hexdump with ASCII gutter.
std::string hexdump(ByteView data);

/// Compact single-line hex string ("de ad be ef").
std::string hex_line(ByteView data);

}  // namespace ys
