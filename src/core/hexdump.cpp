#include "core/hexdump.h"

#include <cctype>
#include <cstdio>

namespace ys {

std::string hexdump(ByteView data) {
  std::string out;
  char line[24];
  for (std::size_t i = 0; i < data.size(); i += 16) {
    std::snprintf(line, sizeof(line), "%04zx  ", i);
    out += line;
    for (std::size_t j = 0; j < 16; ++j) {
      if (i + j < data.size()) {
        std::snprintf(line, sizeof(line), "%02x ", data[i + j]);
        out += line;
      } else {
        out += "   ";
      }
      if (j == 7) out += ' ';
    }
    out += " |";
    for (std::size_t j = 0; j < 16 && i + j < data.size(); ++j) {
      const u8 c = data[i + j];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

std::string hex_line(ByteView data) {
  std::string out;
  char buf[4];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf, sizeof(buf), i ? " %02x" : "%02x", data[i]);
    out += buf;
  }
  return out;
}

}  // namespace ys
