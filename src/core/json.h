// Minimal recursive-descent JSON reader.
//
// Exists so tools/trace_lint and the trace round-trip tests can validate
// exported Chrome trace-event files without an external dependency. Reads
// the full JSON grammar (objects, arrays, strings with escapes, numbers,
// bool, null); numbers are held as double, which is exact for every id the
// tracer emits (< 2^53).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ys::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parse a complete JSON document. std::nullopt on any syntax error or
/// trailing garbage.
std::optional<Value> parse(std::string_view text);

}  // namespace ys::json
