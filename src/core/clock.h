// Virtual time for the discrete-event simulator.
//
// All protocol timers (retransmission, the GFW's 90-second block period, the
// INTANG cache TTLs) are expressed against this clock so experiments run in
// microseconds of wall time while simulating minutes of network time, fully
// deterministically.
#pragma once

#include <cstdint>

#include "core/types.h"

namespace ys {

/// Simulated time since experiment start, in microseconds.
struct SimTime {
  i64 us = 0;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime from_us(i64 v) { return SimTime{v}; }
  static constexpr SimTime from_ms(i64 v) { return SimTime{v * 1000}; }
  static constexpr SimTime from_sec(i64 v) { return SimTime{v * 1'000'000}; }

  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
  constexpr i64 millis() const { return us / 1000; }

  friend constexpr bool operator==(SimTime a, SimTime b) { return a.us == b.us; }
  friend constexpr bool operator!=(SimTime a, SimTime b) { return a.us != b.us; }
  friend constexpr bool operator<(SimTime a, SimTime b) { return a.us < b.us; }
  friend constexpr bool operator<=(SimTime a, SimTime b) { return a.us <= b.us; }
  friend constexpr bool operator>(SimTime a, SimTime b) { return a.us > b.us; }
  friend constexpr bool operator>=(SimTime a, SimTime b) { return a.us >= b.us; }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us + b.us}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us - b.us}; }
};

/// A settable virtual clock owned by the event loop; components hold a
/// pointer and read `now()`.
class VirtualClock {
 public:
  SimTime now() const { return now_; }

  /// Only the event loop advances time; monotonicity is enforced.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = SimTime::zero();
};

}  // namespace ys
