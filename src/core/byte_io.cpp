#include "core/byte_io.h"

// Header-only today; the translation unit pins the library target and keeps
// room for out-of-line growth without touching the build.
namespace ys {}
