// Deterministic random number generation.
//
// Every experiment derives its stream from an explicit seed tuple
// (experiment id, vantage point, server, trial), so the whole bench suite is
// bit-for-bit reproducible while trials remain statistically independent.
// The generator is xoshiro256** seeded via splitmix64 — fast, tiny state,
// well-studied.
#pragma once

#include <array>
#include <string_view>

#include "core/types.h"

namespace ys {

/// splitmix64 step; used for seeding and for hashing seed components.
constexpr u64 splitmix64(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.
class Rng {
 public:
  explicit Rng(u64 seed) { reseed(seed); }

  /// Derive a seed from heterogeneous components (ids, indices, labels) so
  /// per-trial streams never collide accidentally.
  static u64 mix_seed(std::initializer_list<u64> components) {
    u64 s = 0x8000000000000001ULL;
    for (u64 c : components) {
      s ^= c + 0x9E3779B97F4A7C15ULL + (s << 6) + (s >> 2);
      splitmix64(s);
    }
    return s;
  }

  static u64 hash_label(std::string_view label) {
    u64 h = 0xcbf29ce484222325ULL;  // FNV-1a
    for (char c : label) {
      h ^= static_cast<u8>(c);
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  u64 uniform(u64 bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  i64 uniform_range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(uniform(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Fork an independent child stream (e.g. per connection).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace ys
