// Minimal Result<T> error-handling type.
//
// The simulator is exception-free on hot paths; parsing and protocol
// operations return Result<T> with a human-readable error string. This is a
// deliberately small subset of std::expected (which is C++23) sufficient for
// our needs.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ys {

/// Error payload: a message plus an optional machine-readable code.
struct Error {
  std::string message;

  static Error make(std::string msg) { return Error{std::move(msg)}; }
};

/// Result<T>: either a value or an Error. Use ok()/error() to construct.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional value wrapping
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Error err) : err_(std::move(err)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const Error& error() const {
    assert(!ok());
    return *err_;
  }

  /// Value or a caller-provided fallback.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> err_;
};

/// Result<void> specialization-by-convention.
class Status {
 public:
  Status() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  Status(Error err) : err_(std::move(err)) {}

  static Status ok_status() { return Status{}; }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *err_;
  }

 private:
  std::optional<Error> err_;
};

}  // namespace ys
