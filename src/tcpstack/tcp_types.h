// TCP endpoint types: states, per-Linux-version behaviour profiles, and the
// machine-readable "ignore path" taxonomy of §5.3 / Table 3.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "netsim/fragment.h"

namespace ys::tcp {

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRecv,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* to_string(TcpState s);

/// Sequence-number comparison helpers (wrap-around safe, RFC 793 §3.3).
constexpr bool seq_lt(u32 a, u32 b) { return static_cast<i32>(a - b) < 0; }
constexpr bool seq_le(u32 a, u32 b) { return static_cast<i32>(a - b) <= 0; }
constexpr bool seq_gt(u32 a, u32 b) { return static_cast<i32>(a - b) > 0; }
constexpr bool seq_ge(u32 a, u32 b) { return static_cast<i32>(a - b) >= 0; }

/// Why a segment was discarded without changing connection state. Each
/// value corresponds to one "ignore path" in the sense of §5.3: the paper's
/// insertion-packet discovery enumerates exactly these paths in the server
/// stack and probes which of them the GFW does *not* share.
enum class IgnoreReason {
  kBadIpLength,        // IP total length disagrees with actual packet size
  kShortTcpHeader,     // data offset < 5 words
  kBadChecksum,        // TCP checksum validation failed
  kUnsolicitedMd5,     // RFC 2385 option present but never negotiated
  kNoAckFlag,          // segment without ACK flag in a synchronized state
                       // (covers the "no flag" and "FIN only" rows)
  kBadAckNumber,       // ACK field acknowledges data never sent
  kOldTimestamp,       // PAWS: timestamp older than last accepted
  kOutOfWindowSeq,     // data entirely outside the receive window
  kDuplicateData,      // segment entirely below rcv_nxt
  kChallengeAckSyn,    // RFC 5961: SYN in ESTABLISHED answered w/ challenge
  kSynSilentlyIgnored, // Linux 3.14: SYN in ESTABLISHED dropped, no reply
  kChallengeAckRst,    // RFC 5961: in-window (non-exact) RST challenged
  kOutOfWindowRst,     // RST outside window
  kOutOfWindowSynOld,  // pre-5961 stack: out-of-window SYN acked + dropped
  kBadStateForSegment, // e.g. plain ACK arriving in LISTEN
  kNotListening,       // no matching endpoint on the host
};

const char* to_string(IgnoreReason r);

struct IgnoreEvent {
  TcpState state;
  IgnoreReason reason;
  std::string detail;
};

/// Linux versions cross-validated in §5.3.
enum class LinuxVersion {
  k2_4_37,
  k2_6_34,
  k3_14,
  k4_0,
  k4_4,
};

const char* to_string(LinuxVersion v);

/// Behavioural knobs distinguishing the modeled stacks. The defaults are
/// Linux 4.4 (the paper's reference stack); `for_version` derives the
/// others per the §5.3 cross-validation findings.
struct StackProfile {
  LinuxVersion version = LinuxVersion::k4_4;

  /// All stacks validate checksums; left settable for experiments.
  bool validates_checksum = true;

  /// RFC 2385: reject segments with an unsolicited MD5 option. Linux
  /// 2.4.37 predates the implementation and accepts such segments.
  bool rejects_unsolicited_md5 = true;

  /// Modern stacks ignore any non-SYN/RST segment lacking the ACK flag in
  /// synchronized states; 2.6.34 and 2.4.37 accept data without ACK (§5.3).
  bool requires_ack_flag = true;

  /// RFC 5961 behaviours (Linux >= 3.6/3.8-ish; true for 4.0/4.4):
  /// SYN in ESTABLISHED draws a challenge ACK; RST must hit rcv_nxt
  /// exactly, in-window RSTs are challenged.
  bool rfc5961_challenge_acks = true;

  /// Linux 3.14 silently ignores a SYN in ESTABLISHED (neither challenge
  /// nor reset). Only meaningful when rfc5961_challenge_acks is false.
  bool ignores_syn_in_established = false;

  /// PAWS (RFC 7323) old-timestamp rejection; on whenever timestamps are
  /// negotiated on all modeled stacks.
  bool paws = true;

  /// Reject segments whose ACK field acknowledges unsent data. A minority
  /// of real-world servers/middlebox front ends "accept packets regardless
  /// of the (wrong) ACK number" (§7.1) — those are modeled by clearing
  /// this flag.
  bool validates_ack_field = true;

  /// Negotiate timestamps in the handshake.
  bool use_timestamps = true;

  /// Overlap preference when reassembling out-of-order TCP segments.
  /// Linux keeps the first-arrived copy of a byte.
  net::OverlapPolicy segment_overlap = net::OverlapPolicy::kPreferFirst;

  /// Overlap preference of the host IP-fragment reassembler.
  net::OverlapPolicy ip_fragment_overlap = net::OverlapPolicy::kPreferLast;

  /// Whether an MD5-signed connection was negotiated (BGP-style peering);
  /// off for every web server we model, making MD5 options "unsolicited".
  bool md5_negotiated = false;

  /// Maximum segment size announced and used for segmentation.
  u16 mss = 1460;

  static StackProfile for_version(LinuxVersion v);
};

}  // namespace ys::tcp
