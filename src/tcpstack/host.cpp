#include "tcpstack/host.h"

namespace ys::tcp {

Host::Host(Config cfg, net::Path& path, net::EventLoop& loop, Rng rng)
    : cfg_(std::move(cfg)), path_(path), loop_(loop), rng_(std::move(rng)),
      reassembler_(cfg_.profile.ip_fragment_overlap) {}

void Host::attach() {
  auto sink = [this](net::Packet pkt) { handle_wire(std::move(pkt)); };
  if (cfg_.side == HostSide::kClient) {
    path_.set_client_sink(sink);
  } else {
    path_.set_server_sink(sink);
  }
}

void Host::listen(u16 port, DataHandler on_data) {
  listeners_[port] = Listener{std::move(on_data)};
}

TcpEndpoint& Host::connect(net::IpAddr dst_ip, u16 dst_port, u16 src_port,
                           TcpEndpoint::Callbacks app_callbacks) {
  if (src_port == 0) src_port = next_ephemeral_port_++;
  net::FourTuple tuple{cfg_.address, src_port, dst_ip, dst_port};
  TcpEndpoint::Callbacks cb = std::move(app_callbacks);
  cb.send = [this](net::Packet pkt) { transmit(std::move(pkt)); };
  auto ep = std::make_unique<TcpEndpoint>(loop_, rng_.fork(), cfg_.profile,
                                          tuple, std::move(cb));
  ep->set_trace(path_.trace(), cfg_.name,
                cfg_.side == HostSide::kClient ? net::Dir::kS2C
                                               : net::Dir::kC2S);
  TcpEndpoint& ref = *ep;
  endpoints_[tuple] = std::move(ep);
  ref.open_active();
  return ref;
}

TcpEndpoint* Host::find(const net::FourTuple& local_tuple) {
  auto it = endpoints_.find(local_tuple);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

void Host::bind_udp(u16 port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::send_udp(const net::FourTuple& tuple, Bytes payload) {
  transmit(net::make_udp_packet(tuple, std::move(payload)));
}

void Host::send_raw(net::Packet pkt) { transmit(std::move(pkt)); }

void Host::send_raw_unhooked(net::Packet pkt) {
  if (cfg_.side == HostSide::kClient) {
    path_.send_from_client(std::move(pkt));
  } else {
    path_.send_from_server(std::move(pkt));
  }
}

void Host::transmit(net::Packet pkt) {
  if (egress_hook_) {
    if (egress_hook_(pkt) == Verdict::kDrop) return;
  }
  send_raw_unhooked(std::move(pkt));
}

void Host::handle_wire(net::Packet pkt) {
  // IP-layer reassembly first: hosts always reassemble before the
  // transport layer sees anything.
  std::optional<net::Packet> whole = reassembler_.push(pkt);
  if (!whole) return;  // waiting for more fragments

  received_.push_back(*whole);

  if (ingress_hook_) {
    if (ingress_hook_(*whole) == Verdict::kDrop) return;
  }

  if (whole->is_tcp()) {
    handle_tcp(*whole);
  } else if (whole->is_udp()) {
    handle_udp(*whole);
  }
}

void Host::handle_tcp(const net::Packet& pkt) {
  // Local view of the tuple: src = us, dst = remote.
  const net::FourTuple local{pkt.ip.dst, pkt.tcp->dst_port, pkt.ip.src,
                             pkt.tcp->src_port};
  if (TcpEndpoint* ep = find(local)) {
    ep->on_segment(pkt);
    return;
  }

  auto lst = listeners_.find(pkt.tcp->dst_port);
  if (lst != listeners_.end()) {
    // Create a per-connection endpoint in LISTEN and replay the segment
    // into it (SYN-cookie-free accept path). The data handler needs the
    // endpoint reference, which only exists after construction, so it is
    // late-bound through a shared holder.
    auto holder = std::make_shared<TcpEndpoint*>(nullptr);
    TcpEndpoint::Callbacks cb;
    cb.send = [this](net::Packet out) { transmit(std::move(out)); };
    if (DataHandler handler = lst->second.on_data) {
      cb.on_data = [holder, handler](ByteView data) {
        if (*holder != nullptr) handler(**holder, data);
      };
    }
    auto ep = std::make_unique<TcpEndpoint>(loop_, rng_.fork(), cfg_.profile,
                                            local, std::move(cb));
    ep->set_trace(path_.trace(), cfg_.name,
                  cfg_.side == HostSide::kClient ? net::Dir::kS2C
                                                 : net::Dir::kC2S);
    *holder = ep.get();
    TcpEndpoint* raw = ep.get();
    raw->open_passive();
    endpoints_[local] = std::move(ep);
    raw->on_segment(pkt);
    return;
  }

  // No endpoint and no listener: a real stack sends RST for non-RST
  // segments (connection refused).
  demux_ignores_.push_back(
      IgnoreEvent{TcpState::kClosed, IgnoreReason::kNotListening,
                  pkt.summary()});
  if (obs::TraceRecorder* tr = path_.trace()) {
    tr->note(loop_.now(), cfg_.name, obs::TraceKind::kIgnore,
             std::string(to_string(IgnoreReason::kNotListening)) +
                 " [no endpoint, no listener]",
             tr->event_for_packet(pkt.trace_id));
  }
  if (!pkt.tcp->flags.rst && !cfg_.suppress_kernel_resets) {
    u32 rst_seq = pkt.tcp->flags.ack ? pkt.tcp->ack : 0;
    net::Packet rst = net::make_tcp_packet(local, net::TcpFlags::only_rst(),
                                           rst_seq, 0);
    if (!pkt.tcp->flags.ack) {
      rst.tcp->flags.ack = true;
      rst.tcp->ack = pkt.tcp->seq + static_cast<u32>(pkt.payload.size()) +
                     (pkt.tcp->flags.syn ? 1 : 0) +
                     (pkt.tcp->flags.fin ? 1 : 0);
    }
    transmit(std::move(rst));
  }
}

void Host::handle_udp(const net::Packet& pkt) {
  auto it = udp_handlers_.find(pkt.udp->dst_port);
  if (it == udp_handlers_.end()) return;  // ICMP unreachable not modeled
  const net::FourTuple from{pkt.ip.src, pkt.udp->src_port, pkt.ip.dst,
                            pkt.udp->dst_port};
  it->second(from, pkt.payload);
}

}  // namespace ys::tcp
