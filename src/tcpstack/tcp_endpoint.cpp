#include "tcpstack/tcp_endpoint.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace ys::tcp {

namespace {
constexpr i64 kInitialRtoMs = 200;
constexpr int kMaxRetransmits = 6;
constexpr u16 kWindowBytes = 65535;

struct StackMetrics {
  obs::Counter& segments_in;
  obs::Counter& segments_out;
  obs::Counter& retransmits;
  obs::Counter& challenge_acks;
  obs::Counter& ignored_total;
};

StackMetrics& metrics() {
  return obs::bind_per_thread<StackMetrics>([](obs::MetricsRegistry& reg) {
    return StackMetrics{reg.counter("tcpstack.segment_in"),
                        reg.counter("tcpstack.segment_out"),
                        reg.counter("tcpstack.segment_retransmit"),
                        reg.counter("tcpstack.challenge_ack_sent"),
                        reg.counter("tcpstack.segment_ignored")};
  });
}

/// Ignore-path hits split by reason and by Linux profile — the §5.3 view
/// ("which discard paths does this stack exercise") as registry counters.
/// Ignores are rare relative to segments, so the by-name lookup here is off
/// the hot path.
void count_ignore(IgnoreReason reason, LinuxVersion version) {
  auto& reg = obs::MetricsRegistry::current();
  metrics().ignored_total.inc();
  reg.counter(std::string("tcpstack.ignored.") + to_string(reason)).inc();
  std::string profile = to_string(version);  // "Linux 4.4" -> "linux-4.4"
  for (char& c : profile) {
    if (c == ' ') c = '-';
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  reg.counter("tcpstack.ignored_by_profile." + profile).inc();
}

}  // namespace

TcpEndpoint::TcpEndpoint(net::EventLoop& loop, Rng rng, StackProfile profile,
                         net::FourTuple local, Callbacks callbacks)
    : loop_(loop), rng_(std::move(rng)), profile_(profile), local_(local),
      cb_(std::move(callbacks)) {
  rcv_wnd_ = kWindowBytes;
}

void TcpEndpoint::set_state(TcpState next) {
  if (state_ == next) return;
  state_ = next;
  if (next == TcpState::kEstablished && cb_.on_established) {
    cb_.on_established();
  }
}

void TcpEndpoint::ignore(const net::Packet& pkt, IgnoreReason reason,
                         std::string detail) {
  if (detail.empty()) detail = pkt.summary();
  count_ignore(reason, profile_.version);
  if (trace_ != nullptr) {
    // The §5.3 "server ignore path" record: which profile discarded the
    // packet, on which path, in which TCP state — linked to the packet.
    obs::TraceEvent ev;
    ev.at = loop_.now();
    ev.kind = obs::TraceKind::kIgnore;
    ev.actor = trace_actor_;
    ev.packet = net::to_trace_ref(pkt, trace_dir_);
    ev.caused_by = trace_->event_for_packet(pkt.trace_id);
    ev.detail = std::string(to_string(reason)) + " [" +
                to_string(profile_.version) + ", " + to_string(state_) + "]";
    trace_->record(std::move(ev));
  }
  ignore_log_.push_back(IgnoreEvent{state_, reason, std::move(detail)});
}

// ----------------------------------------------------------------- user API

void TcpEndpoint::open_active() {
  assert(state_ == TcpState::kClosed);
  iss_ = rng_.next_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  set_state(TcpState::kSynSent);
  emit(make_segment(net::TcpFlags::only_syn(), iss_, 0));
  schedule_retransmit();
}

void TcpEndpoint::open_passive() {
  assert(state_ == TcpState::kClosed);
  set_state(TcpState::kListen);
}

void TcpEndpoint::send_data(Bytes data) {
  pending_send_.insert(pending_send_.end(), data.begin(), data.end());
  transmit_queued();
}

void TcpEndpoint::close() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    fin_queued_ = true;
    return;
  }
  if (!pending_send_.empty()) {
    fin_queued_ = true;
    return;
  }
  const u32 fin_seq = snd_nxt_;
  snd_nxt_ += 1;
  fin_sent_ = true;
  set_state(state_ == TcpState::kCloseWait ? TcpState::kLastAck
                                           : TcpState::kFinWait1);
  retransmit_queue_.push_back(Unacked{fin_seq, {}, /*fin_after=*/true});
  emit(make_segment(net::TcpFlags::fin_ack(), fin_seq, rcv_nxt_));
  schedule_retransmit();
}

void TcpEndpoint::abort() {
  if (state_ == TcpState::kEstablished || state_ == TcpState::kSynRecv ||
      state_ == TcpState::kFinWait1 || state_ == TcpState::kFinWait2 ||
      state_ == TcpState::kCloseWait) {
    emit(make_segment(net::TcpFlags::only_rst(), snd_nxt_, 0));
  }
  set_state(TcpState::kClosed);
}

// --------------------------------------------------------------- emitters

net::Packet TcpEndpoint::make_segment(net::TcpFlags flags, u32 seq, u32 ack,
                                      Bytes payload) {
  net::Packet pkt =
      net::make_tcp_packet(local_, flags, seq, ack, std::move(payload));
  pkt.tcp->window = rcv_wnd_;
  if (profile_.use_timestamps && (flags.syn || ts_enabled_peer_)) {
    // A coarse 1 ms timestamp clock, offset per connection.
    const u32 ts_val = static_cast<u32>(loop_.now().millis()) + iss_ % 1000;
    pkt.tcp->options.timestamps = net::TcpTimestamps{ts_val, ts_recent_};
  }
  if (flags.syn) {
    pkt.tcp->options.mss = profile_.mss;
  }
  return pkt;
}

void TcpEndpoint::emit(net::Packet pkt) {
  metrics().segments_out.inc();
  if (cb_.send) cb_.send(std::move(pkt));
}

void TcpEndpoint::send_ack() {
  emit(make_segment(net::TcpFlags::only_ack(), snd_nxt_, rcv_nxt_));
}

void TcpEndpoint::send_challenge_ack() {
  ++challenge_acks_sent_;
  metrics().challenge_acks.inc();
  send_ack();
}

void TcpEndpoint::send_rst(u32 seq) {
  emit(make_segment(net::TcpFlags::only_rst(), seq, 0));
}

// ------------------------------------------------------------ validation

bool TcpEndpoint::prevalidate(const net::Packet& pkt) {
  // Stage 1 of Linux's tcp_v4_rcv: drop malformed packets before any state
  // is touched. Each early return here is a Table 3 ignore path.
  if (!net::ip_length_consistent(pkt)) {
    ignore(pkt, IgnoreReason::kBadIpLength);
    return false;
  }
  if (!pkt.tcp || pkt.tcp->data_offset_words < 5) {
    ignore(pkt, IgnoreReason::kShortTcpHeader);
    return false;
  }
  if (profile_.validates_checksum && !net::transport_checksum_ok(pkt)) {
    ignore(pkt, IgnoreReason::kBadChecksum);
    return false;
  }
  if (pkt.tcp->options.md5_signature && profile_.rejects_unsolicited_md5 &&
      !profile_.md5_negotiated) {
    ignore(pkt, IgnoreReason::kUnsolicitedMd5);
    return false;
  }
  return true;
}

void TcpEndpoint::on_segment(const net::Packet& pkt) {
  metrics().segments_in.inc();
  if (state_ == TcpState::kClosed) {
    // RFC 793 CLOSED: discard RSTs, answer everything else with a RST —
    // this is the observable "connection was killed" signal peers rely on.
    if (pkt.tcp && !pkt.tcp->flags.rst && prevalidate(pkt)) {
      if (pkt.tcp->flags.ack) {
        send_rst(pkt.tcp->ack);
      } else {
        net::Packet rst = make_segment(net::TcpFlags::rst_ack(), 0,
                                       pkt.tcp_seq_end());
        emit(std::move(rst));
      }
    }
    return;
  }
  if (!prevalidate(pkt)) return;

  switch (state_) {
    case TcpState::kListen:
      process_listen(pkt);
      return;
    case TcpState::kSynSent:
      process_syn_sent(pkt);
      return;
    case TcpState::kSynRecv:
      process_syn_recv(pkt);
      return;
    default:
      process_synchronized(pkt);
      return;
  }
}

// ---------------------------------------------------------------- LISTEN

void TcpEndpoint::process_listen(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;
  if (t.flags.rst) {
    ignore(pkt, IgnoreReason::kBadStateForSegment, "RST in LISTEN");
    return;
  }
  if (t.flags.ack) {
    // An ACK in LISTEN draws a RST (RFC 793).
    send_rst(t.ack);
    ignore(pkt, IgnoreReason::kBadStateForSegment, "ACK in LISTEN");
    return;
  }
  if (t.flags.syn) {
    irs_ = t.seq;
    rcv_nxt_ = t.seq + 1;
    iss_ = rng_.next_u32();
    snd_una_ = iss_;
    snd_nxt_ = iss_ + 1;
    if (profile_.use_timestamps && t.options.timestamps) {
      ts_enabled_peer_ = true;
      ts_recent_ = t.options.timestamps->ts_val;
    }
    set_state(TcpState::kSynRecv);
    emit(make_segment(net::TcpFlags::syn_ack(), iss_, rcv_nxt_));
    schedule_retransmit();
    return;
  }
  ignore(pkt, IgnoreReason::kBadStateForSegment, "no SYN in LISTEN");
}

// -------------------------------------------------------------- SYN_SENT

void TcpEndpoint::process_syn_sent(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;

  if (t.flags.rst) {
    // RFC 793: a RST in SYN_SENT is acceptable only if it acks our SYN.
    if (t.flags.ack && t.ack == snd_nxt_) {
      reset_seen_ = true;
      set_state(TcpState::kClosed);
      if (cb_.on_reset) cb_.on_reset();
    } else {
      ignore(pkt, IgnoreReason::kBadAckNumber, "RST in SYN_SENT w/ bad ack");
    }
    return;
  }

  if (t.flags.syn && t.flags.ack) {
    if (t.ack != snd_nxt_) {
      // Unacceptable ACK: reply RST, stay in SYN_SENT (RFC 793 p.66).
      send_rst(t.ack);
      ignore(pkt, IgnoreReason::kBadAckNumber, "SYN/ACK w/ bad ack");
      return;
    }
    irs_ = t.seq;
    rcv_nxt_ = t.seq + 1;
    snd_una_ = t.ack;
    if (profile_.use_timestamps && t.options.timestamps) {
      ts_enabled_peer_ = true;
      ts_recent_ = t.options.timestamps->ts_val;
    }
    retransmit_queue_.clear();
    retransmit_attempts_ = 0;
    // The handshake-completing ACK must hit the wire before anything the
    // on_established callback sends (apps — and evasion strategies hooked
    // below them — react to establishment, and their packets must follow
    // the ACK like they would on a real stack).
    state_ = TcpState::kEstablished;
    send_ack();
    if (cb_.on_established) cb_.on_established();
    transmit_queued();
    if (fin_queued_ && pending_send_.empty()) close();
    return;
  }

  if (t.flags.syn) {
    // Simultaneous open.
    irs_ = t.seq;
    rcv_nxt_ = t.seq + 1;
    set_state(TcpState::kSynRecv);
    emit(make_segment(net::TcpFlags::syn_ack(), iss_, rcv_nxt_));
    return;
  }

  ignore(pkt, IgnoreReason::kBadStateForSegment, "non-SYN in SYN_SENT");
}

// -------------------------------------------------------------- SYN_RECV

void TcpEndpoint::process_syn_recv(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;

  if (t.flags.rst) {
    // Table 3: a RST/ACK with a wrong acknowledgment number is ignored in
    // SYN_RECV — the GFW, in contrast, accepts it.
    if (t.flags.ack && t.ack != snd_nxt_) {
      ignore(pkt, IgnoreReason::kBadAckNumber, "RST/ACK w/ bad ack in SYN_RECV");
      return;
    }
    if (t.seq == rcv_nxt_) {
      reset_seen_ = true;
      set_state(TcpState::kClosed);
      if (cb_.on_reset) cb_.on_reset();
      return;
    }
    const bool in_window =
        seq_ge(t.seq, rcv_nxt_) && seq_lt(t.seq, rcv_nxt_ + rcv_wnd_);
    if (!in_window) {
      ignore(pkt, IgnoreReason::kOutOfWindowRst);
      return;
    }
    if (profile_.rfc5961_challenge_acks) {
      send_challenge_ack();
      ignore(pkt, IgnoreReason::kChallengeAckRst);
      return;
    }
    reset_seen_ = true;
    set_state(TcpState::kClosed);
    if (cb_.on_reset) cb_.on_reset();
    return;
  }

  if (t.flags.syn && !t.flags.ack) {
    // Duplicate SYN: retransmit our SYN/ACK.
    emit(make_segment(net::TcpFlags::syn_ack(), iss_, rcv_nxt_));
    return;
  }

  if (!t.flags.ack) {
    ignore(pkt, IgnoreReason::kNoAckFlag, "segment w/o ACK in SYN_RECV");
    return;
  }
  if (t.ack != snd_nxt_) {
    // Table 3: ACK with wrong acknowledgment number ignored in SYN_RECV.
    ignore(pkt, IgnoreReason::kBadAckNumber, "ACK w/ bad ack in SYN_RECV");
    return;
  }
  if (paws_reject(pkt)) return;

  snd_una_ = t.ack;
  retransmit_queue_.clear();
  retransmit_attempts_ = 0;
  set_state(TcpState::kEstablished);
  transmit_queued();
  // The completing ACK may itself carry data or FIN.
  if (!pkt.payload.empty() || t.flags.fin) process_synchronized(pkt);
  if (fin_queued_ && pending_send_.empty()) close();
}

// --------------------------------------------------- synchronized states

bool TcpEndpoint::paws_reject(const net::Packet& pkt) {
  // PAWS (RFC 7323) protects data/ACK segments. RSTs are explicitly exempt
  // — the paper leans on this: an old-timestamp *RST* still resets, so old
  // timestamps are only safe for data insertion packets.
  const net::TcpHeader& t = *pkt.tcp;
  if (!profile_.paws || !ts_enabled_peer_ || t.flags.rst) return false;
  if (!t.options.timestamps) return false;
  if (seq_lt(t.options.timestamps->ts_val, ts_recent_)) {
    send_ack();  // Linux acks PAWS-rejected segments
    ignore(pkt, IgnoreReason::kOldTimestamp);
    return true;
  }
  return false;
}

bool TcpEndpoint::handle_rst(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;
  if (!t.flags.rst) return false;
  // Note: in synchronized states Linux does NOT require a valid ACK field
  // on RSTs — §5.3: "even if the RST/ACK has a wrong ACK number or old
  // timestamp, it will still be able to reset the connection".
  if (t.seq == rcv_nxt_) {
    reset_seen_ = true;
    set_state(TcpState::kClosed);
    if (cb_.on_reset) cb_.on_reset();
    return true;
  }
  const bool in_window =
      seq_ge(t.seq, rcv_nxt_) && seq_lt(t.seq, rcv_nxt_ + rcv_wnd_);
  if (!in_window) {
    ignore(pkt, IgnoreReason::kOutOfWindowRst);
    return true;
  }
  if (profile_.rfc5961_challenge_acks) {
    send_challenge_ack();
    ignore(pkt, IgnoreReason::kChallengeAckRst);
    return true;
  }
  reset_seen_ = true;
  set_state(TcpState::kClosed);
  if (cb_.on_reset) cb_.on_reset();
  return true;
}

bool TcpEndpoint::handle_syn_in_sync_state(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;
  if (!t.flags.syn) return false;
  if (profile_.rfc5961_challenge_acks) {
    // RFC 5961 §4: never reset on an in-window SYN; send a challenge ACK.
    send_challenge_ack();
    ignore(pkt, IgnoreReason::kChallengeAckSyn);
    return true;
  }
  if (profile_.ignores_syn_in_established) {
    // Linux 3.14 (§5.3): SYN in ESTABLISHED silently ignored.
    ignore(pkt, IgnoreReason::kSynSilentlyIgnored);
    return true;
  }
  // Pre-5961 stack: an in-window SYN aborts the connection.
  const bool in_window =
      seq_ge(t.seq, rcv_nxt_) && seq_lt(t.seq, rcv_nxt_ + rcv_wnd_);
  if (in_window) {
    send_rst(snd_nxt_);
    reset_seen_ = true;
    set_state(TcpState::kClosed);
    if (cb_.on_reset) cb_.on_reset();
  } else {
    send_ack();
    ignore(pkt, IgnoreReason::kOutOfWindowSynOld);
  }
  return true;
}

void TcpEndpoint::process_ack_field(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;
  if (!t.flags.ack) return;
  if (seq_gt(t.ack, snd_nxt_)) return;  // handled by caller as bad ack
  if (seq_gt(t.ack, snd_una_)) {
    snd_una_ = t.ack;
    while (!retransmit_queue_.empty()) {
      const Unacked& front = retransmit_queue_.front();
      const u32 end = front.seq + static_cast<u32>(front.data.size()) +
                      (front.fin_after ? 1 : 0);
      if (seq_le(end, snd_una_)) {
        retransmit_queue_.pop_front();
      } else {
        break;
      }
    }
    retransmit_attempts_ = 0;
    // Our FIN being acked drives the closing transitions.
    if (fin_sent_ && snd_una_ == snd_nxt_) {
      if (state_ == TcpState::kFinWait1) set_state(TcpState::kFinWait2);
      else if (state_ == TcpState::kClosing) enter_time_wait();
      else if (state_ == TcpState::kLastAck) set_state(TcpState::kClosed);
    }
  }
}

void TcpEndpoint::accept_payload(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;
  const u32 seg_seq = t.seq;
  const u32 seg_len = static_cast<u32>(pkt.payload.size());
  if (seg_len == 0) return;
  const u32 seg_end = seg_seq + seg_len;

  if (seq_le(seg_end, rcv_nxt_)) {
    send_ack();
    ignore(pkt, IgnoreReason::kDuplicateData);
    return;
  }
  if (seq_ge(seg_seq, rcv_nxt_ + rcv_wnd_)) {
    // Entirely beyond the window: duplicate ACK, state unchanged — the
    // canonical "ignored possibly with an ACK in response" path of §5.3.
    send_ack();
    ignore(pkt, IgnoreReason::kOutOfWindowSeq);
    return;
  }

  // Clip to the receive window and merge into the out-of-order byte store
  // under the profile's overlap policy (Linux keeps the first copy).
  for (u32 off = 0; off < seg_len; ++off) {
    const u32 pos = seg_seq + off;
    if (seq_lt(pos, rcv_nxt_)) continue;
    if (seq_ge(pos, rcv_nxt_ + rcv_wnd_)) break;
    auto it = ooo_bytes_.find(pos);
    if (it != ooo_bytes_.end()) {
      if (profile_.segment_overlap == net::OverlapPolicy::kPreferLast) {
        it->second = pkt.payload[off];
      }
    } else {
      ooo_bytes_.emplace(pos, pkt.payload[off]);
    }
  }

  // Drain contiguous bytes from rcv_nxt.
  Bytes delivered;
  while (true) {
    auto it = ooo_bytes_.find(rcv_nxt_);
    if (it == ooo_bytes_.end()) break;
    delivered.push_back(it->second);
    ooo_bytes_.erase(it);
    ++rcv_nxt_;
  }
  if (!delivered.empty()) {
    received_stream_.insert(received_stream_.end(), delivered.begin(),
                            delivered.end());
    if (t.options.timestamps && ts_enabled_peer_ &&
        seq_ge(t.options.timestamps->ts_val, ts_recent_)) {
      ts_recent_ = t.options.timestamps->ts_val;
    }
    if (cb_.on_data) cb_.on_data(delivered);
  }
  send_ack();
}

void TcpEndpoint::process_synchronized(const net::Packet& pkt) {
  const net::TcpHeader& t = *pkt.tcp;

  if (handle_rst(pkt)) return;
  if (handle_syn_in_sync_state(pkt)) return;

  // Modern stacks drop any non-SYN/RST segment lacking the ACK flag; this
  // single gate implements both the "no TCP flag" and the "only FIN flag"
  // rows of Table 3. Linux 2.6.34/2.4.37 fall through and treat the bytes
  // as data (§5.3) — which is why no-flag insertion packets backfire there.
  if (!t.flags.ack && profile_.requires_ack_flag) {
    ignore(pkt, IgnoreReason::kNoAckFlag);
    return;
  }

  if (paws_reject(pkt)) return;

  if (t.flags.ack && profile_.validates_ack_field &&
      seq_gt(t.ack, snd_nxt_)) {
    // Acks data we never sent: ack + drop (Table 3 row 5 in ESTABLISHED).
    send_ack();
    ignore(pkt, IgnoreReason::kBadAckNumber);
    return;
  }

  process_ack_field(pkt);
  accept_payload(pkt);

  if (t.flags.fin) {
    const u32 fin_pos = t.seq + static_cast<u32>(pkt.payload.size());
    if (fin_pos == rcv_nxt_) {
      ++rcv_nxt_;
      send_ack();
      switch (state_) {
        case TcpState::kEstablished:
          set_state(TcpState::kCloseWait);
          if (cb_.on_peer_close) cb_.on_peer_close();
          break;
        case TcpState::kFinWait1:
          if (fin_sent_ && snd_una_ == snd_nxt_) enter_time_wait();
          else set_state(TcpState::kClosing);
          break;
        case TcpState::kFinWait2:
          enter_time_wait();
          break;
        default:
          break;
      }
    }
    // An out-of-order FIN just waits in the reassembly gap.
  }
}

void TcpEndpoint::enter_time_wait() {
  set_state(TcpState::kTimeWait);
  // 2*MSL teardown is irrelevant to the experiments; park the state.
}

// ------------------------------------------------------------ transmission

void TcpEndpoint::transmit_queued() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  bool sent = false;
  while (!pending_send_.empty()) {
    const std::size_t len =
        std::min<std::size_t>(pending_send_.size(), profile_.mss);
    Bytes chunk(pending_send_.begin(),
                pending_send_.begin() + static_cast<long>(len));
    pending_send_.erase(pending_send_.begin(),
                        pending_send_.begin() + static_cast<long>(len));
    const u32 seq = snd_nxt_;
    snd_nxt_ += static_cast<u32>(len);
    retransmit_queue_.push_back(Unacked{seq, chunk, false});
    net::TcpFlags flags = net::TcpFlags::psh_ack();
    emit(make_segment(flags, seq, rcv_nxt_, std::move(chunk)));
    sent = true;
  }
  if (sent) schedule_retransmit();
  if (fin_queued_ && pending_send_.empty()) {
    fin_queued_ = false;
    close();
  }
}

void TcpEndpoint::schedule_retransmit() {
  const u64 epoch = ++retransmit_epoch_;
  const i64 rto_ms = kInitialRtoMs << std::min(retransmit_attempts_, 4);
  loop_.schedule_after(SimTime::from_ms(rto_ms),
                       [this, epoch] { on_retransmit_timer(epoch); });
}

void TcpEndpoint::on_retransmit_timer(u64 epoch) {
  if (epoch != retransmit_epoch_) return;  // superseded or cancelled
  if (retransmit_attempts_ >= kMaxRetransmits) return;

  if (state_ == TcpState::kSynSent) {
    ++retransmit_attempts_;
    metrics().retransmits.inc();
    emit(make_segment(net::TcpFlags::only_syn(), iss_, 0));
    schedule_retransmit();
    return;
  }
  if (state_ == TcpState::kSynRecv) {
    ++retransmit_attempts_;
    metrics().retransmits.inc();
    emit(make_segment(net::TcpFlags::syn_ack(), iss_, rcv_nxt_));
    schedule_retransmit();
    return;
  }
  if (retransmit_queue_.empty()) return;

  ++retransmit_attempts_;
  metrics().retransmits.inc(retransmit_queue_.size());
  for (const Unacked& seg : retransmit_queue_) {
    if (seg.fin_after) {
      emit(make_segment(net::TcpFlags::fin_ack(), seg.seq, rcv_nxt_));
    } else {
      emit(make_segment(net::TcpFlags::psh_ack(), seg.seq, rcv_nxt_,
                        seg.data));
    }
  }
  schedule_retransmit();
}

}  // namespace ys::tcp
