// A host: one end of the simulated path, owning TCP endpoints, listeners,
// UDP handlers, a raw-socket API, and netfilter-like ingress/egress hooks.
//
// The hook surface mirrors what INTANG uses on Linux (NFQUEUE + raw
// sockets): an egress hook may drop/modify outgoing packets and inject
// extras, and the raw-send API writes arbitrary crafted packets to the wire
// bypassing the TCP state machine.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "netsim/path.h"
#include "tcpstack/tcp_endpoint.h"

namespace ys::tcp {

enum class HostSide { kClient, kServer };

class Host {
 public:
  struct Config {
    std::string name = "host";
    net::IpAddr address = 0;
    StackProfile profile;
    HostSide side = HostSide::kClient;
    /// Measurement-tool mode: never answer unknown segments with kernel
    /// RSTs (the equivalent of the iptables OUTPUT-RST-DROP rule every
    /// raw-socket prober installs so its scripted flows aren't disturbed).
    bool suppress_kernel_resets = false;
  };

  /// Per-connection application callbacks used by listeners. `on_data`
  /// receives the endpoint so it can reply in place.
  using DataHandler = std::function<void(TcpEndpoint&, ByteView)>;
  /// UDP datagram handler: (source tuple, payload); reply via send_udp.
  using UdpHandler = std::function<void(const net::FourTuple&, ByteView)>;

  enum class Verdict { kAccept, kDrop };
  /// Outgoing-packet hook (INTANG's interception point). May mutate the
  /// packet; returning kDrop swallows it.
  using PacketHook = std::function<Verdict(net::Packet&)>;

  Host(Config cfg, net::Path& path, net::EventLoop& loop, Rng rng);

  /// Install this host as the path's client or server sink (per side).
  void attach();

  // ----------------------------------------------------------------- TCP

  /// Register a listening port. Incoming connections get per-connection
  /// endpoints; `on_data` fires on every in-order delivery.
  void listen(u16 port, DataHandler on_data);

  /// Active connect. Returns the live endpoint (owned by the host).
  TcpEndpoint& connect(net::IpAddr dst_ip, u16 dst_port, u16 src_port,
                       TcpEndpoint::Callbacks app_callbacks = {});

  /// Find the endpoint for a local-view tuple, or nullptr.
  TcpEndpoint* find(const net::FourTuple& local_tuple);

  // ----------------------------------------------------------------- UDP

  void bind_udp(u16 port, UdpHandler handler);
  void send_udp(const net::FourTuple& tuple, Bytes payload);

  // ---------------------------------------------------- raw + hook plane

  /// Raw-socket send: bypasses endpoints entirely; the packet goes through
  /// the egress hook like everything else (INTANG itself injects *below*
  /// the hook via `send_raw_unhooked`).
  void send_raw(net::Packet pkt);
  /// Raw send that skips the egress hook — used by the hook implementation
  /// itself to emit insertion packets without recursing.
  void send_raw_unhooked(net::Packet pkt);

  /// Deliver a packet to this host's own IP layer as if it had arrived
  /// from the wire (loopback). INTANG's DNS forwarder uses this to hand a
  /// reconstructed UDP response back to the querying application.
  void inject_local(net::Packet pkt) {
    finalize(pkt);
    handle_wire(std::move(pkt));
  }

  void set_egress_hook(PacketHook hook) { egress_hook_ = std::move(hook); }
  void set_ingress_hook(PacketHook hook) { ingress_hook_ = std::move(hook); }

  // ------------------------------------------------------------- inspect

  const Config& config() const { return cfg_; }
  net::EventLoop& loop() { return loop_; }
  net::Path& path() { return path_; }

  /// Every packet that reached this host's IP layer (post reassembly),
  /// in arrival order — the experiment harness classifies Failure 2 by
  /// scanning this for GFW reset fingerprints.
  const std::vector<net::Packet>& received_log() const { return received_; }

  /// Ignore events from packets that matched no endpoint.
  const std::vector<IgnoreEvent>& demux_ignores() const {
    return demux_ignores_;
  }

 private:
  void handle_wire(net::Packet pkt);
  void handle_tcp(const net::Packet& pkt);
  void handle_udp(const net::Packet& pkt);
  void transmit(net::Packet pkt);

  struct Listener {
    DataHandler on_data;
  };

  Config cfg_;
  net::Path& path_;
  net::EventLoop& loop_;
  Rng rng_;
  net::FragmentReassembler reassembler_;

  std::unordered_map<net::FourTuple, std::unique_ptr<TcpEndpoint>,
                     net::FourTupleHash>
      endpoints_;
  std::unordered_map<u16, Listener> listeners_;
  std::unordered_map<u16, UdpHandler> udp_handlers_;

  PacketHook egress_hook_;
  PacketHook ingress_hook_;

  std::vector<net::Packet> received_;
  std::vector<IgnoreEvent> demux_ignores_;
  u16 next_ephemeral_port_ = 40000;
};

}  // namespace ys::tcp
