#include "tcpstack/tcp_types.h"

namespace ys::tcp {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRecv: return "SYN_RECV";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

const char* to_string(IgnoreReason r) {
  switch (r) {
    case IgnoreReason::kBadIpLength: return "bad-ip-length";
    case IgnoreReason::kShortTcpHeader: return "short-tcp-header";
    case IgnoreReason::kBadChecksum: return "bad-checksum";
    case IgnoreReason::kUnsolicitedMd5: return "unsolicited-md5";
    case IgnoreReason::kNoAckFlag: return "no-ack-flag";
    case IgnoreReason::kBadAckNumber: return "bad-ack-number";
    case IgnoreReason::kOldTimestamp: return "old-timestamp";
    case IgnoreReason::kOutOfWindowSeq: return "out-of-window-seq";
    case IgnoreReason::kDuplicateData: return "duplicate-data";
    case IgnoreReason::kChallengeAckSyn: return "challenge-ack-syn";
    case IgnoreReason::kSynSilentlyIgnored: return "syn-silently-ignored";
    case IgnoreReason::kChallengeAckRst: return "challenge-ack-rst";
    case IgnoreReason::kOutOfWindowRst: return "out-of-window-rst";
    case IgnoreReason::kOutOfWindowSynOld: return "out-of-window-syn-old";
    case IgnoreReason::kBadStateForSegment: return "bad-state-for-segment";
    case IgnoreReason::kNotListening: return "not-listening";
  }
  return "?";
}

const char* to_string(LinuxVersion v) {
  switch (v) {
    case LinuxVersion::k2_4_37: return "Linux 2.4.37";
    case LinuxVersion::k2_6_34: return "Linux 2.6.34";
    case LinuxVersion::k3_14: return "Linux 3.14";
    case LinuxVersion::k4_0: return "Linux 4.0";
    case LinuxVersion::k4_4: return "Linux 4.4";
  }
  return "?";
}

StackProfile StackProfile::for_version(LinuxVersion v) {
  StackProfile p;  // defaults model Linux 4.4
  p.version = v;
  switch (v) {
    case LinuxVersion::k4_4:
    case LinuxVersion::k4_0:
      break;
    case LinuxVersion::k3_14:
      // §5.3: in ESTABLISHED an incoming SYN is ignored (no challenge ACK,
      // no reset).
      p.rfc5961_challenge_acks = false;
      p.ignores_syn_in_established = true;
      break;
    case LinuxVersion::k2_6_34:
      // §5.3: data without the ACK flag is accepted.
      p.rfc5961_challenge_acks = false;
      p.requires_ack_flag = false;
      break;
    case LinuxVersion::k2_4_37:
      // §5.3: additionally, RFC 2385 is not implemented, so unsolicited
      // MD5 options are accepted.
      p.rfc5961_challenge_acks = false;
      p.requires_ack_flag = false;
      p.rejects_unsolicited_md5 = false;
      break;
  }
  return p;
}

}  // namespace ys::tcp
