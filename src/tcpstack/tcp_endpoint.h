// A TCP connection endpoint with per-version Linux behaviour.
//
// This is the "server model" of §5.3: every way the stack can discard a
// segment without touching connection state is an explicit ignore path,
// recorded in a machine-readable log. Strategies rely on these paths — an
// insertion packet is precisely a segment that lands on a server ignore
// path while the GFW accepts it.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "netsim/event_loop.h"
#include "netsim/packet.h"
#include "netsim/path.h"
#include "tcpstack/tcp_types.h"

namespace ys::tcp {

/// One reliable TCP endpoint (one connection). Host manages demux and
/// listener semantics; the endpoint implements RFC 793 segment processing
/// plus the modern-Linux extensions the paper's analysis depends on
/// (RFC 5961 challenge ACKs, PAWS, RFC 2385 option rejection).
class TcpEndpoint {
 public:
  struct Callbacks {
    /// Emit a finalized-on-send packet to the wire.
    std::function<void(net::Packet)> send;
    /// In-order application data delivery.
    std::function<void(ByteView)> on_data;
    /// Connection reached ESTABLISHED.
    std::function<void()> on_established;
    /// Connection was reset by a (real or forged) RST.
    std::function<void()> on_reset;
    /// Peer closed cleanly (FIN processed).
    std::function<void()> on_peer_close;
  };

  /// `local` is the endpoint's view: src = local address, dst = remote.
  TcpEndpoint(net::EventLoop& loop, Rng rng, StackProfile profile,
              net::FourTuple local, Callbacks callbacks);

  // ------------------------------------------------------------- user API

  /// Active open: send SYN, enter SYN_SENT.
  void open_active();

  /// Passive open: enter LISTEN and wait for a SYN.
  void open_passive();

  /// Queue application data; segments at MSS, retransmits until acked.
  void send_data(Bytes data);

  /// Orderly close (FIN).
  void close();

  /// Hard reset: send RST and go CLOSED.
  void abort();

  /// Process one incoming segment addressed to this endpoint.
  void on_segment(const net::Packet& pkt);

  // ----------------------------------------------------------- inspection

  TcpState state() const { return state_; }
  u32 snd_nxt() const { return snd_nxt_; }
  u32 snd_una() const { return snd_una_; }
  u32 rcv_nxt() const { return rcv_nxt_; }
  u32 iss() const { return iss_; }
  u32 irs() const { return irs_; }
  const net::FourTuple& tuple() const { return local_; }
  const StackProfile& profile() const { return profile_; }
  bool was_reset() const { return reset_seen_; }

  /// Attach causal tracing: every ignore path emits a kIgnore event naming
  /// this endpoint's Linux profile, linked to the discarded packet's last
  /// trace event. `inbound_dir` is the direction packets travel to reach
  /// this endpoint (kC2S for servers, kS2C for clients).
  void set_trace(obs::TraceRecorder* trace, std::string actor,
                 net::Dir inbound_dir) {
    trace_ = trace;
    trace_actor_ = std::move(actor);
    trace_dir_ = inbound_dir;
  }

  /// Every discarded segment with its ignore path (§5.3 instrumentation).
  const std::vector<IgnoreEvent>& ignore_log() const { return ignore_log_; }
  /// Count of challenge ACKs emitted (RFC 5961 observable feedback).
  int challenge_acks_sent() const { return challenge_acks_sent_; }
  /// All in-order data the application has received so far.
  const Bytes& received_stream() const { return received_stream_; }

 private:
  void set_state(TcpState next);
  void ignore(const net::Packet& pkt, IgnoreReason reason,
              std::string detail = {});

  // Packet construction: stamps ports/addresses, window, timestamps.
  net::Packet make_segment(net::TcpFlags flags, u32 seq, u32 ack,
                           Bytes payload = {});
  void emit(net::Packet pkt);
  void send_ack();
  void send_challenge_ack();
  void send_rst(u32 seq);

  // Segment-processing stages.
  bool prevalidate(const net::Packet& pkt);
  void process_listen(const net::Packet& pkt);
  void process_syn_sent(const net::Packet& pkt);
  void process_syn_recv(const net::Packet& pkt);
  void process_synchronized(const net::Packet& pkt);

  bool handle_rst(const net::Packet& pkt);
  bool handle_syn_in_sync_state(const net::Packet& pkt);
  bool paws_reject(const net::Packet& pkt);
  void accept_payload(const net::Packet& pkt);
  void process_ack_field(const net::Packet& pkt);
  void enter_time_wait();

  // Transmission machinery.
  void transmit_queued();
  void schedule_retransmit();
  void on_retransmit_timer(u64 epoch);

  net::EventLoop& loop_;
  Rng rng_;
  StackProfile profile_;
  net::FourTuple local_;
  Callbacks cb_;

  TcpState state_ = TcpState::kClosed;
  u32 iss_ = 0;       // initial send sequence
  u32 irs_ = 0;       // initial receive sequence
  u32 snd_una_ = 0;   // oldest unacknowledged
  u32 snd_nxt_ = 0;   // next to send
  u32 rcv_nxt_ = 0;   // next expected
  u16 rcv_wnd_ = 65535;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool reset_seen_ = false;

  // Timestamp state (RFC 7323).
  bool ts_enabled_peer_ = false;
  u32 ts_recent_ = 0;

  // Out-of-order receive bytes beyond rcv_nxt (byte-granular, policy
  // applied per byte per profile_.segment_overlap).
  std::map<u32, u8> ooo_bytes_;

  // Untransmitted/unacked send buffer keyed by starting seq.
  struct Unacked {
    u32 seq;
    Bytes data;
    bool fin_after = false;
  };
  std::deque<Unacked> retransmit_queue_;
  Bytes pending_send_;  // not yet segmented
  u64 retransmit_epoch_ = 0;
  int retransmit_attempts_ = 0;

  Bytes received_stream_;
  std::vector<IgnoreEvent> ignore_log_;
  int challenge_acks_sent_ = 0;

  obs::TraceRecorder* trace_ = nullptr;
  std::string trace_actor_;
  net::Dir trace_dir_ = net::Dir::kC2S;
};

}  // namespace ys::tcp
