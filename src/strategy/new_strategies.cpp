// The §5.2 new strategies and the §7.1 improved/combined strategies
// (Table 4, Figures 3 and 4). These explicitly target the evolved GFW
// model — the resync state and TCB-on-SYN/ACK creation — and are combined
// with prior-model attacks so the pair defeats whichever model a path has.
#include "strategy/strategy_impl.h"

namespace ys::strategy {
namespace {

using Verdict = tcp::Host::Verdict;

constexpr SimTime kSpacing = SimTime::from_ms(2);
/// Offset that puts an insertion sequence number far outside any
/// plausible receive window (the desync building block of §5.1).
constexpr u32 kOutOfWindow = 0x00800000;

bool is_bare_syn(const net::Packet& pkt) {
  return pkt.tcp->flags.syn && !pkt.tcp->flags.ack;
}

SimTime spaced(int slot) { return SimTime::from_us(kSpacing.us * slot); }

/// §5.1 building block: a 1-byte data packet with an out-of-window
/// sequence number. A resync-state GFW anchors on it; the server answers
/// with a harmless duplicate ACK and ignores it.
net::Packet make_desync_packet(StrategyContext& ctx, const net::TcpHeader& t,
                               Rng& rng) {
  return craft_data(ctx.tuple, t.seq + kOutOfWindow, t.ack,
                    junk_payload(1, rng));
}

/// Resync + Desync (§5.2): after the handshake, a SYN insertion packet
/// forces the evolved GFW into the resync state; the desync packet then
/// re-anchors it at a bogus offset, so the real request is out of window.
class ResyncDesync final : public Strategy {
 public:
  std::string name() const override { return "resync-desync"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    const net::TcpHeader& t = *pkt.tcp;
    // The SYN must carry a sequence number outside the server's window
    // (older Linux resets on an in-window SYN; newer answers a challenge
    // ACK either way, §5.2) and a small TTL against middlebox interference.
    net::Packet resync_syn = craft_syn(ctx.tuple, t.seq + kOutOfWindow);
    apply_discrepancy(resync_syn, Discrepancy::kSmallTtl, ctx.tuning());
    ctx.raw_send(std::move(resync_syn));
    ctx.raw_send_after(spaced(1), make_desync_packet(ctx, t, ctx.rng()));
    ctx.raw_send_after(spaced(2), pkt);
    return Verdict::kDrop;
  }

 private:
  DataTrigger trigger_;
};

/// TCB Reversal (§5.2): a client-forged SYN/ACK makes the evolved GFW
/// create a TCB with the roles swapped, so it monitors server responses
/// instead of client requests. The small TTL keeps the forgery from
/// reaching the server (which would answer RST).
class TcbReversal final : public Strategy {
 public:
  std::string name() const override { return "tcb-reversal"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!is_bare_syn(pkt)) return Verdict::kAccept;
    net::Packet reversal =
        craft_syn_ack(ctx.tuple, ctx.rng().next_u32(), ctx.rng().next_u32());
    apply_discrepancy(reversal, Discrepancy::kSmallTtl, ctx.tuning());
    ctx.raw_send(std::move(reversal));
    ctx.raw_send_after(kSpacing, pkt);
    return Verdict::kDrop;
  }

};

/// Improved TCB teardown (§7.1): RST insertion packets followed by a
/// desynchronization packet, so that a device which *resyncs* on the RST
/// (Behavior 3) anchors on junk instead of the request.
class ImprovedTeardown final : public Strategy {
 public:
  explicit ImprovedTeardown(Discrepancy d) : d_(d) {}
  std::string name() const override {
    return std::string("improved-tcb-teardown/") + to_string(d_);
  }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    const net::TcpHeader& t = *pkt.tcp;
    net::Packet rst = craft_rst(ctx.tuple, t.seq);
    apply_discrepancy(rst, d_, ctx.tuning());
    // Repeated copies against loss (§3.4; INTANG may raise the level on
    // lossy paths), then the desync packet, then the real request.
    const int copies = ctx.redundancy();
    for (int i = 0; i < copies; ++i) ctx.raw_send_after(spaced(i), rst);
    ctx.raw_send_after(spaced(copies), make_desync_packet(ctx, t, ctx.rng()));
    ctx.raw_send_after(spaced(copies + 1), pkt);
    return Verdict::kDrop;
  }

 private:
  Discrepancy d_;
  DataTrigger trigger_;
};

/// Improved in-order data overlapping (§7.1): the prefill insertion packet
/// uses the discrepancies middleboxes never police — the unsolicited MD5
/// option by default (Table 5) — instead of wrong checksums or missing
/// flags.
class ImprovedInOrder final : public Strategy {
 public:
  explicit ImprovedInOrder(Discrepancy d) : d_(d) {}
  std::string name() const override {
    return std::string("improved-in-order-overlap/") + to_string(d_);
  }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    const net::TcpHeader& t = *pkt.tcp;
    net::Packet insertion =
        craft_data(ctx.tuple, t.seq, t.ack,
                   junk_payload(pkt.payload.size(), ctx.rng()));
    apply_discrepancy(insertion, d_, ctx.tuning());
    ctx.raw_send_repeated(std::move(insertion));
    ctx.raw_send_after(kSpacing, pkt);
    return Verdict::kDrop;
  }

 private:
  Discrepancy d_;
  DataTrigger trigger_;
};

/// Figure 3 — TCB Creation + Resync/Desync. One fake-sequence SYN before
/// the handshake creates a false TCB on prior-model devices; a second SYN
/// after the handshake re-enters the resync state on evolved devices
/// (the handshake SYN/ACK already resynchronized them), and the desync
/// packet mis-anchors them for good.
class CreationResyncDesync final : public Strategy {
 public:
  std::string name() const override { return "tcb-creation+resync-desync"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (is_bare_syn(pkt)) {
      net::Packet first_syn = craft_syn(ctx.tuple, ctx.rng().next_u32());
      apply_discrepancy(first_syn, Discrepancy::kSmallTtl, ctx.tuning());
      ctx.raw_send(std::move(first_syn));
      ctx.raw_send_after(kSpacing, pkt);
      return Verdict::kDrop;
    }
    if (trigger_.fires(pkt)) {
      const net::TcpHeader& t = *pkt.tcp;
      net::Packet second_syn = craft_syn(ctx.tuple, t.seq + kOutOfWindow);
      apply_discrepancy(second_syn, Discrepancy::kSmallTtl, ctx.tuning());
      ctx.raw_send(std::move(second_syn));
      ctx.raw_send_after(spaced(1), make_desync_packet(ctx, t, ctx.rng()));
      ctx.raw_send_after(spaced(2), pkt);
      return Verdict::kDrop;
    }
    return Verdict::kAccept;
  }

 private:
  DataTrigger trigger_;
};

/// Figure 4 — TCB Teardown + TCB Reversal. The forged SYN/ACK gives
/// evolved devices a reversed TCB before the real handshake (which they
/// then ignore); the RST insertion packets tear down the TCB on
/// prior-model devices just before the request.
class TeardownReversal final : public Strategy {
 public:
  std::string name() const override { return "tcb-teardown+tcb-reversal"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (is_bare_syn(pkt)) {
      net::Packet reversal = craft_syn_ack(ctx.tuple, ctx.rng().next_u32(),
                                           ctx.rng().next_u32());
      apply_discrepancy(reversal, Discrepancy::kSmallTtl, ctx.tuning());
      ctx.raw_send(std::move(reversal));
      ctx.raw_send_after(kSpacing, pkt);
      return Verdict::kDrop;
    }
    if (trigger_.fires(pkt)) {
      const net::TcpHeader& t = *pkt.tcp;
      net::Packet rst = craft_rst(ctx.tuple, t.seq);
      apply_discrepancy(rst, Discrepancy::kSmallTtl, ctx.tuning());
      const int copies = ctx.redundancy();
      for (int i = 0; i < copies; ++i) ctx.raw_send_after(spaced(i), rst);
      ctx.raw_send_after(spaced(copies), pkt);
      return Verdict::kDrop;
    }
    return Verdict::kAccept;
  }

 private:
  DataTrigger trigger_;
};

}  // namespace

namespace detail {

std::unique_ptr<Strategy> make_new_strategy(StrategyId id) {
  switch (id) {
    case StrategyId::kResyncDesync:
      return std::make_unique<ResyncDesync>();
    case StrategyId::kTcbReversal:
      return std::make_unique<TcbReversal>();
    case StrategyId::kImprovedTeardown:
      return std::make_unique<ImprovedTeardown>(Discrepancy::kSmallTtl);
    case StrategyId::kImprovedInOrder:
      return std::make_unique<ImprovedInOrder>(Discrepancy::kUnsolicitedMd5);
    case StrategyId::kCreationResyncDesync:
      return std::make_unique<CreationResyncDesync>();
    case StrategyId::kTeardownReversal:
      return std::make_unique<TeardownReversal>();
    default:
      return nullptr;
  }
}

}  // namespace detail
}  // namespace ys::strategy
