// The §3.2 evasion strategies measured in Table 1, implemented against the
// prior GFW model of Khattak et al. Their failure modes against the evolved
// GFW (and against middleboxes) are the paper's first result.
#include "netsim/fragment.h"
#include "netsim/wire.h"
#include "strategy/strategy_impl.h"

namespace ys::strategy {
namespace {

using Verdict = tcp::Host::Verdict;

constexpr SimTime kSpacing = SimTime::from_ms(2);

bool is_bare_syn(const net::Packet& pkt) {
  return pkt.tcp->flags.syn && !pkt.tcp->flags.ack;
}

/// No-op baseline (Table 1 row 1).
class NoStrategy final : public Strategy {
 public:
  std::string name() const override { return "no-strategy"; }
};

/// TCB creation with SYN: a fake-sequence SYN insertion packet creates a
/// false TCB before the real handshake. Works against the prior model;
/// the evolved model enters resync on the second SYN and re-anchors on the
/// real request (→ Failure 2, ~89 % in Table 1).
class TcbCreationSyn final : public Strategy {
 public:
  explicit TcbCreationSyn(Discrepancy d) : d_(d) {}
  std::string name() const override {
    return std::string("tcb-creation-syn/") + to_string(d_);
  }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    // Re-fires on SYN retransmissions: a lost insertion packet must be
    // replaced, and a duplicate insertion SYN is harmless.
    if (!is_bare_syn(pkt)) return Verdict::kAccept;
    net::Packet insertion = craft_syn(ctx.tuple, ctx.rng().next_u32());
    apply_discrepancy(insertion, d_, ctx.tuning());
    ctx.raw_send(std::move(insertion));
    // Space the real SYN behind the insertion so path jitter cannot
    // reorder them in front of the GFW.
    ctx.raw_send_after(kSpacing, pkt);
    return Verdict::kDrop;
  }

 private:
  Discrepancy d_;
};

/// Out-of-order overlapping IP fragments: junk range first (the GFW keeps
/// the first copy of a range), real range second (hosts keep the last),
/// then the head that completes the datagram.
class OooIpFragments final : public Strategy {
 public:
  std::string name() const override { return "ooo-ip-fragments"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    net::Packet base = pkt;
    // All fragments of one datagram must share a (fresh) identification.
    base.ip.identification = static_cast<u16>(ctx.rng().uniform_range(1, 65535));
    net::finalize(base);
    Bytes transport = net::serialize_transport(base);
    // The head fragment must cover the TCP header; 24 bytes keeps the
    // split 8-aligned and the keyword inside the overlapped tail.
    constexpr std::size_t kSplit = 24;
    if (transport.size() < kSplit + 8) return Verdict::kAccept;

    Bytes head(transport.begin(), transport.begin() + kSplit);
    Bytes tail(transport.begin() + kSplit, transport.end());
    Bytes junk = junk_payload(tail.size(), ctx.rng());

    ctx.raw_send(net::make_raw_fragment(base, kSplit, std::move(junk),
                                        /*more_fragments=*/false));
    ctx.raw_send_after(kSpacing,
                       net::make_raw_fragment(base, kSplit, std::move(tail),
                                              /*more_fragments=*/false));
    ctx.raw_send_after(SimTime::from_us(2 * kSpacing.us),
                       net::make_raw_fragment(base, 0, std::move(head),
                                              /*more_fragments=*/true));
    return Verdict::kDrop;
  }

 private:
  DataTrigger trigger_;
};

/// Out-of-order overlapping TCP segments: real tail first, junk tail
/// second (the prior GFW keeps the *latter* TCP copy, hosts keep the
/// first), then the head segment closing the gap.
class OooTcpSegments final : public Strategy {
 public:
  std::string name() const override { return "ooo-tcp-segments"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    constexpr std::size_t kSplit = 8;
    if (pkt.payload.size() < kSplit + 8) return Verdict::kAccept;
    const net::TcpHeader& t = *pkt.tcp;

    Bytes head(pkt.payload.begin(), pkt.payload.begin() + kSplit);
    Bytes tail(pkt.payload.begin() + kSplit, pkt.payload.end());
    Bytes junk = junk_payload(tail.size(), ctx.rng());
    const u32 tail_seq = t.seq + static_cast<u32>(kSplit);

    ctx.raw_send(craft_data(ctx.tuple, tail_seq, t.ack, std::move(tail)));
    ctx.raw_send_after(kSpacing,
                       craft_data(ctx.tuple, tail_seq, t.ack, std::move(junk)));
    ctx.raw_send_after(SimTime::from_us(2 * kSpacing.us),
                       craft_data(ctx.tuple, t.seq, t.ack, std::move(head)));
    return Verdict::kDrop;
  }

 private:
  DataTrigger trigger_;
};

/// In-order data overlapping: prefill the GFW's buffer with an in-order
/// junk insertion packet the server ignores, then send the real request
/// which the GFW now treats as a duplicate.
class InOrderOverlap final : public Strategy {
 public:
  explicit InOrderOverlap(Discrepancy d) : d_(d) {}
  std::string name() const override {
    return std::string("in-order-overlap/") + to_string(d_);
  }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    const net::TcpHeader& t = *pkt.tcp;
    net::Packet insertion =
        craft_data(ctx.tuple, t.seq, t.ack,
                   junk_payload(pkt.payload.size(), ctx.rng()));
    apply_discrepancy(insertion, d_, ctx.tuning());
    // Repeat to ride out packet loss (§3.4: thrice, 20 ms apart); the
    // real request leaves between the first and second copy.
    ctx.raw_send_repeated(std::move(insertion));
    ctx.raw_send_after(kSpacing, pkt);
    return Verdict::kDrop;
  }

 private:
  Discrepancy d_;
  DataTrigger trigger_;
};

/// TCB teardown: an insertion RST / RST-ACK / FIN the server ignores but
/// the (prior-model) GFW honors, destroying its TCB before the request.
class TcbTeardown final : public Strategy {
 public:
  enum class Kind { kRst, kRstAck, kFin };

  TcbTeardown(Kind kind, Discrepancy d) : kind_(kind), d_(d) {}
  std::string name() const override {
    const char* base = kind_ == Kind::kRst      ? "teardown-rst/"
                       : kind_ == Kind::kRstAck ? "teardown-rstack/"
                                                : "teardown-fin/";
    return std::string(base) + to_string(d_);
  }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    const net::TcpHeader& t = *pkt.tcp;
    net::Packet teardown =
        kind_ == Kind::kRst
            ? craft_rst(ctx.tuple, t.seq)
            : kind_ == Kind::kRstAck
                  ? craft_rst_ack(ctx.tuple, t.seq, ctx.rcv_nxt)
                  : craft_fin(ctx.tuple, t.seq, ctx.rcv_nxt);
    apply_discrepancy(teardown, d_, ctx.tuning());
    ctx.raw_send_repeated(std::move(teardown));
    ctx.raw_send_after(kSpacing, pkt);
    return Verdict::kDrop;
  }

 private:
  Kind kind_;
  Discrepancy d_;
  DataTrigger trigger_;
};

/// The West Chamber Project's two-packet teardown ([25]): a TTL-limited
/// RST from the client plus a source-spoofed "server-side" RST, aiming to
/// destroy the GFW's TCB state for both directions. Against the evolved
/// model this fares no better than plain teardown (no desync follow-up),
/// which is why the paper found the tool "ineffective" — reproduced here
/// for the §9 comparison.
class WestChamber final : public Strategy {
 public:
  std::string name() const override { return "west-chamber"; }

  Verdict on_egress(StrategyContext& ctx, net::Packet& pkt) override {
    if (!trigger_.fires(pkt)) return Verdict::kAccept;

    const net::TcpHeader& t = *pkt.tcp;
    net::Packet client_rst = craft_rst(ctx.tuple, t.seq);
    apply_discrepancy(client_rst, Discrepancy::kSmallTtl, ctx.tuning());
    ctx.raw_send(std::move(client_rst));

    // The spoofed reverse-direction RST: source = the server. It travels
    // toward the server like everything the client emits, but the GFW
    // matches TCBs by address, so it reads as a server-side teardown. The
    // small TTL keeps it from reaching (and confusing) anything beyond.
    net::Packet spoofed =
        craft_rst(ctx.tuple.reversed(), ctx.rcv_nxt);
    apply_discrepancy(spoofed, Discrepancy::kSmallTtl, ctx.tuning());
    ctx.raw_send_after(kSpacing, std::move(spoofed));

    ctx.raw_send_after(SimTime::from_us(2 * kSpacing.us), pkt);
    return Verdict::kDrop;
  }

 private:
  DataTrigger trigger_;
};

}  // namespace

namespace detail {

std::unique_ptr<Strategy> make_no_strategy() {
  return std::make_unique<NoStrategy>();
}

std::unique_ptr<Strategy> make_legacy_strategy(StrategyId id) {
  using D = Discrepancy;
  using K = TcbTeardown::Kind;
  switch (id) {
    case StrategyId::kNone:
      return std::make_unique<NoStrategy>();
    case StrategyId::kTcbCreationSynTtl:
      return std::make_unique<TcbCreationSyn>(D::kSmallTtl);
    case StrategyId::kTcbCreationSynBadChecksum:
      return std::make_unique<TcbCreationSyn>(D::kBadChecksum);
    case StrategyId::kOutOfOrderIpFragments:
      return std::make_unique<OooIpFragments>();
    case StrategyId::kOutOfOrderTcpSegments:
      return std::make_unique<OooTcpSegments>();
    case StrategyId::kInOrderTtl:
      return std::make_unique<InOrderOverlap>(D::kSmallTtl);
    case StrategyId::kInOrderBadAck:
      return std::make_unique<InOrderOverlap>(D::kBadAckNumber);
    case StrategyId::kInOrderBadChecksum:
      return std::make_unique<InOrderOverlap>(D::kBadChecksum);
    case StrategyId::kInOrderNoFlags:
      return std::make_unique<InOrderOverlap>(D::kNoFlags);
    case StrategyId::kTeardownRstTtl:
      return std::make_unique<TcbTeardown>(K::kRst, D::kSmallTtl);
    case StrategyId::kTeardownRstBadChecksum:
      return std::make_unique<TcbTeardown>(K::kRst, D::kBadChecksum);
    case StrategyId::kTeardownRstAckTtl:
      return std::make_unique<TcbTeardown>(K::kRstAck, D::kSmallTtl);
    case StrategyId::kTeardownRstAckBadChecksum:
      return std::make_unique<TcbTeardown>(K::kRstAck, D::kBadChecksum);
    case StrategyId::kTeardownFinTtl:
      return std::make_unique<TcbTeardown>(K::kFin, D::kSmallTtl);
    case StrategyId::kTeardownFinBadChecksum:
      return std::make_unique<TcbTeardown>(K::kFin, D::kBadChecksum);
    case StrategyId::kWestChamber:
      return std::make_unique<WestChamber>();
    default:
      return nullptr;
  }
}

}  // namespace detail
}  // namespace ys::strategy
