// Client-side evasion strategies: the paper's primary contribution.
//
// A Strategy observes a connection's packets at the client's
// netfilter-like interception points and injects crafted insertion packets
// (or reshapes outgoing packets) to desynchronize the GFW's TCB from the
// server's. StrategyEngine wires strategies to a client Host and maintains
// the minimal per-connection state (ISNs, next sequence numbers, timestamp
// echoes) strategies need for crafting.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "strategy/insertion.h"
#include "tcpstack/host.h"

namespace ys::strategy {

/// What the client knows about the path, measured the way INTANG measures
/// it: a tcptraceroute-style hop count to the server, minus a safety margin
/// δ for TTL-limited insertion packets (§7.1 uses δ = 2).
struct PathKnowledge {
  int hop_estimate = 14;
  int ttl_delta = 2;
  u8 default_ttl = 64;
  /// Copies of each insertion packet to send against loss (§3.4 uses 3;
  /// INTANG can raise it on lossy paths — the §7.1 "adjusting the level of
  /// redundancy" optimization).
  int insertion_redundancy = 3;

  u8 insertion_ttl() const {
    const int ttl = hop_estimate - ttl_delta;
    return static_cast<u8>(ttl < 1 ? 1 : (ttl > 255 ? 255 : ttl));
  }
};

/// Per-connection state tracked by the engine and exposed to strategies.
class StrategyContext {
 public:
  StrategyContext(tcp::Host& host, PathKnowledge knowledge, Rng rng)
      : host_(&host), knowledge_(knowledge), rng_(std::move(rng)) {}

  /// Immediate raw injection, below the interception hook (no recursion).
  /// All insertion packets funnel through here (or raw_send_after), so this
  /// is where they get marked crafted and causally linked to the strategy
  /// decision that armed this connection.
  void raw_send(net::Packet pkt) {
    pkt.crafted = true;
    pkt.cause_hint = decision_event;
    host_->send_raw_unhooked(std::move(pkt));
  }

  /// Delayed raw injection — used to space insertion packets so they are
  /// processed in order despite path jitter, and to implement the paper's
  /// "repeat thrice with 20 ms intervals" loss hedge.
  void raw_send_after(SimTime delay, net::Packet pkt);

  /// Repeat an insertion packet `times` times, `interval` apart (§3.4).
  /// `times <= 0` uses the path knowledge's redundancy level.
  void raw_send_repeated(net::Packet pkt, int times = 0,
                         SimTime interval = SimTime::from_ms(20));

  /// Current insertion redundancy for this connection.
  int redundancy() const { return knowledge_.insertion_redundancy; }

  net::EventLoop& loop() { return host_->loop(); }
  Rng& rng() { return rng_; }
  const PathKnowledge& knowledge() const { return knowledge_; }

  /// Tuning for insertion-packet discrepancies, kept current by the
  /// engine as the connection progresses.
  InsertionTuning tuning() const;

  // Observed connection state (client view: src = client).
  net::FourTuple tuple;
  u32 client_isn = 0;
  bool client_isn_known = false;
  u32 server_isn = 0;
  bool server_isn_known = false;
  u32 snd_nxt = 0;  // next client sequence number to go out
  u32 rcv_nxt = 0;  // next expected server sequence number
  u32 last_ts_val = 0;
  bool handshake_done = false;

  /// Trace-event id of the "strategy armed" decision for this connection
  /// (0 when tracing is off); stamped onto every insertion packet.
  u64 decision_event = 0;

 private:
  tcp::Host* host_;
  PathKnowledge knowledge_;
  Rng rng_;
};

/// Retransmission-aware trigger. Fires on the first outgoing data packet
/// and again on every kernel retransmission of that same segment: INTANG's
/// callbacks run on retransmitted packets too, and without that a single
/// lost insertion packet would let the stack leak the request in plaintext.
class DataTrigger {
 public:
  bool fires(const net::Packet& pkt) {
    if (pkt.payload.empty()) return false;
    if (!armed_) {
      armed_ = true;
      seq_ = pkt.tcp->seq;
      return true;
    }
    return pkt.tcp->seq == seq_;
  }

 private:
  bool armed_ = false;
  u32 seq_ = 0;
};

/// Base class for all evasion strategies. Handlers may inject packets via
/// the context and may drop/modify the triggering packet via the verdict.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// Outgoing packet (from the client TCP stack or raw sends above the
  /// hook). Called before the packet reaches the wire.
  virtual tcp::Host::Verdict on_egress(StrategyContext& ctx,
                                       net::Packet& pkt) {
    (void)ctx;
    (void)pkt;
    return tcp::Host::Verdict::kAccept;
  }

  /// Incoming packet, before the client TCP stack processes it.
  virtual tcp::Host::Verdict on_ingress(StrategyContext& ctx,
                                        net::Packet& pkt) {
    (void)ctx;
    (void)pkt;
    return tcp::Host::Verdict::kAccept;
  }
};

/// Identifiers for every strategy in the paper, used by benchmarks and by
/// INTANG's per-server cache.
enum class StrategyId {
  kNone,
  // §3.2 existing strategies (Table 1 rows).
  kTcbCreationSynTtl,
  kTcbCreationSynBadChecksum,
  kOutOfOrderIpFragments,
  kOutOfOrderTcpSegments,
  kInOrderTtl,
  kInOrderBadAck,
  kInOrderBadChecksum,
  kInOrderNoFlags,
  kTeardownRstTtl,
  kTeardownRstBadChecksum,
  kTeardownRstAckTtl,
  kTeardownRstAckBadChecksum,
  kTeardownFinTtl,
  kTeardownFinBadChecksum,
  /// The West Chamber Project's approach ([25], development ceased 2011):
  /// tear the GFW's TCB down "from both directions" with a client RST plus
  /// a source-spoofed server-side RST. Measured ineffective in §1/§9.
  kWestChamber,
  // §5.2 new strategies.
  kResyncDesync,
  kTcbReversal,
  // §7.1 improved + combined strategies (Table 4 rows).
  kImprovedTeardown,
  kImprovedInOrder,
  kCreationResyncDesync,   // Figure 3
  kTeardownReversal,       // Figure 4
};

const char* to_string(StrategyId id);

/// Instantiate a fresh strategy object for one connection.
std::unique_ptr<Strategy> make_strategy(StrategyId id);

/// The four robust strategies INTANG tries, in default preference order
/// (§7.1 Table 4).
std::vector<StrategyId> intang_candidate_strategies();

/// All Table 1 (existing) strategy rows in presentation order.
std::vector<StrategyId> legacy_strategies();

/// Every strategy id, including kNone (for CLIs and sweeps).
std::vector<StrategyId> all_strategies();

/// Reverse lookup by the to_string() name; nullopt for unknown names.
std::optional<StrategyId> strategy_from_name(std::string_view name);

/// Hooks strategies into a client Host. One engine per host; it tracks
/// per-connection contexts and forwards interception events.
class StrategyEngine {
 public:
  /// Factory chooses the strategy per destination (INTANG plugs its
  /// selector in here; benchmarks return a fixed strategy).
  using Factory =
      std::function<std::unique_ptr<Strategy>(const net::FourTuple&)>;

  StrategyEngine(tcp::Host& host, Factory factory, PathKnowledge knowledge,
                 Rng rng);

  /// Install as the host's egress/ingress hooks. Skip if a higher layer
  /// (INTANG) owns the hooks and calls egress()/ingress() itself.
  void install();

  /// Raise/lower insertion redundancy for *future* connections (INTANG's
  /// loss adaptation). Existing connections keep their level.
  void set_insertion_redundancy(int copies) {
    knowledge_.insertion_redundancy = copies;
  }
  int insertion_redundancy() const {
    return knowledge_.insertion_redundancy;
  }

  tcp::Host::Verdict egress(net::Packet& pkt);
  tcp::Host::Verdict ingress(net::Packet& pkt);

  /// Context lookup for tests (client-view tuple).
  const StrategyContext* find_context(const net::FourTuple& tuple) const;

 private:
  struct Conn {
    std::unique_ptr<Strategy> strategy;
    StrategyContext ctx;
  };

  Conn& conn_for(const net::FourTuple& client_tuple);

  tcp::Host& host_;
  Factory factory_;
  PathKnowledge knowledge_;
  Rng rng_;
  std::unordered_map<net::FourTuple, Conn, net::FourTupleHash> conns_;
};

}  // namespace ys::strategy
