// Internal registry glue between strategy.cpp and the implementation
// translation units.
#pragma once

#include <memory>

#include "strategy/strategy.h"

namespace ys::strategy::detail {

std::unique_ptr<Strategy> make_no_strategy();
/// Returns nullptr when `id` is not a §3.2 legacy strategy.
std::unique_ptr<Strategy> make_legacy_strategy(StrategyId id);
/// Returns nullptr when `id` is not a §5/§7 strategy.
std::unique_ptr<Strategy> make_new_strategy(StrategyId id);

}  // namespace ys::strategy::detail
