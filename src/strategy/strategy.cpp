#include "strategy/strategy.h"

#include "strategy/strategy_impl.h"
#include "tcpstack/tcp_types.h"

namespace ys::strategy {

void StrategyContext::raw_send_after(SimTime delay, net::Packet pkt) {
  pkt.crafted = true;
  pkt.cause_hint = decision_event;
  tcp::Host* host = host_;
  host_->loop().schedule_after(delay, [host, pkt = std::move(pkt)]() mutable {
    host->send_raw_unhooked(std::move(pkt));
  });
}

void StrategyContext::raw_send_repeated(net::Packet pkt, int times,
                                        SimTime interval) {
  if (times <= 0) times = redundancy();
  for (int i = 0; i < times; ++i) {
    raw_send_after(SimTime::from_us(interval.us * i), pkt);
  }
}

InsertionTuning StrategyContext::tuning() const {
  InsertionTuning t;
  t.small_ttl = knowledge_.insertion_ttl();
  t.peer_snd_nxt = rcv_nxt;
  // Anything far behind the last timestamp we emitted fails PAWS at the
  // server; the GFW never checks.
  t.stale_ts_val = last_ts_val - 1'000'000;
  return t;
}

const char* to_string(StrategyId id) {
  switch (id) {
    case StrategyId::kNone: return "no-strategy";
    case StrategyId::kTcbCreationSynTtl: return "tcb-creation-syn/ttl";
    case StrategyId::kTcbCreationSynBadChecksum:
      return "tcb-creation-syn/bad-checksum";
    case StrategyId::kOutOfOrderIpFragments: return "ooo-ip-fragments";
    case StrategyId::kOutOfOrderTcpSegments: return "ooo-tcp-segments";
    case StrategyId::kInOrderTtl: return "in-order-overlap/ttl";
    case StrategyId::kInOrderBadAck: return "in-order-overlap/bad-ack";
    case StrategyId::kInOrderBadChecksum:
      return "in-order-overlap/bad-checksum";
    case StrategyId::kInOrderNoFlags: return "in-order-overlap/no-flags";
    case StrategyId::kTeardownRstTtl: return "teardown-rst/ttl";
    case StrategyId::kTeardownRstBadChecksum:
      return "teardown-rst/bad-checksum";
    case StrategyId::kTeardownRstAckTtl: return "teardown-rstack/ttl";
    case StrategyId::kTeardownRstAckBadChecksum:
      return "teardown-rstack/bad-checksum";
    case StrategyId::kTeardownFinTtl: return "teardown-fin/ttl";
    case StrategyId::kTeardownFinBadChecksum:
      return "teardown-fin/bad-checksum";
    case StrategyId::kWestChamber: return "west-chamber";
    case StrategyId::kResyncDesync: return "resync-desync";
    case StrategyId::kTcbReversal: return "tcb-reversal";
    case StrategyId::kImprovedTeardown: return "improved-tcb-teardown";
    case StrategyId::kImprovedInOrder: return "improved-in-order-overlap";
    case StrategyId::kCreationResyncDesync:
      return "tcb-creation+resync-desync";
    case StrategyId::kTeardownReversal: return "tcb-teardown+tcb-reversal";
  }
  return "?";
}

std::unique_ptr<Strategy> make_strategy(StrategyId id) {
  if (auto s = detail::make_legacy_strategy(id)) return s;
  if (auto s = detail::make_new_strategy(id)) return s;
  return detail::make_no_strategy();
}

std::vector<StrategyId> intang_candidate_strategies() {
  return {StrategyId::kTeardownReversal, StrategyId::kImprovedTeardown,
          StrategyId::kCreationResyncDesync, StrategyId::kImprovedInOrder};
}

std::vector<StrategyId> legacy_strategies() {
  return {
      StrategyId::kTcbCreationSynTtl,
      StrategyId::kTcbCreationSynBadChecksum,
      StrategyId::kOutOfOrderIpFragments,
      StrategyId::kOutOfOrderTcpSegments,
      StrategyId::kInOrderTtl,
      StrategyId::kInOrderBadAck,
      StrategyId::kInOrderBadChecksum,
      StrategyId::kInOrderNoFlags,
      StrategyId::kTeardownRstTtl,
      StrategyId::kTeardownRstBadChecksum,
      StrategyId::kTeardownRstAckTtl,
      StrategyId::kTeardownRstAckBadChecksum,
      StrategyId::kTeardownFinTtl,
      StrategyId::kTeardownFinBadChecksum,
  };
}

std::vector<StrategyId> all_strategies() {
  std::vector<StrategyId> out{StrategyId::kNone};
  for (auto id : legacy_strategies()) out.push_back(id);
  out.push_back(StrategyId::kWestChamber);
  out.push_back(StrategyId::kResyncDesync);
  out.push_back(StrategyId::kTcbReversal);
  for (auto id : intang_candidate_strategies()) out.push_back(id);
  return out;
}

std::optional<StrategyId> strategy_from_name(std::string_view name) {
  for (auto id : all_strategies()) {
    if (name == to_string(id)) return id;
  }
  return std::nullopt;
}

// ------------------------------------------------------------------ engine

StrategyEngine::StrategyEngine(tcp::Host& host, Factory factory,
                               PathKnowledge knowledge, Rng rng)
    : host_(host), factory_(std::move(factory)), knowledge_(knowledge),
      rng_(std::move(rng)) {}

void StrategyEngine::install() {
  host_.set_egress_hook(
      [this](net::Packet& pkt) { return egress(pkt); });
  host_.set_ingress_hook(
      [this](net::Packet& pkt) { return ingress(pkt); });
}

StrategyEngine::Conn& StrategyEngine::conn_for(
    const net::FourTuple& client_tuple) {
  auto it = conns_.find(client_tuple);
  if (it == conns_.end()) {
    StrategyContext ctx(host_, knowledge_, rng_.fork());
    ctx.tuple = client_tuple;
    it = conns_
             .emplace(client_tuple,
                      Conn{factory_(client_tuple), std::move(ctx)})
             .first;
    Conn& conn = it->second;
    if (obs::TraceRecorder* tr = host_.path().trace()) {
      // The factory just ran; if it was INTANG's selector it recorded a
      // kDecision we chain to, attributing insertion packets selector ->
      // armed strategy -> packet.
      const u64 selector_decision = tr->last_decision();
      conn.ctx.decision_event = tr->note(
          host_.loop().now(), "strategy", obs::TraceKind::kDecision,
          "strategy " + conn.strategy->name() + " armed for " +
              client_tuple.to_string(),
          selector_decision);
    }
  }
  return it->second;
}

tcp::Host::Verdict StrategyEngine::egress(net::Packet& pkt) {
  if (!pkt.is_tcp()) return tcp::Host::Verdict::kAccept;
  Conn& conn = conn_for(pkt.tuple());
  StrategyContext& ctx = conn.ctx;

  const net::TcpHeader& t = *pkt.tcp;
  if (t.flags.syn && !t.flags.ack && !ctx.client_isn_known) {
    ctx.client_isn = t.seq;
    ctx.client_isn_known = true;
    ctx.snd_nxt = t.seq + 1;
  }
  if (t.options.timestamps) ctx.last_ts_val = t.options.timestamps->ts_val;
  if (tcp::seq_gt(pkt.tcp_seq_end(), ctx.snd_nxt)) {
    ctx.snd_nxt = pkt.tcp_seq_end();
  }

  return conn.strategy->on_egress(ctx, pkt);
}

tcp::Host::Verdict StrategyEngine::ingress(net::Packet& pkt) {
  if (!pkt.is_tcp()) return tcp::Host::Verdict::kAccept;
  Conn& conn = conn_for(pkt.tuple().reversed());
  StrategyContext& ctx = conn.ctx;

  const net::TcpHeader& t = *pkt.tcp;
  if (t.flags.syn && t.flags.ack && !ctx.server_isn_known) {
    ctx.server_isn = t.seq;
    ctx.server_isn_known = true;
    ctx.rcv_nxt = t.seq + 1;
    ctx.handshake_done = true;
  }
  if (!pkt.payload.empty() && tcp::seq_gt(pkt.tcp_seq_end(), ctx.rcv_nxt)) {
    ctx.rcv_nxt = pkt.tcp_seq_end();
  }

  return conn.strategy->on_ingress(ctx, pkt);
}

const StrategyContext* StrategyEngine::find_context(
    const net::FourTuple& tuple) const {
  auto it = conns_.find(tuple);
  return it == conns_.end() ? nullptr : &it->second.ctx;
}

}  // namespace ys::strategy
