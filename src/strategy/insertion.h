// Insertion-packet crafting (§3.2, §5.3, Table 3, Table 5).
//
// An insertion packet must be (a) accepted by the GFW — which validates
// almost nothing — and (b) ignored by the server and surviving middleboxes.
// Each Discrepancy below targets one server "ignore path" from Table 3;
// `preferred_discrepancies` encodes Table 5's packet-type compatibility
// matrix (e.g. a RST with a wrong ACK number does NOT work: servers reset
// anyway, so bad-ACK is data-only).
#pragma once

#include <vector>

#include "core/rng.h"
#include "netsim/packet.h"

namespace ys::strategy {

enum class Discrepancy {
  kNone,
  kSmallTtl,        // dies between the GFW and the server
  kBadChecksum,     // server validates, GFW doesn't
  kBadAckNumber,    // acks unsent data; ignored in SYN_RECV/ESTABLISHED
  kNoFlags,         // no TCP flags at all; modern servers require ACK
  kUnsolicitedMd5,  // RFC 2385 option without negotiation
  kOldTimestamp,    // PAWS rejection
  kBadIpLength,     // claimed IP total length > actual packet length
  kShortTcpHeader,  // TCP data offset < 5 words
};

const char* to_string(Discrepancy d);

/// Parameters needed to realize a discrepancy on a live connection.
struct InsertionTuning {
  /// TTL that reaches the GFW but not the server (hop estimate − δ).
  u8 small_ttl = 8;
  /// The peer's snd_nxt as the client knows it; a bad ACK acks beyond it.
  u32 peer_snd_nxt = 0;
  u32 bad_ack_offset = 0x01000000;
  /// A timestamp value strictly older than the connection's ts_recent.
  u32 stale_ts_val = 0;
};

/// Mutate a crafted packet so the chosen ignore path triggers at the
/// server. Call after all other fields are final (the bad checksum is
/// computed from the final layout).
void apply_discrepancy(net::Packet& pkt, Discrepancy d,
                       const InsertionTuning& tuning);

/// What kind of TCP packet an insertion packet is, for Table 5 lookups.
enum class PacketKind { kSyn, kSynAck, kRst, kFin, kData };

/// Table 5: discrepancies usable for each packet type, in preference
/// order. Control packets (SYN/RST) cannot rely on bad-ACK/old-timestamp —
/// servers honor them regardless — so only TTL (and MD5 for RST) remain.
std::vector<Discrepancy> preferred_discrepancies(PacketKind kind);

// ------------------------------------------------------------- factories
// Raw segment factories for strategies. All leave checksum/length fields
// zero for finalize() unless a discrepancy overrides them.

net::Packet craft_syn(const net::FourTuple& tuple, u32 seq);
net::Packet craft_syn_ack(const net::FourTuple& tuple, u32 seq, u32 ack);
net::Packet craft_rst(const net::FourTuple& tuple, u32 seq);
net::Packet craft_rst_ack(const net::FourTuple& tuple, u32 seq, u32 ack);
net::Packet craft_fin(const net::FourTuple& tuple, u32 seq, u32 ack);
net::Packet craft_data(const net::FourTuple& tuple, u32 seq, u32 ack,
                       Bytes payload);

/// Junk payload of `size` bytes, deterministic per rng stream, guaranteed
/// not to contain any censored keyword (plain uppercase letters).
Bytes junk_payload(std::size_t size, Rng& rng);

}  // namespace ys::strategy
