#include "strategy/insertion.h"

namespace ys::strategy {

const char* to_string(Discrepancy d) {
  switch (d) {
    case Discrepancy::kNone: return "none";
    case Discrepancy::kSmallTtl: return "ttl";
    case Discrepancy::kBadChecksum: return "bad-checksum";
    case Discrepancy::kBadAckNumber: return "bad-ack";
    case Discrepancy::kNoFlags: return "no-flags";
    case Discrepancy::kUnsolicitedMd5: return "md5";
    case Discrepancy::kOldTimestamp: return "old-timestamp";
    case Discrepancy::kBadIpLength: return "bad-ip-length";
    case Discrepancy::kShortTcpHeader: return "short-tcp-header";
  }
  return "?";
}

void apply_discrepancy(net::Packet& pkt, Discrepancy d,
                       const InsertionTuning& tuning) {
  switch (d) {
    case Discrepancy::kNone:
      break;
    case Discrepancy::kSmallTtl:
      pkt.ip.ttl = tuning.small_ttl;
      break;
    case Discrepancy::kBadChecksum:
      // Any constant offset from the correct checksum works; +1 keeps the
      // corruption deterministic and visible in traces.
      pkt.tcp->checksum =
          static_cast<u16>(net::correct_transport_checksum(pkt) + 1);
      break;
    case Discrepancy::kBadAckNumber:
      pkt.tcp->flags.ack = true;
      pkt.tcp->ack = tuning.peer_snd_nxt + tuning.bad_ack_offset;
      break;
    case Discrepancy::kNoFlags:
      pkt.tcp->flags = net::TcpFlags::none();
      break;
    case Discrepancy::kUnsolicitedMd5: {
      std::array<u8, 16> digest{};
      digest.fill(0xD5);
      pkt.tcp->options.md5_signature = digest;
      break;
    }
    case Discrepancy::kOldTimestamp:
      pkt.tcp->options.timestamps =
          net::TcpTimestamps{tuning.stale_ts_val, 0};
      break;
    case Discrepancy::kBadIpLength:
      pkt.ip.total_length = static_cast<u16>(net::wire_size(pkt) + 512);
      break;
    case Discrepancy::kShortTcpHeader:
      pkt.tcp->data_offset_words = 4;
      break;
  }
}

std::vector<Discrepancy> preferred_discrepancies(PacketKind kind) {
  // Table 5: SYN → TTL; RST → TTL, MD5; data → TTL, MD5, bad ACK, old
  // timestamp. SYN/ACK insertion (TCB Reversal) behaves like SYN; FIN like
  // RST minus MD5 (kept TTL-only, FIN teardown is dead against the evolved
  // model anyway).
  switch (kind) {
    case PacketKind::kSyn:
    case PacketKind::kSynAck:
      return {Discrepancy::kSmallTtl};
    case PacketKind::kRst:
      return {Discrepancy::kSmallTtl, Discrepancy::kUnsolicitedMd5};
    case PacketKind::kFin:
      return {Discrepancy::kSmallTtl};
    case PacketKind::kData:
      return {Discrepancy::kSmallTtl, Discrepancy::kUnsolicitedMd5,
              Discrepancy::kBadAckNumber, Discrepancy::kOldTimestamp};
  }
  return {};
}

net::Packet craft_syn(const net::FourTuple& tuple, u32 seq) {
  net::Packet pkt =
      net::make_tcp_packet(tuple, net::TcpFlags::only_syn(), seq, 0);
  pkt.tcp->options.mss = 1460;
  return pkt;
}

net::Packet craft_syn_ack(const net::FourTuple& tuple, u32 seq, u32 ack) {
  net::Packet pkt =
      net::make_tcp_packet(tuple, net::TcpFlags::syn_ack(), seq, ack);
  pkt.tcp->options.mss = 1460;
  return pkt;
}

net::Packet craft_rst(const net::FourTuple& tuple, u32 seq) {
  return net::make_tcp_packet(tuple, net::TcpFlags::only_rst(), seq, 0);
}

net::Packet craft_rst_ack(const net::FourTuple& tuple, u32 seq, u32 ack) {
  return net::make_tcp_packet(tuple, net::TcpFlags::rst_ack(), seq, ack);
}

net::Packet craft_fin(const net::FourTuple& tuple, u32 seq, u32 ack) {
  return net::make_tcp_packet(tuple, net::TcpFlags::fin_ack(), seq, ack);
}

net::Packet craft_data(const net::FourTuple& tuple, u32 seq, u32 ack,
                       Bytes payload) {
  return net::make_tcp_packet(tuple, net::TcpFlags::psh_ack(), seq, ack,
                              std::move(payload));
}

Bytes junk_payload(std::size_t size, Rng& rng) {
  Bytes out(size);
  for (auto& b : out) {
    b = static_cast<u8>('A' + rng.uniform(26));
  }
  return out;
}

}  // namespace ys::strategy
