#include "runner/runner.h"

#include <atomic>

namespace ys::runner {

RunnerReport run_grid(
    const TrialGrid& grid, const PoolOptions& opt,
    const std::function<void(const GridCoord&, TaskContext&)>& fn) {
  if (!grid.chain_trials) {
    RunnerReport report = run_sharded(
        opt, grid.total(), [&](std::size_t index, TaskContext& ctx) {
          const GridCoord c = grid.coord(index);
          fn(c, ctx);
        });
    return report;
  }

  // Chained grids: one pool task per (cell, vantage, server) chain; the
  // trial axis runs in ascending order inside it. Cancellation is honored
  // between trials, so an early-stop can cut a chain short.
  const std::size_t trials = grid.trials;
  std::atomic<u64> trials_done{0};
  RunnerReport report = run_sharded(
      opt, grid.chains(), [&](std::size_t chain, TaskContext& ctx) {
        GridCoord c;
        c.server = chain % grid.servers;
        const std::size_t rest = chain / grid.servers;
        c.vantage = rest % grid.vantages;
        c.cell = rest / grid.vantages;
        for (c.trial = 0; c.trial < trials; ++c.trial) {
          if (ctx.cancel->cancelled()) break;
          fn(c, ctx);
          trials_done.fetch_add(1, std::memory_order_relaxed);
        }
      });

  // The pool counted chains; re-express the report in trials.
  report.trials = grid.total();
  report.trials_executed = trials_done.load(std::memory_order_relaxed);
  report.trials_per_sec = report.wall_seconds > 0.0
                              ? report.trials_executed / report.wall_seconds
                              : 0.0;
  return report;
}

}  // namespace ys::runner
