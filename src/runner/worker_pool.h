// ys::runner — fixed-size worker pool with a work-stealing shard queue.
//
// The execution substrate for paper-scale trial grids: `count` tasks,
// identified only by their index, are pre-sharded into contiguous blocks,
// dealt round-robin onto per-worker deques, and executed by `jobs` threads.
// A worker serves its own deque from the back; when empty it steals a
// whole shard from the front of a victim's deque (classic owner-LIFO /
// thief-FIFO, so steals grab the coldest blocks).
//
// Determinism contract: the pool guarantees each index in [0, count) is
// executed exactly once, on exactly one worker, but promises nothing about
// order or placement. Callers make results order-independent by deriving
// every random draw from the task index (never from execution order) and
// writing into a pre-sized slot array — see runner.h for the grid layer
// that packages this pattern.
//
// Metrics isolation: every worker thread owns a private
// obs::MetricsRegistry installed as the thread's ScopedMetricsRegistry, so
// per-packet instrumentation in gfw/tcpstack/netsim/intang lands in
// worker-private storage with zero synchronization. After the join, worker
// snapshots are merged (in worker order) into the orchestrating thread's
// current() registry. With jobs == 1 no threads are spawned and no scoping
// happens: tasks run inline on the caller, byte-for-byte the legacy serial
// path.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/types.h"

namespace ys::obs {
class MetricsRegistry;
}

namespace ys::runner {

struct PoolOptions {
  /// Worker threads. 1 runs inline on the caller (exact serial reference);
  /// 0 resolves to the hardware concurrency.
  int jobs = 1;
  /// Tasks per shard; 0 picks a size that gives each worker several shards
  /// to serve and others something worth stealing.
  std::size_t shard_size = 0;
  /// Live progress heartbeat for long sweeps: every `heartbeat_seconds` a
  /// monitor thread prints tasks done, rate, and ETA to stderr. 0 (the
  /// default) disables it. The heartbeat only reads a relaxed progress
  /// counter and writes stderr — results and merged metrics stay
  /// bit-identical, but its output is wall-clock-driven and therefore
  /// excluded from the determinism contract.
  double heartbeat_seconds = 0.0;
  /// Optional extra heartbeat payload (cache hit-rate, per-phase flow
  /// counts, ...). Called from the monitor thread, so it must only read
  /// atomics or otherwise thread-safe state.
  std::function<std::string()> heartbeat_extra;
  /// Structured heartbeat consumer, fired on the same cadence as the
  /// stderr line with (tasks done, tasks total). Shard children use this
  /// to feed the supervisor's pipe protocol. Called from the monitor
  /// thread — same thread-safety rules as heartbeat_extra.
  std::function<void(u64, std::size_t)> heartbeat_sink;
  /// Suppress the human-readable stderr heartbeat line (the sink still
  /// fires). Shard children run quiet so N children don't interleave
  /// progress lines on the parent's terminal.
  bool heartbeat_quiet = false;
  /// Sample the counting-allocator hook (obs/alloc_hook.h) around every
  /// task and publish per-task deltas as `perf.alloc.count` /
  /// `perf.alloc.bytes` counters — the heap-churn trajectory the
  /// zero-copy arena work tracks. Off by default: totals include one-time
  /// per-worker setup allocations and thus vary slightly with --jobs=N,
  /// so determinism digests must exclude perf.alloc.* when this is on.
  bool track_allocs = false;
};

/// Cooperative early-stop: any task may cancel; workers finish the task in
/// flight and drain without starting new ones.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Handed to every task invocation.
struct TaskContext {
  int worker_id = 0;
  /// The worker's private registry (the caller's current() when jobs==1).
  /// Tasks normally never need it — instrumentation reaches it implicitly
  /// through MetricsRegistry::current() — but it is here for direct use.
  obs::MetricsRegistry* metrics = nullptr;
  /// Worker-private stream for scheduling-level draws only (e.g. victim
  /// selection). NEVER use it for anything that feeds a result: trial
  /// randomness must derive from grid coordinates to stay deterministic.
  Rng* rng = nullptr;
  CancelToken* cancel = nullptr;
};

struct WorkerStats {
  u64 tasks_executed = 0;
  u64 task_exceptions = 0;  // tasks that threw (isolated, pool survived)
  u64 shards_served = 0;   // shards taken from the worker's own deque
  u64 shards_stolen = 0;   // shards this worker stole from a victim
  double busy_seconds = 0.0;
};

struct RunnerReport {
  int jobs = 1;
  u64 tasks = 0;           // scheduled
  u64 tasks_executed = 0;  // < tasks only after cancellation
  u64 trials = 0;          // scheduled trials (grid layer; == tasks for raw pools)
  u64 trials_executed = 0;
  u64 steals = 0;          // total successful steal operations
  /// Tasks that threw. The pool catches per task (crash isolation): the
  /// exception is counted and logged, the worker moves on, and the slot the
  /// task owned keeps whatever value the caller pre-filled.
  u64 task_exceptions = 0;
  bool cancelled = false;
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;
  std::vector<WorkerStats> workers;

  /// busy/wall share for one worker, in [0, 1].
  double utilization(std::size_t worker) const;

  /// Human-readable multi-line summary (the "runner report").
  std::string to_string() const;

  /// Export through the obs registry: per-run values as `runner.*` gauges
  /// (overwritten each run) and cumulative `runner.*_total` counters, so
  /// the report rides along in every JSON/table metrics snapshot.
  void publish(obs::MetricsRegistry& registry) const;
};

/// Execute tasks [0, count) across the pool; blocks until every task ran
/// (or cancellation drained the queues). `task` may run on any worker
/// thread, for any index, in any order — see the determinism contract
/// above.
RunnerReport run_sharded(const PoolOptions& opt, std::size_t count,
                         const std::function<void(std::size_t, TaskContext&)>& task);

}  // namespace ys::runner
