// ys::runner — declarative trial grids over the work-stealing pool.
//
// The paper's measurement campaigns are grids: (strategy/option cell) ×
// vantage point × server × trial. TrialGrid names those dimensions, maps
// coordinates to dense slot indices, and run_grid() executes the whole
// grid on the pool with the determinism contract the benches rely on:
//
//   * the per-trial seed is a pure function of the grid coordinates
//     (callers keep using Rng::mix_seed({seed, cell, vantage, server,
//     trial}) exactly as the serial loops did);
//   * results are written into a pre-sized slot array at index(coord), so
//     aggregation walks the slots in deterministic order no matter which
//     worker ran what when;
//   * metrics land in worker-private registries and merge order-
//     independently (counters add, gauges max) after the join.
//
// Together these guarantee `--jobs=N` is bit-identical to `--jobs=1` for
// every grid result and every counter in the merged snapshot.
//
// Sequential dependencies: grids whose trials share mutable state across
// the trial axis — INTANG's StrategySelector / KvStore accumulating
// knowledge across repeated probes of one server (HttpTrialOptions::
// shared_selector and friends) — are NOT independent along that axis and
// MUST set `chain_trials`. The scheduling unit then becomes the chain
// (cell, vantage, server): all its trials run in ascending order on one
// worker, serializing every access to the chain's selector while distinct
// chains still spread across the pool. Sharing one selector across
// *chains* is a data race; give each chain its own (see bench_table4's
// INTANG row for the pattern).
#pragma once

#include <type_traits>
#include <vector>

#include "runner/worker_pool.h"

namespace ys::runner {

struct GridCoord {
  std::size_t cell = 0;     // strategy row, variant, resolver, ...
  std::size_t vantage = 0;
  std::size_t server = 0;
  std::size_t trial = 0;
};

struct TrialGrid {
  std::size_t cells = 1;
  std::size_t vantages = 1;
  std::size_t servers = 1;
  std::size_t trials = 1;
  /// Serialize the trial axis: schedule per (cell, vantage, server) chain,
  /// trials in ascending order on one worker. Required for selector-backed
  /// grids (see the header comment).
  bool chain_trials = false;

  std::size_t total() const { return cells * vantages * servers * trials; }
  std::size_t chains() const { return cells * vantages * servers; }

  /// Dense slot index; trial varies fastest, cell slowest.
  std::size_t index(const GridCoord& c) const {
    return ((c.cell * vantages + c.vantage) * servers + c.server) * trials +
           c.trial;
  }
  GridCoord coord(std::size_t index) const {
    GridCoord c;
    c.trial = index % trials;
    index /= trials;
    c.server = index % servers;
    index /= servers;
    c.vantage = index % vantages;
    c.cell = index / vantages;
    return c;
  }
  /// Chain id of a coordinate (its slot index with the trial axis removed).
  std::size_t chain(const GridCoord& c) const {
    return (c.cell * vantages + c.vantage) * servers + c.server;
  }
};

/// Execute `fn(coord, ctx)` for every coordinate of the grid. With
/// `grid.chain_trials`, the pool schedules chains and fn still sees one
/// coordinate per call, trials in order within the chain.
RunnerReport run_grid(const TrialGrid& grid, const PoolOptions& opt,
                      const std::function<void(const GridCoord&, TaskContext&)>& fn);

/// run_grid + a pre-sized slot array: fn's return value for each
/// coordinate lands at slots[grid.index(coord)]. R must be
/// default-constructible; slots for trials skipped by cancellation keep
/// their default value.
template <typename R>
struct GridOutcome {
  std::vector<R> slots;
  RunnerReport report;
};

template <typename Fn>
auto collect_grid(const TrialGrid& grid, const PoolOptions& opt, Fn&& fn) {
  using R = std::decay_t<
      std::invoke_result_t<Fn&, const GridCoord&, TaskContext&>>;
  static_assert(std::is_default_constructible_v<R>,
                "grid slot types must be default-constructible");
  GridOutcome<R> out;
  out.slots.resize(grid.total());
  out.report = run_grid(grid, opt,
                        [&](const GridCoord& c, TaskContext& ctx) {
                          out.slots[grid.index(c)] = fn(c, ctx);
                        });
  return out;
}

/// collect_grid with an explicit error value: every slot is pre-filled with
/// `error_value`, and only a normal return from fn overwrites it. A trial
/// that throws (the pool isolates the exception), is skipped by
/// cancellation, or — in a chained grid — never ran because an earlier
/// trial of its chain threw, therefore reads as `error_value` instead of a
/// default-constructed (and often success-like) R.
template <typename R, typename Fn>
GridOutcome<R> collect_grid_or(const TrialGrid& grid, const PoolOptions& opt,
                               const R& error_value, Fn&& fn) {
  GridOutcome<R> out;
  out.slots.assign(grid.total(), error_value);
  out.report = run_grid(grid, opt,
                        [&](const GridCoord& c, TaskContext& ctx) {
                          out.slots[grid.index(c)] = fn(c, ctx);
                        });
  return out;
}

}  // namespace ys::runner
