// Flight recorder: deterministic post-hoc tracing of anomalous trials.
//
// Paper-scale grids run untraced (tracing costs strings and allocation on
// every packet). When a cell's aggregate success rate lands outside the
// bench-declared paper-expected band — or a caller flags an individual
// trial — the recorder re-runs the trial WITH tracing and archives the
// causal trace (Chrome trace JSON) plus a pcap of the client's wire, named
// by grid coordinates. Because every trial's seed is a pure function of its
// grid coordinates, the traced re-run reproduces the anomalous execution
// exactly; nothing about the original run needs to be kept.
//
// This layer is deliberately netsim-free: the bench supplies a ReplayFn
// that knows how to rebuild and re-run one coordinate; the recorder only
// decides *what* to replay and names the artifacts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runner/runner.h"

namespace ys::runner {

/// Paper-expected success band for one bench cell, as fractions in [0, 1].
struct AnomalyBand {
  double success_min = 0.0;
  double success_max = 1.0;

  bool contains(double success_rate) const {
    return success_rate >= success_min && success_rate <= success_max;
  }
};

struct FlightRecorderOptions {
  /// Directory for the archived artifacts (created if missing). Empty
  /// disables the recorder entirely.
  std::string dir;
  /// Bench name prefixed to every artifact file.
  std::string bench;
  /// Cap on archived trials per recorder (a runaway band should not fill
  /// the disk with thousands of near-identical traces).
  std::size_t max_archives = 8;
};

/// Re-run coordinate `c` traced, writing artifacts to the given paths.
/// Returns a one-line human summary (the verdict attribution) for the
/// recorder's report.
using ReplayFn = std::function<std::string(
    const GridCoord& c, const std::string& trace_path,
    const std::string& pcap_path)>;

class FlightRecorder {
 public:
  FlightRecorder(FlightRecorderOptions opt, ReplayFn replay);

  bool enabled() const { return !opt_.dir.empty(); }

  /// Check one cell's aggregate against its band; on violation, archive a
  /// representative trial (`example` — typically the cell's first failing
  /// coordinate). Returns true if the cell was anomalous.
  bool check_band(const std::string& cell_label, const AnomalyBand& band,
                  double success_rate, const GridCoord& example);

  /// Unconditionally archive one trial (caller saw something unexpected,
  /// e.g. an impossible failure class).
  void record(const GridCoord& c, const std::string& why);

  struct Archive {
    GridCoord coord;
    std::string why;
    std::string trace_path;
    std::string pcap_path;
    std::string summary;  // the replay's verdict line
  };
  const std::vector<Archive>& archives() const { return archives_; }

  /// Multi-line human report of everything archived (empty string when
  /// nothing was).
  std::string report() const;

 private:
  std::string artifact_stem(const GridCoord& c) const;

  FlightRecorderOptions opt_;
  ReplayFn replay_;
  std::vector<Archive> archives_;
  bool dir_ready_ = false;
};

}  // namespace ys::runner
