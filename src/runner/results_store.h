// Persistent slot store for resumable sweeps (`--resume-dir`).
//
// A grid run writes one plain-text file per bench into the resume
// directory: a header naming the bench, a signature over everything that
// shapes the results (grid dimensions, fault plan, seed), and the slot
// count, followed by one `<slot> <value>` line per completed slot. A rerun
// pointed at the same directory loads the file, skips every chain whose
// slots are all present, and appends the rest — so a killed sweep resumed
// with identical parameters produces byte-identical results to an
// uninterrupted run.
//
// The signature guards against stale files: if the header's signature does
// not match the current run's, the file is ignored (with a warning) and
// the sweep starts fresh. Values are stored as i64; callers encode their
// slot type (e.g. static_cast of an exp::Outcome) — the store does not
// interpret them.
//
// Crash hardening: a store file may end (or be interrupted) mid-line when
// its writer was killed. load() parses records strictly — every record
// must be a complete `<slot> <value>` line with a trailing newline and a
// slot inside the grid — and on the first malformed record drops it *and
// everything after it*, then rewrites the file so only verified records
// remain. The dropped slots simply re-run; a torn tail can never poison a
// resume.
//
// Ownership: a writable store stamps `<file>.lock` with its pid. A second
// process opening the same bench in the same directory sees a live owner
// and the store reports conflict() — callers fail fast instead of letting
// two sweeps silently interleave appends. A lock whose pid is dead is
// stale (the previous owner crashed) and is stolen. Mode::kReadOnly skips
// locking and never writes — the supervisor's merge pass uses it to read
// shard checkpoints while the shards may still own their locks.
//
// Granularity note for chained grids: because a chain's trials share
// selector state, a partially-recorded chain cannot be resumed mid-way —
// chain_complete() only reports true when *every* trial slot of the chain
// is present, and callers re-run the whole chain otherwise.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"

namespace ys::runner {

class ResultsStore {
 public:
  enum class Mode {
    kWrite,     // lock the file, load, append on put()
    kReadOnly,  // load without locking; put() is memory-only
  };

  /// Open (creating the directory if needed) the store for `bench` under
  /// `dir`. `signature` must cover every input that shapes the results.
  /// `total` is the grid's slot count. An existing file with a matching
  /// header is loaded; a mismatched one is ignored and overwritten on the
  /// first put().
  ResultsStore(std::string dir, std::string bench, u64 signature,
               std::size_t total, Mode mode = Mode::kWrite);
  ~ResultsStore();

  ResultsStore(const ResultsStore&) = delete;
  ResultsStore& operator=(const ResultsStore&) = delete;

  /// Build a signature by FNV-1a-mixing the parts (dimension sizes, plan
  /// summary, seed, ...). Order matters; keep call sites stable.
  static u64 signature_of(const std::vector<std::string>& parts);

  bool has(std::size_t slot) const;
  std::optional<i64> get(std::size_t slot) const;

  /// Record a slot and append it to the file (the line is flushed
  /// immediately so a kill loses at most the line being written).
  void put(std::size_t slot, i64 value);

  /// True when every slot in [begin, end) is recorded.
  bool range_complete(std::size_t begin, std::size_t end) const;

  std::size_t recorded() const;
  /// Every recorded (slot, value), sorted by slot — the merge interface
  /// for readers that fold several shard stores into one result vector.
  std::vector<std::pair<std::size_t, i64>> entries() const;

  const std::string& path() const { return path_; }
  std::string lock_path() const { return path_ + ".lock"; }
  /// True when an existing file was loaded (signature matched).
  bool resumed() const { return resumed_; }
  /// True when another live process owns this store's lockfile. The store
  /// is inert (nothing loaded, nothing written); callers must treat this
  /// as a hard configuration error.
  bool conflict() const { return conflict_; }
  /// Pid of the live owner when conflict() is true.
  long conflict_pid() const { return conflict_pid_; }

 private:
  void acquire_lock();
  void load();
  void rewrite_locked();

  std::string path_;
  std::string bench_;
  u64 signature_ = 0;
  std::size_t total_ = 0;
  Mode mode_ = Mode::kWrite;
  bool resumed_ = false;
  bool header_written_ = false;
  bool conflict_ = false;
  bool lock_owned_ = false;
  long conflict_pid_ = 0;
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, i64> slots_;
};

}  // namespace ys::runner
