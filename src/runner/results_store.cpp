#include "runner/results_store.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/log.h"
#include "obs/metrics.h"

namespace ys::runner {

namespace {

constexpr const char* kMagic = "yourstate-results";
constexpr const char* kVersion = "v1";

std::string hex64(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

u64 ResultsStore::signature_of(const std::vector<std::string>& parts) {
  // FNV-1a over each part, with a separator byte so {"ab","c"} and
  // {"a","bc"} hash differently.
  u64 h = 1469598103934665603ULL;
  for (const std::string& p : parts) {
    for (char c : p) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  }
  return h;
}

ResultsStore::ResultsStore(std::string dir, std::string bench, u64 signature,
                           std::size_t total)
    : bench_(std::move(bench)), signature_(signature), total_(total) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    YS_LOG(LogLevel::kWarn, "results store: cannot create " + dir + ": " +
                                ec.message() + " (running without resume)");
  }
  path_ = dir + "/" + bench_ + ".results";
  load();
}

void ResultsStore::load() {
  std::ifstream in(path_);
  if (!in) return;  // no prior run: start fresh
  std::string magic, version, bench, sig_field, total_field;
  std::string header;
  if (!std::getline(in, header)) return;
  std::istringstream hs(header);
  hs >> magic >> version >> bench >> sig_field >> total_field;
  const std::string want_sig = "sig=" + hex64(signature_);
  const std::string want_total = "total=" + std::to_string(total_);
  if (magic != kMagic || version != kVersion || bench != bench_ ||
      sig_field != want_sig || total_field != want_total) {
    YS_LOG(LogLevel::kWarn,
           "results store: " + path_ +
               " header does not match this run (different grid, plan, or "
               "seed) — ignoring it and starting fresh");
    return;
  }
  std::size_t slot = 0;
  i64 value = 0;
  std::size_t loaded = 0;
  while (in >> slot >> value) {
    if (slot >= total_) continue;  // tolerate a torn trailing line
    slots_[slot] = value;
    ++loaded;
  }
  resumed_ = true;
  header_written_ = true;
  obs::MetricsRegistry::current()
      .counter("runner.resume_slots_loaded")
      .inc(loaded);
  YS_LOG(LogLevel::kInfo, "results store: resumed " + std::to_string(loaded) +
                              "/" + std::to_string(total_) + " slots from " +
                              path_);
}

void ResultsStore::rewrite_locked() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    YS_LOG(LogLevel::kWarn, "results store: cannot write " + path_);
    return;
  }
  out << kMagic << ' ' << kVersion << ' ' << bench_ << " sig=" << hex64(signature_)
      << " total=" << total_ << '\n';
  for (const auto& [slot, value] : slots_) {
    out << slot << ' ' << value << '\n';
  }
  out.flush();
  header_written_ = true;
}

bool ResultsStore::has(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(slot) > 0;
}

std::optional<i64> ResultsStore::get(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

void ResultsStore::put(std::size_t slot, i64 value) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[slot] = value;
  if (!header_written_) {
    // First write of a fresh (or invalidated) run: lay down the header and
    // everything recorded so far in one pass.
    rewrite_locked();
    return;
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) return;
  out << slot << ' ' << value << '\n';
  out.flush();
}

bool ResultsStore::range_complete(std::size_t begin, std::size_t end) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = begin; i < end; ++i) {
    if (slots_.count(i) == 0) return false;
  }
  return true;
}

std::size_t ResultsStore::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace ys::runner
