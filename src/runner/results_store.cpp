#include "runner/results_store.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/log.h"
#include "obs/metrics.h"

namespace ys::runner {

namespace {

constexpr const char* kMagic = "yourstate-results";
constexpr const char* kVersion = "v1";

std::string hex64(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

/// Strictly parse one record line (without its newline) as
/// `<slot> <value>`: full consumption, no leading junk, nothing trailing.
bool parse_record(const std::string& line, std::size_t* slot, i64* value) {
  const char* s = line.c_str();
  if (*s < '0' || *s > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long raw_slot = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != ' ') return false;
  const char* v = end + 1;
  if (*v != '-' && (*v < '0' || *v > '9')) return false;
  errno = 0;
  const long long raw_value = std::strtoll(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') return false;
  *slot = static_cast<std::size_t>(raw_slot);
  *value = static_cast<i64>(raw_value);
  return true;
}

/// Read the pid stamped into a lockfile; 0 when unreadable/garbled.
long read_lock_pid(const std::string& lock_path) {
  std::ifstream in(lock_path);
  if (!in) return 0;
  std::string tag;
  long pid = 0;
  in >> tag >> pid;
  if (tag != "pid" || pid <= 0) return 0;
  return pid;
}

}  // namespace

u64 ResultsStore::signature_of(const std::vector<std::string>& parts) {
  // FNV-1a over each part, with a separator byte so {"ab","c"} and
  // {"a","bc"} hash differently.
  u64 h = 1469598103934665603ULL;
  for (const std::string& p : parts) {
    for (char c : p) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  }
  return h;
}

ResultsStore::ResultsStore(std::string dir, std::string bench, u64 signature,
                           std::size_t total, Mode mode)
    : bench_(std::move(bench)), signature_(signature), total_(total),
      mode_(mode) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    YS_LOG(LogLevel::kWarn, "results store: cannot create " + dir + ": " +
                                ec.message() + " (running without resume)");
  }
  path_ = dir + "/" + bench_ + ".results";
  if (mode_ == Mode::kWrite) acquire_lock();
  if (!conflict_) load();
}

ResultsStore::~ResultsStore() {
  if (lock_owned_) ::unlink(lock_path().c_str());
}

void ResultsStore::acquire_lock() {
  const std::string lock = lock_path();
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      char stamp[96];
      const int n = std::snprintf(stamp, sizeof(stamp), "pid %ld sig=%s\n",
                                  static_cast<long>(::getpid()),
                                  hex64(signature_).c_str());
      if (n > 0) {
        const ssize_t written = ::write(fd, stamp, static_cast<size_t>(n));
        (void)written;
      }
      ::close(fd);
      lock_owned_ = true;
      return;
    }
    if (errno != EEXIST) {
      YS_LOG(LogLevel::kWarn, "results store: cannot stamp " + lock + ": " +
                                  std::strerror(errno) +
                                  " (running unlocked)");
      return;
    }
    const long owner = read_lock_pid(lock);
    if (owner > 0 &&
        (::kill(static_cast<pid_t>(owner), 0) == 0 || errno == EPERM)) {
      // A live process owns this bench in this directory — including this
      // very process (two stores on one path interleave appends just as
      // destructively as two processes do). Refuse: the store goes inert
      // and the caller fails fast. Sequential reopens are fine because the
      // owner's destructor unlinks the lock first.
      conflict_ = true;
      conflict_pid_ = owner;
      YS_LOG(LogLevel::kWarn,
             "results store: " + path_ + " is owned by live pid " +
                 std::to_string(owner) +
                 " — refusing to share a resume dir (see " + lock + ")");
      return;
    }
    // Dead owner (or unreadable stamp): the previous run crashed without
    // cleanup. Steal the lock and retry the exclusive create once.
    YS_LOG(LogLevel::kInfo,
           "results store: stealing stale lock " + lock +
               (owner > 0 ? " (pid " + std::to_string(owner) + " is gone)"
                          : " (unreadable stamp)"));
    ::unlink(lock.c_str());
  }
  YS_LOG(LogLevel::kWarn,
         "results store: lock " + lock + " keeps reappearing (running unlocked)");
}

void ResultsStore::load() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no prior run: start fresh
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  in.close();

  std::size_t pos = text.find('\n');
  if (pos == std::string::npos) return;  // header torn mid-write: fresh run
  {
    std::istringstream hs(text.substr(0, pos));
    std::string magic, version, bench, sig_field, total_field;
    hs >> magic >> version >> bench >> sig_field >> total_field;
    const std::string want_sig = "sig=" + hex64(signature_);
    const std::string want_total = "total=" + std::to_string(total_);
    if (magic != kMagic || version != kVersion || bench != bench_ ||
        sig_field != want_sig || total_field != want_total) {
      YS_LOG(LogLevel::kWarn,
             "results store: " + path_ +
                 " header does not match this run (different grid, plan, or "
                 "seed) — ignoring it and starting fresh");
      return;
    }
  }
  ++pos;  // past the header newline

  // Strict record scan. A record is valid only as a complete
  // `<slot> <value>\n` line with slot < total; the first violation —
  // including a final line with no newline, i.e. a write cut short by a
  // kill — drops that record and the whole remaining tail, because
  // anything after a torn write is unverifiable.
  std::size_t loaded = 0;
  std::size_t dropped = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      ++dropped;  // torn trailing record (no newline)
      break;
    }
    const std::string line = text.substr(pos, eol - pos);
    std::size_t slot = 0;
    i64 value = 0;
    if (!parse_record(line, &slot, &value) || slot >= total_) {
      // Count the malformed record plus every line after it.
      ++dropped;
      for (std::size_t p = eol + 1; p < text.size();) {
        ++dropped;
        const std::size_t next = text.find('\n', p);
        if (next == std::string::npos) break;
        p = next + 1;
      }
      break;
    }
    slots_[slot] = value;  // duplicate slots: last write wins
    ++loaded;
    pos = eol + 1;
  }

  resumed_ = true;
  header_written_ = true;
  obs::MetricsRegistry::current()
      .counter("runner.resume_slots_loaded")
      .inc(loaded);
  if (dropped > 0) {
    obs::MetricsRegistry::current()
        .counter("runner.resume_slots_dropped")
        .inc(dropped);
    YS_LOG(LogLevel::kWarn,
           "results store: " + path_ + " has a corrupt tail — dropped " +
               std::to_string(dropped) +
               " unverifiable record(s); those slots will re-run");
    if (mode_ == Mode::kWrite) {
      // Rewrite with only the verified records so future appends cannot
      // land after garbage.
      std::lock_guard<std::mutex> lock(mu_);
      rewrite_locked();
    }
  }
  YS_LOG(LogLevel::kInfo, "results store: resumed " + std::to_string(loaded) +
                              "/" + std::to_string(total_) + " slots from " +
                              path_);
}

void ResultsStore::rewrite_locked() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    YS_LOG(LogLevel::kWarn, "results store: cannot write " + path_);
    return;
  }
  out << kMagic << ' ' << kVersion << ' ' << bench_ << " sig=" << hex64(signature_)
      << " total=" << total_ << '\n';
  for (const auto& [slot, value] : slots_) {
    out << slot << ' ' << value << '\n';
  }
  out.flush();
  header_written_ = true;
}

bool ResultsStore::has(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(slot) > 0;
}

std::optional<i64> ResultsStore::get(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

void ResultsStore::put(std::size_t slot, i64 value) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[slot] = value;
  if (mode_ == Mode::kReadOnly || conflict_) return;  // memory-only
  if (!header_written_) {
    // First write of a fresh (or invalidated) run: lay down the header and
    // everything recorded so far in one pass.
    rewrite_locked();
    return;
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) return;
  out << slot << ' ' << value << '\n';
  out.flush();
}

bool ResultsStore::range_complete(std::size_t begin, std::size_t end) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = begin; i < end; ++i) {
    if (slots_.count(i) == 0) return false;
  }
  return true;
}

std::size_t ResultsStore::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::vector<std::pair<std::size_t, i64>> ResultsStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::size_t, i64>> out(slots_.begin(), slots_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ys::runner
