#include "runner/flight_recorder.h"

#include <filesystem>
#include <system_error>

#include "core/log.h"
#include "obs/metrics.h"

namespace ys::runner {

FlightRecorder::FlightRecorder(FlightRecorderOptions opt, ReplayFn replay)
    : opt_(std::move(opt)), replay_(std::move(replay)) {}

std::string FlightRecorder::artifact_stem(const GridCoord& c) const {
  return opt_.dir + "/" + opt_.bench + "-c" + std::to_string(c.cell) + "-v" +
         std::to_string(c.vantage) + "-s" + std::to_string(c.server) + "-t" +
         std::to_string(c.trial);
}

bool FlightRecorder::check_band(const std::string& cell_label,
                                const AnomalyBand& band, double success_rate,
                                const GridCoord& example) {
  if (band.contains(success_rate)) return false;
  if (enabled()) {
    record(example,
           cell_label + ": success rate " + std::to_string(success_rate) +
               " outside the paper-expected band [" +
               std::to_string(band.success_min) + ", " +
               std::to_string(band.success_max) + "]");
  }
  return true;
}

void FlightRecorder::record(const GridCoord& c, const std::string& why) {
  if (!enabled() || archives_.size() >= opt_.max_archives) return;
  if (!dir_ready_) {
    std::error_code ec;
    std::filesystem::create_directories(opt_.dir, ec);
    if (ec) {
      YS_LOG(LogLevel::kWarn, "flight recorder: cannot create " + opt_.dir +
                                  ": " + ec.message());
      return;
    }
    dir_ready_ = true;
  }

  Archive archive;
  archive.coord = c;
  archive.why = why;
  const std::string stem = artifact_stem(c);
  archive.trace_path = stem + ".trace.json";
  archive.pcap_path = stem + ".pcap";
  archive.summary = replay_(c, archive.trace_path, archive.pcap_path);
  obs::MetricsRegistry::current()
      .counter("runner.flight_recorder.archived")
      .inc();
  archives_.push_back(std::move(archive));
}

std::string FlightRecorder::report() const {
  if (archives_.empty()) return {};
  std::string out = "flight recorder: " + std::to_string(archives_.size()) +
                    " anomalous trial(s) archived to " + opt_.dir + "\n";
  for (const Archive& a : archives_) {
    out += "  " + a.why + "\n";
    out += "    trace: " + a.trace_path + "\n";
    out += "    pcap:  " + a.pcap_path + "\n";
    if (!a.summary.empty()) out += "    " + a.summary + "\n";
  }
  return out;
}

}  // namespace ys::runner
