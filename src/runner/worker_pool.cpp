#include "runner/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "core/log.h"
#include "obs/metrics.h"

namespace ys::runner {

namespace {

using Clock = std::chrono::steady_clock;

/// Crash isolation: one bad trial must not take down the pool (or, under
/// jobs==1, the whole sweep). The exception is swallowed after counting —
/// callers pre-fill slots with an error value (collect_grid_or) so the
/// task's slot still reads as a failure, never as a silent success.
void run_isolated(const std::function<void(std::size_t, TaskContext&)>& task,
                  std::size_t index, TaskContext& ctx, WorkerStats& ws) {
  try {
    task(index, ctx);
  } catch (const std::exception& e) {
    ++ws.task_exceptions;
    obs::MetricsRegistry::current().counter("runner.task_exception").inc();
    YS_LOG(LogLevel::kWarn, "task " + std::to_string(index) +
                                " threw: " + e.what() +
                                " (isolated; pool continues)");
  } catch (...) {
    ++ws.task_exceptions;
    obs::MetricsRegistry::current().counter("runner.task_exception").inc();
    YS_LOG(LogLevel::kWarn, "task " + std::to_string(index) +
                                " threw a non-std exception (isolated; pool "
                                "continues)");
  }
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A contiguous block of task indices.
struct Shard {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
};

/// Per-worker deque of shards. The owner pops from the back (LIFO keeps
/// its working set warm); thieves pop from the front (FIFO grabs the
/// coldest block). One small mutex per deque: contention only occurs when
/// a thief visits, which the shard granularity keeps rare.
struct ShardDeque {
  std::mutex mu;
  std::vector<Shard> shards;

  bool pop_back(Shard* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (shards.empty()) return false;
    *out = shards.back();
    shards.pop_back();
    return true;
  }

  bool pop_front(Shard* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (shards.empty()) return false;
    *out = shards.front();
    shards.erase(shards.begin());
    return true;
  }
};

std::size_t pick_shard_size(const PoolOptions& opt, std::size_t count,
                            int jobs) {
  if (opt.shard_size > 0) return opt.shard_size;
  // Aim for ~8 shards per worker: enough imbalance absorption for grids
  // whose trials vary in cost, small enough that deque traffic stays
  // negligible next to millisecond-scale trials.
  const std::size_t target = static_cast<std::size_t>(jobs) * 8;
  return std::max<std::size_t>(1, count / std::max<std::size_t>(1, target));
}

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

double RunnerReport::utilization(std::size_t worker) const {
  if (worker >= workers.size() || wall_seconds <= 0.0) return 0.0;
  return std::min(1.0, workers[worker].busy_seconds / wall_seconds);
}

std::string RunnerReport::to_string() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "runner: %llu/%llu trials in %.3f s (%.0f trials/s) on %d "
                "worker%s, %llu steals%s\n",
                static_cast<unsigned long long>(trials_executed),
                static_cast<unsigned long long>(trials),
                wall_seconds, trials_per_sec, jobs, jobs == 1 ? "" : "s",
                static_cast<unsigned long long>(steals),
                cancelled ? ", CANCELLED" : "");
  out += line;
  if (task_exceptions > 0) {
    std::snprintf(line, sizeof(line),
                  "  WARNING: %llu task%s threw (isolated; see log)\n",
                  static_cast<unsigned long long>(task_exceptions),
                  task_exceptions == 1 ? "" : "s");
    out += line;
  }
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const WorkerStats& ws = workers[w];
    std::snprintf(line, sizeof(line),
                  "  worker %2zu: %6llu tasks, %4llu shards (%llu stolen), "
                  "busy %.3f s, utilization %4.1f %%\n",
                  w, static_cast<unsigned long long>(ws.tasks_executed),
                  static_cast<unsigned long long>(ws.shards_served +
                                                  ws.shards_stolen),
                  static_cast<unsigned long long>(ws.shards_stolen),
                  ws.busy_seconds, utilization(w) * 100.0);
    out += line;
  }
  return out;
}

void RunnerReport::publish(obs::MetricsRegistry& registry) const {
  registry.gauge("runner.jobs").set(static_cast<double>(jobs));
  registry.gauge("runner.wall_seconds").set(wall_seconds);
  registry.gauge("runner.trials_per_sec").set(trials_per_sec);
  registry.gauge("runner.cancelled").set(cancelled ? 1.0 : 0.0);
  registry.counter("runner.trials_total").inc(trials_executed);
  registry.counter("runner.tasks_total").inc(tasks_executed);
  registry.counter("runner.steals_total").inc(steals);
  registry.counter("runner.task_exceptions_total").inc(task_exceptions);
  registry.counter("runner.runs_total").inc();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const std::string prefix = "runner.worker." + std::to_string(w) + ".";
    registry.gauge(prefix + "utilization").set(utilization(w));
    registry.counter(prefix + "tasks").inc(workers[w].tasks_executed);
    registry.counter(prefix + "steals").inc(workers[w].shards_stolen);
  }
}

RunnerReport run_sharded(
    const PoolOptions& opt, std::size_t count,
    const std::function<void(std::size_t, TaskContext&)>& task) {
  RunnerReport report;
  const int jobs = resolve_jobs(opt.jobs);
  report.jobs = jobs;
  report.tasks = count;
  report.trials = count;
  const auto start = Clock::now();

  CancelToken cancel;

  if (jobs == 1 || count <= 1) {
    // Serial reference path: inline on the caller, no threads, no registry
    // scoping — instrumentation keeps hitting the caller's current()
    // registry exactly like the historical single-threaded loops.
    report.jobs = 1;
    report.workers.resize(1);
    Rng rng(Rng::mix_seed({0x72756e6e6572ULL, 0}));  // "runner"
    TaskContext ctx{0, &obs::MetricsRegistry::current(), &rng, &cancel};
    WorkerStats& ws = report.workers[0];
    for (std::size_t i = 0; i < count && !cancel.cancelled(); ++i) {
      run_isolated(task, i, ctx, ws);
      ++ws.tasks_executed;
    }
    ++ws.shards_served;
    report.wall_seconds = seconds_since(start);
    ws.busy_seconds = report.wall_seconds;
    report.tasks_executed = ws.tasks_executed;
    report.trials_executed = ws.tasks_executed;
    report.task_exceptions = ws.task_exceptions;
    report.cancelled = cancel.cancelled();
    report.trials_per_sec = report.wall_seconds > 0.0
                                ? report.trials_executed / report.wall_seconds
                                : 0.0;
    return report;
  }

  // Pre-shard [0, count) into blocks and deal them round-robin, so every
  // worker starts with an interleaved slice of the grid.
  const std::size_t shard_size = pick_shard_size(opt, count, jobs);
  std::vector<ShardDeque> deques(static_cast<std::size_t>(jobs));
  {
    std::size_t begin = 0;
    std::size_t next_worker = 0;
    while (begin < count) {
      const std::size_t end = std::min(count, begin + shard_size);
      deques[next_worker].shards.push_back(Shard{begin, end});
      begin = end;
      next_worker = (next_worker + 1) % static_cast<std::size_t>(jobs);
    }
    // Owners pop from the back: reverse so each worker serves its blocks
    // in ascending index order (pure aesthetics — determinism never
    // depends on it).
    for (auto& dq : deques) {
      std::reverse(dq.shards.begin(), dq.shards.end());
    }
  }

  report.workers.resize(static_cast<std::size_t>(jobs));
  std::vector<std::unique_ptr<obs::MetricsRegistry>> worker_registries;
  worker_registries.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    worker_registries.push_back(std::make_unique<obs::MetricsRegistry>());
  }

  auto worker_main = [&](int worker_id) {
    // All instrumentation on this thread — including the components'
    // obs::bind_per_thread metric caches, which rebind whenever the
    // thread's current() registry changes — lands in the worker-private
    // registry.
    obs::ScopedMetricsRegistry scope(
        worker_registries[static_cast<std::size_t>(worker_id)].get());
    Rng rng(Rng::mix_seed({0x72756e6e6572ULL, static_cast<u64>(worker_id)}));
    TaskContext ctx{worker_id,
                    worker_registries[static_cast<std::size_t>(worker_id)].get(),
                    &rng, &cancel};
    WorkerStats& ws = report.workers[static_cast<std::size_t>(worker_id)];
    ShardDeque& own = deques[static_cast<std::size_t>(worker_id)];

    const auto worker_start = Clock::now();
    Shard shard;
    for (;;) {
      bool have = own.pop_back(&shard);
      if (have) {
        ++ws.shards_served;
      } else {
        // Steal sweep: visit every other worker once, starting just past
        // ourselves so thieves fan out instead of mobbing worker 0.
        for (int hop = 1; hop < jobs && !have; ++hop) {
          const std::size_t victim = static_cast<std::size_t>(
              (worker_id + hop) % jobs);
          have = deques[victim].pop_front(&shard);
        }
        if (!have) break;  // every deque empty: the grid is drained
        ++ws.shards_stolen;
      }
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        if (cancel.cancelled()) break;
        run_isolated(task, i, ctx, ws);
        ++ws.tasks_executed;
      }
      if (cancel.cancelled()) break;
    }
    ws.busy_seconds = seconds_since(worker_start);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) threads.emplace_back(worker_main, w);
  for (auto& t : threads) t.join();

  report.wall_seconds = seconds_since(start);
  report.cancelled = cancel.cancelled();
  for (const WorkerStats& ws : report.workers) {
    report.tasks_executed += ws.tasks_executed;
    report.steals += ws.shards_stolen;
    report.task_exceptions += ws.task_exceptions;
  }
  report.trials_executed = report.tasks_executed;
  report.trials_per_sec = report.wall_seconds > 0.0
                              ? report.trials_executed / report.wall_seconds
                              : 0.0;

  // Deterministic fold: worker snapshots merge in worker order (the merge
  // itself is order-independent — counters add, gauges max — but a fixed
  // order keeps even pathological cases reproducible).
  obs::MetricsRegistry& target = obs::MetricsRegistry::current();
  for (const auto& reg : worker_registries) {
    target.merge_from(reg->snapshot());
  }
  return report;
}

}  // namespace ys::runner
