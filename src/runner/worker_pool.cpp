#include "runner/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "core/log.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/timeline.h"

namespace ys::runner {

namespace {

using Clock = std::chrono::steady_clock;

/// Crash isolation: one bad trial must not take down the pool (or, under
/// jobs==1, the whole sweep). The exception is swallowed after counting —
/// callers pre-fill slots with an error value (collect_grid_or) so the
/// task's slot still reads as a failure, never as a silent success.
void run_isolated(const std::function<void(std::size_t, TaskContext&)>& task,
                  std::size_t index, TaskContext& ctx, WorkerStats& ws) {
  try {
    task(index, ctx);
  } catch (const std::exception& e) {
    ++ws.task_exceptions;
    obs::MetricsRegistry::current().counter("runner.task_exception").inc();
    YS_LOG(LogLevel::kWarn, "task " + std::to_string(index) +
                                " threw: " + e.what() +
                                " (isolated; pool continues)");
  } catch (...) {
    ++ws.task_exceptions;
    obs::MetricsRegistry::current().counter("runner.task_exception").inc();
    YS_LOG(LogLevel::kWarn, "task " + std::to_string(index) +
                                " threw a non-std exception (isolated; pool "
                                "continues)");
  }
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A contiguous block of task indices.
struct Shard {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
};

/// Per-worker deque of shards. The owner pops from the back (LIFO keeps
/// its working set warm); thieves pop from the front (FIFO grabs the
/// coldest block). One small mutex per deque: contention only occurs when
/// a thief visits, which the shard granularity keeps rare.
struct ShardDeque {
  std::mutex mu;
  std::vector<Shard> shards;

  bool pop_back(Shard* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (shards.empty()) return false;
    *out = shards.back();
    shards.pop_back();
    return true;
  }

  bool pop_front(Shard* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (shards.empty()) return false;
    *out = shards.front();
    shards.erase(shards.begin());
    return true;
  }

  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return shards.size();
  }
};

/// Wall-clock-derived runner progress series. These exist so `yourstate
/// report` can chart trials/s, steals, and queue depth over a run, but
/// they are inherently not jobs-invariant (there are no steals at
/// jobs=1), so determinism digests exclude the "runner." prefix — the
/// `axis=wall` label marks them as off the virtual-time axis.
const obs::TimelineLabels& wall_labels() {
  static const obs::TimelineLabels labels{{"axis", "wall"}};
  return labels;
}

i64 wall_bucket(const obs::Timeline& tl, Clock::time_point start) {
  const i64 us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - start)
                     .count();
  return tl.bucket_of(SimTime::from_us(us));
}

std::size_t pick_shard_size(const PoolOptions& opt, std::size_t count,
                            int jobs) {
  if (opt.shard_size > 0) return opt.shard_size;
  // Aim for ~8 shards per worker: enough imbalance absorption for grids
  // whose trials vary in cost, small enough that deque traffic stays
  // negligible next to millisecond-scale trials.
  const std::size_t target = static_cast<std::size_t>(jobs) * 8;
  return std::max<std::size_t>(1, count / std::max<std::size_t>(1, target));
}

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Live progress line for long sweeps (PoolOptions::heartbeat_seconds).
/// A monitor thread samples a relaxed progress counter on an interval and
/// prints tasks done, rate, and ETA to stderr; `extra` (when set) appends
/// caller state such as cache hit-rates. Reads atomics only — the sweep's
/// results cannot observe it, so determinism is untouched; the stderr
/// stream itself is wall-clock-driven and outside the contract.
class Heartbeat {
 public:
  Heartbeat(const PoolOptions& opt, std::size_t count,
            const std::atomic<u64>* progress)
      : interval_(opt.heartbeat_seconds),
        extra_(opt.heartbeat_extra),
        sink_(opt.heartbeat_sink),
        quiet_(opt.heartbeat_quiet),
        count_(count),
        progress_(progress) {
    if (interval_ > 0.0 && count_ > 0) {
      monitor_ = std::thread([this] { run(); });
    }
  }

  ~Heartbeat() { stop(); }

  /// Join the monitor thread. Idempotent; run_sharded calls this as soon
  /// as the workers have drained, so no heartbeat line can interleave
  /// with anything the caller prints after the pool returns — the
  /// destructor is only the safety net for early exits.
  void stop() {
    if (!monitor_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
    monitor_.join();
    std::fflush(stderr);
  }

 private:
  void run() {
    const auto start = Clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock,
                       std::chrono::duration<double>(interval_),
                       [this] { return done_; })) {
        return;  // pool drained; no trailing line after the join
      }
      const u64 done = progress_->load(std::memory_order_relaxed);
      if (sink_) sink_(done, count_);
      if (quiet_) continue;
      const double elapsed = seconds_since(start);
      const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
      const double eta =
          rate > 0.0 ? (static_cast<double>(count_) - done) / rate : 0.0;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "[perf] %llu/%zu trials (%.1f%%) | %.0f/s | eta %.0fs",
                    static_cast<unsigned long long>(done), count_,
                    100.0 * done / static_cast<double>(count_), rate, eta);
      std::string out = line;
      if (extra_) out += " | " + extra_();
      out += "\n";
      std::fputs(out.c_str(), stderr);
    }
  }

  const double interval_;
  const std::function<std::string()> extra_;
  const std::function<void(u64, std::size_t)> sink_;
  const bool quiet_ = false;
  const std::size_t count_;
  const std::atomic<u64>* progress_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread monitor_;
};

/// Per-worker handles for the allocator-hook sampling
/// (PoolOptions::track_allocs): nullptr when tracking is off.
struct AllocPublish {
  obs::Counter* count = nullptr;
  obs::Counter* bytes = nullptr;
};

AllocPublish resolve_alloc_counters(bool track, obs::MetricsRegistry& reg) {
  AllocPublish p;
  if (track) {
    p.count = &reg.counter("perf.alloc.count");
    p.bytes = &reg.counter("perf.alloc.bytes");
  }
  return p;
}

/// One task: phase-timed, optionally alloc-sampled, crash-isolated. The
/// alloc delta is this thread's own counters around the task, so it is
/// exact per-task churn (workers run tasks sequentially).
void exec_task(const std::function<void(std::size_t, TaskContext&)>& task,
               std::size_t index, TaskContext& ctx, WorkerStats& ws,
               const AllocPublish& alloc) {
  obs::perf::ScopedPhase phase("runner.task");
  if (alloc.count == nullptr) {
    run_isolated(task, index, ctx, ws);
    return;
  }
  const obs::perf::AllocCounters before = obs::perf::thread_alloc_counters();
  run_isolated(task, index, ctx, ws);
  const obs::perf::AllocCounters after = obs::perf::thread_alloc_counters();
  alloc.count->inc(after.count - before.count);
  alloc.bytes->inc(after.bytes - before.bytes);
}

}  // namespace

double RunnerReport::utilization(std::size_t worker) const {
  if (worker >= workers.size() || wall_seconds <= 0.0) return 0.0;
  return std::min(1.0, workers[worker].busy_seconds / wall_seconds);
}

std::string RunnerReport::to_string() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "runner: %llu/%llu trials in %.3f s (%.0f trials/s) on %d "
                "worker%s, %llu steals%s\n",
                static_cast<unsigned long long>(trials_executed),
                static_cast<unsigned long long>(trials),
                wall_seconds, trials_per_sec, jobs, jobs == 1 ? "" : "s",
                static_cast<unsigned long long>(steals),
                cancelled ? ", CANCELLED" : "");
  out += line;
  if (task_exceptions > 0) {
    std::snprintf(line, sizeof(line),
                  "  WARNING: %llu task%s threw (isolated; see log)\n",
                  static_cast<unsigned long long>(task_exceptions),
                  task_exceptions == 1 ? "" : "s");
    out += line;
  }
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const WorkerStats& ws = workers[w];
    std::snprintf(line, sizeof(line),
                  "  worker %2zu: %6llu tasks, %4llu shards (%llu stolen), "
                  "busy %.3f s, utilization %4.1f %%\n",
                  w, static_cast<unsigned long long>(ws.tasks_executed),
                  static_cast<unsigned long long>(ws.shards_served +
                                                  ws.shards_stolen),
                  static_cast<unsigned long long>(ws.shards_stolen),
                  ws.busy_seconds, utilization(w) * 100.0);
    out += line;
  }
  return out;
}

void RunnerReport::publish(obs::MetricsRegistry& registry) const {
  registry.gauge("runner.jobs").set(static_cast<double>(jobs));
  registry.gauge("runner.wall_seconds").set(wall_seconds);
  registry.gauge("runner.trials_per_sec").set(trials_per_sec);
  registry.gauge("runner.cancelled").set(cancelled ? 1.0 : 0.0);
  registry.counter("runner.trials_total").inc(trials_executed);
  registry.counter("runner.tasks_total").inc(tasks_executed);
  registry.counter("runner.steals_total").inc(steals);
  registry.counter("runner.task_exceptions_total").inc(task_exceptions);
  registry.counter("runner.runs_total").inc();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const std::string prefix = "runner.worker." + std::to_string(w) + ".";
    registry.gauge(prefix + "utilization").set(utilization(w));
    registry.counter(prefix + "tasks").inc(workers[w].tasks_executed);
    registry.counter(prefix + "steals").inc(workers[w].shards_stolen);
  }
}

RunnerReport run_sharded(
    const PoolOptions& opt, std::size_t count,
    const std::function<void(std::size_t, TaskContext&)>& task) {
  RunnerReport report;
  const int jobs = resolve_jobs(opt.jobs);
  report.jobs = jobs;
  report.tasks = count;
  report.trials = count;
  const auto start = Clock::now();

  CancelToken cancel;
  std::atomic<u64> progress{0};
  const bool heartbeat_on = opt.heartbeat_seconds > 0.0;
  Heartbeat heartbeat(opt, count, &progress);

  if (jobs == 1 || count <= 1) {
    // Serial reference path: inline on the caller, no threads, no registry
    // scoping — instrumentation keeps hitting the caller's current()
    // registry exactly like the historical single-threaded loops.
    report.jobs = 1;
    report.workers.resize(1);
    Rng rng(Rng::mix_seed({0x72756e6e6572ULL, 0}));  // "runner"
    TaskContext ctx{0, &obs::MetricsRegistry::current(), &rng, &cancel};
    WorkerStats& ws = report.workers[0];
    const AllocPublish alloc = resolve_alloc_counters(
        opt.track_allocs, obs::MetricsRegistry::current());
    obs::Timeline* tl = obs::Timeline::current();
    for (std::size_t i = 0; i < count && !cancel.cancelled(); ++i) {
      exec_task(task, i, ctx, ws, alloc);
      ++ws.tasks_executed;
      if (heartbeat_on) progress.fetch_add(1, std::memory_order_relaxed);
      if (tl != nullptr) {
        tl->count_at("runner.tasks_done", wall_labels(),
                     wall_bucket(*tl, start));
      }
    }
    ++ws.shards_served;
    heartbeat.stop();
    report.wall_seconds = seconds_since(start);
    ws.busy_seconds = report.wall_seconds;
    report.tasks_executed = ws.tasks_executed;
    report.trials_executed = ws.tasks_executed;
    report.task_exceptions = ws.task_exceptions;
    report.cancelled = cancel.cancelled();
    report.trials_per_sec = report.wall_seconds > 0.0
                                ? report.trials_executed / report.wall_seconds
                                : 0.0;
    return report;
  }

  // Pre-shard [0, count) into blocks and deal them round-robin, so every
  // worker starts with an interleaved slice of the grid.
  const std::size_t shard_size = pick_shard_size(opt, count, jobs);
  std::vector<ShardDeque> deques(static_cast<std::size_t>(jobs));
  {
    std::size_t begin = 0;
    std::size_t next_worker = 0;
    while (begin < count) {
      const std::size_t end = std::min(count, begin + shard_size);
      deques[next_worker].shards.push_back(Shard{begin, end});
      begin = end;
      next_worker = (next_worker + 1) % static_cast<std::size_t>(jobs);
    }
    // Owners pop from the back: reverse so each worker serves its blocks
    // in ascending index order (pure aesthetics — determinism never
    // depends on it).
    for (auto& dq : deques) {
      std::reverse(dq.shards.begin(), dq.shards.end());
    }
  }

  report.workers.resize(static_cast<std::size_t>(jobs));
  std::vector<std::unique_ptr<obs::MetricsRegistry>> worker_registries;
  worker_registries.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    worker_registries.push_back(std::make_unique<obs::MetricsRegistry>());
  }

  // When the orchestrating thread is recording a timeline, every worker
  // gets a private one (same bucket width) and the pool folds them back
  // after the join — bucket values are integers, so the fold is exact and
  // `--jobs=N` stays bit-identical on the virtual-time axis.
  obs::Timeline* parent_tl = obs::Timeline::current();
  std::vector<std::unique_ptr<obs::Timeline>> worker_timelines;
  if (parent_tl != nullptr) {
    worker_timelines.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      worker_timelines.push_back(
          std::make_unique<obs::Timeline>(parent_tl->bucket_width()));
    }
  }

  auto worker_main = [&](int worker_id) {
    // All instrumentation on this thread — including the components'
    // obs::bind_per_thread metric caches, which rebind whenever the
    // thread's current() registry changes — lands in the worker-private
    // registry.
    obs::ScopedMetricsRegistry scope(
        worker_registries[static_cast<std::size_t>(worker_id)].get());
    obs::perf::PhaseProfiler::set_thread_label(
        "worker " + std::to_string(worker_id));
    // Resolve the alloc counters up front so the registrations land outside
    // every per-task sampling window.
    const AllocPublish alloc = resolve_alloc_counters(
        opt.track_allocs,
        *worker_registries[static_cast<std::size_t>(worker_id)]);
    Rng rng(Rng::mix_seed({0x72756e6e6572ULL, static_cast<u64>(worker_id)}));
    TaskContext ctx{worker_id,
                    worker_registries[static_cast<std::size_t>(worker_id)].get(),
                    &rng, &cancel};
    WorkerStats& ws = report.workers[static_cast<std::size_t>(worker_id)];
    ShardDeque& own = deques[static_cast<std::size_t>(worker_id)];
    obs::Timeline* tl =
        parent_tl != nullptr
            ? worker_timelines[static_cast<std::size_t>(worker_id)].get()
            : nullptr;
    std::optional<obs::ScopedTimeline> tl_scope;
    if (tl != nullptr) tl_scope.emplace(tl);

    const auto worker_start = Clock::now();
    Shard shard;
    for (;;) {
      bool have = own.pop_back(&shard);
      bool stolen = false;
      if (have) {
        ++ws.shards_served;
      } else {
        // Steal sweep: visit every other worker once, starting just past
        // ourselves so thieves fan out instead of mobbing worker 0.
        for (int hop = 1; hop < jobs && !have; ++hop) {
          const std::size_t victim = static_cast<std::size_t>(
              (worker_id + hop) % jobs);
          have = deques[victim].pop_front(&shard);
        }
        if (!have) break;  // every deque empty: the grid is drained
        ++ws.shards_stolen;
        stolen = true;
      }
      u64 executed = 0;
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        if (cancel.cancelled()) break;
        exec_task(task, i, ctx, ws, alloc);
        ++ws.tasks_executed;
        ++executed;
        if (heartbeat_on) progress.fetch_add(1, std::memory_order_relaxed);
      }
      if (tl != nullptr) {
        const i64 bucket = wall_bucket(*tl, start);
        tl->count_at("runner.tasks_done", wall_labels(), bucket,
                     static_cast<i64>(executed));
        if (stolen) tl->count_at("runner.steals", wall_labels(), bucket);
        tl->sample_at("runner.queue_depth", wall_labels(), bucket,
                      static_cast<i64>(own.size()));
      }
      if (cancel.cancelled()) break;
    }
    ws.busy_seconds = seconds_since(worker_start);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) threads.emplace_back(worker_main, w);
  for (auto& t : threads) t.join();
  heartbeat.stop();

  report.wall_seconds = seconds_since(start);
  report.cancelled = cancel.cancelled();
  for (const WorkerStats& ws : report.workers) {
    report.tasks_executed += ws.tasks_executed;
    report.steals += ws.shards_stolen;
    report.task_exceptions += ws.task_exceptions;
  }
  report.trials_executed = report.tasks_executed;
  report.trials_per_sec = report.wall_seconds > 0.0
                              ? report.trials_executed / report.wall_seconds
                              : 0.0;

  // Deterministic fold: worker snapshots merge in worker order (the merge
  // itself is order-independent — counters add, gauges max — but a fixed
  // order keeps even pathological cases reproducible).
  obs::MetricsRegistry& target = obs::MetricsRegistry::current();
  for (const auto& reg : worker_registries) {
    target.merge_from(reg->snapshot());
  }
  if (parent_tl != nullptr) {
    for (const auto& wt : worker_timelines) {
      parent_tl->merge_from(*wt);
    }
  }
  return report;
}

}  // namespace ys::runner
