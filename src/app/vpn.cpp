#include "app/vpn.h"

namespace ys::app {
namespace {

Bytes make_control_packet(u8 opcode_keyid) {
  // 2-byte length prefix, opcode/key-id byte, 8-byte session id, zero
  // packet-id array length, 4-byte packet id.
  Bytes body;
  body.push_back(opcode_keyid);
  body.insert(body.end(), 8, 0x5C);  // session id
  body.push_back(0x00);              // acked packet-id array length
  body.insert(body.end(), {0x00, 0x00, 0x00, 0x00});
  Bytes out;
  out.reserve(body.size() + 2);
  out.push_back(static_cast<u8>(body.size() >> 8));
  out.push_back(static_cast<u8>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

Bytes build_openvpn_client_reset() { return make_control_packet(0x38); }

Bytes build_openvpn_server_reset() { return make_control_packet(0x40); }

bool is_openvpn_client_reset(ByteView payload) {
  if (payload.size() < 3) return false;
  const std::size_t framed_len =
      (static_cast<std::size_t>(payload[0]) << 8) | payload[1];
  return framed_len >= 14 && payload[2] == 0x38;
}

}  // namespace ys::app
