#include "app/http.h"

#include <algorithm>
#include <charconv>

namespace ys::app {
namespace {

std::string_view as_view(ByteView b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

std::size_t header_end(std::string_view s) {
  const auto pos = s.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string_view::npos : pos + 4;
}

std::optional<std::size_t> content_length(std::string_view headers) {
  // Case-insensitive scan for the Content-Length header.
  static constexpr std::string_view kName = "content-length:";
  for (std::size_t pos = 0; pos < headers.size();) {
    auto eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view line = headers.substr(pos, eol - pos);
    if (line.size() > kName.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kName.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) != kName[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view v = line.substr(kName.size());
        while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
        std::size_t value = 0;
        auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), value);
        if (ec == std::errc()) return value;
      }
    }
    pos = eol + 2;
  }
  return std::nullopt;
}

}  // namespace

Bytes build_http_get(std::string_view host, std::string_view path) {
  std::string req = "GET ";
  req += path;
  req += " HTTP/1.1\r\nHost: ";
  req += host;
  req += "\r\nUser-Agent: yourstate-probe/1.0\r\nAccept: */*\r\n\r\n";
  return to_bytes(req);
}

bool http_request_complete(ByteView stream) {
  return header_end(as_view(stream)) != std::string_view::npos;
}

std::optional<std::string> http_request_path(ByteView stream) {
  std::string_view s = as_view(stream);
  if (header_end(s) == std::string_view::npos) return std::nullopt;
  const auto sp1 = s.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const auto sp2 = s.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  return std::string(s.substr(sp1 + 1, sp2 - sp1 - 1));
}

Bytes build_http_response(std::string_view body) {
  std::string resp = "HTTP/1.1 200 OK\r\nServer: yoursim/1.0\r\nContent-Type: "
                     "text/html\r\nContent-Length: ";
  resp += std::to_string(body.size());
  resp += "\r\nConnection: keep-alive\r\n\r\n";
  resp += body;
  return to_bytes(resp);
}

Bytes build_http_redirect(std::string_view location) {
  std::string resp = "HTTP/1.1 301 Moved Permanently\r\nLocation: ";
  resp += location;
  resp += "\r\nContent-Length: 0\r\n\r\n";
  return to_bytes(resp);
}

bool http_response_complete(ByteView stream) {
  std::string_view s = as_view(stream);
  const std::size_t he = header_end(s);
  if (he == std::string_view::npos) return false;
  const auto len = content_length(s.substr(0, he));
  if (!len) return true;  // no body expected
  return s.size() >= he + *len;
}

std::optional<int> http_response_status(ByteView stream) {
  std::string_view s = as_view(stream);
  if (!s.starts_with("HTTP/1.1 ") && !s.starts_with("HTTP/1.0 ")) {
    return std::nullopt;
  }
  int code = 0;
  auto [ptr, ec] = std::from_chars(s.data() + 9, s.data() + s.size(), code);
  if (ec != std::errc()) return std::nullopt;
  return code;
}

}  // namespace ys::app
