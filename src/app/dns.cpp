#include "app/dns.h"

#include <cctype>

#include "core/byte_io.h"

namespace ys::app {
namespace {

Status write_name(BufWriter& w, const std::string& name) {
  std::size_t start = 0;
  while (start < name.size()) {
    auto dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = dot - start;
    if (len == 0 || len > 63) return Error::make("bad DNS label length");
    w.u8_(static_cast<u8>(len));
    w.str(std::string_view(name).substr(start, len));
    start = dot + 1;
  }
  w.u8_(0);
  return Status::ok_status();
}

Result<std::string> read_name(BufReader& r) {
  std::string name;
  for (int guard = 0; guard < 128; ++guard) {
    auto len = r.u8_();
    if (!len.ok()) return len.error();
    if (len.value() == 0) break;
    if ((len.value() & 0xC0) != 0) {
      // Compression pointers are never emitted by this codec; reject.
      return Error::make("DNS compression not supported");
    }
    auto label = r.bytes(len.value());
    if (!label.ok()) return label.error();
    if (!name.empty()) name += '.';
    for (u8 c : label.value()) {
      name += static_cast<char>(std::tolower(c));
    }
  }
  return name;
}

}  // namespace

Bytes dns_encode(const DnsMessage& msg) {
  Bytes out;
  BufWriter w(out);
  w.u16_(msg.id);
  u16 flags = 0;
  if (msg.is_response) flags |= 0x8000;
  if (msg.recursion_desired) flags |= 0x0100;
  if (msg.is_response) flags |= 0x0080;  // RA
  flags |= msg.rcode & 0x0F;
  w.u16_(flags);
  w.u16_(static_cast<u16>(msg.questions.size()));
  w.u16_(static_cast<u16>(msg.answers.size()));
  w.u16_(0);  // NS
  w.u16_(0);  // AR
  for (const auto& q : msg.questions) {
    (void)write_name(w, q.qname);
    w.u16_(q.qtype);
    w.u16_(q.qclass);
  }
  for (const auto& a : msg.answers) {
    (void)write_name(w, a.name);
    w.u16_(a.type);
    w.u16_(1);  // IN
    w.u32_(a.ttl);
    w.u16_(4);  // RDLENGTH for A
    w.u32_(a.address);
  }
  return out;
}

Result<DnsMessage> dns_parse(ByteView data) {
  BufReader r(data);
  DnsMessage msg;
  auto id = r.u16_();
  auto flags = r.u16_();
  auto qd = r.u16_();
  auto an = r.u16_();
  auto ns = r.u16_();
  auto ar = r.u16_();
  if (!id.ok() || !flags.ok() || !qd.ok() || !an.ok() || !ns.ok() ||
      !ar.ok()) {
    return Error::make("truncated DNS header");
  }
  msg.id = id.value();
  msg.is_response = (flags.value() & 0x8000) != 0;
  msg.recursion_desired = (flags.value() & 0x0100) != 0;
  msg.rcode = static_cast<u8>(flags.value() & 0x0F);

  for (u16 i = 0; i < qd.value(); ++i) {
    auto name = read_name(r);
    if (!name.ok()) return name.error();
    auto qtype = r.u16_();
    auto qclass = r.u16_();
    if (!qtype.ok() || !qclass.ok()) return Error::make("truncated question");
    msg.questions.push_back(
        DnsQuestion{std::move(name).take(), qtype.value(), qclass.value()});
  }
  for (u16 i = 0; i < an.value(); ++i) {
    auto name = read_name(r);
    if (!name.ok()) return name.error();
    auto type = r.u16_();
    auto klass = r.u16_();
    auto ttl = r.u32_();
    auto rdlen = r.u16_();
    if (!type.ok() || !klass.ok() || !ttl.ok() || !rdlen.ok()) {
      return Error::make("truncated answer");
    }
    DnsAnswer ans;
    ans.name = std::move(name).take();
    ans.type = type.value();
    ans.ttl = ttl.value();
    if (type.value() == static_cast<u16>(DnsType::kA) && rdlen.value() == 4) {
      auto addr = r.u32_();
      if (!addr.ok()) return addr.error();
      ans.address = addr.value();
    } else {
      auto st = r.skip(rdlen.value());
      if (!st.ok()) return Error::make("truncated rdata");
    }
    msg.answers.push_back(ans);
  }
  return msg;
}

DnsMessage make_query(u16 id, std::string qname) {
  DnsMessage msg;
  msg.id = id;
  msg.questions.push_back(DnsQuestion{std::move(qname)});
  return msg;
}

DnsMessage make_response(const DnsMessage& query, net::IpAddr address) {
  DnsMessage msg;
  msg.id = query.id;
  msg.is_response = true;
  msg.questions = query.questions;
  if (!query.questions.empty()) {
    msg.answers.push_back(DnsAnswer{query.questions.front().qname,
                                    static_cast<u16>(DnsType::kA), 300,
                                    address});
  }
  return msg;
}

Bytes dns_tcp_frame(const DnsMessage& msg) {
  Bytes body = dns_encode(msg);
  Bytes out;
  out.reserve(body.size() + 2);
  BufWriter w(out);
  w.u16_(static_cast<u16>(body.size()));
  w.bytes(body);
  return out;
}

std::vector<DnsMessage> dns_tcp_extract(ByteView stream,
                                        std::size_t* offset) {
  std::vector<DnsMessage> out;
  while (*offset + 2 <= stream.size()) {
    const std::size_t len = (static_cast<std::size_t>(stream[*offset]) << 8) |
                            stream[*offset + 1];
    if (*offset + 2 + len > stream.size()) break;
    auto msg = dns_parse(stream.subspan(*offset + 2, len));
    *offset += 2 + len;
    if (msg.ok()) out.push_back(std::move(msg).take());
  }
  return out;
}

}  // namespace ys::app
