#include "app/tor.h"

#include <algorithm>
#include <array>

namespace ys::app {
namespace {

// TLS record header: handshake(22), TLS 1.0, length; then ClientHello(1).
// The cipher list below reproduces the historical Tor fingerprint the GFW
// matched on (a distinctive ECDHE-heavy ordering).
constexpr std::array<u8, 8> kTorCipherFingerprint = {
    0xc0, 0x0a, 0xc0, 0x14, 0x00, 0x39, 0x00, 0x38};

Bytes make_hello(u8 handshake_type) {
  Bytes out = {0x16, 0x03, 0x01, 0x00, 0x2a, handshake_type};
  // client_version + random (truncated model).
  out.insert(out.end(), {0x03, 0x03});
  out.insert(out.end(), 16, 0xA5);
  // cipher suites: length + fingerprint.
  out.push_back(0x00);
  out.push_back(static_cast<u8>(kTorCipherFingerprint.size()));
  out.insert(out.end(), kTorCipherFingerprint.begin(),
             kTorCipherFingerprint.end());
  return out;
}

bool contains_fingerprint(ByteView payload) {
  return std::search(payload.begin(), payload.end(),
                     kTorCipherFingerprint.begin(),
                     kTorCipherFingerprint.end()) != payload.end();
}

}  // namespace

Bytes build_tor_client_hello() { return make_hello(0x01); }

Bytes build_tor_server_hello() { return make_hello(0x02); }

bool is_tor_client_hello(ByteView payload) {
  return payload.size() >= 6 && payload[0] == 0x16 && payload[5] == 0x01 &&
         contains_fingerprint(payload);
}

Bytes build_probe_hello() { return build_tor_client_hello(); }

bool is_tor_bridge_response(ByteView payload) {
  return payload.size() >= 6 && payload[0] == 0x16 && payload[5] == 0x02 &&
         contains_fingerprint(payload);
}

bool is_tor_bridge_response_lenient(ByteView payload) {
  if (payload.size() < 6 || payload[0] != 0x16 || payload[5] != 0x02) {
    return false;
  }
  if (contains_fingerprint(payload)) return true;
  // Hamming-distance-1 scan over every alignment of the fingerprint.
  const std::size_t n = kTorCipherFingerprint.size();
  if (payload.size() < n) return false;
  for (std::size_t off = 0; off + n <= payload.size(); ++off) {
    int mismatches = 0;
    for (std::size_t i = 0; i < n && mismatches <= 1; ++i) {
      if (payload[off + i] != kTorCipherFingerprint[i]) ++mismatches;
    }
    if (mismatches <= 1) return true;
  }
  return false;
}

}  // namespace ys::app
