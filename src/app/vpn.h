// OpenVPN-over-TCP handshake model (§7.3).
//
// The GFW was observed (Nov 2016) resetting OpenVPN TCP sessions during the
// handshake via DPI. OpenVPN-over-TCP frames are length-prefixed; the first
// client packet is P_CONTROL_HARD_RESET_CLIENT_V2 (opcode 7, key id 0 →
// first byte 0x38), which is the fingerprint DPI keys on.
#pragma once

#include "core/types.h"

namespace ys::app {

/// Client's first OpenVPN-over-TCP flight (hard-reset control packet).
Bytes build_openvpn_client_reset();

/// Server's P_CONTROL_HARD_RESET_SERVER_V2 reply (opcode 8 → 0x40).
Bytes build_openvpn_server_reset();

/// DPI predicate for the client handshake fingerprint.
bool is_openvpn_client_reset(ByteView payload);

}  // namespace ys::app
