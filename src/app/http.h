// Minimal HTTP/1.1 request/response handling — the workload of Table 1/4.
//
// The paper's probes are plain HTTP GETs whose request line carries a
// sensitive keyword (`ultrasurf`); servers answer 200 OK. Only the small
// subset the experiments exercise is implemented, but framing is honest:
// header/body split, Content-Length, and request completeness detection.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/types.h"

namespace ys::app {

/// Build "GET <path> HTTP/1.1" with a Host header. The censored probes pass
/// a path like "/search?q=ultrasurf".
Bytes build_http_get(std::string_view host, std::string_view path);

/// True once `stream` holds at least one complete request (terminating
/// CRLFCRLF). GET requests carry no body.
bool http_request_complete(ByteView stream);

/// Extract the request target (path) of the first request, if complete.
std::optional<std::string> http_request_path(ByteView stream);

/// Build a "200 OK" response with the given body and Content-Length.
Bytes build_http_response(std::string_view body);

/// Build a "301 Moved Permanently" whose Location echoes `location` — the
/// HTTPS-redirect case of §3.3 where the keyword is copied into the
/// response and caught by response-censoring GFW devices.
Bytes build_http_redirect(std::string_view location);

/// True once `stream` holds a complete response (headers plus
/// Content-Length body bytes).
bool http_response_complete(ByteView stream);

/// Status code of the (complete) response at the head of the stream.
std::optional<int> http_response_status(ByteView stream);

}  // namespace ys::app
