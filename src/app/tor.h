// Tor bridge traffic model (§7.3).
//
// The GFW identifies Tor by the distinctive TLS ClientHello its clients
// send (cipher-suite fingerprint) and then *actively probes* the suspected
// bridge; on confirmation it blocks the bridge IP wholesale. We model the
// handshake at fingerprint fidelity: a ClientHello-shaped record whose
// cipher list matches the classic Tor selection, plus the bridge's reply.
#pragma once

#include <string_view>

#include "core/types.h"

namespace ys::app {

/// First flight a Tor client sends to a bridge (TLS ClientHello carrying
/// the Tor cipher-suite fingerprint).
Bytes build_tor_client_hello();

/// Bridge's ServerHello-shaped reply.
Bytes build_tor_server_hello();

/// The DPI predicate the GFW applies to a client's first payload.
bool is_tor_client_hello(ByteView payload);

/// Probe payload the GFW's active prober sends, and the bridge's
/// distinguishing reply predicate.
Bytes build_probe_hello();
bool is_tor_bridge_response(ByteView payload);

/// As is_tor_bridge_response(), but tolerates one corrupted byte in the
/// cipher fingerprint — a real TLS client survives single-byte damage at
/// this position (the record is re-validated at higher layers), so the
/// Tor workload under corruption fault plans uses this variant to keep
/// degradation attributable to the path, not to an over-strict matcher.
bool is_tor_bridge_response_lenient(ByteView payload);

}  // namespace ys::app
