// DNS wire codec (RFC 1035 subset) for UDP and length-prefixed TCP.
//
// Used three ways in the reproduction:
//  * the GFW's UDP DNS poisoner parses queries and forges responses (§2.1);
//  * the GFW's TCP stream inspector extracts QNAMEs from DNS-over-TCP to
//    apply the same reset censorship as HTTP (§7.2);
//  * INTANG's DNS forwarder converts UDP queries to TCP and back (§6).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/types.h"
#include "netsim/addr.h"

namespace ys::app {

enum class DnsType : u16 {
  kA = 1,
};

struct DnsQuestion {
  std::string qname;  // dotted, lowercase
  u16 qtype = static_cast<u16>(DnsType::kA);
  u16 qclass = 1;  // IN
};

struct DnsAnswer {
  std::string name;
  u16 type = static_cast<u16>(DnsType::kA);
  u32 ttl = 300;
  net::IpAddr address = 0;  // A record payload
};

struct DnsMessage {
  u16 id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  u8 rcode = 0;
  std::vector<DnsQuestion> questions;
  std::vector<DnsAnswer> answers;
};

/// Encode to a raw DNS message (UDP payload).
Bytes dns_encode(const DnsMessage& msg);

/// Parse a raw DNS message.
Result<DnsMessage> dns_parse(ByteView data);

/// Build a standard A query.
DnsMessage make_query(u16 id, std::string qname);

/// Build a response answering `query` with `address`.
DnsMessage make_response(const DnsMessage& query, net::IpAddr address);

// --------------------------------------------------------- TCP transport

/// RFC 1035 §4.2.2 framing: two-byte length prefix then the message.
Bytes dns_tcp_frame(const DnsMessage& msg);

/// Incrementally extract complete framed messages from a TCP stream,
/// starting at *offset (advanced past consumed bytes). Malformed frames
/// stop extraction.
std::vector<DnsMessage> dns_tcp_extract(ByteView stream, std::size_t* offset);

}  // namespace ys::app
