// The simulated network path: client — middleboxes — GFW tap — middleboxes
// — server (Figure 1 of the paper).
//
// Hop positions are explicit so TTL-limited insertion packets behave like
// the real thing: a packet with TTL k crosses exactly k links, so it is seen
// by every element at position <= k and never by anything beyond. The GFW is
// an on-path *tap*: its element always forwards the original packet
// unchanged and can only inject new packets at its own position.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/log.h"
#include "core/rng.h"
#include "netsim/event_loop.h"
#include "netsim/packet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ys::net {

enum class Dir {
  kC2S,  // client to server
  kS2C,  // server to client
};

constexpr Dir opposite(Dir d) { return d == Dir::kC2S ? Dir::kS2C : Dir::kC2S; }
inline const char* dir_name(Dir d) { return d == Dir::kC2S ? "c2s" : "s2c"; }

/// Typed trace summary of a packet (obs cannot depend on netsim, so the
/// conversion lives here).
obs::PacketRef to_trace_ref(const Packet& pkt, Dir dir);

/// Interface handed to a PathElement while it processes one packet.
class Forwarder {
 public:
  virtual ~Forwarder() = default;

  /// Continue the packet along its current direction from this element.
  /// May be called zero times (drop) or once; middleboxes that reassemble
  /// fragments may forward a different packet than they received.
  virtual void forward(Packet pkt) = 0;

  /// Emit a brand-new packet from this element's position traveling `dir`
  /// after `delay` (models device reaction time). Injection is the only
  /// write primitive an on-path device has.
  virtual void inject(Packet pkt, Dir dir, SimTime delay) = 0;

  /// inject(), attributing the new packet to the packet that triggered it
  /// (by trace id) so the trace links e.g. an injected RST back to the
  /// sensitive request. The default forwards to inject() — harness/test
  /// Forwarders that don't trace need not override.
  virtual void inject_caused_by(Packet pkt, Dir dir, SimTime delay,
                                u64 cause_packet_id) {
    (void)cause_packet_id;
    inject(std::move(pkt), dir, delay);
  }

  /// Record an intentional drop (in-path devices only).
  virtual void drop(const Packet& pkt, std::string_view reason) = 0;

  /// The trace recorder for this path visit, nullptr when tracing is off.
  /// Elements use it to record state-machine transitions and ignores.
  virtual obs::TraceRecorder* trace() const { return nullptr; }

  virtual SimTime now() const = 0;
  virtual Rng& rng() = 0;
};

/// An in-path or on-path device attached at a hop position.
class PathElement {
 public:
  virtual ~PathElement() = default;
  virtual std::string name() const = 0;
  virtual void process(Packet pkt, Dir dir, Forwarder& fwd) = 0;
};

/// Deterministic fault-injection hook consulted by the path (ys::faults
/// implements it; netsim only defines the contract so the dependency points
/// faults -> netsim). The hook owns its own seeded RNG: with no hook
/// installed the path makes exactly the same draws as before the fault
/// layer existed, which is what keeps fault-free runs bit-identical.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// What the fault layer did to one packet crossing one path segment.
  /// `reason` must point at storage that outlives the call (string
  /// literals); it is only read when an action fired.
  struct LinkAction {
    bool drop = false;         ///< packet dies on this segment
    bool duplicate = false;    ///< a second copy is delivered
    bool corrupt = false;      ///< payload mutated, checksum left stale
    i64 extra_delay_us = 0;    ///< added to the segment latency
    bool bypass_fifo = false;  ///< skip the FIFO clamp (true reordering)
    const char* reason = nullptr;

    bool any() const {
      return drop || duplicate || corrupt || extra_delay_us != 0 ||
             bypass_fifo;
    }
  };

  /// Consulted once per surviving segment crossing (after TTL and base
  /// loss), for the segment `from_pos` -> `to_pos` in direction `dir`.
  virtual LinkAction on_segment(const Packet& pkt, Dir dir, int from_pos,
                                int to_pos, SimTime now) = 0;

  /// What the fault layer did to one on-path injection attempt.
  struct InjectAction {
    bool suppress = false;   ///< the injector is "down": packet never sent
    i64 extra_delay_us = 0;  ///< injector latency flap
    const char* reason = nullptr;
  };

  /// Consulted when element `actor` injects a packet (GFW outage and
  /// latency flaps key on the actor name).
  virtual InjectAction on_inject(const std::string& actor, SimTime now) = 0;
};

/// Per-path link characteristics.
struct PathConfig {
  /// Server sits this many links from the client (positions 1..hops-1 hold
  /// intermediate devices).
  int server_hops = 14;
  i64 per_hop_latency_us = 800;
  i64 jitter_us = 300;
  /// Loss probability per link crossing.
  double per_link_loss = 0.0;
};

/// Linear bidirectional path with TTL, latency, jitter, and loss semantics.
class Path {
 public:
  using PacketSink = std::function<void(Packet)>;
  /// Client-side capture tap: sees every packet the client sends or
  /// receives, with the virtual timestamp (pcap-style observation point).
  using CaptureFn = std::function<void(const Packet&, SimTime)>;

  Path(EventLoop& loop, Rng rng, PathConfig cfg,
       obs::TraceRecorder* trace = nullptr);

  /// Attach an element at `position` (0 < position < server_hops). Elements
  /// sharing a position process packets in attachment order (C2S) and the
  /// reverse order (S2C), like devices stacked at one router.
  void attach(int position, PathElement* element);

  void set_client_sink(PacketSink sink) { client_sink_ = std::move(sink); }
  void set_server_sink(PacketSink sink) { server_sink_ = std::move(sink); }
  void set_client_capture(CaptureFn fn) { client_capture_ = std::move(fn); }

  /// Install (or clear, with nullptr) the fault-injection hook. The hook
  /// must outlive the path. No hook = the exact pre-fault-layer behavior.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

  /// Endpoint send APIs. The packet is finalized (lengths/checksums
  /// autofilled) unless fields were pre-set.
  void send_from_client(Packet pkt);
  void send_from_server(Packet pkt);

  const PathConfig& config() const { return cfg_; }
  EventLoop& loop() { return loop_; }
  obs::TraceRecorder* trace() { return trace_; }

  /// Live hop-count estimate from client to server, as a tcptraceroute-like
  /// probe would measure it right now (reflects route changes).
  int current_server_hops() const { return cfg_.server_hops + hop_shift_; }

  /// Simulate a route change of `delta` hops (positive = path grew). The
  /// GFW and middlebox positions shift with the route tail; TTL estimates
  /// made earlier become stale, exactly the paper's "network dynamics"
  /// failure cause.
  void shift_route(int delta) { hop_shift_ += delta; }

  /// Statistics for tests.
  std::size_t packets_delivered_to_server() const { return to_server_count_; }
  std::size_t packets_delivered_to_client() const { return to_client_count_; }

 private:
  struct Attachment {
    int position;
    PathElement* element;
    /// Per-actor event count ("netsim.actor_events.<name>"), resolved once
    /// at attach time so per-packet delivery costs one pointer bump.
    obs::Counter* events = nullptr;
  };

  struct PathMetrics {
    obs::Counter& delivered_client;
    obs::Counter& delivered_server;
    obs::Counter& dropped_loss;
    obs::Counter& ttl_expired;
    obs::Counter& injected;
    obs::Counter& element_drops;
    obs::Counter& reorder_clamped;
    obs::Counter& fault_drops;
    obs::Counter& fault_duplicates;
    obs::Counter& fault_corruptions;
    obs::Counter& fault_inject_suppressed;
  };
  static PathMetrics& metrics();

  class ForwarderImpl;

  int endpoint_position(Dir dir) const {
    return dir == Dir::kC2S ? cfg_.server_hops + hop_shift_ : 0;
  }

  /// Move `pkt` from `from_pos` (exclusive) to the next element or endpoint
  /// in `dir`, applying TTL, loss, and latency. `after_index` is the index
  /// in elements_ the packet last visited (-1 when leaving an endpoint).
  void transit(Packet pkt, Dir dir, int from_pos, int after_index);

  void deliver_to_element(Packet pkt, Dir dir, int index);
  void deliver_to_endpoint(Packet pkt, Dir dir);

  /// Record a packet-lifecycle event; no-op (and builds no strings) when
  /// tracing is off. Returns the event id (0 untraced).
  u64 trace_packet(obs::TraceKind kind, const std::string& actor,
                   const Packet& pkt, Dir dir, u64 caused_by = 0,
                   const char* extra = nullptr);

  EventLoop& loop_;
  Rng rng_;
  PathConfig cfg_;
  obs::TraceRecorder* trace_;
  FaultHook* fault_hook_ = nullptr;
  std::vector<Attachment> elements_;  // sorted by position (stable)
  PacketSink client_sink_;
  PacketSink server_sink_;
  CaptureFn client_capture_;
  int hop_shift_ = 0;
  u64 next_trace_id_ = 1;
  /// FIFO floor per (next stop, direction): jitter may stretch latency but
  /// packets on one path segment never overtake each other, like real
  /// router queues.
  std::unordered_map<u64, SimTime> fifo_floor_;
  std::size_t to_server_count_ = 0;
  std::size_t to_client_count_ = 0;
};

}  // namespace ys::net
