#include "netsim/pcap.h"

#include "netsim/wire.h"

namespace ys::net {
namespace {

// Little-endian scalar writers (pcap headers are host-order by magic; we
// always emit little-endian with the standard magic).
void put_u16(std::FILE* f, u16 v) {
  const u8 b[2] = {static_cast<u8>(v), static_cast<u8>(v >> 8)};
  std::fwrite(b, 1, 2, f);
}
void put_u32(std::FILE* f, u32 v) {
  const u8 b[4] = {static_cast<u8>(v), static_cast<u8>(v >> 8),
                   static_cast<u8>(v >> 16), static_cast<u8>(v >> 24)};
  std::fwrite(b, 1, 4, f);
}

constexpr u32 kMagicMicroseconds = 0xA1B2C3D4;
constexpr u32 kLinktypeRaw = 101;  // LINKTYPE_RAW: starts at the IP header

}  // namespace

Status PcapWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Error::make("cannot open pcap file: " + path);
  }
  put_u32(file_, kMagicMicroseconds);
  put_u16(file_, 2);   // version major
  put_u16(file_, 4);   // version minor
  put_u32(file_, 0);   // thiszone
  put_u32(file_, 0);   // sigfigs
  put_u32(file_, 65535);  // snaplen
  put_u32(file_, kLinktypeRaw);
  packets_ = 0;
  return Status::ok_status();
}

Status PcapWriter::write(const Packet& pkt, SimTime at) {
  if (file_ == nullptr) return Error::make("pcap writer not open");
  const Bytes image = serialize(pkt);
  put_u32(file_, static_cast<u32>(at.us / 1'000'000));
  put_u32(file_, static_cast<u32>(at.us % 1'000'000));
  put_u32(file_, static_cast<u32>(image.size()));  // captured length
  put_u32(file_, static_cast<u32>(image.size()));  // original length
  std::fwrite(image.data(), 1, image.size(), file_);
  ++packets_;
  return Status::ok_status();
}

void PcapWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status write_pcap(const std::string& path,
                  const std::vector<TimedPacket>& packets) {
  PcapWriter writer;
  if (Status st = writer.open(path); !st.ok()) return st;
  for (const auto& tp : packets) {
    if (Status st = writer.write(tp.packet, tp.at); !st.ok()) return st;
  }
  return Status::ok_status();
}

}  // namespace ys::net
