// Wire-format serialization and parsing for the packet model.
//
// Round-tripping through real big-endian wire images keeps the model honest:
// checksum validation, option parsing, and the malformed-field insertion
// packets all operate on genuine byte layouts.
#pragma once

#include "core/result.h"
#include "core/types.h"
#include "netsim/packet.h"

namespace ys::net {

/// Serialize the IPv4 header (ihl_words * 4 bytes; option area zero-filled
/// when ihl_words > 5). If `zero_checksum`, the checksum field is written as
/// zero (for checksum computation).
Bytes serialize_ip_header(const Ipv4Header& ip, bool zero_checksum = false);

/// Serialize the transport header + payload (no IP header). For trailing
/// fragments this is just the raw payload slice.
Bytes serialize_transport(const Packet& pkt, bool zero_checksum = false);

/// Full wire image: IP header + transport. Note the IP `total_length`
/// *field* is written as stored, which may disagree with the buffer size —
/// that mismatch is exactly the "IP length" insertion-packet discrepancy,
/// so callers must carry the actual size alongside the image.
Bytes serialize(const Packet& pkt);

/// Parse a wire image back into a structured packet. `data.size()` is the
/// actual received length (may be shorter than the claimed total_length).
/// Returns an error only for images too mangled to represent structurally;
/// semantically invalid packets (bad checksum, short TCP offset) parse fine
/// and carry their invalid fields, since endpoints must *see* them to
/// ignore them.
Result<Packet> parse(ByteView data);

}  // namespace ys::net
