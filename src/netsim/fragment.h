// IP fragmentation and reassembly.
//
// The paper's out-of-order IP-fragment strategy (§3.2) crafts overlapping
// fragments and exploits reassembly-preference differences between the GFW
// (prefers the *first* copy of an overlapped range) and end hosts.
// Middleboxes on some paths (Table 2) either drop fragments outright or
// reassemble them before forwarding — both behaviours use this engine.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "core/types.h"
#include "netsim/packet.h"

namespace ys::net {

/// Which copy of an overlapped byte range wins at reassembly.
enum class OverlapPolicy {
  kPreferFirst,  // GFW IP-fragment behaviour, BSD-style
  kPreferLast,   // overwrite with the newest copy
};

/// Split a finalized, non-fragmented packet into IP fragments whose payload
/// slices are at most `mtu_payload` bytes (rounded down to a multiple of 8
/// except for the last fragment). Every output fragment carries raw
/// transport bytes (tcp/udp unset) and is finalized.
std::vector<Packet> fragment_packet(const Packet& pkt,
                                    std::size_t mtu_payload);

/// Craft a single raw fragment of the transport image of `whole` covering
/// [offset_bytes, offset_bytes + bytes.size()). `offset_bytes` must be a
/// multiple of 8. Used by the overlapping-fragment evasion strategy, which
/// sends ranges out of order and with conflicting contents.
Packet make_raw_fragment(const Packet& whole, std::size_t offset_bytes,
                         Bytes bytes, bool more_fragments);

/// Per-(src, dst, id, proto) reassembly with a configurable overlap policy.
class FragmentReassembler {
 public:
  explicit FragmentReassembler(OverlapPolicy policy) : policy_(policy) {}

  /// Feed one fragment (or a whole packet, which passes straight through).
  /// Returns the fully reassembled packet once every byte of the datagram
  /// is present, otherwise nullopt.
  std::optional<Packet> push(const Packet& pkt);

  /// Drop partial state older than callers care about (simple flush; the
  /// simulator's flows are short so no per-fragment timer is modeled).
  void clear() { partial_.clear(); }

  std::size_t pending_datagrams() const { return partial_.size(); }

 private:
  struct Key {
    IpAddr src;
    IpAddr dst;
    u16 id;
    u8 proto;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      u64 h = (static_cast<u64>(k.src) << 32) | k.dst;
      h ^= (static_cast<u64>(k.id) << 8) | k.proto;
      h *= 0x9E3779B97F4A7C15ULL;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct Partial {
    // Sparse assembled transport bytes plus a presence bitmap.
    std::vector<u8> bytes;
    std::vector<bool> present;
    std::optional<std::size_t> total_length;  // known once MF=0 arrives
    Ipv4Header first_header;                  // header of the offset-0 frag
    bool have_first = false;
  };

  OverlapPolicy policy_;
  std::unordered_map<Key, Partial, KeyHash> partial_;
};

}  // namespace ys::net
