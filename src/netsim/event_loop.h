// Discrete-event scheduler driving all simulations on virtual time.
#pragma once

#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "core/clock.h"
#include "core/types.h"

namespace ys::net {

/// Min-heap event loop. Events scheduled for the same instant run in
/// scheduling order (a monotonically increasing tiebreaker guarantees
/// determinism).
class EventLoop {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return clock_.now(); }
  const VirtualClock& clock() const { return clock_; }

  void schedule_at(SimTime when, Action action) {
    queue_.push(Event{when, next_seq_++, std::move(action)});
  }

  void schedule_after(SimTime delay, Action action) {
    schedule_at(now() + delay, std::move(action));
  }

  /// Run until the queue drains or `max_events` fire. Returns the number of
  /// events executed (a bound guards against accidental livelock in tests).
  std::size_t run(std::size_t max_events = 1'000'000) {
    std::size_t executed = 0;
    while (!queue_.empty() && executed < max_events) {
      Event ev = queue_.top();
      queue_.pop();
      clock_.advance_to(ev.when);
      ev.action();
      ++executed;
    }
    return executed;
  }

  /// Run events with timestamps <= deadline, then set the clock there.
  std::size_t run_until(SimTime deadline, std::size_t max_events = 1'000'000) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= deadline &&
           executed < max_events) {
      Event ev = queue_.top();
      queue_.pop();
      clock_.advance_to(ev.when);
      ev.action();
      ++executed;
    }
    clock_.advance_to(deadline);
    return executed;
  }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    u64 seq;
    Action action;

    bool operator>(const Event& other) const {
      if (when != other.when) return other.when < when;
      return seq > other.seq;
    }
  };

  VirtualClock clock_;
  u64 next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace ys::net
