// Discrete-event scheduler driving all simulations on virtual time.
#pragma once

#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "core/clock.h"
#include "core/log.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ys::net {

/// What one `run`/`run_until` call did. `hit_max_events` disambiguates
/// "queue drained" from "the livelock guard tripped" — the raw executed
/// count alone cannot (executed == max_events can be either). Converts to
/// the executed count so historical `std::size_t n = loop.run()` callers
/// keep compiling.
struct RunResult {
  std::size_t executed = 0;
  bool hit_max_events = false;

  operator std::size_t() const { return executed; }
};

/// Min-heap event loop. Events scheduled for the same instant run in
/// scheduling order (a monotonically increasing tiebreaker guarantees
/// determinism).
class EventLoop {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return clock_.now(); }
  const VirtualClock& clock() const { return clock_; }

  /// Move the clock to `t` before any event runs. Fleet sweeps use this to
  /// multiplex many flows over one shared virtual timeline: each flow's
  /// scenario starts at its arrival time, so TTL-bearing state (selector
  /// records, block periods) ages consistently across the whole sweep.
  /// Monotonic like everything else on the clock; a no-op for t <= now().
  void start_at(SimTime t) { clock_.advance_to(t); }

  void schedule_at(SimTime when, Action action) {
    queue_.push(Event{when, next_seq_++, std::move(action)});
    metrics().queue_depth_hwm.max_of(static_cast<double>(queue_.size()));
  }

  void schedule_after(SimTime delay, Action action) {
    schedule_at(now() + delay, std::move(action));
  }

  /// Run until the queue drains or `max_events` fire (a bound guards
  /// against accidental livelock in tests).
  RunResult run(std::size_t max_events = 1'000'000) {
    RunResult result;
    while (!queue_.empty() && result.executed < max_events) {
      Event ev = queue_.top();
      queue_.pop();
      clock_.advance_to(ev.when);
      ev.action();
      ++result.executed;
    }
    finish_run(result, !queue_.empty());
    return result;
  }

  /// Run events with timestamps <= deadline, then set the clock there.
  RunResult run_until(SimTime deadline, std::size_t max_events = 1'000'000) {
    RunResult result;
    while (!queue_.empty() && queue_.top().when <= deadline &&
           result.executed < max_events) {
      Event ev = queue_.top();
      queue_.pop();
      clock_.advance_to(ev.when);
      ev.action();
      ++result.executed;
    }
    finish_run(result, !queue_.empty() && queue_.top().when <= deadline);
    clock_.advance_to(deadline);
    return result;
  }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Attach a trace recorder; the loop annotates anomalies (today: the
  /// livelock guard tripping) as kNote events so they show up in replays.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  struct LoopMetrics {
    obs::Counter& events_executed;
    obs::Counter& runs;
    obs::Counter& max_events_hits;
    obs::Gauge& queue_depth_hwm;
    obs::Gauge& max_events_hit;  // 1 while any run this trial tripped
  };

  /// One name-lookup per (thread, registry); every loop instance on a
  /// thread shares the metrics (they aggregate across trials until
  /// reset_all()). The cache resolves through current() and rebinds on
  /// registry change, so runner workers write their private registries,
  /// not the global one.
  static LoopMetrics& metrics() {
    return obs::bind_per_thread<LoopMetrics>([](obs::MetricsRegistry& reg) {
      return LoopMetrics{reg.counter("loop.events_executed"),
                         reg.counter("loop.runs"),
                         reg.counter("loop.max_events_hits"),
                         reg.gauge("loop.queue_depth_hwm"),
                         reg.gauge("loop.max_events_hit")};
    });
  }

  void finish_run(RunResult& result, bool more_work_pending) {
    result.hit_max_events = more_work_pending;
    LoopMetrics& m = metrics();
    m.runs.inc();
    m.events_executed.inc(result.executed);
    if (result.hit_max_events) {
      m.max_events_hits.inc();
      m.max_events_hit.set(1.0);
      const std::string msg =
          "event loop stopped at the max_events bound after " +
          std::to_string(result.executed) + " events with " +
          std::to_string(queue_.size()) + " still pending (possible livelock)";
      YS_LOG(LogLevel::kWarn, msg);
      if (trace_ != nullptr) {
        trace_->note(now(), "loop", obs::TraceKind::kNote, msg);
      }
    }
  }
  struct Event {
    SimTime when;
    u64 seq;
    Action action;

    bool operator>(const Event& other) const {
      if (when != other.when) return other.when < when;
      return seq > other.seq;
    }
  };

  VirtualClock clock_;
  u64 next_seq_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace ys::net
