#include "netsim/wire.h"

#include "core/byte_io.h"

namespace ys::net {
namespace {

// TCP option kinds we encode/decode structurally.
constexpr u8 kOptEol = 0;
constexpr u8 kOptNop = 1;
constexpr u8 kOptMss = 2;
constexpr u8 kOptWScale = 3;
constexpr u8 kOptSackPerm = 4;
constexpr u8 kOptTimestamps = 8;
constexpr u8 kOptMd5 = 19;

void write_tcp_options(BufWriter& w, const TcpOptions& opts) {
  std::size_t start = w.size();
  if (opts.mss) {
    w.u8_(kOptMss);
    w.u8_(4);
    w.u16_(*opts.mss);
  }
  if (opts.window_scale) {
    w.u8_(kOptWScale);
    w.u8_(3);
    w.u8_(*opts.window_scale);
  }
  if (opts.sack_permitted) {
    w.u8_(kOptSackPerm);
    w.u8_(2);
  }
  if (opts.timestamps) {
    w.u8_(kOptTimestamps);
    w.u8_(10);
    w.u32_(opts.timestamps->ts_val);
    w.u32_(opts.timestamps->ts_ecr);
  }
  if (opts.md5_signature) {
    w.u8_(kOptMd5);
    w.u8_(18);
    w.bytes(ByteView(opts.md5_signature->data(), 16));
  }
  while ((w.size() - start) % 4 != 0) w.u8_(kOptNop);
}

Status read_tcp_options(BufReader& r, std::size_t options_len,
                        TcpOptions& out) {
  std::size_t end = r.position() + options_len;
  while (r.position() < end) {
    auto kind = r.u8_();
    if (!kind.ok()) return kind.error();
    if (kind.value() == kOptEol) break;
    if (kind.value() == kOptNop) continue;
    auto len = r.u8_();
    if (!len.ok()) return len.error();
    if (len.value() < 2) return Error::make("TCP option length < 2");
    const std::size_t body = len.value() - 2u;
    switch (kind.value()) {
      case kOptMss: {
        auto v = r.u16_();
        if (!v.ok()) return v.error();
        out.mss = v.value();
        break;
      }
      case kOptWScale: {
        auto v = r.u8_();
        if (!v.ok()) return v.error();
        out.window_scale = v.value();
        break;
      }
      case kOptSackPerm:
        out.sack_permitted = true;
        break;
      case kOptTimestamps: {
        auto val = r.u32_();
        auto ecr = r.u32_();
        if (!val.ok() || !ecr.ok()) return Error::make("short timestamps");
        out.timestamps = TcpTimestamps{val.value(), ecr.value()};
        break;
      }
      case kOptMd5: {
        auto digest = r.bytes(16);
        if (!digest.ok()) return digest.error();
        std::array<u8, 16> md5{};
        std::copy(digest.value().begin(), digest.value().end(), md5.begin());
        out.md5_signature = md5;
        break;
      }
      default: {
        auto st = r.skip(body);
        if (!st.ok()) return st;
        break;
      }
    }
  }
  // Consume any remaining padding inside the declared option area.
  if (r.position() < end) {
    auto st = r.skip(end - r.position());
    if (!st.ok()) return st;
  }
  return Status::ok_status();
}

}  // namespace

Bytes serialize_ip_header(const Ipv4Header& ip, bool zero_checksum) {
  Bytes out;
  out.reserve(static_cast<std::size_t>(ip.ihl_words) * 4);
  BufWriter w(out);
  w.u8_(static_cast<u8>(0x40 | (ip.ihl_words & 0x0F)));
  w.u8_(ip.dscp_ecn);
  w.u16_(ip.total_length);
  w.u16_(ip.identification);
  u16 frag = ip.fragment_offset & 0x1FFF;
  if (ip.dont_fragment) frag |= 0x4000;
  if (ip.more_fragments) frag |= 0x2000;
  w.u16_(frag);
  w.u8_(ip.ttl);
  w.u8_(static_cast<u8>(ip.protocol));
  w.u16_(zero_checksum ? 0 : ip.header_checksum);
  w.u32_(ip.src);
  w.u32_(ip.dst);
  if (ip.ihl_words > 5) {
    w.zeros((static_cast<std::size_t>(ip.ihl_words) - 5) * 4);
  }
  return out;
}

Bytes serialize_transport(const Packet& pkt, bool zero_checksum) {
  Bytes out;
  BufWriter w(out);
  if (pkt.is_trailing_fragment() || (!pkt.tcp && !pkt.udp)) {
    w.bytes(pkt.payload);
    return out;
  }
  if (pkt.tcp) {
    const TcpHeader& t = *pkt.tcp;
    w.u16_(t.src_port);
    w.u16_(t.dst_port);
    w.u32_(t.seq);
    w.u32_(t.ack);
    // data offset is written as stored even when inconsistent with the
    // actual option length — the "TCP header length < 20" discrepancy.
    w.u8_(static_cast<u8>((t.data_offset_words & 0x0F) << 4));
    w.u8_(t.flags.to_byte());
    w.u16_(t.window);
    w.u16_(zero_checksum ? 0 : t.checksum);
    w.u16_(t.urgent_pointer);
    write_tcp_options(w, t.options);
    w.bytes(pkt.payload);
    return out;
  }
  const UdpHeader& u = *pkt.udp;
  w.u16_(u.src_port);
  w.u16_(u.dst_port);
  w.u16_(u.length);
  w.u16_(zero_checksum ? 0 : u.checksum);
  w.bytes(pkt.payload);
  return out;
}

Bytes serialize(const Packet& pkt) {
  Bytes out = serialize_ip_header(pkt.ip);
  Bytes transport = serialize_transport(pkt);
  out.insert(out.end(), transport.begin(), transport.end());
  return out;
}

Result<Packet> parse(ByteView data) {
  BufReader r(data);
  Packet pkt;

  auto vihl = r.u8_();
  if (!vihl.ok()) return Error::make("truncated IP header");
  if ((vihl.value() >> 4) != 4) return Error::make("not IPv4");
  pkt.ip.ihl_words = vihl.value() & 0x0F;
  if (pkt.ip.ihl_words < 5) return Error::make("IP IHL < 5");

  auto tos = r.u8_();
  auto total = r.u16_();
  auto ident = r.u16_();
  auto frag = r.u16_();
  auto ttl = r.u8_();
  auto proto = r.u8_();
  auto hsum = r.u16_();
  auto src = r.u32_();
  auto dst = r.u32_();
  if (!tos.ok() || !total.ok() || !ident.ok() || !frag.ok() || !ttl.ok() ||
      !proto.ok() || !hsum.ok() || !src.ok() || !dst.ok()) {
    return Error::make("truncated IP header");
  }
  pkt.ip.dscp_ecn = tos.value();
  pkt.ip.total_length = total.value();
  pkt.ip.identification = ident.value();
  pkt.ip.dont_fragment = (frag.value() & 0x4000) != 0;
  pkt.ip.more_fragments = (frag.value() & 0x2000) != 0;
  pkt.ip.fragment_offset = frag.value() & 0x1FFF;
  pkt.ip.ttl = ttl.value();
  pkt.ip.protocol = static_cast<IpProto>(proto.value());
  pkt.ip.header_checksum = hsum.value();
  pkt.ip.src = src.value();
  pkt.ip.dst = dst.value();
  if (pkt.ip.ihl_words > 5) {
    auto st = r.skip((static_cast<std::size_t>(pkt.ip.ihl_words) - 5) * 4);
    if (!st.ok()) return Error::make("truncated IP options");
  }

  // Trailing fragment: raw transport bytes only.
  if (pkt.ip.fragment_offset != 0) {
    auto body = r.bytes(r.remaining());
    pkt.payload = std::move(body).take();
    return pkt;
  }

  if (pkt.ip.protocol == IpProto::kTcp) {
    TcpHeader t;
    auto sp = r.u16_();
    auto dp = r.u16_();
    auto seq = r.u32_();
    auto ack = r.u32_();
    auto off = r.u8_();
    auto flags = r.u8_();
    auto win = r.u16_();
    auto csum = r.u16_();
    auto urg = r.u16_();
    if (!sp.ok() || !dp.ok() || !seq.ok() || !ack.ok() || !off.ok() ||
        !flags.ok() || !win.ok() || !csum.ok() || !urg.ok()) {
      return Error::make("truncated TCP header");
    }
    t.src_port = sp.value();
    t.dst_port = dp.value();
    t.seq = seq.value();
    t.ack = ack.value();
    t.data_offset_words = off.value() >> 4;
    t.flags = TcpFlags::from_byte(flags.value());
    t.window = win.value();
    t.checksum = csum.value();
    t.urgent_pointer = urg.value();
    // A data offset below 5 is structurally invalid; we still parse the
    // remaining bytes as payload so the endpoint can observe and reject it.
    if (t.data_offset_words > 5) {
      const std::size_t opt_len =
          (static_cast<std::size_t>(t.data_offset_words) - 5) * 4;
      if (opt_len > r.remaining()) return Error::make("truncated TCP options");
      auto st = read_tcp_options(r, opt_len, t.options);
      if (!st.ok()) return st.error();
    }
    pkt.tcp = t;
    auto body = r.bytes(r.remaining());
    pkt.payload = std::move(body).take();
    return pkt;
  }

  if (pkt.ip.protocol == IpProto::kUdp) {
    UdpHeader u;
    auto sp = r.u16_();
    auto dp = r.u16_();
    auto len = r.u16_();
    auto csum = r.u16_();
    if (!sp.ok() || !dp.ok() || !len.ok() || !csum.ok()) {
      return Error::make("truncated UDP header");
    }
    u.src_port = sp.value();
    u.dst_port = dp.value();
    u.length = len.value();
    u.checksum = csum.value();
    pkt.udp = u;
    auto body = r.bytes(r.remaining());
    pkt.payload = std::move(body).take();
    return pkt;
  }

  auto body = r.bytes(r.remaining());
  pkt.payload = std::move(body).take();
  return pkt;
}

}  // namespace ys::net
