#include "netsim/fragment.h"

#include <algorithm>
#include <cassert>

#include "netsim/wire.h"

namespace ys::net {

std::vector<Packet> fragment_packet(const Packet& pkt,
                                    std::size_t mtu_payload) {
  assert(!pkt.ip.is_fragmented());
  Bytes transport = serialize_transport(pkt);
  // Fragment offsets are expressed in 8-byte units, so every fragment except
  // the last must carry a multiple of 8 bytes.
  std::size_t chunk = std::max<std::size_t>(8, mtu_payload & ~std::size_t{7});
  if (transport.size() <= chunk) {
    // Fits without fragmentation: hand back the original datagram.
    return {pkt};
  }

  std::vector<Packet> out;
  for (std::size_t off = 0; off < transport.size(); off += chunk) {
    const std::size_t len = std::min(chunk, transport.size() - off);
    const bool more = off + len < transport.size();
    Bytes slice(transport.begin() + static_cast<long>(off),
                transport.begin() + static_cast<long>(off + len));
    out.push_back(make_raw_fragment(pkt, off, std::move(slice), more));
  }
  return out;
}

Packet make_raw_fragment(const Packet& whole, std::size_t offset_bytes,
                         Bytes bytes, bool more_fragments) {
  assert(offset_bytes % 8 == 0);
  Packet frag;
  frag.ip = whole.ip;
  frag.ip.total_length = 0;       // autofill for the slice
  frag.ip.header_checksum = 0;    // recompute
  frag.ip.fragment_offset = static_cast<u16>(offset_bytes / 8);
  frag.ip.more_fragments = more_fragments;
  frag.tcp.reset();
  frag.udp.reset();
  frag.payload = std::move(bytes);
  finalize(frag);
  return frag;
}

std::optional<Packet> FragmentReassembler::push(const Packet& pkt) {
  if (!pkt.ip.is_fragmented()) return pkt;

  const Key key{pkt.ip.src, pkt.ip.dst, pkt.ip.identification,
                static_cast<u8>(pkt.ip.protocol)};
  Partial& part = partial_[key];

  const std::size_t off = static_cast<std::size_t>(pkt.ip.fragment_offset) * 8;
  Bytes slice = serialize_transport(pkt);
  const std::size_t end = off + slice.size();

  if (part.bytes.size() < end) {
    part.bytes.resize(end, 0);
    part.present.resize(end, false);
  }
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const std::size_t pos = off + i;
    if (part.present[pos] && policy_ == OverlapPolicy::kPreferFirst) continue;
    part.bytes[pos] = slice[i];
    part.present[pos] = true;
  }

  if (pkt.ip.fragment_offset == 0) {
    part.first_header = pkt.ip;
    part.have_first = true;
  }
  if (!pkt.ip.more_fragments) {
    part.total_length = end;
  }

  if (!part.total_length || !part.have_first) return std::nullopt;
  if (part.bytes.size() < *part.total_length) return std::nullopt;
  if (!std::all_of(part.present.begin(),
                   part.present.begin() + static_cast<long>(*part.total_length),
                   [](bool b) { return b; })) {
    return std::nullopt;
  }

  // Rebuild the whole datagram's wire image and parse it back.
  Ipv4Header hdr = part.first_header;
  hdr.more_fragments = false;
  hdr.fragment_offset = 0;
  hdr.total_length = static_cast<u16>(
      static_cast<std::size_t>(hdr.ihl_words) * 4 + *part.total_length);
  hdr.header_checksum = 0;

  Bytes image = serialize_ip_header(hdr);
  image.insert(image.end(), part.bytes.begin(),
               part.bytes.begin() + static_cast<long>(*part.total_length));
  partial_.erase(key);

  auto parsed = parse(image);
  if (!parsed.ok()) return std::nullopt;  // hopeless garbage; drop silently
  Packet whole = std::move(parsed).take();
  finalize(whole);  // recompute the IP header checksum for the new header
  return whole;
}

}  // namespace ys::net
