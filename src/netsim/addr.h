// IPv4 addressing and connection four-tuples.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "core/types.h"

namespace ys::net {

/// IPv4 address in host byte order.
using IpAddr = u32;

constexpr IpAddr make_ip(u8 a, u8 b, u8 c, u8 d) {
  return (static_cast<u32>(a) << 24) | (static_cast<u32>(b) << 16) |
         (static_cast<u32>(c) << 8) | static_cast<u32>(d);
}

inline std::string ip_to_string(IpAddr ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

/// Connection identifier as seen from the client side:
/// (client ip:port, server ip:port).
struct FourTuple {
  IpAddr src_ip = 0;
  u16 src_port = 0;
  IpAddr dst_ip = 0;
  u16 dst_port = 0;

  /// The same connection keyed from the opposite direction.
  FourTuple reversed() const {
    return FourTuple{dst_ip, dst_port, src_ip, src_port};
  }

  /// Canonical key: identical for both directions of one connection.
  FourTuple canonical() const {
    if (src_ip < dst_ip || (src_ip == dst_ip && src_port <= dst_port)) {
      return *this;
    }
    return reversed();
  }

  friend bool operator==(const FourTuple&, const FourTuple&) = default;

  std::string to_string() const {
    return ip_to_string(src_ip) + ":" + std::to_string(src_port) + "->" +
           ip_to_string(dst_ip) + ":" + std::to_string(dst_port);
  }
};

struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const {
    u64 h = t.src_ip;
    h = h * 0x100000001b3ULL ^ t.dst_ip;
    h = h * 0x100000001b3ULL ^ (static_cast<u64>(t.src_port) << 16 | t.dst_port);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Host pair key (ignores ports) — the GFW's 90-second blocklist is per
/// (client, server) host pair, not per connection.
struct HostPair {
  IpAddr a = 0;
  IpAddr b = 0;

  static HostPair of(IpAddr x, IpAddr y) {
    return x <= y ? HostPair{x, y} : HostPair{y, x};
  }
  friend bool operator==(const HostPair&, const HostPair&) = default;
};

struct HostPairHash {
  std::size_t operator()(const HostPair& p) const {
    u64 h = (static_cast<u64>(p.a) << 32) | p.b;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace ys::net
