#include "netsim/path.h"

#include <algorithm>
#include <cmath>

namespace ys::net {

namespace {

/// Metric-name-safe rendering of an actor name ("mbox:nat" → "mbox_nat").
std::string sanitize_actor(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

obs::PacketRef to_trace_ref(const Packet& pkt, Dir dir) {
  obs::PacketRef ref;
  ref.id = pkt.trace_id;
  ref.ttl = pkt.ip.ttl;
  ref.dir = dir == Dir::kC2S ? 0 : 1;
  ref.crafted = pkt.crafted;
  ref.payload_len = static_cast<u16>(pkt.payload.size());
  if (pkt.tcp) {
    ref.is_tcp = true;
    ref.seq = pkt.tcp->seq;
    ref.ack = pkt.tcp->ack;
    ref.flags = pkt.tcp->flags.to_byte();
  }
  return ref;
}

Path::PathMetrics& Path::metrics() {
  return obs::bind_per_thread<PathMetrics>([](obs::MetricsRegistry& reg) {
    return PathMetrics{reg.counter("netsim.packet_delivered_client"),
                       reg.counter("netsim.packet_delivered_server"),
                       reg.counter("netsim.packet_dropped_loss"),
                       reg.counter("netsim.packet_ttl_expired"),
                       reg.counter("netsim.packet_injected"),
                       reg.counter("netsim.packet_element_drop"),
                       reg.counter("netsim.packet_reorder_clamped"),
                       reg.counter("netsim.fault_drop"),
                       reg.counter("netsim.fault_duplicate"),
                       reg.counter("netsim.fault_corrupt"),
                       reg.counter("netsim.fault_inject_suppressed")};
  });
}

// Forwarder implementation bound to one (element, packet, direction) visit.
class Path::ForwarderImpl final : public Forwarder {
 public:
  ForwarderImpl(Path& path, Dir dir, int index, int position, u64 trace_id)
      : path_(path), dir_(dir), index_(index), position_(position),
        trace_id_(trace_id) {}

  void forward(Packet pkt) override {
    pkt.trace_id = trace_id_;
    path_.transit(std::move(pkt), dir_, position_, index_);
  }

  void inject(Packet pkt, Dir dir, SimTime delay) override {
    inject_caused_by(std::move(pkt), dir, delay, 0);
  }

  void inject_caused_by(Packet pkt, Dir dir, SimTime delay,
                        u64 cause_packet_id) override {
    finalize(pkt);
    pkt.trace_id = path_.next_trace_id_++;
    // Resolve the causal link now: at injection-decision time the trigger
    // packet's latest trace event is the one that reached this element.
    const u64 cause_event =
        (path_.trace_ != nullptr && cause_packet_id != 0)
            ? path_.trace_->event_for_packet(cause_packet_id)
            : 0;
    const std::string actor = path_.elements_[static_cast<std::size_t>(index_)]
                                  .element->name();
    if (path_.fault_hook_ != nullptr) {
      const FaultHook::InjectAction act =
          path_.fault_hook_->on_inject(actor, path_.loop_.now());
      if (act.suppress) {
        // The injector is "down" (e.g. a GFW outage flap): the forged
        // packet never makes it onto the wire.
        Path::metrics().fault_inject_suppressed.inc();
        path_.trace_packet(obs::TraceKind::kFault, actor, pkt, dir,
                           cause_event, act.reason);
        return;
      }
      delay = delay + SimTime::from_us(act.extra_delay_us);
    }
    Path::metrics().injected.inc();
    const int position = position_;
    const int index = index_;
    Path* path = &path_;
    path_.loop_.schedule_after(delay, [path, actor, position, index, dir,
                                       cause_event,
                                       pkt = std::move(pkt)]() mutable {
      path->trace_packet(obs::TraceKind::kInject, actor, pkt, dir,
                         cause_event);
      path->transit(std::move(pkt), dir, position, index);
    });
  }

  void drop(const Packet& pkt, std::string_view reason) override {
    Path::metrics().element_drops.inc();
    if (path_.trace_ != nullptr) {
      const std::string actor =
          path_.elements_[static_cast<std::size_t>(index_)].element->name();
      path_.trace_packet(obs::TraceKind::kDrop, actor, pkt, dir_,
                         path_.trace_->event_for_packet(pkt.trace_id),
                         std::string(reason).c_str());
    }
  }

  obs::TraceRecorder* trace() const override { return path_.trace_; }

  SimTime now() const override { return path_.loop_.now(); }
  Rng& rng() override { return path_.rng_; }

 private:
  Path& path_;
  Dir dir_;
  int index_;
  int position_;
  u64 trace_id_;
};

Path::Path(EventLoop& loop, Rng rng, PathConfig cfg, obs::TraceRecorder* trace)
    : loop_(loop), rng_(rng), cfg_(cfg), trace_(trace) {}

u64 Path::trace_packet(obs::TraceKind kind, const std::string& actor,
                       const Packet& pkt, Dir dir, u64 caused_by,
                       const char* extra) {
  if (trace_ == nullptr) return 0;
  obs::TraceEvent ev;
  ev.at = loop_.now();
  ev.kind = kind;
  ev.actor = actor;
  ev.caused_by = caused_by;
  ev.packet = to_trace_ref(pkt, dir);
  ev.detail = pkt.summary();
  if (extra != nullptr) {
    ev.detail += "  (";
    ev.detail += extra;
    ev.detail += ')';
  }
  if (pkt.crafted) ev.detail += "  [insertion]";
  return trace_->record(std::move(ev));
}

void Path::attach(int position, PathElement* element) {
  auto it = std::upper_bound(
      elements_.begin(), elements_.end(), position,
      [](int pos, const Attachment& a) { return pos < a.position; });
  obs::Counter& events = obs::MetricsRegistry::current().counter(
      "netsim.actor_events." + sanitize_actor(element->name()));
  elements_.insert(it, Attachment{position, element, &events});
}

void Path::send_from_client(Packet pkt) {
  finalize(pkt);
  pkt.trace_id = next_trace_id_++;
  // Insertion packets carry the trace-event id of the strategy decision
  // that crafted them; the send event chains to it.
  trace_packet(obs::TraceKind::kSend, "client", pkt, Dir::kC2S,
               pkt.cause_hint);
  if (client_capture_) client_capture_(pkt, loop_.now());
  transit(std::move(pkt), Dir::kC2S, 0, -1);
}

void Path::send_from_server(Packet pkt) {
  finalize(pkt);
  pkt.trace_id = next_trace_id_++;
  trace_packet(obs::TraceKind::kSend, "server", pkt, Dir::kS2C,
               pkt.cause_hint);
  transit(std::move(pkt), Dir::kS2C, endpoint_position(Dir::kC2S),
          static_cast<int>(elements_.size()));
}

void Path::transit(Packet pkt, Dir dir, int from_pos, int after_index) {
  // Find the next stop in the travel direction.
  int next_index = -1;
  int next_pos = endpoint_position(dir);
  if (dir == Dir::kC2S) {
    if (after_index + 1 < static_cast<int>(elements_.size())) {
      next_index = after_index + 1;
      next_pos = elements_[static_cast<std::size_t>(next_index)].position;
    }
  } else {
    if (after_index - 1 >= 0) {
      next_index = after_index - 1;
      next_pos = elements_[static_cast<std::size_t>(next_index)].position;
    }
  }

  const int distance = std::max(0, dir == Dir::kC2S ? next_pos - from_pos
                                                    : from_pos - next_pos);

  // TTL and loss are evaluated link by link, interleaved: a packet with
  // TTL k crosses exactly k links, and each crossing is an independent
  // Bernoulli loss trial — so an element at hop k sees packets that later
  // die at hop k+1 (one end-to-end draw could not represent that, and
  // insertion-packet fault tests depend on the distinction).
  if (distance > 0) {
    const int step = dir == Dir::kC2S ? 1 : -1;
    int pos = from_pos;
    for (int hop = 0; hop < distance; ++hop) {
      if (pkt.ip.ttl == 0) {
        metrics().ttl_expired.inc();
        if (trace_ != nullptr) {
          const std::string extra =
              "ttl expired " + std::to_string(pos) + " hops from client";
          trace_packet(obs::TraceKind::kExpire, "path", pkt, dir,
                       trace_->event_for_packet(pkt.trace_id), extra.c_str());
        }
        return;
      }
      pkt.ip.ttl = static_cast<u8>(pkt.ip.ttl - 1);
      pos += step;
      if (cfg_.per_link_loss > 0.0 && rng_.chance(cfg_.per_link_loss)) {
        metrics().dropped_loss.inc();
        if (trace_ != nullptr) {
          trace_packet(obs::TraceKind::kLoss, "path", pkt, dir,
                       trace_->event_for_packet(pkt.trace_id));
        }
        return;
      }
    }
  }

  // Fault layer: one consultation per surviving segment. No hook installed
  // means no extra draws and no behavior change whatsoever.
  FaultHook::LinkAction fault;
  if (fault_hook_ != nullptr && distance > 0) {
    fault = fault_hook_->on_segment(pkt, dir, from_pos, next_pos, loop_.now());
    if (fault.any() && trace_ != nullptr) {
      trace_packet(obs::TraceKind::kFault, "faults", pkt, dir,
                   trace_->event_for_packet(pkt.trace_id), fault.reason);
    }
    if (fault.drop) {
      metrics().fault_drops.inc();
      return;
    }
    if (fault.corrupt) {
      // Mutate the content but leave the already-finalized checksum stale,
      // like a flaky link flipping bits after the NIC computed the sums.
      metrics().fault_corruptions.inc();
      if (!pkt.payload.empty()) {
        pkt.payload[0] ^= 0x20;
      } else if (pkt.tcp) {
        pkt.tcp->checksum = static_cast<u16>(pkt.tcp->checksum ^ 0x5555);
      } else if (pkt.udp) {
        pkt.udp->checksum = static_cast<u16>(pkt.udp->checksum ^ 0x5555);
      }
    }
  }

  const SimTime delay = SimTime::from_us(
      distance * cfg_.per_hop_latency_us +
      (cfg_.jitter_us > 0
           ? rng_.uniform_range(0, cfg_.jitter_us)
           : 0) +
      fault.extra_delay_us);

  // Enforce FIFO per (stop, direction): a packet entering this segment
  // later never arrives earlier (router queues don't reorder a flow). A
  // fault-layer reorder window bypasses the clamp — true reordering beyond
  // what jitter can produce — without lowering the floor for others.
  const u64 fifo_key =
      (static_cast<u64>(next_index + 2) << 1) |
      (dir == Dir::kC2S ? 0u : 1u);
  SimTime deliver_at = loop_.now() + delay;
  if (!fault.bypass_fifo) {
    SimTime& floor = fifo_floor_[fifo_key];
    if (deliver_at < floor) {
      // Jitter alone would have reordered this packet past an earlier one on
      // the same segment; the FIFO clamp is where "reordering pressure" shows.
      metrics().reorder_clamped.inc();
      deliver_at = floor;
    }
    floor = deliver_at;
  }

  Packet dup;
  if (fault.duplicate) dup = pkt;  // copy before the schedule moves it

  if (next_index >= 0) {
    loop_.schedule_at(deliver_at,
                      [this, pkt = std::move(pkt), dir, next_index]() mutable {
                        deliver_to_element(std::move(pkt), dir, next_index);
                      });
  } else {
    loop_.schedule_at(deliver_at, [this, pkt = std::move(pkt), dir]() mutable {
      deliver_to_endpoint(std::move(pkt), dir);
    });
  }

  if (fault.duplicate) {
    // The copy trails the original by one hop latency and respects the
    // same FIFO floor, like a retransmitting link layer.
    metrics().fault_duplicates.inc();
    SimTime dup_at = deliver_at + SimTime::from_us(cfg_.per_hop_latency_us);
    if (!fault.bypass_fifo) {
      SimTime& floor = fifo_floor_[fifo_key];
      if (dup_at < floor) dup_at = floor;
      floor = dup_at;
    }
    if (next_index >= 0) {
      loop_.schedule_at(dup_at,
                        [this, pkt = std::move(dup), dir, next_index]() mutable {
                          deliver_to_element(std::move(pkt), dir, next_index);
                        });
    } else {
      loop_.schedule_at(dup_at, [this, pkt = std::move(dup), dir]() mutable {
        deliver_to_endpoint(std::move(pkt), dir);
      });
    }
  }
}

void Path::deliver_to_element(Packet pkt, Dir dir, int index) {
  const Attachment& at = elements_[static_cast<std::size_t>(index)];
  at.events->inc();
  ForwarderImpl fwd(*this, dir, index, at.position, pkt.trace_id);
  at.element->process(std::move(pkt), dir, fwd);
}

void Path::deliver_to_endpoint(Packet pkt, Dir dir) {
  if (dir == Dir::kC2S) {
    ++to_server_count_;
    metrics().delivered_server.inc();
    if (trace_ != nullptr) {
      trace_packet(obs::TraceKind::kRecv, "server", pkt, dir,
                   trace_->event_for_packet(pkt.trace_id));
    }
    if (server_sink_) server_sink_(std::move(pkt));
  } else {
    ++to_client_count_;
    metrics().delivered_client.inc();
    if (trace_ != nullptr) {
      trace_packet(obs::TraceKind::kRecv, "client", pkt, dir,
                   trace_->event_for_packet(pkt.trace_id));
    }
    if (client_capture_) client_capture_(pkt, loop_.now());
    if (client_sink_) client_sink_(std::move(pkt));
  }
}

}  // namespace ys::net
