// Structured IPv4 / TCP / UDP packet model.
//
// The structured form is authoritative inside the simulator; `wire.h`
// serializes it to real big-endian wire images and parses them back, and the
// checksum helpers recompute real RFC 1071 checksums from those images.
// Deliberately-malformed fields (wrong checksum, claimed IP total length
// larger than the actual packet, TCP data offset below 5, absent flags) are
// all representable, because the paper's insertion packets depend on them.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "core/clock.h"
#include "core/types.h"
#include "netsim/addr.h"

namespace ys::net {

enum class IpProto : u8 {
  kTcp = 6,
  kUdp = 17,
};

// ---------------------------------------------------------------- TCP flags

struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;
  bool urg = false;

  static constexpr TcpFlags none() { return {}; }
  static constexpr TcpFlags only_syn() { return {.syn = true}; }
  static constexpr TcpFlags syn_ack() { return {.syn = true, .ack = true}; }
  static constexpr TcpFlags only_ack() { return {.ack = true}; }
  static constexpr TcpFlags only_rst() { return {.rst = true}; }
  static constexpr TcpFlags rst_ack() { return {.rst = true, .ack = true}; }
  static constexpr TcpFlags only_fin() { return {.fin = true}; }
  static constexpr TcpFlags fin_ack() { return {.fin = true, .ack = true}; }
  static constexpr TcpFlags psh_ack() { return {.psh = true, .ack = true}; }

  constexpr bool any() const { return fin || syn || rst || psh || ack || urg; }

  constexpr u8 to_byte() const {
    return static_cast<u8>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) |
                           (rst ? 0x04 : 0) | (psh ? 0x08 : 0) |
                           (ack ? 0x10 : 0) | (urg ? 0x20 : 0));
  }
  static constexpr TcpFlags from_byte(u8 b) {
    return TcpFlags{.fin = (b & 0x01) != 0, .syn = (b & 0x02) != 0,
                    .rst = (b & 0x04) != 0, .psh = (b & 0x08) != 0,
                    .ack = (b & 0x10) != 0, .urg = (b & 0x20) != 0};
  }

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;

  /// tcpdump-style rendering, e.g. "[S]", "[R.]", "[.]" — "[none]" when no
  /// flag is set (the paper's "no TCP flag" insertion packet).
  std::string to_string() const;
};

// -------------------------------------------------------------- TCP options

/// RFC 7323 timestamps.
struct TcpTimestamps {
  u32 ts_val = 0;
  u32 ts_ecr = 0;
  friend bool operator==(const TcpTimestamps&, const TcpTimestamps&) = default;
};

/// Parsed TCP options. Only the options the paper's strategies exercise are
/// modeled structurally; unknown options round-trip as raw bytes.
struct TcpOptions {
  std::optional<u16> mss;
  std::optional<u8> window_scale;
  bool sack_permitted = false;
  std::optional<TcpTimestamps> timestamps;
  /// RFC 2385 TCP MD5 signature option (kind 19). The paper uses an
  /// *unsolicited* MD5 option as an insertion-packet discrepancy; the digest
  /// contents are irrelevant to that behaviour, so we carry opaque bytes.
  std::optional<std::array<u8, 16>> md5_signature;

  bool empty() const {
    return !mss && !window_scale && !sack_permitted && !timestamps &&
           !md5_signature;
  }
  /// Encoded length in bytes, padded to a multiple of 4.
  std::size_t wire_length() const;

  friend bool operator==(const TcpOptions&, const TcpOptions&) = default;
};

// ------------------------------------------------------------------ headers

struct TcpHeader {
  u16 src_port = 0;
  u16 dst_port = 0;
  u32 seq = 0;
  u32 ack = 0;
  /// Data offset in 32-bit words. Normally 5 + options; the "TCP header
  /// length < 20" insertion packet sets this below 5.
  u8 data_offset_words = 5;
  TcpFlags flags;
  u16 window = 65535;
  /// Stored (on-wire) checksum. 0 means "fill in correct value at
  /// finalize()"; a corrupted value survives serialization untouched.
  u16 checksum = 0;
  u16 urgent_pointer = 0;
  TcpOptions options;
};

struct UdpHeader {
  u16 src_port = 0;
  u16 dst_port = 0;
  /// Stored length field (header + payload). 0 means autofill.
  u16 length = 0;
  u16 checksum = 0;
};

struct Ipv4Header {
  u8 ihl_words = 5;  // no IP options modeled; may be corrupted in tests
  u8 dscp_ecn = 0;
  /// Claimed total length. 0 means autofill from the actual size; the
  /// "IP total length > actual length" insertion packet sets it larger.
  u16 total_length = 0;
  u16 identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  /// Fragment offset in 8-byte units.
  u16 fragment_offset = 0;
  u8 ttl = 64;
  IpProto protocol = IpProto::kTcp;
  /// Stored header checksum; 0 means autofill at finalize().
  u16 header_checksum = 0;
  IpAddr src = 0;
  IpAddr dst = 0;

  bool is_fragmented() const { return more_fragments || fragment_offset != 0; }
};

// ------------------------------------------------------------------- packet

/// A simulated packet. Exactly one of `tcp` / `udp` is set for
/// non-fragment packets; trailing fragments (fragment_offset > 0) carry raw
/// transport bytes in `payload` and have neither header set.
struct Packet {
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  /// Transport payload (TCP/UDP application data); for trailing IP
  /// fragments, the raw slice of the transport datagram.
  Bytes payload;

  /// Simulator-unique id for tracing; assigned by the path when sent.
  u64 trace_id = 0;

  /// Trace-event id of the decision that crafted this packet (strategy
  /// insertion packets); 0 for organic traffic. Carried so the path can
  /// link the packet's send event back to its strategy step.
  u64 cause_hint = 0;

  /// True for packets a strategy built and sent raw (insertion packets).
  bool crafted = false;

  bool is_tcp() const { return tcp.has_value(); }
  bool is_udp() const { return udp.has_value(); }
  bool is_trailing_fragment() const {
    return ip.fragment_offset != 0 && !tcp && !udp;
  }

  FourTuple tuple() const {
    u16 sp = tcp ? tcp->src_port : (udp ? udp->src_port : 0);
    u16 dp = tcp ? tcp->dst_port : (udp ? udp->dst_port : 0);
    return FourTuple{ip.src, sp, ip.dst, dp};
  }

  /// End sequence number of a TCP segment (seq + payload len + SYN + FIN).
  u32 tcp_seq_end() const;

  /// One-line human summary for traces:
  /// "TCP 10.0.0.1:4000->93.184.216.34:80 [S] seq=1000 ttl=64 len=0".
  std::string summary() const;
};

// -------------------------------------------------------------- finalizing

/// Fill in all autofill fields (lengths and checksums) with *correct*
/// values computed from the packet contents. Fields already set to nonzero
/// values are preserved, which is how deliberately-wrong values survive.
void finalize(Packet& pkt);

/// Correct transport checksum for the packet as currently laid out.
u16 correct_transport_checksum(const Packet& pkt);

/// True iff the stored transport checksum matches the recomputed one.
bool transport_checksum_ok(const Packet& pkt);

/// True iff the claimed IP total length matches the actual wire size.
bool ip_length_consistent(const Packet& pkt);

/// Actual wire size of the packet in bytes (headers + payload).
std::size_t wire_size(const Packet& pkt);

// --------------------------------------------------------------- factories

/// Convenience TCP packet factory used by stacks and strategies alike. The
/// result still needs finalize() before hitting the wire.
Packet make_tcp_packet(const FourTuple& tuple, TcpFlags flags, u32 seq,
                       u32 ack, Bytes payload = {});

/// Convenience UDP packet factory.
Packet make_udp_packet(const FourTuple& tuple, Bytes payload);

}  // namespace ys::net
