// Classic libpcap-format capture writer.
//
// Any packet the simulator handles can be serialized to its real wire image
// (netsim/wire.h), so simulations can be dumped to `.pcap` files and opened
// in Wireshark/tcpdump — insertion packets, GFW reset volleys, forged
// SYN/ACKs and all. Timestamps come from the virtual clock.
#pragma once

#include <cstdio>
#include <string>

#include "core/clock.h"
#include "core/log.h"
#include "core/result.h"
#include "netsim/packet.h"

namespace ys::net {

/// Streams packets into a pcap file (LINKTYPE_RAW 101: packets begin with
/// the IPv4 header, no link-layer framing — exactly our wire images).
class PcapWriter {
 public:
  PcapWriter() = default;
  ~PcapWriter() { close(); }

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Open (truncate) the output file and write the global header.
  Status open(const std::string& path);

  /// Append one packet at the given virtual time. The stored capture
  /// length is the actual wire size (a lying IP total_length field is
  /// preserved in the bytes, as on a real capture).
  Status write(const Packet& pkt, SimTime at);

  void close();
  bool is_open() const { return file_ != nullptr; }
  std::size_t packets_written() const { return packets_; }

 private:
  std::FILE* file_ = nullptr;
  std::size_t packets_ = 0;
};

/// Convenience: replay a TraceRecorder's send/recv/inject events into a
/// pcap file. Event details are not parseable back into packets, so this
/// overload takes the packets alongside their times.
struct TimedPacket {
  Packet packet;
  SimTime at;
};

Status write_pcap(const std::string& path,
                  const std::vector<TimedPacket>& packets);

}  // namespace ys::net
