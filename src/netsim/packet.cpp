#include "netsim/packet.h"

#include <cstdio>

#include "core/checksum.h"
#include "netsim/wire.h"

namespace ys::net {

std::string TcpFlags::to_string() const {
  if (!any()) return "[none]";
  std::string s = "[";
  if (syn) s += 'S';
  if (fin) s += 'F';
  if (rst) s += 'R';
  if (psh) s += 'P';
  if (urg) s += 'U';
  if (ack) s += '.';
  s += ']';
  return s;
}

std::size_t TcpOptions::wire_length() const {
  std::size_t len = 0;
  if (mss) len += 4;
  if (window_scale) len += 3;
  if (sack_permitted) len += 2;
  if (timestamps) len += 10;
  if (md5_signature) len += 18;
  return (len + 3) & ~std::size_t{3};  // pad with NOPs to 4-byte multiple
}

u32 Packet::tcp_seq_end() const {
  if (!tcp) return 0;
  u32 end = tcp->seq + static_cast<u32>(payload.size());
  if (tcp->flags.syn) ++end;
  if (tcp->flags.fin) ++end;
  return end;
}

std::string Packet::summary() const {
  char buf[256];
  if (is_trailing_fragment()) {
    std::snprintf(buf, sizeof(buf), "FRAG %s->%s off=%u%s len=%zu ttl=%u",
                  ip_to_string(ip.src).c_str(), ip_to_string(ip.dst).c_str(),
                  ip.fragment_offset * 8u, ip.more_fragments ? "+" : "",
                  payload.size(), ip.ttl);
    return buf;
  }
  if (tcp) {
    std::snprintf(buf, sizeof(buf),
                  "TCP %s:%u->%s:%u %s seq=%u ack=%u ttl=%u len=%zu%s%s%s%s",
                  ip_to_string(ip.src).c_str(), tcp->src_port,
                  ip_to_string(ip.dst).c_str(), tcp->dst_port,
                  tcp->flags.to_string().c_str(), tcp->seq, tcp->ack, ip.ttl,
                  payload.size(),
                  tcp->options.md5_signature ? " md5" : "",
                  tcp->options.timestamps ? " ts" : "",
                  ip.is_fragmented() ? " frag0" : "",
                  transport_checksum_ok(*this) ? "" : " badcsum");
    return buf;
  }
  if (udp) {
    std::snprintf(buf, sizeof(buf), "UDP %s:%u->%s:%u ttl=%u len=%zu",
                  ip_to_string(ip.src).c_str(), udp->src_port,
                  ip_to_string(ip.dst).c_str(), udp->dst_port, ip.ttl,
                  payload.size());
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "IP %s->%s proto=%u ttl=%u len=%zu",
                ip_to_string(ip.src).c_str(), ip_to_string(ip.dst).c_str(),
                static_cast<unsigned>(ip.protocol), ip.ttl, payload.size());
  return buf;
}

std::size_t wire_size(const Packet& pkt) {
  std::size_t transport = 0;
  if (pkt.tcp) {
    transport = 20 + pkt.tcp->options.wire_length();
  } else if (pkt.udp) {
    transport = 8;
  }
  return static_cast<std::size_t>(pkt.ip.ihl_words) * 4 + transport +
         pkt.payload.size();
}

bool ip_length_consistent(const Packet& pkt) {
  return pkt.ip.total_length == wire_size(pkt);
}

u16 correct_transport_checksum(const Packet& pkt) {
  // Compute over the real wire image of the transport segment with the
  // checksum field zeroed — exactly what an endpoint NIC/stack does.
  Bytes segment = serialize_transport(pkt, /*zero_checksum=*/true);
  const u8 proto = static_cast<u8>(pkt.ip.protocol);
  u16 sum = transport_checksum(pkt.ip.src, pkt.ip.dst, proto, segment);
  // Per RFC 768 a computed UDP checksum of 0 is transmitted as 0xFFFF.
  if (pkt.ip.protocol == IpProto::kUdp && sum == 0) sum = 0xFFFF;
  return sum;
}

bool transport_checksum_ok(const Packet& pkt) {
  if (pkt.is_trailing_fragment()) return true;  // verified after reassembly
  if (pkt.tcp) return pkt.tcp->checksum == correct_transport_checksum(pkt);
  if (pkt.udp) {
    if (pkt.udp->checksum == 0) return true;  // UDP checksum optional
    return pkt.udp->checksum == correct_transport_checksum(pkt);
  }
  return true;
}

void finalize(Packet& pkt) {
  // Keep the data offset consistent with the encoded options, unless a
  // caller deliberately corrupted it (short-TCP-header insertion packets).
  if (pkt.tcp && pkt.tcp->data_offset_words == 5 &&
      !pkt.tcp->options.empty()) {
    pkt.tcp->data_offset_words =
        static_cast<u8>(5 + pkt.tcp->options.wire_length() / 4);
  }
  if (pkt.ip.total_length == 0) {
    pkt.ip.total_length = static_cast<u16>(wire_size(pkt));
  }
  if (pkt.udp && pkt.udp->length == 0) {
    pkt.udp->length = static_cast<u16>(8 + pkt.payload.size());
  }
  if (!pkt.is_trailing_fragment()) {
    if (pkt.tcp && pkt.tcp->checksum == 0) {
      pkt.tcp->checksum = correct_transport_checksum(pkt);
    }
    if (pkt.udp && pkt.udp->checksum == 0) {
      pkt.udp->checksum = correct_transport_checksum(pkt);
    }
  }
  if (pkt.ip.header_checksum == 0) {
    Bytes hdr = serialize_ip_header(pkt.ip, /*zero_checksum=*/true);
    pkt.ip.header_checksum = internet_checksum(hdr);
  }
}

Packet make_tcp_packet(const FourTuple& tuple, TcpFlags flags, u32 seq,
                       u32 ack, Bytes payload) {
  Packet pkt;
  pkt.ip.src = tuple.src_ip;
  pkt.ip.dst = tuple.dst_ip;
  pkt.ip.protocol = IpProto::kTcp;
  TcpHeader tcp;
  tcp.src_port = tuple.src_port;
  tcp.dst_port = tuple.dst_port;
  tcp.flags = flags;
  tcp.seq = seq;
  tcp.ack = ack;
  pkt.tcp = tcp;
  pkt.payload = std::move(payload);
  return pkt;
}

Packet make_udp_packet(const FourTuple& tuple, Bytes payload) {
  Packet pkt;
  pkt.ip.src = tuple.src_ip;
  pkt.ip.dst = tuple.dst_ip;
  pkt.ip.protocol = IpProto::kUdp;
  UdpHeader udp;
  udp.src_port = tuple.src_port;
  udp.dst_port = tuple.dst_port;
  pkt.udp = udp;
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace ys::net
