#include "supervisor/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/clock.h"
#include "core/log.h"
#include "obs/timeline.h"

namespace ys::supervisor {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Parent-side per-shard process state (pipe, partial line, deadlines).
struct ChildProc {
  pid_t pid = -1;
  int fd = -1;  // read end of the heartbeat pipe, nonblocking
  std::string buf;
  double last_hb = 0.0;
  bool gap_flagged = false;
  double next_spawn_at = 0.0;
};

std::string describe_exit(int status) {
  char buf[64];
  if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof(buf), "exit %d", WEXITSTATUS(status));
  } else if (WIFSIGNALED(status)) {
    std::snprintf(buf, sizeof(buf), "signal %d", WTERMSIG(status));
  } else {
    std::snprintf(buf, sizeof(buf), "status 0x%x", status);
  }
  return buf;
}

}  // namespace

const char* to_string(ShardEvent::Kind kind) {
  switch (kind) {
    case ShardEvent::Kind::kSpawn: return "spawn";
    case ShardEvent::Kind::kHeartbeatGap: return "heartbeat_gap";
    case ShardEvent::Kind::kHang: return "hang";
    case ShardEvent::Kind::kCrash: return "crash";
    case ShardEvent::Kind::kRestart: return "restart";
    case ShardEvent::Kind::kDone: return "done";
    case ShardEvent::Kind::kDegraded: return "degraded";
  }
  return "?";
}

const char* to_string(ShardStatus::State state) {
  switch (state) {
    case ShardStatus::State::kPending: return "pending";
    case ShardStatus::State::kRunning: return "running";
    case ShardStatus::State::kDone: return "done";
    case ShardStatus::State::kDegraded: return "degraded";
  }
  return "?";
}

std::vector<ShardPartition> partition_vantages(std::size_t vantages,
                                               int shards) {
  std::vector<ShardPartition> parts;
  if (shards <= 0) shards = 1;
  const auto n = static_cast<std::size_t>(shards);
  for (std::size_t i = 0; i < n; ++i) {
    ShardPartition p;
    p.shard = static_cast<int>(i);
    p.vantage_begin = vantages * i / n;
    p.vantage_end = vantages * (i + 1) / n;
    if (p.vantage_end > p.vantage_begin) parts.push_back(p);
  }
  // Renumber densely so shard indices stay contiguous when vantages < N.
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].shard = static_cast<int>(i);
  }
  return parts;
}

bool SupervisorResult::all_complete() const {
  for (const ShardStatus& s : shards) {
    if (s.state != ShardStatus::State::kDone) return false;
  }
  return true;
}

int SupervisorResult::degraded_count() const {
  int n = 0;
  for (const ShardStatus& s : shards) {
    if (s.state == ShardStatus::State::kDegraded) ++n;
  }
  return n;
}

int SupervisorResult::restart_count() const {
  int n = 0;
  for (const ShardStatus& s : shards) n += s.restarts;
  return n;
}

std::string manifest_json(const SupervisorResult& result) {
  std::string out = "{\"schema\":\"ys.supervisor.v1\",\"shards\":[";
  for (std::size_t i = 0; i < result.shards.size(); ++i) {
    const ShardStatus& s = result.shards[i];
    if (i > 0) out += ',';
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"shard\":%d,\"state\":\"%s\",\"vantage_begin\":%zu,"
                  "\"vantage_end\":%zu,\"attempts\":%d,\"restarts\":%d,"
                  "\"done\":%llu,\"total\":%llu,\"exit_status\":%d}",
                  s.part.shard, to_string(s.state), s.part.vantage_begin,
                  s.part.vantage_end, s.attempts, s.restarts,
                  static_cast<unsigned long long>(s.done),
                  static_cast<unsigned long long>(s.total), s.exit_status);
    out += buf;
  }
  out += "],\"events\":[";
  // Keep the manifest bounded: the most recent 200 events tell the story.
  const std::size_t begin =
      result.events.size() > 200 ? result.events.size() - 200 : 0;
  for (std::size_t i = begin; i < result.events.size(); ++i) {
    const ShardEvent& e = result.events[i];
    if (i > begin) out += ',';
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"shard\":%d,\"kind\":\"%s\",\"attempt\":%d,\"at\":%.3f",
                  e.shard, to_string(e.kind), e.attempt, e.at);
    out += buf;
    if (!e.detail.empty()) {
      out += ",\"detail\":\"" + json_escape(e.detail) + "\"";
    }
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

void write_manifest(const SupervisorResult& result, const std::string& dir) {
  if (dir.empty()) return;
  const std::string path = dir + "/supervisor-state.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << manifest_json(result) << '\n';
}

}  // namespace

SupervisorResult supervise(const std::vector<ShardPartition>& parts,
                           const SupervisorOptions& opt,
                           const CommandBuilder& build_command) {
  SupervisorResult result;
  result.shards.resize(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    result.shards[i].part = parts[i];
  }
  std::vector<ChildProc> procs(parts.size());
  const auto start = Clock::now();
  const double hb = opt.heartbeat_seconds > 0 ? opt.heartbeat_seconds : 0.25;
  const double hang_after = hb * std::max(2.0, opt.grace);

  auto emit = [&](ShardEvent::Kind kind, std::size_t i,
                  const std::string& detail = {}) {
    ShardEvent e;
    e.kind = kind;
    e.shard = result.shards[i].part.shard;
    e.attempt = result.shards[i].attempts - 1;
    e.at = seconds_since(start);
    e.detail = detail;
    result.events.push_back(std::move(e));
    write_manifest(result, opt.resume_dir);
  };

  auto spawn = [&](std::size_t i) {
    ShardStatus& st = result.shards[i];
    ChildProc& cp = procs[i];
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      YS_LOG(LogLevel::kWarn, std::string("supervisor: pipe: ") +
                                  std::strerror(errno));
      st.state = ShardStatus::State::kDegraded;
      return;
    }
    // Both ends close-on-exec in the parent so one shard's pipe never
    // leaks into a sibling spawned later (a leaked write end would defer
    // EOF detection until the sibling also exited). The child re-enables
    // its own write end before exec.
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    ++st.attempts;
    const int attempt = st.attempts - 1;
    const std::vector<std::string> args =
        build_command(st.part, attempt, fds[1]);
    const pid_t pid = ::fork();
    if (pid < 0) {
      YS_LOG(LogLevel::kWarn, std::string("supervisor: fork: ") +
                                  std::strerror(errno));
      ::close(fds[0]);
      ::close(fds[1]);
      st.state = ShardStatus::State::kDegraded;
      emit(ShardEvent::Kind::kDegraded, i, "fork failed");
      return;
    }
    if (pid == 0) {
      // Child: keep the write end across exec, drop the read end.
      ::fcntl(fds[1], F_SETFD, 0);
      ::close(fds[0]);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::fprintf(stderr, "supervisor child: exec %s: %s\n",
                   args.empty() ? "?" : args[0].c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    cp.pid = pid;
    cp.fd = fds[0];
    cp.buf.clear();
    cp.last_hb = seconds_since(start);
    cp.gap_flagged = false;
    st.state = ShardStatus::State::kRunning;
    emit(ShardEvent::Kind::kSpawn, i,
         "pid " + std::to_string(static_cast<long>(pid)));
  };

  // A failed shard either reschedules (capped exponential backoff) or,
  // past the budget, degrades — the sweep continues without it.
  auto restart_or_degrade = [&](std::size_t i) {
    ShardStatus& st = result.shards[i];
    if (st.attempts <= opt.max_restarts) {
      ++st.restarts;
      const double backoff =
          std::min(opt.backoff_cap_seconds,
                   opt.backoff_base_seconds *
                       static_cast<double>(1u << std::min(st.restarts, 16)));
      procs[i].next_spawn_at = seconds_since(start) + backoff;
      st.state = ShardStatus::State::kPending;
      char detail[64];
      std::snprintf(detail, sizeof(detail), "backoff %.2fs", backoff);
      emit(ShardEvent::Kind::kRestart, i, detail);
    } else {
      st.state = ShardStatus::State::kDegraded;
      emit(ShardEvent::Kind::kDegraded, i,
           "retry budget (" + std::to_string(opt.max_restarts) +
               ") exhausted");
    }
  };

  auto reap = [&](std::size_t i, bool hung) {
    ShardStatus& st = result.shards[i];
    ChildProc& cp = procs[i];
    if (cp.fd >= 0) {
      ::close(cp.fd);
      cp.fd = -1;
    }
    int status = 0;
    if (cp.pid > 0) {
      if (hung) ::kill(cp.pid, SIGKILL);
      while (::waitpid(cp.pid, &status, 0) < 0 && errno == EINTR) {
      }
      cp.pid = -1;
    }
    st.exit_status = status;
    if (hung) {
      emit(ShardEvent::Kind::kHang, i,
           "no heartbeat for " + std::to_string(hang_after) + "s");
      restart_or_degrade(i);
      return;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      st.state = ShardStatus::State::kDone;
      emit(ShardEvent::Kind::kDone, i);
      return;
    }
    emit(ShardEvent::Kind::kCrash, i, describe_exit(status));
    restart_or_degrade(i);
  };

  // Returns true when the pipe hit EOF (the child is gone).
  auto drain_fd = [&](std::size_t i) {
    ShardStatus& st = result.shards[i];
    ChildProc& cp = procs[i];
    bool eof = false;
    char chunk[512];
    for (;;) {
      const ssize_t n = ::read(cp.fd, chunk, sizeof(chunk));
      if (n > 0) {
        cp.buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF (or a hard error): process buffered lines, then reap.
      eof = true;
      break;
    }
    std::size_t pos = 0;
    for (;;) {
      const std::size_t eol = cp.buf.find('\n', pos);
      if (eol == std::string::npos) break;
      unsigned long long done = 0, total = 0;
      if (std::sscanf(cp.buf.c_str() + pos, "HB %llu %llu", &done, &total) ==
          2) {
        const double now = seconds_since(start);
        cp.last_hb = now;
        cp.gap_flagged = false;
        st.done = done;
        st.total = total;
        st.progress.emplace_back(now, done);
      }
      pos = eol + 1;
    }
    cp.buf.erase(0, pos);
    return eof;
  };

  for (;;) {
    const double now = seconds_since(start);
    bool any_open = false;
    bool any_pending = false;

    for (std::size_t i = 0; i < result.shards.size(); ++i) {
      if (result.shards[i].state == ShardStatus::State::kPending) {
        if (now >= procs[i].next_spawn_at) {
          spawn(i);
        } else {
          any_pending = true;
        }
      }
    }

    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> pfd_shard;
    for (std::size_t i = 0; i < result.shards.size(); ++i) {
      if (result.shards[i].state == ShardStatus::State::kRunning &&
          procs[i].fd >= 0) {
        pfds.push_back({procs[i].fd, POLLIN, 0});
        pfd_shard.push_back(i);
        any_open = true;
      }
    }
    if (!any_open && !any_pending) break;

    if (!pfds.empty()) {
      const int rc = ::poll(pfds.data(), pfds.size(), 20);
      if (rc < 0 && errno != EINTR) {
        YS_LOG(LogLevel::kWarn, std::string("supervisor: poll: ") +
                                    std::strerror(errno));
      }
      for (std::size_t p = 0; p < pfds.size(); ++p) {
        const std::size_t i = pfd_shard[p];
        if (pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) {
          const bool eof = drain_fd(i);
          if (eof || (pfds[p].revents & (POLLHUP | POLLERR))) {
            reap(i, /*hung=*/false);
          }
        }
      }
    } else {
      // Only backoff timers left: sleep one tick.
      ::usleep(20'000);
    }

    const double after = seconds_since(start);
    for (std::size_t i = 0; i < result.shards.size(); ++i) {
      if (result.shards[i].state != ShardStatus::State::kRunning) continue;
      const double silent = after - procs[i].last_hb;
      if (silent > hang_after) {
        reap(i, /*hung=*/true);
      } else if (silent > 2.0 * hb && !procs[i].gap_flagged) {
        procs[i].gap_flagged = true;
        char detail[64];
        std::snprintf(detail, sizeof(detail), "silent %.2fs", silent);
        emit(ShardEvent::Kind::kHeartbeatGap, i, detail);
      }
    }
  }

  result.wall_seconds = seconds_since(start);
  write_manifest(result, opt.resume_dir);
  return result;
}

void record_timeline(const SupervisorResult& result, obs::Timeline* tl) {
  if (tl == nullptr) return;
  auto labels_for = [](int shard) {
    return obs::TimelineLabels{{"axis", "wall"},
                               {"shard", std::to_string(shard)}};
  };
  for (const ShardEvent& e : result.events) {
    const i64 bucket =
        tl->bucket_of(SimTime::from_us(static_cast<i64>(e.at * 1e6)));
    tl->count_at(std::string("supervisor.") + to_string(e.kind),
                 labels_for(e.shard), bucket);
    std::string text = "shard " + std::to_string(e.shard) + " " +
                       to_string(e.kind);
    if (!e.detail.empty()) text += " (" + e.detail + ")";
    tl->annotate_bucket(bucket, "shard", text);
  }
  for (const ShardStatus& s : result.shards) {
    const obs::TimelineLabels labels = labels_for(s.part.shard);
    for (const auto& [at, done] : s.progress) {
      const i64 bucket =
          tl->bucket_of(SimTime::from_us(static_cast<i64>(at * 1e6)));
      tl->sample_at("supervisor.shard_done", labels, bucket,
                    static_cast<i64>(done));
    }
  }
}

std::string render_summary(const SupervisorResult& result) {
  std::string out = "shard  vantages  state     attempts  progress\n";
  for (const ShardStatus& s : result.shards) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%5d  [%zu,%zu)%*s%-9s %8d  %llu/%llu\n", s.part.shard,
                  s.part.vantage_begin, s.part.vantage_end, 4, " ",
                  to_string(s.state), s.attempts,
                  static_cast<unsigned long long>(s.done),
                  static_cast<unsigned long long>(s.total));
    out += line;
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "%zu shard(s): %d restart(s), %d degraded, %.2fs wall\n",
                result.shards.size(), result.restart_count(),
                result.degraded_count(), result.wall_seconds);
  out += tail;
  return out;
}

}  // namespace ys::supervisor
