// Shard-side glue between ys::supervisor and ys::fleet.
//
// A shard child is one `yourstate fleet --shard=i/N` (or `bench_fleet
// --shard-child=i/N`) process: it rebuilds the full Fleet from the same
// config the parent holds, takes the i-th contiguous vantage range from
// partition_vantages(), and sweeps only those chains — writing every slot
// under its *global* grid index into a shard-private, signature-keyed
// ResultsStore. Global indices make the merge trivial (shard stores are
// sparse views of one slot space) and keep a restarted shard bit-identical
// to an uninterrupted one: per-flow seeds derive from global coordinates,
// never from which process ran them.
//
// Chaos clauses (faults::ShardChaos) are self-inflicted here, not by the
// parent: a kill clause SIGKILLs the child after N checkpointed flows, a
// stall clause stops progress (and mutes the heartbeat) so the parent's
// hang deadline fires, a slow-heartbeat clause stretches the cadence. All
// trigger points are pure functions of the sweep seed, so supervised
// recovery is as reproducible as the sweep itself.
#pragma once

#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "fleet/fleet.h"

namespace ys::obs {
class Timeline;
}

namespace ys::supervisor {

/// Store file name for shard `i` ("fleet-shard-<i>.results" under the
/// resume dir).
std::string shard_bench_name(int shard);

/// Shard store signature: the fleet signature plus the shard coordinates,
/// so shard i/N can never resume from shard j/M's checkpoint.
u64 shard_signature(const fleet::FleetConfig& cfg, int shard, int shards);

struct FleetShardOptions {
  fleet::FleetConfig cfg;
  std::string resume_dir;
  int shard = 0;
  int shards = 1;
  /// Write end of the supervisor's heartbeat pipe; -1 = no status stream
  /// (running a shard standalone for debugging).
  int status_fd = -1;
  /// Which attempt this is (the supervisor increments per restart); chaos
  /// clauses use it to stop misbehaving once their budget is spent.
  int attempt = 0;
  /// Plan whose shard_chaos clauses this child self-inflicts.
  faults::FaultPlan chaos;
  int jobs = 1;
  double heartbeat_seconds = 0.05;
};

/// Run one shard sweep to completion. Returns a process exit code:
/// 0 = shard complete, 2 = bad shard spec, 3 = resume-dir conflict
/// (another live process owns this shard's store).
int run_shard_child(const FleetShardOptions& opt);

/// Merged view of every shard store under `resume_dir`: slots is
/// grid().total() long with -1 holes where no shard recorded a value.
struct ShardMerge {
  std::vector<i64> slots;
  std::vector<std::size_t> missing_per_shard;
  std::size_t missing = 0;
};

ShardMerge merge_shard_stores(const fleet::Fleet& fl,
                              const std::string& resume_dir, int shards);

/// Mark partial coverage on a timeline (a "coverage" annotation at bucket
/// 0 naming the hole count). No-op when the merge is complete or tl is
/// null — a full recovery leaves the timeline byte-identical to an
/// unsharded run's.
void annotate_coverage(const ShardMerge& merge, obs::Timeline* tl);

}  // namespace ys::supervisor
