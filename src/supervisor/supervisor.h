// ys::supervisor — multi-process shard supervision for fleet sweeps.
//
// The parent partitions a sweep's vantage axis into contiguous shard
// ranges, launches one child process per shard, and watches them over a
// pipe-based heartbeat protocol: each child writes `HB <done> <total>`
// lines on the worker pool's heartbeat cadence (PoolOptions::
// heartbeat_sink). The parent detects
//   - hangs, via missed-heartbeat deadlines (grace × heartbeat interval),
//   - crashes, via nonzero exit status on pipe EOF,
// and restarts the failed shard with capped exponential backoff. Because
// every shard checkpoints into its own signature-keyed ResultsStore, a
// killed-then-restarted shard resumes from its last flushed slot and the
// merged sweep is bit-identical to an uninterrupted one.
//
// When a shard exhausts its retry budget it is marked degraded and the
// sweep continues: the merge keeps whatever the shard's store holds and
// downstream consumers (Fleet::analyze, timelines, the HTML report) label
// the partial coverage honestly instead of miscounting.
//
// The loop is single-threaded (poll(2) over the heartbeat pipes), so the
// parent itself has no shared state to corrupt when a child dies mid-line.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/types.h"

namespace ys::obs {
class Timeline;
}

namespace ys::supervisor {

/// One shard's slice of the vantage axis: [vantage_begin, vantage_end).
struct ShardPartition {
  int shard = 0;
  std::size_t vantage_begin = 0;
  std::size_t vantage_end = 0;
};

/// Split `vantages` chains into at most `shards` contiguous, non-empty,
/// near-equal ranges (fewer when vantages < shards).
std::vector<ShardPartition> partition_vantages(std::size_t vantages,
                                               int shards);

struct SupervisorOptions {
  /// Restarts allowed per shard after its first attempt; 0 = one attempt,
  /// then degrade.
  int max_restarts = 3;
  /// Expected child heartbeat cadence. The parent flags a gap at 2×, and
  /// declares a hang (SIGKILL + restart) at grace× this interval.
  double heartbeat_seconds = 0.25;
  double grace = 8.0;
  /// Capped exponential backoff between restarts of one shard.
  double backoff_base_seconds = 0.1;
  double backoff_cap_seconds = 2.0;
  /// When non-empty, a `supervisor-state.json` manifest is kept here
  /// (rewritten on every lifecycle event) for `yourstate shard-status`.
  std::string resume_dir;
};

/// Builds the argv for one shard attempt. `status_fd` is the write end of
/// the heartbeat pipe, already open in the parent; it stays open across
/// the child's exec at the same fd number, so the builder embeds it in the
/// command line (e.g. --status-fd=7).
using CommandBuilder = std::function<std::vector<std::string>(
    const ShardPartition& part, int attempt, int status_fd)>;

struct ShardEvent {
  enum class Kind : u8 {
    kSpawn,
    kHeartbeatGap,  // > 2 intervals without a heartbeat (informational)
    kHang,          // missed the hard deadline; child was SIGKILLed
    kCrash,         // pipe EOF with nonzero / signaled exit status
    kRestart,       // shard rescheduled after a hang or crash
    kDone,          // clean exit 0
    kDegraded,      // retry budget exhausted; shard abandoned
  };
  Kind kind = Kind::kSpawn;
  int shard = 0;
  int attempt = 0;
  double at = 0.0;  // seconds since supervise() started (wall clock)
  std::string detail;
};

const char* to_string(ShardEvent::Kind kind);

struct ShardStatus {
  enum class State : u8 { kPending, kRunning, kDone, kDegraded };
  State state = State::kPending;
  ShardPartition part;
  int attempts = 0;  // spawns so far
  int restarts = 0;  // spawns beyond the first
  u64 done = 0;      // last heartbeat's progress
  u64 total = 0;     // last heartbeat's task count
  int exit_status = 0;  // raw waitpid status of the last exit
  /// (seconds since start, done) samples from the heartbeat stream — the
  /// shard's progress trajectory for the report's lifecycle panel.
  std::vector<std::pair<double, u64>> progress;
};

const char* to_string(ShardStatus::State state);

struct SupervisorResult {
  std::vector<ShardStatus> shards;
  std::vector<ShardEvent> events;
  double wall_seconds = 0.0;

  bool all_complete() const;
  int degraded_count() const;
  int restart_count() const;
};

/// Run every partition to completion (or degradation). Blocks; returns
/// once no shard is pending or running.
SupervisorResult supervise(const std::vector<ShardPartition>& parts,
                           const SupervisorOptions& opt,
                           const CommandBuilder& build_command);

/// Fold the supervision lifecycle into a timeline: one `supervisor.<event>`
/// wall-axis counter per event kind (labelled by shard), `supervisor.
/// shard_done` progress gauges, and a "shard" annotation per event. Like
/// every runner.* series these ride the wall clock, so timeline digests
/// exclude the "supervisor." prefix.
void record_timeline(const SupervisorResult& result, obs::Timeline* tl);

/// Human-readable lifecycle table (one line per shard + event log tail).
std::string render_summary(const SupervisorResult& result);

/// Serialize the manifest `supervise()` maintains under resume_dir; exposed
/// for `yourstate shard-status` and tests.
std::string manifest_json(const SupervisorResult& result);

}  // namespace ys::supervisor
