#include "supervisor/shard_child.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "runner/results_store.h"
#include "runner/runner.h"
#include "supervisor/supervisor.h"

namespace ys::supervisor {

std::string shard_bench_name(int shard) {
  return "fleet-shard-" + std::to_string(shard);
}

u64 shard_signature(const fleet::FleetConfig& cfg, int shard, int shards) {
  return runner::ResultsStore::signature_of(
      {"fleet", cfg.signature(), "shard", std::to_string(shard), "of",
       std::to_string(shards)});
}

int run_shard_child(const FleetShardOptions& opt) {
  // The parent may die first; a heartbeat write must not kill us with
  // SIGPIPE mid-checkpoint.
  ::signal(SIGPIPE, SIG_IGN);

  const fleet::Fleet fl(opt.cfg);
  const runner::TrialGrid grid = fl.grid();
  const std::vector<ShardPartition> parts =
      partition_vantages(grid.vantages, opt.shards);
  if (opt.shard < 0 ||
      static_cast<std::size_t>(opt.shard) >= parts.size()) {
    std::fprintf(stderr, "shard %d/%d does not exist (%zu partition(s))\n",
                 opt.shard, opt.shards, parts.size());
    return 2;
  }
  const ShardPartition part = parts[static_cast<std::size_t>(opt.shard)];

  runner::ResultsStore store(opt.resume_dir, shard_bench_name(opt.shard),
                             shard_signature(opt.cfg, opt.shard, opt.shards),
                             grid.total());
  if (store.conflict()) {
    std::fprintf(stderr,
                 "shard %d: %s is owned by live pid %ld — two sweeps may "
                 "not share a resume dir\n",
                 opt.shard, store.path().c_str(), store.conflict_pid());
    return 3;
  }

  // Self-inflicted chaos: only clauses for this shard, and only while the
  // attempt is inside the clause's budget. Seeded trigger points keep the
  // recovery path a pure function of the sweep seed.
  bool kill_active = false, stall_active = false;
  u64 kill_after = 0, stall_after = 0;
  double hb_factor = 1.0;
  const std::size_t shard_flows =
      (part.vantage_end - part.vantage_begin) * grid.trials;
  for (const faults::ShardChaos& sc : opt.chaos.shard_chaos) {
    if (sc.shard != opt.shard || opt.attempt >= sc.attempts) continue;
    const u64 after =
        sc.after >= 0
            ? static_cast<u64>(sc.after)
            : 1 + Rng::mix_seed({opt.cfg.seed, 0x5EEDULL,
                                 static_cast<u64>(opt.shard),
                                 static_cast<u64>(opt.attempt)}) %
                      std::max<u64>(1, shard_flows / 2);
    switch (sc.kind) {
      case faults::ShardChaos::Kind::kKill:
        kill_active = true;
        kill_after = after;
        break;
      case faults::ShardChaos::Kind::kStall:
        stall_active = true;
        stall_after = after;
        break;
      case faults::ShardChaos::Kind::kSlowHeartbeat:
        hb_factor *= sc.factor > 0 ? sc.factor : 1.0;
        break;
    }
  }

  // The shard's sub-grid: local vantage axis, same trial axis; every task
  // maps its coordinate back to the global vantage index before running,
  // so seeds, schedules, and slot indices match the unsharded sweep.
  runner::TrialGrid sub;
  sub.cells = 1;
  sub.vantages = part.vantage_end - part.vantage_begin;
  sub.servers = 1;
  sub.trials = grid.trials;
  sub.chain_trials = true;

  std::vector<std::unique_ptr<fleet::Fleet::VantageState>> states;
  states.reserve(sub.chains());
  std::vector<char> skip(sub.chains(), 0);
  for (std::size_t lc = 0; lc < sub.chains(); ++lc) {
    const std::size_t gv = part.vantage_begin + lc;
    skip[lc] = store.range_complete(gv * grid.trials, (gv + 1) * grid.trials)
                   ? 1
                   : 0;
    states.push_back(skip[lc] ? nullptr : fl.make_vantage_state(gv));
  }

  std::atomic<u64> flows_done{0};
  std::atomic<bool> stalled{false};
  auto write_hb = [&](u64 done, std::size_t total) {
    if (opt.status_fd < 0) return;
    if (stalled.load(std::memory_order_relaxed)) return;  // play dead
    char line[64];
    const int n =
        std::snprintf(line, sizeof(line), "HB %llu %zu\n",
                      static_cast<unsigned long long>(done), total);
    if (n > 0) {
      const ssize_t w = ::write(opt.status_fd, line, static_cast<size_t>(n));
      (void)w;
    }
  };

  runner::PoolOptions pool;
  pool.jobs = opt.jobs;
  pool.heartbeat_seconds =
      opt.heartbeat_seconds > 0 ? opt.heartbeat_seconds * hb_factor : 0.0;
  pool.heartbeat_quiet = true;
  pool.heartbeat_sink = write_hb;

  write_hb(0, sub.total());

  auto out = runner::collect_grid_or(
      sub, pool, static_cast<i64>(-1),
      [&](const runner::GridCoord& c, runner::TaskContext&) {
        runner::GridCoord g = c;
        g.vantage = part.vantage_begin + c.vantage;
        const std::size_t slot = grid.index(g);
        if (skip[sub.chain(c)]) return *store.get(slot);
        const i64 encoded = fl.run_flow(g, *states[sub.chain(c)]).encode();
        store.put(slot, encoded);
        // Chaos triggers fire only after the slot is flushed, so the
        // checkpoint the restart resumes from is always line-complete.
        const u64 n = flows_done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (kill_active && n == kill_after) {
          ::kill(::getpid(), SIGKILL);
        }
        if (stall_active && n == stall_after) {
          stalled.store(true, std::memory_order_relaxed);
          for (;;) ::sleep(3600);  // wedge until the supervisor SIGKILLs us
        }
        return encoded;
      });
  (void)out;

  write_hb(sub.total(), sub.total());
  return 0;
}

ShardMerge merge_shard_stores(const fleet::Fleet& fl,
                              const std::string& resume_dir, int shards) {
  const runner::TrialGrid grid = fl.grid();
  const std::vector<ShardPartition> parts =
      partition_vantages(grid.vantages, shards);
  ShardMerge merge;
  merge.slots.assign(grid.total(), static_cast<i64>(-1));
  merge.missing_per_shard.assign(parts.size(), 0);
  for (const ShardPartition& part : parts) {
    // Read-only: the shards own their lockfiles; the merge never writes.
    runner::ResultsStore ro(resume_dir, shard_bench_name(part.shard),
                            shard_signature(fl.config(), part.shard, shards),
                            grid.total(),
                            runner::ResultsStore::Mode::kReadOnly);
    for (const auto& [slot, value] : ro.entries()) {
      if (slot < merge.slots.size()) merge.slots[slot] = value;
    }
    for (std::size_t s = part.vantage_begin * grid.trials;
         s < part.vantage_end * grid.trials; ++s) {
      if (merge.slots[s] < 0) {
        ++merge.missing_per_shard[static_cast<std::size_t>(part.shard)];
        ++merge.missing;
      }
    }
  }
  return merge;
}

void annotate_coverage(const ShardMerge& merge, obs::Timeline* tl) {
  if (tl == nullptr || merge.missing == 0) return;
  char text[128];
  std::snprintf(text, sizeof(text),
                "partial coverage: %zu/%zu flows recorded (%zu missing)",
                merge.slots.size() - merge.missing, merge.slots.size(),
                merge.missing);
  tl->annotate_bucket(0, "coverage", text);
}

}  // namespace ys::supervisor
