#include "fleet/fleet.h"

#include <algorithm>
#include <cstdio>

#include "exp/table.h"
#include "netsim/pcap.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace ys::fleet {

namespace {

using intang::StrategySelector;

struct FleetMetrics {
  obs::Counter& flows;
  obs::Counter& success;
  obs::Counter& failure1;
  obs::Counter& failure2;
  obs::Counter& trial_error;
  obs::Counter& cache_hits;
  obs::Counter& cross_client_supply;
  obs::Counter& fresh_sessions;
};

FleetMetrics& metrics() {
  return obs::bind_per_thread<FleetMetrics>([](obs::MetricsRegistry& reg) {
    return FleetMetrics{reg.counter("fleet.flows"),
                        reg.counter("fleet.flow_success"),
                        reg.counter("fleet.flow_failure1"),
                        reg.counter("fleet.flow_failure2"),
                        reg.counter("fleet.flow_trial_error"),
                        reg.counter("fleet.cache_hit"),
                        reg.counter("fleet.cross_client_supply"),
                        reg.counter("fleet.fresh_session")};
  });
}

bool is_cache_source(int source) {
  return source ==
             static_cast<int>(StrategySelector::Choice::Source::kCacheHit) ||
         source ==
             static_cast<int>(StrategySelector::Choice::Source::kStoreHit);
}

StrategySelector::Config fleet_selector_config() {
  return StrategySelector::Config{};
}

}  // namespace

i64 Fleet::FlowRecord::encode() const {
  return static_cast<i64>(outcome) |
         (static_cast<i64>(strategy) << 8) |
         (static_cast<i64>(source + 1) << 16) |
         (static_cast<i64>(supplier + 1) << 24);
}

Fleet::FlowRecord Fleet::FlowRecord::decode(i64 slot) {
  FlowRecord rec;
  rec.outcome = static_cast<exp::Outcome>(slot & 0xff);
  rec.strategy = static_cast<strategy::StrategyId>((slot >> 8) & 0xff);
  rec.source = static_cast<int>((slot >> 16) & 0xff) - 1;
  rec.supplier = static_cast<int>(slot >> 24) - 1;
  return rec;
}

Fleet::Fleet(FleetConfig cfg)
    : cfg_(std::move(cfg)),
      cal_(exp::Calibration::standard()),
      rules_(gfw::DetectionRules::standard()),
      vps_([&] {
        std::vector<exp::VantagePoint> vps = exp::china_vantage_points();
        if (cfg_.vantages > 0 &&
            static_cast<std::size_t>(cfg_.vantages) < vps.size()) {
          vps.resize(static_cast<std::size_t>(cfg_.vantages));
        }
        return vps;
      }()),
      servers_(exp::make_server_population(cfg_.servers, cfg_.seed, cal_,
                                           /*inside_china=*/true)),
      // Batched scenario construction: every (vantage, server) profile is
      // drawn once here and reused by all of the sweep's flows.
      profiles_(vps_, servers_, cal_) {}

runner::TrialGrid Fleet::grid() const {
  runner::TrialGrid grid;
  grid.cells = 1;
  grid.vantages = vps_.size();
  grid.servers = 1;  // the schedule carries the real server axis
  grid.trials = static_cast<std::size_t>(cfg_.flows);
  grid.chain_trials = true;
  return grid;
}

std::unique_ptr<Fleet::VantageState> Fleet::make_vantage_state(
    std::size_t vantage) const {
  auto state = std::make_unique<VantageState>();
  state->cfg = &cfg_;
  state->schedule = build_flow_schedule(cfg_, vps_[vantage].name);
  state->writer.assign(servers_.size(), -1);
  state->timeline_labels = {{"vantage", vps_[vantage].name},
                            {"vantage_index", std::to_string(vantage)}};
  if (cfg_.share != ShareMode::kCold) {
    state->selectors.reserve(static_cast<std::size_t>(cfg_.clients));
    for (int i = 0; i < cfg_.clients; ++i) {
      state->selectors.push_back(
          cfg_.share == ShareMode::kShared
              ? std::make_unique<StrategySelector>(fleet_selector_config(),
                                                   &state->store)
              : std::make_unique<StrategySelector>(fleet_selector_config()));
    }
  }
  return state;
}

u64 Fleet::flow_seed(const runner::GridCoord& c, const FlowSpec& flow) const {
  // Salted independently of every existing bench seed formula; client and
  // flow index both feed in, so two flows of one (vantage, server) pair
  // never share dynamic randomness.
  return Rng::mix_seed({cfg_.seed, 0xF1EE7DULL,
                        Rng::hash_label(vps_[c.vantage].name),
                        servers_[static_cast<std::size_t>(flow.server)].ip,
                        static_cast<u64>(flow.index),
                        static_cast<u64>(flow.client)});
}

exp::ScenarioOptions Fleet::options_for(const runner::GridCoord& c,
                                        const FlowSpec& flow,
                                        bool tracing) const {
  exp::ScenarioOptions opt;
  opt.vp = vps_[c.vantage];
  opt.server = servers_[static_cast<std::size_t>(flow.server)];
  opt.cal = cal_;
  opt.seed = flow_seed(c, flow);
  opt.profile = profiles_.get(c.vantage, static_cast<std::size_t>(flow.server));
  opt.start_time = flow.at;
  opt.tracing = tracing;
  // A fleet sweep must survive any flow wedging under a soak plan: bound
  // every flow in virtual time so it degrades to kTrialError, not a hang.
  opt.deadline = SimTime::from_sec(120);
  if (flow.soak_phase >= 0) {
    const faults::FaultPlan& plan =
        cfg_.soak[static_cast<std::size_t>(flow.soak_phase)].plan;
    if (!plan.empty()) opt.faults = &plan;
  }
  return opt;
}

Fleet::FlowRecord Fleet::run_flow(const runner::GridCoord& c,
                                  VantageState& state) const {
  return run_flow_impl(c, state, /*tracing=*/false, nullptr, {}, {});
}

Fleet::FlowRecord Fleet::run_flow_impl(const runner::GridCoord& c,
                                       VantageState& state, bool tracing,
                                       exp::Replay* replay,
                                       const std::string& trace_path,
                                       const std::string& pcap_path) const {
  obs::perf::ScopedPhase phase_timer("fleet.flow");
  const FlowSpec& flow = state.schedule[c.trial];

  // Session churn, by share mode. Shared: a restarted client process loses
  // its private LRU but rebinds to the vantage store. Per-client: the
  // private store survives the restart, only the LRU goes. Cold: nothing
  // persists anyway.
  StrategySelector* selector = nullptr;
  if (cfg_.share != ShareMode::kCold) {
    auto& slot = state.selectors[static_cast<std::size_t>(flow.client)];
    if (flow.fresh_session) {
      metrics().fresh_sessions.inc();
      if (cfg_.share == ShareMode::kShared) {
        slot = std::make_unique<StrategySelector>(fleet_selector_config(),
                                                  &state.store);
      } else {
        slot->forget_cache();
      }
    }
    selector = slot.get();
  }

  // Supplier attribution: capture who last wrote this server's known-good
  // record *before* the flow runs — that flow supplied any cache/store hit
  // the pick makes now.
  const int writer_before =
      state.writer[static_cast<std::size_t>(flow.server)];

  exp::Scenario sc(&rules_, options_for(c, flow, tracing));

  net::PcapWriter writer;
  if (tracing && !pcap_path.empty()) {
    if (auto st = writer.open(pcap_path); st.ok()) {
      sc.path().set_client_capture(
          [&writer](const net::Packet& pkt, SimTime at) {
            (void)writer.write(pkt, at);
          });
    } else {
      std::fprintf(stderr, "pcap: %s\n", st.error().message.c_str());
    }
  }

  exp::HttpTrialOptions http;
  http.with_keyword = true;
  http.use_intang = true;
  http.shared_selector = selector;  // nullptr in cold mode = fresh per flow
  const exp::TrialResult result = exp::run_http_trial(sc, http);

  FlowRecord rec;
  rec.outcome = result.outcome;
  rec.strategy = result.strategy_used;
  rec.source = result.pick_source ? static_cast<int>(*result.pick_source) : -1;
  if (is_cache_source(rec.source)) rec.supplier = writer_before;

  // This flow becomes the supplier of later hits on its server if it
  // succeeded with an actual strategy (kNone successes prove the plain
  // path works; they write no record).
  if (rec.outcome == exp::Outcome::kSuccess &&
      rec.strategy != strategy::StrategyId::kNone) {
    state.writer[static_cast<std::size_t>(flow.server)] = flow.index;
  }

  // ------------------------------------------------------------ metrics
  FleetMetrics& m = metrics();
  m.flows.inc();
  switch (rec.outcome) {
    case exp::Outcome::kSuccess: m.success.inc(); break;
    case exp::Outcome::kFailure1: m.failure1.inc(); break;
    case exp::Outcome::kFailure2: m.failure2.inc(); break;
    case exp::Outcome::kTrialError: m.trial_error.inc(); break;
  }
  if (is_cache_source(rec.source)) m.cache_hits.inc();
  if (rec.supplier >= 0 &&
      state.schedule[static_cast<std::size_t>(rec.supplier)].client !=
          flow.client) {
    m.cross_client_supply.inc();
  }
  auto& reg = obs::MetricsRegistry::current();
  if (rec.source >= 0) {
    reg.counter(std::string("fleet.pick.") +
                to_string(static_cast<StrategySelector::Choice::Source>(
                    rec.source)))
        .inc();
  }
  // Per-strategy share over time: one counter per (soak phase, strategy);
  // phase p0 = before any soak boundary (or a soak-free run).
  reg.counter("fleet.share.p" + std::to_string(flow.soak_phase + 1) + "." +
              strategy::to_string(rec.strategy))
      .inc();

  // Live heartbeat feed (relaxed: monitoring only, never read into
  // results).
  live_.flows.fetch_add(1, std::memory_order_relaxed);
  if (rec.outcome == exp::Outcome::kSuccess) {
    live_.successes.fetch_add(1, std::memory_order_relaxed);
  }
  if (is_cache_source(rec.source)) {
    live_.cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t live_phase = std::min<std::size_t>(
      static_cast<std::size_t>(flow.soak_phase), kMaxLivePhases - 1);
  live_.phase_flows[live_phase].fetch_add(1, std::memory_order_relaxed);

  // Timeline producers (opt-in): the same outcomes, bucketed at the flow's
  // virtual arrival instant per vantage. flow.at and the record are pure
  // functions of the grid coordinates, so these series are bit-identical
  // under --jobs=N.
  if (obs::Timeline* tl = obs::Timeline::current()) {
    const obs::TimelineLabels& lbl = state.timeline_labels;
    tl->count("fleet.flows", lbl, flow.at);
    if (rec.outcome == exp::Outcome::kSuccess) {
      tl->count("fleet.flow_success", lbl, flow.at);
    }
    if (is_cache_source(rec.source)) tl->count("fleet.cache_hit", lbl, flow.at);
    if (rec.supplier >= 0 &&
        state.schedule[static_cast<std::size_t>(rec.supplier)].client !=
            flow.client) {
      tl->count("fleet.cross_client_supply", lbl, flow.at);
    }
    if (rec.source ==
        static_cast<int>(StrategySelector::Choice::Source::kSafeMode)) {
      tl->count("fleet.safe_mode", lbl, flow.at);
    }
    // Gauge, not counter: its per-bucket max is the newest flow index in
    // the bucket — the `--trial=` coordinate `yourstate report` prints
    // for anomalous buckets.
    tl->sample("fleet.flow_index", lbl, flow.at, flow.index);
  }

  if (tracing && replay != nullptr) {
    // Attribute the pick to its supplier in the trace, causally linked to
    // the selector's decision event so `yourstate explain` renders the
    // supply chain.
    if (rec.supplier >= 0) {
      const FlowSpec& sup =
          state.schedule[static_cast<std::size_t>(rec.supplier)];
      sc.trace().note(
          sc.loop().now(), "fleet", obs::TraceKind::kDecision,
          "cache entry for " + servers_[static_cast<std::size_t>(flow.server)]
                  .host +
              " was supplied by flow #" + std::to_string(rec.supplier) +
              " (client " + std::to_string(sup.client) + ")",
          sc.trace().last_decision());
    }
    replay->result = result;
    replay->old_model = sc.path_runs_old_model();
    replay->ladder = sc.trace().render();
    replay->attribution = exp::attribute_verdict(sc.trace(), result.outcome,
                                                 replay->old_model);
    if (!trace_path.empty()) {
      if (!obs::write_chrome_trace(trace_path, sc.trace())) {
        std::fprintf(stderr, "cannot write trace file %s\n",
                     trace_path.c_str());
      }
    }
  }
  return rec;
}

exp::Replay Fleet::replay_flow(const runner::GridCoord& c,
                               const std::string& trace_path,
                               const std::string& pcap_path) const {
  // Rebuild the vantage chain up to the target flow: same schedule, same
  // stores, same writers — the chain contract makes the prefix identical
  // to what the sweep executed.
  auto state = make_vantage_state(c.vantage);
  for (std::size_t t = 0; t < c.trial; ++t) {
    runner::GridCoord prefix = c;
    prefix.trial = t;
    (void)run_flow(prefix, *state);
  }
  exp::Replay replay;
  (void)run_flow_impl(c, *state, /*tracing=*/true, &replay, trace_path,
                      pcap_path);
  return replay;
}

std::string Fleet::heartbeat_line() const {
  const u64 flows = live_.flows.load(std::memory_order_relaxed);
  const u64 ok = live_.successes.load(std::memory_order_relaxed);
  const u64 hits = live_.cache_hits.load(std::memory_order_relaxed);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ok %.1f%% | cache %.1f%%",
                flows > 0 ? 100.0 * static_cast<double>(ok) / flows : 0.0,
                flows > 0 ? 100.0 * static_cast<double>(hits) / flows : 0.0);
  std::string out = buf;
  for (std::size_t p = 0; p < kMaxLivePhases; ++p) {
    const u64 n = live_.phase_flows[p].load(std::memory_order_relaxed);
    if (n == 0) continue;
    std::snprintf(buf, sizeof(buf), " %sp%zu:%llu", p == 0 ? "| " : "",
                  p + 1, static_cast<unsigned long long>(n));
    out += buf;
  }
  return out;
}

void Fleet::annotate_timeline(obs::Timeline* tl) const {
  if (tl == nullptr) return;
  for (std::size_t p = 0; p < cfg_.soak.size(); ++p) {
    // Same numbering as the fleet.share.pN counters: soak[p] starts the
    // phase whose flows count under p{p+1} (p0 precedes every boundary).
    tl->annotate(cfg_.soak[p].at, "soak-phase",
                 "p" + std::to_string(p + 1) + ": " + cfg_.soak[p].spec);
  }
}

Fleet::Report Fleet::analyze(const std::vector<i64>& slots) const {
  const runner::TrialGrid g = grid();
  Report report;
  report.phases = cfg_.soak.size() + 1;
  report.total_flows = slots.size();

  const auto candidates = fleet_selector_config().candidates;
  std::vector<strategy::StrategyId> strat_ids;
  strat_ids.push_back(strategy::StrategyId::kNone);
  for (auto id : candidates) strat_ids.push_back(id);
  std::vector<std::vector<std::size_t>> strat_counts(
      strat_ids.size(), std::vector<std::size_t>(report.phases, 0));
  std::vector<std::size_t> phase_totals(report.phases, 0);

  std::size_t total_success = 0;
  std::size_t total_cache_hits = 0;

  for (std::size_t v = 0; v < vps_.size(); ++v) {
    const std::vector<FlowSpec> schedule =
        build_flow_schedule(cfg_, vps_[v].name);
    VantageReport vr;
    vr.name = vps_[v].name;
    vr.flows = g.trials;

    std::size_t success = 0;
    std::size_t cache_hits = 0;
    // Per server: last exploratory pick index, and whether a cache/store-
    // hit success happened after it (the converged steady state).
    std::vector<int> last_explore(servers_.size(), -1);
    std::vector<char> settled(servers_.size(), 0);
    std::vector<char> touched(servers_.size(), 0);

    for (std::size_t t = 0; t < g.trials; ++t) {
      const i64 slot = slots[v * g.trials + t];
      if (slot < 0) {
        // Hole: the flow never ran (degraded shard / cancelled sweep).
        // Nothing is known about it — keep it out of every rate and out
        // of the convergence state machine.
        ++vr.missing;
        ++report.missing_flows;
        continue;
      }
      const FlowRecord rec = FlowRecord::decode(slot);
      const FlowSpec& flow = schedule[t];
      const auto srv = static_cast<std::size_t>(flow.server);
      touched[srv] = 1;
      if (rec.outcome == exp::Outcome::kSuccess) ++success;
      if (is_cache_source(rec.source)) {
        ++cache_hits;
        if (rec.outcome == exp::Outcome::kSuccess) settled[srv] = 1;
      } else {
        // Any exploratory pick re-opens the server's search.
        last_explore[srv] = flow.index;
        settled[srv] = 0;
      }
      const auto phase = static_cast<std::size_t>(flow.soak_phase + 1);
      ++phase_totals[phase];
      for (std::size_t s = 0; s < strat_ids.size(); ++s) {
        if (strat_ids[s] == rec.strategy) {
          ++strat_counts[s][phase];
          break;
        }
      }
      if (rec.supplier >= 0 &&
          schedule[static_cast<std::size_t>(rec.supplier)].client !=
              flow.client) {
        ++report.cross_client_supplies;
      }
    }

    double converge_sum = 0.0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (!touched[s]) continue;
      ++vr.servers_touched;
      if (settled[s]) {
        ++vr.servers_converged;
        converge_sum += static_cast<double>(last_explore[s] + 1);
      }
    }
    const std::size_t executed = vr.flows - vr.missing;
    vr.success_rate =
        executed > 0 ? static_cast<double>(success) / executed : 0.0;
    vr.cache_hit_rate =
        executed > 0 ? static_cast<double>(cache_hits) / executed : 0.0;
    vr.mean_flows_to_converge =
        vr.servers_converged > 0 ? converge_sum / vr.servers_converged : 0.0;
    total_success += success;
    total_cache_hits += cache_hits;
    report.vantages.push_back(std::move(vr));
  }

  const std::size_t total_executed = report.total_flows - report.missing_flows;
  report.success_rate =
      total_executed > 0
          ? static_cast<double>(total_success) / total_executed
          : 0.0;
  report.cache_hit_rate =
      total_executed > 0
          ? static_cast<double>(total_cache_hits) / total_executed
          : 0.0;
  for (std::size_t s = 0; s < strat_ids.size(); ++s) {
    StrategyShare share;
    share.id = strat_ids[s];
    share.share_by_phase.resize(report.phases, 0.0);
    bool any = false;
    for (std::size_t p = 0; p < report.phases; ++p) {
      if (phase_totals[p] == 0) continue;
      share.share_by_phase[p] =
          static_cast<double>(strat_counts[s][p]) / phase_totals[p];
      if (strat_counts[s][p] > 0) any = true;
    }
    if (any) report.shares.push_back(std::move(share));
  }
  return report;
}

std::string Fleet::Report::render() const {
  std::string out;
  exp::TextTable per_vantage({"Vantage point", "Flows", "Success",
                              "Cache hit", "Converged", "Mean flows to conv"});
  for (const VantageReport& vr : vantages) {
    char conv[32];
    std::snprintf(conv, sizeof(conv), "%d/%d", vr.servers_converged,
                  vr.servers_touched);
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.1f", vr.mean_flows_to_converge);
    // Full-coverage vantages render exactly as before; a vantage with
    // holes shows executed/scheduled so partial coverage is visible in
    // the table itself.
    const std::string flows_cell =
        vr.missing == 0 ? std::to_string(vr.flows)
                        : std::to_string(vr.flows - vr.missing) + "/" +
                              std::to_string(vr.flows);
    per_vantage.add_row({vr.name, flows_cell, exp::pct(vr.success_rate),
                         exp::pct(vr.cache_hit_rate), conv, mean});
  }
  out += per_vantage.render();
  out += "\n";

  std::vector<std::string> headers = {"Strategy share"};
  for (std::size_t p = 0; p < phases; ++p) {
    headers.push_back(p == 0 ? "p0 (clean)" : "p" + std::to_string(p));
  }
  exp::TextTable shares_table(std::move(headers));
  for (const StrategyShare& s : shares) {
    std::vector<std::string> row = {strategy::to_string(s.id)};
    for (double v : s.share_by_phase) row.push_back(exp::pct(v));
    shares_table.add_row(std::move(row));
  }
  out += shares_table.render();

  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "\n%zu flows total: %.1f%% success, %.1f%% cache hits, %d "
                "cross-client supplies\n",
                total_flows, success_rate * 100.0, cache_hit_rate * 100.0,
                cross_client_supplies);
  out += tail;
  if (missing_flows > 0) {
    std::snprintf(tail, sizeof(tail),
                  "PARTIAL COVERAGE: %zu/%zu flows recorded (%zu missing; "
                  "rates are over executed flows only)\n",
                  total_flows - missing_flows, total_flows, missing_flows);
    out += tail;
  }
  return out;
}

void Fleet::rebuild_telemetry(const std::vector<i64>& slots,
                              obs::Timeline* tl) const {
  const runner::TrialGrid g = grid();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
  // run_flow_impl's FleetMetrics binding creates the whole counter family
  // on its first flow, zero-valued members included; a metrics snapshot of
  // the rebuilt registry must list the same names to be byte-identical.
  bool any_recorded = false;
  for (const i64 slot : slots) any_recorded = any_recorded || slot >= 0;
  if (any_recorded) {
    for (const char* name :
         {"fleet.flows", "fleet.flow_success", "fleet.flow_failure1",
          "fleet.flow_failure2", "fleet.flow_trial_error", "fleet.cache_hit",
          "fleet.cross_client_supply", "fleet.fresh_session"}) {
      reg.counter(name);
    }
  }
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    const std::vector<FlowSpec> schedule =
        build_flow_schedule(cfg_, vps_[v].name);
    const obs::TimelineLabels labels{{"vantage", vps_[v].name},
                                     {"vantage_index", std::to_string(v)}};
    for (std::size_t t = 0; t < g.trials && t < schedule.size(); ++t) {
      const i64 slot = slots[v * g.trials + t];
      if (slot < 0) continue;  // hole: nothing was published for it
      const FlowRecord rec = FlowRecord::decode(slot);
      const FlowSpec& flow = schedule[t];

      // Mirror of run_flow_impl's metrics block, driven by the record
      // alone (the slots are a sufficient statistic for all of fleet.*).
      reg.counter("fleet.flows").inc();
      switch (rec.outcome) {
        case exp::Outcome::kSuccess:
          reg.counter("fleet.flow_success").inc();
          break;
        case exp::Outcome::kFailure1:
          reg.counter("fleet.flow_failure1").inc();
          break;
        case exp::Outcome::kFailure2:
          reg.counter("fleet.flow_failure2").inc();
          break;
        case exp::Outcome::kTrialError:
          reg.counter("fleet.flow_trial_error").inc();
          break;
      }
      if (cfg_.share != ShareMode::kCold && flow.fresh_session) {
        reg.counter("fleet.fresh_session").inc();
      }
      const bool cache_hit = is_cache_source(rec.source);
      if (cache_hit) reg.counter("fleet.cache_hit").inc();
      const bool cross_client =
          rec.supplier >= 0 &&
          schedule[static_cast<std::size_t>(rec.supplier)].client !=
              flow.client;
      if (cross_client) reg.counter("fleet.cross_client_supply").inc();
      if (rec.source >= 0) {
        reg.counter(std::string("fleet.pick.") +
                    to_string(static_cast<StrategySelector::Choice::Source>(
                        rec.source)))
            .inc();
      }
      reg.counter("fleet.share.p" + std::to_string(flow.soak_phase + 1) +
                  "." + strategy::to_string(rec.strategy))
          .inc();

      if (tl != nullptr) {
        tl->count("fleet.flows", labels, flow.at);
        if (rec.outcome == exp::Outcome::kSuccess) {
          tl->count("fleet.flow_success", labels, flow.at);
        }
        if (cache_hit) tl->count("fleet.cache_hit", labels, flow.at);
        if (cross_client) {
          tl->count("fleet.cross_client_supply", labels, flow.at);
        }
        if (rec.source ==
            static_cast<int>(StrategySelector::Choice::Source::kSafeMode)) {
          tl->count("fleet.safe_mode", labels, flow.at);
        }
        tl->sample("fleet.flow_index", labels, flow.at, flow.index);
      }
    }
  }
}

}  // namespace ys::fleet
