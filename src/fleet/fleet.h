// Deployment-scale multi-client INTANG simulation (§6 as a *population*).
//
// One Fleet object defines a deterministic sweep: per vantage point, a
// population of N simulated INTANG clients draws flows from a seeded
// arrival/churn process (fleet/arrival.h) and multiplexes them over one
// shared virtual timeline — every flow is a pooled-profile Scenario whose
// clock starts at the flow's arrival instant, so TTL-bearing selector
// records age consistently across the whole sweep. Clients on one vantage
// share a snapshot-consistent SharedKvStore (or keep private stores, or
// none, per the cache-sharing mode), which is what converges the
// population onto the best strategy per server.
//
// The sweep rides ys::runner under the hard determinism contract: the grid
// is one chain per vantage (chain_trials), every flow's result encodes
// into one i64 slot (chain-granularity resume via ResultsStore), and
// --jobs=N is bit-identical to serial. replay_flow() rebuilds any chain
// prefix and re-runs one flow traced, with the strategy's supplying flow
// linked via caused_by so `yourstate explain` can attribute a cache hit to
// the flow that wrote the entry.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exp/benchdef.h"
#include "fleet/arrival.h"
#include "fleet/fleet_config.h"
#include "intang/kv_store.h"
#include "intang/selector.h"

namespace ys::obs {
class Timeline;
}

namespace ys::fleet {

class Fleet {
 public:
  /// One flow's outcome, compressed into a results-store slot.
  struct FlowRecord {
    exp::Outcome outcome = exp::Outcome::kTrialError;
    strategy::StrategyId strategy = strategy::StrategyId::kNone;
    /// intang::StrategySelector::Choice::Source as an int; -1 = the flow
    /// made no INTANG pick (should not happen — fleet flows always run
    /// INTANG).
    int source = -1;
    /// Index of the flow whose success wrote the cache entry this flow's
    /// pick came from; -1 when the pick was not a cache/store hit.
    int supplier = -1;

    i64 encode() const;
    static FlowRecord decode(i64 slot);
  };

  /// Everything one vantage chain accumulates across its flows. The sweep
  /// creates one per chain; replay_flow() rebuilds one from scratch.
  struct VantageState {
    FleetConfig const* cfg = nullptr;
    intang::SharedKvStore store;  ///< the vantage's shared strategy cache
    /// Per-client selectors (empty in cold mode — each flow brings its
    /// own). In shared mode they are bound to `store`.
    std::vector<std::unique_ptr<intang::StrategySelector>> selectors;
    std::vector<FlowSpec> schedule;
    /// Per server: index of the last flow whose success wrote the
    /// known-good record (-1 = none yet) — the supplier of later hits.
    std::vector<int> writer;
    /// Series labels for the vantage's timeline producers (vantage name
    /// plus its grid index, so `yourstate report` can emit exact
    /// `explain --vantage=N` coordinates). Built once per chain.
    std::map<std::string, std::string> timeline_labels;
  };

  explicit Fleet(FleetConfig cfg);

  const FleetConfig& config() const { return cfg_; }
  const std::vector<exp::VantagePoint>& vantage_points() const { return vps_; }
  const std::vector<exp::ServerSpec>& server_population() const {
    return servers_;
  }

  /// One chain per vantage: {cells=1, vantages=V, servers=1 (the schedule
  /// carries the real server axis), trials=flows, chain_trials}.
  runner::TrialGrid grid() const;

  /// Fresh chain state for `vantage` (schedule built, stores empty).
  std::unique_ptr<VantageState> make_vantage_state(std::size_t vantage) const;

  /// Run flow `c.trial` of vantage `c.vantage` against the chain state.
  /// Must be called in ascending trial order on one thread (the runner's
  /// chain contract). Publishes fleet.* metrics.
  FlowRecord run_flow(const runner::GridCoord& c, VantageState& state) const;

  /// Traced deterministic re-run of one flow: the chain prefix is replayed
  /// untraced first, then the target flow runs with tracing on and a
  /// caused_by note linking its strategy decision to the supplying flow.
  exp::Replay replay_flow(const runner::GridCoord& c,
                          const std::string& trace_path = {},
                          const std::string& pcap_path = {}) const;

  // ---------------------------------------------------------- analysis
  struct VantageReport {
    std::string name;
    std::size_t flows = 0;
    /// Scheduled flows with no recorded slot (a degraded shard's holes).
    /// Rates below are over *executed* flows, so partial coverage never
    /// deflates them.
    std::size_t missing = 0;
    double success_rate = 0.0;
    /// Fraction of flows whose pick was a cache or store hit.
    double cache_hit_rate = 0.0;
    /// Servers whose population converged: after the server's last
    /// exploratory pick, a cache/store-hit success exists.
    int servers_converged = 0;
    int servers_touched = 0;
    /// Mean index of the last exploratory pick among converged servers —
    /// "flows until the population settled".
    double mean_flows_to_converge = 0.0;
  };

  struct StrategyShare {
    strategy::StrategyId id;
    /// Fraction of flows using the strategy, per soak phase (index 0 =
    /// before any phase / no soak).
    std::vector<double> share_by_phase;
  };

  struct Report {
    std::vector<VantageReport> vantages;
    std::vector<StrategyShare> shares;
    std::size_t phases = 1;
    std::size_t total_flows = 0;
    /// Holes across every vantage (slot value < 0). 0 for a full sweep.
    std::size_t missing_flows = 0;
    double success_rate = 0.0;
    double cache_hit_rate = 0.0;
    int cross_client_supplies = 0;

    /// executed / scheduled; 1.0 for a full sweep.
    double coverage() const {
      return total_flows > 0 ? static_cast<double>(total_flows -
                                                   missing_flows) /
                                   static_cast<double>(total_flows)
                             : 1.0;
    }

    std::string render() const;
  };

  /// Decode a full sweep's slots (grid().total() entries) into the
  /// convergence report. Pure function of the slots — callable on resumed
  /// or freshly-run results alike. A negative slot is a hole (flow never
  /// recorded, e.g. a degraded shard): it is counted as missing and
  /// excluded from every rate, and render() labels the partial coverage.
  Report analyze(const std::vector<i64>& slots) const;

  /// Rebuild the sweep's deterministic telemetry — every pure `fleet.*`
  /// counter and virtual-time timeline series run_flow() publishes — from
  /// recorded slots alone, into the current MetricsRegistry and `tl`.
  /// Holes (negative slots) are skipped. Used by the supervisor's merge
  /// path: the children's registries die with their processes, but the
  /// slots are a sufficient statistic for all of fleet.*, so a supervised
  /// run's merged metrics and timeline digests are byte-identical to an
  /// unsharded run's.
  void rebuild_telemetry(const std::vector<i64>& slots,
                         obs::Timeline* tl = nullptr) const;

  // ------------------------------------------------------- live telemetry
  /// Soak phases the live stats break flows down by (phase indices beyond
  /// this clamp into the last bucket).
  static constexpr std::size_t kMaxLivePhases = 8;

  /// Relaxed atomics bumped by run_flow on whichever worker executes it,
  /// for the stderr heartbeat of long sweeps (bench_fleet --heartbeat).
  /// Monitoring only: nothing reads them back into results, so they sit
  /// outside the determinism contract.
  struct LiveStats {
    std::atomic<u64> flows{0};
    std::atomic<u64> successes{0};
    std::atomic<u64> cache_hits{0};
    std::atomic<u64> phase_flows[kMaxLivePhases] = {};
  };

  const LiveStats& live() const { return live_; }

  /// One-line summary of live(), e.g. "ok 61.8% | cache 40.2% | p1:120
  /// p2:240" — the heartbeat_extra payload for PoolOptions.
  std::string heartbeat_line() const;

  /// Mark the sweep's soak-phase boundaries on a timeline ("soak-phase"
  /// annotations at each phase's start instant). Idempotent (annotations
  /// dedup), no-op on nullptr or a soak-free config.
  void annotate_timeline(obs::Timeline* tl) const;

 private:
  FlowRecord run_flow_impl(const runner::GridCoord& c, VantageState& state,
                           bool tracing, exp::Replay* replay,
                           const std::string& trace_path,
                           const std::string& pcap_path) const;
  exp::ScenarioOptions options_for(const runner::GridCoord& c,
                                   const FlowSpec& flow, bool tracing) const;
  u64 flow_seed(const runner::GridCoord& c, const FlowSpec& flow) const;

  FleetConfig cfg_;
  exp::Calibration cal_;
  gfw::DetectionRules rules_;
  std::vector<exp::VantagePoint> vps_;
  std::vector<exp::ServerSpec> servers_;
  exp::PathProfileCache profiles_;
  mutable LiveStats live_;
};

}  // namespace ys::fleet
