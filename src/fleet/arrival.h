// Seeded arrival and session-churn processes for one vantage point's
// client population.
//
// The whole schedule is a pure function of (fleet seed, vantage name):
// every flow's client, target server, arrival instant, fresh-session flag,
// and soak phase are fixed before the sweep starts. That is what lets the
// runner execute a vantage's flows as one deterministic chain — and lets
// `yourstate explain` rebuild the exact same schedule when replaying one
// flow out of a hundred thousand.
//
// The generator draws from its own salted stream, so trial-level RNG is
// untouched: a fleet-free run of the same seed makes exactly the draws it
// made before this subsystem existed.
#pragma once

#include <string>
#include <vector>

#include "core/clock.h"
#include "core/rng.h"
#include "fleet/fleet_config.h"

namespace ys::fleet {

/// One scheduled flow of a vantage's population.
struct FlowSpec {
  int client = 0;
  int server = 0;
  int index = 0;  ///< position in the vantage's schedule (= trial coord)
  SimTime at;     ///< arrival instant on the sweep's shared timeline
  /// The client's process restarted since its previous flow: its private
  /// LRU memory is gone (persistent store survives per the share mode).
  bool fresh_session = false;
  /// Index into FleetConfig::soak of the phase active at `at`; -1 = none.
  int soak_phase = -1;
};

/// Build the complete flow schedule for one vantage point: `cfg.flows`
/// entries, ordered by arrival time. Clients have heterogeneous activity
/// weights and servers a popularity-skewed draw, so caches see realistic
/// hot/cold key distributions rather than uniform traffic.
std::vector<FlowSpec> build_flow_schedule(const FleetConfig& cfg,
                                          const std::string& vantage_name);

}  // namespace ys::fleet
