// Fleet run description: how many simulated INTANG clients per vantage
// point, how their flows arrive, how sessions churn, how the strategy
// cache is shared, and (optionally) a soak schedule that swaps fault plans
// mid-sweep at virtual-time boundaries.
//
// Parsed from the CLI `--fleet=` value: either an inline ';'-separated
// spec —
//   clients=64;flows=400;servers=8;arrival=20;churn=0.05;share=shared;
//   soak=0s:none,30s:rst-storm
// — or "@file.json" with the same keys (where soak entries may carry full
// inline fault-plan clauses, which the inline grammar cannot express
// because ';' already separates fields).
#pragma once

#include <string>
#include <vector>

#include "core/clock.h"
#include "core/types.h"
#include "faults/fault_plan.h"

namespace ys::fleet {

/// Who sees whose strategy measurements (§6's deployment shapes).
enum class ShareMode : u8 {
  kShared,     ///< one store per vantage, every client reads/writes it
  kPerClient,  ///< each client keeps its own store across sessions
  kCold,       ///< no persistence at all: every flow starts from scratch
};

const char* to_string(ShareMode mode);

/// One soak-schedule phase: from virtual time `at` (on the sweep's shared
/// timeline) the named fault plan applies to newly arriving flows.
struct SoakPhase {
  SimTime at;
  std::string spec;       ///< "none", a shipped plan name, or inline clauses
  faults::FaultPlan plan; ///< parsed; empty() for "none"
};

struct FleetConfig {
  /// Simulated INTANG clients per vantage point.
  int clients = 64;
  /// Flows per vantage point over the whole sweep.
  int flows = 400;
  /// Target server population size.
  int servers = 8;
  /// Vantage points to simulate (0 = all inside-China vantages).
  int vantages = 0;
  /// Mean flow arrivals per virtual second per vantage (Poisson process).
  double arrival_rate = 20.0;
  /// Probability that a client's next flow starts a fresh session (the
  /// process restarted: private LRU memory is lost, persistent store
  /// survives per the share mode).
  double churn = 0.05;
  ShareMode share = ShareMode::kShared;
  u64 seed = 2017;
  /// Soak schedule, sorted by `at`. Empty = fault-free sweep.
  std::vector<SoakPhase> soak;

  /// One-line description for banners.
  std::string summary() const;
  /// Canonical spec string for resume-store signatures: every field that
  /// changes what a slot means.
  std::string signature() const;
};

/// Parse a `--fleet=` value (inline spec or @file.json). On failure
/// returns a default config and sets `error`; on success clears `error`.
FleetConfig parse_fleet_config(const std::string& spec, std::string& error);

}  // namespace ys::fleet
