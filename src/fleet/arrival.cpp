#include "fleet/arrival.h"

#include <cmath>

namespace ys::fleet {

std::vector<FlowSpec> build_flow_schedule(const FleetConfig& cfg,
                                          const std::string& vantage_name) {
  // Distinct salt: the schedule stream is independent of every trial seed,
  // so adding fleet scheduling changes nothing about existing benches.
  Rng rng(Rng::mix_seed({cfg.seed, 0xF1EE7ULL,
                         Rng::hash_label(vantage_name)}));

  // Heterogeneous client activity: weight in [0.1, 1.1) so every client
  // participates but a few dominate, like real per-user traffic.
  std::vector<double> client_weight(static_cast<std::size_t>(cfg.clients));
  double client_total = 0.0;
  for (double& w : client_weight) {
    w = 0.1 + rng.uniform01();
    client_total += w;
  }

  // Popularity-skewed server draw (Zipf-ish 1/(rank+1)): the cache's hot
  // keys concentrate on a few servers, which is exactly the regime where
  // sharing the store pays off.
  std::vector<double> server_weight(static_cast<std::size_t>(cfg.servers));
  double server_total = 0.0;
  for (std::size_t j = 0; j < server_weight.size(); ++j) {
    server_weight[j] = 1.0 / static_cast<double>(j + 1);
    server_total += server_weight[j];
  }

  const auto weighted_pick = [&rng](const std::vector<double>& weights,
                                    double total) {
    double x = rng.uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size() - 1);
  };

  std::vector<FlowSpec> schedule;
  schedule.reserve(static_cast<std::size_t>(cfg.flows));
  std::vector<char> client_seen(static_cast<std::size_t>(cfg.clients), 0);
  SimTime t = SimTime::zero();
  for (int i = 0; i < cfg.flows; ++i) {
    // Poisson arrivals: exponential inter-arrival times at the configured
    // mean rate.
    const double u = rng.uniform01();
    const double gap_sec = -std::log(1.0 - u) / cfg.arrival_rate;
    t = t + SimTime::from_us(static_cast<i64>(gap_sec * 1e6) + 1);

    FlowSpec flow;
    flow.index = i;
    flow.at = t;
    flow.client = weighted_pick(client_weight, client_total);
    flow.server = weighted_pick(server_weight, server_total);
    // Churn applies between consecutive flows of one client; a client's
    // first flow is by definition a fresh session.
    if (client_seen[static_cast<std::size_t>(flow.client)]) {
      flow.fresh_session = cfg.churn > 0.0 && rng.chance(cfg.churn);
    } else {
      flow.fresh_session = true;
      client_seen[static_cast<std::size_t>(flow.client)] = 1;
    }
    // Soak phase: the latest boundary at or before the arrival. Phases are
    // sorted by `at` (parse_fleet_config guarantees it).
    for (std::size_t p = 0; p < cfg.soak.size(); ++p) {
      if (cfg.soak[p].at <= flow.at) flow.soak_phase = static_cast<int>(p);
    }
    schedule.push_back(flow);
  }
  return schedule;
}

}  // namespace ys::fleet
