#include "fleet/fleet_config.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/json.h"

namespace ys::fleet {

namespace {

/// "50ms" / "2s" / "300us" / bare number (= ms) -> SimTime. Same grammar
/// the fault-plan parser uses, so soak boundaries and plan clauses read
/// identically.
bool parse_time(const std::string& text, SimTime& out) {
  if (text.empty()) return false;
  double scale = 1000.0;  // bare numbers are milliseconds
  std::string digits = text;
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return digits.size() > n &&
           digits.compare(digits.size() - n, n, suffix) == 0;
  };
  if (ends_with("us")) {
    scale = 1.0;
    digits.resize(digits.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1000.0;
    digits.resize(digits.size() - 2);
  } else if (ends_with("s")) {
    scale = 1'000'000.0;
    digits.resize(digits.size() - 1);
  }
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || value < 0) return false;
  out = SimTime::from_us(static_cast<i64>(value * scale));
  return true;
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

bool parse_int(const std::string& text, int& out) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_share(const std::string& text, ShareMode& out) {
  if (text == "shared") {
    out = ShareMode::kShared;
  } else if (text == "per-client") {
    out = ShareMode::kPerClient;
  } else if (text == "cold") {
    out = ShareMode::kCold;
  } else {
    return false;
  }
  return true;
}

/// One soak phase "30s:rst-storm". The plan spec must not contain ':' or
/// ',' in the inline grammar, which every shipped name and "none" satisfy.
bool parse_soak_entry(const std::string& text, SoakPhase& out,
                      std::string& error) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    error = "soak phase '" + text + "' is not at:plan";
    return false;
  }
  if (!parse_time(text.substr(0, colon), out.at)) {
    error = "soak phase '" + text + "' has a bad time";
    return false;
  }
  out.spec = text.substr(colon + 1);
  if (out.spec == "none") return true;
  out.plan = faults::parse_fault_plan(out.spec, error);
  return error.empty();
}

bool apply_field(FleetConfig& cfg, const std::string& key,
                 const std::string& value, std::string& error) {
  bool ok = true;
  if (key == "clients") {
    ok = parse_int(value, cfg.clients) && cfg.clients > 0;
  } else if (key == "flows") {
    ok = parse_int(value, cfg.flows) && cfg.flows > 0;
  } else if (key == "servers") {
    ok = parse_int(value, cfg.servers) && cfg.servers > 0;
  } else if (key == "vantages") {
    ok = parse_int(value, cfg.vantages) && cfg.vantages >= 0;
  } else if (key == "arrival") {
    ok = parse_double(value, cfg.arrival_rate) && cfg.arrival_rate > 0;
  } else if (key == "churn") {
    ok = parse_double(value, cfg.churn) && cfg.churn >= 0 && cfg.churn <= 1;
  } else if (key == "share") {
    ok = parse_share(value, cfg.share);
  } else if (key == "seed") {
    char* end = nullptr;
    cfg.seed = std::strtoull(value.c_str(), &end, 10);
    ok = end != value.c_str() && *end == '\0';
  } else if (key == "soak") {
    std::string entry;
    std::vector<std::string> entries;
    for (char c : value) {
      if (c == ',') {
        entries.push_back(entry);
        entry.clear();
      } else {
        entry += c;
      }
    }
    if (!entry.empty()) entries.push_back(entry);
    for (const std::string& e : entries) {
      SoakPhase phase;
      if (!parse_soak_entry(e, phase, error)) return false;
      cfg.soak.push_back(std::move(phase));
    }
  } else {
    error = "unknown fleet field '" + key + "'";
    return false;
  }
  if (!ok) error = "bad fleet value '" + key + "=" + value + "'";
  return ok;
}

FleetConfig parse_json_config(const std::string& path, std::string& error) {
  FleetConfig cfg;
  std::ifstream in(path);
  if (!in) {
    error = "cannot read fleet config file " + path;
    return cfg;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = json::parse(buf.str());
  if (!doc || !doc->is_object()) {
    error = "fleet config file " + path + " is not a JSON object";
    return cfg;
  }
  const auto num_field = [&](const char* key, auto apply) {
    if (const json::Value* v = doc->find(key); v != nullptr) {
      if (!v->is_number()) {
        error = std::string("fleet field '") + key + "' must be a number";
        return false;
      }
      apply(v->number);
    }
    return true;
  };
  if (!num_field("clients", [&](double v) { cfg.clients = static_cast<int>(v); }) ||
      !num_field("flows", [&](double v) { cfg.flows = static_cast<int>(v); }) ||
      !num_field("servers", [&](double v) { cfg.servers = static_cast<int>(v); }) ||
      !num_field("vantages", [&](double v) { cfg.vantages = static_cast<int>(v); }) ||
      !num_field("arrival", [&](double v) { cfg.arrival_rate = v; }) ||
      !num_field("churn", [&](double v) { cfg.churn = v; }) ||
      !num_field("seed", [&](double v) { cfg.seed = static_cast<u64>(v); })) {
    return cfg;
  }
  if (const json::Value* v = doc->find("share"); v != nullptr) {
    if (!v->is_string() || !parse_share(v->string, cfg.share)) {
      error = "fleet field 'share' must be shared | per-client | cold";
      return cfg;
    }
  }
  if (const json::Value* v = doc->find("soak"); v != nullptr) {
    if (!v->is_array()) {
      error = "fleet field 'soak' must be an array of {at, plan}";
      return cfg;
    }
    for (const json::Value& entry : v->array) {
      SoakPhase phase;
      const json::Value* at = entry.find("at");
      const json::Value* plan = entry.find("plan");
      if (at == nullptr || !at->is_string() ||
          !parse_time(at->string, phase.at) || plan == nullptr ||
          !plan->is_string()) {
        error = "soak entries need string fields 'at' and 'plan'";
        return cfg;
      }
      phase.spec = plan->string;
      if (phase.spec != "none") {
        // JSON soak entries may carry full inline clause specs — the ';'
        // and ',' separators are free here.
        phase.plan = faults::parse_fault_plan(phase.spec, error);
        if (!error.empty()) return cfg;
      }
      cfg.soak.push_back(std::move(phase));
    }
  }
  return cfg;
}

}  // namespace

const char* to_string(ShareMode mode) {
  switch (mode) {
    case ShareMode::kShared: return "shared";
    case ShareMode::kPerClient: return "per-client";
    case ShareMode::kCold: return "cold";
  }
  return "?";
}

std::string FleetConfig::summary() const {
  std::string out = std::to_string(clients) + " clients x " +
                    std::to_string(flows) + " flows, " +
                    std::to_string(servers) + " servers, " +
                    to_string(share) + " cache";
  if (!soak.empty()) {
    out += ", soak:";
    for (const SoakPhase& p : soak) {
      out += " " + std::to_string(p.at.us / 1'000'000) + "s:" + p.spec;
    }
  }
  return out;
}

std::string FleetConfig::signature() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "a=%g;c=%g", arrival_rate, churn);
  std::string out = "clients=" + std::to_string(clients) +
                    ";flows=" + std::to_string(flows) +
                    ";servers=" + std::to_string(servers) +
                    ";vantages=" + std::to_string(vantages) + ";" + buf +
                    ";share=" + to_string(share) +
                    ";seed=" + std::to_string(seed);
  for (const SoakPhase& p : soak) {
    out += ";soak=" + std::to_string(p.at.us) + ":" + p.spec;
  }
  return out;
}

FleetConfig parse_fleet_config(const std::string& spec, std::string& error) {
  error.clear();
  if (!spec.empty() && spec[0] == '@') {
    FleetConfig cfg = parse_json_config(spec.substr(1), error);
    if (error.empty()) {
      std::sort(cfg.soak.begin(), cfg.soak.end(),
                [](const SoakPhase& a, const SoakPhase& b) {
                  return a.at < b.at;
                });
    }
    return cfg;
  }
  FleetConfig cfg;
  std::string field;
  std::vector<std::string> fields;
  for (char c : spec) {
    if (c == ';') {
      fields.push_back(field);
      field.clear();
    } else if (c != ' ' && c != '\t') {
      field += c;
    }
  }
  if (!field.empty()) fields.push_back(field);
  for (const std::string& f : fields) {
    if (f.empty()) continue;
    const std::size_t eq = f.find('=');
    if (eq == std::string::npos) {
      error = "fleet field '" + f + "' is not key=value";
      return cfg;
    }
    if (!apply_field(cfg, f.substr(0, eq), f.substr(eq + 1), error)) {
      return cfg;
    }
  }
  std::sort(cfg.soak.begin(), cfg.soak.end(),
            [](const SoakPhase& a, const SoakPhase& b) { return a.at < b.at; });
  return cfg;
}

}  // namespace ys::fleet
