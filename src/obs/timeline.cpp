#include "obs/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace ys::obs {

namespace {

thread_local Timeline* t_current = nullptr;

}  // namespace

const char* to_string(TimelineKind kind) {
  switch (kind) {
    case TimelineKind::kCounter: return "counter";
    case TimelineKind::kGauge: return "gauge";
  }
  return "?";
}

void TimelineValue::fold(const TimelineValue& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  sum += other.sum;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

Timeline::Timeline(SimTime bucket_width) : bucket_width_(bucket_width) {
  if (bucket_width_.us <= 0) {
    throw std::logic_error("Timeline: bucket width must be positive");
  }
}

Timeline* Timeline::current() { return t_current; }

i64 Timeline::bucket_of(SimTime at) const {
  const i64 w = bucket_width_.us;
  i64 q = at.us / w;
  if (at.us % w != 0 && at.us < 0) --q;
  return q;
}

TimelineSeries& Timeline::resolve(const std::string& name,
                                  const TimelineLabels& labels,
                                  TimelineKind kind) {
  auto [it, inserted] =
      series_.try_emplace(TimelineSeriesKey{name, labels});
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::logic_error("Timeline: series '" + name +
                           "' recorded as both counter and gauge");
  }
  return it->second;
}

void Timeline::count(const std::string& name, const TimelineLabels& labels,
                     SimTime at, i64 delta) {
  count_at(name, labels, bucket_of(at), delta);
}

void Timeline::count_at(const std::string& name, const TimelineLabels& labels,
                        i64 bucket, i64 delta) {
  TimelineValue& v =
      resolve(name, labels, TimelineKind::kCounter).buckets[bucket];
  TimelineValue d;
  d.sum = delta;
  d.count = 1;
  d.min = delta;
  d.max = delta;
  v.fold(d);
}

void Timeline::sample(const std::string& name, const TimelineLabels& labels,
                      SimTime at, i64 value) {
  sample_at(name, labels, bucket_of(at), value);
}

void Timeline::sample_at(const std::string& name, const TimelineLabels& labels,
                         i64 bucket, i64 value) {
  TimelineValue& v =
      resolve(name, labels, TimelineKind::kGauge).buckets[bucket];
  TimelineValue d;
  d.sum = value;
  d.count = 1;
  d.min = value;
  d.max = value;
  v.fold(d);
}

void Timeline::annotate(SimTime at, const std::string& category,
                        const std::string& text) {
  annotate_bucket(bucket_of(at), category, text);
}

void Timeline::annotate_bucket(i64 bucket, const std::string& category,
                               const std::string& text) {
  annotations_.insert(TimelineAnnotation{bucket, category, text});
}

void Timeline::merge_from(const Timeline& other) {
  if (other.bucket_width_ != bucket_width_) {
    throw std::logic_error("Timeline: cannot merge different bucket widths");
  }
  for (const auto& [key, src] : other.series_) {
    auto [it, inserted] = series_.try_emplace(key);
    TimelineSeries& dst = it->second;
    if (inserted) {
      dst.kind = src.kind;
    } else if (dst.kind != src.kind) {
      throw std::logic_error("Timeline: merge kind mismatch for series '" +
                             key.name + "'");
    }
    for (const auto& [bucket, value] : src.buckets) {
      dst.buckets[bucket].fold(value);
    }
  }
  annotations_.insert(other.annotations_.begin(), other.annotations_.end());
}

ScopedTimeline::ScopedTimeline(Timeline* timeline) : previous_(t_current) {
  t_current = timeline;
}

ScopedTimeline::~ScopedTimeline() { t_current = previous_; }

u64 timeline_digest(const Timeline& tl,
                    const std::vector<std::string>& exclude_prefixes) {
  constexpr u64 kOffset = 1469598103934665603ull;
  constexpr u64 kPrime = 1099511628211ull;
  u64 h = kOffset;
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
  };
  auto mix_str = [&mix](const std::string& s) {
    mix(s.data(), s.size());
    const char sep = '\x1f';
    mix(&sep, 1);
  };
  auto mix_i64 = [&mix](i64 v) { mix(&v, sizeof(v)); };

  mix_i64(tl.bucket_width().us);
  for (const auto& [key, series] : tl.series()) {
    const auto excluded = [&key](const std::string& prefix) {
      return key.name.rfind(prefix, 0) == 0;
    };
    if (std::any_of(exclude_prefixes.begin(), exclude_prefixes.end(),
                    excluded)) {
      continue;
    }
    mix_str(key.name);
    for (const auto& [k, v] : key.labels) {
      mix_str(k);
      mix_str(v);
    }
    mix_i64(static_cast<i64>(series.kind));
    for (const auto& [bucket, value] : series.buckets) {
      mix_i64(bucket);
      mix_i64(value.sum);
      mix_i64(static_cast<i64>(value.count));
      mix_i64(value.min);
      mix_i64(value.max);
    }
  }
  for (const auto& a : tl.annotations()) {
    mix_i64(a.bucket);
    mix_str(a.category);
    mix_str(a.text);
  }
  return h;
}

}  // namespace ys::obs
