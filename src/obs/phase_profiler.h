// ys::obs::perf — deterministic phase profiler.
//
// Scoped wall-clock timers aggregated *per phase name, per thread*: each
// thread owns a private accumulation table (no locks on the hot path —
// the global registry mutex is only taken once per thread, at first use),
// and snapshots merge the tables after workers have joined. "Deterministic"
// here means the profiler never perturbs results: it reads the clock and
// bumps thread-private integers, nothing a trial's outcome can observe.
//
// Granularity: flow/trial-level phases (scenario construction, trial
// execution, a fleet flow), not per-packet — two steady_clock reads per
// phase are ~50 ns against millisecond trials, comfortably inside the obs
// layer's <5% overhead budget (bench_obs_overhead gates it).
//
// The per-thread tables become:
//   * per-phase wall totals in every BenchReport ("phases"),
//   * a Chrome-trace "flamegraph" track per runner worker
//     (write_phase_trace, --phase-trace=FILE on every bench) that renders
//     alongside the causal trace in chrome://tracing / Perfetto.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "core/types.h"

namespace ys::obs::perf {

struct PhaseAgg {
  u64 count = 0;
  u64 wall_ns = 0;
};

/// Aggregated phases of one thread (label set via set_thread_label; the
/// runner labels its workers "worker N", everything else is "main").
struct ThreadPhases {
  std::string label;
  std::map<std::string, PhaseAgg> phases;
};

class PhaseProfiler {
 public:
  /// Runtime kill switch (on by default); record() becomes a no-op when
  /// off. Like the metrics switch, flip only from the orchestrating
  /// thread while no workers run.
  static bool enabled();
  static void set_enabled(bool on);

  /// Add one timed section to this thread's table. `name` must be a
  /// literal or otherwise outlive the process (tables key the pointer's
  /// characters, copied on first use per thread).
  static void record(const char* name, u64 wall_ns);

  /// Label this thread's table in per-thread exports ("worker 3").
  static void set_thread_label(const std::string& label);

  /// Merged view across every thread that ever recorded (phase name ->
  /// totals). Call after worker threads have joined — per-thread tables
  /// are owner-written without synchronization.
  static std::map<std::string, PhaseAgg> snapshot();

  /// Per-thread tables (label order: registration order). Same join
  /// caveat as snapshot().
  static std::vector<ThreadPhases> by_thread();

  /// Zero every table (between bench sections). Registrations survive.
  static void reset();
};

/// RAII phase timer.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhase() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    PhaseProfiler::record(name_, static_cast<u64>(ns));
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Write every thread's phase table as Chrome trace-event JSON: one
/// synthetic track (tid) per thread, phases laid end-to-end as complete
/// ("X") events — a flamegraph-style summary, not a timeline.
bool write_phase_trace(const std::string& path);

}  // namespace ys::obs::perf
