#include "obs/alloc_hook.h"

#include <cstdlib>
#include <new>

// Sanitizer detection: gcc defines __SANITIZE_*__; clang speaks
// __has_feature. The overrides are compiled out under either sanitizer —
// ASan/TSan interpose operator new themselves and must keep doing so for
// their poisoning/race bookkeeping to work.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define YS_ALLOC_HOOK_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define YS_ALLOC_HOOK_ACTIVE 0
#else
#define YS_ALLOC_HOOK_ACTIVE 1
#endif
#else
#define YS_ALLOC_HOOK_ACTIVE 1
#endif

namespace ys::obs::perf {

namespace {
// Trivially-initialized thread locals: safe to touch from operator new
// even during thread setup (no dynamic initialization, no allocation).
thread_local u64 t_alloc_count = 0;
thread_local u64 t_alloc_bytes = 0;
}  // namespace

bool alloc_hook_available() { return YS_ALLOC_HOOK_ACTIVE != 0; }

AllocCounters thread_alloc_counters() {
  return AllocCounters{t_alloc_count, t_alloc_bytes};
}

namespace detail {
inline void note_alloc(std::size_t size) {
  ++t_alloc_count;
  t_alloc_bytes += size;
}
}  // namespace detail

}  // namespace ys::obs::perf

#if YS_ALLOC_HOOK_ACTIVE

namespace {

void* counted_alloc(std::size_t size) {
  ys::obs::perf::detail::note_alloc(size);
  // malloc(0) may return null; operator new must not.
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ys::obs::perf::detail::note_alloc(size);
  // aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ys::obs::perf::detail::note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ys::obs::perf::detail::note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // YS_ALLOC_HOOK_ACTIVE
