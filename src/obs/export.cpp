#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace ys::obs {

namespace {

/// Shortest round-trippable rendering of a double that is valid JSON (no
/// bare "inf"/"nan"; those become null, which JSON consumers can detect).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips but is ugly for the common integral values.
  if (v == static_cast<double>(static_cast<i64>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_table(const Snapshot& snap) {
  std::string out;
  char line[160];
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(line, sizeof(line), "%-44s counter   %12llu\n",
                  name.c_str(), static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(line, sizeof(line), "%-44s gauge     %12.3f\n",
                  name.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-44s histogram %12llu  sum=%.1f  p50=%.1f  p95=%.1f  "
                  "p99=%.1f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum, h.percentile(0.50), h.percentile(0.95),
                  h.percentile(0.99));
    out += line;
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) +
           "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json_number(h.sum) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace ys::obs
