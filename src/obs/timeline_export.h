// Exporters and loader for ys::obs::Timeline.
//
// JSON schema "ys.timeline.v1":
//   {
//     "schema": "ys.timeline.v1",
//     "bucket_us": 1000000,
//     "series": [
//       { "name": "fleet.flows", "labels": {"vantage": "beijing"},
//         "kind": "counter",
//         "points": [ {"bucket": 0, "sum": 12, "count": 12,
//                      "min": 1, "max": 1}, ... ] }
//     ],
//     "annotations": [ {"bucket": 2, "category": "soak-phase",
//                       "text": "p1: rst-storm"}, ... ]
//   }
// Everything numeric is an integer (see timeline.h on determinism); the
// file is canonical — series sorted by (name, labels), points by bucket —
// so byte-comparing two exports is a determinism check.
//
// The CSV flattens to one row per (series, bucket):
//   name,labels,kind,bucket,bucket_start_us,sum,count,min,max
//
// TimelineDoc is the parsed form consumed by `yourstate report`,
// timeline_lint, and the tests.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace ys::obs {

std::string timeline_to_json(const Timeline& tl);
std::string timeline_to_csv(const Timeline& tl);

bool write_timeline_json(const std::string& path, const Timeline& tl);
bool write_timeline_csv(const std::string& path, const Timeline& tl);

struct TimelineDoc {
  struct Point {
    i64 bucket = 0;
    i64 sum = 0;
    u64 count = 0;
    i64 min = 0;
    i64 max = 0;
  };
  struct Series {
    std::string name;
    std::map<std::string, std::string> labels;
    std::string kind;  // "counter" | "gauge"
    std::vector<Point> points;
  };
  struct Annotation {
    i64 bucket = 0;
    std::string category;
    std::string text;
  };

  i64 bucket_us = 0;
  std::vector<Series> series;
  std::vector<Annotation> annotations;

  /// Sum of `sum` across every bucket of every series with this name
  /// (all label sets) — the aggregate a counter's metrics twin reports.
  i64 total(const std::string& name) const;
};

/// Parse a "ys.timeline.v1" JSON document; on failure returns nullopt and,
/// when `error` is non-null, a one-line reason.
std::optional<TimelineDoc> parse_timeline_json(const std::string& text,
                                               std::string* error);
std::optional<TimelineDoc> load_timeline_file(const std::string& path,
                                              std::string* error);

}  // namespace ys::obs
