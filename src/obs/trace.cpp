#include "obs/trace.h"

#include <cstdio>

namespace ys::obs {

void TraceRecorder::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::vector<TraceEvent> kept = events();
  if (kept.size() > capacity) {
    dropped_ += kept.size() - capacity;
    kept.erase(kept.begin(),
               kept.begin() + static_cast<long>(kept.size() - capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(kept);
  head_ = 0;
}

std::string TraceRecorder::render() const {
  std::string out;
  char head[96];
  if (dropped_ > 0) {
    std::snprintf(head, sizeof(head),
                  "... %llu earlier events evicted (capacity %zu) ...\n",
                  static_cast<unsigned long long>(dropped_), capacity_);
    out += head;
  }
  for (const auto& e : events()) {
    std::snprintf(head, sizeof(head), "%10.6fs  %-12s %-7s ",
                  e.at.seconds(), e.actor.c_str(), e.kind.c_str());
    out += head;
    out += e.detail;
    out += '\n';
  }
  return out;
}

}  // namespace ys::obs
