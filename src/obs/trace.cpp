#include "obs/trace.h"

#include <cstdio>

#include "core/log.h"
#include "obs/metrics.h"

namespace ys::obs {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kSend: return "send";
    case TraceKind::kRecv: return "recv";
    case TraceKind::kInject: return "inject";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kExpire: return "expire";
    case TraceKind::kLoss: return "loss";
    case TraceKind::kState: return "state";
    case TraceKind::kIgnore: return "ignore";
    case TraceKind::kDecision: return "decide";
    case TraceKind::kNote: return "note";
    case TraceKind::kFault: return "fault";
  }
  return "?";
}

const char* to_string(GfwState s) {
  switch (s) {
    case GfwState::kNone: return "none";
    case GfwState::kEstablished: return "established";
    case GfwState::kResync: return "resync";
    case GfwState::kGone: return "gone";
  }
  return "?";
}

const char* to_string(GfwBehavior b) {
  switch (b) {
    case GfwBehavior::kNone: return "none";
    case GfwBehavior::kB1CreateOnSyn: return "tcb-create-on-syn";
    case GfwBehavior::kB1CreateOnSynAck: return "HB1-create-on-synack";
    case GfwBehavior::kB2aMultipleSyn: return "HB2a-multiple-syn-resync";
    case GfwBehavior::kB2bMultipleSynAck: return "HB2b-multiple-synack-resync";
    case GfwBehavior::kB2cSynAckAckMismatch:
      return "HB2c-synack-ack-mismatch-resync";
    case GfwBehavior::kB3RstResync: return "HB3-rst-resync";
    case GfwBehavior::kRstTeardown: return "rst-teardown";
    case GfwBehavior::kFinTeardown: return "fin-teardown";
    case GfwBehavior::kResyncReanchor: return "resync-reanchor";
    case GfwBehavior::kDetection: return "detection";
    case GfwBehavior::kDetectionMissed: return "detection-missed";
    case GfwBehavior::kBlockPeriod: return "block-period";
    case GfwBehavior::kIpBlock: return "ip-block";
  }
  return "?";
}

namespace {
struct TraceMetrics {
  Counter& dropped;
};
TraceMetrics& trace_metrics() {
  return bind_per_thread<TraceMetrics>([](MetricsRegistry& reg) {
    return TraceMetrics{reg.counter("obs.trace.dropped")};
  });
}
}  // namespace

void TraceRecorder::evict_note() {
  ++dropped_;
  trace_metrics().dropped.inc();
  if (!warned_overflow_) {
    warned_overflow_ = true;
    YS_LOG(LogLevel::kWarn,
           "trace ring overflowed (capacity " + std::to_string(capacity_) +
               "); oldest events are being evicted — see obs.trace.dropped");
  }
}

u64 TraceRecorder::record(TraceEvent ev) {
  ev.id = next_id_++;
  if (ev.packet.id != 0) packet_index_[ev.packet.id] = ev.id;
  if (ev.kind == TraceKind::kDecision) last_decision_ = ev.id;
  const u64 id = ev.id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return id;
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  evict_note();
  return id;
}

u64 TraceRecorder::note(SimTime at, std::string actor, TraceKind kind,
                        std::string detail, u64 caused_by) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.actor = std::move(actor);
  ev.detail = std::move(detail);
  ev.caused_by = caused_by;
  return record(std::move(ev));
}

u64 TraceRecorder::event_for_packet(u64 packet_id) const {
  auto it = packet_index_.find(packet_id);
  return it == packet_index_.end() ? 0 : it->second;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::vector<TraceEvent> kept = events();
  if (kept.size() > capacity) {
    dropped_ += kept.size() - capacity;
    kept.erase(kept.begin(),
               kept.begin() + static_cast<long>(kept.size() - capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(kept);
  head_ = 0;
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  warned_overflow_ = false;
  next_id_ = 1;
  last_decision_ = 0;
  packet_index_.clear();
}

std::string TraceRecorder::render() const {
  std::string out;
  char head[128];
  if (dropped_ > 0) {
    std::snprintf(head, sizeof(head),
                  "... %llu earlier events evicted (capacity %zu) ...\n",
                  static_cast<unsigned long long>(dropped_), capacity_);
    out += head;
  }
  for (const auto& e : events()) {
    std::snprintf(head, sizeof(head), "#%-5llu %10.6fs  %-12s %-7s ",
                  static_cast<unsigned long long>(e.id), e.at.seconds(),
                  e.actor.c_str(), to_string(e.kind));
    out += head;
    out += e.detail;
    if (e.gfw.valid()) {
      out += "  [";
      out += to_string(e.gfw.behavior);
      out += ": ";
      out += to_string(e.gfw.from);
      out += " -> ";
      out += to_string(e.gfw.to);
      out += ']';
    }
    if (e.caused_by != 0) {
      std::snprintf(head, sizeof(head), "  <= #%llu",
                    static_cast<unsigned long long>(e.caused_by));
      out += head;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ys::obs
