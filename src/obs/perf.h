// ys::obs::perf — performance telemetry: machine-readable bench reports,
// regression diffing, and the glue that turns a metrics snapshot into a
// perf trajectory the repo can track across commits.
//
// The centerpiece is BenchReport, a versioned JSON document every bench
// binary can emit via --report=<file.json> (bench/bench_common.h wires the
// flag). A report captures:
//
//   * an environment fingerprint (OS, compiler, build flavor, sanitizers,
//     hardware concurrency) so a diff can warn when two reports were not
//     measured on comparable setups;
//   * the bench configuration (seed, jobs, trials, servers, ...);
//   * wall time and a flat `metrics` map of named scalar results, each
//     tagged with a unit and a direction (higher-better / lower-better /
//     informational) — the diffable surface;
//   * per-phase wall-time totals from the PhaseProfiler (obs/
//     phase_profiler.h);
//   * the full merged metrics snapshot, for forensic drill-down.
//
// diff_reports() compares two reports metric-by-metric with a relative
// tolerance band and renders the regression table behind
// `yourstate perf --diff old.json new.json [--check]`. Committed baselines
// (BENCH_fleet.json, BENCH_runner_scaling.json at the repo root) plus the
// bench_fleet_perf_check ctest gate give the zero-copy-arena work on the
// ROADMAP its required before/after trajectory.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ys::obs::perf {

/// Which way a metric is allowed to move before the diff calls it a
/// regression.
enum class Direction {
  kHigherIsBetter,  // throughput-style (flows/s, speedup)
  kLowerIsBetter,   // cost-style (wall seconds, allocs/flow)
  kInfo,            // recorded and diffed for display, never gated
};

struct MetricValue {
  double value = 0.0;
  std::string unit;  // "flows/s", "s", "allocs", ... (display only)
  Direction direction = Direction::kInfo;
};

/// One phase's aggregate across all threads (see obs/phase_profiler.h).
struct PhaseTotal {
  std::string name;
  u64 count = 0;
  double wall_us = 0.0;
};

/// Versioned machine-readable bench result. `schema` bumps on any
/// incompatible layout change; from_json rejects documents from the
/// future so a stale binary never silently misreads a newer report.
struct BenchReport {
  static constexpr int kSchema = 1;

  int schema = kSchema;
  std::string name;                          // "fleet", "table1", ...
  std::map<std::string, std::string> env;    // environment fingerprint
  std::map<std::string, double> config;      // seed, jobs, trials, ...
  double wall_seconds = 0.0;                 // measured-section wall time
  std::map<std::string, MetricValue> metrics;
  std::vector<PhaseTotal> phases;            // name-sorted on emission
  Snapshot snapshot;                         // full merged metrics

  std::string to_json() const;

  /// Parse a report; std::nullopt (and a message in *error) on syntax or
  /// schema problems.
  static std::optional<BenchReport> from_json(const std::string& text,
                                              std::string* error);

  bool write(const std::string& path) const;
  static std::optional<BenchReport> load(const std::string& path,
                                         std::string* error);
};

/// A report skeleton with the environment fingerprint filled in.
BenchReport make_report(const std::string& name);

// ------------------------------------------------------------------ diff

enum class DiffStatus {
  kOk,          // within the tolerance band
  kImproved,    // moved beyond tolerance in the good direction
  kRegressed,   // moved beyond tolerance in the bad direction
  kInfo,        // informational metric, never gated
  kMissingOld,  // only the new report has it (not a failure)
  kMissingNew,  // the new report dropped it (a failure under --check)
};

const char* to_string(DiffStatus s);

struct DiffRow {
  std::string metric;
  std::string unit;
  Direction direction = Direction::kInfo;
  double old_value = 0.0;
  double new_value = 0.0;
  /// Relative change (new - old) / |old|; 0 when old == 0.
  double delta = 0.0;
  /// The tolerance band this row was gated against (per-metric override or
  /// the global value; 0 for rows that were never gated).
  double tolerance = 0.0;
  DiffStatus status = DiffStatus::kOk;
};

struct DiffResult {
  std::vector<DiffRow> rows;  // name-sorted
  int regressions = 0;        // kRegressed + kMissingNew
  int improvements = 0;
  /// Environment keys whose values differ between the two reports —
  /// printed as a caveat, since cross-machine wall-time comparisons are
  /// only indicative.
  std::vector<std::string> env_mismatches;

  /// Aligned regression table plus the env caveat, ready to print.
  std::string render() const;
  /// Machine-readable form of the same table (`yourstate perf --diff
  /// --json`): rows with metric/unit/direction/old/new/delta/tolerance/
  /// status, plus the summary counts — for CI dashboards that track the
  /// regression table across commits.
  std::string to_json() const;
  bool ok() const { return regressions == 0; }
};

/// Compare two reports' metric maps. `tolerance` is the allowed relative
/// worsening (0.10 = 10%): a gated metric regresses when it moves more
/// than that in its bad direction, improves when it moves more than that
/// in its good direction, and is kOk in between. Gated metrics present in
/// `old_report` but absent from `new_report` count as regressions.
/// `tolerance_overrides` tightens (or loosens) the band per metric name —
/// deterministic metrics (e.g. the fleet bench's allocs_per_trial) can be
/// gated near-exactly while wall-clock metrics keep a generous band.
DiffResult diff_reports(const BenchReport& old_report,
                        const BenchReport& new_report, double tolerance,
                        const std::map<std::string, double>& tolerance_overrides);
DiffResult diff_reports(const BenchReport& old_report,
                        const BenchReport& new_report, double tolerance);

}  // namespace ys::obs::perf
