#include "obs/phase_profiler.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace ys::obs::perf {

namespace {

std::atomic<bool> g_phases_enabled{true};

/// Global registry of per-thread tables. Threads come and go (the runner
/// spawns fresh workers every run), so the registry holds shared_ptrs that
/// outlive their owning threads; tables are merged by label at snapshot
/// time. Guarded by g_tables_mu for registration and snapshotting; the
/// owning thread mutates its table without the lock (snapshots promise to
/// run only after workers joined).
std::mutex g_tables_mu;
std::vector<std::shared_ptr<ThreadPhases>>& tables() {
  static auto* t = new std::vector<std::shared_ptr<ThreadPhases>>();
  return *t;
}

ThreadPhases& local_table() {
  thread_local std::shared_ptr<ThreadPhases> table = [] {
    auto t = std::make_shared<ThreadPhases>();
    t->label = "main";
    std::lock_guard<std::mutex> lock(g_tables_mu);
    tables().push_back(t);
    return t;
  }();
  return *table;
}

}  // namespace

bool PhaseProfiler::enabled() {
  return g_phases_enabled.load(std::memory_order_relaxed);
}

void PhaseProfiler::set_enabled(bool on) {
  g_phases_enabled.store(on, std::memory_order_relaxed);
}

void PhaseProfiler::record(const char* name, u64 wall_ns) {
  if (!enabled()) return;
  PhaseAgg& agg = local_table().phases[name];
  ++agg.count;
  agg.wall_ns += wall_ns;
}

void PhaseProfiler::set_thread_label(const std::string& label) {
  local_table().label = label;
}

std::map<std::string, PhaseAgg> PhaseProfiler::snapshot() {
  std::map<std::string, PhaseAgg> merged;
  std::lock_guard<std::mutex> lock(g_tables_mu);
  for (const auto& table : tables()) {
    for (const auto& [name, agg] : table->phases) {
      PhaseAgg& m = merged[name];
      m.count += agg.count;
      m.wall_ns += agg.wall_ns;
    }
  }
  return merged;
}

std::vector<ThreadPhases> PhaseProfiler::by_thread() {
  std::vector<ThreadPhases> out;
  std::lock_guard<std::mutex> lock(g_tables_mu);
  out.reserve(tables().size());
  for (const auto& table : tables()) {
    if (!table->phases.empty()) out.push_back(*table);
  }
  return out;
}

void PhaseProfiler::reset() {
  std::lock_guard<std::mutex> lock(g_tables_mu);
  for (const auto& table : tables()) table->phases.clear();
}

bool write_phase_trace(const std::string& path) {
  const std::vector<ThreadPhases> threads = PhaseProfiler::by_thread();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\": [\n", f);
  bool first = true;
  int tid = 0;
  for (const ThreadPhases& t : threads) {
    std::fprintf(f,
                 "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", tid, t.label.c_str());
    first = false;
    double at_us = 0.0;
    for (const auto& [name, agg] : t.phases) {
      const double dur_us = static_cast<double>(agg.wall_ns) / 1000.0;
      std::fprintf(f,
                   ",\n{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                   "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
                   "\"args\": {\"count\": %llu}}",
                   name.c_str(), tid, at_us, dur_us,
                   static_cast<unsigned long long>(agg.count));
      at_us += dur_us;
    }
    ++tid;
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace ys::obs::perf
