// ys::obs — process-wide metrics for the simulated GFW ecosystem.
//
// Design goals, in order:
//   1. Hot-path updates must be a load, an add, and a store — components
//      resolve their Counter/Gauge/Histogram once (constructor or
//      function-local static) and then bump a stable reference.
//   2. Snapshots are deep copies, so exporters and tests never observe a
//      half-updated registry, and `reset_all()` gives per-trial isolation
//      without invalidating any held reference.
//   3. The whole layer can be compiled out (-DYS_OBS_DISABLE) or switched
//      off at runtime (`set_metrics_enabled(false)`) to measure its own
//      overhead (bench/bench_obs_overhead.cpp).
//
// Naming convention: `component.noun_verb` (e.g. "gfw.tcb_create",
// "tcpstack.segment_in", "netsim.packet_delivered"). Dynamic suffixes are
// dot-separated ("tcpstack.ignored.bad-checksum").
//
// Threading model: a registry is NOT internally synchronized. The rule the
// whole codebase follows is "one registry per thread": code always resolves
// metrics through MetricsRegistry::current(), which returns the process
// registry unless the thread carries a ScopedMetricsRegistry override. The
// ys::runner worker threads install an override around every task, so
// hot-path updates land in worker-private registries and are folded into
// the orchestrating thread's registry afterwards via merge_from() — the
// process-global registry is only ever touched from the orchestrating
// thread. Components cache resolved metric references per thread through
// bind_per_thread() below, which also rebinds them whenever the thread's
// current() registry changes.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace ys::obs {

/// Runtime kill switch. Metric *updates* become no-ops when disabled;
/// registration, snapshotting and resets still work.
bool metrics_enabled();
void set_metrics_enabled(bool on);

#if defined(YS_OBS_DISABLE)
#define YS_OBS_UPDATES_ENABLED() false
#else
#define YS_OBS_UPDATES_ENABLED() (::ys::obs::metrics_enabled())
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(u64 n = 1) {
    if (YS_OBS_UPDATES_ENABLED()) value_ += n;
  }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

  /// Fold another registry's observations in (snapshot merging). Unlike
  /// inc(), this is bookkeeping, not a measurement: it bypasses the
  /// runtime kill switch.
  void merge_add(u64 n) { value_ += n; }

 private:
  u64 value_ = 0;
};

/// A value that can go up and down (queue depths, rates, high-water marks).
class Gauge {
 public:
  void set(double v) {
    if (YS_OBS_UPDATES_ENABLED()) value_ = v;
  }
  void add(double d) {
    if (YS_OBS_UPDATES_ENABLED()) value_ += d;
  }
  /// Keep the maximum of the current value and `v` (high-water mark).
  void max_of(double v) {
    if (YS_OBS_UPDATES_ENABLED() && v > value_) value_ = v;
  }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

  /// Merge policy for gauges is max: every cross-registry gauge in the
  /// codebase is a high-water mark or a 0/1 flag, and max is the only
  /// associative, commutative fold that is correct for both — so merge
  /// order can never change a merged snapshot. Bypasses the kill switch.
  void merge_max(double v) {
    if (v > value_) value_ = v;
  }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket `i` counts observations with
/// `v <= bounds[i]` (and greater than the previous bound); one implicit
/// overflow bucket catches everything above the last bound, so
/// `bucket_counts().size() == bounds().size() + 1`.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        counts_(bounds_.size() + 1, 0) {}

  void observe(double v) {
    if (!YS_OBS_UPDATES_ENABLED()) return;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
  }

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<u64>& bucket_counts() const { return counts_; }

  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
  }

  /// Bucket-wise fold of another histogram's state. The source must have
  /// identical bounds (all registration sites use fixed per-name bounds,
  /// so a mismatch is a programming error and throws). Bypasses the kill
  /// switch.
  void merge(const struct HistogramSnapshot& other);

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<u64> counts_;     // bounds_.size() + 1 (overflow last)
  u64 count_ = 0;
  double sum_ = 0.0;
};

/// `factor`-spaced exponential upper bounds starting at `start` — the
/// default shape for microsecond latency histograms.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<u64> counts;
  u64 count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank; the first bucket interpolates from 0
  /// and the overflow bucket clamps to the last bound (the histogram does
  /// not know its true maximum). 0 for an empty histogram. Resolution is
  /// bucket-limited — exact values need finer bounds, not a better
  /// estimator.
  double percentile(double q) const;
};

/// Deep copy of every metric at one instant, sorted by name.
struct Snapshot {
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named metric registry. Get-or-create: the first call registers, later
/// calls with the same name return the same object (stable address for the
/// registry's lifetime — `reset_all()` zeroes values but never removes a
/// metric). Registering a name that already exists with a *different* kind
/// is a programming error and throws std::logic_error; a histogram
/// re-registered with different bounds keeps the first registration's
/// bounds (first writer wins).
class MetricsRegistry {
 public:
  MetricsRegistry();

  /// The process-wide registry. Must only be mutated from the
  /// orchestrating thread; worker threads publish into their own registry
  /// via current() + ScopedMetricsRegistry.
  static MetricsRegistry& global();

  /// The registry this thread publishes into: the innermost
  /// ScopedMetricsRegistry override, or global() when none is installed.
  /// Every instrumentation site resolves through this.
  static MetricsRegistry& current();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = exponential_buckets(
                           1.0, 4.0, 12));

  bool contains(const std::string& name) const {
    return slots_.find(name) != slots_.end();
  }
  std::size_t size() const { return slots_.size(); }

  /// Process-unique, never-reused identity of this registry instance.
  /// Caches key on this rather than the address: a short-lived registry's
  /// storage can be reused for a successor at the same address, which a
  /// pointer compare cannot distinguish.
  u64 uid() const { return uid_; }

  /// Zero every metric (between trials); registrations survive.
  void reset_all();

  Snapshot snapshot() const;

  /// Fold a snapshot of another registry into this one: counters and
  /// histograms add, gauges take the max (see the per-kind merge methods
  /// for why those folds are the deterministic ones). Metrics absent here
  /// are registered on the fly, so merging into a fresh registry
  /// reproduces the source. Associative and commutative: merging worker
  /// snapshots in any order yields the same registry state.
  void merge_from(const Snapshot& snap);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& find_or_create(const std::string& name, Kind kind);

  const u64 uid_;

  // std::map keeps iteration (and thus every exporter) name-sorted and
  // deterministic; pointers to mapped values are stable across inserts.
  std::map<std::string, Slot> slots_;
};

/// RAII thread-local registry override: while alive, every
/// MetricsRegistry::current() resolution on this thread lands in
/// `registry`. Nests (the previous override is restored on destruction).
/// The ys::runner workers wrap each worker's lifetime in one of these so
/// per-packet instrumentation never touches the process registry.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();

  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Per-thread cache of a component's resolved metric handles (a struct of
/// Counter& / Gauge& / Histogram& members). Returns the handles bound to
/// the thread's current() registry, re-resolving through `make(registry)`
/// only when the registry changed — one pointer compare on the hot path.
/// This keeps design goal 1 (resolve once, bump a stable reference) while
/// staying correct on threads that switch registries mid-life: a plain
/// `static thread_local` cache would keep dangling references into a
/// ScopedMetricsRegistry's registry after it is destroyed.
template <typename Handles, typename Factory>
Handles& bind_per_thread(Factory&& make) {
  thread_local u64 bound_uid = 0;  // no registry has uid 0
  thread_local std::optional<Handles> handles;
  MetricsRegistry& reg = MetricsRegistry::current();
  if (bound_uid != reg.uid()) {
    handles.emplace(make(reg));
    bound_uid = reg.uid();
  }
  return *handles;
}

}  // namespace ys::obs
