// ys::obs — process-wide metrics for the simulated GFW ecosystem.
//
// Design goals, in order:
//   1. Hot-path updates must be a load, an add, and a store — components
//      resolve their Counter/Gauge/Histogram once (constructor or
//      function-local static) and then bump a stable reference.
//   2. Snapshots are deep copies, so exporters and tests never observe a
//      half-updated registry, and `reset_all()` gives per-trial isolation
//      without invalidating any held reference.
//   3. The whole layer can be compiled out (-DYS_OBS_DISABLE) or switched
//      off at runtime (`set_metrics_enabled(false)`) to measure its own
//      overhead (bench/bench_obs_overhead.cpp).
//
// Naming convention: `component.noun_verb` (e.g. "gfw.tcb_create",
// "tcpstack.segment_in", "netsim.packet_delivered"). Dynamic suffixes are
// dot-separated ("tcpstack.ignored.bad-checksum").
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"

namespace ys::obs {

/// Runtime kill switch. Metric *updates* become no-ops when disabled;
/// registration, snapshotting and resets still work.
bool metrics_enabled();
void set_metrics_enabled(bool on);

#if defined(YS_OBS_DISABLE)
#define YS_OBS_UPDATES_ENABLED() false
#else
#define YS_OBS_UPDATES_ENABLED() (::ys::obs::metrics_enabled())
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(u64 n = 1) {
    if (YS_OBS_UPDATES_ENABLED()) value_ += n;
  }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  u64 value_ = 0;
};

/// A value that can go up and down (queue depths, rates, high-water marks).
class Gauge {
 public:
  void set(double v) {
    if (YS_OBS_UPDATES_ENABLED()) value_ = v;
  }
  void add(double d) {
    if (YS_OBS_UPDATES_ENABLED()) value_ += d;
  }
  /// Keep the maximum of the current value and `v` (high-water mark).
  void max_of(double v) {
    if (YS_OBS_UPDATES_ENABLED() && v > value_) value_ = v;
  }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket `i` counts observations with
/// `v <= bounds[i]` (and greater than the previous bound); one implicit
/// overflow bucket catches everything above the last bound, so
/// `bucket_counts().size() == bounds().size() + 1`.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        counts_(bounds_.size() + 1, 0) {}

  void observe(double v) {
    if (!YS_OBS_UPDATES_ENABLED()) return;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
  }

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<u64>& bucket_counts() const { return counts_; }

  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
  }

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<u64> counts_;     // bounds_.size() + 1 (overflow last)
  u64 count_ = 0;
  double sum_ = 0.0;
};

/// `factor`-spaced exponential upper bounds starting at `start` — the
/// default shape for microsecond latency histograms.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<u64> counts;
  u64 count = 0;
  double sum = 0.0;
};

/// Deep copy of every metric at one instant, sorted by name.
struct Snapshot {
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named metric registry. Get-or-create: the first call registers, later
/// calls with the same name return the same object (stable address for the
/// registry's lifetime — `reset_all()` zeroes values but never removes a
/// metric). Registering a name that already exists with a *different* kind
/// is a programming error and throws std::logic_error; a histogram
/// re-registered with different bounds keeps the first registration's
/// bounds (first writer wins).
class MetricsRegistry {
 public:
  /// The process-wide registry every component publishes into.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = exponential_buckets(
                           1.0, 4.0, 12));

  bool contains(const std::string& name) const {
    return slots_.find(name) != slots_.end();
  }
  std::size_t size() const { return slots_.size(); }

  /// Zero every metric (between trials); registrations survive.
  void reset_all();

  Snapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& find_or_create(const std::string& name, Kind kind);

  // std::map keeps iteration (and thus every exporter) name-sorted and
  // deterministic; pointers to mapped values are stable across inserts.
  std::map<std::string, Slot> slots_;
};

}  // namespace ys::obs
