// Structured event trace (the packet "ladder" the figure benches print).
//
// Migrated here from core/log.h and given a ring-buffer capacity so
// million-event runs keep the newest window of events instead of growing
// without bound; `dropped()` says how many fell off the front. core/log.h
// re-exports the `ys::TraceRecorder` name so existing includes keep
// compiling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/types.h"

namespace ys::obs {

/// One structured event: where it happened, what happened, and a rendered
/// description. `actor` is a short component name ("client", "gfw#1",
/// "server", "mbox:nat", ...).
struct TraceEvent {
  SimTime at;
  std::string actor;
  std::string kind;    // e.g. "send", "recv", "inject", "drop", "state"
  std::string detail;  // rendered packet summary or state transition
};

/// Collects TraceEvents during a simulation run. Components hold a pointer
/// to the recorder owned by the simulation; a null recorder disables
/// tracing with zero cost. Bounded: once `capacity` events are held, each
/// new event evicts the oldest.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(SimTime at, std::string actor, std::string kind,
              std::string detail) {
    TraceEvent ev{at, std::move(actor), std::move(kind), std::move(detail)};
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(ev));
      return;
    }
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  /// Retained events, oldest first (a copy: the ring stays internal).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted because the ring was full.
  u64 dropped() const { return dropped_; }

  /// Change the bound; keeps the newest `capacity` events.
  void set_capacity(std::size_t capacity);

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Render the retained trace as an aligned text ladder (one line per
  /// event); notes up front how many earlier events were evicted.
  std::string render() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  u64 dropped_ = 0;
};

}  // namespace ys::obs

namespace ys {
// Historical home of these names; every module referred to them as
// ys::TraceRecorder / ys::TraceEvent before the obs layer existed.
using obs::TraceEvent;
using obs::TraceRecorder;
}  // namespace ys
