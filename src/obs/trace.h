// Structured causal event trace (the packet "ladder" the figure benches
// print, and the machine-readable record `yourstate explain` replays).
//
// v2: events are no longer rendered strings. Every event carries a typed
// payload — a PacketRef naming the packet it is about, an optional GFW
// state-machine transition, and a `caused_by` link to the event that
// triggered it (an injected RST links back to the packet that tripped the
// detector; a strategy insertion packet links back to the selector/strategy
// decision that crafted it). Consumers: TraceRecorder::render() prints the
// human ladder, obs/trace_export.h emits Chrome trace-event JSON with flow
// arrows, and exp/explain.h turns the causal chain into a one-line verdict
// attribution.
//
// Bounded: once `capacity` events are held, each new event evicts the
// oldest; `dropped()` says how many fell off the front, mirrored into the
// `obs.trace.dropped` counter (plus a one-time warn log on first overflow).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/clock.h"
#include "core/types.h"

namespace ys::obs {

enum class TraceKind : u8 {
  kSend,      // endpoint handed a packet to the path
  kRecv,      // path delivered a packet to an endpoint
  kInject,    // an on-path element forged a packet (GFW resets, probes)
  kDrop,      // an element terminated a packet
  kExpire,    // TTL reached zero in transit
  kLoss,      // random path loss
  kState,     // a device's per-flow state machine moved (GFW, middlebox)
  kIgnore,    // a receiver silently discarded a packet (stack/profile/GFW)
  kDecision,  // a selector/strategy choice (intang, strategy engine)
  kNote,      // free-form annotation (loop livelock guard, harness marks)
  kFault,     // an injected fault fired (ys::faults chaos layer)
};
const char* to_string(TraceKind k);

/// Typed summary of the packet an event is about. Deliberately a plain
/// value struct: obs must not depend on netsim, so netsim provides the
/// conversion (net::to_trace_ref). `id == 0` means "no packet attached".
struct PacketRef {
  u64 id = 0;        // Path-assigned per-trial packet id
  u32 seq = 0;       // TCP sequence number (0 for non-TCP)
  u32 ack = 0;       // TCP acknowledgment number
  u16 payload_len = 0;
  u8 flags = 0;      // raw TCP flag byte (TcpFlags::to_byte())
  u8 ttl = 0;
  u8 dir = 0;        // 0 = client->server, 1 = server->client
  bool is_tcp = false;
  bool crafted = false;  // built by a strategy (insertion packet)
};

/// GFW per-flow state as the trace reports it (a projection of
/// gfw::TcbState plus "no TCB").
enum class GfwState : u8 { kNone, kEstablished, kResync, kGone };
const char* to_string(GfwState s);

/// Which hypothesized censor behavior (paper §5, HB1–HB3) or verdict-level
/// action fired. Attached to kState events so `explain` can name the
/// mechanism, not just the transition.
enum class GfwBehavior : u8 {
  kNone,
  kB1CreateOnSyn,        // TCB created from a SYN
  kB1CreateOnSynAck,     // HB1: TCB created from a SYN/ACK (incl. reversal)
  kB2aMultipleSyn,       // HB2a: later SYN forces resync
  kB2bMultipleSynAck,    // HB2b: later SYN/ACK forces resync
  kB2cSynAckAckMismatch, // HB2c: SYN/ACK ack mismatch forces resync
  kB3RstResync,          // HB3: RST after handshake forces resync
  kRstTeardown,          // RST tore the TCB down
  kFinTeardown,          // FIN/ACK sequence tore the TCB down (prior model)
  kResyncReanchor,       // resync state re-anchored on observed traffic
  kDetection,            // keyword/protocol detector fired
  kDetectionMissed,      // detector fired but injection was skipped (miss)
  kBlockPeriod,          // flow hit (or started) a 90 s block period
  kIpBlock,              // destination IP is on the block list
};
const char* to_string(GfwBehavior b);

/// A state-machine move. `valid()` distinguishes "this event carries a
/// transition" from the default-constructed blank on non-state events.
struct GfwTransition {
  GfwState from = GfwState::kNone;
  GfwState to = GfwState::kNone;
  GfwBehavior behavior = GfwBehavior::kNone;

  bool valid() const { return behavior != GfwBehavior::kNone; }
};

/// One structured event. `actor` is a short component name ("client",
/// "gfw-1", "server", "mbox-client", "intang", ...). `caused_by` is the id
/// of the event that triggered this one, 0 when unknown/none.
struct TraceEvent {
  u64 id = 0;         // assigned by TraceRecorder::record(), starts at 1
  u64 caused_by = 0;  // id of the triggering event (0 = none)
  SimTime at;
  TraceKind kind = TraceKind::kNote;
  std::string actor;
  PacketRef packet;   // packet.id == 0 when no packet is attached
  GfwTransition gfw;  // valid() only on state-machine events
  std::string detail; // human-readable annotation
};

/// Collects TraceEvents during a simulation run. Components hold a pointer
/// to the recorder owned by the simulation; a null recorder disables
/// tracing with zero cost (instrumentation sites must check before building
/// an event). Bounded ring, oldest evicted first.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Append an event; assigns and returns its id. Ignores any id already
  /// set on `ev`. Updates the packet-id and decision indexes.
  u64 record(TraceEvent ev);

  /// Convenience for packet-less annotations.
  u64 note(SimTime at, std::string actor, TraceKind kind, std::string detail,
           u64 caused_by = 0);

  /// The most recent event recorded about packet `packet_id` (its send,
  /// or a later hop event), 0 if none/evicted-from-index-never (the index
  /// survives eviction: causal links may point at evicted events).
  u64 event_for_packet(u64 packet_id) const;

  /// Id of the most recent kDecision event (0 if none). Lets a strategy
  /// "armed" event chain to the selector decision recorded just before it
  /// in the same call stack.
  u64 last_decision() const { return last_decision_; }

  /// Retained events, oldest first (a copy: the ring stays internal).
  std::vector<TraceEvent> events() const;

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted because the ring was full.
  u64 dropped() const { return dropped_; }

  /// Change the bound; keeps the newest `capacity` events.
  void set_capacity(std::size_t capacity);

  void clear();

  /// Render the retained trace as an aligned text ladder (one line per
  /// event) with causal `<= #id` annotations; notes up front how many
  /// earlier events were evicted.
  std::string render() const;

 private:
  void evict_note();

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  u64 dropped_ = 0;
  bool warned_overflow_ = false;
  u64 next_id_ = 1;
  u64 last_decision_ = 0;
  // packet id -> id of the latest event about that packet. Grows one entry
  // per packet; cleared with clear(). Traced runs are single trials, so
  // this stays small.
  std::unordered_map<u64, u64> packet_index_;
};

}  // namespace ys::obs
