// Chrome trace-event JSON exporter for TraceRecorder.
//
// Emits the "JSON Object Format" ({"traceEvents": [...]}) understood by
// Perfetto and chrome://tracing. Mapping:
//   - one track (pid 1, tid N) per actor, named via "M"/thread_name
//     metadata, tids assigned in first-appearance order;
//   - every trace event becomes a ph "X" slice, ts = virtual time in µs,
//     dur = 1, with the structured payload under "args" (event id,
//     caused_by, packet fields, GFW transition, detail);
//   - causal links become flow-event pairs (ph "s" on the causing event's
//     track, ph "f" on the effect's) so the UI draws arrows from the
//     trigger packet to the injected response. Pairs are emitted only when
//     both ends are still retained in the ring, so every flow id in the
//     file resolves (tools/trace_lint checks this).
#pragma once

#include <string>

#include "obs/trace.h"

namespace ys::obs {

/// Render the retained trace as a Chrome trace-event JSON document.
std::string to_chrome_trace(const TraceRecorder& trace);

/// Write to_chrome_trace() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path, const TraceRecorder& trace);

}  // namespace ys::obs
