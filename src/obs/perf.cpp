#include "obs/perf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <thread>

#include "core/json.h"
#include "obs/export.h"

namespace ys::obs::perf {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  if (v == static_cast<double>(static_cast<i64>(v)) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kLowerIsBetter: return "lower";
    case Direction::kInfo: return "info";
  }
  return "info";
}

std::optional<Direction> direction_from(const std::string& s) {
  if (s == "higher") return Direction::kHigherIsBetter;
  if (s == "lower") return Direction::kLowerIsBetter;
  if (s == "info") return Direction::kInfo;
  return std::nullopt;
}

/// Rebuild a Snapshot from the parsed "snapshot" member (the obs::to_json
/// layout). Unknown members are ignored so the reader stays compatible
/// with additive exporter changes.
Snapshot snapshot_from(const json::Value& v) {
  Snapshot snap;
  if (const json::Value* counters = v.find("counters")) {
    for (const auto& [name, val] : counters->object) {
      if (val.is_number()) snap.counters[name] = static_cast<u64>(val.number);
    }
  }
  if (const json::Value* gauges = v.find("gauges")) {
    for (const auto& [name, val] : gauges->object) {
      if (val.is_number()) snap.gauges[name] = val.number;
    }
  }
  if (const json::Value* hists = v.find("histograms")) {
    for (const auto& [name, val] : hists->object) {
      HistogramSnapshot h;
      if (const json::Value* b = val.find("bounds")) {
        for (const auto& e : b->array) h.bounds.push_back(e.number);
      }
      if (const json::Value* c = val.find("counts")) {
        for (const auto& e : c->array) h.counts.push_back(static_cast<u64>(e.number));
      }
      if (const json::Value* c = val.find("count")) h.count = static_cast<u64>(c->number);
      if (const json::Value* s = val.find("sum")) h.sum = s->number;
      snap.histograms[name] = std::move(h);
    }
  }
  return snap;
}

}  // namespace

BenchReport make_report(const std::string& name) {
  BenchReport r;
  r.name = name;
#if defined(__linux__)
  r.env["os"] = "linux";
#elif defined(__APPLE__)
  r.env["os"] = "darwin";
#else
  r.env["os"] = "other";
#endif
#if defined(__aarch64__)
  r.env["arch"] = "aarch64";
#elif defined(__x86_64__)
  r.env["arch"] = "x86_64";
#else
  r.env["arch"] = "other";
#endif
#if defined(__clang__)
  r.env["compiler"] = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  r.env["compiler"] = std::string("gcc ") + __VERSION__;
#else
  r.env["compiler"] = "unknown";
#endif
#if defined(NDEBUG)
  r.env["build"] = "release";
#else
  r.env["build"] = "debug";
#endif
  std::string san;
#if defined(__SANITIZE_ADDRESS__)
  san += "+asan";
#endif
#if defined(__SANITIZE_THREAD__)
  san += "+tsan";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  san += "+asan";
#endif
#if __has_feature(thread_sanitizer)
  san += "+tsan";
#endif
#endif
  r.env["sanitizer"] = san.empty() ? "none" : san.substr(1);
#if defined(YS_OBS_DISABLE)
  r.env["obs"] = "compiled-out";
#else
  r.env["obs"] = "enabled";
#endif
  r.env["hardware_concurrency"] =
      std::to_string(std::thread::hardware_concurrency());
  // Wall-clock creation stamp lives in config (a number), not env, so the
  // env-mismatch caveat in diffs never fires on it.
  r.config["created_unix"] =
      static_cast<double>(std::time(nullptr));
  return r;
}

std::string BenchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": " + std::to_string(schema) + ",\n";
  out += "  \"name\": \"" + json_escape(name) + "\",\n";

  out += "  \"env\": {";
  bool first = true;
  for (const auto& [k, v] : env) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"config\": {";
  first = true;
  for (const auto& [k, v] : config) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(k) + "\": " + json_number(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"wall_seconds\": " + json_number(wall_seconds) + ",\n";

  out += "  \"metrics\": {";
  first = true;
  for (const auto& [k, m] : metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(k) + "\": {\"value\": " +
           json_number(m.value) + ", \"unit\": \"" + json_escape(m.unit) +
           "\", \"better\": \"" + direction_name(m.direction) + "\"}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"phases\": [";
  first = true;
  for (const auto& p : phases) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(p.name) +
           "\", \"count\": " + std::to_string(p.count) +
           ", \"wall_us\": " + json_number(p.wall_us) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  // Splice the canonical snapshot document in as-is: its own pretty
  // indentation nests oddly but the result is valid JSON, and the two
  // writers can never drift apart.
  std::string snap_json = obs::to_json(snapshot);
  while (!snap_json.empty() &&
         (snap_json.back() == '\n' || snap_json.back() == ' ')) {
    snap_json.pop_back();
  }
  out += "  \"snapshot\": " + snap_json + "\n";
  out += "}\n";
  return out;
}

std::optional<BenchReport> BenchReport::from_json(const std::string& text,
                                                  std::string* error) {
  const auto fail = [error](const char* why) -> std::optional<BenchReport> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::optional<json::Value> doc = json::parse(text);
  if (!doc || !doc->is_object()) return fail("not a JSON object");
  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail("missing \"schema\"");
  }
  BenchReport r;
  r.schema = static_cast<int>(schema->number);
  if (r.schema < 1 || r.schema > kSchema) {
    return fail("unsupported schema version (report from a newer build?)");
  }
  const json::Value* name = doc->find("name");
  if (name == nullptr || !name->is_string()) return fail("missing \"name\"");
  r.name = name->string;
  if (const json::Value* env = doc->find("env")) {
    for (const auto& [k, v] : env->object) {
      if (v.is_string()) r.env[k] = v.string;
    }
  }
  if (const json::Value* cfg = doc->find("config")) {
    for (const auto& [k, v] : cfg->object) {
      if (v.is_number()) r.config[k] = v.number;
    }
  }
  if (const json::Value* w = doc->find("wall_seconds")) {
    if (!w->is_number()) return fail("\"wall_seconds\" is not a number");
    r.wall_seconds = w->number;
  }
  const json::Value* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return fail("missing \"metrics\"");
  }
  for (const auto& [k, v] : metrics->object) {
    const json::Value* value = v.find("value");
    const json::Value* unit = v.find("unit");
    const json::Value* better = v.find("better");
    if (value == nullptr || !value->is_number() || better == nullptr ||
        !better->is_string()) {
      return fail("malformed metric entry");
    }
    const auto dir = direction_from(better->string);
    if (!dir) return fail("unknown metric direction");
    MetricValue m;
    m.value = value->number;
    m.unit = unit != nullptr && unit->is_string() ? unit->string : "";
    m.direction = *dir;
    r.metrics[k] = std::move(m);
  }
  if (const json::Value* phases = doc->find("phases")) {
    for (const auto& p : phases->array) {
      PhaseTotal pt;
      const json::Value* pn = p.find("name");
      if (pn == nullptr || !pn->is_string()) return fail("malformed phase");
      pt.name = pn->string;
      if (const json::Value* c = p.find("count")) {
        pt.count = static_cast<u64>(c->number);
      }
      if (const json::Value* w = p.find("wall_us")) pt.wall_us = w->number;
      r.phases.push_back(std::move(pt));
    }
  }
  if (const json::Value* snap = doc->find("snapshot")) {
    r.snapshot = snapshot_from(*snap);
  }
  return r;
}

bool BenchReport::write(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

std::optional<BenchReport> BenchReport::load(const std::string& path,
                                             std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto report = from_json(text, error);
  if (!report && error != nullptr) *error = path + ": " + *error;
  return report;
}

// ------------------------------------------------------------------ diff

const char* to_string(DiffStatus s) {
  switch (s) {
    case DiffStatus::kOk: return "ok";
    case DiffStatus::kImproved: return "IMPROVED";
    case DiffStatus::kRegressed: return "REGRESSED";
    case DiffStatus::kInfo: return "info";
    case DiffStatus::kMissingOld: return "new metric";
    case DiffStatus::kMissingNew: return "MISSING";
  }
  return "?";
}

DiffResult diff_reports(const BenchReport& old_report,
                        const BenchReport& new_report, double tolerance) {
  return diff_reports(old_report, new_report, tolerance, {});
}

DiffResult diff_reports(
    const BenchReport& old_report, const BenchReport& new_report,
    double tolerance,
    const std::map<std::string, double>& tolerance_overrides) {
  DiffResult res;
  for (const auto& [key, value] : old_report.env) {
    auto it = new_report.env.find(key);
    if (it != new_report.env.end() && it->second != value) {
      res.env_mismatches.push_back(key + ": " + value + " -> " + it->second);
    }
  }

  for (const auto& [name, old_m] : old_report.metrics) {
    DiffRow row;
    row.metric = name;
    row.unit = old_m.unit;
    row.direction = old_m.direction;
    row.old_value = old_m.value;
    auto it = new_report.metrics.find(name);
    if (it == new_report.metrics.end()) {
      row.status = old_m.direction == Direction::kInfo ? DiffStatus::kInfo
                                                       : DiffStatus::kMissingNew;
      if (row.status == DiffStatus::kMissingNew) ++res.regressions;
      res.rows.push_back(std::move(row));
      continue;
    }
    row.new_value = it->second.value;
    row.delta = old_m.value != 0.0
                    ? (row.new_value - row.old_value) / std::fabs(row.old_value)
                    : 0.0;
    if (old_m.direction == Direction::kInfo) {
      row.status = DiffStatus::kInfo;
    } else {
      const auto override_it = tolerance_overrides.find(name);
      const double band = override_it != tolerance_overrides.end()
                              ? override_it->second
                              : tolerance;
      row.tolerance = band;
      // Signed "goodness": positive = moved in the good direction.
      const double gain = old_m.direction == Direction::kHigherIsBetter
                              ? row.delta
                              : -row.delta;
      if (gain < -band) {
        row.status = DiffStatus::kRegressed;
        ++res.regressions;
      } else if (gain > band) {
        row.status = DiffStatus::kImproved;
        ++res.improvements;
      } else {
        row.status = DiffStatus::kOk;
      }
    }
    res.rows.push_back(std::move(row));
  }
  // Metrics the new report added: shown, never gated.
  for (const auto& [name, new_m] : new_report.metrics) {
    if (old_report.metrics.find(name) != old_report.metrics.end()) continue;
    DiffRow row;
    row.metric = name;
    row.unit = new_m.unit;
    row.direction = new_m.direction;
    row.new_value = new_m.value;
    row.status = DiffStatus::kMissingOld;
    res.rows.push_back(std::move(row));
  }
  std::sort(res.rows.begin(), res.rows.end(),
            [](const DiffRow& a, const DiffRow& b) { return a.metric < b.metric; });
  return res;
}

std::string DiffResult::to_json() const {
  std::string out = "{\n";
  out += "  \"regressions\": " + std::to_string(regressions) + ",\n";
  out += "  \"improvements\": " + std::to_string(improvements) + ",\n";
  out += std::string("  \"ok\": ") + (ok() ? "true" : "false") + ",\n";
  out += "  \"env_mismatches\": [";
  for (std::size_t i = 0; i < env_mismatches.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(env_mismatches[i]) + "\"";
  }
  out += "],\n";
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DiffRow& row = rows[i];
    out += "    {\"metric\": \"" + json_escape(row.metric) + "\", \"unit\": \"" +
           json_escape(row.unit) + "\", \"direction\": \"" +
           direction_name(row.direction) + "\", \"old\": " +
           json_number(row.old_value) + ", \"new\": " +
           json_number(row.new_value) + ", \"delta\": " +
           json_number(row.delta) + ", \"tolerance\": " +
           json_number(row.tolerance) + ", \"status\": \"" +
           to_string(row.status) + "\"}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string DiffResult::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %14s %14s %9s  %s\n", "metric",
                "old", "new", "delta", "status");
  out += line;
  for (const DiffRow& row : rows) {
    char old_buf[32] = "-";
    char new_buf[32] = "-";
    char delta_buf[32] = "-";
    if (row.status != DiffStatus::kMissingOld) {
      std::snprintf(old_buf, sizeof(old_buf), "%.6g", row.old_value);
    }
    if (row.status != DiffStatus::kMissingNew) {
      std::snprintf(new_buf, sizeof(new_buf), "%.6g", row.new_value);
    }
    if (row.status != DiffStatus::kMissingOld &&
        row.status != DiffStatus::kMissingNew) {
      std::snprintf(delta_buf, sizeof(delta_buf), "%+.1f%%", row.delta * 100.0);
    }
    const std::string label =
        row.metric + (row.unit.empty() ? "" : " (" + row.unit + ")");
    std::snprintf(line, sizeof(line), "%-28s %14s %14s %9s  %s\n",
                  label.c_str(), old_buf, new_buf, delta_buf,
                  to_string(row.status));
    out += line;
  }
  if (!env_mismatches.empty()) {
    out += "note: environments differ — wall-time comparisons are only "
           "indicative:\n";
    for (const std::string& m : env_mismatches) out += "  " + m + "\n";
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail), "%d regression(s), %d improvement(s)\n",
                regressions, improvements);
  out += tail;
  return out;
}

}  // namespace ys::obs::perf
