// ys::obs::perf — counting allocator hook.
//
// alloc_hook.cpp replaces the global operator new/delete family with
// thin wrappers that bump *plain thread-local* counters (no atomics, no
// locks — a thread only ever reads its own counts), then forward to
// malloc/free. Linking any code that calls thread_alloc_counters() pulls
// the overrides into the binary; binaries that never ask for allocation
// counts keep the stock allocator.
//
// The point: quantify per-trial heap churn. The ROADMAP's zero-copy packet
// arena promises a steady state with zero allocations; the runner samples
// these counters around every trial (PoolOptions::track_allocs) and
// publishes the deltas as `perf.alloc.count` / `perf.alloc.bytes`, giving
// the arena refactor its before-number (see BENCH_fleet.json).
//
// Determinism caveat: a trial's own allocation sequence is deterministic,
// but the *first* trial on each worker additionally pays one-time
// registry/cache setup allocations, so merged perf.alloc.* totals vary
// with --jobs=N by a few dozen allocations. Determinism digests therefore
// exclude the perf.alloc.* names, exactly like wall-clock metrics.
//
// Under ASan/TSan the overrides are compiled out (the sanitizers interpose
// their own allocator and double interposition is fragile):
// alloc_hook_available() returns false and the counters stay zero.
#pragma once

#include "core/types.h"

namespace ys::obs::perf {

struct AllocCounters {
  u64 count = 0;  // operator new / new[] calls
  u64 bytes = 0;  // bytes requested (not allocator-rounded)
};

/// True when the counting overrides are linked and active in this build.
bool alloc_hook_available();

/// This thread's allocation totals since thread start. Sample before and
/// after a section and subtract; single-threaded sections (one trial on
/// one worker) get exact per-section churn.
AllocCounters thread_alloc_counters();

}  // namespace ys::obs::perf
