#include "obs/timeline_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/json.h"

namespace ys::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_labels_json(std::string& out, const TimelineLabels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
}

void append_i64(std::string& out, i64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_u64(std::string& out, u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// "k1=v1;k2=v2" — labels flattened for the CSV cell (labels never
/// contain ';' or '=' in practice; values are simple identifiers).
std::string labels_csv(const TimelineLabels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

bool read_i64(const json::Value* v, i64* out) {
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<i64>(v->number);
  return true;
}

}  // namespace

std::string timeline_to_json(const Timeline& tl) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"ys.timeline.v1\",\"bucket_us\":";
  append_i64(out, tl.bucket_width().us);
  out += ",\"series\":[";
  bool first_series = true;
  for (const auto& [key, series] : tl.series()) {
    if (!first_series) out += ',';
    first_series = false;
    out += "{\"name\":\"";
    out += json_escape(key.name);
    out += "\",\"labels\":";
    append_labels_json(out, key.labels);
    out += ",\"kind\":\"";
    out += to_string(series.kind);
    out += "\",\"points\":[";
    bool first_point = true;
    for (const auto& [bucket, v] : series.buckets) {
      if (!first_point) out += ',';
      first_point = false;
      out += "{\"bucket\":";
      append_i64(out, bucket);
      out += ",\"sum\":";
      append_i64(out, v.sum);
      out += ",\"count\":";
      append_u64(out, v.count);
      out += ",\"min\":";
      append_i64(out, v.min);
      out += ",\"max\":";
      append_i64(out, v.max);
      out += '}';
    }
    out += "]}";
  }
  out += "],\"annotations\":[";
  bool first_ann = true;
  for (const auto& a : tl.annotations()) {
    if (!first_ann) out += ',';
    first_ann = false;
    out += "{\"bucket\":";
    append_i64(out, a.bucket);
    out += ",\"category\":\"";
    out += json_escape(a.category);
    out += "\",\"text\":\"";
    out += json_escape(a.text);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

std::string timeline_to_csv(const Timeline& tl) {
  std::string out = "name,labels,kind,bucket,bucket_start_us,sum,count,min,max\n";
  for (const auto& [key, series] : tl.series()) {
    const std::string labels = labels_csv(key.labels);
    for (const auto& [bucket, v] : series.buckets) {
      out += key.name;
      out += ',';
      out += labels;
      out += ',';
      out += to_string(series.kind);
      out += ',';
      append_i64(out, bucket);
      out += ',';
      append_i64(out, tl.bucket_start(bucket).us);
      out += ',';
      append_i64(out, v.sum);
      out += ',';
      append_u64(out, v.count);
      out += ',';
      append_i64(out, v.min);
      out += ',';
      append_i64(out, v.max);
      out += '\n';
    }
  }
  return out;
}

bool write_timeline_json(const std::string& path, const Timeline& tl) {
  return write_file(path, timeline_to_json(tl));
}

bool write_timeline_csv(const std::string& path, const Timeline& tl) {
  return write_file(path, timeline_to_csv(tl));
}

i64 TimelineDoc::total(const std::string& name) const {
  i64 total = 0;
  for (const Series& s : series) {
    if (s.name != name) continue;
    for (const Point& p : s.points) total += p.sum;
  }
  return total;
}

std::optional<TimelineDoc> parse_timeline_json(const std::string& text,
                                               std::string* error) {
  auto fail = [error](const std::string& why) -> std::optional<TimelineDoc> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::optional<json::Value> root = json::parse(text);
  if (!root.has_value() || !root->is_object()) {
    return fail("not a JSON object");
  }
  const json::Value* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ys.timeline.v1") {
    return fail("schema is not \"ys.timeline.v1\"");
  }
  TimelineDoc doc;
  if (!read_i64(root->find("bucket_us"), &doc.bucket_us) ||
      doc.bucket_us <= 0) {
    return fail("bucket_us missing or not a positive number");
  }
  const json::Value* series = root->find("series");
  if (series == nullptr || !series->is_array()) {
    return fail("series missing or not an array");
  }
  for (const json::Value& s : series->array) {
    if (!s.is_object()) return fail("series entry is not an object");
    TimelineDoc::Series out;
    const json::Value* name = s.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      return fail("series name missing or empty");
    }
    out.name = name->string;
    const json::Value* labels = s.find("labels");
    if (labels == nullptr || !labels->is_object()) {
      return fail("series '" + out.name + "': labels missing");
    }
    for (const auto& [k, v] : labels->object) {
      if (!v.is_string()) {
        return fail("series '" + out.name + "': label '" + k +
                    "' is not a string");
      }
      out.labels[k] = v.string;
    }
    const json::Value* kind = s.find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->string != "counter" && kind->string != "gauge")) {
      return fail("series '" + out.name + "': bad kind");
    }
    out.kind = kind->string;
    const json::Value* points = s.find("points");
    if (points == nullptr || !points->is_array()) {
      return fail("series '" + out.name + "': points missing");
    }
    for (const json::Value& p : points->array) {
      if (!p.is_object()) {
        return fail("series '" + out.name + "': point is not an object");
      }
      TimelineDoc::Point pt;
      i64 count = 0;
      if (!read_i64(p.find("bucket"), &pt.bucket) ||
          !read_i64(p.find("sum"), &pt.sum) ||
          !read_i64(p.find("count"), &count) ||
          !read_i64(p.find("min"), &pt.min) ||
          !read_i64(p.find("max"), &pt.max)) {
        return fail("series '" + out.name + "': point field missing");
      }
      pt.count = static_cast<u64>(count);
      out.points.push_back(pt);
    }
    doc.series.push_back(std::move(out));
  }
  const json::Value* annotations = root->find("annotations");
  if (annotations != nullptr) {
    if (!annotations->is_array()) return fail("annotations is not an array");
    for (const json::Value& a : annotations->array) {
      if (!a.is_object()) return fail("annotation is not an object");
      TimelineDoc::Annotation out;
      const json::Value* category = a.find("category");
      const json::Value* ann_text = a.find("text");
      if (!read_i64(a.find("bucket"), &out.bucket) || category == nullptr ||
          !category->is_string() || ann_text == nullptr ||
          !ann_text->is_string()) {
        return fail("annotation field missing");
      }
      out.category = category->string;
      out.text = ann_text->string;
      doc.annotations.push_back(std::move(out));
    }
  }
  return doc;
}

std::optional<TimelineDoc> load_timeline_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_timeline_json(ss.str(), error);
}

}  // namespace ys::obs
