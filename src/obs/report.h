// Self-contained HTML dashboard for a timeline export.
//
// render_timeline_html() turns a parsed "ys.timeline.v1" document into a
// single HTML file with inline SVG charts and zero external dependencies
// (no scripts, no fonts, no CSS fetches) so the artifact can be archived
// next to the bench JSON it was built from and opened anywhere:
//   - fleet convergence: cumulative success-rate and cache-hit-rate per
//     vantage over virtual time;
//   - flap response: per-bucket success rate with injected-fault density
//     and soak-phase boundaries overlaid;
//   - search-front progress: best/mean objective per variant over
//     generations, lineage edges listed per generation;
//   - every remaining series as a generic chart, so nothing recorded is
//     invisible;
//   - anomalous buckets (success rate well below the run's final rate)
//     with ready-to-run `yourstate explain` commands.
//
// Machine-readable hooks for timeline_lint and the acceptance check:
//   <script type="application/json" id="timeline-manifest"> — the series
//     names the report was built from;
//   <script type="application/json" id="timeline-totals"> — whole-run
//     counter totals, which must equal the aggregate `fleet.*` metrics.
#pragma once

#include <string>

#include "obs/timeline_export.h"

namespace ys::obs {

struct ReportOptions {
  std::string title = "yourstate timeline report";
  /// Shown in the header as the data source (input filename).
  std::string source;
  /// When set, `explain` hints include `--fleet=<spec>` so they are
  /// directly runnable.
  std::string fleet_spec;
};

std::string render_timeline_html(const TimelineDoc& doc,
                                 const ReportOptions& opt);

}  // namespace ys::obs
