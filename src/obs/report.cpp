#include "obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "obs/timeline.h"

namespace ys::obs {

namespace {

constexpr const char* kPalette[] = {
    "#2563eb", "#dc2626", "#059669", "#d97706",
    "#7c3aed", "#0891b2", "#be185d", "#4d7c0f",
};
constexpr int kPaletteSize = 8;

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  if (std::fabs(v - std::llround(v)) < 1e-9 && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(std::llround(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string fmt_i64(i64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

struct ChartLine {
  std::string label;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct VLine {
  double x = 0;
  std::string label;
};

struct Chart {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<ChartLine> lines;
  std::vector<VLine> vlines;
  /// Force the y range to [0, 1] (rate charts).
  bool unit_y = false;
};

/// Inline SVG polyline chart: fixed frame, 4 y gridlines, dashed
/// annotation verticals, legend under the plot.
std::string render_chart(const Chart& chart) {
  constexpr double kW = 860, kH = 240;
  constexpr double kL = 64, kR = 16, kT = 18, kB = 34;
  const double plot_w = kW - kL - kR;
  const double plot_h = kH - kT - kB;

  double x_min = 0, x_max = 1, y_min = 0, y_max = 1;
  bool have = false;
  for (const ChartLine& line : chart.lines) {
    for (const auto& [x, y] : line.points) {
      if (!have) {
        x_min = x_max = x;
        y_min = y_max = y;
        have = true;
      } else {
        x_min = std::min(x_min, x);
        x_max = std::max(x_max, x);
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
  }
  for (const VLine& v : chart.vlines) {
    if (!have) continue;
    x_min = std::min(x_min, v.x);
    x_max = std::max(x_max, v.x);
  }
  if (chart.unit_y) {
    y_min = 0;
    y_max = 1;
  } else {
    if (y_min > 0) y_min = 0;
    if (y_max <= y_min) y_max = y_min + 1;
  }
  if (x_max <= x_min) x_max = x_min + 1;

  auto sx = [&](double x) { return kL + (x - x_min) / (x_max - x_min) * plot_w; };
  auto sy = [&](double y) { return kT + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h; };

  std::ostringstream svg;
  svg << "<div class=\"chart\"><h3>" << html_escape(chart.title) << "</h3>\n";
  svg << "<svg viewBox=\"0 0 " << kW << " " << kH << "\" width=\"" << kW
      << "\" height=\"" << kH << "\" role=\"img\">\n";
  svg << "<rect x=\"" << kL << "\" y=\"" << kT << "\" width=\"" << plot_w
      << "\" height=\"" << plot_h
      << "\" fill=\"#fafafa\" stroke=\"#d4d4d8\"/>\n";
  for (int i = 0; i <= 4; ++i) {
    const double y = y_min + (y_max - y_min) * i / 4.0;
    const double py = sy(y);
    svg << "<line x1=\"" << kL << "\" y1=\"" << py << "\" x2=\"" << (kW - kR)
        << "\" y2=\"" << py << "\" stroke=\"#e4e4e7\"/>\n";
    svg << "<text x=\"" << (kL - 6) << "\" y=\"" << (py + 4)
        << "\" text-anchor=\"end\" font-size=\"11\" fill=\"#52525b\">"
        << fmt(y) << "</text>\n";
  }
  for (int i = 0; i <= 4; ++i) {
    const double x = x_min + (x_max - x_min) * i / 4.0;
    svg << "<text x=\"" << sx(x) << "\" y=\"" << (kH - kB + 16)
        << "\" text-anchor=\"middle\" font-size=\"11\" fill=\"#52525b\">"
        << fmt(x) << "</text>\n";
  }
  svg << "<text x=\"" << (kL + plot_w / 2) << "\" y=\"" << (kH - 4)
      << "\" text-anchor=\"middle\" font-size=\"11\" fill=\"#3f3f46\">"
      << html_escape(chart.x_label) << "</text>\n";
  for (const VLine& v : chart.vlines) {
    const double px = sx(v.x);
    svg << "<line x1=\"" << px << "\" y1=\"" << kT << "\" x2=\"" << px
        << "\" y2=\"" << (kT + plot_h)
        << "\" stroke=\"#a1a1aa\" stroke-dasharray=\"4 3\"/>\n";
    svg << "<text x=\"" << (px + 3) << "\" y=\"" << (kT + 11)
        << "\" font-size=\"10\" fill=\"#71717a\">" << html_escape(v.label)
        << "</text>\n";
  }
  int color = 0;
  for (const ChartLine& line : chart.lines) {
    if (line.points.empty()) continue;
    svg << "<polyline fill=\"none\" stroke=\"" << kPalette[color % kPaletteSize]
        << "\" stroke-width=\"1.6\" points=\"";
    for (const auto& [x, y] : line.points) {
      svg << fmt(sx(x)) << ',' << fmt(sy(y)) << ' ';
    }
    svg << "\"/>\n";
    if (line.points.size() == 1) {
      svg << "<circle cx=\"" << fmt(sx(line.points[0].first)) << "\" cy=\""
          << fmt(sy(line.points[0].second)) << "\" r=\"2.5\" fill=\""
          << kPalette[color % kPaletteSize] << "\"/>\n";
    }
    ++color;
  }
  svg << "</svg>\n<div class=\"legend\">";
  color = 0;
  for (const ChartLine& line : chart.lines) {
    svg << "<span><i style=\"background:" << kPalette[color % kPaletteSize]
        << "\"></i>" << html_escape(line.label) << "</span> ";
    ++color;
  }
  svg << "</div></div>\n";
  return svg.str();
}

std::string labels_text(const std::map<std::string, std::string>& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out.empty() ? "(no labels)" : out;
}

/// bucket -> sum, folded over every series with this name whose labels
/// include `key`=`value` (empty key = every label set).
std::map<i64, i64> bucket_sums(const TimelineDoc& doc, const std::string& name,
                               const std::string& key = "",
                               const std::string& value = "") {
  std::map<i64, i64> out;
  for (const auto& s : doc.series) {
    if (s.name != name) continue;
    if (!key.empty()) {
      auto it = s.labels.find(key);
      if (it == s.labels.end() || it->second != value) continue;
    }
    for (const auto& p : s.points) out[p.bucket] += p.sum;
  }
  return out;
}

std::set<std::string> label_values(const TimelineDoc& doc,
                                   const std::string& name,
                                   const std::string& key) {
  std::set<std::string> out;
  for (const auto& s : doc.series) {
    if (s.name != name) continue;
    auto it = s.labels.find(key);
    if (it != s.labels.end()) out.insert(it->second);
  }
  return out;
}

double bucket_seconds(const TimelineDoc& doc, i64 bucket) {
  return static_cast<double>(bucket) * static_cast<double>(doc.bucket_us) / 1e6;
}

}  // namespace

std::string render_timeline_html(const TimelineDoc& doc,
                                 const ReportOptions& opt) {
  std::ostringstream out;
  std::set<std::string> consumed;

  out << "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n"
      << "<title>" << html_escape(opt.title) << "</title>\n"
      << "<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:24px auto;"
         "max-width:920px;color:#18181b}\n"
         "h1{font-size:22px}h2{font-size:17px;border-bottom:1px solid #e4e4e7;"
         "padding-bottom:4px;margin-top:32px}h3{font-size:13px;margin:12px 0 4px}\n"
         ".meta{color:#52525b;font-size:12px}\n"
         ".legend{font-size:12px;color:#3f3f46}\n"
         ".legend i{display:inline-block;width:10px;height:10px;"
         "margin-right:4px;border-radius:2px}\n"
         ".legend span{margin-right:14px}\n"
         "table{border-collapse:collapse;font-size:13px}\n"
         "td,th{border:1px solid #d4d4d8;padding:3px 10px;text-align:right}\n"
         "th{background:#f4f4f5}td:first-child,th:first-child{text-align:left}\n"
         "pre{background:#f4f4f5;padding:8px;font-size:12px;overflow-x:auto}\n"
         ".coverage{background:#fef3c7;border:1px solid #f59e0b;"
         "border-radius:4px;padding:8px 12px;font-weight:600}\n"
         "</style></head><body>\n";
  out << "<h1>" << html_escape(opt.title) << "</h1>\n";
  out << "<p class=\"meta\">schema ys.timeline.v1 · bucket "
      << fmt(static_cast<double>(doc.bucket_us) / 1e6) << " s · "
      << doc.series.size() << " series · " << doc.annotations.size()
      << " annotations";
  if (!opt.source.empty()) out << " · source " << html_escape(opt.source);
  out << "</p>\n";

  // A "coverage" annotation means a degraded shard left holes: banner it
  // up front so no chart below is mistaken for a complete sweep.
  for (const auto& a : doc.annotations) {
    if (a.category != "coverage") continue;
    out << "<p class=\"coverage\">&#9888; " << html_escape(a.text)
        << "</p>\n";
  }

  // Soak-phase boundaries overlay every virtual-time chart.
  std::vector<VLine> phase_lines;
  for (const auto& a : doc.annotations) {
    if (a.category != "soak-phase") continue;
    phase_lines.push_back(VLine{bucket_seconds(doc, a.bucket), a.text});
  }

  // ---- Fleet convergence: cumulative rates per vantage. ----------------
  const std::set<std::string> vantages =
      label_values(doc, "fleet.flows", "vantage");
  if (!vantages.empty()) {
    Chart success{"Cumulative success rate by vantage", "virtual time (s)",
                  "rate", {}, phase_lines, true};
    Chart cache{"Cumulative cache-hit rate by vantage", "virtual time (s)",
                "rate", {}, phase_lines, true};
    for (const std::string& v : vantages) {
      const auto flows = bucket_sums(doc, "fleet.flows", "vantage", v);
      const auto succ = bucket_sums(doc, "fleet.flow_success", "vantage", v);
      const auto hits = bucket_sums(doc, "fleet.cache_hit", "vantage", v);
      ChartLine sline{v, {}}, cline{v, {}};
      i64 cf = 0, cs = 0, ch = 0;
      for (const auto& [bucket, n] : flows) {
        cf += n;
        auto si = succ.find(bucket);
        if (si != succ.end()) cs += si->second;
        auto hi = hits.find(bucket);
        if (hi != hits.end()) ch += hi->second;
        const double x = bucket_seconds(doc, bucket);
        sline.points.emplace_back(x, static_cast<double>(cs) / cf);
        cline.points.emplace_back(x, static_cast<double>(ch) / cf);
      }
      success.lines.push_back(std::move(sline));
      cache.lines.push_back(std::move(cline));
    }
    out << "<h2>Fleet convergence</h2>\n"
        << render_chart(success) << render_chart(cache);
    consumed.insert({"fleet.flows", "fleet.flow_success", "fleet.cache_hit"});
  }

  // ---- Flap response: per-bucket success rate + fault density. ---------
  const auto all_flows = bucket_sums(doc, "fleet.flows");
  if (!all_flows.empty()) {
    const auto all_succ = bucket_sums(doc, "fleet.flow_success");
    Chart flap{"Per-bucket success rate (all vantages)", "virtual time (s)",
               "rate", {}, phase_lines, true};
    ChartLine rate{"success rate", {}};
    for (const auto& [bucket, n] : all_flows) {
      auto si = all_succ.find(bucket);
      const i64 s = si == all_succ.end() ? 0 : si->second;
      rate.points.emplace_back(bucket_seconds(doc, bucket),
                               static_cast<double>(s) / n);
    }
    flap.lines.push_back(std::move(rate));
    out << "<h2>Flap response</h2>\n" << render_chart(flap);

    const std::set<std::string> kinds =
        label_values(doc, "faults.injected", "kind");
    if (!kinds.empty()) {
      Chart faults{"Injected-fault density", "virtual time (s)",
                   "events/bucket", {}, phase_lines, false};
      for (const std::string& k : kinds) {
        ChartLine line{k, {}};
        for (const auto& [bucket, n] :
             bucket_sums(doc, "faults.injected", "kind", k)) {
          line.points.emplace_back(bucket_seconds(doc, bucket),
                                   static_cast<double>(n));
        }
        faults.lines.push_back(std::move(line));
      }
      out << render_chart(faults);
      consumed.insert("faults.injected");
    }
  }

  // ---- Search-front progress per variant. ------------------------------
  const std::set<std::string> variants =
      label_values(doc, "search.best_success", "variant");
  if (!variants.empty()) {
    Chart front{"Search front: best/mean success by variant", "generation",
                "success rate", {}, {}, true};
    const double scale = static_cast<double>(Timeline::kRatioScale);
    for (const std::string& v : variants) {
      for (const char* name : {"search.best_success", "search.mean_success"}) {
        ChartLine line{std::string(v) + (std::string(name).find("best") !=
                                                 std::string::npos
                                             ? " best"
                                             : " mean"),
                       {}};
        for (const auto& s : doc.series) {
          if (s.name != name) continue;
          auto it = s.labels.find("variant");
          if (it == s.labels.end() || it->second != v) continue;
          for (const auto& p : s.points) {
            const double mean =
                p.count == 0 ? 0.0
                             : static_cast<double>(p.sum) /
                                   static_cast<double>(p.count) / scale;
            line.points.emplace_back(static_cast<double>(p.bucket), mean);
          }
        }
        front.lines.push_back(std::move(line));
      }
    }
    out << "<h2>Search progress</h2>\n" << render_chart(front);
    consumed.insert({"search.best_success", "search.mean_success"});

    std::vector<const TimelineDoc::Annotation*> lineage;
    for (const auto& a : doc.annotations) {
      if (a.category == "lineage") lineage.push_back(&a);
    }
    if (!lineage.empty()) {
      out << "<h3>Archive lineage (" << lineage.size() << " survivors)</h3>\n<pre>";
      for (const auto* a : lineage) {
        out << "gen " << a->bucket << ": " << html_escape(a->text) << "\n";
      }
      out << "</pre>\n";
    }
  }

  // ---- Anomalous buckets with explain coordinates. ---------------------
  if (!all_flows.empty()) {
    const auto all_succ = bucket_sums(doc, "fleet.flow_success");
    i64 total_flows = 0, total_succ = 0;
    for (const auto& [b, n] : all_flows) total_flows += n;
    for (const auto& [b, n] : all_succ) total_succ += n;
    const double overall =
        total_flows == 0 ? 0.0
                         : static_cast<double>(total_succ) / total_flows;
    struct Anomaly {
      i64 bucket;
      double rate;
      double deficit;
    };
    std::vector<Anomaly> anomalies;
    for (const auto& [bucket, n] : all_flows) {
      if (n < 5) continue;
      auto si = all_succ.find(bucket);
      const double rate =
          static_cast<double>(si == all_succ.end() ? 0 : si->second) / n;
      if (rate < overall - 0.15) {
        anomalies.push_back(Anomaly{bucket, rate, overall - rate});
      }
    }
    std::sort(anomalies.begin(), anomalies.end(),
              [](const Anomaly& a, const Anomaly& b) {
                if (a.deficit != b.deficit) return a.deficit > b.deficit;
                return a.bucket < b.bucket;
              });
    if (anomalies.size() > 10) anomalies.resize(10);
    out << "<h2>Anomalous buckets</h2>\n";
    if (anomalies.empty()) {
      out << "<p class=\"meta\">No bucket with ≥5 flows fell more than 15 "
             "points below the overall success rate ("
          << fmt(overall) << ").</p>\n";
    } else {
      out << "<p class=\"meta\">Buckets ≥15 points below the overall success "
             "rate ("
          << fmt(overall)
          << "). Replay one flow from the worst vantage with:</p>\n<pre>";
      for (const Anomaly& a : anomalies) {
        // Worst vantage in the bucket, its index label, and the highest
        // flow index seen there (fleet.flow_index gauge max) give exact
        // explain coordinates.
        std::string worst_vi;
        std::string worst_name;
        double worst_rate = 2.0;
        i64 trial = -1;
        for (const auto& s : doc.series) {
          if (s.name != "fleet.flows") continue;
          auto vi = s.labels.find("vantage_index");
          if (vi == s.labels.end()) continue;
          i64 flows_here = 0;
          for (const auto& p : s.points) {
            if (p.bucket == a.bucket) flows_here += p.sum;
          }
          if (flows_here == 0) continue;
          i64 succ_here = 0;
          for (const auto& s2 : doc.series) {
            if (s2.name != "fleet.flow_success" || s2.labels != s.labels) {
              continue;
            }
            for (const auto& p : s2.points) {
              if (p.bucket == a.bucket) succ_here += p.sum;
            }
          }
          const double r = static_cast<double>(succ_here) / flows_here;
          if (r < worst_rate) {
            worst_rate = r;
            worst_vi = vi->second;
            auto vn = s.labels.find("vantage");
            worst_name = vn == s.labels.end() ? "?" : vn->second;
            trial = -1;
            for (const auto& s3 : doc.series) {
              if (s3.name != "fleet.flow_index" || s3.labels != s.labels) {
                continue;
              }
              for (const auto& p : s3.points) {
                if (p.bucket == a.bucket) trial = std::max(trial, p.max);
              }
            }
          }
        }
        out << "# bucket " << a.bucket << " @ "
            << fmt(bucket_seconds(doc, a.bucket)) << "s: rate "
            << fmt(a.rate);
        if (!worst_name.empty()) {
          out << ", worst vantage " << html_escape(worst_name);
        }
        out << "\n";
        if (!worst_vi.empty() && trial >= 0) {
          out << "yourstate explain --bench=fleet";
          if (!opt.fleet_spec.empty()) {
            out << " --fleet=\"" << html_escape(opt.fleet_spec) << "\"";
          }
          out << " --vantage=" << worst_vi << " --trial=" << trial << "\n";
        }
      }
      out << "</pre>\n";
    }
    consumed.insert("fleet.flow_index");
  }

  // ---- Shard lifecycle (supervised sweeps). ----------------------------
  std::set<std::string> super_names;
  for (const auto& s : doc.series) {
    if (s.name.rfind("supervisor.", 0) == 0) super_names.insert(s.name);
  }
  if (!super_names.empty()) {
    out << "<h2>Shard lifecycle</h2>\n";
    if (super_names.count("supervisor.shard_done") > 0) {
      Chart prog{"Shard progress (tasks done, per heartbeat)",
                 "wall time (s)", "tasks", {}, {}, false};
      for (const auto& s : doc.series) {
        if (s.name != "supervisor.shard_done") continue;
        auto it = s.labels.find("shard");
        ChartLine line{"shard " + (it == s.labels.end() ? std::string("?")
                                                        : it->second),
                       {}};
        for (const auto& p : s.points) {
          line.points.emplace_back(bucket_seconds(doc, p.bucket),
                                   static_cast<double>(p.max));
        }
        prog.lines.push_back(std::move(line));
      }
      out << render_chart(prog);
    }
    Chart events{"Lifecycle events (spawn / gap / restart / degraded)",
                 "wall time (s)", "events/bucket", {}, {}, false};
    for (const std::string& name : super_names) {
      if (name == "supervisor.shard_done") continue;
      ChartLine line{name.substr(std::string("supervisor.").size()), {}};
      for (const auto& [bucket, n] : bucket_sums(doc, name)) {
        line.points.emplace_back(bucket_seconds(doc, bucket),
                                 static_cast<double>(n));
      }
      events.lines.push_back(std::move(line));
    }
    if (!events.lines.empty()) out << render_chart(events);

    std::vector<const TimelineDoc::Annotation*> shard_notes;
    for (const auto& a : doc.annotations) {
      if (a.category == "shard") shard_notes.push_back(&a);
    }
    if (!shard_notes.empty()) {
      out << "<h3>Event log (" << shard_notes.size() << " events)</h3>\n<pre>";
      for (const auto* a : shard_notes) {
        out << "bucket " << a->bucket << ": " << html_escape(a->text) << "\n";
      }
      out << "</pre>\n";
    }
    consumed.insert(super_names.begin(), super_names.end());
  }

  // ---- Everything else, so no recorded series is invisible. ------------
  std::set<std::string> remaining;
  for (const auto& s : doc.series) {
    if (consumed.count(s.name) == 0) remaining.insert(s.name);
  }
  if (!remaining.empty()) {
    out << "<h2>Other series</h2>\n";
    for (const std::string& name : remaining) {
      Chart chart{name, doc.bucket_us == 0 ? "bucket" : "virtual time (s)",
                  "", {}, {}, false};
      bool gauge = false;
      for (const auto& s : doc.series) {
        if (s.name != name) continue;
        gauge = s.kind == "gauge";
        ChartLine line{labels_text(s.labels), {}};
        for (const auto& p : s.points) {
          const double y =
              gauge ? (p.count == 0
                           ? 0.0
                           : static_cast<double>(p.sum) /
                                 static_cast<double>(p.count))
                    : static_cast<double>(p.sum);
          line.points.emplace_back(bucket_seconds(doc, p.bucket), y);
        }
        chart.lines.push_back(std::move(line));
      }
      chart.y_label = gauge ? "mean" : "sum/bucket";
      out << render_chart(chart);
    }
  }

  // ---- Whole-run totals (the metrics cross-check) + manifest. ----------
  std::map<std::string, i64> totals;
  for (const auto& s : doc.series) {
    if (s.kind != "counter") continue;
    for (const auto& p : s.points) totals[s.name] += p.sum;
  }
  out << "<h2>Whole-run counter totals</h2>\n"
      << "<p class=\"meta\">Each total is the sum over every bucket and "
         "label set; for fleet runs these match the aggregate "
         "<code>fleet.*</code> metrics counters.</p>\n"
      << "<table><tr><th>counter</th><th>total</th></tr>\n";
  for (const auto& [name, total] : totals) {
    out << "<tr><td>" << html_escape(name) << "</td><td>" << fmt_i64(total)
        << "</td></tr>\n";
  }
  out << "</table>\n";

  std::set<std::string> names;
  for (const auto& s : doc.series) names.insert(s.name);
  out << "<script type=\"application/json\" id=\"timeline-manifest\">{"
         "\"series\":[";
  bool first = true;
  for (const std::string& n : names) {
    if (!first) out << ',';
    first = false;
    out << '"' << n << '"';
  }
  out << "]}</script>\n";
  out << "<script type=\"application/json\" id=\"timeline-totals\">{";
  first = true;
  for (const auto& [name, total] : totals) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << fmt_i64(total);
  }
  out << "}</script>\n";
  out << "</body></html>\n";
  return out.str();
}

}  // namespace ys::obs
