#include "obs/metrics.h"

#include <atomic>
#include <stdexcept>

namespace ys::obs {

namespace {
// Each simulation is single-threaded (one event loop drives everything),
// but the runner executes many simulations on concurrent workers, all of
// which read this flag — a relaxed atomic keeps the hot-path check
// branch-predictable and race-clean. Only the orchestrating thread writes
// it, and never while workers run.
std::atomic<bool> g_enabled{true};

// Per-thread registry override installed by ScopedMetricsRegistry; null
// means "publish into the process registry".
thread_local MetricsRegistry* t_current = nullptr;

// Registry identities for bind_per_thread's cache key. Starts at 1 so the
// sentinel 0 never matches a live registry.
std::atomic<u64> g_next_registry_uid{1};

const char* kind_name(int k) {
  switch (k) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
  }
  return "?";
}
}  // namespace

bool metrics_enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies:
  // function-local statics in components hold references into it, and
  // destruction order at exit must not invalidate them.
  return *registry;
}

MetricsRegistry& MetricsRegistry::current() {
  return t_current != nullptr ? *t_current : global();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(t_current) {
  t_current = registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() { t_current = previous_; }

MetricsRegistry::Slot& MetricsRegistry::find_or_create(const std::string& name,
                                                       Kind kind) {
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error(
          "obs: metric '" + name + "' already registered as " +
          kind_name(static_cast<int>(it->second.kind)) + ", requested as " +
          kind_name(static_cast<int>(kind)));
    }
    return it->second;
  }
  Slot slot;
  slot.kind = kind;
  return slots_.emplace(name, std::move(slot)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Slot& slot = find_or_create(name, Kind::kCounter);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Slot& slot = find_or_create(name, Kind::kGauge);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Slot& slot = find_or_create(name, Kind::kHistogram);
  if (!slot.histogram) {
    slot.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot.histogram;  // first registration's bounds win
}

void Histogram::merge(const HistogramSnapshot& other) {
  if (other.bounds != bounds_) {
    throw std::logic_error(
        "obs: histogram merge with mismatched bounds (same-name histograms "
        "must be registered with identical bounds)");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts[i];
  count_ += other.count;
  sum_ += other.sum;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank in (0, count]; walk the cumulative distribution to the
  // bucket that holds it.
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (rank <= next || i + 1 == counts.size()) {
      if (i >= bounds.size()) {
        // Overflow bucket: no upper bound to interpolate toward.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (rank - cum) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void MetricsRegistry::merge_from(const Snapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    counter(name).merge_add(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    gauge(name).merge_max(value);
  }
  for (const auto& [name, h] : snap.histograms) {
    histogram(name, h.bounds).merge(h);
  }
}

void MetricsRegistry::reset_all() {
  for (auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter: slot.counter->reset(); break;
      case Kind::kGauge: slot.gauge->reset(); break;
      case Kind::kHistogram: slot.histogram->reset(); break;
    }
  }
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter:
        snap.counters[name] = slot.counter->value();
        break;
      case Kind::kGauge:
        snap.gauges[name] = slot.gauge->value();
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = slot.histogram->bounds();
        h.counts = slot.histogram->bucket_counts();
        h.count = slot.histogram->count();
        h.sum = slot.histogram->sum();
        snap.histograms[name] = std::move(h);
        break;
      }
    }
  }
  return snap;
}

}  // namespace ys::obs
