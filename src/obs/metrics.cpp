#include "obs/metrics.h"

#include <stdexcept>

namespace ys::obs {

namespace {
// The simulator is single-threaded by construction (one event loop drives
// everything), so a plain bool keeps the hot-path check branch-predictable.
bool g_enabled = true;

const char* kind_name(int k) {
  switch (k) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
  }
  return "?";
}
}  // namespace

bool metrics_enabled() { return g_enabled; }
void set_metrics_enabled(bool on) { g_enabled = on; }

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies:
  // function-local statics in components hold references into it, and
  // destruction order at exit must not invalidate them.
  return *registry;
}

MetricsRegistry::Slot& MetricsRegistry::find_or_create(const std::string& name,
                                                       Kind kind) {
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error(
          "obs: metric '" + name + "' already registered as " +
          kind_name(static_cast<int>(it->second.kind)) + ", requested as " +
          kind_name(static_cast<int>(kind)));
    }
    return it->second;
  }
  Slot slot;
  slot.kind = kind;
  return slots_.emplace(name, std::move(slot)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Slot& slot = find_or_create(name, Kind::kCounter);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Slot& slot = find_or_create(name, Kind::kGauge);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Slot& slot = find_or_create(name, Kind::kHistogram);
  if (!slot.histogram) {
    slot.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot.histogram;  // first registration's bounds win
}

void MetricsRegistry::reset_all() {
  for (auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter: slot.counter->reset(); break;
      case Kind::kGauge: slot.gauge->reset(); break;
      case Kind::kHistogram: slot.histogram->reset(); break;
    }
  }
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter:
        snap.counters[name] = slot.counter->value();
        break;
      case Kind::kGauge:
        snap.gauges[name] = slot.gauge->value();
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = slot.histogram->bounds();
        h.counts = slot.histogram->bucket_counts();
        h.count = slot.histogram->count();
        h.sum = slot.histogram->sum();
        snap.histograms[name] = std::move(h);
        break;
      }
    }
  }
  return snap;
}

}  // namespace ys::obs
