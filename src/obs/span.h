// Scoped timing spans feeding histograms.
//
// Two time bases coexist in this codebase and both matter:
//   * wall-clock (ScopedTimer) — "how long did strategy selection really
//     take on this hardware", the number perf PRs optimize;
//   * virtual time (SimSpan) — "how much simulated network time elapsed
//     inside this scope", the number the paper's protocol analysis uses.
#pragma once

#include <chrono>

#include "core/clock.h"
#include "obs/metrics.h"

namespace ys::obs {

/// Records the scope's wall-clock duration, in microseconds, into a
/// histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Records the virtual-time (SimTime) span covered by the scope, in
/// simulated microseconds, into a histogram on destruction. Deterministic:
/// the same seed produces the same observations.
class SimSpan {
 public:
  SimSpan(const VirtualClock& clock, Histogram& hist)
      : clock_(clock), hist_(hist), start_(clock.now()) {}

  SimSpan(const SimSpan&) = delete;
  SimSpan& operator=(const SimSpan&) = delete;

  ~SimSpan() {
    hist_.observe(static_cast<double>((clock_.now() - start_).us));
  }

 private:
  const VirtualClock& clock_;
  Histogram& hist_;
  SimTime start_;
};

}  // namespace ys::obs
