#include "obs/trace_export.h"

#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace ys::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_kv(std::string& out, const char* key, u64 v, bool* first) {
  if (!*first) out += ',';
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_kv(std::string& out, const char* key, const std::string& v,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  append_escaped(out, v);
}

}  // namespace

std::string to_chrome_trace(const TraceRecorder& trace) {
  const std::vector<TraceEvent> events = trace.events();

  // Tracks: one tid per actor, in first-appearance order (deterministic).
  std::unordered_map<std::string, u64> tids;
  std::vector<std::string> actors;
  for (const auto& ev : events) {
    if (tids.emplace(ev.actor, tids.size() + 1).second) {
      actors.push_back(ev.actor);
    }
  }

  // Which event ids survive in the ring (flow arrows need both ends).
  std::unordered_map<u64, const TraceEvent*> retained;
  retained.reserve(events.size());
  for (const auto& ev : events) retained.emplace(ev.id, &ev);

  std::string out;
  out.reserve(events.size() * 160 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  auto begin_event = [&]() -> std::string& {
    if (!first_event) out += ',';
    first_event = false;
    out += '{';
    return out;
  };

  for (std::size_t i = 0; i < actors.size(); ++i) {
    begin_event();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"M\",\"pid\":1,\"tid\":%llu,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":",
                  static_cast<unsigned long long>(i + 1));
    out += buf;
    append_escaped(out, actors[i]);
    out += "}}";
  }

  for (const auto& ev : events) {
    const u64 tid = tids[ev.actor];
    begin_event();
    char buf[160];
    std::string name = to_string(ev.kind);
    if (ev.gfw.valid()) {
      name += ':';
      name += to_string(ev.gfw.behavior);
    }
    out += "\"ph\":\"X\",\"pid\":1,";
    std::snprintf(buf, sizeof(buf), "\"tid\":%llu,\"ts\":%lld,\"dur\":1,",
                  static_cast<unsigned long long>(tid),
                  static_cast<long long>(ev.at.us));
    out += buf;
    out += "\"cat\":\"trace\",\"name\":";
    append_escaped(out, name);
    out += ",\"args\":{";
    bool first = true;
    append_kv(out, "id", ev.id, &first);
    if (ev.caused_by != 0) append_kv(out, "caused_by", ev.caused_by, &first);
    if (ev.packet.id != 0) {
      append_kv(out, "packet", ev.packet.id, &first);
      if (ev.packet.is_tcp) {
        append_kv(out, "seq", ev.packet.seq, &first);
        append_kv(out, "ack", ev.packet.ack, &first);
        append_kv(out, "flags", ev.packet.flags, &first);
      }
      append_kv(out, "payload_len", ev.packet.payload_len, &first);
      append_kv(out, "ttl", ev.packet.ttl, &first);
      append_kv(out, "dir", std::string(ev.packet.dir == 0 ? "c2s" : "s2c"),
                &first);
      if (ev.packet.crafted) append_kv(out, "crafted", u64{1}, &first);
    }
    if (ev.gfw.valid()) {
      append_kv(out, "gfw_from", std::string(to_string(ev.gfw.from)), &first);
      append_kv(out, "gfw_to", std::string(to_string(ev.gfw.to)), &first);
    }
    if (!ev.detail.empty()) append_kv(out, "detail", ev.detail, &first);
    out += "}}";
  }

  // Flow arrows for causal links with both ends retained.
  for (const auto& ev : events) {
    if (ev.caused_by == 0) continue;
    auto it = retained.find(ev.caused_by);
    if (it == retained.end()) continue;
    const TraceEvent& cause = *it->second;
    char buf[200];
    begin_event();
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"s\",\"pid\":1,\"tid\":%llu,\"ts\":%lld,"
                  "\"cat\":\"cause\",\"name\":\"cause\",\"id\":%llu",
                  static_cast<unsigned long long>(tids[cause.actor]),
                  static_cast<long long>(cause.at.us),
                  static_cast<unsigned long long>(ev.id));
    out += buf;
    out += '}';
    begin_event();
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":%llu,"
                  "\"ts\":%lld,\"cat\":\"cause\",\"name\":\"cause\","
                  "\"id\":%llu",
                  static_cast<unsigned long long>(tids[ev.actor]),
                  static_cast<long long>(ev.at.us),
                  static_cast<unsigned long long>(ev.id));
    out += buf;
    out += '}';
  }

  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path, const TraceRecorder& trace) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = to_chrome_trace(trace);
  const bool write_ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool close_ok = std::fclose(f) == 0;
  return write_ok && close_ok;
}

}  // namespace ys::obs
