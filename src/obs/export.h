// Snapshot exporters: a human-readable aligned table and a JSON document
// (consumed by `yourstate stats` and by downstream analysis scripts). Both
// render metrics in sorted-name order so output is diffable across runs.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace ys::obs {

/// Aligned text table, one metric per line; histograms additionally carry
/// bucket-interpolated p50/p95/p99 summaries:
///   gfw.packets_seen              counter        42
///   exp.vtime.success.intang      histogram      12  sum=1841.0  p50=...
std::string to_table(const Snapshot& snap);

/// JSON document:
/// {
///   "counters":   {"name": 42, ...},
///   "gauges":     {"name": 1.5, ...},
///   "histograms": {"name": {"bounds": [...], "counts": [...],
///                            "count": N, "sum": S}, ...}
/// }
std::string to_json(const Snapshot& snap);

}  // namespace ys::obs
