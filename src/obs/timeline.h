// ys::obs — virtual-time bucketed time-series ("timelines").
//
// The metrics registry answers "how much, in total"; a Timeline answers
// "how much, when" on the *virtual* time axis every sweep already shares:
// counter deltas and sampled gauges fall into fixed-width SimTime buckets,
// per series, where a series is a (name, labels) pair — labels carry the
// vantage / phase / variant breakdown a dashboard needs.
//
// Design rules, mirroring obs::MetricsRegistry:
//   1. Opt-in. Nothing records unless a Timeline is installed for the
//      thread (ScopedTimeline); every producer site is a thread-local read
//      plus a null check when recording is off, so fleet throughput and
//      the bench_obs_overhead gate are untouched.
//   2. One timeline per thread. A Timeline is NOT internally synchronized.
//      Producers resolve through Timeline::current(); the ys::runner
//      worker pool installs a worker-private Timeline per worker whenever
//      the orchestrating thread has one, and folds them back with
//      merge_from() after the join.
//   3. Deterministic. All bucket values are integers (callers scale rates
//      by kRatioScale), so merging worker timelines is associative and
//      commutative in exact arithmetic — `--jobs=N` stays bit-identical
//      no matter which worker contributed to which bucket. The only
//      exception is wall-clock-derived series (the runner's own
//      `runner.*` progress curves), which digests exclude by prefix,
//      exactly like the wall-clock metrics the benches already skip.
//
// Bucket semantics: bucket k covers virtual time [k*width, (k+1)*width) —
// an event exactly on a boundary opens the next bucket. Annotations are a
// deduplicated set of (bucket, category, text) markers (soak-phase
// boundaries, search lineage edges) and merge by set union.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/types.h"

namespace ys::obs {

/// Per-series breakdown labels (vantage, phase, variant, ...). Kept
/// sorted by the map so series identity and every export are canonical.
using TimelineLabels = std::map<std::string, std::string>;

enum class TimelineKind : u8 { kCounter, kGauge };

const char* to_string(TimelineKind kind);

/// One bucket's accumulated contributions. Counters fold deltas into
/// `sum`; gauges fold samples into sum/min/max (consumers read
/// mean = sum / count, or the extremes). All-integer on purpose: integer
/// addition is exact, so the fold is associative and commutative.
struct TimelineValue {
  i64 sum = 0;
  u64 count = 0;
  i64 min = 0;
  i64 max = 0;

  void fold(const TimelineValue& other);
};

struct TimelineSeriesKey {
  std::string name;
  TimelineLabels labels;

  bool operator<(const TimelineSeriesKey& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
};

struct TimelineSeries {
  TimelineKind kind = TimelineKind::kCounter;
  /// bucket index -> accumulated value, sorted (deterministic export).
  std::map<i64, TimelineValue> buckets;
};

/// A point marker on the time axis: soak-phase boundary, search lineage
/// edge ("spec <- crossover of a x b"), ... Deduplicated by full content,
/// so re-annotating (e.g. from several sweeps of one config) is idempotent.
struct TimelineAnnotation {
  i64 bucket = 0;
  std::string category;
  std::string text;

  bool operator<(const TimelineAnnotation& o) const {
    if (bucket != o.bucket) return bucket < o.bucket;
    if (category != o.category) return category < o.category;
    return text < o.text;
  }
};

class Timeline {
 public:
  /// Fixed-point scale for rate-valued samples (success rates, objective
  /// scores): store llround(rate * kRatioScale), divide on display.
  static constexpr i64 kRatioScale = 1'000'000;

  explicit Timeline(SimTime bucket_width = SimTime::from_sec(1));

  /// The timeline this thread records into, or nullptr when recording is
  /// off (the default). Producers null-check and skip — the opt-in gate.
  static Timeline* current();

  SimTime bucket_width() const { return bucket_width_; }

  /// Bucket index covering `at` (floor division; a boundary instant opens
  /// the next bucket).
  i64 bucket_of(SimTime at) const;
  /// Start instant of bucket `bucket`.
  SimTime bucket_start(i64 bucket) const {
    return SimTime{bucket * bucket_width_.us};
  }

  /// Counter delta at a virtual instant / an explicit bucket (the
  /// explicit form serves non-time axes such as search generations).
  void count(const std::string& name, const TimelineLabels& labels,
             SimTime at, i64 delta = 1);
  void count_at(const std::string& name, const TimelineLabels& labels,
                i64 bucket, i64 delta = 1);

  /// Gauge sample (queue depth, flow index, scaled rate).
  void sample(const std::string& name, const TimelineLabels& labels,
              SimTime at, i64 value);
  void sample_at(const std::string& name, const TimelineLabels& labels,
                 i64 bucket, i64 value);

  void annotate(SimTime at, const std::string& category,
                const std::string& text);
  void annotate_bucket(i64 bucket, const std::string& category,
                       const std::string& text);

  /// Fold another timeline in: bucket values add (counters) / accumulate
  /// (gauges), annotations union. Associative and commutative. Bucket
  /// widths must match and a series may not change kind — both are
  /// programming errors and throw std::logic_error.
  void merge_from(const Timeline& other);

  bool empty() const { return series_.empty() && annotations_.empty(); }
  std::size_t series_count() const { return series_.size(); }
  const std::map<TimelineSeriesKey, TimelineSeries>& series() const {
    return series_;
  }
  const std::set<TimelineAnnotation>& annotations() const {
    return annotations_;
  }

 private:
  TimelineSeries& resolve(const std::string& name,
                          const TimelineLabels& labels, TimelineKind kind);

  SimTime bucket_width_;
  std::map<TimelineSeriesKey, TimelineSeries> series_;
  std::set<TimelineAnnotation> annotations_;
};

/// RAII thread-local recording scope: while alive, Timeline::current() on
/// this thread resolves to `timeline`. Nests; restores the previous scope
/// on destruction. The runner workers wrap each worker's lifetime in one.
class ScopedTimeline {
 public:
  explicit ScopedTimeline(Timeline* timeline);
  ~ScopedTimeline();

  ScopedTimeline(const ScopedTimeline&) = delete;
  ScopedTimeline& operator=(const ScopedTimeline&) = delete;

 private:
  Timeline* previous_;
};

/// FNV-1a digest of the canonical timeline content, for determinism
/// checks. Series whose name starts with any of `exclude_prefixes` are
/// skipped — used to drop the wall-clock `runner.*` progress curves the
/// same way bench digests drop wall/per_sec metrics.
u64 timeline_digest(const Timeline& tl,
                    const std::vector<std::string>& exclude_prefixes = {});

}  // namespace ys::obs
